// Command tracecheck validates a Perfetto trace-event JSON file as
// produced by pasfleet -trace perfetto: the document must be valid
// JSON with legal phases, non-negative timestamps and durations,
// non-overlapping slices per track, and monotone counter samples.
//
// Usage:
//
//	tracecheck trace.json
//	pasfleet -trace perfetto:- ... | tracecheck -   # read from stdin
//
// On success it prints the trace shape (events, slices, counters,
// instants, tracks, end time) and exits 0; any violation is reported
// with exit status 1, making the command usable as a CI gate on
// recorder output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pasched/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: tracecheck <trace.json | ->")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var r io.Reader = os.Stdin
	name := fs.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		defer f.Close()
		r = f
	} else {
		name = "<stdin>"
	}
	st, err := obs.ValidatePerfetto(r)
	if err != nil {
		fmt.Fprintf(errOut, "tracecheck: %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(out, "tracecheck: %s: ok — %d events (%d slices, %d counters, %d instants) on %d VM tracks, ends at %.3f s\n",
		name, st.Events, st.Slices, st.Counters, st.Instants, st.Tracks, float64(st.EndUs)/1e6)
	return 0
}
