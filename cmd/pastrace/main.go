// Command pastrace runs one instance of the paper's Section 5.3 execution
// profile (two web VMs, V20 and V70, with overlapping active phases on a
// Dom0-equipped Optiplex-755 host) and writes the recorded time series as
// CSV, ready for gnuplot or a spreadsheet.
//
// Usage:
//
//	pastrace -sched pas -load thrashing > fig9.csv
//	pastrace -sched credit -gov paper -load exact -series V20_absolute_pct,freq_mhz
//
// Schedulers: credit, credit2, sedf, pas, pas-credit2. Governors:
// performance, ondemand (stock), paper (the paper's smoothed governor),
// none. Loads: exact, thrashing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pasched/internal/experiments"
	"pasched/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pastrace", flag.ContinueOnError)
	var (
		schedName = fs.String("sched", "pas", "scheduler: "+experiments.TraceSchedulers)
		govName   = fs.String("gov", "none", "governor: performance, ondemand, paper, none")
		loadName  = fs.String("load", "thrashing", "load intensity: exact, thrashing")
		seed      = fs.Uint64("seed", 42, "workload arrival seed")
		series    = fs.String("series", "", "comma-separated series names (default: all)")
		out       = fs.String("o", "", "output file (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rec, err := experiments.Trace(*schedName, *govName, *loadName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var selected []*metrics.Series
	if *series == "" {
		selected = rec.All()
	} else {
		for _, name := range strings.Split(*series, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, s := range rec.All() {
				if s.Name == name {
					selected = append(selected, s)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown series %q; available: %s\n",
					name, strings.Join(rec.Names(), ", "))
				return 1
			}
		}
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		w = f
	}
	if err := metrics.WriteCSV(w, selected...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
