// Command pascalib runs the paper's Section 5.2 calibration procedures on
// a named processor profile: it measures the per-frequency calibration
// factors cf_i (Table 1) and verifies the frequency/performance
// proportionality (equation 2).
//
// Usage:
//
//	pascalib -list
//	pascalib -profile e5-2620
//	pascalib -profile optiplex755 -load 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pasched/internal/calib"
	"pasched/internal/cpufreq"
	"pasched/internal/metrics"
)

// profiles maps CLI names to architecture profiles.
func profiles() map[string]*cpufreq.Profile {
	return map[string]*cpufreq.Profile{
		"optiplex755": cpufreq.Optiplex755(),
		"elite8300":   cpufreq.Elite8300(),
		"x3440":       cpufreq.XeonX3440(),
		"l5420":       cpufreq.XeonL5420(),
		"e5-2620":     cpufreq.XeonE5_2620(),
		"opteron6164": cpufreq.Opteron6164HE(),
		"i7-3770":     cpufreq.CoreI7_3770(),
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pascalib", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list profile names")
		profile = fs.String("profile", "", "profile to calibrate")
		loadPct = fs.Float64("load", 25, "calibration workload, percent of max capacity")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	known := profiles()
	if *list {
		names := make([]string, 0, len(known))
		for n := range known {
			names = append(names, n)
		}
		fmt.Println(strings.Join(names, "\n"))
		return 0
	}
	prof, ok := known[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q; use -list\n", *profile)
		return 2
	}

	res, err := calib.MeasureCF(prof, *loadPct)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tb := metrics.NewTable(fmt.Sprintf("cf calibration for %s (eq. 1 procedure)", prof.Name),
		"frequency", "measured cf", "ground truth")
	for i, f := range res.Freqs {
		truth, err := prof.Efficiency(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		tb.AddRow(f.String(), metrics.Fmt(res.CF[i], 5), metrics.Fmt(truth, 5))
	}
	fmt.Println(tb.Render())

	work := 4 * float64(prof.Max()) * 1e6
	rows, err := calib.VerifyFreqProportionality(prof, work)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tb2 := metrics.NewTable("frequency/performance proportionality (eq. 2)",
		"frequency", "measured T_max/T_i", "predicted ratio*cf")
	for _, r := range rows {
		tb2.AddRow(r.Label, metrics.Fmt(r.Measured, 4), metrics.Fmt(r.Predicted, 4))
	}
	fmt.Println(tb2.Render())
	return 0
}
