package main

import (
	"bytes"
	"expvar"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pasched/internal/fleet"
	"pasched/internal/obs"
	"pasched/internal/sim"
)

func TestParseTraceSpec(t *testing.T) {
	cases := []struct {
		spec, path string
		ok         bool
	}{
		{"", "", true},
		{"perfetto", "trace.json", true},
		{"perfetto:run.json", "run.json", true},
		{"perfetto:", "", false},
		{"zipkin", "", false},
		{"perfetto.json", "", false},
	}
	for _, tc := range cases {
		path, ok := parseTraceSpec(tc.spec)
		if path != tc.path || ok != tc.ok {
			t.Errorf("parseTraceSpec(%q) = %q, %v; want %q, %v", tc.spec, path, ok, tc.path, tc.ok)
		}
	}
}

// TestFlagValidation: every malformed flag fails before any trace or
// fleet construction, with exit 2 and a message naming the accepted
// values.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"trace spec", []string{"-trace", "zipkin"}, "accepted: perfetto, perfetto:path"},
		{"trace spec empty path", []string{"-trace", "perfetto:"}, "invalid trace spec"},
		{"metrics addr", []string{"-metrics-addr", "not an:address:at all"}, "invalid metrics address"},
		{"scheduler", []string{"-sched", "bogus"}, "unknown scheduler"},
		{"shards", []string{"-shards", "-2"}, "invalid shard count"},
		{"stream", []string{"-stream", "xml"}, "invalid stream spec"},
		{"gen-stream vs vmtrace", []string{"-gen-stream", "-vmtrace", "x.csv"}, "-gen-stream conflicts with -vmtrace"},
		{"lifetime", []string{"-lifetime", "-3"}, "invalid mean lifetime"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Errorf("stderr %q does not name the accepted values (%q)", errOut.String(), tc.want)
			}
		})
	}
}

// TestRunWithRecorder drives a small serving scenario end to end with
// the flight recorder, heartbeat, and metrics endpoint enabled: the
// produced Perfetto file must pass the validator and the summary must
// carry the recorder totals.
func TestRunWithRecorder(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run_trace.json")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-machines", "8", "-arrivals", "25", "-horizon", "45", "-report", "5",
		"-serve", "-trace", "perfetto:" + trace,
		"-status", "-metrics-addr", "127.0.0.1:0",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"serving metrics on http://127.0.0.1:", "wrote Perfetto trace"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut.String())
		}
	}
	if !strings.Contains(out.String(), "recorder events") {
		t.Errorf("summary missing the recorder rows:\n%s", out.String())
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := obs.ValidatePerfetto(f)
	if err != nil {
		t.Fatalf("produced trace rejected: %v", err)
	}
	if st.Slices == 0 || st.Instants == 0 {
		t.Errorf("vacuous trace: %+v", st)
	}
}

// TestVMTraceRoundTrip: -write-trace output feeds back through
// -vmtrace (the renamed lifecycle-trace input flag).
func TestVMTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "vms.csv")
	var out, errOut bytes.Buffer
	if code := run([]string{"-machines", "8", "-arrivals", "20", "-horizon", "30",
		"-write-trace", csv}, &out, &errOut); code != 0 {
		t.Fatalf("write-trace exit %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-machines", "8", "-horizon", "30", "-vmtrace", csv}, &out, &errOut); code != 0 {
		t.Fatalf("vmtrace exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Fleet run:") {
		t.Errorf("no summary from the -vmtrace run:\n%s", out.String())
	}
}

// TestGenStreamMatchesMaterialized: the same run through -gen-stream
// (lazy generator, streamed source) and the default materialized path
// must print identical summaries, and -gen-stream -write-trace must
// emit the byte-identical CSV.
func TestGenStreamMatchesMaterialized(t *testing.T) {
	args := []string{"-machines", "8", "-arrivals", "40", "-horizon", "60", "-seed", "9"}
	var matOut, streamOut, errOut bytes.Buffer
	if code := run(args, &matOut, &errOut); code != 0 {
		t.Fatalf("materialized exit %d: %s", code, errOut.String())
	}
	if code := run(append([]string{"-gen-stream"}, args...), &streamOut, &errOut); code != 0 {
		t.Fatalf("gen-stream exit %d: %s", code, errOut.String())
	}
	// Strip the peak-RSS row: it reflects the process high-water mark, the
	// one summary quantity that legitimately differs between invocations.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.Contains(line, "peak RSS") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(matOut.String()) != strip(streamOut.String()) {
		t.Errorf("summaries differ:\nmaterialized:\n%s\ngen-stream:\n%s", matOut.String(), streamOut.String())
	}

	dir := t.TempDir()
	matCSV, streamCSV := filepath.Join(dir, "mat.csv"), filepath.Join(dir, "stream.csv")
	if code := run(append([]string{"-write-trace", matCSV}, args...), &matOut, &errOut); code != 0 {
		t.Fatalf("write-trace exit %d: %s", code, errOut.String())
	}
	if code := run(append([]string{"-gen-stream", "-write-trace", streamCSV}, args...), &streamOut, &errOut); code != 0 {
		t.Fatalf("gen-stream write-trace exit %d: %s", code, errOut.String())
	}
	mat, err := os.ReadFile(matCSV)
	if err != nil {
		t.Fatal(err)
	}
	str, err := os.ReadFile(streamCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mat, str) {
		t.Errorf("-write-trace CSVs differ between materialized and streamed generation")
	}
}

func testFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	tr, err := fleet.Generate(fleet.GenConfig{Seed: 5, Arrivals: 10, Horizon: 30 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.New(fleet.Config{
		Machines: fleet.DefaultEstate(4),
		Seed:     5,
		Obs:      fleet.ObsConfig{Enabled: true, Buffer: true},
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return fl
}

// TestExpvarMetrics checks the published expvar tree reads the live
// fleet's progress counters (and survives repeated publication).
func TestExpvarMetrics(t *testing.T) {
	fl := testFleet(t)
	if _, err := fl.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	liveFleet.Store(fl)
	defer liveFleet.Store(nil)
	publishMetrics()
	publishMetrics() // must not panic on re-publication
	v := expvar.Get("pasfleet")
	if v == nil {
		t.Fatal("pasfleet expvar not published")
	}
	s := v.String()
	for _, key := range []string{`"sim_us"`, `"events"`, `"live_vms"`} {
		if !strings.Contains(s, key) {
			t.Errorf("expvar %s missing %s", s, key)
		}
	}
	if !strings.Contains(s, `"sim_us":30000000`) {
		t.Errorf("expvar sim_us not at the horizon: %s", s)
	}
}

// TestHeartbeat runs the status ticker against a finished fleet long
// enough for one tick and checks the line shape.
func TestHeartbeat(t *testing.T) {
	fl := testFleet(t)
	if _, err := fl.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stop := make(chan struct{})
	done := make(chan struct{})
	go heartbeat(&buf, fl, stop, done)
	time.Sleep(1200 * time.Millisecond)
	close(stop)
	<-done
	line := buf.String()
	for _, want := range []string{"pasfleet: sim 30.0s", "events", "live VMs", "rss"} {
		if !strings.Contains(line, want) {
			t.Errorf("heartbeat %q missing %q", line, want)
		}
	}
}
