// Command pasfleet runs the trace-driven heterogeneous datacenter
// simulation (internal/fleet): it generates (or reads) a VM lifecycle
// trace, drives it through a fleet of simulated machines under a chosen
// placement policy and scheduler, and reports cluster-level energy,
// active-machine and SLA curves.
//
// Usage:
//
//	pasfleet -machines 1000 -arrivals 5000 -horizon 600 -policy dvfs-aware
//	pasfleet -vmtrace trace.csv -sched credit -csv intervals.csv -json report.json
//	pasfleet -arrivals 200 -write-trace trace.csv
//	pasfleet -machines 1000000 -shards 8 -stream csv:intervals.csv -no-report
//	pasfleet -machines 100000 -arrivals 10000000 -gen-stream -stream jsonl -no-report
//	pasfleet -serve -report 2 -sched credit2   # request latency percentiles
//	pasfleet -trace perfetto:run.json -status  # flight recorder + heartbeat
//
// -serve layers the request-level serving model on every VM: reply
// latencies derive from each VM's attained work rate, and the report
// grows p50/p95/p99 columns plus per-class latency summaries.
//
// -trace enables the flight recorder and streams every scheduler,
// host, and fleet decision event into a Perfetto trace-event JSON file
// (open it at https://ui.perfetto.dev). -status prints a 1 Hz run
// heartbeat to stderr, and -metrics-addr serves the same live counters
// as expvar JSON over HTTP while the run executes.
//
// Large estates run sharded (-shards, -workers) with streaming output
// (-stream) so memory stays proportional to the live fleet, not to the
// run's history. The report — and the recorder's event stream — is
// bit-identical for every shard and worker count. -gen-stream generates
// the synthetic trace lazily (and -vmtrace always reads its CSV
// lazily), so trace memory is O(1) too: a 10M-arrival run holds only
// the machines and the live VMs.
//
// Exit status is non-zero on simulation errors, making the command
// usable as a smoke gate in CI.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pasched/internal/autoscale"
	"pasched/internal/fleet"
	"pasched/internal/metrics"
	"pasched/internal/obs"
	"pasched/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("pasfleet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		machines    = fs.Int("machines", 200, "number of machines in the heterogeneous estate")
		arrivals    = fs.Int("arrivals", 1000, "number of VM lifecycles to generate")
		horizon     = fs.Float64("horizon", 600, "simulated horizon in seconds")
		seed        = fs.Uint64("seed", 42, "trace and workload seed")
		genStream   = fs.Bool("gen-stream", false, "generate the synthetic trace lazily and stream it into the run (memory stays O(machines + live VMs))")
		lifetime    = fs.Float64("lifetime", 0, "mean VM lifetime in seconds (0 = horizon/10); shorter lifetimes bound the live population of arrival-heavy runs")
		policyName  = fs.String("policy", "first-fit", "placement policy: first-fit, best-fit or dvfs-aware")
		schedName   = fs.String("sched", "pas", "per-machine scheduler: "+fleet.SchedulerNames())
		serve       = fs.Bool("serve", false, "enable the request-level serving layer (per-VM clients, reply-latency percentiles)")
		serveSlots  = fs.Int("serve-slots", 0, "per-VM service slots (0 = default)")
		autoPolicy  = fs.String("autoscale", "", "enable the elastic loop with this policy: "+autoscale.Names()+" (requires -serve; ditto also requires -trace)")
		autoMaxRep  = fs.Int("autoscale-max-replicas", 0, "replica ceiling per VM group (0 = default, 1 = cap resizes only)")
		autoMaxCap  = fs.Float64("autoscale-max-cap", 0, "cap ceiling in CPU percent a VM may grow to (0 = default)")
		autoStep    = fs.Float64("autoscale-step", 0, "cap increment of one resize decision in CPU percent (0 = default)")
		report      = fs.Float64("report", 30, "reporting interval in seconds")
		consolidate = fs.Float64("consolidate", 120, "consolidation interval in seconds (0 disables)")
		shards      = fs.Int("shards", 0, "machine shards stepped by independent workers (0 = one per worker)")
		workers     = fs.Int("workers", 0, "concurrent shard workers (0 = GOMAXPROCS)")
		stream      = fs.String("stream", "", "stream results incrementally: csv[:path] or jsonl[:path] (default stdout)")
		noReport    = fs.Bool("no-report", false, "discard the in-memory report (memory stays O(machines); use with -stream)")
		traceSpec   = fs.String("trace", "", "record the run with the flight recorder: perfetto[:path] (default path trace.json)")
		status      = fs.Bool("status", false, "print a 1 Hz heartbeat (sim time, wall rate, events, live VMs, RSS) to stderr")
		metricsAddr = fs.String("metrics-addr", "", "serve live run counters as expvar JSON on this HTTP address (e.g. localhost:6060)")
		vmTracePath = fs.String("vmtrace", "", "read the VM lifecycle trace from this CSV instead of generating")
		writeTrace  = fs.String("write-trace", "", "write the generated trace as CSV to this file and exit")
		csvPath     = fs.String("csv", "", "write the interval curves as CSV to this file")
		jsonPath    = fs.String("json", "", "write the full report as JSON to this file")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Validate choice flags before any trace or fleet work, so a typo
	// fails immediately with the accepted values instead of deep in
	// machine construction. The empty string is valid for the library
	// (it defers to Config.UsePAS) but an empty -sched on the CLI is a
	// mistake, e.g. an unset shell variable.
	if *schedName == "" || !fleet.ValidScheduler(*schedName) {
		fmt.Fprintf(errOut, "pasfleet: unknown scheduler %q (accepted: %s)\n",
			*schedName, fleet.SchedulerNames())
		return 2
	}
	if *autoPolicy != "" && !autoscale.Valid(*autoPolicy) {
		fmt.Fprintf(errOut, "pasfleet: unknown autoscale policy %q (accepted: %s)\n",
			*autoPolicy, autoscale.Names())
		return 2
	}
	if *shards < 0 {
		fmt.Fprintf(errOut, "pasfleet: invalid shard count %d (accepted: 0 for one per worker, or a positive count)\n", *shards)
		return 2
	}
	streamFormat, streamPath, ok := parseStream(*stream)
	if !ok {
		fmt.Fprintf(errOut, "pasfleet: invalid stream spec %q (accepted: csv, jsonl, csv:path, jsonl:path)\n", *stream)
		return 2
	}
	perfettoPath, ok := parseTraceSpec(*traceSpec)
	if !ok {
		fmt.Fprintf(errOut, "pasfleet: invalid trace spec %q (accepted: perfetto, perfetto:path)\n", *traceSpec)
		return 2
	}
	if *lifetime < 0 {
		fmt.Fprintf(errOut, "pasfleet: invalid mean lifetime %g (accepted: 0 for horizon/10, or a positive duration in seconds)\n", *lifetime)
		return 2
	}
	if *genStream && *vmTracePath != "" {
		fmt.Fprintln(errOut, "pasfleet: -gen-stream conflicts with -vmtrace (the trace is read, not generated)")
		return 2
	}
	if *noReport && *stream == "" && *csvPath == "" && *jsonPath == "" {
		fmt.Fprintln(errOut, "pasfleet: -no-report without -stream discards every result; add -stream csv[:path] or jsonl[:path]")
		return 2
	}
	if *noReport && (*csvPath != "" || *jsonPath != "") {
		fmt.Fprintln(errOut, "pasfleet: -no-report conflicts with -csv/-json (they render the buffered report); use -stream")
		return 2
	}
	// Bind the metrics listener before any construction: a bad or busy
	// address is a flag error, reported with exit 2 like the rest.
	var metricsLn net.Listener
	if *metricsAddr != "" {
		var err error
		metricsLn, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(errOut, "pasfleet: invalid metrics address %q: %v (accepted: host:port, e.g. localhost:6060 or :0)\n",
				*metricsAddr, err)
			return 2
		}
		defer metricsLn.Close()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(errOut, err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(errOut, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(errOut, err)
			}
			f.Close()
		}()
	}

	// The trace flows into the run as a pull-based source. -vmtrace and
	// -gen-stream never materialize the event list — CSV rows (or
	// generator output) stream straight into the fleet as Run pulls them
	// — so trace memory stays O(1) regardless of arrival count. The
	// default generator path still materializes, preserving the exact
	// historical behavior (and error timing) of small runs.
	genCfg := fleet.GenConfig{
		Seed:         *seed,
		Arrivals:     *arrivals,
		Horizon:      sim.FromSeconds(*horizon),
		MeanLifetime: sim.FromSeconds(*lifetime),
	}
	var tr *fleet.Trace
	var src fleet.TraceSource
	var err error
	switch {
	case *vmTracePath != "":
		f, ferr := os.Open(*vmTracePath)
		if ferr != nil {
			fmt.Fprintln(errOut, ferr)
			return 1
		}
		defer f.Close() // the source reads rows lazily during Run
		src, err = fleet.ParseTraceStream(f)
	case *genStream:
		src, err = fleet.GenerateStream(genCfg)
	default:
		tr, err = fleet.Generate(genCfg)
	}
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	if *writeTrace != "" {
		if src == nil {
			src = tr.Source()
		}
		if err := writeFile(*writeTrace, func(w io.Writer) error {
			return fleet.WriteCSVStream(src, w)
		}); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		if tr != nil {
			fmt.Fprintf(out, "wrote %d VM lifecycles to %s\n", len(tr.Events), *writeTrace)
		} else {
			fmt.Fprintf(out, "streamed VM lifecycle trace to %s\n", *writeTrace)
		}
		return 0
	}

	policy, err := fleet.PolicyByName(*policyName)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}

	var sinks []fleet.Sink
	var streamFile *os.File
	if streamFormat != "" {
		w := out
		if streamPath != "" {
			streamFile, err = os.Create(streamPath)
			if err != nil {
				fmt.Fprintln(errOut, err)
				return 1
			}
			defer streamFile.Close()
			w = streamFile
		}
		switch streamFormat {
		case "csv":
			sinks = append(sinks, fleet.NewCSVSink(w))
		case "jsonl":
			sinks = append(sinks, fleet.NewJSONLSink(w))
		}
	}

	var obsCfg fleet.ObsConfig
	var traceFile *os.File
	if perfettoPath != "" {
		traceFile, err = os.Create(perfettoPath)
		if err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		defer traceFile.Close()
		obsCfg = fleet.ObsConfig{Enabled: true, Sink: obs.NewPerfettoWriter(traceFile)}
	}

	fleetCfg := fleet.Config{
		Machines:         fleet.DefaultEstate(*machines),
		Scheduler:        *schedName,
		Policy:           policy,
		ReportEvery:      sim.FromSeconds(*report),
		ConsolidateEvery: sim.FromSeconds(*consolidate),
		Shards:           *shards,
		Workers:          *workers,
		Seed:             *seed,
		Sinks:            sinks,
		DiscardReport:    *noReport,
		Serving:          fleet.ServingConfig{Enabled: *serve, Slots: *serveSlots},
		Obs:              obsCfg,
		Autoscale: fleet.AutoscaleConfig{
			Enabled: *autoPolicy != "",
			Policy:  *autoPolicy,
			Params: autoscale.Params{
				StepPct:     *autoStep,
				MaxCapPct:   *autoMaxCap,
				MaxReplicas: *autoMaxRep,
			},
		},
	}
	var fl *fleet.Fleet
	if src != nil {
		fl, err = fleet.NewStream(fleetCfg, src)
	} else {
		fl, err = fleet.New(fleetCfg, tr)
	}
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}

	if metricsLn != nil {
		liveFleet.Store(fl)
		defer liveFleet.Store(nil)
		publishMetrics()
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		srv := &http.Server{Handler: mux}
		go srv.Serve(metricsLn)
		defer srv.Close()
		fmt.Fprintf(errOut, "pasfleet: serving metrics on http://%s/debug/vars\n", metricsLn.Addr())
	}
	stopStatus := func() {}
	if *status {
		stop := make(chan struct{})
		done := make(chan struct{})
		go heartbeat(errOut, fl, stop, done)
		stopStatus = func() { close(stop); <-done }
	}

	rep, err := fl.Run(sim.FromSeconds(*horizon))
	stopStatus()
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	if streamFile != nil {
		if err := streamFile.Close(); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
		fmt.Fprintf(errOut, "pasfleet: wrote Perfetto trace (%d recorder events) to %s\n",
			rep.Summary.ObsEvents, perfettoPath)
	}

	// When streaming to stdout, keep it machine-readable: no table.
	if streamFormat == "" || streamPath != "" {
		printSummary(out, rep)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, rep.WriteCSV); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, rep.WriteJSON); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
	}
	return 0
}

// liveFleet is the fleet the expvar counters read. expvar names are
// process-global and re-publishing panics, so the published Func reads
// through this pointer and publishMetrics registers it only once even
// when run() executes repeatedly (tests).
var (
	liveFleet   atomic.Pointer[fleet.Fleet]
	publishOnce sync.Once
)

func publishMetrics() {
	publishOnce.Do(func() {
		expvar.Publish("pasfleet", expvar.Func(func() any {
			fl := liveFleet.Load()
			if fl == nil {
				return nil
			}
			simT, events, live := fl.Progress()
			return map[string]int64{
				"sim_us":   int64(simT),
				"events":   events,
				"live_vms": live,
			}
		}))
	})
}

// heartbeat prints one status line per second until stop closes: how
// far simulated time has advanced, how fast it moves against wall
// time, the recorder event count and rate, the live VM population, and
// the process heap footprint.
func heartbeat(w io.Writer, fl *fleet.Fleet, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	lastWall := time.Now()
	var lastSim sim.Time
	var lastEvents int64
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			simT, events, live := fl.Progress()
			wall := now.Sub(lastWall).Seconds()
			if wall <= 0 {
				wall = 1
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			fmt.Fprintf(w, "pasfleet: sim %.1fs (%.1fx wall)  events %d (%.0f/s)  live VMs %d  rss %d MB\n",
				simT.Seconds(), (simT-lastSim).Seconds()/wall,
				events, float64(events-lastEvents)/wall,
				live, ms.HeapInuse>>20)
			lastWall, lastSim, lastEvents = now, simT, events
		}
	}
}

// parseTraceSpec splits a -trace spec into the Perfetto output path.
// Accepted: "", "perfetto", "perfetto:path".
func parseTraceSpec(spec string) (path string, ok bool) {
	if spec == "" {
		return "", true
	}
	format, path, cut := strings.Cut(spec, ":")
	if format != "perfetto" {
		return "", false
	}
	if !cut {
		return "trace.json", true
	}
	if path == "" {
		return "", false
	}
	return path, true
}

// parseStream splits a -stream spec into format and optional path.
// Accepted: "", "csv", "jsonl", "csv:path", "jsonl:path".
func parseStream(spec string) (format, path string, ok bool) {
	if spec == "" {
		return "", "", true
	}
	format, path, _ = strings.Cut(spec, ":")
	switch format {
	case "csv", "jsonl":
		if strings.Contains(spec, ":") && path == "" {
			return "", "", false
		}
		return format, path, true
	}
	return "", "", false
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printSummary renders the run outcome as an aligned table.
func printSummary(out io.Writer, rep *fleet.Report) {
	s := rep.Summary
	tb := metrics.NewTable(fmt.Sprintf("Fleet run: %s scheduler, %s placement", s.Scheduler, s.Policy),
		"quantity", "value")
	tb.AddRow("machines", fmt.Sprintf("%d", s.Machines))
	tb.AddRow("simulated horizon (s)", fmt.Sprintf("%.0f", s.HorizonS))
	tb.AddRow("VMs arrived / departed / rejected", fmt.Sprintf("%d / %d / %d", s.Arrived, s.Departed, s.Rejected))
	tb.AddRow("live migrations", fmt.Sprintf("%d", s.Migrated))
	tb.AddRow("machines ever powered on", fmt.Sprintf("%d", s.EverPoweredOn))
	tb.AddRow("active machines (peak / mean)", fmt.Sprintf("%d / %.1f", s.PeakActiveMachines, s.MeanActiveMachines))
	tb.AddRow("energy (J)", fmt.Sprintf("%.0f", s.TotalJoules))
	tb.AddRow("mean power (W)", fmt.Sprintf("%.1f", s.MeanPowerW))
	tb.AddRow("overall SLA", fmt.Sprintf("%.4f", s.OverallSLA))
	tb.AddRow("mean / min per-VM SLA", fmt.Sprintf("%.4f / %.4f", s.MeanVMSLA, s.MinVMSLA))
	tb.AddRow("VMs below 95% SLA", fmt.Sprintf("%d", s.VMsBelow95))
	if s.RequestsOffered > 0 {
		tb.AddRow("requests offered / completed", fmt.Sprintf("%d / %d", s.RequestsOffered, s.RequestsCompleted))
		tb.AddRow("requests abandoned / retried / in flight",
			fmt.Sprintf("%d / %d / %d", s.RequestsAbandoned, s.RequestsRetried, s.RequestsInFlight))
		tb.AddRow("reply latency p50 / p95 / p99 (ms)",
			fmt.Sprintf("%.2f / %.2f / %.2f", s.ReqP50Ms, s.ReqP95Ms, s.ReqP99Ms))
		tb.AddRow("reply latency mean / max (ms)", fmt.Sprintf("%.2f / %.2f", s.ReqMeanMs, s.ReqMaxMs))
	}
	if s.AutoscaleResizes+s.AutoscaleScaleOuts+s.AutoscaleScaleIns+s.AutoscaleRejected > 0 {
		tb.AddRow("autoscale resizes / rejected", fmt.Sprintf("%d / %d", s.AutoscaleResizes, s.AutoscaleRejected))
		tb.AddRow("autoscale scale-outs / scale-ins", fmt.Sprintf("%d / %d", s.AutoscaleScaleOuts, s.AutoscaleScaleIns))
	}
	if s.ObsEvents > 0 {
		tb.AddRow("recorder events", fmt.Sprintf("%d", s.ObsEvents))
		tb.AddRow("VM time run / downclocked / capped (s)", fmt.Sprintf("%.1f / %.1f / %.1f",
			float64(s.LedgerRunUs)/1e6, float64(s.LedgerDownclockedUs)/1e6, float64(s.LedgerCappedUs)/1e6))
		tb.AddRow("VM time contended / migrating / idle (s)", fmt.Sprintf("%.1f / %.1f / %.1f",
			float64(s.LedgerContendedUs)/1e6, float64(s.LedgerMigratingUs)/1e6, float64(s.LedgerIdleUs)/1e6))
	}
	tb.AddRow("batched / stepped quanta", fmt.Sprintf("%d / %d", s.BatchedQuanta, s.SteppedQuanta))
	if mb, ok := peakRSSMB(); ok {
		tb.AddRow("peak RSS (MB)", fmt.Sprintf("%.1f", mb))
	}
	fmt.Fprintln(out, tb.Render())
}

// peakRSSMB reads the process's high-water resident set size from
// /proc/self/status (VmHWM). Ok is false on platforms without procfs —
// the summary row is simply omitted there.
func peakRSSMB() (float64, bool) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, found := strings.CutPrefix(line, "VmHWM:"); found {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return float64(kb) / 1024, true
				}
			}
		}
	}
	return 0, false
}
