// Command pasplot renders a paper experiment's figure series as an ASCII
// chart, a terminal substitute for the paper's gnuplot figures.
//
// Usage:
//
//	pasplot -exp fig9
//	pasplot -exp fig5 -w 140 -h 30
package main

import (
	"flag"
	"fmt"
	"os"

	"pasched/internal/experiments"
	"pasched/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pasplot", flag.ContinueOnError)
	var (
		exp    = fs.String("exp", "", "experiment identifier (see pasbench -list)")
		width  = fs.Int("w", 110, "chart width in characters")
		height = fs.Int("h", 24, "chart height in characters")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *exp == "" {
		fs.Usage()
		return 2
	}
	res, err := experiments.Run(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(res.Series) == 0 {
		fmt.Fprintf(os.Stderr, "experiment %s has no figure series (a table-only experiment)\n", *exp)
		return 1
	}
	fmt.Printf("%s: %s\n\n", res.ID, res.Title)
	fmt.Println(metrics.ASCIIChart(*width, *height, res.Series...))
	return 0
}
