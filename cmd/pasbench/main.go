// Command pasbench runs the paper-reproduction experiments and prints the
// tables and figure series the paper reports.
//
// Usage:
//
//	pasbench -list            list experiment identifiers
//	pasbench -exp fig9        run one experiment
//	pasbench -all             run every experiment in the paper's order
//
// Exit status is non-zero when a requested experiment fails its shape
// checks, making the command usable as a reproduction gate in CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pasched/internal/experiments"
	"pasched/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("pasbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list = fs.Bool("list", false, "list experiment identifiers and titles")
		exp  = fs.String("exp", "", "run a single experiment by identifier")
		all  = fs.Bool("all", false, "run every experiment")
		csv  = fs.String("csv", "", "also write the experiment's figure series as CSV to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *list:
		for _, id := range experiments.IDs() {
			title, err := experiments.Title(id)
			if err != nil {
				fmt.Fprintln(errOut, err)
				return 1
			}
			fmt.Fprintf(out, "%-20s %s\n", id, title)
		}
		return 0
	case *exp != "":
		return runOne(*exp, *csv, out, errOut)
	case *all:
		status := 0
		for _, id := range experiments.IDs() {
			if rc := runOne(id, "", out, errOut); rc != 0 {
				status = rc
			}
		}
		return status
	default:
		fs.Usage()
		return 2
	}
}

func runOne(id, csvPath string, out, errOut io.Writer) int {
	res, err := experiments.Run(id)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 1
	}
	fmt.Fprintln(out, res.Render())
	if csvPath != "" {
		if err := writeCSV(csvPath, res); err != nil {
			fmt.Fprintln(errOut, err)
			return 1
		}
	}
	if !res.Passed() {
		fmt.Fprintf(errOut, "%s: FAILED checks: %v\n", id, res.FailedChecks())
		return 1
	}
	return 0
}

func writeCSV(path string, res *experiments.Result) error {
	if len(res.Series) == 0 {
		return fmt.Errorf("%s has no figure series to export", res.ID)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteCSV(f, res.Series...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
