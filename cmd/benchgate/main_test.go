package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pasched/internal/host
cpu: Some CPU @ 2.40GHz
BenchmarkHostStep/batched-8         	    1000	    100000 ns/op	      1000 batched_quanta/op
BenchmarkHostStep/batched-8         	    1000	    120000 ns/op	      1000 batched_quanta/op
BenchmarkHostStep/batched-8         	    1000	    110000 ns/op	      1000 batched_quanta/op
BenchmarkHostStep/reference-8       	     100	   1000000 ns/op	         0 batched_quanta/op
BenchmarkDataCenterRun-8            	      50	   2000000 ns/op
PASS
ok  	pasched/internal/host	1.234s
`

func parseSample(t *testing.T, s string) map[string]sampleSet {
	t.Helper()
	got, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBench(t *testing.T) {
	got := parseSample(t, sampleOutput)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	b := got["BenchmarkHostStep/batched"]
	if b == nil {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if n := len(b["ns/op"]); n != 3 {
		t.Fatalf("want 3 ns/op samples, got %d", n)
	}
	if m := median(b["ns/op"]); m != 110000 {
		t.Fatalf("median = %v, want 110000", m)
	}
	if m := median(b["batched_quanta/op"]); m != 1000 {
		t.Fatalf("batched_quanta median = %v", m)
	}
	if got["BenchmarkDataCenterRun"] == nil {
		t.Fatalf("single-metric benchmark missing: %v", got)
	}
}

// shifted rewrites every ns/op value of the sample by the factor.
func shifted(t *testing.T, factor float64) map[string]sampleSet {
	t.Helper()
	out := parseSample(t, sampleOutput)
	for _, units := range out {
		for i, v := range units["ns/op"] {
			units["ns/op"][i] = v * factor
		}
	}
	return out
}

func TestGateDecision(t *testing.T) {
	base := parseSample(t, sampleOutput)
	for _, tt := range []struct {
		name   string
		factor float64
		pass   bool
	}{
		{"equal", 1.0, true},
		{"faster", 0.7, true},
		{"slower-within-gate", 1.08, true},
		{"slower-beyond-gate", 1.25, false},
	} {
		t.Run(tt.name, func(t *testing.T) {
			rep := gate(base, shifted(t, tt.factor), "ns/op", 10)
			if rep.Pass != tt.pass {
				t.Fatalf("factor %v: pass=%v want %v (geomean %v)",
					tt.factor, rep.Pass, tt.pass, rep.GeomeanRatio)
			}
			if rep.Compared != 3 {
				t.Fatalf("compared %d benchmarks, want 3", rep.Compared)
			}
			if math.Abs(rep.GeomeanRatio-tt.factor) > 1e-9 {
				t.Fatalf("geomean %v, want %v", rep.GeomeanRatio, tt.factor)
			}
		})
	}
}

func TestGateDisjointSetsFail(t *testing.T) {
	base := parseSample(t, sampleOutput)
	other := parseSample(t, "BenchmarkSomethingElse-4 100 5 ns/op\n")
	rep := gate(base, other, "ns/op", 10)
	if rep.Pass || rep.Compared != 0 {
		t.Fatalf("disjoint benchmark sets must fail the gate: %+v", rep)
	}
	if len(rep.BaselineOnly) != 3 || len(rep.CurrentOnly) != 1 {
		t.Fatalf("missing-set reporting: %+v", rep)
	}
}

func TestGateMissingBaselineBenchmarkFails(t *testing.T) {
	base := parseSample(t, sampleOutput)
	// The current run lost BenchmarkDataCenterRun (renamed or silently
	// dropped): even with the remaining benchmarks at parity the gate
	// must fail rather than judge a shrunken set.
	cur := parseSample(t, sampleOutput)
	delete(cur, "BenchmarkDataCenterRun")
	rep := gate(base, cur, "ns/op", 10)
	if rep.Pass {
		t.Fatalf("gate passed with a missing baseline benchmark: %+v", rep)
	}
	if rep.Compared != 2 || len(rep.BaselineOnly) != 1 {
		t.Fatalf("missing-set reporting: %+v", rep)
	}
	// A benchmark appearing only in the current run is fine.
	cur2 := parseSample(t, sampleOutput+"BenchmarkNew-8 100 5 ns/op\n")
	if rep := gate(base, cur2, "ns/op", 10); !rep.Pass || len(rep.CurrentOnly) != 1 {
		t.Fatalf("new benchmarks must not fail the gate: %+v", rep)
	}
}

func TestGateUnusableMetricFails(t *testing.T) {
	base := parseSample(t, sampleOutput)
	// A corrupted current run reports 0 ns/op for one benchmark: it must
	// be surfaced as skipped and fail the gate, not silently shrink the
	// comparison set.
	cur := parseSample(t, sampleOutput)
	for i := range cur["BenchmarkDataCenterRun"]["ns/op"] {
		cur["BenchmarkDataCenterRun"]["ns/op"][i] = 0
	}
	rep := gate(base, cur, "ns/op", 10)
	if rep.Pass {
		t.Fatalf("gate passed with an unusable metric: %+v", rep)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "BenchmarkDataCenterRun" {
		t.Fatalf("skipped reporting: %+v", rep)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	curPath := filepath.Join(dir, "cur.txt")
	jsonPath := filepath.Join(dir, "BENCH_ci.json")
	if err := os.WriteFile(basePath, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// Identical current run: passes and writes the artifact.
	if err := os.WriteFile(curPath, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if rc := run([]string{
		"-baseline", basePath, "-current", curPath, "-json", jsonPath,
	}, &out, &errOut); rc != 0 {
		t.Fatalf("rc=%d, stderr=%s", rc, errOut.String())
	}
	if !strings.Contains(out.String(), "benchgate: PASS") {
		t.Fatalf("stdout: %s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep gateReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Compared != 3 {
		t.Fatalf("artifact: %+v", rep)
	}
	if rep.Benchmarks[0].Extra == nil && rep.Benchmarks[1].Extra == nil {
		t.Fatalf("secondary metrics not preserved: %+v", rep.Benchmarks)
	}
	// A 25% slowdown fails with exit code 1.
	slow := strings.ReplaceAll(sampleOutput, "    100000 ns/op", "    125000 ns/op")
	slow = strings.ReplaceAll(slow, "    120000 ns/op", "    150000 ns/op")
	slow = strings.ReplaceAll(slow, "    110000 ns/op", "    137500 ns/op")
	slow = strings.ReplaceAll(slow, "   1000000 ns/op", "   1250000 ns/op")
	slow = strings.ReplaceAll(slow, "   2000000 ns/op", "   2500000 ns/op")
	if err := os.WriteFile(curPath, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if rc := run([]string{"-baseline", basePath, "-current", curPath}, &out, &errOut); rc != 1 {
		t.Fatalf("rc=%d for 25%% slowdown, stderr=%s", rc, errOut.String())
	}
	if !strings.Contains(errOut.String(), "FAIL") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}
