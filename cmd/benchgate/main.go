// Command benchgate compares two Go benchmark outputs and fails when the
// current run is more than a configured percentage slower than the
// committed baseline, by geometric mean across the benchmarks present in
// both files. It is the enforcement half of the CI benchmark gate
// (benchstat renders the human-readable comparison; benchgate decides).
//
// Usage:
//
//	benchgate -baseline bench_baseline.txt -current bench_new.txt \
//	    -max-slowdown-pct 10 -json BENCH_ci.json
//
// Benchmark names are compared with their GOMAXPROCS suffix stripped
// (BenchmarkHostStep/batched-8 and -16 are the same benchmark), and
// repeated runs of the same benchmark (-count=N) are folded to their
// median, which is robust against one noisy CI sample. Secondary metrics
// (batched_quanta/op and friends) are carried into the JSON report so the
// artifact preserves them, but only the primary metric gates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sampleSet collects every recorded value for one (benchmark, unit) pair.
type sampleSet map[string][]float64

// parseBench reads `go test -bench` output and returns, per stripped
// benchmark name, the samples of every reported unit.
func parseBench(r io.Reader) (map[string]sampleSet, error) {
	out := make(map[string]sampleSet)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: not a result line
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			if out[name] == nil {
				out[name] = make(sampleSet)
			}
			out[name][unit] = append(out[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stripProcs drops the trailing -N GOMAXPROCS suffix from a benchmark
// name, so runs on machines with different core counts still compare.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// median returns the middle sample (mean of the middle two for even
// counts); zero for an empty set.
func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// benchReport is one benchmark's row in the JSON artifact.
type benchReport struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline_median"`
	Current  float64 `json:"current_median"`
	Ratio    float64 `json:"ratio"`
	Samples  int     `json:"current_samples"`
	// Extra holds the medians of the current run's secondary metrics
	// (e.g. batched_quanta/op), preserved for the artifact.
	Extra map[string]float64 `json:"extra_metrics,omitempty"`
}

// gateReport is the JSON artifact written with -json.
type gateReport struct {
	Metric         string   `json:"metric"`
	MaxSlowdownPct float64  `json:"max_slowdown_pct"`
	GeomeanRatio   float64  `json:"geomean_ratio"`
	Pass           bool     `json:"pass"`
	Compared       int      `json:"compared_benchmarks"`
	BaselineOnly   []string `json:"baseline_only,omitempty"`
	CurrentOnly    []string `json:"current_only,omitempty"`
	// Skipped lists benchmarks present in both files whose primary
	// metric has no positive median on one side (truncated or corrupted
	// output); they fail the gate like BaselineOnly entries do.
	Skipped         []string      `json:"skipped,omitempty"`
	Benchmarks      []benchReport `json:"benchmarks"`
	GateDescription string        `json:"gate"`
}

// gate compares the two parsed outputs on the primary metric and returns
// the report; it is pure so the tests can drive it directly.
func gate(baseline, current map[string]sampleSet, metric string, maxSlowdownPct float64) gateReport {
	rep := gateReport{
		Metric:         metric,
		MaxSlowdownPct: maxSlowdownPct,
		GateDescription: fmt.Sprintf(
			"fail when geomean(current/baseline %s) exceeds %+.0f%%", metric, maxSlowdownPct),
	}
	logSum, n := 0.0, 0
	for name, cur := range current {
		base, ok := baseline[name]
		if !ok {
			rep.CurrentOnly = append(rep.CurrentOnly, name)
			continue
		}
		bm, cm := median(base[metric]), median(cur[metric])
		if bm <= 0 || cm <= 0 {
			rep.Skipped = append(rep.Skipped, name)
			continue
		}
		row := benchReport{
			Name:     name,
			Baseline: bm,
			Current:  cm,
			Ratio:    cm / bm,
			Samples:  len(cur[metric]),
		}
		for unit, samples := range cur {
			if unit == metric {
				continue
			}
			if row.Extra == nil {
				row.Extra = make(map[string]float64)
			}
			row.Extra[unit] = median(samples)
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		logSum += math.Log(row.Ratio)
		n++
	}
	for name := range baseline {
		if _, ok := current[name]; !ok {
			rep.BaselineOnly = append(rep.BaselineOnly, name)
		}
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})
	sort.Strings(rep.BaselineOnly)
	sort.Strings(rep.CurrentOnly)
	sort.Strings(rep.Skipped)
	rep.Compared = n
	rep.GeomeanRatio = 1
	if n > 0 {
		rep.GeomeanRatio = math.Exp(logSum / float64(n))
	}
	// A baseline benchmark missing from the current run — or present but
	// without a usable primary metric — is a gate failure, not a free
	// pass: nothing may silently shrink the comparison set.
	rep.Pass = n > 0 && len(rep.BaselineOnly) == 0 && len(rep.Skipped) == 0 &&
		rep.GeomeanRatio <= 1+maxSlowdownPct/100
	return rep
}

func parseFile(path string) (map[string]sampleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBench(f)
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		baselinePath = fs.String("baseline", "bench_baseline.txt", "committed baseline benchmark output")
		currentPath  = fs.String("current", "", "freshly measured benchmark output")
		metric       = fs.String("metric", "ns/op", "primary metric to gate on")
		maxSlowdown  = fs.Float64("max-slowdown-pct", 10, "failing geomean slowdown threshold, percent")
		jsonPath     = fs.String("json", "", "also write the comparison report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *currentPath == "" {
		fmt.Fprintln(errOut, "benchgate: -current is required")
		return 2
	}
	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(errOut, "benchgate: baseline: %v\n", err)
		return 2
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(errOut, "benchgate: current: %v\n", err)
		return 2
	}
	rep := gate(baseline, current, *metric, *maxSlowdown)
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(out, "%-50s %14.0f -> %14.0f %s  (%+.1f%%)\n",
			b.Name, b.Baseline, b.Current, rep.Metric, (b.Ratio-1)*100)
	}
	for _, name := range rep.BaselineOnly {
		fmt.Fprintf(out, "%-50s only in baseline\n", name)
	}
	for _, name := range rep.CurrentOnly {
		fmt.Fprintf(out, "%-50s only in current run\n", name)
	}
	for _, name := range rep.Skipped {
		fmt.Fprintf(out, "%-50s no usable %s median\n", name, rep.Metric)
	}
	fmt.Fprintf(out, "geomean ratio %.4f over %d benchmarks (gate: <= %.4f)\n",
		rep.GeomeanRatio, rep.Compared, 1+rep.MaxSlowdownPct/100)
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "benchgate: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(errOut, "benchgate: %v\n", err)
			return 2
		}
	}
	if !rep.Pass {
		switch {
		case rep.Compared == 0:
			fmt.Fprintln(errOut, "benchgate: FAIL — no comparable benchmarks between the two files")
		case len(rep.BaselineOnly) > 0:
			fmt.Fprintf(errOut, "benchgate: FAIL — baseline benchmarks missing from the current run: %s\n",
				strings.Join(rep.BaselineOnly, ", "))
		case len(rep.Skipped) > 0:
			fmt.Fprintf(errOut, "benchgate: FAIL — benchmarks without a usable %s median: %s\n",
				rep.Metric, strings.Join(rep.Skipped, ", "))
		default:
			fmt.Fprintf(errOut, "benchgate: FAIL — %.1f%% geomean slowdown exceeds the %.0f%% gate\n",
				(rep.GeomeanRatio-1)*100, rep.MaxSlowdownPct)
		}
		return 1
	}
	fmt.Fprintln(out, "benchgate: PASS")
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
