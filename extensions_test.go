package pasched_test

import (
	"testing"

	"pasched"
)

func TestClusterFacade(t *testing.T) {
	c, err := pasched.NewCluster(pasched.ClusterConfig{
		Profile: pasched.Optiplex755(),
		Cores:   2,
		Domain:  pasched.PerCoreDVFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores() != 2 {
		t.Errorf("Cores = %d, want 2", c.Cores())
	}
	if err := c.Run(pasched.Second); err != nil {
		t.Fatal(err)
	}
	f, err := c.CoreFreq(0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1600 {
		t.Errorf("idle core frequency = %v, want 1600", f)
	}
}

func TestDataCenterFacade(t *testing.T) {
	spec := pasched.MachineSpec{MemoryMB: 4096, Profile: pasched.Optiplex755()}
	dc, err := pasched.NewDataCenter(spec, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	vms := []pasched.DataCenterVM{
		{Name: "a", CreditPct: 20, MemoryMB: 1024, Activity: 0.5},
		{Name: "b", CreditPct: 20, MemoryMB: 1024, Activity: 0.5},
	}
	placement, err := pasched.PackVMs(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if placement.Hosts != 1 {
		t.Errorf("Hosts = %d, want 1", placement.Hosts)
	}
	for _, v := range vms {
		if err := dc.Place(v, placement.Assignments[v.Name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.Run(5 * pasched.Second); err != nil {
		t.Fatal(err)
	}
	if dc.TotalJoules() <= 0 {
		t.Error("no energy accounted")
	}
}
