package pasched

import (
	"fmt"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// System is the high-level entry point: a configured simulated host with
// convenience methods for adding VMs and running the simulation.
type System struct {
	host *host.Host
	cpu  *cpufreq.CPU
	pas  *core.PAS
	pc2  *core.PASCredit2
	next vm.ID
}

// Option configures NewSystem.
type Option func(*systemConfig) error

type systemConfig struct {
	profile    *cpufreq.Profile
	scheduler  sched.Scheduler
	governor   governor.Governor
	pas        bool
	pasCredit2 bool
	pasCF      []float64
	quantum    sim.Time
	dom0       bool
	reference  bool
}

// WithProfile selects the processor architecture. Default: Optiplex755.
func WithProfile(p *Profile) Option {
	return func(c *systemConfig) error {
		if p == nil {
			return fmt.Errorf("pasched: nil profile")
		}
		c.profile = p
		return nil
	}
}

// WithScheduler installs an explicit scheduler (e.g. one built from the
// internal packages in advanced use). Mutually exclusive with WithPAS,
// WithCreditScheduler and WithSEDFScheduler.
func WithScheduler(s Scheduler) Option {
	return func(c *systemConfig) error {
		if s == nil {
			return fmt.Errorf("pasched: nil scheduler")
		}
		if c.scheduler != nil || c.pas || c.pasCredit2 {
			return fmt.Errorf("pasched: scheduler already configured")
		}
		c.scheduler = s
		return nil
	}
}

// WithCreditScheduler selects the Xen Credit scheduler (fix credit): each
// VM's credit is guaranteed and hard-capped.
func WithCreditScheduler() Option {
	return func(c *systemConfig) error {
		if c.scheduler != nil || c.pas || c.pasCredit2 {
			return fmt.Errorf("pasched: scheduler already configured")
		}
		c.scheduler = sched.NewCredit(sched.CreditConfig{})
		return nil
	}
}

// WithSEDFScheduler selects the Xen SEDF scheduler with extratime
// (variable credit): unused slices are donated to busy VMs.
func WithSEDFScheduler() Option {
	return func(c *systemConfig) error {
		if c.scheduler != nil || c.pas || c.pasCredit2 {
			return fmt.Errorf("pasched: scheduler already configured")
		}
		c.scheduler = sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true})
		return nil
	}
}

// WithPAS selects the paper's Power-Aware Scheduler: Credit scheduling
// with per-tick DVFS management and frequency-compensated credits.
func WithPAS() Option {
	return func(c *systemConfig) error {
		if c.scheduler != nil || c.pasCredit2 {
			return fmt.Errorf("pasched: scheduler already configured")
		}
		c.pas = true
		return nil
	}
}

// WithPASCredit2 selects the Credit2-based PAS variant: the same
// per-tick DVFS policy as PAS, but enforcement through
// weight-proportional work-conserving Credit2 scheduling (weights
// refreshed from the contracted credits at the PAS cadence) instead of
// hard compensated caps.
func WithPASCredit2() Option {
	return func(c *systemConfig) error {
		if c.scheduler != nil || c.pas {
			return fmt.Errorf("pasched: scheduler already configured")
		}
		c.pasCredit2 = true
		return nil
	}
}

// WithPASCF supplies a measured per-P-state cf table for PAS (see
// internal/calib); by default PAS uses the profile's ground-truth
// efficiency table.
func WithPASCF(cf []float64) Option {
	return func(c *systemConfig) error {
		c.pasCF = cf
		return nil
	}
}

// WithGovernor installs a DVFS governor. Ignored (and rejected) with
// WithPAS, which manages the frequency itself.
func WithGovernor(g Governor) Option {
	return func(c *systemConfig) error {
		if g == nil {
			return fmt.Errorf("pasched: nil governor")
		}
		c.governor = g
		return nil
	}
}

// WithPerformanceGovernor pins the frequency at the maximum.
func WithPerformanceGovernor() Option {
	return func(c *systemConfig) error {
		c.governor = &governor.Performance{}
		return nil
	}
}

// WithOndemandGovernor installs the paper's smoothed ondemand governor.
func WithOndemandGovernor() Option {
	return func(c *systemConfig) error {
		g, err := governor.NewPaperOndemand(governor.PaperOndemandConfig{})
		if err != nil {
			return err
		}
		c.governor = g
		return nil
	}
}

// WithQuantum overrides the scheduling quantum (default 1 ms).
func WithQuantum(q Time) Option {
	return func(c *systemConfig) error {
		if q <= 0 {
			return fmt.Errorf("pasched: quantum must be positive, got %v", q)
		}
		c.quantum = q
		return nil
	}
}

// WithDom0 adds a Dom0 VM (10% credit, highest priority) as in the
// paper's evaluation setup (Section 5.3).
func WithDom0() Option {
	return func(c *systemConfig) error {
		c.dom0 = true
		return nil
	}
}

// WithReferenceStepping disables the simulation engine's event-horizon
// batching and advances the host strictly one scheduling quantum at a
// time. Batched and reference runs produce the same traces (the host's
// equivalence tests enforce it); the switch exists for debugging and for
// validating new schedulers, governors or workloads against the
// reference semantics.
func WithReferenceStepping() Option {
	return func(c *systemConfig) error {
		c.reference = true
		return nil
	}
}

// NewSystem builds a simulated virtualized host. With no options it is an
// Optiplex 755 under the PAS scheduler.
func NewSystem(opts ...Option) (*System, error) {
	cfg := systemConfig{}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.profile == nil {
		cfg.profile = cpufreq.Optiplex755()
	}
	if cfg.scheduler == nil && !cfg.pas && !cfg.pasCredit2 {
		cfg.pas = true
	}
	if (cfg.pas || cfg.pasCredit2) && cfg.governor != nil {
		return nil, fmt.Errorf("pasched: PAS manages DVFS itself; do not install a governor")
	}

	cpu, err := cpufreq.NewCPU(cfg.profile)
	if err != nil {
		return nil, err
	}
	var pas *core.PAS
	var pc2 *core.PASCredit2
	s := cfg.scheduler
	cf := cfg.pasCF
	if cf == nil {
		cf = cfg.profile.EfficiencyTable()
	}
	if cfg.pas {
		pas, err = core.NewPAS(core.PASConfig{CPU: cpu, CF: cf})
		if err != nil {
			return nil, err
		}
		s = pas
	}
	if cfg.pasCredit2 {
		pc2, err = core.NewPASCredit2(core.PASCredit2Config{CPU: cpu, CF: cf})
		if err != nil {
			return nil, err
		}
		s = pc2
	}
	h, err := host.New(host.Config{
		CPU:       cpu,
		Scheduler: s,
		Governor:  cfg.governor,
		Quantum:   cfg.quantum,
		Reference: cfg.reference,
	})
	if err != nil {
		return nil, err
	}
	if pas != nil {
		pas.BindLoadSource(h)
	}
	if pc2 != nil {
		pc2.BindLoadSource(h)
	}
	sys := &System{host: h, cpu: cpu, pas: pas, pc2: pc2, next: 1}
	if cfg.dom0 {
		dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
		if err != nil {
			return nil, err
		}
		if err := h.AddVM(dom0); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// AddVM creates and registers a VM with the given name and credit
// percentage (its SLA at maximum frequency). A zero credit creates a
// "null credit" VM with no guarantee and no cap.
func (s *System) AddVM(name string, creditPct float64) (*VM, error) {
	v, err := vm.New(s.next, vm.Config{Name: name, Credit: creditPct})
	if err != nil {
		return nil, err
	}
	if err := s.host.AddVM(v); err != nil {
		return nil, err
	}
	s.next++
	return v, nil
}

// Run advances the simulation by d.
func (s *System) Run(d Time) error { return s.host.Run(d) }

// RunUntil advances the simulation to absolute time t.
func (s *System) RunUntil(t Time) error { return s.host.RunUntil(t) }

// Now returns the current simulated time.
func (s *System) Now() Time { return s.host.Now() }

// Host exposes the underlying host for advanced use (events, agents,
// custom metrics).
func (s *System) Host() *Host { return s.host }

// CPU returns the simulated processor.
func (s *System) CPU() *CPU { return s.cpu }

// PAS returns the PAS scheduler, or nil when another scheduler was
// selected.
func (s *System) PAS() *PAS { return s.pas }

// PASCredit2 returns the Credit2-based PAS scheduler, or nil when
// another scheduler was selected.
func (s *System) PASCredit2() *PASCredit2 { return s.pc2 }

// Recorder returns the recorded time series (loads, frequency, caps).
func (s *System) Recorder() *Recorder { return s.host.Recorder() }

// Energy returns the host's energy meter.
func (s *System) Energy() *EnergyMeter { return s.host.Energy() }

// GlobalLoad returns the averaged recent processor utilization in [0,1].
func (s *System) GlobalLoad() float64 { return s.host.GlobalLoad() }
