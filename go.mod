module pasched

go 1.24
