package pasched

import (
	"pasched/internal/consolidation"
	"pasched/internal/multicore"
)

// Extension type aliases: the multi-core DVFS cluster (the paper's
// Section 7 perspective) and the consolidation data center (Section 2.3).
type (
	// Cluster is a multi-core host under cluster-level PAS coordination.
	Cluster = multicore.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = multicore.Config
	// DVFSDomain selects per-core or per-socket frequency domains.
	DVFSDomain = multicore.DVFSDomain
	// DataCenter is a fleet of machines with live VM migration and power
	// management.
	DataCenter = consolidation.DataCenter
	// DataCenterVM describes a VM to place in a DataCenter.
	DataCenterVM = consolidation.VMSpec
	// MachineSpec describes the fleet's physical machines.
	MachineSpec = consolidation.HostSpec
	// MigrationPlan is one proposed VM move.
	MigrationPlan = consolidation.Migration
)

// DVFS domain granularities for ClusterConfig.
const (
	// PerCoreDVFS gives every core an independent frequency.
	PerCoreDVFS = multicore.PerCore
	// PerSocketDVFS shares one frequency across all cores.
	PerSocketDVFS = multicore.PerSocket
)

// NewCluster builds a multi-core host whose frequency domains are managed
// by cluster-level PAS coordination.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return multicore.New(cfg) }

// NewDataCenter builds a fleet of n identical machines, all powered on and
// empty, each under PAS (usePAS) or a fix-credit scheduler at the maximum
// frequency.
func NewDataCenter(spec MachineSpec, n int, usePAS bool) (*DataCenter, error) {
	return consolidation.NewDataCenter(spec, n, usePAS)
}

// PackVMs places VMs onto the fewest machines that satisfy both the memory
// capacity and the CPU-credit capacity (first-fit decreasing by memory).
func PackVMs(vms []DataCenterVM, spec MachineSpec) (*consolidation.Placement, error) {
	return consolidation.PackFFD(vms, spec)
}
