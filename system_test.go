package pasched_test

import (
	"math"
	"testing"

	"pasched"
)

func TestNewSystemDefaultsToPAS(t *testing.T) {
	sys, err := pasched.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if sys.PAS() == nil {
		t.Error("default system has no PAS scheduler")
	}
	if sys.CPU().Profile().Name != pasched.Optiplex755().Name {
		t.Errorf("default profile = %q", sys.CPU().Profile().Name)
	}
}

func TestQuickstartFlow(t *testing.T) {
	// The doc-comment quick start, verified.
	sys, err := pasched.NewSystem(pasched.WithPAS(), pasched.WithDom0())
	if err != nil {
		t.Fatal(err)
	}
	v20, err := sys.AddVM("V20", 20)
	if err != nil {
		t.Fatal(err)
	}
	v20.SetWorkload(pasched.CPUHog())
	if err := sys.Run(30 * pasched.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.CPU().Freq(); got != 1600 {
		t.Errorf("frequency = %v, want 1600 (underloaded host)", got)
	}
	cap, err := sys.PAS().EffectiveCap(v20.ID())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-33.34) > 0.2 {
		t.Errorf("effective cap = %.2f, want ~33.3", cap)
	}
	abs, _ := sys.Recorder().Series("V20_absolute_pct").MeanBetween(5, 30)
	if math.Abs(abs-20) > 1 {
		t.Errorf("V20 absolute load = %.2f%%, want ~20%%", abs)
	}
	if sys.Energy().Joules() <= 0 {
		t.Error("no energy accounted")
	}
	if sys.Now() != 30*pasched.Second {
		t.Errorf("Now = %v", sys.Now())
	}
}

func TestSchedulerOptionsAreExclusive(t *testing.T) {
	if _, err := pasched.NewSystem(pasched.WithPAS(), pasched.WithCreditScheduler()); err == nil {
		t.Error("PAS + credit accepted")
	}
	if _, err := pasched.NewSystem(pasched.WithCreditScheduler(), pasched.WithSEDFScheduler()); err == nil {
		t.Error("credit + sedf accepted")
	}
	if _, err := pasched.NewSystem(pasched.WithPAS(), pasched.WithPerformanceGovernor()); err == nil {
		t.Error("PAS + governor accepted")
	}
	if _, err := pasched.NewSystem(pasched.WithProfile(nil)); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := pasched.NewSystem(pasched.WithScheduler(nil)); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := pasched.NewSystem(pasched.WithGovernor(nil)); err == nil {
		t.Error("nil governor accepted")
	}
	if _, err := pasched.NewSystem(pasched.WithQuantum(-1)); err == nil {
		t.Error("negative quantum accepted")
	}
}

func TestCreditSchedulerSystem(t *testing.T) {
	sys, err := pasched.NewSystem(
		pasched.WithCreditScheduler(),
		pasched.WithPerformanceGovernor(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.PAS() != nil {
		t.Error("credit system has a PAS")
	}
	v, err := sys.AddVM("V50", 50)
	if err != nil {
		t.Fatal(err)
	}
	v.SetWorkload(pasched.CPUHog())
	if err := sys.Run(5 * pasched.Second); err != nil {
		t.Fatal(err)
	}
	if got := sys.GlobalLoad(); math.Abs(got-0.5) > 0.02 {
		t.Errorf("GlobalLoad = %v, want ~0.5", got)
	}
}

func TestSEDFSchedulerSystem(t *testing.T) {
	sys, err := pasched.NewSystem(
		pasched.WithSEDFScheduler(),
		pasched.WithOndemandGovernor(),
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.AddVM("V20", 20)
	if err != nil {
		t.Fatal(err)
	}
	v.SetWorkload(pasched.CPUHog())
	if err := sys.Run(10 * pasched.Second); err != nil {
		t.Fatal(err)
	}
	// Variable credit: the single busy VM gets essentially the whole CPU.
	if got := sys.GlobalLoad(); got < 0.95 {
		t.Errorf("GlobalLoad = %v, want ~1 (extratime)", got)
	}
}

func TestEquationHelpers(t *testing.T) {
	c, err := pasched.CompensatedCredit(20, 0.5, 1)
	if err != nil || c != 40 {
		t.Errorf("CompensatedCredit = %v, %v", c, err)
	}
	if got := pasched.AbsoluteLoad(40, 0.5, 1); got != 20 {
		t.Errorf("AbsoluteLoad = %v", got)
	}
	if got := pasched.ComputeNewFreq(pasched.Optiplex755(), nil, 21); got != 1600 {
		t.Errorf("ComputeNewFreq = %v", got)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	if _, err := pasched.NewPiApp(0); err == nil {
		t.Error("NewPiApp(0) accepted")
	}
	if got := pasched.PiWorkFor(1000, 50, 2); got != 1000 {
		t.Errorf("PiWorkFor = %v, want 1000", got)
	}
	rate := pasched.ExactRate(2667e6, 20, 0)
	if rate <= 0 {
		t.Errorf("ExactRate = %v", rate)
	}
	w, err := pasched.NewWebApp(pasched.WebAppConfig{
		Phases: []pasched.WebPhase{{Start: 0, End: pasched.Second, Rate: rate}},
	})
	if err != nil || w == nil {
		t.Fatalf("NewWebApp: %v", err)
	}
	if pasched.IdleWorkload().Pending() != 0 {
		t.Error("IdleWorkload has work")
	}
	if pasched.CPUHog().Pending() <= 0 {
		t.Error("CPUHog has no work")
	}
}

func TestExperimentRegistryViaFacade(t *testing.T) {
	ids := pasched.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	title, err := pasched.ExperimentTitle(ids[0])
	if err != nil || title == "" {
		t.Errorf("ExperimentTitle = %q, %v", title, err)
	}
	if _, err := pasched.RunExperiment("nope"); err == nil {
		t.Error("RunExperiment(nope) succeeded")
	}
}

func TestTable1ProfilesFacade(t *testing.T) {
	if got := len(pasched.Table1Profiles()); got != 5 {
		t.Errorf("Table1Profiles returned %d, want 5", got)
	}
	if pasched.Elite8300().Max() != 3400 {
		t.Error("Elite8300 max frequency wrong")
	}
}
