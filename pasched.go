// Package pasched is a discrete-time simulation library reproducing
// "DVFS Aware CPU Credit Enforcement in a Virtualized System" (Hagimont,
// Mayap Kamga, Broto, Tchana, De Palma — ACM/IFIP/USENIX Middleware 2013).
//
// The library models a virtualized host — a DVFS-capable processor, Xen's
// Credit and SEDF schedulers, the standard Linux cpufreq governors — and
// implements the paper's contribution: PAS, a Power-Aware Scheduler that
// recomputes VM credits whenever the processor frequency changes so that
// every VM always receives exactly the absolute computing capacity its
// credit bought at the maximum frequency, while the frequency is lowered
// (saving energy) whenever the host's absolute load allows.
//
// # Quick start
//
//	sys, err := pasched.NewSystem(pasched.WithPAS())
//	if err != nil { ... }
//	v20, err := sys.AddVM("V20", 20)
//	if err != nil { ... }
//	v20.SetWorkload(pasched.CPUHog())
//	if err := sys.Run(30 * pasched.Second); err != nil { ... }
//	fmt.Println(sys.CPU().Freq())          // 1600MHz: host underloaded
//	cap, _ := sys.PAS().EffectiveCap(v20.ID()) // 33.3%: compensated credit
//
// The full evaluation of the paper is reproducible through the experiment
// harness (RunExperiment / ExperimentIDs) and the cmd/pasbench command.
//
// Package layout: the facade re-exports the types a typical user needs;
// the subsystems live in internal packages (internal/core is the PAS
// scheduler itself, internal/sched the Xen scheduler models, and so on;
// see DESIGN.md for the full inventory).
package pasched

import (
	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/engine"
	"pasched/internal/experiments"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/metrics"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// Core type aliases. These are true aliases: values are interchangeable
// with the underlying implementation types.
type (
	// Time is simulated time in microseconds.
	Time = sim.Time
	// Freq is a processor frequency in MHz.
	Freq = cpufreq.Freq
	// Profile describes a processor architecture (P-state ladder, power
	// model, efficiency curve).
	Profile = cpufreq.Profile
	// CPU is a simulated processor core with a current P-state.
	CPU = cpufreq.CPU
	// VM is a virtual machine as the hypervisor scheduler sees it.
	VM = vm.VM
	// VMID identifies a VM within a host.
	VMID = vm.ID
	// VMConfig is the creation-time configuration of a VM.
	VMConfig = vm.Config
	// Host is the simulated virtualized machine.
	Host = host.Host
	// Scheduler decides which VM occupies the processor each quantum.
	Scheduler = sched.Scheduler
	// Governor decides the processor frequency from observed load.
	Governor = governor.Governor
	// Workload is the demand source attached to a VM.
	Workload = workload.Workload
	// PAS is the paper's Power-Aware Scheduler.
	PAS = core.PAS

	// PASCredit2 is the Credit2-based PAS variant (weight enforcement).
	PASCredit2 = core.PASCredit2
	// Series is a named time series recorded by the host.
	Series = metrics.Series
	// Recorder is the host's collection of recorded series.
	Recorder = metrics.Recorder
	// EnergyMeter integrates the host's power draw.
	EnergyMeter = energy.Meter
	// Engine is the shared simulation engine: it owns the clock, the
	// event queue and the periodic actions of every simulated machine,
	// and batches uninterrupted stretches of quanta up to the next event
	// horizon (see internal/engine).
	Engine = engine.Engine
	// ExperimentResult is the outcome of a paper-reproduction experiment.
	ExperimentResult = experiments.Result
)

// Simulated-time constants.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Optiplex755 returns the profile of the paper's main evaluation machine:
// the DELL Optiplex 755 (Core 2 Duo 2.66 GHz) with the 1600..2667 MHz
// ladder of Figures 2-10.
func Optiplex755() *Profile { return cpufreq.Optiplex755() }

// Elite8300 returns the profile of the paper's Table 2 machine: the HP
// Compaq Elite 8300 (Core i7-3770 3.4 GHz).
func Elite8300() *Profile { return cpufreq.Elite8300() }

// Table1Profiles returns the five processor profiles of the paper's
// Table 1.
func Table1Profiles() []*Profile { return cpufreq.Table1Profiles() }

// CPUHog returns an always-runnable CPU-bound workload (the thrashing
// extreme: unbounded demand).
func CPUHog() Workload { return &workload.Hog{} }

// IdleWorkload returns a workload that never has work (a lazy VM).
func IdleWorkload() Workload { return workload.Idle{} }

// NewPiApp returns a fixed-size CPU-bound job of the given work units (the
// paper's pi-app). Its completion time is the execution-time metric.
func NewPiApp(work float64) (*workload.PiApp, error) { return workload.NewPiApp(work) }

// PiWorkFor sizes a pi job: the work that takes seconds of execution when
// granted pct percent of a processor whose maximum throughput is
// maxThroughput work units per second.
func PiWorkFor(maxThroughput, pct, seconds float64) float64 {
	return workload.PiWorkFor(maxThroughput, pct, seconds)
}

// WebAppConfig configures an open-loop web-load generator (the paper's
// httperf-driven Web-app).
type WebAppConfig = workload.WebAppConfig

// WebPhase is one active segment of a web-load profile.
type WebPhase = workload.Phase

// NewWebApp returns an open-loop web-load generator.
func NewWebApp(cfg WebAppConfig) (*workload.WebApp, error) { return workload.NewWebApp(cfg) }

// ExactRate returns the request rate that offers exactly pct percent of
// the processor's maximum capacity (the paper's "exact load").
func ExactRate(maxThroughput, pct, requestCost float64) float64 {
	return workload.ExactRate(maxThroughput, pct, requestCost)
}

// CompensatedCredit is the paper's equation (4): the credit that preserves
// a VM's absolute capacity at a reduced frequency.
func CompensatedCredit(initCredit, ratio, cf float64) (float64, error) {
	return core.CompensatedCredit(initCredit, ratio, cf)
}

// ComputeNewFreq is the paper's Listing 1.1: the lowest frequency whose
// capacity absorbs the given absolute load (in percent).
func ComputeNewFreq(prof *Profile, cf []float64, absLoadPct float64) Freq {
	return core.ComputeNewFreq(prof, cf, absLoadPct)
}

// AbsoluteLoad converts a load observed at the current frequency into the
// equivalent load at the maximum frequency (Section 4 of the paper).
func AbsoluteLoad(globalLoad, ratio, cf float64) float64 {
	return core.AbsoluteLoad(globalLoad, ratio, cf)
}

// RunExperiment runs one paper-reproduction experiment by id (e.g. "fig9",
// "table2"); see ExperimentIDs for the list.
func RunExperiment(id string) (*ExperimentResult, error) { return experiments.Run(id) }

// ExperimentIDs returns the identifiers of all paper-reproduction
// experiments, in the paper's order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the descriptive title of an experiment.
func ExperimentTitle(id string) (string, error) { return experiments.Title(id) }
