package pasched_test

import (
	"fmt"
	"strings"
)

// fmtSscan parses the leading float in a table/check cell, tolerating
// trailing annotations.
func fmtSscan(s string, v *float64) (int, error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	return fmt.Sscan(s, v)
}
