// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end,
// fails if the experiment's shape checks fail, and reports the headline
// quantities the paper reports (loads in percent, execution times in
// simulated seconds, degradations in percent) via b.ReportMetric.
//
// Run with:
//
//	go test -bench=. -benchmem
package pasched_test

import (
	"testing"

	"pasched"
	"pasched/internal/autoscale"
	"pasched/internal/fleet"
	"pasched/internal/sim"
	"pasched/internal/workload"
)

// runExperiment executes one experiment per benchmark iteration and
// returns the last result.
func runExperiment(b *testing.B, id string) *pasched.ExperimentResult {
	b.Helper()
	var res *pasched.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pasched.RunExperiment(id)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if !res.Passed() {
			b.Fatalf("experiment %s failed shape checks: %v", id, res.FailedChecks())
		}
	}
	return res
}

// reportTableCell reports the numeric value at (rowLabel, column) of the
// result's first table under the given metric name.
func reportTableCell(b *testing.B, res *pasched.ExperimentResult, row, col int, name string) {
	b.Helper()
	if len(res.Tables) == 0 || row >= len(res.Tables[0].Rows) || col >= len(res.Tables[0].Rows[row]) {
		return
	}
	var v float64
	if _, err := fmtSscan(res.Tables[0].Rows[row][col], &v); err != nil {
		return
	}
	b.ReportMetric(v, name)
}

func BenchmarkVerifyProportionality(b *testing.B) {
	b.Run("verify", func(b *testing.B) {
		res := runExperiment(b, "verify")
		b.ReportMetric(float64(len(res.Checks)), "checks")
	})
	// Contended-host smoke: three hard-capped hogs keep several VMs
	// runnable at once, so the engine's multi-runnable pattern batching
	// must engage. Reporting batched_quanta/op makes every CI benchmark
	// run observe the contended fast path — a zero here means contended
	// hosts silently fell back to quantum-by-quantum stepping. A
	// separate sub-benchmark keeps its timing out of the verify
	// experiment's ns/op.
	b.Run("contended-host", func(b *testing.B) {
		sys, err := pasched.NewSystem(pasched.WithCreditScheduler())
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			name   string
			credit float64
		}{{"V20", 20}, {"V30", 30}, {"V40", 40}} {
			v, err := sys.AddVM(cfg.name, cfg.credit)
			if err != nil {
				b.Fatal(err)
			}
			v.SetWorkload(pasched.CPUHog())
		}
		for i := 0; i < b.N; i++ {
			if err := sys.Run(pasched.Second); err != nil {
				b.Fatal(err)
			}
		}
		eng := sys.Host().Engine()
		perOp := float64(eng.BatchedQuanta()) / float64(b.N)
		b.ReportMetric(perOp, "batched_quanta/op")
		// ~963 of the 1000 quanta per simulated second batch when the
		// rotation path works; idle-only batching (budgets exhausted at
		// period ends) would still score ~100, so the floor must sit
		// well above that to actually guard the contended fast path.
		if perOp < 500 {
			b.Fatalf("contended host batched only %.0f quanta/op; the pattern path regressed", perOp)
		}
	})
}

func BenchmarkFig1Compensation(b *testing.B) {
	res := runExperiment(b, "fig1")
	// The execution time at 20% initial credit, both curves.
	reportTableCell(b, res, 1, 2, "T@2667MHz_credit20_s")
	reportTableCell(b, res, 1, 3, "T@2133MHz_compensated_s")
}

func BenchmarkFig2LoadProfile(b *testing.B) {
	runExperiment(b, "fig2")
}

func BenchmarkFig3StockOndemand(b *testing.B) {
	res := runExperiment(b, "fig3")
	reportCheck(b, res, "frequency transitions across 1s samples", "freq_transitions")
}

func BenchmarkFig4PaperGovernor(b *testing.B) {
	res := runExperiment(b, "fig4")
	reportCheck(b, res, "frequency transitions across 1s samples", "freq_transitions")
}

func BenchmarkFig5AbsoluteLoadsCredit(b *testing.B) {
	res := runExperiment(b, "fig5")
	reportCheck(b, res, "V20 absolute load, phase 1 (%)", "v20_abs_p1_pct")
}

func BenchmarkFig6SEDFGlobalLoads(b *testing.B) {
	res := runExperiment(b, "fig6")
	reportCheck(b, res, "V20 global load, phase 1 (%)", "v20_global_p1_pct")
}

func BenchmarkFig7SEDFAbsoluteLoads(b *testing.B) {
	res := runExperiment(b, "fig7")
	reportCheck(b, res, "V20 absolute load, phase 1 (%)", "v20_abs_p1_pct")
}

func BenchmarkFig8SEDFThrashing(b *testing.B) {
	res := runExperiment(b, "fig8")
	reportCheck(b, res, "V20 global load, phase 1 (%)", "v20_global_p1_pct")
}

func BenchmarkFig9PASGlobalLoads(b *testing.B) {
	res := runExperiment(b, "fig9")
	reportCheck(b, res, "V20 enforced cap, phase 1 (%)", "v20_cap_p1_pct")
}

func BenchmarkFig10PASAbsoluteLoads(b *testing.B) {
	res := runExperiment(b, "fig10")
	reportCheck(b, res, "V20 absolute load, phase 1 (%)", "v20_abs_p1_pct")
}

func BenchmarkTable1CFMeasurement(b *testing.B) {
	res := runExperiment(b, "table1")
	// cf_min of the most deviant part (E5-2620).
	reportCheck(b, res, "cf_min Intel Xeon E5-2620", "cf_min_e5_2620")
}

func BenchmarkTable2Platforms(b *testing.B) {
	res := runExperiment(b, "table2")
	reportCheck(b, res, "Hyper-V degradation (%)", "hyperv_degradation_pct")
	reportCheck(b, res, "Xen/credit degradation (%)", "xen_credit_degradation_pct")
	reportCheck(b, res, "Xen/PAS degradation (%)", "xen_pas_degradation_pct")
}

func BenchmarkAblationImplementation(b *testing.B) {
	runExperiment(b, "ablation-impl")
}

func BenchmarkEnergyAblation(b *testing.B) {
	runExperiment(b, "energy")
}

func BenchmarkAblationGovernors(b *testing.B) {
	runExperiment(b, "ablation-governors")
}

func BenchmarkExtMulticore(b *testing.B) {
	runExperiment(b, "ext-multicore")
}

func BenchmarkExtConsolidation(b *testing.B) {
	runExperiment(b, "ext-consolidation")
}

// benchFleet drives one fleet configuration per benchmark iteration and
// reports batching/SLA metrics plus allocations (allocs/op regressions
// in the arrival/interval hot paths surface in BENCH_ci.json).
func benchFleet(b *testing.B, trace *fleet.Trace, cfg fleet.Config, horizon sim.Time) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var rep *fleet.Report
	for i := 0; i < b.N; i++ {
		fl, err := fleet.New(cfg, trace)
		if err != nil {
			b.Fatal(err)
		}
		rep, err = fl.Run(horizon)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Summary.Arrived == 0 || rep.Summary.BatchedQuanta == 0 {
			b.Fatalf("vacuous fleet run: %+v", rep.Summary)
		}
	}
	b.ReportMetric(float64(rep.Summary.BatchedQuanta), "batched_quanta/op")
	b.ReportMetric(rep.Summary.OverallSLA*100, "overall_sla_pct")
}

// BenchmarkFleetRun measures the trace-driven datacenter simulator.
//
// s1 and s8 drive the historical 200-machine, 1000-lifecycle scenario
// under the DVFS-aware policy with PAS machines — the configuration
// where placement, migration, power management and per-host batching
// all engage — through one inline shard (s1, the no-regression gate)
// and eight worker-stepped shards (s8, the multi-core speedup; both
// produce bit-identical reports).
//
// serve repeats s1 with the request-level serving layer enabled,
// gating its hot-path overhead (client streams, attained-rate service,
// histogram folds) and allocations.
//
// large is the datacenter-scale class: 50k machines, 500k VM
// lifecycles, sharded with streaming discard so memory stays
// O(machines + live VMs). First-fit placement — the O(active-prefix)
// scan — keeps per-arrival cost feasible at this machine count.
func BenchmarkFleetRun(b *testing.B) {
	const horizon = 120 * sim.Second
	trace, err := fleet.Generate(fleet.GenConfig{Seed: 42, Arrivals: 1000, Horizon: horizon})
	if err != nil {
		b.Fatal(err)
	}
	machines := fleet.DefaultEstate(200)
	base := fleet.Config{
		Machines:         machines,
		UsePAS:           true,
		Policy:           fleet.NewDVFSAware(),
		ReportEvery:      30 * sim.Second,
		ConsolidateEvery: 60 * sim.Second,
		Seed:             42,
	}
	b.Run("s1", func(b *testing.B) {
		cfg := base
		cfg.Shards, cfg.Workers = 1, 1
		benchFleet(b, trace, cfg, horizon)
	})
	b.Run("s8", func(b *testing.B) {
		cfg := base
		cfg.Shards, cfg.Workers = 8, 8
		benchFleet(b, trace, cfg, horizon)
	})
	// serve layers the request-level serving model on s1: per-VM client
	// streams, attained-rate service and latency histogram folds all run
	// on the hot path, so this gates the serving layer's overhead and
	// allocations against the plain s1 numbers.
	b.Run("serve", func(b *testing.B) {
		cfg := base
		cfg.Shards, cfg.Workers = 1, 1
		cfg.Serving = fleet.ServingConfig{Enabled: true}
		benchFleet(b, trace, cfg, horizon)
	})
	// obs repeats s1 with the flight recorder enabled (events retained in
	// memory, no sink), gating the enabled-path overhead — per-lane ring
	// emission on refills, state changes and P-state transitions, the
	// attribution ledgers, and the barrier drain/merge — against the
	// plain s1 numbers.
	b.Run("obs", func(b *testing.B) {
		cfg := base
		cfg.Shards, cfg.Workers = 1, 1
		cfg.Obs = fleet.ObsConfig{Enabled: true, Buffer: true}
		benchFleet(b, trace, cfg, horizon)
	})
	// autoscale runs the full elastic loop on top of serve + obs: signal
	// builds at every barrier, ditto policy decisions, cap rebooking and
	// replica scale-out/in with arrival-stream repartitioning. Gates the
	// coordinator-side control-loop overhead and its allocations.
	b.Run("autoscale", func(b *testing.B) {
		cfg := base
		cfg.Shards, cfg.Workers = 1, 1
		cfg.Serving = fleet.ServingConfig{Enabled: true, RequestCost: workload.DefaultRequestCost}
		cfg.Obs = fleet.ObsConfig{Enabled: true, Buffer: true}
		cfg.Autoscale = fleet.AutoscaleConfig{
			Enabled: true,
			Policy:  "ditto",
			Params:  autoscale.Params{MaxCapPct: 30, MaxReplicas: 2, CappedHighPermille: 50},
		}
		benchFleet(b, trace, cfg, horizon)
	})
	// stream repeats s1 with the trace delivered through the pull-based
	// streaming source instead of a materialized Trace: generator events
	// are produced lazily inside Run, so this gates the one-event
	// lookahead, per-event validation and lane-RNG reconstruction against
	// the plain s1 numbers.
	b.Run("stream", func(b *testing.B) {
		cfg := base
		cfg.Shards, cfg.Workers = 1, 1
		gen := fleet.GenConfig{Seed: 42, Arrivals: 1000, Horizon: horizon}
		b.ReportAllocs()
		b.ResetTimer()
		var rep *fleet.Report
		for i := 0; i < b.N; i++ {
			src, err := fleet.GenerateStream(gen)
			if err != nil {
				b.Fatal(err)
			}
			fl, err := fleet.NewStream(cfg, src)
			if err != nil {
				b.Fatal(err)
			}
			rep, err = fl.Run(horizon)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Summary.Arrived == 0 || rep.Summary.BatchedQuanta == 0 {
				b.Fatalf("vacuous fleet run: %+v", rep.Summary)
			}
		}
		b.ReportMetric(float64(rep.Summary.BatchedQuanta), "batched_quanta/op")
		b.ReportMetric(rep.Summary.OverallSLA*100, "overall_sla_pct")
	})
	b.Run("large", func(b *testing.B) {
		const largeHorizon = 300 * sim.Second
		largeTrace, err := fleet.Generate(fleet.GenConfig{
			Seed:         42,
			Arrivals:     500_000,
			Horizon:      largeHorizon,
			MeanLifetime: 30 * sim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchFleet(b, largeTrace, fleet.Config{
			Machines:         fleet.DefaultEstate(50_000),
			UsePAS:           true,
			Policy:           fleet.NewFirstFit(),
			ReportEvery:      60 * sim.Second,
			ConsolidateEvery: 120 * sim.Second,
			Shards:           8,
			Seed:             42,
			DiscardReport:    true,
		}, largeHorizon)
	})
}

// reportCheck reports a named check's measured value as a metric.
func reportCheck(b *testing.B, res *pasched.ExperimentResult, check, name string) {
	b.Helper()
	for _, c := range res.Checks {
		if c.Name == check {
			var v float64
			if _, err := fmtSscan(c.Measured, &v); err == nil {
				b.ReportMetric(v, name)
			}
			return
		}
	}
}
