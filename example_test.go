package pasched_test

import (
	"fmt"
	"log"

	"pasched"
)

// ExampleNewSystem reproduces the paper's core result in a few lines: an
// overloaded 20%-credit VM on an otherwise idle host keeps exactly its
// contracted absolute capacity while the frequency is scaled down.
func ExampleNewSystem() {
	sys, err := pasched.NewSystem(pasched.WithPAS(), pasched.WithDom0())
	if err != nil {
		log.Fatal(err)
	}
	v20, err := sys.AddVM("V20", 20)
	if err != nil {
		log.Fatal(err)
	}
	v20.SetWorkload(pasched.CPUHog())
	if err := sys.Run(30 * pasched.Second); err != nil {
		log.Fatal(err)
	}
	cap, err := sys.PAS().EffectiveCap(v20.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequency: %v\n", sys.CPU().Freq())
	fmt.Printf("enforced cap: %.1f%%\n", cap)
	// Output:
	// frequency: 1600MHz
	// enforced cap: 33.3%
}

// ExampleCompensatedCredit shows equation (4) on the paper's own numbers:
// a 20% credit at half the maximum frequency becomes 40%.
func ExampleCompensatedCredit() {
	c, err := pasched.CompensatedCredit(20, 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f%%\n", c)
	// Output: 40%
}

// ExampleComputeNewFreq walks Listing 1.1: the lowest Optiplex frequency
// whose capacity absorbs a 21% absolute load is the 1600 MHz step (60%
// capacity).
func ExampleComputeNewFreq() {
	f := pasched.ComputeNewFreq(pasched.Optiplex755(), nil, 21)
	fmt.Println(f)
	// Output: 1600MHz
}

// ExampleAbsoluteLoad converts the paper's Section 4 example: a 33.3%
// global load at 1600 of 2667 MHz is a 20% absolute load.
func ExampleAbsoluteLoad() {
	abs := pasched.AbsoluteLoad(33.34, 1600.0/2667.0, 1)
	fmt.Printf("%.0f%%\n", abs)
	// Output: 20%
}
