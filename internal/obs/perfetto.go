package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pasched/internal/sim"
)

// PerfettoWriter streams the recorder's merged event windows as a
// Chrome trace-event JSON file (the legacy JSON format Perfetto and
// chrome://tracing both load). The layout:
//
//   - one process per lane: pid 0 is the coordinator, pid i+1 is
//     machine i (named by process_name metadata);
//   - tid 0 of each machine process is the machine track, carrying
//     refill/pattern instants and the pstate_mhz / batching counters;
//   - each VM seen on a machine gets its own thread (named by
//     thread_name metadata) whose complete ("X") slices tile the VM's
//     residency with its attribution states — run, downclocked,
//     capped, contended, migrating — with idle left as gaps;
//   - coordinator instants record placement, rejection, migration and
//     power decisions, and per-interval latency counters.
//
// Timestamps are the simulation's integer microseconds, which is
// exactly the trace-event "ts" unit, so no conversion happens.
//
// The writer consumes windows in barrier order. Within a lane, event
// times never decrease, so every track's slices and counter samples
// are emitted with monotonically non-decreasing timestamps
// (cmd/tracecheck validates exactly that).
type PerfettoWriter struct {
	w       *bufio.Writer
	err     error
	wrote   bool
	tracks  map[trackKey]*vmTrack
	nextTid map[int32]int64
	procs   map[int32]bool
}

type trackKey struct {
	lane int32
	vm   string
}

// vmTrack is one VM's thread within a machine process.
type vmTrack struct {
	tid       int64
	nameJSON  []byte // JSON-escaped VM name
	queueJSON []byte // JSON-escaped "queue:<vm>" counter name, lazily built
	openAt    sim.Time
	openState State
}

// NewPerfettoWriter returns a writer streaming trace-event JSON to w.
// Call Finish (via the recorder) to close open slices and the JSON
// document; the caller owns closing the underlying writer.
func NewPerfettoWriter(w io.Writer) *PerfettoWriter {
	pw := &PerfettoWriter{
		w:       bufio.NewWriterSize(w, 1<<16),
		tracks:  make(map[trackKey]*vmTrack),
		nextTid: make(map[int32]int64),
		procs:   make(map[int32]bool),
	}
	pw.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	return pw
}

func (p *PerfettoWriter) raw(s string) {
	if p.err == nil {
		_, p.err = p.w.WriteString(s)
	}
}

func (p *PerfettoWriter) emitf(format string, args ...any) {
	if p.err != nil {
		return
	}
	if p.wrote {
		p.raw(",\n")
	}
	p.wrote = true
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// pid maps a lane to its trace process id (the coordinator's lane -1
// becomes pid 0).
func pid(lane int32) int64 { return int64(lane) + 1 }

// process emits the process_name metadata for a lane once.
func (p *PerfettoWriter) process(lane int32) {
	if p.procs[lane] {
		return
	}
	p.procs[lane] = true
	name := "coordinator"
	if lane >= 0 {
		name = fmt.Sprintf("machine-%d", lane)
	}
	p.emitf(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, pid(lane), name)
}

// track returns the VM's thread on lane, creating it (and its metadata
// events) on first sight.
func (p *PerfettoWriter) track(lane int32, vmName string) *vmTrack {
	k := trackKey{lane: lane, vm: vmName}
	if t, ok := p.tracks[k]; ok {
		return t
	}
	p.process(lane)
	p.nextTid[lane]++
	t := &vmTrack{tid: p.nextTid[lane]}
	t.nameJSON, _ = json.Marshal(vmName)
	p.tracks[k] = t
	p.emitf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%s}}`,
		pid(lane), t.tid, t.nameJSON)
	return t
}

// closeSlice emits the open state slice of t (if any) as a complete
// event ending at time at. Idle spans are gaps: no slice is emitted.
func (p *PerfettoWriter) closeSlice(lane int32, t *vmTrack, at sim.Time) {
	st := t.openState
	t.openState = StateNone
	if st == StateNone || st == StateIdle {
		return
	}
	p.emitf(`{"ph":"X","name":%q,"cat":"vm","pid":%d,"tid":%d,"ts":%d,"dur":%d}`,
		st.String(), pid(lane), t.tid, int64(t.openAt), int64(at-t.openAt))
}

// counter emits one counter sample; name must be pre-escaped JSON.
func (p *PerfettoWriter) counter(lane int32, nameJSON []byte, at sim.Time, v int64) {
	p.process(lane)
	p.emitf(`{"ph":"C","name":%s,"pid":%d,"tid":0,"ts":%d,"args":{"value":%d}}`,
		nameJSON, pid(lane), int64(at), v)
}

// instant emits one instant event on (lane, tid).
func (p *PerfettoWriter) instant(lane int32, tid int64, name string, at sim.Time, args string) {
	p.process(lane)
	if args == "" {
		p.emitf(`{"ph":"i","s":"t","name":%q,"pid":%d,"tid":%d,"ts":%d}`,
			name, pid(lane), tid, int64(at))
		return
	}
	p.emitf(`{"ph":"i","s":"t","name":%q,"pid":%d,"tid":%d,"ts":%d,"args":{%s}}`,
		name, pid(lane), tid, int64(at), args)
}

// boundaryNames are the pre-escaped counter names for KindBoundary
// sources, keyed by the shared source-name strings.
var boundaryNames = func() map[string][]byte {
	m := make(map[string][]byte, len(BoundarySourceNames))
	for _, s := range BoundarySourceNames {
		b, _ := json.Marshal("batch:" + s)
		m[s] = b
	}
	return m
}()

var (
	pstateName = []byte(`"pstate_mhz"`)
	p50Name    = []byte(`"req_p50_us"`)
	p99Name    = []byte(`"req_p99_us"`)
)

// Events implements EventSink.
func (p *PerfettoWriter) Events(window []Event) error {
	for i := range window {
		e := &window[i]
		switch e.Kind {
		case KindVMState:
			t := p.track(e.Lane, e.VM)
			p.closeSlice(e.Lane, t, e.At)
			t.openAt = e.At
			t.openState = State(e.A)
		case KindPState:
			p.counter(e.Lane, pstateName, e.At, e.A)
		case KindRefill:
			p.instant(e.Lane, 0, "refill", e.At, "")
		case KindExhausted:
			t := p.track(e.Lane, e.VM)
			p.instant(e.Lane, t.tid, "exhausted", e.At, "")
		case KindPattern:
			p.instant(e.Lane, 0, "pattern", e.At, fmt.Sprintf(`"quanta":%d,"vms":%d`, e.A, e.B))
		case KindBoundary:
			if name, ok := boundaryNames[e.VM]; ok {
				p.counter(e.Lane, name, e.At, e.A)
			}
		case KindQueueDepth:
			t := p.track(e.Lane, e.VM)
			if t.queueJSON == nil {
				t.queueJSON, _ = json.Marshal("queue:" + e.VM)
			}
			p.counter(e.Lane, t.queueJSON, e.At, e.A)
		case KindPlace:
			p.instant(e.Lane, 0, "place", e.At, fmt.Sprintf(`"vm":%s,"machine":%d`, mustJSON(e.VM), e.A))
		case KindReject:
			p.instant(e.Lane, 0, "reject", e.At, fmt.Sprintf(`"vm":%s`, mustJSON(e.VM)))
		case KindMigStart:
			p.instant(e.Lane, 0, "mig-start", e.At, fmt.Sprintf(`"vm":%s,"from":%d,"to":%d`, mustJSON(e.VM), e.A, e.B))
		case KindMigDone:
			p.instant(e.Lane, 0, "mig-done", e.At, fmt.Sprintf(`"vm":%s,"to":%d`, mustJSON(e.VM), e.A))
		case KindPowerOn:
			p.instant(e.Lane, 0, "power-on", e.At, fmt.Sprintf(`"machine":%d`, e.A))
		case KindPowerOff:
			p.instant(e.Lane, 0, "power-off", e.At, fmt.Sprintf(`"machine":%d`, e.A))
		case KindBarrier:
			p.instant(e.Lane, 0, "barrier", e.At, fmt.Sprintf(`"live_vms":%d`, e.A))
		case KindLatency:
			p.counter(e.Lane, p50Name, e.At, e.A)
			p.counter(e.Lane, p99Name, e.At, e.B)
		case KindRecompensate:
			p.instant(e.Lane, 0, "recompensate", e.At, fmt.Sprintf(`"mhz":%d,"vms":%d`, e.A, e.B))
		case KindAutoscale:
			p.instant(e.Lane, 0, "autoscale", e.At, fmt.Sprintf(`"vm":%s,"action":%d,"value":%d`, mustJSON(e.VM), e.A, e.B))
		}
	}
	return p.err
}

// Finish implements EventSink: it closes every open slice at the run's
// end time and terminates the JSON document.
func (p *PerfettoWriter) Finish(at sim.Time) error {
	for k, t := range p.tracks {
		if t.openState != StateNone && at > t.openAt {
			p.closeSlice(k.lane, t, at)
		}
	}
	p.raw("\n]}\n")
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// mustJSON escapes s as a JSON string.
func mustJSON(s string) []byte {
	b, _ := json.Marshal(s)
	return b
}

// TraceStats summarizes a validated trace file.
type TraceStats struct {
	Events   int
	Slices   int
	Counters int
	Instants int
	Tracks   int
	EndUs    int64
}

// ValidatePerfetto parses a trace-event JSON document and checks
// well-formedness: known phases, non-negative timestamps and durations,
// monotonically non-decreasing and non-overlapping slices per
// (pid, tid) track, and non-decreasing counter samples per (pid, name)
// series. cmd/tracecheck and the CLI tests share it.
func ValidatePerfetto(r io.Reader) (TraceStats, error) {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int64    `json:"pid"`
			Tid  int64    `json:"tid"`
		} `json:"traceEvents"`
	}
	var st TraceStats
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return st, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	type track struct{ pid, tid int64 }
	type series struct {
		pid  int64
		name string
	}
	sliceEnd := make(map[track]float64)
	lastCount := make(map[series]float64)
	tracks := make(map[track]bool)
	for i, e := range doc.TraceEvents {
		st.Events++
		switch e.Ph {
		case "M":
			continue
		case "X", "C", "i":
		default:
			return st, fmt.Errorf("trace: event %d: unknown phase %q", i, e.Ph)
		}
		if e.Ts == nil {
			return st, fmt.Errorf("trace: event %d (%s %q): missing ts", i, e.Ph, e.Name)
		}
		if *e.Ts < 0 {
			return st, fmt.Errorf("trace: event %d (%s %q): negative ts %v", i, e.Ph, e.Name, *e.Ts)
		}
		if end := int64(*e.Ts); end > st.EndUs {
			st.EndUs = end
		}
		switch e.Ph {
		case "X":
			st.Slices++
			if e.Dur == nil || *e.Dur < 0 {
				return st, fmt.Errorf("trace: event %d (X %q): missing or negative dur", i, e.Name)
			}
			tk := track{e.Pid, e.Tid}
			tracks[tk] = true
			if prev, ok := sliceEnd[tk]; ok && *e.Ts < prev {
				return st, fmt.Errorf("trace: event %d (X %q): ts %v overlaps previous slice ending %v on pid %d tid %d",
					i, e.Name, *e.Ts, prev, e.Pid, e.Tid)
			}
			sliceEnd[tk] = *e.Ts + *e.Dur
			if end := int64(*e.Ts + *e.Dur); end > st.EndUs {
				st.EndUs = end
			}
		case "C":
			st.Counters++
			sr := series{e.Pid, e.Name}
			if prev, ok := lastCount[sr]; ok && *e.Ts < prev {
				return st, fmt.Errorf("trace: event %d (C %q): ts %v before previous sample %v on pid %d",
					i, e.Name, *e.Ts, prev, e.Pid)
			}
			lastCount[sr] = *e.Ts
		case "i":
			st.Instants++
		}
	}
	st.Tracks = len(tracks)
	return st, nil
}
