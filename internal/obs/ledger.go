package obs

import "pasched/internal/sim"

// VMLedger is the exact integer-microsecond throttle-attribution ledger
// of one VM: every microsecond of the VM's host-clock residency lands
// in exactly one bucket, so the buckets always sum to SpanUs — the
// fleet enforces that invariant at every VM finalization, the same way
// the serving layer enforces request conservation.
//
// Bucket semantics, decided per covered scheduling quantum (or per
// certified batched stretch, whose classification is provably constant
// across the stretch):
//
//	RunUs         executing at the processor's maximum frequency
//	DownclockedUs executing at a reduced frequency (DVFS)
//	CappedUs      runnable but barred by its own exhausted allocation
//	              (credit cap, expired SEDF slice) — throttled
//	ContendedUs   runnable and entitled, but another VM held the
//	              processor
//	MigratingUs   non-executing time while a live migration of the VM
//	              was in flight (pre-copy); execution during pre-copy
//	              still counts as Run/Downclocked
//	IdleUs        not runnable (no pending work)
//
// The ledger is accumulated on the data plane by the host that the VM
// currently resides on; a migration closes the span on the source and
// reopens it on the destination at the same quantum-aligned instant, so
// residency segments concatenate without gap or overlap and the ledger
// reduces order-independently like every other accounted quantity.
type VMLedger struct {
	RunUs         int64
	DownclockedUs int64
	CappedUs      int64
	ContendedUs   int64
	MigratingUs   int64
	IdleUs        int64

	// SpanUs is the total host-clock residency accumulated by
	// Attach/Detach pairs. The conservation invariant is Sum() == SpanUs
	// at every detach point.
	SpanUs int64

	// Migrating diverts wait-time classification to MigratingUs while a
	// pre-copy is in flight. Set by the fleet when a migration is
	// planned, cleared when the VM lands on the destination.
	Migrating bool

	// LastState is the most recent attribution state, used to emit
	// KindVMState events only on change.
	LastState State

	attached sim.Time
}

// Attach opens a residency segment at the host clock time at.
func (l *VMLedger) Attach(at sim.Time) { l.attached = at }

// Detach closes the current residency segment at the host clock time
// at, folding its length into SpanUs.
func (l *VMLedger) Detach(at sim.Time) {
	l.SpanUs += int64(at - l.attached)
	l.attached = at
}

// Sum returns the total attributed microseconds across all buckets.
func (l *VMLedger) Sum() int64 {
	return l.RunUs + l.DownclockedUs + l.CappedUs + l.ContendedUs + l.MigratingUs + l.IdleUs
}

// AddBusy attributes d of execution time, split by frequency state.
func (l *VMLedger) AddBusy(d sim.Time, downclocked bool) {
	if downclocked {
		l.DownclockedUs += int64(d)
	} else {
		l.RunUs += int64(d)
	}
}

// WaitState resolves the attribution state for non-executing time: the
// migrating flag overrides the scheduler-derived classification.
func (l *VMLedger) WaitState(s State) State {
	if l.Migrating {
		return StateMigrating
	}
	return s
}

// AddWait attributes d of non-executing time to the bucket named by the
// (already WaitState-resolved) state s.
func (l *VMLedger) AddWait(d sim.Time, s State) {
	switch s {
	case StateCapped:
		l.CappedUs += int64(d)
	case StateContended:
		l.ContendedUs += int64(d)
	case StateMigrating:
		l.MigratingUs += int64(d)
	default:
		l.IdleUs += int64(d)
	}
}
