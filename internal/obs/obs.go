// Package obs is the fleet's flight recorder: a low-overhead, opt-in
// event stream capturing simulated-time spans and decision events across
// every layer — scheduler credit refills and exhaustions, host pattern
// commits and P-state transitions, batching boundary sources, fleet
// placement/migration/power events, and serving queue-depth/latency
// samples — plus an exact integer-microsecond throttle-attribution
// ledger per VM.
//
// Determinism contract: every event is keyed by (At, Lane, Seq), where
// Lane identifies the emitting track — the fleet-global machine index,
// or LaneCoordinator for the control plane — and Seq is a per-lane
// sequence number. A machine's command stream (and therefore its host's
// stepping) is identical for any shard × worker count, so each lane's
// event sequence is sharding-invariant; sorting a drained window by
// (At, Lane, Seq) yields a merged stream that is DeepEqual-bit-exact
// across shardings. Events are appended to per-shard rings (one writer
// at a time, like every other per-shard accumulator) and drained by the
// coordinator at reporting barriers; ring buffers are pooled per shard
// and reused across windows.
//
// When disabled, nothing in this package runs: the host and fleet guard
// every emission behind a single nil pointer check, so the disabled hot
// path costs zero allocations and no measurable time (benchmark-gated).
package obs

import (
	"sort"

	"pasched/internal/sim"
)

// LaneCoordinator is the Lane value of control-plane events (placement,
// migration planning, power management, barriers). Machine events use
// the fleet-global machine index as their lane.
const LaneCoordinator int32 = -1

// Kind classifies one event.
type Kind uint8

const (
	// KindVMState marks a VM's attribution state change; A is the new
	// State. The Perfetto exporter turns consecutive state events into
	// per-VM slices.
	KindVMState Kind = iota
	// KindPState marks a completed processor P-state transition; A is
	// the new frequency in MHz.
	KindPState
	// KindRefill marks a scheduler accounting boundary (credit refill).
	KindRefill
	// KindExhausted marks a VM's budget crossing zero under a hard cap;
	// VM names the VM.
	KindExhausted
	// KindPattern marks a committed certified pattern step; A is the
	// total quanta folded, B the number of distinct VMs picked.
	KindPattern
	// KindBoundary reports one engine boundary-source counter delta at a
	// reporting barrier; VM holds the source name ("target", "event",
	// "action", "machine-shortened", "machine-declined"), A the delta.
	KindBoundary
	// KindQueueDepth samples a serving VM's request queue at a reporting
	// barrier; VM names the VM, A is the queue depth, B the cumulative
	// completed requests.
	KindQueueDepth
	// KindPlace records a placement decision; VM names the VM, A the
	// chosen machine.
	KindPlace
	// KindReject records a rejected arrival (no machine fit); VM names
	// the VM.
	KindReject
	// KindMigStart records a planned migration; VM names the VM, A the
	// source machine, B the destination.
	KindMigStart
	// KindMigDone records a completed migration; VM names the VM, A the
	// destination machine.
	KindMigDone
	// KindPowerOn records a machine power-on; A is the machine index.
	KindPowerOn
	// KindPowerOff records a machine power-off; A is the machine index.
	KindPowerOff
	// KindBarrier records a reporting barrier; A is the live VM count.
	KindBarrier
	// KindLatency samples the fleet-wide interval reply latency at a
	// reporting barrier; A is p50 in microseconds, B is p99.
	KindLatency
	// KindRecompensate records a frequency-change credit recompensation
	// (Listing 1.2): A is the new frequency in MHz, B is the number of
	// VMs whose caps were rewritten.
	KindRecompensate
	// KindAutoscale records an autoscaler resize decision on the
	// coordinator lane; A encodes the action kind, B its argument
	// (new cap percentage, overhead permille, or replica ordinal).
	KindAutoscale
)

// kindNames maps Kind to a stable display name.
var kindNames = [...]string{
	KindVMState:      "vmstate",
	KindPState:       "pstate",
	KindRefill:       "refill",
	KindExhausted:    "exhausted",
	KindPattern:      "pattern",
	KindBoundary:     "boundary",
	KindQueueDepth:   "queue",
	KindPlace:        "place",
	KindReject:       "reject",
	KindMigStart:     "mig-start",
	KindMigDone:      "mig-done",
	KindPowerOn:      "power-on",
	KindPowerOff:     "power-off",
	KindBarrier:      "barrier",
	KindLatency:      "latency",
	KindRecompensate: "recompensate",
	KindAutoscale:    "autoscale",
}

// String returns the kind's stable display name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// State is a VM's momentary attribution state, mirroring the ledger
// buckets (see VMLedger).
type State uint8

const (
	// StateNone is the zero value: no state recorded yet.
	StateNone State = iota
	// StateRun: executing at the processor's maximum frequency.
	StateRun
	// StateDownclocked: executing at a reduced frequency.
	StateDownclocked
	// StateCapped: runnable but barred by its own exhausted allocation
	// (credit cap, expired SEDF slice) — the throttled state.
	StateCapped
	// StateContended: runnable, entitled to run, but another VM holds
	// the processor.
	StateContended
	// StateMigrating: waiting while a live migration of the VM is in
	// flight.
	StateMigrating
	// StateIdle: not runnable (no pending work).
	StateIdle
)

// stateNames maps State to a stable display name.
var stateNames = [...]string{
	StateNone:        "none",
	StateRun:         "run",
	StateDownclocked: "downclocked",
	StateCapped:      "capped",
	StateContended:   "contended",
	StateMigrating:   "migrating",
	StateIdle:        "idle",
}

// String returns the state's stable display name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// Event is one recorded decision or state change. (At, Lane, Seq) is a
// sharding-invariant sort key; Kind determines how VM, A and B are
// interpreted (see the Kind constants).
type Event struct {
	At   sim.Time
	Lane int32
	Seq  uint32
	Kind Kind
	VM   string
	A, B int64
}

// Ring is one shard's pooled event buffer. Exactly one worker appends
// to a shard's ring at a time (the same single-writer discipline as the
// shard's interval accumulators); the coordinator drains it at barriers
// and hands the backing array back for reuse.
type Ring struct {
	ev []Event
}

// MachineObs is one lane's emitting handle: it owns the lane's sequence
// counter and appends to the owning shard's ring. A machine keeps its
// MachineObs across power cycles so sequence numbers never restart
// within a run.
type MachineObs struct {
	ring *Ring
	lane int32
	seq  uint32
}

// NewMachineObs returns an emitting handle for the given lane appending
// into ring.
func NewMachineObs(ring *Ring, lane int32) *MachineObs {
	return &MachineObs{ring: ring, lane: lane}
}

// Emit appends one event at simulated time at. The VM string must be a
// stable name (shared, not built per call) so emission does not
// allocate beyond ring growth.
func (m *MachineObs) Emit(at sim.Time, k Kind, vmName string, a, b int64) {
	m.seq++
	m.ring.ev = append(m.ring.ev, Event{At: at, Lane: m.lane, Seq: m.seq, Kind: k, VM: vmName, A: a, B: b})
}

// EventSink consumes merged event windows. Events is called once per
// reporting barrier with the window sorted by (At, Lane, Seq); the
// slice is only valid during the call (the recorder reuses the backing
// array). Finish is called once after the final window, with the run's
// end time.
type EventSink interface {
	Events(window []Event) error
	Finish(at sim.Time) error
}

// Recorder owns the per-shard rings and the coordinator ring, merges
// them into deterministic windows at barriers, and feeds the optional
// sink and in-memory buffer.
type Recorder struct {
	rings   []*Ring // per shard, then the coordinator ring last
	sink    EventSink
	keep    bool
	all     []Event
	scratch []Event
	total   int64
}

// NewRecorder builds a recorder for the given shard count. sink, when
// non-nil, receives every merged window; keep retains the merged stream
// in memory for Events().
func NewRecorder(shards int, sink EventSink, keep bool) *Recorder {
	rings := make([]*Ring, shards+1)
	for i := range rings {
		rings[i] = &Ring{}
	}
	return &Recorder{rings: rings, sink: sink, keep: keep}
}

// Ring returns shard's ring.
func (r *Recorder) Ring(shard int) *Ring { return r.rings[shard] }

// CoordinatorRing returns the control plane's ring.
func (r *Recorder) CoordinatorRing() *Ring { return r.rings[len(r.rings)-1] }

// Drain merges every ring's pending events into one window sorted by
// (At, Lane, Seq), dispatches it to the sink and buffer, and recycles
// the ring buffers. It must run with every shard parked at a barrier.
func (r *Recorder) Drain() error {
	n := 0
	for _, rg := range r.rings {
		n += len(rg.ev)
	}
	if n == 0 {
		return nil
	}
	w := r.scratch[:0]
	for _, rg := range r.rings {
		w = append(w, rg.ev...)
		rg.ev = rg.ev[:0]
	}
	sort.Slice(w, func(i, j int) bool {
		if w[i].At != w[j].At {
			return w[i].At < w[j].At
		}
		if w[i].Lane != w[j].Lane {
			return w[i].Lane < w[j].Lane
		}
		return w[i].Seq < w[j].Seq
	})
	r.scratch = w
	r.total += int64(n)
	if r.keep {
		r.all = append(r.all, w...)
	}
	if r.sink != nil {
		return r.sink.Events(w)
	}
	return nil
}

// Finish drains the final window and closes the sink.
func (r *Recorder) Finish(at sim.Time) error {
	if err := r.Drain(); err != nil {
		return err
	}
	if r.sink != nil {
		return r.sink.Finish(at)
	}
	return nil
}

// Events returns the retained merged stream (nil unless the recorder
// was built with keep).
func (r *Recorder) Events() []Event { return r.all }

// Total returns how many events have been drained so far.
func (r *Recorder) Total() int64 { return r.total }

// BoundarySourceNames lists the engine boundary-source counters emitted
// as KindBoundary deltas, in emission order.
var BoundarySourceNames = [5]string{"target", "event", "action", "machine-shortened", "machine-declined"}
