package obs

import (
	"reflect"
	"strings"
	"testing"

	"pasched/internal/sim"
)

func TestKindAndStateNames(t *testing.T) {
	for k := KindVMState; k <= KindLatency; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind: %q", Kind(200).String())
	}
	for s := StateNone; s <= StateIdle; s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Errorf("state %d has no name", s)
		}
	}
	if State(200).String() != "unknown" {
		t.Errorf("out-of-range state: %q", State(200).String())
	}
}

// collectSink buffers every window it receives.
type collectSink struct {
	windows  [][]Event
	finished sim.Time
}

func (c *collectSink) Events(w []Event) error {
	cp := make([]Event, len(w))
	copy(cp, w)
	c.windows = append(c.windows, cp)
	return nil
}

func (c *collectSink) Finish(at sim.Time) error {
	c.finished = at
	return nil
}

// TestRecorderMerge: events written to different rings merge into one
// window sorted by (At, Lane, Seq), the buffers recycle between drains,
// and keep retains the concatenated stream.
func TestRecorderMerge(t *testing.T) {
	sink := &collectSink{}
	r := NewRecorder(2, sink, true)

	m0 := NewMachineObs(r.Ring(0), 0)
	m1 := NewMachineObs(r.Ring(1), 1)
	co := NewMachineObs(r.CoordinatorRing(), LaneCoordinator)

	m1.Emit(5, KindRefill, "", 0, 0)
	m0.Emit(10, KindVMState, "a", int64(StateRun), 0)
	co.Emit(5, KindPlace, "a", 0, 0)
	m0.Emit(5, KindPState, "", 2667, 0)
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}

	want := []Event{
		{At: 5, Lane: LaneCoordinator, Seq: 1, Kind: KindPlace, VM: "a"},
		{At: 5, Lane: 0, Seq: 2, Kind: KindPState, A: 2667},
		{At: 5, Lane: 1, Seq: 1, Kind: KindRefill},
		{At: 10, Lane: 0, Seq: 1, Kind: KindVMState, VM: "a", A: int64(StateRun)},
	}
	if len(sink.windows) != 1 || !reflect.DeepEqual(sink.windows[0], want) {
		t.Fatalf("merged window:\n%+v\nwant\n%+v", sink.windows, want)
	}

	// Second window: rings were recycled, sequence numbers continue.
	m0.Emit(20, KindVMState, "a", int64(StateIdle), 0)
	if err := r.Finish(30); err != nil {
		t.Fatal(err)
	}
	if sink.finished != 30 {
		t.Errorf("Finish time %v, want 30", sink.finished)
	}
	if len(sink.windows) != 2 {
		t.Fatalf("windows: %d, want 2", len(sink.windows))
	}
	if got := sink.windows[1][0].Seq; got != 3 {
		t.Errorf("lane 0 sequence restarted: seq %d, want 3", got)
	}
	if r.Total() != 5 {
		t.Errorf("Total() = %d, want 5", r.Total())
	}
	if len(r.Events()) != 5 {
		t.Errorf("Events() retained %d, want 5", len(r.Events()))
	}

	// An empty drain is a no-op for the sink.
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(sink.windows) != 2 {
		t.Errorf("empty drain produced a window")
	}
}

// TestLedgerConservation exercises the attribution buckets: every
// attributed microsecond lands in exactly one bucket, and the buckets
// sum to the Attach/Detach residency.
func TestLedgerConservation(t *testing.T) {
	var l VMLedger
	l.Attach(100)
	l.AddBusy(40, false)
	l.AddBusy(10, true)
	l.AddWait(20, l.WaitState(StateCapped))
	l.AddWait(15, l.WaitState(StateContended))
	l.AddWait(5, l.WaitState(StateIdle))
	l.Detach(190)
	if l.SpanUs != 90 {
		t.Errorf("SpanUs = %d, want 90", l.SpanUs)
	}
	if l.Sum() != l.SpanUs {
		t.Errorf("Sum() = %d != SpanUs %d", l.Sum(), l.SpanUs)
	}
	if l.RunUs != 40 || l.DownclockedUs != 10 || l.CappedUs != 20 || l.ContendedUs != 15 || l.IdleUs != 5 {
		t.Errorf("buckets: %+v", l)
	}

	// A second residency segment accumulates; the migrating flag diverts
	// every wait classification.
	l.Attach(200)
	l.Migrating = true
	l.AddWait(30, l.WaitState(StateContended))
	l.AddWait(20, l.WaitState(StateIdle))
	l.AddBusy(10, false)
	l.Detach(260)
	if l.MigratingUs != 50 {
		t.Errorf("MigratingUs = %d, want 50 (flag must override wait states)", l.MigratingUs)
	}
	if l.SpanUs != 150 || l.Sum() != l.SpanUs {
		t.Errorf("after second segment: Sum %d, SpanUs %d", l.Sum(), l.SpanUs)
	}
}

// TestPerfettoRoundTrip drives every event kind through the writer and
// checks the produced document passes the validator with the expected
// shape.
func TestPerfettoRoundTrip(t *testing.T) {
	var buf strings.Builder
	pw := NewPerfettoWriter(&buf)
	window := []Event{
		{At: 0, Lane: LaneCoordinator, Seq: 1, Kind: KindPowerOn, A: 0},
		{At: 0, Lane: LaneCoordinator, Seq: 2, Kind: KindPlace, VM: "vm-1", A: 0},
		{At: 0, Lane: LaneCoordinator, Seq: 3, Kind: KindReject, VM: "vm-2"},
		{At: 10, Lane: 0, Seq: 1, Kind: KindVMState, VM: "vm-1", A: int64(StateRun)},
		{At: 30, Lane: 0, Seq: 2, Kind: KindPState, A: 1600},
		{At: 30, Lane: 0, Seq: 3, Kind: KindVMState, VM: "vm-1", A: int64(StateDownclocked)},
		{At: 40, Lane: 0, Seq: 4, Kind: KindRefill},
		{At: 45, Lane: 0, Seq: 5, Kind: KindExhausted, VM: "vm-1"},
		{At: 45, Lane: 0, Seq: 6, Kind: KindVMState, VM: "vm-1", A: int64(StateCapped)},
		{At: 50, Lane: 0, Seq: 7, Kind: KindPattern, A: 12, B: 2},
		{At: 60, Lane: LaneCoordinator, Seq: 4, Kind: KindMigStart, VM: "vm-1", A: 0, B: 1},
		{At: 60, Lane: 0, Seq: 8, Kind: KindVMState, VM: "vm-1", A: int64(StateMigrating)},
		{At: 80, Lane: LaneCoordinator, Seq: 5, Kind: KindMigDone, VM: "vm-1", A: 1},
		{At: 90, Lane: 1, Seq: 1, Kind: KindVMState, VM: "vm-1", A: int64(StateContended)},
		{At: 100, Lane: 0, Seq: 9, Kind: KindBoundary, VM: "event", A: 7},
		{At: 100, Lane: 1, Seq: 2, Kind: KindQueueDepth, VM: "vm-1", A: 3, B: 17},
		{At: 100, Lane: LaneCoordinator, Seq: 6, Kind: KindLatency, A: 1500, B: 9000},
		{At: 100, Lane: LaneCoordinator, Seq: 7, Kind: KindPowerOff, A: 0},
		{At: 100, Lane: LaneCoordinator, Seq: 8, Kind: KindBarrier, A: 1},
	}
	if err := pw.Events(window); err != nil {
		t.Fatal(err)
	}
	if err := pw.Finish(120); err != nil {
		t.Fatal(err)
	}

	st, err := ValidatePerfetto(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("validator rejected the writer's output: %v\n%s", err, buf.String())
	}
	// vm-1 on machine 0: run[10,30) downclocked[30,45) capped[45,60)
	// migrating[60,...Finish closes at 120]; on machine 1:
	// contended[90,...closed at 120]. 5 slices total.
	if st.Slices != 5 {
		t.Errorf("slices = %d, want 5\n%s", st.Slices, buf.String())
	}
	// pstate, batch:event, queue:vm-1, p50, p99.
	if st.Counters != 5 {
		t.Errorf("counters = %d, want 5", st.Counters)
	}
	// power-on, place, reject, refill, exhausted, pattern, mig-start,
	// mig-done, power-off, barrier.
	if st.Instants != 10 {
		t.Errorf("instants = %d, want 10", st.Instants)
	}
	if st.EndUs != 120 {
		t.Errorf("EndUs = %d, want 120", st.EndUs)
	}
	// Two VM tracks (vm-1 on machine 0 and on machine 1).
	if st.Tracks != 2 {
		t.Errorf("slice tracks = %d, want 2", st.Tracks)
	}
}

func TestValidatePerfettoRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"invalid json", `{"traceEvents":[`, "invalid JSON"},
		{"unknown phase", `{"traceEvents":[{"ph":"B","name":"x","ts":1,"pid":1,"tid":1}]}`, "unknown phase"},
		{"missing ts", `{"traceEvents":[{"ph":"i","name":"x","pid":1,"tid":1}]}`, "missing ts"},
		{"negative ts", `{"traceEvents":[{"ph":"i","name":"x","ts":-5,"pid":1,"tid":1}]}`, "negative ts"},
		{"missing dur", `{"traceEvents":[{"ph":"X","name":"x","ts":1,"pid":1,"tid":1}]}`, "negative dur"},
		{"overlapping slices", `{"traceEvents":[
			{"ph":"X","name":"a","ts":0,"dur":10,"pid":1,"tid":1},
			{"ph":"X","name":"b","ts":5,"dur":10,"pid":1,"tid":1}]}`, "overlaps"},
		{"counter regression", `{"traceEvents":[
			{"ph":"C","name":"c","ts":10,"pid":1,"tid":0},
			{"ph":"C","name":"c","ts":5,"pid":1,"tid":0}]}`, "before previous sample"},
	}
	for _, tc := range cases {
		if _, err := ValidatePerfetto(strings.NewReader(tc.doc)); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Slices on different tracks may interleave freely.
	ok := `{"traceEvents":[
		{"ph":"X","name":"a","ts":0,"dur":10,"pid":1,"tid":1},
		{"ph":"X","name":"b","ts":5,"dur":10,"pid":1,"tid":2},
		{"ph":"X","name":"c","ts":10,"dur":0,"pid":1,"tid":1}]}`
	if _, err := ValidatePerfetto(strings.NewReader(ok)); err != nil {
		t.Errorf("disjoint tracks rejected: %v", err)
	}
}
