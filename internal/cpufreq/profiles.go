package cpufreq

import "pasched/internal/sim"

// The predefined profiles below model the machines used in the paper's
// evaluation. The frequency ladders come from the paper's figures (Optiplex
// 755) and from the public specifications of the named parts; the
// efficiency curves are synthetic substitutes for real microarchitectural
// behaviour, shaped so that the paper's own calibration procedure (Section
// 5.2) recovers the cf_min values reported in Table 1. See DESIGN.md §2 for
// the substitution rationale.

// voltageRamp builds a linear voltage ramp from vMin at the lowest state to
// vMax at the highest state.
func voltageRamp(n int, vMin, vMax float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = vMax
		return out
	}
	for i := range out {
		out[i] = vMin + (vMax-vMin)*float64(i)/float64(n-1)
	}
	return out
}

// efficiencyRamp builds an efficiency curve rising linearly (in ladder
// index) from effMin at the lowest state to 1 at the highest state.
func efficiencyRamp(n int, effMin float64) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		out[i] = effMin + (1-effMin)*float64(i)/float64(n-1)
	}
	out[n-1] = 1
	return out
}

func buildProfile(name string, freqs []Freq, effMin, vMin, vMax float64, static, dyn float64) *Profile {
	n := len(freqs)
	volts := voltageRamp(n, vMin, vMax)
	effs := efficiencyRamp(n, effMin)
	states := make([]PState, n)
	for i := range freqs {
		states[i] = PState{Freq: freqs[i], Voltage: volts[i], Efficiency: effs[i]}
	}
	return &Profile{
		Name:              name,
		States:            states,
		TransitionLatency: 100 * sim.Microsecond,
		StaticPower:       static,
		DynCoeff:          dyn,
		IdleFactor:        0.25,
	}
}

// Optiplex755 models the DELL Optiplex 755 (Intel Core 2 Duo E6750,
// 2.66 GHz) used for the main evaluation (Section 5.1), in single-processor
// mode. The five-step ladder 1600..2667 MHz is the one visible on the right
// axis of Figures 2-10. Its efficiency is ideal (cf = 1 at every
// frequency), matching the paper's observation that cf is "very close to 1"
// on this machine.
func Optiplex755() *Profile {
	return buildProfile("DELL Optiplex 755 (Core 2 Duo 2.66GHz)",
		[]Freq{1600, 1867, 2133, 2400, 2667},
		1.0, 0.95, 1.20, 18, 10)
}

// Elite8300 models the HP Compaq Elite 8300 (Intel Core i7-3770, 3.4 GHz)
// used for the cross-platform comparison of Table 2. Its measured cf_min is
// 0.86206 (Table 1, i7-3770 column).
func Elite8300() *Profile {
	return buildProfile("HP Compaq Elite 8300 (Core i7-3770 3.4GHz)",
		[]Freq{1600, 2100, 2600, 3100, 3400},
		0.86206, 0.90, 1.15, 15, 11)
}

// XeonX3440 models the Intel Xeon X3440 (Grid'5000), cf_min 0.94867
// (Table 1). Many Grid'5000 parts expose only two frequencies; the paper
// reports cf at the minimal one.
func XeonX3440() *Profile {
	return buildProfile("Intel Xeon X3440",
		[]Freq{1200, 2530},
		0.94867, 0.95, 1.10, 20, 12)
}

// XeonL5420 models the Intel Xeon L5420, cf_min 0.99903 (Table 1).
func XeonL5420() *Profile {
	return buildProfile("Intel Xeon L5420",
		[]Freq{2000, 2500},
		0.99903, 0.95, 1.10, 22, 12)
}

// XeonE5_2620 models the Intel Xeon E5-2620, the architecture on which the
// paper observed the strongest deviation from proportionality: cf_min
// 0.80338 (Table 1).
func XeonE5_2620() *Profile {
	return buildProfile("Intel Xeon E5-2620",
		[]Freq{1200, 1600, 2000},
		0.80338, 0.90, 1.05, 25, 13)
}

// Opteron6164HE models the AMD Opteron 6164 HE, cf_min 0.99508 (Table 1).
func Opteron6164HE() *Profile {
	return buildProfile("AMD Opteron 6164 HE",
		[]Freq{800, 1700},
		0.99508, 0.90, 1.10, 24, 11)
}

// CoreI7_3770 models the Intel Core i7-3770 standalone part from Table 1,
// cf_min 0.86206. It shares silicon with Elite8300 but is exposed under the
// processor's name for Table-1 reporting.
func CoreI7_3770() *Profile {
	return buildProfile("Intel Core i7-3770",
		[]Freq{1600, 2100, 2600, 3100, 3400},
		0.86206, 0.90, 1.15, 15, 11)
}

// Table1Profiles returns the five processors of Table 1 in the paper's
// column order.
func Table1Profiles() []*Profile {
	return []*Profile{
		XeonX3440(),
		XeonL5420(),
		XeonE5_2620(),
		Opteron6164HE(),
		CoreI7_3770(),
	}
}
