package cpufreq

import (
	"fmt"

	"pasched/internal/sim"
)

// CPU is a single simulated processor core with a current P-state. It is
// the object governors and the PAS scheduler act on, playing the role of
// the cpufreq driver: it validates requested frequencies, applies the
// transition latency, and keeps transition statistics.
type CPU struct {
	prof        *Profile
	cur         Freq
	pending     Freq     // target of an in-flight transition, 0 if none
	switchAt    sim.Time // when the in-flight transition completes
	transitions int
	residency   map[Freq]sim.Time // accumulated time per frequency
	lastUpdate  sim.Time
	rateFreq    Freq     // frequency the cached WorkRate was computed for
	rate        sim.Work // cached exact work rate at rateFreq, per microsecond
}

// NewCPU returns a CPU running profile prof at its maximum frequency (the
// state a machine boots governors from). It returns an error if the profile
// is invalid.
func NewCPU(prof *Profile) (*CPU, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &CPU{
		prof:      prof,
		cur:       prof.Max(),
		residency: make(map[Freq]sim.Time, prof.Levels()),
	}, nil
}

// Profile returns the architecture profile of the CPU.
func (c *CPU) Profile() *Profile { return c.prof }

// Freq returns the frequency the core is currently running at. An in-flight
// transition keeps the old frequency until it completes.
func (c *CPU) Freq() Freq { return c.cur }

// Transitions returns the number of completed frequency switches.
func (c *CPU) Transitions() int { return c.transitions }

// Residency returns the accumulated simulated time spent at frequency f, as
// of the last Advance call.
func (c *CPU) Residency(f Freq) sim.Time { return c.residency[f] }

// SetFreq requests a switch to frequency f at time now. The switch
// completes after the profile's transition latency; requesting the current
// frequency is a no-op. Unsupported frequencies return an error.
func (c *CPU) SetFreq(f Freq, now sim.Time) error {
	if _, err := c.prof.Index(f); err != nil {
		return fmt.Errorf("cpufreq: set frequency: %w", err)
	}
	if f == c.cur && c.pending == 0 {
		return nil
	}
	if c.pending != 0 && f == c.pending {
		return nil
	}
	c.pending = f
	c.switchAt = now + c.prof.TransitionLatency
	return nil
}

// PendingSwitch reports an in-flight frequency transition: the target
// frequency, the time it completes, and whether one exists. The
// simulation engine stops batched steps at the completion time so the
// quantum that observes the new frequency runs with reference semantics.
func (c *CPU) PendingSwitch() (Freq, sim.Time, bool) {
	if c.pending == 0 {
		return 0, 0, false
	}
	return c.pending, c.switchAt, true
}

// Advance accounts residency up to time now and completes any due pending
// transition. The host calls it once per scheduling quantum before using
// the CPU's throughput.
func (c *CPU) Advance(now sim.Time) {
	if now > c.lastUpdate {
		c.residency[c.cur] += now - c.lastUpdate
		c.lastUpdate = now
	}
	if c.pending != 0 && now >= c.switchAt {
		if c.pending != c.cur {
			c.cur = c.pending
			c.transitions++
		}
		c.pending = 0
	}
}

// Throughput returns the current compute capacity in work units per
// simulated second (see Profile.Throughput).
func (c *CPU) Throughput() float64 {
	tp, err := c.prof.Throughput(c.cur)
	if err != nil {
		// The current frequency is always a member of the ladder; an
		// error here would mean corrupted internal state.
		return float64(c.prof.Max()) * 1e6
	}
	return tp
}

// WorkRate returns the current exact integer compute capacity in
// sim.Work per microsecond (see Profile.WorkRate). The per-frequency
// value is cached: frequencies change rarely while the host reads the
// rate every quantum.
func (c *CPU) WorkRate() sim.Work {
	if c.cur != c.rateFreq {
		r, err := c.prof.WorkRate(c.cur)
		if err != nil {
			// The current frequency is always a member of the ladder.
			r = sim.Work(int64(c.prof.Max())) * sim.WorkUnit
		}
		c.rateFreq, c.rate = c.cur, r
	}
	return c.rate
}

// Ratio returns the paper's ratio for the current frequency:
// Freq()/Profile().Max().
func (c *CPU) Ratio() float64 { return c.prof.Ratio(c.cur) }

// Efficiency returns the ground-truth efficiency at the current frequency.
func (c *CPU) Efficiency() float64 {
	eff, err := c.prof.Efficiency(c.cur)
	if err != nil {
		return 1
	}
	return eff
}

// Power returns the present power draw in watts at utilization util.
func (c *CPU) Power(util float64) float64 {
	p, err := c.prof.Power(c.cur, util)
	if err != nil {
		return c.prof.StaticPower
	}
	return p
}
