package cpufreq

import (
	"math"
	"testing"
	"testing/quick"

	"pasched/internal/sim"
)

func TestPredefinedProfilesValid(t *testing.T) {
	profs := append(Table1Profiles(), Optiplex755(), Elite8300())
	for _, p := range profs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
		})
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := func() *Profile { return Optiplex755() }

	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"too few states", func(p *Profile) { p.States = p.States[:1] }},
		{"not ascending", func(p *Profile) { p.States[1].Freq = p.States[0].Freq }},
		{"zero frequency", func(p *Profile) { p.States[0].Freq = 0 }},
		{"efficiency zero", func(p *Profile) { p.States[0].Efficiency = 0 }},
		{"efficiency above one", func(p *Profile) { p.States[0].Efficiency = 1.5 }},
		{"top efficiency not one", func(p *Profile) { p.States[len(p.States)-1].Efficiency = 0.99 }},
		{"non-positive voltage", func(p *Profile) { p.States[2].Voltage = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted an invalid profile")
			}
		})
	}
}

func TestValidateNilProfile(t *testing.T) {
	var p *Profile
	if err := p.Validate(); err == nil {
		t.Error("Validate(nil) succeeded, want error")
	}
}

func TestOptiplexLadderMatchesPaper(t *testing.T) {
	// The ladder on the right-hand axis of Figures 2-10.
	want := []Freq{1600, 1867, 2133, 2400, 2667}
	got := Optiplex755().Frequencies()
	if len(got) != len(want) {
		t.Fatalf("ladder %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ladder[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTable1MinEfficiencies(t *testing.T) {
	// Ground-truth efficiency at the minimum frequency must equal the
	// cf_min the paper reports in Table 1: the calibration procedure then
	// recovers these by measurement.
	want := map[string]float64{
		"Intel Xeon X3440":    0.94867,
		"Intel Xeon L5420":    0.99903,
		"Intel Xeon E5-2620":  0.80338,
		"AMD Opteron 6164 HE": 0.99508,
		"Intel Core i7-3770":  0.86206,
	}
	for _, p := range Table1Profiles() {
		eff, err := p.Efficiency(p.Min())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected profile %q", p.Name)
		}
		if math.Abs(eff-w) > 1e-9 {
			t.Errorf("%s: min efficiency = %v, want %v", p.Name, eff, w)
		}
	}
}

func TestIndexAndNearest(t *testing.T) {
	p := Optiplex755()
	if i, err := p.Index(2133); err != nil || i != 2 {
		t.Errorf("Index(2133) = %d, %v; want 2, nil", i, err)
	}
	if _, err := p.Index(2000); err == nil {
		t.Error("Index(2000) succeeded for unsupported frequency")
	}

	tests := []struct {
		in, want Freq
	}{
		{1500, 1600},
		{1600, 1600},
		{1700, 1600},
		{1750, 1867}, // closer to 1867 than 1600
		{2660, 2667},
		{3000, 2667},
		{2000, 2133}, // |2000-1867| == |2133-2000|: tie prefers higher
	}
	for _, tt := range tests {
		if got := p.Nearest(tt.in); got != tt.want {
			t.Errorf("Nearest(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFloorFor(t *testing.T) {
	p := Optiplex755()
	tests := []struct {
		in, want Freq
	}{
		{0, 1600},
		{1600, 1600},
		{1601, 1867},
		{2667, 2667},
		{9999, 2667},
	}
	for _, tt := range tests {
		if got := p.FloorFor(tt.in); got != tt.want {
			t.Errorf("FloorFor(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRatioAndThroughput(t *testing.T) {
	p := Optiplex755()
	if r := p.Ratio(2667); r != 1 {
		t.Errorf("Ratio(max) = %v, want 1", r)
	}
	wantRatio := 1600.0 / 2667.0
	if r := p.Ratio(1600); math.Abs(r-wantRatio) > 1e-12 {
		t.Errorf("Ratio(1600) = %v, want %v", r, wantRatio)
	}
	tp, err := p.Throughput(2667)
	if err != nil {
		t.Fatal(err)
	}
	if tp != 2667e6 {
		t.Errorf("Throughput(max) = %v, want 2667e6", tp)
	}
	// Optiplex has ideal efficiency: throughput scales exactly with f.
	tpLow, err := p.Throughput(1600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tpLow-1600e6) > 1 {
		t.Errorf("Throughput(1600) = %v, want 1600e6", tpLow)
	}
}

func TestThroughputReflectsEfficiency(t *testing.T) {
	p := XeonE5_2620()
	tp, err := p.Throughput(p.Min())
	if err != nil {
		t.Fatal(err)
	}
	want := float64(p.Min()) * 1e6 * 0.80338
	if math.Abs(tp-want) > 1 {
		t.Errorf("Throughput(min) = %v, want %v", tp, want)
	}
}

func TestPowerMonotonicInFreqAndUtil(t *testing.T) {
	p := Optiplex755()
	prevBusy := 0.0
	for _, f := range p.Frequencies() {
		idle, err := p.Power(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		busy, err := p.Power(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		if busy <= idle {
			t.Errorf("Power(%v, busy) = %v not above idle %v", f, busy, idle)
		}
		if busy <= prevBusy {
			t.Errorf("busy power not increasing with frequency at %v", f)
		}
		prevBusy = busy
	}
}

func TestPowerClampsUtil(t *testing.T) {
	p := Optiplex755()
	lo, _ := p.Power(1600, -2)
	lo0, _ := p.Power(1600, 0)
	hi, _ := p.Power(1600, 5)
	hi1, _ := p.Power(1600, 1)
	if lo != lo0 || hi != hi1 {
		t.Errorf("Power does not clamp utilization: %v/%v, %v/%v", lo, lo0, hi, hi1)
	}
}

func TestPowerUnsupportedFreq(t *testing.T) {
	p := Optiplex755()
	if _, err := p.Power(1234, 0.5); err == nil {
		t.Error("Power(unsupported) succeeded")
	}
}

func TestCPUBootsAtMax(t *testing.T) {
	c, err := NewCPU(Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	if c.Freq() != 2667 {
		t.Errorf("boot frequency = %v, want 2667", c.Freq())
	}
	if c.Ratio() != 1 || c.Efficiency() != 1 {
		t.Errorf("boot ratio/eff = %v/%v, want 1/1", c.Ratio(), c.Efficiency())
	}
}

func TestNewCPURejectsInvalidProfile(t *testing.T) {
	p := Optiplex755()
	p.States = p.States[:1]
	if _, err := NewCPU(p); err == nil {
		t.Error("NewCPU accepted invalid profile")
	}
}

func TestCPUTransitionLatency(t *testing.T) {
	prof := Optiplex755()
	c, err := NewCPU(prof)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	if err := c.SetFreq(1600, now); err != nil {
		t.Fatal(err)
	}
	// Before the latency elapses the old frequency is still in force.
	c.Advance(now + prof.TransitionLatency/2)
	if c.Freq() != 2667 {
		t.Errorf("mid-transition Freq() = %v, want 2667", c.Freq())
	}
	c.Advance(now + prof.TransitionLatency)
	if c.Freq() != 1600 {
		t.Errorf("post-transition Freq() = %v, want 1600", c.Freq())
	}
	if c.Transitions() != 1 {
		t.Errorf("Transitions() = %d, want 1", c.Transitions())
	}
}

func TestCPUSetFreqNoopAndErrors(t *testing.T) {
	c, err := NewCPU(Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFreq(2667, 0); err != nil {
		t.Fatalf("SetFreq(current): %v", err)
	}
	c.Advance(sim.Second)
	if c.Transitions() != 0 {
		t.Errorf("no-op SetFreq counted a transition")
	}
	if err := c.SetFreq(1234, 0); err == nil {
		t.Error("SetFreq(unsupported) succeeded")
	}
}

func TestCPUResidencyAccounting(t *testing.T) {
	c, err := NewCPU(Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(2 * sim.Second)
	if err := c.SetFreq(1600, 2*sim.Second); err != nil {
		t.Fatal(err)
	}
	c.Advance(2*sim.Second + sim.Millisecond) // transition done (100us)
	c.Advance(5 * sim.Second)
	gotMax := c.Residency(2667)
	gotMin := c.Residency(1600)
	if gotMax < 2*sim.Second || gotMax > 2*sim.Second+2*sim.Millisecond {
		t.Errorf("residency(2667) = %v, want ~2s", gotMax)
	}
	if gotMin < 2900*sim.Millisecond || gotMin > 3*sim.Second {
		t.Errorf("residency(1600) = %v, want ~3s", gotMin)
	}
}

func TestQuickNearestIsSupported(t *testing.T) {
	p := Elite8300()
	supported := make(map[Freq]bool)
	for _, f := range p.Frequencies() {
		supported[f] = true
	}
	f := func(raw uint16) bool {
		return supported[p.Nearest(Freq(raw))]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickRatioBounds(t *testing.T) {
	// Property: for every profile and supported frequency, 0 < ratio <= 1
	// and ratio==1 only at the max frequency.
	for _, p := range append(Table1Profiles(), Optiplex755(), Elite8300()) {
		for _, f := range p.Frequencies() {
			r := p.Ratio(f)
			if r <= 0 || r > 1 {
				t.Errorf("%s: Ratio(%v) = %v out of (0,1]", p.Name, f, r)
			}
			if r == 1 && f != p.Max() {
				t.Errorf("%s: Ratio(%v) = 1 below max", p.Name, f)
			}
		}
	}
}
