// Package cpufreq models the processor frequency subsystem of the simulated
// host: the ladder of P-states (frequency/voltage operating points), the
// per-frequency performance efficiency that gives rise to the paper's cf
// calibration factors, the frequency-switch interface used by governors and
// by the PAS scheduler, and a simple dynamic power model used for energy
// accounting.
//
// The package mirrors the role of the Linux "cpufreq" subsystem referenced
// in Section 2.2 of the paper: governors do not touch hardware directly,
// they ask cpufreq to transition between supported frequencies.
package cpufreq

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
)

// Freq is a processor frequency in MHz, the unit used throughout the paper
// (e.g. the Optiplex 755 ladder 1600..2667 MHz).
type Freq int

// String renders the frequency as "2667MHz".
func (f Freq) String() string { return fmt.Sprintf("%dMHz", int(f)) }

// PState is one processor operating point: a frequency, the core voltage at
// that frequency, and the relative performance efficiency.
//
// Efficiency expresses how the processor's real throughput at this
// frequency compares with perfect frequency proportionality. A value of 1
// means performance scales exactly with frequency; values below 1 mean the
// processor is slower than proportional at this frequency (for example
// because the uncore or memory subsystem is clocked down together with the
// core). Efficiency at the maximum frequency is 1 by normalization. This is
// the ground truth from which the paper's cf_i factors (equation 1) emerge
// when measured by the calibration procedure of Section 5.2.
type PState struct {
	Freq       Freq
	Voltage    float64 // core voltage in volts at this operating point
	Efficiency float64 // throughput relative to frequency-proportional, (0,1]
}

// Profile describes a processor architecture: its P-state ladder and the
// parameters of its power model. Profiles are immutable after construction;
// the predefined constructors return fresh copies.
type Profile struct {
	// Name identifies the architecture, e.g. "Intel Core 2 Duo E6750".
	Name string
	// States is the P-state ladder in strictly ascending frequency order.
	States []PState
	// TransitionLatency is the time a frequency switch takes. During the
	// switch the processor keeps running at the old frequency.
	TransitionLatency sim.Time
	// StaticPower is the frequency-independent power draw in watts
	// (package leakage, fans local to the socket, ...).
	StaticPower float64
	// DynCoeff scales dynamic power: P_dyn = DynCoeff * V^2 * f_GHz * util.
	DynCoeff float64
	// IdleFactor is the fraction of dynamic power burnt at a given
	// frequency even when the processor is idle (clock distribution).
	IdleFactor float64
}

// Validate checks the structural invariants of the profile: at least two
// P-states, strictly ascending frequencies, efficiencies in (0, 1] with the
// top state at exactly 1, and positive voltages.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("cpufreq: nil profile")
	}
	if len(p.States) < 2 {
		return fmt.Errorf("cpufreq: profile %q needs at least 2 P-states, has %d", p.Name, len(p.States))
	}
	for i, s := range p.States {
		if s.Freq <= 0 {
			return fmt.Errorf("cpufreq: profile %q state %d has non-positive frequency %v", p.Name, i, s.Freq)
		}
		if i > 0 && s.Freq <= p.States[i-1].Freq {
			return fmt.Errorf("cpufreq: profile %q states not strictly ascending at index %d", p.Name, i)
		}
		if s.Efficiency <= 0 || s.Efficiency > 1 {
			return fmt.Errorf("cpufreq: profile %q state %d efficiency %v outside (0,1]", p.Name, i, s.Efficiency)
		}
		if s.Voltage <= 0 {
			return fmt.Errorf("cpufreq: profile %q state %d voltage %v not positive", p.Name, i, s.Voltage)
		}
	}
	if top := p.States[len(p.States)-1].Efficiency; top != 1 {
		return fmt.Errorf("cpufreq: profile %q top-state efficiency %v, must be 1", p.Name, top)
	}
	return nil
}

// Levels returns the number of P-states.
func (p *Profile) Levels() int { return len(p.States) }

// Min returns the lowest supported frequency.
func (p *Profile) Min() Freq { return p.States[0].Freq }

// Max returns the highest supported frequency.
func (p *Profile) Max() Freq { return p.States[len(p.States)-1].Freq }

// Frequencies returns the ladder of supported frequencies in ascending
// order. The returned slice is a copy.
func (p *Profile) Frequencies() []Freq {
	out := make([]Freq, len(p.States))
	for i, s := range p.States {
		out[i] = s.Freq
	}
	return out
}

// Index returns the position of f in the ladder, or an error if f is not a
// supported frequency.
func (p *Profile) Index(f Freq) (int, error) {
	i := sort.Search(len(p.States), func(i int) bool { return p.States[i].Freq >= f })
	if i < len(p.States) && p.States[i].Freq == f {
		return i, nil
	}
	return 0, fmt.Errorf("cpufreq: frequency %v not supported by %q", f, p.Name)
}

// Nearest returns the supported frequency closest to f, preferring the
// higher one on ties (so capacity is never silently reduced).
func (p *Profile) Nearest(f Freq) Freq {
	best := p.States[0].Freq
	bestDiff := abs(int(best) - int(f))
	for _, s := range p.States[1:] {
		d := abs(int(s.Freq) - int(f))
		if d < bestDiff || (d == bestDiff && s.Freq > best) {
			best = s.Freq
			bestDiff = d
		}
	}
	return best
}

// FloorFor returns the lowest supported frequency >= f, or the maximum
// frequency if f is above the ladder.
func (p *Profile) FloorFor(f Freq) Freq {
	for _, s := range p.States {
		if s.Freq >= f {
			return s.Freq
		}
	}
	return p.Max()
}

// Ratio returns f divided by the maximum frequency (the paper's ratio_i).
func (p *Profile) Ratio(f Freq) float64 {
	return float64(f) / float64(p.Max())
}

// Efficiency returns the ground-truth efficiency at frequency f. When
// measured through the paper's calibration procedure this quantity is
// recovered as cf_i (equation 1). f must be a supported frequency; an
// unsupported frequency returns an error.
func (p *Profile) Efficiency(f Freq) (float64, error) {
	i, err := p.Index(f)
	if err != nil {
		return 0, err
	}
	return p.States[i].Efficiency, nil
}

// Throughput returns the compute capacity of the processor at frequency f,
// in work units per simulated second. One work unit corresponds to one
// cycle at nominal efficiency, so throughput at the maximum frequency is
// Max()*1e6 units/s and lower frequencies deliver f*1e6*Efficiency(f).
// This is the float report/sizing-edge view; the simulation's execution
// path accounts work through the exact integer WorkRate.
func (p *Profile) Throughput(f Freq) (float64, error) {
	eff, err := p.Efficiency(f)
	if err != nil {
		return 0, err
	}
	return float64(f) * 1e6 * eff, nil
}

// WorkRate returns the exact integer compute capacity at frequency f, in
// sim.Work (milli-work-units) per microsecond: round(f * Efficiency(f) *
// 1000). The rounding happens once per P-state; all downstream work
// accounting (quantum capacities, workload consumption, host tallies)
// multiplies and sums this integer, which is what makes batched and
// reference runs bit-identical on every work-derived series.
func (p *Profile) WorkRate(f Freq) (sim.Work, error) {
	eff, err := p.Efficiency(f)
	if err != nil {
		return 0, err
	}
	return sim.Work(float64(f)*eff*float64(sim.WorkUnit) + 0.5), nil
}

// EfficiencyTable returns the per-P-state efficiencies in ladder order:
// the ground-truth values a perfect calibration of the paper's cf factors
// would measure. The returned slice is a copy.
func (p *Profile) EfficiencyTable() []float64 {
	out := make([]float64, len(p.States))
	for i, s := range p.States {
		out[i] = s.Efficiency
	}
	return out
}

// Power returns the power draw in watts at frequency f and utilization
// util in [0,1]. Utilization outside the range is clamped.
func (p *Profile) Power(f Freq, util float64) (float64, error) {
	i, err := p.Index(f)
	if err != nil {
		return 0, err
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	s := p.States[i]
	fGHz := float64(s.Freq) / 1000
	dyn := p.DynCoeff * s.Voltage * s.Voltage * fGHz
	return p.StaticPower + dyn*(p.IdleFactor+(1-p.IdleFactor)*util), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
