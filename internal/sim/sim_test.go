package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		t    Time
		secs float64
	}{
		{"zero", 0, 0},
		{"one second", Second, 1},
		{"one millisecond", Millisecond, 0.001},
		{"90 minutes", 90 * Minute, 5400},
		{"mixed", 2*Second + 500*Millisecond, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.Seconds(); got != tt.secs {
				t.Errorf("Seconds() = %v, want %v", got, tt.secs)
			}
		})
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		s := float64(ms) / 1000
		return FromSeconds(s) == Time(ms)*Millisecond
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(ms int32) bool {
		if ms < 0 {
			ms = -ms
		}
		return f(ms)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := (2500 * Millisecond).String(); got != "2.500s" {
		t.Errorf("String() = %q, want %q", got, "2.500s")
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
	if err := c.Advance(5 * Second); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if c.Now() != 5*Second {
		t.Errorf("Now() = %v, want 5s", c.Now())
	}
	if err := c.Advance(-1); err == nil {
		t.Error("Advance(-1) succeeded, want error")
	}
	if err := c.AdvanceTo(4 * Second); err == nil {
		t.Error("AdvanceTo(past) succeeded, want error")
	}
	if err := c.AdvanceTo(10 * Second); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	if c.Now() != 10*Second {
		t.Errorf("Now() = %v, want 10s", c.Now())
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var order []int
	q.Schedule(3*Second, func(Time) { order = append(order, 3) })
	q.Schedule(1*Second, func(Time) { order = append(order, 1) })
	q.Schedule(2*Second, func(Time) { order = append(order, 2) })

	n, err := q.RunDue(10 * Second)
	if err != nil {
		t.Fatalf("RunDue: %v", err)
	}
	if n != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Errorf("order[%d] = %d, want %d", i, order[i], v)
		}
	}
}

func TestQueueTieBreakIsFIFO(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(Second, func(Time) { order = append(order, i) })
	}
	if _, err := q.RunDue(Second); err != nil {
		t.Fatalf("RunDue: %v", err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("tie-broken order %v not FIFO", order)
		}
	}
}

func TestQueueRunDuePartial(t *testing.T) {
	var q Queue
	fired := 0
	q.Schedule(1*Second, func(Time) { fired++ })
	q.Schedule(5*Second, func(Time) { fired++ })

	if _, err := q.RunDue(2 * Second); err != nil {
		t.Fatalf("RunDue: %v", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if q.Len() != 1 {
		t.Errorf("Len() = %d, want 1", q.Len())
	}
	next, ok := q.Next()
	if !ok || next != 5*Second {
		t.Errorf("Next() = %v, %v; want 5s, true", next, ok)
	}
}

func TestQueueEventSchedulesEvent(t *testing.T) {
	var q Queue
	var got []Time
	q.Schedule(1*Second, func(now Time) {
		got = append(got, now)
		q.Schedule(now+Second, func(now Time) { got = append(got, now) })
	})
	if _, err := q.RunDue(3 * Second); err != nil {
		t.Fatalf("RunDue: %v", err)
	}
	if len(got) != 2 || got[0] != Second || got[1] != 2*Second {
		t.Errorf("cascade fired at %v, want [1s 2s]", got)
	}
}

func TestQueueNilFuncIgnored(t *testing.T) {
	var q Queue
	q.Schedule(Second, nil)
	if q.Len() != 0 {
		t.Errorf("Len() = %d after scheduling nil, want 0", q.Len())
	}
}

func TestQueueClear(t *testing.T) {
	var q Queue
	q.Schedule(Second, func(Time) {})
	q.Clear()
	if q.Len() != 0 {
		t.Errorf("Len() = %d after Clear, want 0", q.Len())
	}
}

func TestTickerFiresAtPeriodBoundaries(t *testing.T) {
	var fires []Time
	tk := NewTicker(10*Millisecond, func(now Time) { fires = append(fires, now) })

	tk.Poll(5 * Millisecond)
	if len(fires) != 0 {
		t.Fatalf("fired before first boundary: %v", fires)
	}
	tk.Poll(35 * Millisecond)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fires[%d] = %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerDisabled(t *testing.T) {
	tk := NewTicker(0, func(Time) { t.Error("disabled ticker fired") })
	if n := tk.Poll(Hour); n != 0 {
		t.Errorf("Poll = %d, want 0", n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-seeded RNG stuck at zero")
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) != 0")
	}
}

func TestQuickQueueAlwaysOrdered(t *testing.T) {
	// Property: regardless of scheduling order, events fire in
	// non-decreasing time order.
	f := func(times []uint16) bool {
		var q Queue
		var fired []Time
		for _, at := range times {
			q.Schedule(Time(at)*Millisecond, func(now Time) {
				fired = append(fired, now)
			})
		}
		if _, err := q.RunDue(Hour); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
