package sim

import (
	"container/heap"
	"fmt"
)

// EventFunc is a callback fired by the event queue. The argument is the
// simulated time at which the event fires.
type EventFunc func(now Time)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant so that firing order matches scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  EventFunc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue is an ordered queue of future events. Events scheduled for the same
// instant fire in the order they were scheduled. The zero value is an empty
// queue ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to fire at time at. Scheduling an event in the past
// relative to other events is allowed here; RunDue enforces monotonicity at
// execution time.
func (q *Queue) Schedule(at Time, fn EventFunc) {
	if fn == nil {
		return
	}
	q.seq++
	heap.Push(&q.h, event{at: at, seq: q.seq, fn: fn})
}

// Next returns the firing time of the earliest pending event. The second
// return value is false when the queue is empty.
func (q *Queue) Next() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// RunDue pops and fires, in order, every event whose time is <= now.
// Callbacks may schedule further events, including events due within the
// same call; those fire too. It returns the number of events fired, or an
// error if an event was found scheduled before a previously fired one would
// allow (which indicates a corrupted schedule).
func (q *Queue) RunDue(now Time) (int, error) {
	fired := 0
	last := Time(-1 << 62)
	for len(q.h) > 0 && q.h[0].at <= now {
		e := heap.Pop(&q.h).(event)
		if e.at < last {
			return fired, fmt.Errorf("sim: event queue out of order: %v after %v", e.at, last)
		}
		last = e.at
		e.fn(e.at)
		fired++
	}
	return fired, nil
}

// Clear drops all pending events.
func (q *Queue) Clear() {
	q.h = q.h[:0]
}

// Ticker invokes a callback at a fixed period, aligned to multiples of the
// period. It is driven by explicit Poll calls from the simulation loop
// rather than by goroutines, keeping the kernel deterministic.
type Ticker struct {
	period Time
	next   Time
	fn     EventFunc
}

// NewTicker returns a ticker firing fn every period, with the first firing
// at time period (not zero). A non-positive period disables the ticker.
func NewTicker(period Time, fn EventFunc) *Ticker {
	return &Ticker{period: period, next: period, fn: fn}
}

// Period returns the ticker's firing period.
func (tk *Ticker) Period() Time { return tk.period }

// Poll fires the callback for every period boundary that has elapsed up to
// and including now. It returns the number of firings.
func (tk *Ticker) Poll(now Time) int {
	if tk.period <= 0 || tk.fn == nil {
		return 0
	}
	n := 0
	for tk.next <= now {
		tk.fn(tk.next)
		tk.next += tk.period
		n++
	}
	return n
}
