package sim

// Work is an exact quantity of compute work, counted in integer
// milli-work-units (one work unit is one processor cycle at nominal
// efficiency, so one milli-unit is a thousandth of a cycle). Work is the
// currency of the repository's exact accounting spine: processor
// throughput is an integer number of milli-units per microsecond
// (cpufreq.Profile.WorkRate), a scheduling quantum's capacity is that
// rate times the quantum's microseconds, and every workload queue, VM
// tally and host counter adds and subtracts these integers. Integer
// arithmetic is associative, so a batched stretch charged in one bulk
// addition lands on bit-identical state as the same stretch charged
// quantum by quantum — the property the batched==reference equivalence
// tests assert with exact equality.
//
// Range: int64 milli-units hold about 3.4e6 machine-seconds (~40
// machine-days) of work at the fastest in-tree processor (2667 MHz) —
// far beyond any per-host horizon, and enough for fleet-wide work
// reductions up to roughly a thousand saturated machines for an hour
// (the in-tree fleet scenarios stay orders of magnitude below that).
// Energy, whose picojoule fixed point is much finer relative to its
// magnitudes, uses a carried two-word accumulator instead
// (energy.Energy).
//
// Float conversion happens only at the report/render edge (Units,
// metrics recorders, JSON reports); simulation state never round-trips
// through float64.
type Work int64

// WorkUnit is one work unit (one cycle at nominal efficiency) in Work's
// milli-unit fixed point.
const WorkUnit Work = 1000

// MaxWork is a practically-infinite backlog sentinel (used by hog
// workloads), far above any reachable tally while leaving headroom
// against overflow in capacity comparisons.
const MaxWork Work = 1 << 62

// WorkFromUnits converts a floating-point number of work units into Work,
// rounding to the nearest milli-unit. It is the construction-time
// conversion for float-specified workload sizes (request costs, job
// lengths); once converted, all arithmetic stays integer.
func WorkFromUnits(u float64) Work {
	if u <= 0 {
		return 0
	}
	return Work(u*float64(WorkUnit) + 0.5)
}

// Units returns w expressed in floating-point work units — the
// report/render-edge conversion.
func (w Work) Units() float64 {
	return float64(w) / float64(WorkUnit)
}
