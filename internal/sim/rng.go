package sim

import "math"

// RNG is a small deterministic random source (xorshift64*), sufficient for
// workload arrival processes. It is not safe for concurrent use; the
// simulation kernel is single-threaded by design.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator seeded with seed. A zero seed is
// replaced with a fixed non-zero constant because the xorshift state must
// never be zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a pseudo-random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(1 - u)
}

// Intn returns a pseudo-random value in [0, n). It returns 0 when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
