// Package sim provides the discrete-time simulation kernel used by the
// virtualized-host model: a simulated clock, an ordered event queue, periodic
// tickers and a deterministic random source.
//
// All simulated time is expressed as Time, an integer count of microseconds
// since the start of the simulation. The kernel is single-threaded and fully
// deterministic: two runs with the same seed and the same event schedule
// produce identical traces.
package sim

import (
	"fmt"
	"strconv"
	"time"
)

// Time is a point in simulated time, counted in microseconds from the start
// of the simulation. It is deliberately distinct from time.Time: simulations
// run millions of times faster than the wall clock and must not accidentally
// mix the two domains.
type Time int64

// Duration constants for building simulated times and intervals.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Never is the sentinel "no deadline" time returned by horizon reporters
// (sched.BoundaryReporter, workload.Forecaster, governor.DecisionHorizon)
// when no future boundary exists. It is far beyond any reachable simulated
// time while leaving headroom against overflow in comparisons.
const Never Time = 1 << 62

// Seconds returns t expressed in (simulated) seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Milliseconds returns t expressed in (simulated) milliseconds.
func (t Time) Milliseconds() float64 {
	return float64(t) / float64(Millisecond)
}

// Duration converts t into a time.Duration of equal simulated length. It is
// provided for interoperability with formatting helpers only.
func (t Time) Duration() time.Duration {
	return time.Duration(t) * time.Microsecond
}

// String renders t in a compact human-readable form, e.g. "12.500s".
func (t Time) String() string {
	return strconv.FormatFloat(t.Seconds(), 'f', 3, 64) + "s"
}

// FromSeconds converts a floating-point number of seconds into a Time,
// rounding to the nearest microsecond.
func FromSeconds(s float64) Time {
	return Time(s*float64(Second) + 0.5)
}

// Clock is the simulation clock. The zero value is a clock at time zero,
// ready to use.
type Clock struct {
	now Time
}

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. It returns an error if d is
// negative; simulated time never flows backwards.
func (c *Clock) Advance(d Time) error {
	if d < 0 {
		return fmt.Errorf("sim: advance by negative duration %d", d)
	}
	c.now += d
	return nil
}

// AdvanceTo moves the clock forward to t. It returns an error if t is in the
// simulated past.
func (c *Clock) AdvanceTo(t Time) error {
	if t < c.now {
		return fmt.Errorf("sim: advance to %v before current time %v", t, c.now)
	}
	c.now = t
	return nil
}
