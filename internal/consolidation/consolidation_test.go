package consolidation

import (
	"testing"
	"testing/quick"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

func hostSpec() HostSpec {
	return HostSpec{MemoryMB: 4096, Profile: cpufreq.Optiplex755()}
}

func TestVMSpecValidate(t *testing.T) {
	tests := []struct {
		name    string
		spec    VMSpec
		wantErr bool
	}{
		{"valid", VMSpec{Name: "a", CreditPct: 20, MemoryMB: 512, Activity: 0.5}, false},
		{"no name", VMSpec{CreditPct: 20, MemoryMB: 512}, true},
		{"zero credit", VMSpec{Name: "a", MemoryMB: 512}, true},
		{"credit above 100", VMSpec{Name: "a", CreditPct: 150, MemoryMB: 512}, true},
		{"zero memory", VMSpec{Name: "a", CreditPct: 20}, true},
		{"activity above 1", VMSpec{Name: "a", CreditPct: 20, MemoryMB: 512, Activity: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPackFFDRespectsBounds(t *testing.T) {
	vms := []VMSpec{
		{Name: "a", CreditPct: 40, MemoryMB: 2048, Activity: 0.3},
		{Name: "b", CreditPct: 40, MemoryMB: 2048, Activity: 0.3},
		{Name: "c", CreditPct: 40, MemoryMB: 2048, Activity: 0.3},
		{Name: "d", CreditPct: 10, MemoryMB: 1024, Activity: 0.3},
	}
	p, err := PackFFD(vms, hostSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Memory allows two 2048MB VMs per 4096MB machine, but credit
	// (40+40=80 <= 90) also holds, so a+b share, c+d share.
	if p.Hosts != 2 {
		t.Errorf("Hosts = %d, want 2", p.Hosts)
	}
	// Verify bounds per machine.
	mem := make(map[int]int)
	cred := make(map[int]float64)
	for _, v := range vms {
		hi := p.Assignments[v.Name]
		mem[hi] += v.MemoryMB
		cred[hi] += v.CreditPct
	}
	for hi := 0; hi < p.Hosts; hi++ {
		if mem[hi] > 4096 {
			t.Errorf("host %d memory %d exceeds capacity", hi, mem[hi])
		}
		if cred[hi] > 90 {
			t.Errorf("host %d credit %v exceeds capacity", hi, cred[hi])
		}
	}
}

func TestPackFFDMemoryBound(t *testing.T) {
	// The Section 2.3 argument: plenty of CPU left, but memory forbids
	// further consolidation.
	vms := []VMSpec{
		{Name: "a", CreditPct: 10, MemoryMB: 3000, Activity: 0.2},
		{Name: "b", CreditPct: 10, MemoryMB: 3000, Activity: 0.2},
		{Name: "c", CreditPct: 10, MemoryMB: 3000, Activity: 0.2},
	}
	p, err := PackFFD(vms, hostSpec())
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts != 3 {
		t.Errorf("Hosts = %d, want 3 (memory bound)", p.Hosts)
	}
}

func TestPackFFDErrors(t *testing.T) {
	spec := hostSpec()
	if _, err := PackFFD([]VMSpec{{Name: "x", CreditPct: 20, MemoryMB: 9999}}, spec); err == nil {
		t.Error("oversized VM accepted")
	}
	if _, err := PackFFD([]VMSpec{{Name: "x", CreditPct: 95, MemoryMB: 100}}, spec); err == nil {
		t.Error("over-credit VM accepted")
	}
	if _, err := PackFFD([]VMSpec{
		{Name: "x", CreditPct: 20, MemoryMB: 100},
		{Name: "x", CreditPct: 20, MemoryMB: 100},
	}, spec); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := PackFFD(nil, HostSpec{}); err == nil {
		t.Error("invalid host spec accepted")
	}
	if _, err := PackFFD(nil, HostSpec{MemoryMB: 100, Profile: cpufreq.Optiplex755(), Dom0ReservePct: 100}); err == nil {
		t.Error("full dom0 reserve accepted")
	}
}

func TestQuickPackFFDNeverOverflows(t *testing.T) {
	// Property: for arbitrary VM mixes, no machine exceeds its memory or
	// credit capacity and every VM is assigned exactly once.
	f := func(raw []uint16) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		var vms []VMSpec
		for i, r := range raw {
			vms = append(vms, VMSpec{
				Name:      string(rune('a'+i%26)) + string(rune('0'+i/26)),
				CreditPct: float64(r%90) + 1,
				MemoryMB:  int(r%4000) + 64,
				Activity:  0.3,
			})
		}
		p, err := PackFFD(vms, hostSpec())
		if err != nil {
			return true // rejected input is fine; only placed input must be sound
		}
		mem := make(map[int]int)
		cred := make(map[int]float64)
		for _, v := range vms {
			hi, ok := p.Assignments[v.Name]
			if !ok || hi < 0 || hi >= p.Hosts {
				return false
			}
			mem[hi] += v.MemoryMB
			cred[hi] += v.CreditPct
		}
		for hi := 0; hi < p.Hosts; hi++ {
			if mem[hi] > 4096 || cred[hi] > 90+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimulateComplementarity(t *testing.T) {
	// The paper's Section 2.3 claim, quantified: after memory-bound
	// consolidation the machines are CPU-underloaded, and PAS saves
	// energy on them compared to running at the maximum frequency, while
	// still enforcing the credits.
	vms := []VMSpec{
		{Name: "a", CreditPct: 20, MemoryMB: 3000, Activity: 1.0},
		{Name: "b", CreditPct: 20, MemoryMB: 3000, Activity: 0.2},
		{Name: "c", CreditPct: 15, MemoryMB: 2500, Activity: 0.5},
	}
	spec := hostSpec()
	p, err := PackFFD(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hosts != 3 {
		t.Fatalf("Hosts = %d, want 3 (memory bound)", p.Hosts)
	}
	const dur = 30 * sim.Second
	base, err := Simulate(p, vms, spec, dur, false)
	if err != nil {
		t.Fatal(err)
	}
	pas, err := Simulate(p, vms, spec, dur, true)
	if err != nil {
		t.Fatal(err)
	}
	if pas.TotalJoules >= base.TotalJoules {
		t.Errorf("PAS energy %.1fJ not below max-frequency baseline %.1fJ",
			pas.TotalJoules, base.TotalJoules)
	}
	if len(pas.PerHost) != 3 || pas.HostsUsed != 3 {
		t.Errorf("per-host reports = %d", len(pas.PerHost))
	}
	for i, hr := range pas.PerHost {
		if hr.MeanFreqMHz >= 2667 {
			t.Errorf("host %d mean frequency %v not reduced", i, hr.MeanFreqMHz)
		}
		if hr.Joules <= 0 {
			t.Errorf("host %d no energy accounted", i)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	spec := hostSpec()
	vms := []VMSpec{{Name: "a", CreditPct: 20, MemoryMB: 512, Activity: 0.5}}
	p, err := PackFFD(vms, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(nil, vms, spec, sim.Second, true); err == nil {
		t.Error("nil placement accepted")
	}
	if _, err := Simulate(p, vms, spec, 0, true); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Simulate(p, []VMSpec{{Name: "ghost", CreditPct: 1, MemoryMB: 1}}, spec, sim.Second, true); err == nil {
		t.Error("unplaced VM accepted")
	}
	bad := &Placement{Assignments: map[string]int{"a": 7}, Hosts: 1}
	if _, err := Simulate(bad, vms, spec, sim.Second, true); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}
