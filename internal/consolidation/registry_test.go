package consolidation

import (
	"strings"
	"testing"

	"pasched/internal/cpufreq"
)

// TestSchedulerRegistry pins the registry surface every layer derives
// from: canonical names and aliases resolve, unknown names fail, the
// usage string lists every entry, and each constructor builds a working
// scheduler against a real profile.
func TestSchedulerRegistry(t *testing.T) {
	for name, want := range map[string]string{
		"pas":         "pas",
		"credit":      "credit",
		"fix-credit":  "credit",
		"credit2":     "credit2",
		"sedf":        "sedf",
		"pas-credit2": "pas-credit2",
	} {
		got, ok := CanonicalScheduler(name)
		if !ok || got != want {
			t.Errorf("CanonicalScheduler(%q) = %q, %v; want %q, true", name, got, ok, want)
		}
		if !ValidScheduler(name) {
			t.Errorf("ValidScheduler(%q) = false", name)
		}
	}
	for _, name := range []string{"", "Credit", "pas2", "cfs"} {
		if _, ok := CanonicalScheduler(name); ok {
			t.Errorf("CanonicalScheduler(%q) accepted", name)
		}
	}

	names := SchedulerNames()
	specs := Schedulers()
	if len(specs) != len(schedulerRegistry) {
		t.Fatalf("Schedulers() returned %d entries, registry has %d", len(specs), len(schedulerRegistry))
	}
	for _, s := range specs {
		if s.Description == "" {
			t.Errorf("scheduler %q has no description", s.Name)
		}
		if !strings.Contains(names, s.Name) {
			t.Errorf("SchedulerNames() %q misses %q", names, s.Name)
		}
		for _, a := range s.Aliases {
			if !strings.Contains(names, a) {
				t.Errorf("SchedulerNames() %q misses alias %q", names, a)
			}
		}
	}

	profile := cpufreq.Optiplex755()
	for _, s := range schedulerRegistry {
		cpu, err := cpufreq.NewCPU(profile)
		if err != nil {
			t.Fatal(err)
		}
		sc, _, err := s.build(cpu, profile)
		if err != nil {
			t.Errorf("build %q: %v", s.Name, err)
			continue
		}
		if sc == nil {
			t.Errorf("build %q returned a nil scheduler", s.Name)
		}
	}
}
