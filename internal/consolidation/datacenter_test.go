package consolidation

import (
	"math"
	"strings"
	"testing"

	"pasched/internal/sim"
)

func newDC(t *testing.T, machines int, usePAS bool) *DataCenter {
	t.Helper()
	dc, err := NewDataCenter(hostSpec(), machines, usePAS)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestNewDataCenterValidation(t *testing.T) {
	if _, err := NewDataCenter(hostSpec(), 0, true); err == nil {
		t.Error("0 machines accepted")
	}
	if _, err := NewDataCenter(HostSpec{}, 2, true); err == nil {
		t.Error("invalid host spec accepted")
	}
}

func TestPlaceAndFitChecks(t *testing.T) {
	dc := newDC(t, 2, true)
	a := VMSpec{Name: "a", CreditPct: 40, MemoryMB: 3000, Activity: 0.5}
	if err := dc.Place(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(a, 1); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := dc.Place(VMSpec{Name: "big", CreditPct: 10, MemoryMB: 2000, Activity: 0}, 0); err == nil {
		t.Error("memory overflow accepted")
	}
	if err := dc.Place(VMSpec{Name: "cpu", CreditPct: 60, MemoryMB: 100, Activity: 0}, 0); err == nil {
		t.Error("credit overflow accepted")
	}
	if err := dc.Place(VMSpec{Name: "x", CreditPct: 10, MemoryMB: 100, Activity: 0}, 9); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if mi, err := dc.MachineOf("a"); err != nil || mi != 0 {
		t.Errorf("MachineOf(a) = %d, %v", mi, err)
	}
	if _, err := dc.MachineOf("ghost"); err == nil {
		t.Error("MachineOf(ghost) succeeded")
	}
}

func TestLiveMigrationMovesTheVM(t *testing.T) {
	dc := newDC(t, 2, true)
	spec := VMSpec{Name: "web", CreditPct: 30, MemoryMB: 2000, Activity: 1.0}
	if err := dc.Place(spec, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := dc.Migrate("web", 1); err != nil {
		t.Fatal(err)
	}
	// Double-migration of an in-flight VM is rejected.
	if err := dc.Migrate("web", 1); err == nil {
		t.Error("migrating an in-flight VM accepted")
	}
	// 2000 MB at 1000 MB/s: the copy takes ~2 s.
	if err := dc.Run(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if mi, _ := dc.MachineOf("web"); mi != 0 {
		t.Errorf("VM moved before the copy finished (machine %d)", mi)
	}
	if err := dc.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if mi, _ := dc.MachineOf("web"); mi != 1 {
		t.Errorf("VM on machine %d after migration, want 1", mi)
	}
	if dc.Migrations() != 1 {
		t.Errorf("Migrations = %d, want 1", dc.Migrations())
	}
	// The workload kept running: the target machine serves it now.
	if err := dc.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	h1, err := dc.Host(1)
	if err != nil {
		t.Fatal(err)
	}
	t1 := dc.Now().Seconds()
	load, _ := h1.Recorder().Series("web_global_pct").MeanBetween(t1-5, t1)
	if load < 20 {
		t.Errorf("migrated VM load on target = %.1f%%, want ~30%%", load)
	}
}

func TestMigrationValidation(t *testing.T) {
	dc := newDC(t, 3, false)
	spec := VMSpec{Name: "a", CreditPct: 30, MemoryMB: 3000, Activity: 0.2}
	if err := dc.Place(spec, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Migrate("ghost", 1); err == nil {
		t.Error("unknown VM accepted")
	}
	if err := dc.Migrate("a", 0); err == nil {
		t.Error("self-migration accepted")
	}
	if err := dc.Migrate("a", 7); err == nil {
		t.Error("out-of-range target accepted")
	}
	// Target too full: fill machine 1 first.
	if err := dc.Place(VMSpec{Name: "b", CreditPct: 30, MemoryMB: 2000, Activity: 0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := dc.Migrate("a", 1); err == nil {
		t.Error("migration into full machine accepted")
	}
	// Powered-off target.
	if err := dc.PowerOff(2); err != nil {
		t.Fatal(err)
	}
	if err := dc.Migrate("a", 2); err == nil {
		t.Error("migration to powered-off machine accepted")
	}
}

func TestPowerManagement(t *testing.T) {
	dc := newDC(t, 2, true)
	if err := dc.Place(VMSpec{Name: "a", CreditPct: 20, MemoryMB: 1000, Activity: 0.5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.PowerOff(0); err == nil {
		t.Error("powering off a loaded machine accepted")
	}
	if err := dc.PowerOff(1); err != nil {
		t.Fatal(err)
	}
	if err := dc.PowerOff(1); err == nil {
		t.Error("double power-off accepted")
	}
	if dc.ActiveMachines() != 1 {
		t.Errorf("ActiveMachines = %d, want 1", dc.ActiveMachines())
	}
	if err := dc.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	oneMachine := dc.TotalJoules()

	// The same setup with both machines on burns more energy.
	dc2 := newDC(t, 2, true)
	if err := dc2.Place(VMSpec{Name: "a", CreditPct: 20, MemoryMB: 1000, Activity: 0.5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc2.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if dc2.TotalJoules() <= oneMachine {
		t.Errorf("two machines (%.0fJ) not above one (%.0fJ)", dc2.TotalJoules(), oneMachine)
	}

	// Power the machine back on; its clock catches up without charging
	// the off-time energy.
	if err := dc.PowerOn(1); err != nil {
		t.Fatal(err)
	}
	if err := dc.PowerOn(1); err == nil {
		t.Error("double power-on accepted")
	}
	before := dc.TotalJoules()
	if err := dc.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	h1, err := dc.Host(1)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Now() != dc.Now() {
		t.Errorf("rejoined machine clock %v != %v", h1.Now(), dc.Now())
	}
	delta := dc.TotalJoules() - before
	// One second of two machines is far below the 10 s the machine was
	// off; the off-time was not charged.
	if delta > 150 {
		t.Errorf("energy delta after power-on = %.1fJ, off-time was charged", delta)
	}
}

func TestPlanConsolidationEmptiesLeastLoaded(t *testing.T) {
	dc := newDC(t, 3, true)
	// Machine 0: two mid VMs; machine 1: one small VM; machine 2: one mid.
	if err := dc.Place(VMSpec{Name: "a", CreditPct: 30, MemoryMB: 1500, Activity: 0.5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(VMSpec{Name: "b", CreditPct: 30, MemoryMB: 1500, Activity: 0.5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(VMSpec{Name: "small", CreditPct: 10, MemoryMB: 500, Activity: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(VMSpec{Name: "c", CreditPct: 30, MemoryMB: 1500, Activity: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	plan := dc.PlanConsolidation()
	if len(plan) != 1 || plan[0].Name != "small" {
		t.Fatalf("plan = %+v, want [small -> elsewhere]", plan)
	}
	if err := dc.Migrate(plan[0].Name, plan[0].To); err != nil {
		t.Fatal(err)
	}
	if err := dc.Run(2 * sim.Second); err != nil { // 500MB copies in 0.5s
		t.Fatal(err)
	}
	if mi, _ := dc.MachineOf("small"); mi == 1 {
		t.Error("small VM still on machine 1")
	}
	if err := dc.PowerOff(1); err != nil {
		t.Fatalf("power off emptied machine: %v", err)
	}
	if dc.ActiveMachines() != 2 {
		t.Errorf("ActiveMachines = %d, want 2", dc.ActiveMachines())
	}
}

func TestPlanConsolidationNilWhenImpossible(t *testing.T) {
	dc := newDC(t, 2, true)
	// Both machines memory-full: nothing can move.
	if err := dc.Place(VMSpec{Name: "a", CreditPct: 30, MemoryMB: 4000, Activity: 0.2}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(VMSpec{Name: "b", CreditPct: 30, MemoryMB: 4000, Activity: 0.2}, 1); err != nil {
		t.Fatal(err)
	}
	if plan := dc.PlanConsolidation(); plan != nil {
		t.Errorf("plan = %+v, want nil (memory bound)", plan)
	}
	// A single loaded machine has nothing to consolidate either.
	dc2 := newDC(t, 2, true)
	if err := dc2.Place(VMSpec{Name: "a", CreditPct: 30, MemoryMB: 1000, Activity: 0.2}, 0); err != nil {
		t.Fatal(err)
	}
	if plan := dc2.PlanConsolidation(); plan != nil {
		t.Errorf("plan = %+v, want nil", plan)
	}
}

func TestConsolidationPlusPASEndToEnd(t *testing.T) {
	// The full Section 2.3 story: spread VMs, consolidate, switch a
	// machine off, and let PAS lower the frequency on the survivors —
	// each step cuts energy while absolute credits hold.
	dc := newDC(t, 2, true)
	if err := dc.Place(VMSpec{Name: "a", CreditPct: 20, MemoryMB: 1000, Activity: 1.0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(VMSpec{Name: "b", CreditPct: 20, MemoryMB: 1000, Activity: 1.0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := dc.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	spread := dc.TotalJoules()

	plan := dc.PlanConsolidation()
	if len(plan) != 1 {
		t.Fatalf("plan = %+v, want one migration", plan)
	}
	if err := dc.Migrate(plan[0].Name, plan[0].To); err != nil {
		t.Fatal(err)
	}
	if err := dc.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	var empty int
	for i := 0; i < dc.Machines(); i++ {
		if mi, _ := dc.MachineOf("a"); mi != i {
			if mj, _ := dc.MachineOf("b"); mj != i {
				empty = i
			}
		}
	}
	if err := dc.PowerOff(empty); err != nil {
		t.Fatal(err)
	}
	j0 := dc.TotalJoules()
	if err := dc.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	consolidated := dc.TotalJoules() - j0
	if consolidated >= spread {
		t.Errorf("consolidated 10s = %.0fJ not below spread 10s = %.0fJ", consolidated, spread)
	}
	// Both VMs still get their absolute credit on the surviving machine.
	survivor, _ := dc.MachineOf("a")
	h, err := dc.Host(survivor)
	if err != nil {
		t.Fatal(err)
	}
	t1 := dc.Now().Seconds()
	for _, name := range []string{"a", "b"} {
		abs, n := h.Recorder().Series(name+"_absolute_pct").MeanBetween(t1-5, t1)
		if n == 0 {
			t.Fatalf("no samples for %s on survivor", name)
		}
		if math.Abs(abs-20) > 2 {
			t.Errorf("%s absolute = %.1f%%, want ~20%%", name, abs)
		}
	}
}

func TestAutoConsolidationShrinksTheFleet(t *testing.T) {
	// Four small VMs spread over four machines; the manager migrates them
	// together and powers off the emptied machines, keeping one on.
	dc := newDC(t, 4, true)
	for i := 0; i < 4; i++ {
		spec := VMSpec{
			Name:      string(rune('a' + i)),
			CreditPct: 20,
			MemoryMB:  900,
			Activity:  0.5,
		}
		if err := dc.Place(spec, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.EnableAutoConsolidation(0); err == nil {
		t.Error("zero auto interval accepted")
	}
	if err := dc.EnableAutoConsolidation(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := dc.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := dc.ActiveMachines(); got != 1 {
		t.Errorf("ActiveMachines = %d, want 1 after auto-consolidation", got)
	}
	if dc.AutoPoweredOff() != 3 {
		t.Errorf("AutoPoweredOff = %d, want 3", dc.AutoPoweredOff())
	}
	if dc.Migrations() < 3 {
		t.Errorf("Migrations = %d, want >= 3", dc.Migrations())
	}
	// All VMs ended up on the same machine and keep their credits.
	home, err := dc.MachineOf("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b", "c", "d"} {
		mi, err := dc.MachineOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if mi != home {
			t.Errorf("%s on machine %d, want %d", name, mi, home)
		}
	}
	h, err := dc.Host(home)
	if err != nil {
		t.Fatal(err)
	}
	t1 := dc.Now().Seconds()
	for _, name := range []string{"a", "b", "c", "d"} {
		// Each VM offers 50% of its 20% credit: ~10% absolute.
		abs, n := h.Recorder().Series(name+"_absolute_pct").MeanBetween(t1-10, t1)
		if n == 0 {
			t.Fatalf("no samples for %s", name)
		}
		if math.Abs(abs-10) > 3 {
			t.Errorf("%s absolute = %.1f%%, want ~10%%", name, abs)
		}
	}
}

func TestAutoConsolidationSavesEnergy(t *testing.T) {
	build := func(auto bool) *DataCenter {
		dc := newDC(t, 3, true)
		for i := 0; i < 3; i++ {
			spec := VMSpec{
				Name:      string(rune('a' + i)),
				CreditPct: 15,
				MemoryMB:  800,
				Activity:  0.4,
			}
			if err := dc.Place(spec, i); err != nil {
				t.Fatal(err)
			}
		}
		if auto {
			if err := dc.EnableAutoConsolidation(2 * sim.Second); err != nil {
				t.Fatal(err)
			}
		}
		return dc
	}
	spread := build(false)
	if err := spread.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	auto := build(true)
	if err := auto.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if auto.TotalJoules() >= spread.TotalJoules() {
		t.Errorf("auto-consolidated %.0fJ not below spread %.0fJ",
			auto.TotalJoules(), spread.TotalJoules())
	}
}

// TestPlaceOnPoweredOffMachine: placement must fail loudly against a
// powered-off target — fleet-style policies depend on the diagnosable
// error instead of silent misaccounting on a frozen machine.
func TestPlaceOnPoweredOffMachine(t *testing.T) {
	dc := newDC(t, 2, true)
	if err := dc.PowerOff(1); err != nil {
		t.Fatal(err)
	}
	err := dc.Place(VMSpec{Name: "x", CreditPct: 10, MemoryMB: 512, Activity: 0.5}, 1)
	if err == nil {
		t.Fatal("placement on a powered-off machine accepted")
	}
	if !strings.Contains(err.Error(), "powered off") {
		t.Errorf("error does not name the power state: %v", err)
	}
	// The failed placement must leave no trace behind.
	if _, lookupErr := dc.MachineOf("x"); lookupErr == nil {
		t.Error("failed placement registered the VM anyway")
	}
	if err := dc.PowerOn(1); err != nil {
		t.Fatal(err)
	}
	if err := dc.Place(VMSpec{Name: "x", CreditPct: 10, MemoryMB: 512, Activity: 0.5}, 1); err != nil {
		t.Errorf("placement after power-on failed: %v", err)
	}
}

// TestMigrateToPoweredOffMachine: migrations must refuse powered-off
// targets with a clear error, and the refusal must not reserve anything.
func TestMigrateToPoweredOffMachine(t *testing.T) {
	dc := newDC(t, 3, true)
	if err := dc.Place(VMSpec{Name: "web", CreditPct: 20, MemoryMB: 1024, Activity: 0.5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.PowerOff(2); err != nil {
		t.Fatal(err)
	}
	err := dc.Migrate("web", 2)
	if err == nil {
		t.Fatal("migration to a powered-off machine accepted")
	}
	if !strings.Contains(err.Error(), "powered off") {
		t.Errorf("error does not name the power state: %v", err)
	}
	// No reservation may linger: powering the machine back on and
	// migrating there must still work with full capacity.
	if err := dc.PowerOn(2); err != nil {
		t.Fatal(err)
	}
	if err := dc.Migrate("web", 2); err != nil {
		t.Errorf("migration after power-on failed: %v", err)
	}
	if err := dc.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if mi, err := dc.MachineOf("web"); err != nil || mi != 2 {
		t.Errorf("MachineOf(web) = %d, %v", mi, err)
	}
}
