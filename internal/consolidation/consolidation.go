// Package consolidation implements the server-consolidation context of
// Section 2.3 of the paper: VMs are packed onto as few physical machines
// as possible and unused machines are switched off — but memory, not CPU,
// is the binding constraint ("an important bottleneck of such
// consolidation systems is memory"). A memory-bound packing therefore
// leaves the CPUs of the remaining machines underutilized, which is
// exactly where DVFS — and the PAS scheduler's credit compensation — keeps
// paying off. The Simulate function quantifies that complementarity.
package consolidation

import (
	"fmt"
	"sort"

	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/host"
	"pasched/internal/obs"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// VMSpec describes one VM to place: its CPU SLA, its memory footprint
// (the packing constraint) and how much of its credit its workload
// actually uses.
type VMSpec struct {
	// Name labels the VM.
	Name string
	// CreditPct is the CPU credit (SLA) in (0, 100].
	CreditPct float64
	// MemoryMB is the VM's memory footprint. "Any VM, even idle, needs
	// physical memory" (Section 2.3).
	MemoryMB int
	// Activity is the fraction of the credit the workload actually
	// consumes, in [0, 1]. Servers idle below 30% utilization most of
	// the time (Section 1).
	Activity float64
}

// Validate checks the spec invariants.
func (s VMSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("consolidation: VM without a name")
	}
	if s.CreditPct <= 0 || s.CreditPct > 100 {
		return fmt.Errorf("consolidation: %s: credit %v outside (0,100]", s.Name, s.CreditPct)
	}
	if s.MemoryMB <= 0 {
		return fmt.Errorf("consolidation: %s: memory %d not positive", s.Name, s.MemoryMB)
	}
	if s.Activity < 0 || s.Activity > 1 {
		return fmt.Errorf("consolidation: %s: activity %v outside [0,1]", s.Name, s.Activity)
	}
	return nil
}

// HostSpec describes the physical machines of the hosting center (assumed
// homogeneous, as in the paper's Grid'5000 clusters).
type HostSpec struct {
	// MemoryMB is the machine's memory capacity.
	MemoryMB int
	// Profile is the machine's processor architecture.
	Profile *cpufreq.Profile
	// Dom0ReservePct is the CPU share reserved for Dom0; default 10 (the
	// paper's setup).
	Dom0ReservePct float64
}

// WithDefaults validates the spec and fills defaults (10% Dom0 reserve,
// the paper's setup). Callers composing machines out of HostSpecs — the
// data center here, the heterogeneous fleet in internal/fleet — resolve
// the spec once and keep the resolved copy.
func (h HostSpec) WithDefaults() (HostSpec, error) {
	if h.MemoryMB <= 0 {
		return h, fmt.Errorf("consolidation: host memory %d not positive", h.MemoryMB)
	}
	if h.Profile == nil {
		return h, fmt.Errorf("consolidation: host without a processor profile")
	}
	if h.Dom0ReservePct == 0 {
		h.Dom0ReservePct = 10
	}
	if h.Dom0ReservePct < 0 || h.Dom0ReservePct >= 100 {
		return h, fmt.Errorf("consolidation: dom0 reserve %v outside [0,100)", h.Dom0ReservePct)
	}
	return h, nil
}

// Placement is the result of packing: which machine index each VM landed
// on, and how many machines are used (the rest are switched off).
type Placement struct {
	Assignments map[string]int
	Hosts       int
}

// PackFFD packs the VMs with first-fit decreasing on memory, respecting
// both the memory capacity and the CPU-credit capacity
// (100 - Dom0ReservePct) of every machine. It returns an error if any
// single VM cannot fit on an empty machine.
func PackFFD(vms []VMSpec, spec HostSpec) (*Placement, error) {
	spec, err := spec.WithDefaults()
	if err != nil {
		return nil, err
	}
	for _, v := range vms {
		if err := v.Validate(); err != nil {
			return nil, err
		}
		if v.MemoryMB > spec.MemoryMB {
			return nil, fmt.Errorf("consolidation: %s needs %d MB, machine has %d",
				v.Name, v.MemoryMB, spec.MemoryMB)
		}
		if v.CreditPct > 100-spec.Dom0ReservePct {
			return nil, fmt.Errorf("consolidation: %s needs %v%% CPU, machine offers %v%%",
				v.Name, v.CreditPct, 100-spec.Dom0ReservePct)
		}
	}
	seen := make(map[string]bool, len(vms))
	for _, v := range vms {
		if seen[v.Name] {
			return nil, fmt.Errorf("consolidation: duplicate VM name %q", v.Name)
		}
		seen[v.Name] = true
	}

	order := make([]VMSpec, len(vms))
	copy(order, vms)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].MemoryMB > order[j].MemoryMB
	})

	type bin struct {
		memLeft    int
		creditLeft float64
	}
	var bins []bin
	placement := &Placement{Assignments: make(map[string]int, len(vms))}
	for _, v := range order {
		placed := false
		for i := range bins {
			if bins[i].memLeft >= v.MemoryMB && bins[i].creditLeft >= v.CreditPct {
				bins[i].memLeft -= v.MemoryMB
				bins[i].creditLeft -= v.CreditPct
				placement.Assignments[v.Name] = i
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, bin{
				memLeft:    spec.MemoryMB - v.MemoryMB,
				creditLeft: 100 - spec.Dom0ReservePct - v.CreditPct,
			})
			placement.Assignments[v.Name] = len(bins) - 1
		}
	}
	placement.Hosts = len(bins)
	return placement, nil
}

// HostReport is the simulated outcome for one active machine.
type HostReport struct {
	Joules      float64
	MeanFreqMHz float64
	MeanLoadPct float64
	VMs         []string
}

// Report is the simulated outcome of a placement.
type Report struct {
	HostsUsed   int
	TotalJoules float64
	PerHost     []HostReport
}

// Simulate runs the placement for dur: one simulated machine per used
// host, each under the PAS scheduler (usePAS) or a fix-credit scheduler at
// the maximum frequency (the baseline), with each VM offering
// Activity x Credit worth of load. Switched-off machines consume nothing.
func Simulate(p *Placement, vms []VMSpec, spec HostSpec, dur sim.Time, usePAS bool) (*Report, error) {
	spec, err := spec.WithDefaults()
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("consolidation: nil placement")
	}
	if dur <= 0 {
		return nil, fmt.Errorf("consolidation: duration %v not positive", dur)
	}
	byHost := make([][]VMSpec, p.Hosts)
	for _, v := range vms {
		idx, ok := p.Assignments[v.Name]
		if !ok {
			return nil, fmt.Errorf("consolidation: VM %q not in placement", v.Name)
		}
		if idx < 0 || idx >= p.Hosts {
			return nil, fmt.Errorf("consolidation: VM %q assigned to invalid host %d", v.Name, idx)
		}
		byHost[idx] = append(byHost[idx], v)
	}

	rep := &Report{HostsUsed: p.Hosts}
	var total energy.Energy
	maxTp, err := spec.Profile.Throughput(spec.Profile.Max())
	if err != nil {
		return nil, err
	}
	for hi, group := range byHost {
		h, err := NewHost(spec, usePAS)
		if err != nil {
			return nil, fmt.Errorf("consolidation: host %d: %w", hi, err)
		}
		hr := HostReport{}
		for vi, vs := range group {
			gv, err := vm.New(vm.ID(vi+1), vm.Config{Name: vs.Name, Credit: vs.CreditPct})
			if err != nil {
				return nil, err
			}
			if vs.Activity > 0 {
				offered := vs.CreditPct * vs.Activity
				wl, err := workload.NewWebApp(workload.WebAppConfig{
					Phases: workload.ThreePhase(0, dur,
						workload.ExactRate(maxTp, offered, workload.DefaultRequestCost)),
					Seed: uint64(hi*101 + vi + 1),
				})
				if err != nil {
					return nil, err
				}
				gv.SetWorkload(wl)
			}
			if err := h.AddVM(gv); err != nil {
				return nil, err
			}
			hr.VMs = append(hr.VMs, vs.Name)
		}
		if err := h.RunUntil(dur); err != nil {
			return nil, err
		}
		hr.Joules = h.Energy().Joules()
		hr.MeanFreqMHz = h.Recorder().Series("freq_mhz").Mean()
		hr.MeanLoadPct = h.Recorder().Series("global_load_pct").Mean()
		rep.PerHost = append(rep.PerHost, hr)
		total = total.Add(h.Energy().Total())
	}
	// The total is the exact integer sum of the per-host meters,
	// converted to joules only here at the report edge.
	rep.TotalJoules = total.Joules()
	return rep, nil
}

// NewHost assembles one simulated machine from the spec: a CPU with the
// spec's frequency ladder, either the PAS scheduler (credits compensated
// at reduced frequencies, the load source bound to the host) or a plain
// fix-credit scheduler pinned at the maximum frequency, plus a Dom0 with
// the reserved share. It is the machine constructor shared by the
// homogeneous data center here and the heterogeneous fleet
// (internal/fleet).
func NewHost(spec HostSpec, usePAS bool) (*host.Host, error) {
	return NewHostWithOptions(spec, usePAS, HostOptions{})
}

// HostOptions tunes the assembled machine beyond the hardware spec.
type HostOptions struct {
	// Reference forces the reference quantum-by-quantum stepping path
	// (host.Config.Reference), for batched==reference equivalence tests.
	Reference bool
	// SampleEvery overrides the host recorder's sampling interval.
	// Zero keeps the host default; negative disables recorder sampling
	// entirely (fleet machines run this way — the fleet reports its own
	// interval curves and never reads the per-host recorder, whose
	// per-VM series would otherwise grow with every VM that ever lived
	// on the host).
	SampleEvery sim.Time
	// Scheduler overrides the usePAS choice with a scheduler by name,
	// resolved against the scheduler registry (see SchedulerNames for
	// the accepted values and Schedulers for descriptions). Empty
	// defers to usePAS.
	Scheduler string
	// Obs is the machine's flight-recorder lane (host.Config.Obs). Nil
	// disables observation.
	Obs *obs.MachineObs
}

// NewHostWithOptions is NewHost with the extra knobs of HostOptions.
func NewHostWithOptions(spec HostSpec, usePAS bool, opts HostOptions) (*host.Host, error) {
	cpu, err := cpufreq.NewCPU(spec.Profile)
	if err != nil {
		return nil, err
	}
	name := opts.Scheduler
	if name == "" {
		if usePAS {
			name = "pas"
		} else {
			name = "credit"
		}
	}
	entry, ok := lookupScheduler(name)
	if !ok {
		return nil, fmt.Errorf("consolidation: unknown scheduler %q (%s)", name, SchedulerNames())
	}
	s, bind, err := entry.build(cpu, spec.Profile)
	if err != nil {
		return nil, err
	}
	h, err := host.New(host.Config{
		CPU:            cpu,
		Scheduler:      s,
		Reference:      opts.Reference,
		SampleInterval: opts.SampleEvery,
		Obs:            opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	if bind != nil {
		bind.BindLoadSource(h)
	}
	dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: spec.Dom0ReservePct, Priority: 1})
	if err != nil {
		return nil, err
	}
	if err := h.AddVM(dom0); err != nil {
		return nil, err
	}
	return h, nil
}
