package consolidation

import (
	"fmt"
	"sort"

	"pasched/internal/energy"
	"pasched/internal/engine"
	"pasched/internal/host"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// DefaultMigrationBandwidthMBps is the default memory-copy bandwidth of a
// live migration, in MB per simulated second (a 10 GbE link's practical
// throughput).
const DefaultMigrationBandwidthMBps = 1000

// DataCenter is a set of identical machines running in lockstep, with live
// VM migration and machine power management — the dynamic consolidation
// context of Section 2.3 ("VM migration helps achieving better server
// utilization by migrating VMs on a minimal set of machines, and switching
// unused machines off").
//
// Machines run either PAS (credits compensated at reduced frequencies) or
// a plain fix-credit scheduler pinned at the maximum frequency. Energy is
// accounted only for powered-on machines.
type DataCenter struct {
	spec      HostSpec
	usePAS    bool
	bandwidth float64 // MB per second of migration traffic
	step      sim.Time
	now       sim.Time
	machines  []*machine
	vms       map[string]*placedVM
	inflight  []*migration
	energy    energy.Energy
	migrated  int

	autoInterval sim.Time // 0 = manual consolidation only
	nextPlan     sim.Time
	poweredOff   int
	workers      int
}

// machine is one physical host plus its power state.
type machine struct {
	h          *host.Host
	on         bool
	prevEnergy energy.Energy
	memUsedMB  int
	creditUsed float64
	nextID     vm.ID
}

// placedVM tracks where a VM currently lives.
type placedVM struct {
	spec      VMSpec
	machine   int
	guest     *vm.VM
	wl        workload.Workload
	migrating bool
}

// migration is one in-flight live migration.
type migration struct {
	name     string
	from, to int
	done     sim.Time
}

// NewDataCenter builds n machines, all powered on and empty.
func NewDataCenter(spec HostSpec, n int, usePAS bool) (*DataCenter, error) {
	spec, err := spec.WithDefaults()
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("consolidation: need at least 1 machine, got %d", n)
	}
	dc := &DataCenter{
		spec:      spec,
		usePAS:    usePAS,
		bandwidth: DefaultMigrationBandwidthMBps,
		step:      100 * sim.Millisecond,
		vms:       make(map[string]*placedVM),
		workers:   engine.DefaultWorkers(),
	}
	for i := 0; i < n; i++ {
		h, err := NewHost(spec, usePAS)
		if err != nil {
			return nil, fmt.Errorf("consolidation: machine %d: %w", i, err)
		}
		dc.machines = append(dc.machines, &machine{h: h, on: true, nextID: 1})
	}
	return dc, nil
}

// Machines returns the number of machines.
func (dc *DataCenter) Machines() int { return len(dc.machines) }

// SetWorkers bounds how many machines step concurrently between
// synchronization barriers (migration completion and consolidation
// planning run sequentially at the barrier). Machines are fully
// independent hosts, so the simulation result is identical for any
// worker count. Zero or negative selects GOMAXPROCS (the default, and
// the same convention as multicore.Config.Workers); 1 forces sequential
// stepping.
func (dc *DataCenter) SetWorkers(w int) {
	if w < 1 {
		w = engine.DefaultWorkers()
	}
	dc.workers = w
}

// ActiveMachines returns the number of powered-on machines.
func (dc *DataCenter) ActiveMachines() int {
	n := 0
	for _, m := range dc.machines {
		if m.on {
			n++
		}
	}
	return n
}

// Now returns the data center's simulated time.
func (dc *DataCenter) Now() sim.Time { return dc.now }

// TotalJoules returns the energy consumed by powered-on machines so far.
func (dc *DataCenter) TotalJoules() float64 { return dc.energy.Joules() }

// TotalEnergy returns the exact integer energy consumed by powered-on
// machines so far; TotalJoules is its float report edge.
func (dc *DataCenter) TotalEnergy() energy.Energy { return dc.energy }

// Migrations returns the number of completed migrations.
func (dc *DataCenter) Migrations() int { return dc.migrated }

// MachineOf returns the index of the machine currently hosting the VM.
func (dc *DataCenter) MachineOf(name string) (int, error) {
	p, ok := dc.vms[name]
	if !ok {
		return 0, fmt.Errorf("consolidation: unknown VM %q", name)
	}
	return p.machine, nil
}

// Host exposes one machine's simulated host (for metrics).
func (dc *DataCenter) Host(i int) (*host.Host, error) {
	if i < 0 || i >= len(dc.machines) {
		return nil, fmt.Errorf("consolidation: machine %d out of range", i)
	}
	return dc.machines[i].h, nil
}

// Place creates the VM described by spec on machine i, with a steady web
// workload offering Activity x Credit of load.
func (dc *DataCenter) Place(spec VMSpec, i int) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := dc.vms[spec.Name]; dup {
		return fmt.Errorf("consolidation: VM %q already placed", spec.Name)
	}
	if i < 0 || i >= len(dc.machines) {
		return fmt.Errorf("consolidation: machine %d out of range", i)
	}
	m := dc.machines[i]
	if !m.on {
		return fmt.Errorf("consolidation: machine %d is powered off", i)
	}
	if err := dc.fits(m, spec); err != nil {
		return err
	}
	maxTp, err := dc.spec.Profile.Throughput(dc.spec.Profile.Max())
	if err != nil {
		return err
	}
	var wl workload.Workload = workload.Idle{}
	if spec.Activity > 0 {
		web, err := workload.NewWebApp(workload.WebAppConfig{
			Phases: workload.ThreePhase(dc.now, 1<<55,
				workload.ExactRate(maxTp, spec.CreditPct*spec.Activity, workload.DefaultRequestCost)),
			Seed: uint64(len(dc.vms) + 1),
		})
		if err != nil {
			return err
		}
		wl = web
	}
	guest, err := dc.attach(m, spec, wl)
	if err != nil {
		return err
	}
	dc.vms[spec.Name] = &placedVM{spec: spec, machine: i, guest: guest, wl: wl}
	return nil
}

// fits checks a machine's memory and credit headroom for spec.
func (dc *DataCenter) fits(m *machine, spec VMSpec) error {
	if m.memUsedMB+spec.MemoryMB > dc.spec.MemoryMB {
		return fmt.Errorf("consolidation: %s does not fit: memory %d+%d > %d",
			spec.Name, m.memUsedMB, spec.MemoryMB, dc.spec.MemoryMB)
	}
	if m.creditUsed+spec.CreditPct > 100-dc.spec.Dom0ReservePct {
		return fmt.Errorf("consolidation: %s does not fit: credit %v+%v > %v",
			spec.Name, m.creditUsed, spec.CreditPct, 100-dc.spec.Dom0ReservePct)
	}
	return nil
}

// attach creates the guest VM on machine m and binds the workload.
func (dc *DataCenter) attach(m *machine, spec VMSpec, wl workload.Workload) (*vm.VM, error) {
	guest, err := vm.New(m.nextID, vm.Config{Name: spec.Name, Credit: spec.CreditPct})
	if err != nil {
		return nil, err
	}
	m.nextID++
	guest.SetWorkload(wl)
	if err := m.h.AddVM(guest); err != nil {
		return nil, err
	}
	m.memUsedMB += spec.MemoryMB
	m.creditUsed += spec.CreditPct
	return guest, nil
}

// Migrate starts a live migration of the named VM to machine `to`. The VM
// keeps running on the source during the pre-copy (memory size divided by
// the migration bandwidth); at completion it switches to the target. The
// target's memory is reserved for the whole copy, as in a real pre-copy
// migration.
func (dc *DataCenter) Migrate(name string, to int) error {
	p, ok := dc.vms[name]
	if !ok {
		return fmt.Errorf("consolidation: unknown VM %q", name)
	}
	if p.migrating {
		return fmt.Errorf("consolidation: %s is already migrating", name)
	}
	if to < 0 || to >= len(dc.machines) {
		return fmt.Errorf("consolidation: machine %d out of range", to)
	}
	if to == p.machine {
		return fmt.Errorf("consolidation: %s is already on machine %d", name, to)
	}
	dst := dc.machines[to]
	if !dst.on {
		return fmt.Errorf("consolidation: target machine %d is powered off", to)
	}
	if err := dc.fits(dst, p.spec); err != nil {
		return err
	}
	// Reserve the target side for the duration of the copy.
	dst.memUsedMB += p.spec.MemoryMB
	dst.creditUsed += p.spec.CreditPct
	dur := sim.FromSeconds(float64(p.spec.MemoryMB) / dc.bandwidth)
	dc.inflight = append(dc.inflight, &migration{
		name: name,
		from: p.machine,
		to:   to,
		done: dc.now + dur,
	})
	p.migrating = true
	return nil
}

// completeMigrations finishes every due migration: detach from the source,
// attach the same workload to a fresh guest on the target.
func (dc *DataCenter) completeMigrations() error {
	remaining := dc.inflight[:0]
	for _, mg := range dc.inflight {
		if mg.done > dc.now {
			remaining = append(remaining, mg)
			continue
		}
		p := dc.vms[mg.name]
		src := dc.machines[mg.from]
		dst := dc.machines[mg.to]
		// The reservation taken at Migrate time keeps the target's memory
		// in use, so PowerOff refuses it; a powered-off target here means
		// the accounting was corrupted, and landing the VM on it would
		// silently freeze the VM's clock with the machine's.
		if !dst.on {
			return fmt.Errorf("consolidation: migration of %s: target machine %d was powered off mid-copy",
				mg.name, mg.to)
		}
		if err := src.h.RemoveVM(p.guest.ID()); err != nil {
			return err
		}
		src.memUsedMB -= p.spec.MemoryMB
		src.creditUsed -= p.spec.CreditPct
		// The reservation made at Migrate time becomes the real usage;
		// attach re-adds it, so undo the reservation first.
		dst.memUsedMB -= p.spec.MemoryMB
		dst.creditUsed -= p.spec.CreditPct
		guest, err := dc.attach(dst, p.spec, p.wl)
		if err != nil {
			return err
		}
		p.guest = guest
		p.machine = mg.to
		p.migrating = false
		dc.migrated++
	}
	dc.inflight = remaining
	return nil
}

// PowerOff switches an empty machine off. Its clock freezes and it stops
// consuming energy.
func (dc *DataCenter) PowerOff(i int) error {
	if i < 0 || i >= len(dc.machines) {
		return fmt.Errorf("consolidation: machine %d out of range", i)
	}
	m := dc.machines[i]
	if !m.on {
		return fmt.Errorf("consolidation: machine %d is already off", i)
	}
	if m.memUsedMB > 0 {
		return fmt.Errorf("consolidation: machine %d still hosts VMs", i)
	}
	m.on = false
	return nil
}

// PowerOn switches a machine back on. Its clock fast-forwards to the data
// center's present.
func (dc *DataCenter) PowerOn(i int) error {
	if i < 0 || i >= len(dc.machines) {
		return fmt.Errorf("consolidation: machine %d out of range", i)
	}
	m := dc.machines[i]
	if m.on {
		return fmt.Errorf("consolidation: machine %d is already on", i)
	}
	m.on = true
	return nil
}

// Run advances the data center by d in lockstep. Between barriers the
// powered-on machines are independent simulated hosts and step
// concurrently on the engine's worker pool; migration completion,
// consolidation planning and the energy roll-up run sequentially at the
// barrier (in machine order, so the totals are deterministic for any
// worker count).
func (dc *DataCenter) Run(d sim.Time) error {
	target := dc.now + d
	tasks := make([]func() error, 0, len(dc.machines))
	for dc.now < target {
		next := dc.now + dc.step
		if next > target {
			next = target
		}
		tasks = tasks[:0]
		for i, m := range dc.machines {
			if !m.on {
				continue
			}
			i, m := i, m
			tasks = append(tasks, func() error {
				// Powered-off periods are skipped wholesale: catch the
				// machine's clock up without charging idle energy for
				// the off time.
				if m.h.Now() < dc.now {
					if err := dc.skipTo(m, dc.now); err != nil {
						return fmt.Errorf("consolidation: machine %d: %w", i, err)
					}
				}
				if err := m.h.RunUntil(next); err != nil {
					return fmt.Errorf("consolidation: machine %d: %w", i, err)
				}
				return nil
			})
		}
		if err := engine.RunParallel(dc.workers, tasks); err != nil {
			return err
		}
		// Exact integer energy rollup: the machine order of this loop
		// cannot influence the accumulated total.
		for _, m := range dc.machines {
			if !m.on {
				continue
			}
			e := m.h.Energy().Total()
			dc.energy = dc.energy.Add(e.Sub(m.prevEnergy))
			m.prevEnergy = e
		}
		dc.now = next
		if err := dc.completeMigrations(); err != nil {
			return err
		}
		if err := dc.autoStep(); err != nil {
			return err
		}
	}
	return nil
}

// EnableAutoConsolidation turns on the consolidation manager: every
// interval it plans a consolidation round (when no migrations are in
// flight), executes it, and powers off machines that end up empty. One
// machine always stays on.
func (dc *DataCenter) EnableAutoConsolidation(interval sim.Time) error {
	if interval <= 0 {
		return fmt.Errorf("consolidation: auto interval must be positive, got %v", interval)
	}
	dc.autoInterval = interval
	dc.nextPlan = dc.now + interval
	return nil
}

// AutoPoweredOff returns how many machines the manager has switched off.
func (dc *DataCenter) AutoPoweredOff() int { return dc.poweredOff }

// autoStep runs one iteration of the consolidation manager.
func (dc *DataCenter) autoStep() error {
	if dc.autoInterval <= 0 || dc.now < dc.nextPlan {
		return nil
	}
	dc.nextPlan = dc.now + dc.autoInterval

	// Power off machines the previous rounds emptied (in-flight
	// migrations keep their target reservation, so a reserved machine is
	// never considered empty).
	for i, m := range dc.machines {
		if m.on && m.memUsedMB == 0 && dc.ActiveMachines() > 1 {
			if err := dc.PowerOff(i); err != nil {
				return err
			}
			dc.poweredOff++
		}
	}
	if len(dc.inflight) > 0 {
		return nil // let the current round finish first
	}
	for _, mv := range dc.PlanConsolidation() {
		if err := dc.Migrate(mv.Name, mv.To); err != nil {
			return fmt.Errorf("consolidation: auto: %w", err)
		}
	}
	return nil
}

// skipTo advances a just-powered-on machine's host to the present. The
// host loop has no time-warp, so the machine "runs" the gap; the energy
// spent during the gap is excluded from the data-center total (it was
// off).
func (dc *DataCenter) skipTo(m *machine, t sim.Time) error {
	if err := m.h.RunUntil(t); err != nil {
		return err
	}
	m.prevEnergy = m.h.Energy().Total()
	return nil
}

// Migration is one planned move: a VM and its target machine.
type Migration struct {
	Name string
	To   int
}

// PlanConsolidation proposes migrations that empty the least-utilized
// powered-on machine into the remaining ones (first-fit by memory), so it
// can be switched off. It returns nil when no machine can be emptied.
func (dc *DataCenter) PlanConsolidation() []Migration {
	type cand struct {
		idx  int
		used int
	}
	var cands []cand
	for i, m := range dc.machines {
		if m.on && m.memUsedMB > 0 {
			cands = append(cands, cand{i, m.memUsedMB})
		}
	}
	if len(cands) < 2 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].used < cands[j].used })
	victim := cands[0].idx

	// Collect the victim's VMs, largest first.
	var moving []*placedVM
	for _, p := range dc.vms {
		if p.machine == victim && !p.migrating {
			moving = append(moving, p)
		}
	}
	if len(moving) == 0 {
		return nil
	}
	sort.Slice(moving, func(i, j int) bool {
		if moving[i].spec.MemoryMB != moving[j].spec.MemoryMB {
			return moving[i].spec.MemoryMB > moving[j].spec.MemoryMB
		}
		return moving[i].spec.Name < moving[j].spec.Name
	})

	// Tentatively pack them onto the other active machines.
	memLeft := make(map[int]int)
	credLeft := make(map[int]float64)
	for i, m := range dc.machines {
		if i == victim || !m.on {
			continue
		}
		memLeft[i] = dc.spec.MemoryMB - m.memUsedMB
		credLeft[i] = 100 - dc.spec.Dom0ReservePct - m.creditUsed
	}
	var plan []Migration
	for _, p := range moving {
		placed := false
		for _, c := range cands[1:] {
			i := c.idx
			if memLeft[i] >= p.spec.MemoryMB && credLeft[i] >= p.spec.CreditPct {
				memLeft[i] -= p.spec.MemoryMB
				credLeft[i] -= p.spec.CreditPct
				plan = append(plan, Migration{Name: p.spec.Name, To: i})
				placed = true
				break
			}
		}
		if !placed {
			return nil // the victim cannot be fully emptied
		}
	}
	return plan
}
