package consolidation

import (
	"fmt"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// benchDataCenter builds an 8-machine data center with 12 web VMs spread
// across the first six machines and auto-consolidation enabled, the
// workload mix the multi-host driver steps between barriers.
func benchDataCenter(tb testing.TB, workers int) *DataCenter {
	tb.Helper()
	spec := HostSpec{MemoryMB: 8192, Profile: cpufreq.Optiplex755()}
	dc, err := NewDataCenter(spec, 8, true)
	if err != nil {
		tb.Fatal(err)
	}
	if workers > 0 {
		dc.SetWorkers(workers)
	}
	for i := 0; i < 12; i++ {
		spec := VMSpec{
			Name:      fmt.Sprintf("vm%02d", i),
			CreditPct: 15 + float64(i%3)*5,
			MemoryMB:  1024 + 512*(i%4),
			Activity:  0.4 + 0.05*float64(i%5),
		}
		if err := dc.Place(spec, i%6); err != nil {
			tb.Fatal(err)
		}
	}
	if err := dc.EnableAutoConsolidation(5 * sim.Second); err != nil {
		tb.Fatal(err)
	}
	return dc
}

// TestDataCenterParallelDeterminism verifies the parallel multi-host
// driver is deterministic: the same scenario produces bit-identical
// energy totals, migration counts and power-offs for any worker count.
func TestDataCenterParallelDeterminism(t *testing.T) {
	type outcome struct {
		joules     float64
		migrations int
		off        int
		active     int
	}
	run := func(workers int) outcome {
		dc := benchDataCenter(t, workers)
		if err := dc.Run(30 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return outcome{dc.TotalJoules(), dc.Migrations(), dc.AutoPoweredOff(), dc.ActiveMachines()}
	}
	want := run(1)
	if want.migrations == 0 {
		t.Fatal("scenario performed no migrations; the determinism check is vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: outcome %+v, want %+v (workers=1)", workers, got, want)
		}
	}
}

// BenchmarkDataCenterRun measures multi-host simulation throughput: one op
// advances the 8-machine data center by one simulated second. Run with
// -cpu 1,2,4 to see the parallel driver scale with GOMAXPROCS.
func BenchmarkDataCenterRun(b *testing.B) {
	dc := benchDataCenter(b, 0) // default workers: GOMAXPROCS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dc.Run(sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}
