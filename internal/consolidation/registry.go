package consolidation

import (
	"strings"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/sched"
)

// loadBinder is the hook PAS-family schedulers expose to observe the
// host they run on; NewHostWithOptions binds it after host construction.
type loadBinder interface{ BindLoadSource(core.LoadSource) }

// SchedulerSpec is one entry of the scheduler registry: the canonical
// name every layer (fleet, consolidation, pasfleet, pastrace) accepts,
// its aliases, a usage-string description, and the constructor.
type SchedulerSpec struct {
	// Name is the canonical scheduler name.
	Name string
	// Aliases are accepted alternative names ("fix-credit" for
	// "credit", the historical report name).
	Aliases []string
	// Description is the one-line usage-string description.
	Description string

	build func(cpu *cpufreq.CPU, profile *cpufreq.Profile) (sched.Scheduler, loadBinder, error)
}

// schedulerRegistry is the single source of truth for which per-machine
// schedulers exist: fleet.Config.Scheduler, HostOptions.Scheduler and
// every CLI usage string derive their accepted values from it.
var schedulerRegistry = []SchedulerSpec{
	{
		Name:        "pas",
		Description: "DVFS with cap-based credit compensation (the paper's scheduler)",
		build: func(cpu *cpufreq.CPU, profile *cpufreq.Profile) (sched.Scheduler, loadBinder, error) {
			pas, err := core.NewPAS(core.PASConfig{CPU: cpu, CF: profile.EfficiencyTable()})
			if err != nil {
				return nil, nil, err
			}
			return pas, pas, nil
		},
	},
	{
		Name:        "credit",
		Aliases:     []string{"fix-credit"},
		Description: "fix-credit baseline pinned at the maximum frequency",
		build: func(*cpufreq.CPU, *cpufreq.Profile) (sched.Scheduler, loadBinder, error) {
			return sched.NewCredit(sched.CreditConfig{}), nil, nil
		},
	},
	{
		Name:        "credit2",
		Description: "weight-proportional work-conserving, pinned at the maximum frequency",
		build: func(*cpufreq.CPU, *cpufreq.Profile) (sched.Scheduler, loadBinder, error) {
			return sched.NewCredit2(), nil, nil
		},
	},
	{
		Name:        "sedf",
		Description: "earliest-deadline-first reservations (slices derived from credits), pinned at the maximum frequency",
		build: func(*cpufreq.CPU, *cpufreq.Profile) (sched.Scheduler, loadBinder, error) {
			return sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true}), nil, nil
		},
	},
	{
		Name:        "pas-credit2",
		Description: "the PAS DVFS policy enforcing shares through Credit2 weights instead of caps",
		build: func(cpu *cpufreq.CPU, profile *cpufreq.Profile) (sched.Scheduler, loadBinder, error) {
			pc2, err := core.NewPASCredit2(core.PASCredit2Config{CPU: cpu, CF: profile.EfficiencyTable()})
			if err != nil {
				return nil, nil, err
			}
			return pc2, pc2, nil
		},
	},
}

// Schedulers returns the registry entries (constructors omitted) in
// registration order, for building richer CLI help.
func Schedulers() []SchedulerSpec {
	out := make([]SchedulerSpec, len(schedulerRegistry))
	for i, s := range schedulerRegistry {
		out[i] = SchedulerSpec{Name: s.Name, Aliases: append([]string(nil), s.Aliases...), Description: s.Description}
	}
	return out
}

// SchedulerNames renders the accepted scheduler names for usage strings
// and error messages, aliases in parentheses: "pas, credit
// (fix-credit), credit2, sedf, pas-credit2".
func SchedulerNames() string {
	var b strings.Builder
	for i, s := range schedulerRegistry {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Name)
		if len(s.Aliases) > 0 {
			b.WriteString(" (" + strings.Join(s.Aliases, ", ") + ")")
		}
	}
	return b.String()
}

// CanonicalScheduler resolves a scheduler name or alias to its
// canonical registry name. ok is false for unknown names.
func CanonicalScheduler(name string) (canonical string, ok bool) {
	for _, s := range schedulerRegistry {
		if s.Name == name {
			return s.Name, true
		}
		for _, a := range s.Aliases {
			if a == name {
				return s.Name, true
			}
		}
	}
	return "", false
}

// ValidScheduler reports whether name is a registered scheduler name or
// alias.
func ValidScheduler(name string) bool {
	_, ok := CanonicalScheduler(name)
	return ok
}

// lookupScheduler finds the registry entry for a name or alias.
func lookupScheduler(name string) (*SchedulerSpec, bool) {
	canonical, ok := CanonicalScheduler(name)
	if !ok {
		return nil, false
	}
	for i := range schedulerRegistry {
		if schedulerRegistry[i].Name == canonical {
			return &schedulerRegistry[i], true
		}
	}
	return nil, false
}
