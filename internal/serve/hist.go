// Package serve is the request-level serving model layered on the
// fleet's VMs: per-VM client populations generate seeded open-loop
// request streams (the same renewal-chain process that drives the CPU
// demand), per-VM service slots drain FIFO queues, and reply latencies
// derive from the VM's attained work rate — so a capped or down-clocked
// VM serves slower, connecting credit enforcement directly to
// user-visible tail latency.
//
// All quantities are exact integers (microsecond times, milli-work-unit
// service demands), and latencies accumulate into fixed-ladder
// histograms whose merge is an elementwise sum — commutative and
// associative — so machine → shard → fleet reductions are
// order-independent and fleet reports are bit-identical for every shard
// and worker count.
package serve

import (
	"math"
	"math/bits"
)

// Histogram bucket ladder: values below 2*histSub microseconds get an
// exact bucket each; above, every power-of-two octave splits into
// histSub sub-buckets, bounding the relative quantization error by
// 1/histSub (~3.1%). The ladder is fixed — every histogram uses the
// same buckets — so Merge is an elementwise sum.
const (
	histSub     = 32                   // sub-buckets per octave (power of two)
	histSubBits = 5                    // log2(histSub)
	histExact   = 2 * histSub          // values < histExact are exact
	histOctaves = 63 - histSubBits - 1 // octaves above the exact region
	// NumBuckets is the total bucket count; the ladder covers every
	// non-negative int64 microsecond value.
	NumBuckets = histExact + histOctaves*histSub
)

// Histogram is a fixed-ladder streaming histogram of non-negative
// integer-microsecond latencies. The zero value is an empty histogram,
// ready to use. Merging histograms is an elementwise integer sum, so
// any merge order produces identical state.
type Histogram struct {
	counts [NumBuckets]int64
	count  int64
	sum    int64 // exact sum of recorded values, for the mean
	max    int64
}

// bucketOf maps a microsecond value to its bucket index.
func bucketOf(us int64) int {
	if us < 0 {
		us = 0
	}
	if us < histExact {
		return int(us)
	}
	o := bits.Len64(uint64(us)) - 1 // floor(log2), >= histSubBits+1
	return histExact + (o-histSubBits-1)*histSub + int((us-int64(1)<<o)>>(o-histSubBits))
}

// BucketUpper returns the inclusive upper bound of bucket b — the value
// Quantile reports for ranks landing in it.
func BucketUpper(b int) int64 {
	if b < histExact {
		return int64(b)
	}
	o := histSubBits + 1 + (b-histExact)/histSub
	j := int64((b - histExact) % histSub)
	return int64(1)<<o + (j+1)<<(o-histSubBits) - 1
}

// Record adds one latency observation in integer microseconds.
// Negative values clamp to zero.
func (h *Histogram) Record(us int64) {
	if us < 0 {
		us = 0
	}
	h.counts[bucketOf(us)]++
	h.count++
	h.sum += us
	if us > h.max {
		h.max = us
	}
}

// Merge folds o into h: an elementwise integer sum, so merges commute
// and associate and any reduction order yields identical state.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset empties the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of recorded values in microseconds.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the exact maximum recorded value in microseconds.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the q-quantile in microseconds: the inclusive upper
// bound of the bucket holding the observation of rank ceil(q*count)
// (rank clamps to [1, count]). Values below histExact microseconds are
// exact; above, the bound overstates by at most 1/histSub. An empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			return BucketUpper(b)
		}
	}
	return h.max // unreachable: counts sum to count
}
