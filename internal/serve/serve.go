package serve

import (
	"fmt"
	"math/bits"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// DefaultSlots is the default per-VM service slot count.
const DefaultSlots = 4

// DefaultRequestCostDivisor relates the default served-page cost to the
// CPU workload's request cost: a reply costs 1/5 of a demand request
// (4 ms of reference CPU against the workload's 20 ms), so a healthy VM
// serves its client stream with five-fold headroom and queueing delay
// appears exactly when enforcement throttles the attained rate below
// the demand.
const DefaultRequestCostDivisor = 5

// Config configures one VM's serving model.
type Config struct {
	// Slots is the number of concurrent service slots. The VM's attained
	// work rate is statically partitioned across slots (each serves at
	// rate attained/Slots), the simms-style fixed per-slot service model.
	// Zero selects DefaultSlots.
	Slots int
	// RequestCost is the service demand of one request in work units.
	// Zero selects workload.DefaultRequestCost / DefaultRequestCostDivisor.
	RequestCost float64
	// Phases is the client population's request-rate profile (requests
	// per second, absolute simulated time) — the fleet passes the VM's
	// demand profile, so serving load mirrors CPU load with an
	// independent seeded stream.
	Phases []workload.Phase
	// Deterministic selects fixed inter-arrival gaps instead of Poisson.
	Deterministic bool
	// Seed seeds the client arrival stream.
	Seed uint64
	// Start is the server clock origin (the VM's attach time).
	Start sim.Time
}

// slot is one service slot: the request being served, if any.
type slot struct {
	busy    bool
	arrival sim.Time // request arrival time (latency = completion - arrival)
	since   sim.Time // when service last (re)started accounting
	rem     sim.Work // remaining service demand
}

// Server is one VM's serving state: the seeded client stream, the FIFO
// queue and the service slots. Advance is driven by the exact integer
// attained-work ledger of the VM's CPU workload, so every latency is a
// pure function of the (machine, time, attained) fold sequence — which
// the fleet keeps identical across shard and worker counts.
type Server struct {
	arr   *workload.ArrivalProcess
	slots []slot
	cost  sim.Work
	now   sim.Time

	queue []sim.Time // FIFO of waiting requests' arrival times
	qhead int

	offered   int64
	completed int64
	sumLatUs  int64
	maxLatUs  int64
}

// New builds a server. The phase profile is validated as in
// workload.NewWebApp.
func New(cfg Config) (*Server, error) {
	if cfg.Slots == 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Slots < 0 || cfg.Slots > 1024 {
		return nil, fmt.Errorf("serve: slot count %d outside [1, 1024]", cfg.Slots)
	}
	if cfg.RequestCost == 0 {
		cfg.RequestCost = workload.DefaultRequestCost / DefaultRequestCostDivisor
	}
	if cfg.RequestCost < 0 {
		return nil, fmt.Errorf("serve: negative request cost %v", cfg.RequestCost)
	}
	arr, err := workload.NewArrivalProcess(cfg.Phases, cfg.Deterministic, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cost := sim.WorkFromUnits(cfg.RequestCost)
	if cost <= 0 {
		cost = 1 // a zero-work request would complete before it starts
	}
	return &Server{
		arr:   arr,
		slots: make([]slot, cfg.Slots),
		cost:  cost,
		now:   cfg.Start,
	}, nil
}

// mulDivFloor returns floor(a*b/d) for 0 <= a, b and 0 < d, exact via a
// 128-bit intermediate. Callers guarantee the quotient fits in int64.
func mulDivFloor(a, b, d int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi == 0 {
		return int64(lo / uint64(d))
	}
	q, _ := bits.Div64(hi, lo, uint64(d))
	return int64(q)
}

// mulDivCeil returns ceil(a*b/d) under the same contract.
func mulDivCeil(a, b, d int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	lo, carry := bits.Add64(lo, uint64(d-1), 0)
	hi += carry
	if hi == 0 {
		return int64(lo / uint64(d))
	}
	q, _ := bits.Div64(hi, lo, uint64(d))
	return int64(q)
}

// Advance runs the server from its clock to `to`, given the exact
// integer work the VM attained over that span. Per-slot service rate is
// attained/(span*Slots) work per microsecond, applied piecewise-exactly:
// a slot serving from s completes a residual demand rem at
// s + ceil(rem*span*Slots/attained), all in 128-bit-safe integer
// arithmetic. Requests that do not finish carry their exact residual
// into the next span, so latency is independent of how the fleet's
// barriers slice time. Completions record into h (the owning shard's
// per-class interval histogram) and into the server's own counters.
//
// attained == 0 stalls service: arrivals queue and nothing completes.
func (s *Server) Advance(to sim.Time, attained sim.Work, h *Histogram) {
	if to <= s.now {
		return
	}
	from := s.now
	// D = span*slots: the per-slot rate denominator. Span is bounded by
	// the trace horizon (~1e15 us) and slots by 1024, so D fits int64.
	D := int64(to-from) * int64(len(s.slots))
	att := int64(attained)
	if att < 0 {
		att = 0
	}
	// Carried requests restart accounting at the span start: their
	// pre-span progress is already subtracted from rem.
	for i := range s.slots {
		if s.slots[i].busy {
			s.slots[i].since = from
		}
	}
	for {
		na, haveA := s.arr.Peek()
		if haveA && na > to {
			haveA = false
		}
		nc, ci := s.nextCompletion(att, D, to)
		if !haveA && ci < 0 {
			break
		}
		// Completions strictly-or-equally before arrivals: a slot freed
		// at the same instant serves the arriving request immediately.
		if ci >= 0 && (!haveA || nc <= na) {
			sl := &s.slots[ci]
			lat := int64(nc - sl.arrival)
			h.Record(lat)
			s.completed++
			s.sumLatUs += lat
			if lat > s.maxLatUs {
				s.maxLatUs = lat
			}
			sl.busy = false
			if s.qlen() > 0 {
				s.start(ci, s.qpop(), nc)
			}
		} else {
			s.arr.Pop()
			s.offered++
			if idle := s.idleSlot(); idle >= 0 {
				at := na
				if at < from {
					at = from // defensive: a pre-span arrival cannot earn pre-span service
				}
				s.start(idle, na, at)
			} else {
				s.qpush(na)
			}
		}
	}
	// Span end: charge partial service to still-busy slots.
	if att > 0 {
		for i := range s.slots {
			if sl := &s.slots[i]; sl.busy {
				sl.rem -= sim.Work(mulDivFloor(att, int64(to-sl.since), D))
			}
		}
	}
	s.now = to
}

// nextCompletion returns the earliest in-span completion among busy
// slots (ties to the lowest slot index), or (0, -1) if none completes
// by `to`. A slot completes in-span iff its remaining service fits the
// slot's capacity to the span end; only then is the exact completion
// instant computed, which keeps every intermediate inside int64.
func (s *Server) nextCompletion(att, D int64, to sim.Time) (sim.Time, int) {
	if att <= 0 {
		return 0, -1
	}
	best, bi := sim.Time(0), -1
	for i := range s.slots {
		sl := &s.slots[i]
		if !sl.busy {
			continue
		}
		if mulDivFloor(att, int64(to-sl.since), D) < int64(sl.rem) {
			continue
		}
		// floor(att*e/D) >= rem implies ceil(rem*D/att) <= e = to-since,
		// so the quotient is a span-bounded time.
		u := sl.since + sim.Time(mulDivCeil(int64(sl.rem), D, att))
		if u <= sl.since {
			u = sl.since + 1 // positive demand takes at least a microsecond
		}
		if bi < 0 || u < best {
			best, bi = u, i
		}
	}
	return best, bi
}

// start begins serving a request on slot i at time at.
func (s *Server) start(i int, arrival, at sim.Time) {
	s.slots[i] = slot{busy: true, arrival: arrival, since: at, rem: s.cost}
}

func (s *Server) idleSlot() int {
	for i := range s.slots {
		if !s.slots[i].busy {
			return i
		}
	}
	return -1
}

func (s *Server) qlen() int { return len(s.queue) - s.qhead }

func (s *Server) qpush(at sim.Time) { s.queue = append(s.queue, at) }

func (s *Server) qpop() sim.Time {
	at := s.queue[s.qhead]
	s.qhead++
	if s.qhead > 64 && s.qhead*2 >= len(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	return at
}

// Now returns the server clock.
func (s *Server) Now() sim.Time { return s.now }

// Offered returns how many requests the client stream has delivered.
func (s *Server) Offered() int64 { return s.offered }

// Queued returns how many requests are waiting for a service slot (not
// counting requests in service), for queue-depth telemetry samples.
func (s *Server) Queued() int { return s.qlen() }

// Completed returns how many requests have been served.
func (s *Server) Completed() int64 { return s.completed }

// SumLatencyUs returns the exact sum of completed-request latencies in
// microseconds.
func (s *Server) SumLatencyUs() int64 { return s.sumLatUs }

// MaxLatencyUs returns the maximum completed-request latency in
// microseconds.
func (s *Server) MaxLatencyUs() int64 { return s.maxLatUs }
