package serve

import (
	"fmt"
	"math/bits"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// DefaultSlots is the default per-VM service slot count.
const DefaultSlots = 4

// DefaultRequestCostDivisor relates the default served-page cost to the
// CPU workload's request cost: a reply costs 1/5 of a demand request
// (4 ms of reference CPU against the workload's 20 ms), so a healthy VM
// serves its client stream with five-fold headroom and queueing delay
// appears exactly when enforcement throttles the attained rate below
// the demand.
const DefaultRequestCostDivisor = 5

// MaxOverheadPermille bounds the emulator/IO overhead share: at least
// one permille of attained work must remain for the guest's service.
const MaxOverheadPermille = 999

// Config configures one VM's serving model.
type Config struct {
	// Slots is the number of concurrent service slots. The VM's attained
	// work rate is statically partitioned across slots (each serves at
	// rate attained/Slots), the simms-style fixed per-slot service model.
	// Zero selects DefaultSlots.
	Slots int
	// RequestCost is the service demand of one request in work units.
	// Zero selects workload.DefaultRequestCost / DefaultRequestCostDivisor.
	RequestCost float64
	// Phases is the client population's request-rate profile (requests
	// per second, absolute simulated time) — the fleet passes the VM's
	// demand profile, so serving load mirrors CPU load with an
	// independent seeded stream. Ignored when ClosedLoop is set.
	Phases []workload.Phase
	// Deterministic selects fixed inter-arrival gaps instead of Poisson
	// (and, closed-loop, fixed think times instead of exponential).
	Deterministic bool
	// Seed seeds the client arrival stream (open loop) or the think-time
	// process (closed loop).
	Seed uint64
	// Start is the server clock origin (the VM's attach time).
	Start sim.Time

	// OverheadPermille models the VM's emulator/IO threads as an
	// overhead consumer: that fraction (in permille, [0, 999]) of every
	// attained work unit is charged to device emulation before request
	// service sees it. The deduction is computed on the cumulative
	// attained ledger and floored once, so it is independent of how the
	// fleet's barriers slice time.
	OverheadPermille int64

	// Share and Shares split one open-loop arrival stream across replica
	// servers: a server admits exactly the arrivals whose global stream
	// index is congruent to Share modulo Shares (skipped arrivals are
	// not counted as offered). Zero Shares means a single unsplit stream.
	// Incompatible with ClosedLoop.
	Share  int
	Shares int
	// FastForward discards (without offering) all arrivals at or before
	// Start, aligning a replica's stream copy with the history its
	// parent has already served.
	FastForward bool

	// ClosedLoop replaces the open-loop arrival process with a fixed
	// client population: each of Clients clients issues one request,
	// waits for its completion or abandonment, thinks for ThinkTime
	// (exponential mean, or fixed when Deterministic), and issues again.
	ClosedLoop bool
	// Clients is the closed-loop population size.
	Clients int
	// ThinkTime is the mean client think time between a reply (or
	// abandonment) and the next request.
	ThinkTime sim.Time

	// AbandonAfter bounds a request's queueing delay: a request still
	// waiting for a slot AbandonAfter after it was issued leaves the
	// queue. Zero disables abandonment (clients wait forever).
	AbandonAfter sim.Time
	// RetryMax is how many times an expired request is re-issued (each
	// retry is a fresh offered request with a fresh deadline) before the
	// client gives up and the request counts as abandoned. Requires
	// AbandonAfter.
	RetryMax int
}

// request is one queued request: its issue instant (latency and the
// abandonment deadline are measured per attempt) and how many times it
// has already expired and been re-issued.
type request struct {
	at    sim.Time
	tries uint16
}

// slot is one service slot: the request being served, if any.
type slot struct {
	busy    bool
	arrival sim.Time // request issue time (latency = completion - issue)
	since   sim.Time // when service last (re)started accounting
	rem     sim.Work // remaining service demand
}

// Server is one VM's serving state: the seeded client stream, the FIFO
// queue and the service slots. Advance is driven by the exact integer
// attained-work ledger of the VM's CPU workload, so every latency is a
// pure function of the (machine, time, attained) fold sequence — which
// the fleet keeps identical across shard and worker counts.
type Server struct {
	arr   *workload.ArrivalProcess
	slots []slot
	cost  sim.Work
	now   sim.Time

	queue []request // FIFO of waiting requests
	qhead int

	// Open-loop share splitting (replicas).
	arrIdx int64
	share  int64
	shares int64

	// Overhead consumer (emulator/IO threads). ovhTaken is derived from
	// the cumulative attained ledger, rebased at SetOverheadPermille, so
	// the deduction's rounding cannot depend on fold slicing.
	ovhPermille  int64
	cumAtt       sim.Work
	ovhTaken     sim.Work
	ovhBaseAtt   sim.Work
	ovhBaseTaken sim.Work

	// Closed loop.
	closed  bool
	rng     *sim.RNG
	det     bool
	think   sim.Time
	issue   []sim.Time // min-heap of client issue instants
	abandon sim.Time
	retry   int

	offered   int64
	completed int64
	abandoned int64
	retried   int64
	sumLatUs  int64
	maxLatUs  int64
}

// New builds a server. The phase profile is validated as in
// workload.NewWebApp.
func New(cfg Config) (*Server, error) {
	if cfg.Slots == 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.Slots < 0 || cfg.Slots > 1024 {
		return nil, fmt.Errorf("serve: slot count %d outside [1, 1024]", cfg.Slots)
	}
	if cfg.RequestCost == 0 {
		cfg.RequestCost = workload.DefaultRequestCost / DefaultRequestCostDivisor
	}
	if cfg.RequestCost < 0 {
		return nil, fmt.Errorf("serve: negative request cost %v", cfg.RequestCost)
	}
	if cfg.OverheadPermille < 0 || cfg.OverheadPermille > MaxOverheadPermille {
		return nil, fmt.Errorf("serve: overhead %d‰ outside [0, %d]", cfg.OverheadPermille, MaxOverheadPermille)
	}
	if cfg.AbandonAfter < 0 {
		return nil, fmt.Errorf("serve: negative abandonment deadline %v", cfg.AbandonAfter)
	}
	if cfg.RetryMax < 0 || cfg.RetryMax > 1<<15 {
		return nil, fmt.Errorf("serve: retry limit %d outside [0, %d]", cfg.RetryMax, 1<<15)
	}
	if cfg.RetryMax > 0 && cfg.AbandonAfter == 0 {
		return nil, fmt.Errorf("serve: retries require an abandonment deadline")
	}
	if cfg.Shares == 0 {
		cfg.Shares, cfg.Share = 1, 0
	}
	if cfg.Shares < 1 || cfg.Shares > 1024 || cfg.Share < 0 || cfg.Share >= cfg.Shares {
		return nil, fmt.Errorf("serve: share %d/%d invalid", cfg.Share, cfg.Shares)
	}
	cost := sim.WorkFromUnits(cfg.RequestCost)
	if cost <= 0 {
		cost = 1 // a zero-work request would complete before it starts
	}
	s := &Server{
		slots:       make([]slot, cfg.Slots),
		cost:        cost,
		now:         cfg.Start,
		share:       int64(cfg.Share),
		shares:      int64(cfg.Shares),
		ovhPermille: cfg.OverheadPermille,
		abandon:     cfg.AbandonAfter,
		retry:       cfg.RetryMax,
	}
	if cfg.ClosedLoop {
		if cfg.Shares > 1 {
			return nil, fmt.Errorf("serve: closed-loop clients cannot split an arrival stream")
		}
		if cfg.Clients < 1 || cfg.Clients > 1<<20 {
			return nil, fmt.Errorf("serve: client population %d outside [1, %d]", cfg.Clients, 1<<20)
		}
		if cfg.ThinkTime < 0 {
			return nil, fmt.Errorf("serve: negative think time %v", cfg.ThinkTime)
		}
		s.closed = true
		s.det = cfg.Deterministic
		s.think = cfg.ThinkTime
		s.rng = sim.NewRNG(cfg.Seed)
		// The initial population staggers in by one think draw each, as
		// if every client had just received a reply at Start.
		s.issue = make([]sim.Time, 0, cfg.Clients)
		for i := 0; i < cfg.Clients; i++ {
			s.thinkPush(cfg.Start + s.drawThink())
		}
		return s, nil
	}
	arr, err := workload.NewArrivalProcess(cfg.Phases, cfg.Deterministic, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.arr = arr
	if cfg.FastForward {
		for {
			a, ok := s.arr.Peek()
			if !ok || a > cfg.Start {
				break
			}
			s.arr.Pop()
			s.arrIdx++
		}
	}
	return s, nil
}

// mulDivFloor returns floor(a*b/d) for 0 <= a, b and 0 < d, exact via a
// 128-bit intermediate. Callers guarantee the quotient fits in int64.
func mulDivFloor(a, b, d int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi == 0 {
		return int64(lo / uint64(d))
	}
	q, _ := bits.Div64(hi, lo, uint64(d))
	return int64(q)
}

// mulDivCeil returns ceil(a*b/d) under the same contract.
func mulDivCeil(a, b, d int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	lo, carry := bits.Add64(lo, uint64(d-1), 0)
	hi += carry
	if hi == 0 {
		return int64(lo / uint64(d))
	}
	q, _ := bits.Div64(hi, lo, uint64(d))
	return int64(q)
}

// Advance runs the server from its clock to `to`, given the exact
// integer work the VM attained over that span. The overhead consumer
// takes its permille share off the cumulative attained ledger first;
// the remainder drives service. Per-slot service rate is
// service/(span*Slots) work per microsecond, applied piecewise-exactly:
// a slot serving from s completes a residual demand rem at
// s + ceil(rem*span*Slots/service), all in 128-bit-safe integer
// arithmetic. Requests that do not finish carry their exact residual
// into the next span, so latency is independent of how the fleet's
// barriers slice time. Completions record into h (the owning shard's
// per-class interval histogram) and into the server's own counters.
//
// Event order within the span: completions, then queue-head
// abandonment expiries, then client arrivals/issues, earliest first
// with completion <= expiry <= arrival on ties (a slot freed at an
// instant serves the request arriving at that instant; a request
// popped into service at its deadline instant escaped abandonment).
//
// attained == 0 stalls service: arrivals queue, nothing completes, and
// only abandonment deadlines fire.
func (s *Server) Advance(to sim.Time, attained sim.Work, h *Histogram) {
	if to <= s.now {
		return
	}
	from := s.now
	// D = span*slots: the per-slot rate denominator. Span is bounded by
	// the trace horizon (~1e15 us) and slots by 1024, so D fits int64.
	D := int64(to-from) * int64(len(s.slots))
	att := int64(attained)
	if att < 0 {
		att = 0
	}
	// Overhead consumer: the emulator/IO share comes off the cumulative
	// ledger (floored once against the rebased origin), and service
	// sees only this span's growth of the net ledger.
	s.cumAtt += sim.Work(att)
	if s.ovhPermille > 0 {
		taken := s.ovhBaseTaken + sim.Work(mulDivFloor(int64(s.cumAtt-s.ovhBaseAtt), s.ovhPermille, 1000))
		att -= int64(taken - s.ovhTaken)
		s.ovhTaken = taken
	}
	// Carried requests restart accounting at the span start: their
	// pre-span progress is already subtracted from rem.
	for i := range s.slots {
		if s.slots[i].busy {
			s.slots[i].since = from
		}
	}
	for {
		na, haveA := s.nextClient(to)
		nc, ci := s.nextCompletion(att, D, to)
		ne, haveE := s.nextExpiry(to)
		if !haveA && !haveE && ci < 0 {
			break
		}
		switch {
		case ci >= 0 && (!haveE || nc <= ne) && (!haveA || nc <= na):
			sl := &s.slots[ci]
			lat := int64(nc - sl.arrival)
			h.Record(lat)
			s.completed++
			s.sumLatUs += lat
			if lat > s.maxLatUs {
				s.maxLatUs = lat
			}
			sl.busy = false
			if s.qlen() > 0 {
				r := s.qpop()
				s.start(ci, r, nc)
			}
			if s.closed {
				s.thinkPush(nc + s.drawThink())
			}
		case haveE && (!haveA || ne <= na):
			// The queue is issue-ordered, so the head holds the earliest
			// deadline; expiry never frees a slot (a non-empty queue
			// means every slot is busy), so no service state changes.
			r := s.qpop()
			if int(r.tries) < s.retry {
				s.offered++
				s.retried++
				s.queue = append(s.queue, request{at: ne, tries: r.tries + 1})
			} else {
				s.abandoned++
				if s.closed {
					s.thinkPush(ne + s.drawThink())
				}
			}
		default:
			if s.closed {
				s.thinkPop()
			} else {
				s.arr.Pop()
				s.arrIdx++
			}
			s.offered++
			r := request{at: na}
			if idle := s.idleSlot(); idle >= 0 {
				at := na
				if at < from {
					at = from // defensive: a pre-span arrival cannot earn pre-span service
				}
				s.start(idle, r, at)
			} else {
				s.queue = append(s.queue, r)
			}
		}
	}
	// Span end: charge partial service to still-busy slots.
	if att > 0 {
		for i := range s.slots {
			if sl := &s.slots[i]; sl.busy {
				sl.rem -= sim.Work(mulDivFloor(att, int64(to-sl.since), D))
			}
		}
	}
	s.now = to
}

// nextClient returns the next in-span client event: the earliest
// pending issue (closed loop) or the next owned arrival (open loop,
// skipping — without offering — arrivals belonging to other shares).
func (s *Server) nextClient(to sim.Time) (sim.Time, bool) {
	if s.closed {
		if len(s.issue) > 0 && s.issue[0] <= to {
			return s.issue[0], true
		}
		return 0, false
	}
	for {
		a, ok := s.arr.Peek()
		if !ok || a > to {
			return 0, false
		}
		if s.shares > 1 && s.arrIdx%s.shares != s.share {
			s.arr.Pop()
			s.arrIdx++
			continue
		}
		return a, true
	}
}

// nextExpiry returns the queue head's abandonment instant if it falls
// within the span. Queued requests are issue-ordered, so the head
// always holds the earliest deadline.
func (s *Server) nextExpiry(to sim.Time) (sim.Time, bool) {
	if s.abandon == 0 || s.qlen() == 0 {
		return 0, false
	}
	ne := s.queue[s.qhead].at + s.abandon
	if ne > to {
		return 0, false
	}
	return ne, true
}

// nextCompletion returns the earliest in-span completion among busy
// slots (ties to the lowest slot index), or (0, -1) if none completes
// by `to`. A slot completes in-span iff its remaining service fits the
// slot's capacity to the span end; only then is the exact completion
// instant computed, which keeps every intermediate inside int64.
func (s *Server) nextCompletion(att, D int64, to sim.Time) (sim.Time, int) {
	if att <= 0 {
		return 0, -1
	}
	best, bi := sim.Time(0), -1
	for i := range s.slots {
		sl := &s.slots[i]
		if !sl.busy {
			continue
		}
		if mulDivFloor(att, int64(to-sl.since), D) < int64(sl.rem) {
			continue
		}
		// floor(att*e/D) >= rem implies ceil(rem*D/att) <= e = to-since,
		// so the quotient is a span-bounded time.
		u := sl.since + sim.Time(mulDivCeil(int64(sl.rem), D, att))
		if u <= sl.since {
			u = sl.since + 1 // positive demand takes at least a microsecond
		}
		if bi < 0 || u < best {
			best, bi = u, i
		}
	}
	return best, bi
}

// start begins serving request r on slot i at time at.
func (s *Server) start(i int, r request, at sim.Time) {
	s.slots[i] = slot{busy: true, arrival: r.at, since: at, rem: s.cost}
}

func (s *Server) idleSlot() int {
	for i := range s.slots {
		if !s.slots[i].busy {
			return i
		}
	}
	return -1
}

func (s *Server) qlen() int { return len(s.queue) - s.qhead }

func (s *Server) qpop() request {
	r := s.queue[s.qhead]
	s.qhead++
	if s.qhead > 64 && s.qhead*2 >= len(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		s.queue = s.queue[:n]
		s.qhead = 0
		// Shrink once the live queue is well below the high watermark,
		// so one burst does not pin its peak allocation for the VM's
		// lifetime.
		if c := cap(s.queue); c > 256 && n*4 <= c {
			nc := n * 2
			if nc < 64 {
				nc = 64
			}
			nq := make([]request, n, nc)
			copy(nq, s.queue)
			s.queue = nq
		}
	}
	return r
}

// thinkPush adds one client issue instant to the min-heap.
func (s *Server) thinkPush(t sim.Time) {
	s.issue = append(s.issue, t)
	i := len(s.issue) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.issue[p] <= s.issue[i] {
			break
		}
		s.issue[p], s.issue[i] = s.issue[i], s.issue[p]
		i = p
	}
}

// thinkPop removes the earliest issue instant.
func (s *Server) thinkPop() sim.Time {
	t := s.issue[0]
	n := len(s.issue) - 1
	s.issue[0] = s.issue[n]
	s.issue = s.issue[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.issue[l] < s.issue[m] {
			m = l
		}
		if r < n && s.issue[r] < s.issue[m] {
			m = r
		}
		if m == i {
			break
		}
		s.issue[i], s.issue[m] = s.issue[m], s.issue[i]
		i = m
	}
	return t
}

// drawThink returns one client think time: fixed in deterministic
// mode, exponential with mean ThinkTime otherwise, never zero (a
// client cannot issue at the very instant of its reply).
func (s *Server) drawThink() sim.Time {
	d := s.think
	if !s.det {
		d = sim.Time(s.rng.ExpFloat64() * float64(s.think))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// SetOverheadPermille retargets the emulator/IO overhead share. The
// deduction ledger is rebased at the current cumulative attained work,
// so past spans keep their old share exactly and future spans accrue
// at the new rate — the split is independent of fold slicing on both
// sides of the change.
func (s *Server) SetOverheadPermille(p int64) error {
	if p < 0 || p > MaxOverheadPermille {
		return fmt.Errorf("serve: overhead %d‰ outside [0, %d]", p, MaxOverheadPermille)
	}
	s.ovhBaseAtt = s.cumAtt
	s.ovhBaseTaken = s.ovhTaken
	s.ovhPermille = p
	return nil
}

// SetShare reassigns the server's slice of a split open-loop arrival
// stream (replica scale-out/in). All members of a replica group must
// be retargeted at the same simulated instant.
func (s *Server) SetShare(share, shares int) error {
	if s.closed {
		return fmt.Errorf("serve: closed-loop clients cannot split an arrival stream")
	}
	if shares < 1 || shares > 1024 || share < 0 || share >= shares {
		return fmt.Errorf("serve: share %d/%d invalid", share, shares)
	}
	s.share, s.shares = int64(share), int64(shares)
	return nil
}

// Now returns the server clock.
func (s *Server) Now() sim.Time { return s.now }

// Offered returns how many requests clients have issued (retries count
// as fresh requests).
func (s *Server) Offered() int64 { return s.offered }

// Queued returns how many requests are waiting for a service slot (not
// counting requests in service), for queue-depth telemetry samples.
func (s *Server) Queued() int { return s.qlen() }

// Completed returns how many requests have been served.
func (s *Server) Completed() int64 { return s.completed }

// Abandoned returns how many requests expired in the queue with no
// retry budget left.
func (s *Server) Abandoned() int64 { return s.abandoned }

// Retried returns how many expired requests were re-issued. Every
// retry is also counted in Offered, so
// Offered == Completed + Abandoned + Retried + InFlight always holds.
func (s *Server) Retried() int64 { return s.retried }

// InFlight returns how many requests are queued or in service.
func (s *Server) InFlight() int64 {
	n := int64(s.qlen())
	for i := range s.slots {
		if s.slots[i].busy {
			n++
		}
	}
	return n
}

// OverheadWork returns the cumulative attained work consumed by the
// overhead (emulator/IO) share.
func (s *Server) OverheadWork() sim.Work { return s.ovhTaken }

// OverheadPermille returns the current overhead share.
func (s *Server) OverheadPermille() int64 { return s.ovhPermille }

// SumLatencyUs returns the exact sum of completed-request latencies in
// microseconds.
func (s *Server) SumLatencyUs() int64 { return s.sumLatUs }

// MaxLatencyUs returns the maximum completed-request latency in
// microseconds.
func (s *Server) MaxLatencyUs() int64 { return s.maxLatUs }
