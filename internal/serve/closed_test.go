package serve

import (
	"reflect"
	"testing"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// TestServeQueueShrinksAfterBurst: one deep burst must not pin its
// high-watermark backing array for the VM's lifetime — after the queue
// drains, the backing capacity shrinks back toward the live length.
func TestServeQueueShrinksAfterBurst(t *testing.T) {
	// Deterministic 10k req/s for 1 s with no attained work: everything
	// after the slots fill queues up.
	s := mustServer(t, 1, 100, 10000, sim.Second)
	var h Histogram
	s.Advance(sim.Second, 0, &h)
	if s.Queued() < 5000 {
		t.Fatalf("vacuous: burst queued only %d", s.Queued())
	}
	peak := cap(s.queue)
	// Drain the whole queue: plenty of attained work over a long span.
	s.Advance(10*sim.Second, sim.WorkFromUnits(100*20000), &h)
	if s.Queued() != 0 {
		t.Fatalf("queue not drained: %d left", s.Queued())
	}
	if c := cap(s.queue); c >= peak/4 {
		t.Fatalf("backing array not released: cap %d after drain (peak %d)", c, peak)
	}
}

// closedCfg is the shared closed-loop test population: more clients
// than slots and a service demand near the abandonment deadline, so
// completions, expiries and retries all occur.
func closedCfg(seed uint64) Config {
	return Config{
		Slots:        2,
		RequestCost:  500, // 5e5 milli-units; at 2 milli/us/slot: 250 ms service
		ClosedLoop:   true,
		Clients:      16,
		ThinkTime:    100 * sim.Millisecond,
		AbandonAfter: 300 * sim.Millisecond,
		RetryMax:     1,
		Seed:         seed,
	}
}

// TestClosedLoopConservation: after every span,
// offered == completed + abandoned + retried + inflight, with all four
// outcome classes non-trivially exercised.
func TestClosedLoopConservation(t *testing.T) {
	s, err := New(closedCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	var h Histogram
	// Alternate starved and fed spans so queues build and drain.
	for i := 0; i < 40; i++ {
		to := sim.Time(i+1) * 500 * sim.Millisecond
		var att sim.Work
		if i%2 == 1 {
			att = sim.Work(4 * int64(500*sim.Millisecond)) // 2 milli/us/slot
		}
		s.Advance(to, att, &h)
		got := s.Completed() + s.Abandoned() + s.Retried() + s.InFlight()
		if s.Offered() != got {
			t.Fatalf("span %d: offered %d != completed %d + abandoned %d + retried %d + inflight %d",
				i, s.Offered(), s.Completed(), s.Abandoned(), s.Retried(), s.InFlight())
		}
	}
	if s.Completed() == 0 || s.Abandoned() == 0 || s.Retried() == 0 {
		t.Fatalf("vacuous: completed/abandoned/retried = %d/%d/%d",
			s.Completed(), s.Abandoned(), s.Retried())
	}
	if int64(h.Count()) != s.Completed() {
		t.Fatalf("histogram count %d != completed %d", h.Count(), s.Completed())
	}
}

// TestClosedLoopSlicingInvariance: with a uniform attained rate that is
// integral per slot (every capacity floor exact), the seeded think-time
// process and every outcome counter must be bit-identical no matter how
// the span is sliced — the property the fleet's sharding-equivalence
// rests on.
func TestClosedLoopSlicingInvariance(t *testing.T) {
	mk := func() *Server {
		s, err := New(closedCfg(42))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	one, many := mk(), mk()
	var hOne, hMany Histogram
	const rate = 4 // milli-units per us whole-VM: integer per slot
	one.Advance(20*sim.Second, sim.Work(rate*20*int64(sim.Second)), &hOne)
	for t0 := sim.Time(0); t0 < 20*sim.Second; t0 += 125 * sim.Millisecond {
		many.Advance(t0+125*sim.Millisecond, sim.Work(rate*int64(125*sim.Millisecond)), &hMany)
	}
	if one.Offered() != many.Offered() || one.Completed() != many.Completed() ||
		one.Abandoned() != many.Abandoned() || one.Retried() != many.Retried() {
		t.Fatalf("slicing diverged: %d/%d/%d/%d vs %d/%d/%d/%d (offered/completed/abandoned/retried)",
			one.Offered(), one.Completed(), one.Abandoned(), one.Retried(),
			many.Offered(), many.Completed(), many.Abandoned(), many.Retried())
	}
	if one.SumLatencyUs() != many.SumLatencyUs() || one.MaxLatencyUs() != many.MaxLatencyUs() {
		t.Fatalf("slicing diverged on latency: sum %d vs %d, max %d vs %d",
			one.SumLatencyUs(), many.SumLatencyUs(), one.MaxLatencyUs(), many.MaxLatencyUs())
	}
	if !reflect.DeepEqual(hOne, hMany) {
		t.Fatal("slicing diverged on histograms")
	}
	if one.Completed() == 0 || one.Abandoned() == 0 {
		t.Fatalf("vacuous: completed/abandoned = %d/%d", one.Completed(), one.Abandoned())
	}
}

// TestClosedLoopSeededDeterminism: same seed, same trajectory; a
// different seed moves the exponential think draws.
func TestClosedLoopSeededDeterminism(t *testing.T) {
	run := func(seed uint64) (int64, int64) {
		s, err := New(closedCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		var h Histogram
		s.Advance(20*sim.Second, sim.Work(4*20*int64(sim.Second)), &h)
		return s.Completed(), s.SumLatencyUs()
	}
	c1, l1 := run(5)
	c2, l2 := run(5)
	if c1 != c2 || l1 != l2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", c1, l1, c2, l2)
	}
	c3, l3 := run(6)
	if c1 == c3 && l1 == l3 {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestOverheadConsumer: the emulator/IO share comes off the cumulative
// attained ledger exactly, slows service accordingly, and is invariant
// to fold slicing.
func TestOverheadConsumer(t *testing.T) {
	mk := func(permille int64) *Server {
		s, err := New(Config{
			Slots:            2,
			RequestCost:      500,
			Phases:           []workload.Phase{{Start: 0, End: 20 * sim.Second, Rate: 7}},
			Deterministic:    true,
			OverheadPermille: permille,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	var hPlain, hOne, hMany Histogram
	const rate = 4
	total := sim.Work(rate * 20 * int64(sim.Second))
	plain := mk(0)
	plain.Advance(20*sim.Second, total, &hPlain)

	one, many := mk(250), mk(250)
	one.Advance(20*sim.Second, total, &hOne)
	for t0 := sim.Time(0); t0 < 20*sim.Second; t0 += 333 * sim.Millisecond {
		to := t0 + 333*sim.Millisecond
		if to > 20*sim.Second {
			to = 20 * sim.Second
		}
		many.Advance(to, sim.Work(rate*int64(to-t0)), &hMany)
	}
	if want := sim.Work(int64(total) * 250 / 1000); one.OverheadWork() != want {
		t.Fatalf("overhead took %d, want exactly %d", one.OverheadWork(), want)
	}
	if one.OverheadWork() != many.OverheadWork() || one.Completed() != many.Completed() ||
		one.SumLatencyUs() != many.SumLatencyUs() || !reflect.DeepEqual(hOne, hMany) {
		t.Fatalf("overhead deduction depends on slicing: work %d vs %d, completed %d vs %d",
			one.OverheadWork(), many.OverheadWork(), one.Completed(), many.Completed())
	}
	if plain.SumLatencyUs() >= one.SumLatencyUs() {
		t.Fatalf("vacuous: 25%% overhead did not slow service (plain %d us, overhead %d us)",
			plain.SumLatencyUs(), one.SumLatencyUs())
	}
}

// TestShareSplitPartition: replica share-splitting partitions one
// seeded arrival stream exactly — every arrival is offered to exactly
// one member, and a fast-forwarded late joiner sees exactly the
// arrivals after its start.
func TestShareSplitPartition(t *testing.T) {
	phases := []workload.Phase{{Start: 0, End: 20 * sim.Second, Rate: 40}}
	mk := func(share, shares int, start sim.Time, ff bool) *Server {
		s, err := New(Config{
			Phases: phases, Seed: 99,
			Share: share, Shares: shares,
			Start: start, FastForward: ff,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	var h Histogram
	whole := mk(0, 1, 0, false)
	whole.Advance(20*sim.Second, 0, &h)
	total := whole.Offered()
	if total == 0 {
		t.Fatal("vacuous: no arrivals")
	}

	s0, s1 := mk(0, 2, 0, false), mk(1, 2, 0, false)
	s0.Advance(20*sim.Second, 0, &h)
	s1.Advance(20*sim.Second, 0, &h)
	if s0.Offered()+s1.Offered() != total {
		t.Fatalf("split lost arrivals: %d + %d != %d", s0.Offered(), s1.Offered(), total)
	}
	if s0.Offered() == 0 || s1.Offered() == 0 {
		t.Fatalf("vacuous split: %d / %d", s0.Offered(), s1.Offered())
	}

	head := mk(0, 1, 0, false)
	head.Advance(10*sim.Second, 0, &h)
	late := mk(0, 1, 10*sim.Second, true)
	late.Advance(20*sim.Second, 0, &h)
	if head.Offered()+late.Offered() != total {
		t.Fatalf("fast-forward misaligned: %d + %d != %d", head.Offered(), late.Offered(), total)
	}
}

// TestClosedLoopValidation covers the new configuration rejections.
func TestClosedLoopValidation(t *testing.T) {
	base := closedCfg(1)
	for name, mut := range map[string]func(*Config){
		"no clients":          func(c *Config) { c.Clients = 0 },
		"negative think":      func(c *Config) { c.ThinkTime = -1 },
		"retry sans deadline": func(c *Config) { c.AbandonAfter = 0 },
		"closed split":        func(c *Config) { c.Shares = 2 },
		"overhead too big":    func(c *Config) { c.OverheadPermille = 1000 },
		"bad share":           func(c *Config) { c.ClosedLoop = false; c.Share = 2; c.Shares = 2 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	s, err := New(closedCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetShare(0, 2); err == nil {
		t.Error("SetShare on closed-loop server accepted")
	}
	if err := s.SetOverheadPermille(1000); err == nil {
		t.Error("SetOverheadPermille(1000) accepted")
	}
}
