package serve

import (
	"math"
	"reflect"
	"testing"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// TestBucketLadder checks the ladder invariants over the exact region,
// octave boundaries and extremes: buckets tile the value space in
// order, and the reported upper bound overstates a value by at most
// 1/histSub of it.
func TestBucketLadder(t *testing.T) {
	probes := []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000, 1023, 1024,
		1 << 20, 1<<20 + 1, 1<<40 - 1, 1 << 40, math.MaxInt64 - 1, math.MaxInt64}
	prev := -1
	for _, v := range probes {
		b := bucketOf(v)
		if b < 0 || b >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d outside [0, %d)", v, b, NumBuckets)
		}
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		upper := BucketUpper(b)
		if upper < v {
			t.Fatalf("BucketUpper(%d) = %d below value %d", b, upper, v)
		}
		if b > 0 && BucketUpper(b-1) >= v {
			t.Fatalf("value %d not in bucket %d: lower bucket upper %d", v, b, BucketUpper(b-1))
		}
		if err := upper - v; err > v/histSub+1 {
			t.Fatalf("value %d: quantization error %d above %d", v, err, v/histSub+1)
		}
	}
	for v := int64(0); v < histExact; v++ {
		if bucketOf(v) != int(v) || BucketUpper(int(v)) != v {
			t.Fatalf("value %d not exact: bucket %d upper %d", v, bucketOf(v), BucketUpper(bucketOf(v)))
		}
	}
}

// TestHistogramExactQuantiles uses the exact sub-histExact region where
// the percentile of a known distribution is fully determined.
func TestHistogramExactQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	// rank(q) = ceil(32q); value = rank-1 since values 0..31 are exact.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 0}, {0.5, 15}, {0.75, 23}, {0.95, 30}, {0.99, 31}, {1, 31}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.Count() != 32 || h.Sum() != 31*16 || h.Max() != 31 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
}

// TestHistogramKnownBucketQuantile pins the documented semantics above
// the exact region: every quantile of a point mass reports the
// containing bucket's inclusive upper bound.
func TestHistogramKnownBucketQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(1000)
	}
	// 1000 lies in octave [512, 1024), sub-bucket width 16:
	// upper = 512 + 31*16 - 1 = 1007.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1007 {
			t.Fatalf("Quantile(%v) = %d, want 1007", q, got)
		}
	}
	if h.Max() != 1000 {
		t.Fatalf("Max() = %d, want exact 1000", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

// TestHistogramMergeOrderIndependence is the property behind the
// fleet's shard-count-independent reduction: merging any permutation
// of partial histograms, in any association, yields identical state.
func TestHistogramMergeOrderIndependence(t *testing.T) {
	rng := sim.NewRNG(7)
	parts := make([]*Histogram, 8)
	for i := range parts {
		parts[i] = &Histogram{}
		for k := 0; k < 200; k++ {
			// Heavy-tailed-ish values across many octaves.
			v := int64(rng.Uint64() % (1 << (3 + rng.Intn(40))))
			parts[i].Record(v)
		}
	}
	var fwd, rev, pair Histogram
	for _, p := range parts {
		fwd.Merge(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	// Tree association: ((0+1)+(2+3)) + ((4+5)+(6+7)).
	var l, r Histogram
	l.Merge(parts[0])
	l.Merge(parts[1])
	l.Merge(parts[2])
	l.Merge(parts[3])
	r.Merge(parts[4])
	r.Merge(parts[5])
	r.Merge(parts[6])
	r.Merge(parts[7])
	pair.Merge(&l)
	pair.Merge(&r)
	if !reflect.DeepEqual(fwd, rev) || !reflect.DeepEqual(fwd, pair) {
		t.Fatal("merge order changed histogram state")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if fwd.Quantile(q) != rev.Quantile(q) {
			t.Fatalf("quantile %v differs across merge orders", q)
		}
	}
}

// server tests ---------------------------------------------------------

// mustServer builds a server over one constant-rate phase.
func mustServer(t *testing.T, slots int, costUnits float64, rate float64, end sim.Time) *Server {
	t.Helper()
	s, err := New(Config{
		Slots:         slots,
		RequestCost:   costUnits,
		Phases:        []workload.Phase{{Start: 0, End: end, Rate: rate}},
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerExactLatency drives a single-slot server at a service rate
// exactly matching the deterministic arrival gap: every request is
// served in exactly one second with no queueing.
func TestServerExactLatency(t *testing.T) {
	// Cost 1000 units = 1e6 milli-units; attained 1e7 milli over 10 s
	// means 1 milli-unit per microsecond per slot: a request takes
	// exactly 1e6 us. Deterministic arrivals at 1 req/s land at 1..9 s.
	s := mustServer(t, 1, 1000, 1, 10*sim.Second)
	var h Histogram
	s.Advance(10*sim.Second, sim.WorkFromUnits(10*1000), &h)
	if s.Offered() != 9 || s.Completed() != 9 {
		t.Fatalf("offered/completed = %d/%d, want 9/9", s.Offered(), s.Completed())
	}
	if s.SumLatencyUs() != 9*1_000_000 || s.MaxLatencyUs() != 1_000_000 {
		t.Fatalf("sum/max latency = %d/%d", s.SumLatencyUs(), s.MaxLatencyUs())
	}
	if h.Count() != 9 || h.Sum() != 9*1_000_000 {
		t.Fatalf("histogram count/sum = %d/%d", h.Count(), h.Sum())
	}
}

// TestServerStallAndResume: with zero attained work nothing completes;
// when work resumes, the stalled request finishes with the exact
// queueing delay included.
func TestServerStallAndResume(t *testing.T) {
	// One deterministic arrival at 2 s (gap 1/0.5; the 4 s draw crosses
	// the phase end at 3 s and is dropped).
	s := mustServer(t, 1, 1000, 0.5, 3*sim.Second)
	var h Histogram
	s.Advance(3*sim.Second, 0, &h)
	if s.Offered() != 1 || s.Completed() != 0 {
		t.Fatalf("stalled server offered/completed = %d/%d, want 1/0", s.Offered(), s.Completed())
	}
	// Over [3 s, 4 s] the VM attains twice the request cost: service
	// rate 2e6 milli / 1e6 us = 2 milli/us, so the residual 1e6 milli
	// finishes at 3.5 s — latency exactly 1.5 s.
	s.Advance(4*sim.Second, sim.WorkFromUnits(2000), &h)
	if s.Completed() != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed())
	}
	if s.MaxLatencyUs() != 1_500_000 {
		t.Fatalf("latency = %d us, want exactly 1500000", s.MaxLatencyUs())
	}
}

// TestServerFIFOAndSlots: two slots, three near-simultaneous requests.
// The third waits for the first completion, and completions preserve
// arrival order.
func TestServerFIFOAndSlots(t *testing.T) {
	// Deterministic 100 req/s in [0, 31 ms): arrivals at 10, 20, 30 ms.
	s := mustServer(t, 2, 1000, 100, 31*sim.Millisecond)
	var h Histogram
	// 1 milli-unit per us per slot => D = 2*span; attained = 2 units/us.
	span := sim.Time(3 * sim.Second)
	s.Advance(span, sim.Work(2*int64(span)), &h)
	if s.Offered() != 3 || s.Completed() != 3 {
		t.Fatalf("offered/completed = %d/%d, want 3/3", s.Offered(), s.Completed())
	}
	// Service time is exactly 1 s per request. Arrivals at 10 and 20 ms
	// start immediately (latency 1 s each); the 30 ms arrival waits for
	// the 1.010 s completion, finishing at 2.010 s: latency 1.980 s.
	wantSum := int64(1_000_000 + 1_000_000 + 1_980_000)
	if s.SumLatencyUs() != wantSum || s.MaxLatencyUs() != 1_980_000 {
		t.Fatalf("sum/max latency = %d/%d, want %d/1980000", s.SumLatencyUs(), s.MaxLatencyUs(), wantSum)
	}
}

// TestServerCarryAcrossSpans splits the same attained stream across
// many Advance calls and checks the result is identical to one big
// span — the residual-work carry is exact. The rate is chosen so each
// slot serves at an integer milli-unit-per-microsecond rate (4 units
// per us over 2 slots), making every capacity floor exact; with exact
// floors, span slicing must not move any completion by even 1 us.
func TestServerCarryAcrossSpans(t *testing.T) {
	mk := func() *Server { return mustServer(t, 2, 500, 7, 20*sim.Second) }
	one, many := mk(), mk()
	var hOne, hMany Histogram
	const rate = 4 // milli-units per us, whole-VM (integer per slot)
	one.Advance(20*sim.Second, sim.Work(rate*20*int64(sim.Second)), &hOne)
	for t0 := sim.Time(0); t0 < 20*sim.Second; t0 += 250 * sim.Millisecond {
		to := t0 + 250*sim.Millisecond
		many.Advance(to, sim.Work(rate*int64(250*sim.Millisecond)), &hMany)
	}
	if one.Completed() != many.Completed() || one.Offered() != many.Offered() {
		t.Fatalf("split run diverged: %d/%d vs %d/%d completed/offered",
			one.Completed(), one.Offered(), many.Completed(), many.Offered())
	}
	if one.SumLatencyUs() != many.SumLatencyUs() || one.MaxLatencyUs() != many.MaxLatencyUs() {
		t.Fatalf("split run latencies diverged: sum %d vs %d, max %d vs %d",
			one.SumLatencyUs(), many.SumLatencyUs(), one.MaxLatencyUs(), many.MaxLatencyUs())
	}
	if !reflect.DeepEqual(hOne, hMany) {
		t.Fatal("split run histograms diverged")
	}
}

// TestServerArrivalStreamMatchesWebApp: the serving client population
// and the CPU workload share the renewal-chain process, so identical
// (phases, seed) produce identical offered counts.
func TestServerArrivalStreamMatchesWebApp(t *testing.T) {
	phases := []workload.Phase{
		{Start: 0, End: 5 * sim.Second, Rate: 40},
		{Start: 8 * sim.Second, End: 20 * sim.Second, Rate: 11},
	}
	srv, err := New(Config{Phases: phases, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.NewWebApp(workload.WebAppConfig{Phases: phases, Seed: 99, MaxBacklog: -1})
	if err != nil {
		t.Fatal(err)
	}
	var h Histogram
	srv.Advance(20*sim.Second, 0, &h)
	wl.Tick(20 * sim.Second)
	if srv.Offered() != wl.Offered() {
		t.Fatalf("serving stream offered %d, workload offered %d", srv.Offered(), wl.Offered())
	}
	if srv.Offered() == 0 {
		t.Fatal("vacuous: no arrivals generated")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{Slots: -1}); err == nil {
		t.Fatal("negative slots accepted")
	}
	if _, err := New(Config{RequestCost: -1}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if _, err := New(Config{Phases: []workload.Phase{{Start: 1, End: 0, Rate: 1}}}); err == nil {
		t.Fatal("invalid phases accepted")
	}
}
