package energy

import (
	"math"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

func TestNewMeterRejectsInvalidProfile(t *testing.T) {
	p := cpufreq.Optiplex755()
	p.States = p.States[:1]
	if _, err := NewMeter(p); err == nil {
		t.Error("NewMeter accepted invalid profile")
	}
}

func TestMeterIntegration(t *testing.T) {
	prof := cpufreq.Optiplex755()
	m, err := NewMeter(prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(10*sim.Second, 2667, 1); err != nil {
		t.Fatal(err)
	}
	p, err := prof.Power(2667, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := p * 10
	if math.Abs(m.Joules()-want) > 1e-9 {
		t.Errorf("Joules = %v, want %v", m.Joules(), want)
	}
	if m.Elapsed() != 10*sim.Second {
		t.Errorf("Elapsed = %v, want 10s", m.Elapsed())
	}
	if math.Abs(m.AveragePower()-p) > 1e-9 {
		t.Errorf("AveragePower = %v, want %v", m.AveragePower(), p)
	}
	if math.Abs(m.JoulesAt(2667)-want) > 1e-9 {
		t.Errorf("JoulesAt(2667) = %v, want %v", m.JoulesAt(2667), want)
	}
	if m.JoulesAt(1600) != 0 {
		t.Errorf("JoulesAt(1600) = %v, want 0", m.JoulesAt(1600))
	}
}

// TestMeterExactBatchEquivalence is the meter-level statement of the
// accounting-spine contract: one bulk interval integrates bit-identically
// to the same interval charged quantum by quantum, at every utilization.
func TestMeterExactBatchEquivalence(t *testing.T) {
	prof := cpufreq.Optiplex755()
	for _, util := range []float64{0, 0.37, 1} {
		bulk, err := NewMeter(prof)
		if err != nil {
			t.Fatal(err)
		}
		step, err := NewMeter(prof)
		if err != nil {
			t.Fatal(err)
		}
		const q = sim.Millisecond
		const n = 1000
		if err := bulk.Add(n*q, 1600, util); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := step.Add(q, 1600, util); err != nil {
				t.Fatal(err)
			}
		}
		if bulk.Total() != step.Total() {
			t.Errorf("util %v: bulk %+v != stepped %+v", util, bulk.Total(), step.Total())
		}
	}
}

// TestEnergyArithmetic checks the two-word fixed point: carries, borrows
// and the joule conversion.
func TestEnergyArithmetic(t *testing.T) {
	a := EnergyFromPicojoules(7e11) // 0.7 J
	b := a.Add(a)                   // 1.4 J: must carry into the joule word
	if got := b.Joules(); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("0.7+0.7 = %v J, want 1.4", got)
	}
	if d := b.Sub(a); d != a {
		t.Errorf("1.4-0.7 = %+v, want %+v", d, a)
	}
	var sum Energy
	for i := 0; i < 5; i++ {
		sum = sum.AddPicojoules(3e11)
	}
	if got := sum.Joules(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("5 x 0.3 = %v J, want 1.5", got)
	}
	if sum != EnergyFromPicojoules(15e11) {
		t.Errorf("sum %+v not normalized equal to 1.5 J", sum)
	}
}

func TestMeterErrors(t *testing.T) {
	m, err := NewMeter(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(-1, 2667, 0.5); err == nil {
		t.Error("Add(negative dt) succeeded")
	}
	if err := m.Add(sim.Second, 1234, 0.5); err == nil {
		t.Error("Add(unsupported freq) succeeded")
	}
}

func TestLowFrequencyUsesLessEnergy(t *testing.T) {
	prof := cpufreq.Optiplex755()
	lo, err := NewMeter(prof)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewMeter(prof)
	if err != nil {
		t.Fatal(err)
	}
	// Same utilization, different frequencies.
	if err := lo.Add(100*sim.Second, 1600, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := hi.Add(100*sim.Second, 2667, 0.5); err != nil {
		t.Fatal(err)
	}
	if lo.Joules() >= hi.Joules() {
		t.Errorf("energy at 1600 (%v J) not below 2667 (%v J)", lo.Joules(), hi.Joules())
	}
	s := Savings(hi, lo)
	if s <= 0 || s >= 1 {
		t.Errorf("Savings = %v, want in (0,1)", s)
	}
}

func TestSavingsEdgeCases(t *testing.T) {
	prof := cpufreq.Optiplex755()
	m, err := NewMeter(prof)
	if err != nil {
		t.Fatal(err)
	}
	if Savings(nil, m) != 0 || Savings(m, nil) != 0 {
		t.Error("Savings with nil meters not 0")
	}
	empty, err := NewMeter(prof)
	if err != nil {
		t.Fatal(err)
	}
	if Savings(empty, m) != 0 {
		t.Error("Savings with empty baseline not 0")
	}
	if m.AveragePower() != 0 {
		t.Error("AveragePower of empty meter not 0")
	}
}
