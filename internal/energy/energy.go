// Package energy accounts the electrical energy consumed by the simulated
// host, using the processor profile's power model. It quantifies the
// paper's qualitative claims: a variable-credit scheduler that pins the
// frequency at maximum under thrashing load "wastes energy from the point
// of view of the provider" (Section 3.2), while PAS keeps the frequency —
// and hence the power draw — low whenever the absolute load allows.
//
// Accounting is exact integer fixed-point: power is quantized once per
// (P-state, utilization) to integer microwatts, so one interval's energy
// is the integer product microwatts × microseconds = picojoules. Integer
// multiplication distributes over addition, so a batched horizon's energy
// equals the sum of its quanta bit-for-bit — the property the
// batched==reference equivalence tests assert with exact equality.
// Conversion to floating-point joules happens only at the report edge
// (Joules, AveragePower, Savings).
package energy

import (
	"fmt"
	"math"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// picoPerJoule is the Energy fixed point: 1e12 picojoules per joule.
const picoPerJoule = int64(1e12)

// Energy is an exact amount of electrical energy: whole joules plus a
// picojoule remainder in [0, 1e12). The two-word form keeps cross-host
// reductions (cluster, datacenter and fleet totals) exact and
// overflow-safe far beyond what a single int64 of picojoules could carry;
// addition is associative and commutative, so parallel-machine rollups
// are order-independent by construction. Normalized Energy values compare
// with ==.
type Energy struct {
	j  int64 // whole joules
	pj int64 // picojoule remainder, in [0, picoPerJoule)
}

// EnergyFromPicojoules returns the normalized Energy for an integer
// picojoule count.
func EnergyFromPicojoules(pj int64) Energy {
	return Energy{j: pj / picoPerJoule, pj: pj % picoPerJoule}
}

// AddPicojoules returns e plus an integer picojoule count.
func (e Energy) AddPicojoules(pj int64) Energy {
	return e.Add(EnergyFromPicojoules(pj))
}

// Add returns the exact sum e + o.
func (e Energy) Add(o Energy) Energy {
	j, pj := e.j+o.j, e.pj+o.pj
	if pj >= picoPerJoule {
		j++
		pj -= picoPerJoule
	}
	return Energy{j: j, pj: pj}
}

// Sub returns the exact difference e - o, used for interval deltas
// (later reading minus earlier reading of the same meter).
func (e Energy) Sub(o Energy) Energy {
	j, pj := e.j-o.j, e.pj-o.pj
	if pj < 0 {
		j--
		pj += picoPerJoule
	}
	return Energy{j: j, pj: pj}
}

// Joules returns the energy in floating-point joules — the report-edge
// conversion.
func (e Energy) Joules() float64 {
	return float64(e.j) + float64(e.pj)/float64(picoPerJoule)
}

// Meter integrates power draw over simulated time. The power model
// coefficients are precomputed at construction so the per-quantum Add on
// the simulation hot path involves no map operations or profile lookups;
// the quantized microwatt power matches cpufreq.Profile.Power to within
// half a microwatt.
type Meter struct {
	prof    *cpufreq.Profile
	total   Energy
	freqs   []cpufreq.Freq // ladder frequencies, by P-state index
	dyn     []float64      // dynamic power coefficient in watts, by P-state index
	byState []Energy       // energy, by P-state index
	lastF   cpufreq.Freq   // index cache: frequencies change rarely
	lastI   int
	elapsed sim.Time
}

// NewMeter returns a meter for the given processor profile.
func NewMeter(prof *cpufreq.Profile) (*Meter, error) {
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	m := &Meter{
		prof:    prof,
		freqs:   make([]cpufreq.Freq, prof.Levels()),
		dyn:     make([]float64, prof.Levels()),
		byState: make([]Energy, prof.Levels()),
		lastI:   -1,
	}
	for i, s := range prof.States {
		fGHz := float64(s.Freq) / 1000
		m.freqs[i] = s.Freq
		m.dyn[i] = prof.DynCoeff * s.Voltage * s.Voltage * fGHz
	}
	return m, nil
}

// powerMicrowatts quantizes the power draw at P-state index i and
// utilization util (clamped to [0,1]) to integer microwatts. The
// quantization is a pure function of (i, util), so identical intervals —
// whether charged in one batched Add or quantum by quantum — integrate
// identical integer power.
func (m *Meter) powerMicrowatts(i int, util float64) int64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	p := m.prof.StaticPower + m.dyn[i]*(m.prof.IdleFactor+(1-m.prof.IdleFactor)*util)
	return int64(math.Round(p * 1e6))
}

// Add integrates one interval of length dt at frequency f and utilization
// util in [0,1]. Unsupported frequencies or negative intervals are
// reported as errors. The interval's energy is the exact integer product
// microwatts × microseconds, so Add(n·q) equals n additions of Add(q)
// bit-for-bit.
func (m *Meter) Add(dt sim.Time, f cpufreq.Freq, util float64) error {
	if dt < 0 {
		return fmt.Errorf("energy: negative interval %v", dt)
	}
	i := m.lastI
	if f != m.lastF || i < 0 {
		var err error
		i, err = m.prof.Index(f)
		if err != nil {
			return fmt.Errorf("energy: %w", err)
		}
		m.lastF, m.lastI = f, i
	}
	pj := m.powerMicrowatts(i, util) * int64(dt)
	m.total = m.total.AddPicojoules(pj)
	m.byState[i] = m.byState[i].AddPicojoules(pj)
	m.elapsed += dt
	return nil
}

// Total returns the exact integrated energy. Cross-host reductions sum
// these values (integer, order-independent) and convert to joules only at
// the report edge.
func (m *Meter) Total() Energy { return m.total }

// Joules returns the total energy consumed in floating-point joules.
func (m *Meter) Joules() float64 { return m.total.Joules() }

// Elapsed returns the total integrated time.
func (m *Meter) Elapsed() sim.Time { return m.elapsed }

// AveragePower returns the mean power draw in watts over the integrated
// time, or 0 if nothing was integrated.
func (m *Meter) AveragePower() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return m.Joules() / m.elapsed.Seconds()
}

// JoulesAt returns the energy consumed while at frequency f.
func (m *Meter) JoulesAt(f cpufreq.Freq) float64 {
	for i, lf := range m.freqs {
		if lf == f {
			return m.byState[i].Joules()
		}
	}
	return 0
}

// Savings returns the relative energy saving of this meter against a
// baseline meter: (baseline - this) / baseline. It returns 0 when the
// baseline consumed nothing.
func Savings(baseline, m *Meter) float64 {
	if baseline == nil || m == nil || baseline.Joules() <= 0 {
		return 0
	}
	return (baseline.Joules() - m.Joules()) / baseline.Joules()
}
