// Package energy accounts the electrical energy consumed by the simulated
// host, using the processor profile's power model. It quantifies the
// paper's qualitative claims: a variable-credit scheduler that pins the
// frequency at maximum under thrashing load "wastes energy from the point
// of view of the provider" (Section 3.2), while PAS keeps the frequency —
// and hence the power draw — low whenever the absolute load allows.
package energy

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// Meter integrates power draw over simulated time. The per-P-state power
// coefficients are precomputed at construction so the per-quantum Add on
// the simulation hot path involves no map operations or profile lookups
// (the arithmetic matches cpufreq.Profile.Power exactly).
type Meter struct {
	prof    *cpufreq.Profile
	joules  float64
	freqs   []cpufreq.Freq // ladder frequencies, by P-state index
	dyn     []float64      // dynamic power coefficient, by P-state index
	byState []float64      // joules, by P-state index
	lastF   cpufreq.Freq   // index cache: frequencies change rarely
	lastI   int
	elapsed sim.Time
}

// NewMeter returns a meter for the given processor profile.
func NewMeter(prof *cpufreq.Profile) (*Meter, error) {
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	m := &Meter{
		prof:    prof,
		freqs:   make([]cpufreq.Freq, prof.Levels()),
		dyn:     make([]float64, prof.Levels()),
		byState: make([]float64, prof.Levels()),
		lastI:   -1,
	}
	for i, s := range prof.States {
		fGHz := float64(s.Freq) / 1000
		m.freqs[i] = s.Freq
		m.dyn[i] = prof.DynCoeff * s.Voltage * s.Voltage * fGHz
	}
	return m, nil
}

// Add integrates one interval of length dt at frequency f and utilization
// util in [0,1]. Unsupported frequencies or negative intervals are
// reported as errors.
func (m *Meter) Add(dt sim.Time, f cpufreq.Freq, util float64) error {
	if dt < 0 {
		return fmt.Errorf("energy: negative interval %v", dt)
	}
	i := m.lastI
	if f != m.lastF || i < 0 {
		var err error
		i, err = m.prof.Index(f)
		if err != nil {
			return fmt.Errorf("energy: %w", err)
		}
		m.lastF, m.lastI = f, i
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	p := m.prof.StaticPower + m.dyn[i]*(m.prof.IdleFactor+(1-m.prof.IdleFactor)*util)
	j := p * dt.Seconds()
	m.joules += j
	m.byState[i] += j
	m.elapsed += dt
	return nil
}

// Joules returns the total energy consumed.
func (m *Meter) Joules() float64 { return m.joules }

// Elapsed returns the total integrated time.
func (m *Meter) Elapsed() sim.Time { return m.elapsed }

// AveragePower returns the mean power draw in watts over the integrated
// time, or 0 if nothing was integrated.
func (m *Meter) AveragePower() float64 {
	if m.elapsed <= 0 {
		return 0
	}
	return m.joules / m.elapsed.Seconds()
}

// JoulesAt returns the energy consumed while at frequency f.
func (m *Meter) JoulesAt(f cpufreq.Freq) float64 {
	for i, lf := range m.freqs {
		if lf == f {
			return m.byState[i]
		}
	}
	return 0
}

// Savings returns the relative energy saving of this meter against a
// baseline meter: (baseline - this) / baseline. It returns 0 when the
// baseline consumed nothing.
func Savings(baseline, m *Meter) float64 {
	if baseline == nil || m == nil || baseline.Joules() <= 0 {
		return 0
	}
	return (baseline.Joules() - m.Joules()) / baseline.Joules()
}
