// Package core implements the paper's contribution: the Power-Aware
// Scheduler (PAS, Section 4), an extension of the Xen Credit scheduler
// that coordinates DVFS and CPU-credit enforcement so that
//
//   - the processor frequency can be lowered whenever the host's absolute
//     load allows, saving energy, and
//   - every VM always receives exactly the computing capacity its initial
//     credit represents at the maximum frequency — never less (the
//     fix-credit failure of Scenario 1) and never more (the
//     variable-credit failure of Scenario 2).
//
// The package exposes the paper's proportionality equations (1)-(4) as
// pure functions, the computeNewFreq / updateDvfsAndCredits algorithms of
// Listings 1.1 and 1.2, the in-scheduler PAS (the implementation the paper
// reports results for), and the two user-level variants of Section 4.1.
package core

import (
	"fmt"

	"pasched/internal/cpufreq"
)

// AbsoluteLoad converts an observed global load at the current frequency
// into the paper's Absolute load — the load the same consumption would
// represent at the maximum frequency (Section 4):
//
//	Absolute_load = Global_load * CurrentFreq/Freq[max] * cf
//
// globalLoad, the result, ratio and cf are all dimensionless; loads may be
// expressed in [0,1] or percent as long as callers stay consistent.
func AbsoluteLoad(globalLoad, ratio, cf float64) float64 {
	return globalLoad * ratio * cf
}

// CompensatedCredit is equation (4): the credit to assign to a VM at a
// reduced frequency so its computing capacity equals what its initial
// credit bought at the maximum frequency:
//
//	C_j = C_init / (ratio_i * cf_i)
//
// It returns an error when ratio or cf is not positive.
func CompensatedCredit(initCredit, ratio, cf float64) (float64, error) {
	if ratio <= 0 {
		return 0, fmt.Errorf("core: frequency ratio must be positive, got %v", ratio)
	}
	if cf <= 0 {
		return 0, fmt.Errorf("core: calibration factor must be positive, got %v", cf)
	}
	return initCredit / (ratio * cf), nil
}

// LoadAtFrequency is equation (1) rearranged: given a load observed at the
// maximum frequency, it predicts the load at frequency index i:
//
//	L_i = L_max / (ratio_i * cf_i)
func LoadAtFrequency(loadAtMax, ratio, cf float64) (float64, error) {
	if ratio <= 0 || cf <= 0 {
		return 0, fmt.Errorf("core: ratio and cf must be positive, got %v, %v", ratio, cf)
	}
	return loadAtMax / (ratio * cf), nil
}

// ExecTimeAtFrequency is equation (2) rearranged: given an execution time
// at the maximum frequency, it predicts the execution time at a reduced
// frequency (same credit):
//
//	T_i = T_max / (ratio_i * cf_i)
func ExecTimeAtFrequency(timeAtMax, ratio, cf float64) (float64, error) {
	if ratio <= 0 || cf <= 0 {
		return 0, fmt.Errorf("core: ratio and cf must be positive, got %v, %v", ratio, cf)
	}
	return timeAtMax / (ratio * cf), nil
}

// ExecTimeAtCredit is equation (3) rearranged: given an execution time at
// credit cInit, it predicts the execution time at credit cj (same
// frequency):
//
//	T_j = T_init * C_init / C_j
func ExecTimeAtCredit(timeAtInit, cInit, cj float64) (float64, error) {
	if cInit <= 0 || cj <= 0 {
		return 0, fmt.Errorf("core: credits must be positive, got %v, %v", cInit, cj)
	}
	return timeAtInit * cInit / cj, nil
}

// ComputeNewFreq is the paper's Listing 1.1: it scans the frequency ladder
// from the lowest frequency upwards and returns the first frequency whose
// capacity exceeds the absolute load,
//
//	ratio_i * 100 * CF[i] > Absolute_load
//
// falling back to the maximum frequency. absLoadPct is in percent. cf is
// the per-P-state calibration table in ladder order; nil assumes cf = 1
// everywhere, and a short table is padded with 1s.
func ComputeNewFreq(prof *cpufreq.Profile, cf []float64, absLoadPct float64) cpufreq.Freq {
	for i, s := range prof.States {
		ratio := prof.Ratio(s.Freq)
		c := cfAt(cf, i)
		if ratio*100*c > absLoadPct {
			return s.Freq
		}
	}
	return prof.Max()
}

// cfAt returns the calibration factor for ladder index i, defaulting to 1.
func cfAt(cf []float64, i int) float64 {
	if cf == nil || i >= len(cf) || cf[i] <= 0 {
		return 1
	}
	return cf[i]
}
