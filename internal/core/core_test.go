package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

func TestAbsoluteLoad(t *testing.T) {
	// Section 4's example: a 33% global load at 1600/2667 MHz is 20%
	// absolute (cf = 1).
	got := core.AbsoluteLoad(33.33, 1600.0/2667.0, 1)
	if math.Abs(got-20) > 0.01 {
		t.Errorf("AbsoluteLoad = %v, want ~20", got)
	}
}

func TestCompensatedCredit(t *testing.T) {
	// The paper's running example: 20% credit, frequency halved -> 40%.
	got, err := core.CompensatedCredit(20, 0.5, 1)
	if err != nil || math.Abs(got-40) > 1e-9 {
		t.Errorf("CompensatedCredit(20, 0.5, 1) = %v, %v; want 40", got, err)
	}
	// Figure 1's x-axis pairs: credits 10..100 at 2133 MHz become
	// 13 25 38 50 63 75 88 100 113 125 (rounded).
	ratio := 2133.0 / 2667.0
	want := []float64{13, 25, 38, 50, 63, 75, 88, 100, 113, 125}
	for i, init := range []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		got, err := core.CompensatedCredit(init, ratio, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(math.Round(got)-want[i]) > 1 {
			t.Errorf("compensated(%v) = %v, want ~%v (Fig. 1)", init, got, want[i])
		}
	}
	if _, err := core.CompensatedCredit(20, 0, 1); err == nil {
		t.Error("CompensatedCredit(ratio=0) succeeded")
	}
	if _, err := core.CompensatedCredit(20, 0.5, 0); err == nil {
		t.Error("CompensatedCredit(cf=0) succeeded")
	}
}

func TestProportionalityEquations(t *testing.T) {
	// Equation 1 example from Section 4.2: 10% load at Fmax=3000 becomes
	// 20% at Fi=1500.
	got, err := core.LoadAtFrequency(10, 0.5, 1)
	if err != nil || math.Abs(got-20) > 1e-9 {
		t.Errorf("LoadAtFrequency = %v, %v; want 20", got, err)
	}
	// Equation 2: execution time doubles at half frequency.
	tm, err := core.ExecTimeAtFrequency(100, 0.5, 1)
	if err != nil || math.Abs(tm-200) > 1e-9 {
		t.Errorf("ExecTimeAtFrequency = %v, %v; want 200", tm, err)
	}
	// Equation 3 example: doubling credits from 10% to 20% halves time.
	tc, err := core.ExecTimeAtCredit(100, 10, 20)
	if err != nil || math.Abs(tc-50) > 1e-9 {
		t.Errorf("ExecTimeAtCredit = %v, %v; want 50", tc, err)
	}
	if _, err := core.LoadAtFrequency(10, -1, 1); err == nil {
		t.Error("LoadAtFrequency(ratio<0) succeeded")
	}
	if _, err := core.ExecTimeAtFrequency(10, 0.5, -1); err == nil {
		t.Error("ExecTimeAtFrequency(cf<0) succeeded")
	}
	if _, err := core.ExecTimeAtCredit(10, 0, 20); err == nil {
		t.Error("ExecTimeAtCredit(cInit=0) succeeded")
	}
}

func TestComputeNewFreq(t *testing.T) {
	prof := cpufreq.Optiplex755()
	tests := []struct {
		abs  float64
		want cpufreq.Freq
	}{
		{0, 1600},
		{21, 1600},   // phase 1 of the scenario: capacity 60 absorbs 21
		{59.9, 1600}, // just under the 1600 MHz capacity
		{60.1, 1867},
		{75, 2133},
		{85, 2400},
		{95, 2667},
		{150, 2667}, // overload: the scan falls through to Freq[fmax]
	}
	for _, tt := range tests {
		if got := core.ComputeNewFreq(prof, nil, tt.abs); got != tt.want {
			t.Errorf("ComputeNewFreq(%v) = %v, want %v", tt.abs, got, tt.want)
		}
	}
}

func TestComputeNewFreqRespectsCF(t *testing.T) {
	prof := cpufreq.Optiplex755()
	// With cf = 0.8 at the minimum frequency its capacity is 48%, so an
	// absolute load of 50 needs the next level.
	cf := []float64{0.8, 1, 1, 1, 1}
	if got := core.ComputeNewFreq(prof, cf, 50); got != 1867 {
		t.Errorf("ComputeNewFreq with cf = %v, want 1867", got)
	}
	// A short table applies to the states it covers ({0.8} covers the
	// minimum frequency) and pads the rest with cf = 1.
	if got := core.ComputeNewFreq(prof, []float64{0.8}, 50); got != 1867 {
		t.Errorf("ComputeNewFreq with short cf table = %v, want 1867", got)
	}
	if got := core.ComputeNewFreq(prof, []float64{0.8}, 65); got != 1867 {
		t.Errorf("ComputeNewFreq(65) with short cf table = %v, want 1867", got)
	}
}

func TestQuickCompensationInvariant(t *testing.T) {
	// Property (the heart of the paper): compensated credit times the
	// capacity ratio always reproduces the initial credit, i.e. the VM's
	// absolute capacity is invariant under frequency changes.
	f := func(creditRaw, ratioRaw, cfRaw uint8) bool {
		credit := float64(creditRaw%100) + 1   // 1..100
		ratio := float64(ratioRaw%90+10) / 100 // 0.10..0.99
		cf := float64(cfRaw%40+60) / 100       // 0.60..0.99
		comp, err := core.CompensatedCredit(credit, ratio, cf)
		if err != nil {
			return false
		}
		back := comp * ratio * cf
		return math.Abs(back-credit) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickComputeNewFreqIsSufficientAndMinimal(t *testing.T) {
	// Property: the chosen frequency's capacity exceeds the load unless
	// even the maximum cannot hold it; and no lower ladder step would
	// suffice.
	prof := cpufreq.Elite8300()
	cf := prof.EfficiencyTable()
	f := func(absRaw uint8) bool {
		abs := float64(absRaw) / 2 // 0..127.5
		got := core.ComputeNewFreq(prof, cf, abs)
		idx, err := prof.Index(got)
		if err != nil {
			return false
		}
		capacity := prof.Ratio(got) * 100 * cf[idx]
		if capacity <= abs && got != prof.Max() {
			return false
		}
		for i := 0; i < idx; i++ {
			lower := prof.States[i].Freq
			if prof.Ratio(lower)*100*cf[i] > abs {
				return false // a lower frequency would have sufficed
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewPASValidation(t *testing.T) {
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewPAS(core.PASConfig{}); err == nil {
		t.Error("NewPAS without CPU succeeded")
	}
	if _, err := core.NewPAS(core.PASConfig{CPU: cpu, Interval: -1}); err == nil {
		t.Error("NewPAS with negative interval succeeded")
	}
	if _, err := core.NewPAS(core.PASConfig{CPU: cpu, CF: []float64{1, 1}}); err == nil {
		t.Error("NewPAS with mis-sized CF table succeeded")
	}
}

// pasHost builds the canonical V20/V70/Dom0 host under PAS control.
func pasHost(t *testing.T) (*host.Host, *core.PAS, *vm.VM, *vm.VM) {
	t.Helper()
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: pas})
	if err != nil {
		t.Fatal(err)
	}
	pas.BindLoadSource(h)

	dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []*vm.VM{dom0, v20, v70} {
		if err := h.AddVM(v); err != nil {
			t.Fatal(err)
		}
	}
	return h, pas, v20, v70
}

func TestPASCompensatesFrequencyReduction(t *testing.T) {
	// Scenario 1 under PAS (Figures 9 and 10): V20 thrashing, V70 lazy.
	// PAS lowers the frequency to 1600 MHz and raises V20's enforced cap
	// to 20/(1600/2667) = 33.3%, so V20's absolute load stays at 20%.
	h, pas, v20, _ := pasHost(t)
	v20.SetWorkload(&workload.Hog{})
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 1600 {
		t.Errorf("PAS frequency = %v, want 1600 (underloaded host)", got)
	}
	cap, err := pas.EffectiveCap(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-33.34) > 0.2 {
		t.Errorf("V20 effective cap = %.2f%%, want ~33.3%% (Fig. 9)", cap)
	}
	if init, _ := pas.Cap(1); init != 20 {
		t.Errorf("V20 contracted credit = %v, want 20", init)
	}
	abs, _ := h.Recorder().Series("V20_absolute_pct").MeanBetween(5, 30)
	if math.Abs(abs-20) > 1 {
		t.Errorf("V20 absolute load = %.2f%%, want ~20%% (Fig. 10)", abs)
	}
	if pas.Recomputes() == 0 {
		t.Error("PAS never recomputed")
	}
}

func TestPASRestoresCreditsUnderContention(t *testing.T) {
	// Phase 2 (V70 wakes up): the host saturates, PAS raises the
	// frequency back to the maximum and credits return to 20/70.
	h, pas, v20, v70 := pasHost(t)
	v20.SetWorkload(&workload.Hog{})
	v70.SetWorkload(&workload.Hog{})
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 2667 {
		t.Errorf("PAS frequency under contention = %v, want 2667", got)
	}
	for _, tt := range []struct {
		id   vm.ID
		want float64
	}{{1, 20}, {2, 70}} {
		cap, err := pas.EffectiveCap(tt.id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cap-tt.want) > 0.5 {
			t.Errorf("VM %d effective cap = %.2f%%, want %v%%", tt.id, cap, tt.want)
		}
	}
	// Shares match the contracted credits.
	g20, _ := h.Recorder().Series("V20_global_pct").MeanBetween(10, 30)
	g70, _ := h.Recorder().Series("V70_global_pct").MeanBetween(10, 30)
	if math.Abs(g20-20) > 1.5 || math.Abs(g70-70) > 1.5 {
		t.Errorf("shares = %.1f/%.1f, want 20/70", g20, g70)
	}
}

func TestPASNeverGrantsMoreThanContracted(t *testing.T) {
	// The third design principle: "a VM is never given more computing
	// capacity than its allocated credit". Even with everything else
	// idle, a thrashing V20 gets 20% absolute — unlike SEDF's 85%+.
	h, _, v20, _ := pasHost(t)
	v20.SetWorkload(&workload.Hog{})
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	s := h.Recorder().Series("V20_absolute_pct")
	for i, v := range s.V {
		if s.T[i] < 2 { // skip the startup transient
			continue
		}
		if v > 22 {
			t.Fatalf("V20 absolute load %.2f%% at t=%.0fs exceeds its credit", v, s.T[i])
		}
	}
}

func TestPASSetCapRebasesContract(t *testing.T) {
	h, pas, v20, _ := pasHost(t)
	v20.SetWorkload(&workload.Hog{})
	if err := h.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := pas.SetCap(1, 30); err != nil {
		t.Fatal(err)
	}
	// At 1600 MHz the new 30% contract is enforced as 30/0.6 = 50%.
	cap, err := pas.EffectiveCap(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-50) > 0.5 {
		t.Errorf("effective cap after SetCap(30) = %.2f%%, want ~50%%", cap)
	}
	if err := pas.SetCap(9, 10); err == nil {
		t.Error("SetCap(unknown) succeeded")
	}
	if err := pas.SetCap(1, -1); err == nil {
		t.Error("SetCap(-1) succeeded")
	}
	if _, err := pas.Cap(9); err == nil {
		t.Error("Cap(unknown) succeeded")
	}
}

func TestPASWithoutLoadSourceIsPlainCredit(t *testing.T) {
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: pas})
	if err != nil {
		t.Fatal(err)
	}
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	v20.SetWorkload(&workload.Hog{})
	if err := h.AddVM(v20); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 2667 {
		t.Errorf("frequency without load source = %v, want unchanged 2667", got)
	}
	if pas.Recomputes() != 0 {
		t.Errorf("Recomputes = %d without load source, want 0", pas.Recomputes())
	}
}

func TestUserLevelCreditManagerCompensates(t *testing.T) {
	// Variant 1 of Section 4.1: the governor lowers the frequency; the
	// user-level daemon compensates the credits a polling period later.
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	credit := sched.NewCredit(sched.CreditConfig{})
	gov, err := governor.NewPaperOndemand(governor.PaperOndemandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: credit, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	v20.SetWorkload(&workload.Hog{})
	if err := h.AddVM(v20); err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewCreditManager(cpu, credit, nil, sim.Second,
		map[vm.ID]float64{1: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddAgent(mgr); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 1600 {
		t.Fatalf("governor kept frequency at %v, want 1600", got)
	}
	cap, err := credit.Cap(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-33.34) > 0.2 {
		t.Errorf("user-level compensated cap = %.2f%%, want ~33.3%%", cap)
	}
	abs, _ := h.Recorder().Series("V20_absolute_pct").MeanBetween(10, 30)
	if math.Abs(abs-20) > 1.5 {
		t.Errorf("V20 absolute load = %.2f%%, want ~20%%", abs)
	}
}

func TestUserLevelDVFSManagerFullLoop(t *testing.T) {
	// Variant 2 of Section 4.1: the daemon manages both frequency and
	// credits, no kernel governor involved.
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	credit := sched.NewCredit(sched.CreditConfig{})
	h, err := host.New(host.Config{CPU: cpu, Scheduler: credit})
	if err != nil {
		t.Fatal(err)
	}
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	v20.SetWorkload(&workload.Hog{})
	if err := h.AddVM(v20); err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewDVFSCreditManager(cpu, credit, h, nil, sim.Second,
		map[vm.ID]float64{1: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddAgent(mgr); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 1600 {
		t.Errorf("daemon-managed frequency = %v, want 1600", got)
	}
	abs, _ := h.Recorder().Series("V20_absolute_pct").MeanBetween(10, 30)
	if math.Abs(abs-20) > 1.5 {
		t.Errorf("V20 absolute load = %.2f%%, want ~20%%", abs)
	}
}

func TestUserLevelManagerValidation(t *testing.T) {
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	credit := sched.NewCredit(sched.CreditConfig{})
	if _, err := core.NewCreditManager(nil, credit, nil, sim.Second, nil); err == nil {
		t.Error("NewCreditManager(nil cpu) succeeded")
	}
	if _, err := core.NewCreditManager(cpu, nil, nil, sim.Second, nil); err == nil {
		t.Error("NewCreditManager(nil caps) succeeded")
	}
	if _, err := core.NewCreditManager(cpu, credit, nil, 0, nil); err == nil {
		t.Error("NewCreditManager(zero interval) succeeded")
	}
	if _, err := core.NewCreditManager(cpu, credit, []float64{1}, sim.Second, nil); err == nil {
		t.Error("NewCreditManager(short cf) succeeded")
	}
	if _, err := core.NewCreditManager(cpu, credit, nil, sim.Second,
		map[vm.ID]float64{1: -5}); err == nil {
		t.Error("NewCreditManager(negative credit) succeeded")
	}
	if _, err := core.NewDVFSCreditManager(cpu, credit, nil, nil, sim.Second, nil); err == nil {
		t.Error("NewDVFSCreditManager(nil loads) succeeded")
	}
}
