package core

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// LoadSource supplies the paper's Global load signal: the averaged recent
// processor utilization in [0,1] ("an average of three successive
// processor utilization", footnote 5). The host implements it.
type LoadSource interface {
	GlobalLoad() float64
}

// DefaultPASInterval is the default DVFS/credit recomputation interval:
// the Xen scheduler tick of 10 ms ("at each tick in the VM scheduler, we
// compute the appropriate processor frequency", Section 4.2).
const DefaultPASInterval = 10 * sim.Millisecond

// PASConfig configures the in-scheduler PAS.
type PASConfig struct {
	// CPU is the processor whose frequency PAS manages. Required.
	CPU *cpufreq.CPU
	// Credit is the underlying Xen Credit scheduler PAS extends; nil
	// builds one with default configuration.
	Credit *sched.Credit
	// CF is the per-P-state calibration factor table (the paper's CF[]),
	// in ladder order. Nil assumes cf = 1 everywhere; use the measured
	// table from internal/calib for non-ideal architectures.
	CF []float64
	// Interval is the recomputation interval; default DefaultPASInterval.
	Interval sim.Time
	// CapacityMargin inflates the absolute load before the Listing 1.1
	// frequency scan, so that a host saturated at slightly under 100%
	// utilization (scheduling is quantized; Dom0 leaves sub-quantum
	// gaps) still escapes to the next frequency. Zero selects the
	// default of 0.02; Listing 1.1's strict comparison corresponds to a
	// very small positive value.
	CapacityMargin float64
	// SettleTime is how long PAS waits after a frequency change before
	// recomputing again. The Global load signal is a sliding average; a
	// sample window measured at the previous frequency, converted with
	// the new frequency's ratio, misestimates the absolute load and can
	// drive a limit cycle. Waiting one full measurement window after
	// each transition (the same reason the kernel rate-limits ondemand
	// to a multiple of the transition latency) removes the
	// misattribution. Zero selects the default of 400 ms — one default
	// host measurement window (3 x 100 ms) plus margin.
	SettleTime sim.Time
}

// PAS is the paper's Power-Aware Scheduler: the Xen Credit scheduler
// extended so that, at every scheduler tick, it (a) recomputes the
// processor frequency from the absolute load (Listing 1.1) and (b)
// recomputes every VM's credit so its capacity at the new frequency equals
// its contracted capacity at the maximum frequency (Listing 1.2 /
// equation 4).
//
// PAS implements sched.Scheduler by extending Credit, so it plugs into the
// host like any other scheduler. The load signal is bound after host
// construction with BindLoadSource; until then PAS schedules exactly like
// Credit at a fixed frequency.
type PAS struct {
	credit      *sched.Credit
	cpu         *cpufreq.CPU
	cf          []float64
	interval    sim.Time
	margin      float64
	settle      sim.Time
	settleUntil sim.Time
	next        sim.Time
	loads       LoadSource
	initCredit  map[vm.ID]float64
	recomputes  int
	tracer      sched.Tracer
}

var (
	_ sched.Scheduler        = (*PAS)(nil)
	_ sched.CapSetter        = (*PAS)(nil)
	_ sched.EffectiveCapper  = (*PAS)(nil)
	_ sched.BoundaryReporter = (*PAS)(nil)
	_ sched.Batcher          = (*PAS)(nil)
	_ sched.PatternBatcher   = (*PAS)(nil)
	_ sched.TraceSetter      = (*PAS)(nil)
	_ sched.Throttler        = (*PAS)(nil)
)

// NewPAS builds a PAS scheduler.
func NewPAS(cfg PASConfig) (*PAS, error) {
	if cfg.CPU == nil {
		return nil, fmt.Errorf("core: PAS requires a CPU")
	}
	if cfg.Credit == nil {
		cfg.Credit = sched.NewCredit(sched.CreditConfig{})
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultPASInterval
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("core: negative PAS interval %v", cfg.Interval)
	}
	if cfg.CF != nil && len(cfg.CF) != cfg.CPU.Profile().Levels() {
		return nil, fmt.Errorf("core: CF table has %d entries for %d P-states",
			len(cfg.CF), cfg.CPU.Profile().Levels())
	}
	if cfg.CapacityMargin < 0 {
		return nil, fmt.Errorf("core: negative capacity margin %v", cfg.CapacityMargin)
	}
	if cfg.CapacityMargin == 0 {
		cfg.CapacityMargin = 0.02
	}
	if cfg.SettleTime < 0 {
		return nil, fmt.Errorf("core: negative settle time %v", cfg.SettleTime)
	}
	if cfg.SettleTime == 0 {
		cfg.SettleTime = 400 * sim.Millisecond
	}
	return &PAS{
		credit:     cfg.Credit,
		cpu:        cfg.CPU,
		cf:         cfg.CF,
		interval:   cfg.Interval,
		margin:     cfg.CapacityMargin,
		settle:     cfg.SettleTime,
		next:       cfg.Interval,
		initCredit: make(map[vm.ID]float64),
	}, nil
}

// BindLoadSource attaches the Global load signal. Typically called with
// the host right after host construction.
func (p *PAS) BindLoadSource(ls LoadSource) { p.loads = ls }

// Name implements sched.Scheduler.
func (p *PAS) Name() string { return "pas" }

// Add implements sched.Scheduler. The VM's configured credit is remembered
// as its initial credit C_init — the SLA the compensation preserves.
func (p *PAS) Add(v *vm.VM) error {
	if err := p.credit.Add(v); err != nil {
		return err
	}
	p.initCredit[v.ID()] = v.Credit()
	return nil
}

// Remove implements sched.Scheduler.
func (p *PAS) Remove(id vm.ID) error {
	if err := p.credit.Remove(id); err != nil {
		return err
	}
	delete(p.initCredit, id)
	return nil
}

// VMs implements sched.Scheduler.
func (p *PAS) VMs() []*vm.VM { return p.credit.VMs() }

// Pick implements sched.Scheduler.
func (p *PAS) Pick(now sim.Time) *vm.VM { return p.credit.Pick(now) }

// Charge implements sched.Scheduler.
func (p *PAS) Charge(v *vm.VM, busy, now sim.Time) { p.credit.Charge(v, busy, now) }

// SetTracer implements sched.TraceSetter: PAS enforces through Credit,
// so the refill/exhaustion events come from the inner scheduler; PAS
// additionally retains the tracer for its own recompensation events
// (sched.RecompensateTracer).
func (p *PAS) SetTracer(t sched.Tracer) {
	p.tracer = t
	p.credit.SetTracer(t)
}

// Throttled implements sched.Throttler by delegating to the inner
// Credit scheduler, whose compensated caps are the enforcement in
// effect.
func (p *PAS) Throttled(v *vm.VM) bool { return p.credit.Throttled(v) }

// Tick implements sched.Scheduler: it performs the Credit scheduler's
// accounting, then — at every PAS interval — the DVFS and credit
// recomputation of Listings 1.1 and 1.2.
func (p *PAS) Tick(now sim.Time) {
	p.credit.Tick(now)
	if p.loads == nil {
		return
	}
	for now >= p.next {
		p.updateDvfsAndCredits(p.next)
		p.next += p.interval
	}
}

// NextBoundary implements sched.BoundaryReporter: the earlier of the
// Credit refill and the next PAS recomputation (which can change the
// frequency and every VM's cap, so batched steps must stop before it).
func (p *PAS) NextBoundary(now sim.Time) sim.Time {
	b := p.credit.NextBoundary(now)
	if p.loads != nil && p.next < b {
		b = p.next
	}
	return b
}

// BatchPick implements sched.Batcher by delegating to the underlying
// Credit scheduler; the PAS recomputation itself is excluded from batched
// stretches by NextBoundary.
func (p *PAS) BatchPick(v *vm.VM, quantum sim.Time, max int, now sim.Time) (int, bool) {
	return p.credit.BatchPick(v, quantum, max, now)
}

// BatchPattern implements sched.PatternBatcher by delegating to the
// underlying Credit scheduler: between recomputations (excluded from
// batched stretches by NextBoundary) PAS schedules exactly like Credit
// under the momentary compensated caps, so contended stretches collapse
// to the same weighted round-robin rotations.
func (p *PAS) BatchPattern(quota []sched.PatternQuota, quantum sim.Time, max int, now sim.Time) ([]sched.PatternPick, bool) {
	return p.credit.BatchPattern(quota, quantum, max, now)
}

// updateDvfsAndCredits is the paper's Listing 1.2: compute the new
// frequency from the absolute load, derive every VM's compensated credit
// for that frequency, apply the credits, then apply the frequency.
func (p *PAS) updateDvfsAndCredits(now sim.Time) {
	if now < p.settleUntil {
		return // the load signal still contains pre-transition samples
	}
	prof := p.cpu.Profile()
	curIdx, err := prof.Index(p.cpu.Freq())
	if err != nil {
		return // unreachable: the CPU only reports ladder frequencies
	}
	global := p.loads.GlobalLoad() * 100
	abs := AbsoluteLoad(global, p.cpu.Ratio(), cfAt(p.cf, curIdx))

	newFreq := ComputeNewFreq(prof, p.cf, abs*(1+p.margin))
	newIdx, err := prof.Index(newFreq)
	if err != nil {
		return
	}
	ratio := prof.Ratio(newFreq)
	cf := cfAt(p.cf, newIdx)
	changed := newFreq != p.cpu.Freq()
	compensated := int64(0)
	for id, init := range p.initCredit {
		if init <= 0 {
			continue // null-credit VMs have no SLA to compensate
		}
		// Compensation failing, or the cap setter rejecting a VM that was
		// registered through Add, would leave the VM capped for the old
		// frequency with no trace — an accounting invariant violation, not
		// a recoverable condition. init > 0 was checked, ratio and cf come
		// from the validated ladder, and every id is registered, so both
		// are impossible; enforce it.
		newCredit, err := CompensatedCredit(init, ratio, cf)
		if err != nil {
			panic(fmt.Sprintf("core: PAS recompensation for VM %d (init %v, ratio %v, cf %v): %v",
				id, init, ratio, cf, err))
		}
		if err := p.credit.SetCap(id, newCredit); err != nil {
			panic(fmt.Sprintf("core: PAS recompensated cap for VM %d rejected: %v", id, err))
		}
		compensated++
	}
	if changed {
		_ = p.cpu.SetFreq(newFreq, now) // ladder-validated above
		p.settleUntil = now + p.settle
		// One decision event per recomputation that changed the enforced
		// caps (recompensating at an unchanged frequency rewrites identical
		// values); a single event keeps the emission independent of the
		// initCredit map's iteration order.
		if rt, ok := p.tracer.(sched.RecompensateTracer); ok {
			rt.TraceRecompensate(now, int64(newFreq), compensated)
		}
	}
	p.recomputes++
}

// SetCap implements sched.CapSetter. Setting a cap through PAS rebases the
// VM's initial credit: the new value is interpreted as a contracted credit
// at maximum frequency and is immediately compensated for the current
// frequency.
func (p *PAS) SetCap(id vm.ID, pct float64) error {
	if _, ok := p.initCredit[id]; !ok {
		return fmt.Errorf("%w: id %d", sched.ErrUnknownVM, id)
	}
	if pct < 0 {
		return fmt.Errorf("core: negative credit %v for VM %d", pct, id)
	}
	p.initCredit[id] = pct
	prof := p.cpu.Profile()
	idx, err := prof.Index(p.cpu.Freq())
	if err != nil {
		return err
	}
	comp, err := CompensatedCredit(pct, p.cpu.Ratio(), cfAt(p.cf, idx))
	if err != nil {
		return err
	}
	return p.credit.SetCap(id, comp)
}

// Cap implements sched.CapSetter, returning the VM's initial (contracted)
// credit rather than the momentary compensated cap; use EffectiveCap for
// the latter.
func (p *PAS) Cap(id vm.ID) (float64, error) {
	init, ok := p.initCredit[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", sched.ErrUnknownVM, id)
	}
	return init, nil
}

// EffectiveCap returns the VM's current compensated cap in the underlying
// Credit scheduler (e.g. 33.3% for a 20% VM at 1600 of 2667 MHz).
func (p *PAS) EffectiveCap(id vm.ID) (float64, error) {
	return p.credit.Cap(id)
}

// Recomputes returns how many DVFS/credit recomputations have run, for
// tests and introspection.
func (p *PAS) Recomputes() int { return p.recomputes }

// Interval returns the recomputation interval.
func (p *PAS) Interval() sim.Time { return p.interval }
