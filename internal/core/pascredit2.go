package core

import (
	"fmt"
	"math"

	"pasched/internal/cpufreq"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// PASCredit2 is the Credit2-based variant of the paper's Power-Aware
// Scheduler: the same DVFS policy (Listing 1.1 — lowest frequency whose
// capacity absorbs the absolute load), but enforcement through
// weight-proportional work-conserving scheduling instead of hard caps.
// At every PAS interval it recomputes the processor frequency; the
// per-VM enforcement state is Credit2 weights derived from the
// contracted credits (applied at Add/SetCap) instead of compensated caps
// (Listing 1.2 / equation 4) — and because proportional shares are
// frequency-invariant, weights need no per-frequency recomputation at
// the tick, which is exactly the compensation machinery the variant
// deletes.
//
// A work-conserving proportional-share scheduler preserves *relative*
// shares at any frequency on its own, so no frequency compensation is
// needed — but unlike cap-based PAS it lets a VM exceed its contracted
// capacity whenever other VMs leave slack (a variable-credit scheduler in
// the paper's taxonomy). Comparing the two on the same scenarios
// separates the paper's two claims: energy tracking the absolute load
// (both variants) and strict credit enforcement (caps only).
//
// PASCredit2 implements sched.Scheduler by extending Credit2, so it plugs
// into the host like any other scheduler; bind the Global load signal
// with BindLoadSource after host construction, exactly like PAS.
type PASCredit2 struct {
	c2          *sched.Credit2
	cpu         *cpufreq.CPU
	cf          []float64
	interval    sim.Time
	margin      float64
	settle      sim.Time
	settleUntil sim.Time
	next        sim.Time
	loads       LoadSource
	initCredit  map[vm.ID]float64
	recomputes  int
}

// PASCredit2Config configures the Credit2-based PAS. The fields mirror
// PASConfig; there is no Credit scheduler to wrap and no cap compensation
// to parameterize.
type PASCredit2Config struct {
	// CPU is the processor whose frequency the scheduler manages. Required.
	CPU *cpufreq.CPU
	// CF is the per-P-state calibration factor table; nil assumes cf = 1.
	CF []float64
	// Interval is the recomputation interval; default DefaultPASInterval.
	Interval sim.Time
	// CapacityMargin inflates the absolute load before the frequency
	// scan; zero selects the default of 0.02 (see PASConfig).
	CapacityMargin float64
	// SettleTime is how long recomputation pauses after a frequency
	// change; zero selects the default of 400 ms (see PASConfig).
	SettleTime sim.Time
}

var (
	_ sched.Scheduler        = (*PASCredit2)(nil)
	_ sched.CapSetter        = (*PASCredit2)(nil)
	_ sched.BoundaryReporter = (*PASCredit2)(nil)
	_ sched.PatternBatcher   = (*PASCredit2)(nil)
)

// NewPASCredit2 builds a Credit2-based PAS scheduler.
func NewPASCredit2(cfg PASCredit2Config) (*PASCredit2, error) {
	if cfg.CPU == nil {
		return nil, fmt.Errorf("core: PAS-credit2 requires a CPU")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultPASInterval
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("core: negative PAS interval %v", cfg.Interval)
	}
	if cfg.CF != nil && len(cfg.CF) != cfg.CPU.Profile().Levels() {
		return nil, fmt.Errorf("core: CF table has %d entries for %d P-states",
			len(cfg.CF), cfg.CPU.Profile().Levels())
	}
	if cfg.CapacityMargin < 0 {
		return nil, fmt.Errorf("core: negative capacity margin %v", cfg.CapacityMargin)
	}
	if cfg.CapacityMargin == 0 {
		cfg.CapacityMargin = 0.02
	}
	if cfg.SettleTime < 0 {
		return nil, fmt.Errorf("core: negative settle time %v", cfg.SettleTime)
	}
	if cfg.SettleTime == 0 {
		cfg.SettleTime = 400 * sim.Millisecond
	}
	return &PASCredit2{
		c2:         sched.NewCredit2(),
		cpu:        cfg.CPU,
		cf:         cfg.CF,
		interval:   cfg.Interval,
		margin:     cfg.CapacityMargin,
		settle:     cfg.SettleTime,
		next:       cfg.Interval,
		initCredit: make(map[vm.ID]float64),
	}, nil
}

// BindLoadSource attaches the Global load signal. Typically called with
// the host right after host construction.
func (p *PASCredit2) BindLoadSource(ls LoadSource) { p.loads = ls }

// Name implements sched.Scheduler.
func (p *PASCredit2) Name() string { return "pas-credit2" }

// weightFor converts a contracted credit percentage to a Credit2 weight:
// the rounded credit, floored at 1 (Credit2 clamps further).
func weightFor(credit float64) int64 {
	w := int64(math.Round(credit))
	if w < 1 {
		w = 1
	}
	return w
}

// Add implements sched.Scheduler. The VM's configured credit is
// remembered as its contracted credit and becomes its initial weight.
func (p *PASCredit2) Add(v *vm.VM) error {
	if err := p.c2.Add(v); err != nil {
		return err
	}
	p.initCredit[v.ID()] = v.Credit()
	if v.Credit() > 0 {
		if err := p.c2.SetWeight(v.ID(), weightFor(v.Credit())); err != nil {
			_ = p.c2.Remove(v.ID())
			delete(p.initCredit, v.ID())
			return err
		}
	}
	return nil
}

// Remove implements sched.Scheduler.
func (p *PASCredit2) Remove(id vm.ID) error {
	if err := p.c2.Remove(id); err != nil {
		return err
	}
	delete(p.initCredit, id)
	return nil
}

// VMs implements sched.Scheduler.
func (p *PASCredit2) VMs() []*vm.VM { return p.c2.VMs() }

// Pick implements sched.Scheduler.
func (p *PASCredit2) Pick(now sim.Time) *vm.VM { return p.c2.Pick(now) }

// Charge implements sched.Scheduler.
func (p *PASCredit2) Charge(v *vm.VM, busy, now sim.Time) { p.c2.Charge(v, busy, now) }

// Tick implements sched.Scheduler: Credit2 accounting (a no-op), then —
// at every PAS interval — the DVFS recomputation.
func (p *PASCredit2) Tick(now sim.Time) {
	p.c2.Tick(now)
	if p.loads == nil {
		return
	}
	for now >= p.next {
		p.updateDvfs(p.next)
		p.next += p.interval
	}
}

// NextBoundary implements sched.BoundaryReporter: Credit2 itself has no
// accounting boundary, so the next PAS recomputation (which can change
// the frequency) is the only one batched steps must stop before.
func (p *PASCredit2) NextBoundary(now sim.Time) sim.Time {
	b := p.c2.NextBoundary(now)
	if p.loads != nil && p.next < b {
		b = p.next
	}
	return b
}

// BatchPattern implements sched.PatternBatcher by delegating to Credit2:
// between recomputations (excluded from batched stretches by
// NextBoundary) the variant schedules exactly like Credit2 under the
// momentary weights, so contended stretches collapse to the same
// closed-form smallest-vruntime merge.
func (p *PASCredit2) BatchPattern(quota []sched.PatternQuota, quantum sim.Time, max int, now sim.Time) ([]sched.PatternPick, bool) {
	return p.c2.BatchPattern(quota, quantum, max, now)
}

// updateDvfs is the variant's half of Listing 1.2: compute the new
// frequency from the absolute load and apply it. The cap-based PAS must
// also recompute every VM's cap here because a cap is frequency-relative
// (equation 4); weights are not — proportional shares are
// frequency-invariant, so the weights applied at Add/SetCap stay correct
// at every frequency and there is nothing to refresh per tick. That
// missing half *is* the variant.
func (p *PASCredit2) updateDvfs(now sim.Time) {
	if now < p.settleUntil {
		return // the load signal still contains pre-transition samples
	}
	prof := p.cpu.Profile()
	curIdx, err := prof.Index(p.cpu.Freq())
	if err != nil {
		return // unreachable: the CPU only reports ladder frequencies
	}
	global := p.loads.GlobalLoad() * 100
	abs := AbsoluteLoad(global, p.cpu.Ratio(), cfAt(p.cf, curIdx))
	newFreq := ComputeNewFreq(prof, p.cf, abs*(1+p.margin))
	if newFreq != p.cpu.Freq() {
		_ = p.cpu.SetFreq(newFreq, now) // ladder-validated by ComputeNewFreq
		p.settleUntil = now + p.settle
	}
	p.recomputes++
}

// SetCap implements sched.CapSetter: the new value is interpreted as a
// contracted credit and is applied as the VM's weight immediately (the
// single weight-application site besides Add; no per-frequency
// recomputation is needed because proportional shares are
// frequency-invariant). There is no enforced cap — the method exists so
// credit managers and the fleet can re-contract VMs uniformly across
// schedulers.
func (p *PASCredit2) SetCap(id vm.ID, pct float64) error {
	if _, ok := p.initCredit[id]; !ok {
		return fmt.Errorf("%w: id %d", sched.ErrUnknownVM, id)
	}
	if pct < 0 {
		return fmt.Errorf("core: negative credit %v for VM %d", pct, id)
	}
	p.initCredit[id] = pct
	if pct > 0 {
		return p.c2.SetWeight(id, weightFor(pct))
	}
	return nil
}

// Cap implements sched.CapSetter, returning the VM's contracted credit
// (the weight source); nothing is capped.
func (p *PASCredit2) Cap(id vm.ID) (float64, error) {
	init, ok := p.initCredit[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", sched.ErrUnknownVM, id)
	}
	return init, nil
}

// Weight returns the VM's current Credit2 weight.
func (p *PASCredit2) Weight(id vm.ID) (float64, error) { return p.c2.Weight(id) }

// Recomputes returns how many DVFS recomputations have run, for tests
// and introspection.
func (p *PASCredit2) Recomputes() int { return p.recomputes }

// Interval returns the recomputation interval.
func (p *PASCredit2) Interval() sim.Time { return p.interval }
