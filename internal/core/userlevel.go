package core

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// This file implements the two user-level designs the paper considered and
// rejected in favour of the in-scheduler PAS (Section 4.1):
//
//   - "user level - credit management": the Ondemand governor keeps
//     managing the frequency; a user-level daemon monitors the frequency
//     and periodically recomputes VM credits to preserve allocations.
//   - "user level - credit and DVFS management": a user-level daemon
//     monitors the VM loads and periodically sets both the frequency and
//     the compensated credits.
//
// Both run as host Agents. Their coarser polling interval is exactly the
// reactivity penalty the paper cites for rejecting them; the ablation
// experiment (experiments.AblationImpl) quantifies it.

// CreditManager is the "user level - credit management" variant: it reads
// the frequency that some independent governor chose and updates VM caps
// to the compensated credits for that frequency.
type CreditManager struct {
	cpu      *cpufreq.CPU
	caps     sched.CapSetter
	cf       []float64
	interval sim.Time
	init     map[vm.ID]float64
}

// NewCreditManager builds the user-level credit manager. initCredits maps
// each managed VM to its contracted credit at maximum frequency. interval
// is the daemon's polling period (e.g. 1 s); it must be positive.
func NewCreditManager(cpu *cpufreq.CPU, caps sched.CapSetter, cf []float64,
	interval sim.Time, initCredits map[vm.ID]float64) (*CreditManager, error) {
	if cpu == nil || caps == nil {
		return nil, fmt.Errorf("core: credit manager requires a CPU and a cap setter")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("core: credit manager interval must be positive, got %v", interval)
	}
	if cf != nil && len(cf) != cpu.Profile().Levels() {
		return nil, fmt.Errorf("core: CF table has %d entries for %d P-states",
			len(cf), cpu.Profile().Levels())
	}
	init := make(map[vm.ID]float64, len(initCredits))
	for id, c := range initCredits {
		if c < 0 {
			return nil, fmt.Errorf("core: negative credit %v for VM %d", c, id)
		}
		init[id] = c
	}
	return &CreditManager{cpu: cpu, caps: caps, cf: cf, interval: interval, init: init}, nil
}

// Interval implements host.Agent.
func (m *CreditManager) Interval() sim.Time { return m.interval }

// Run implements host.Agent: one daemon iteration.
func (m *CreditManager) Run(sim.Time) {
	prof := m.cpu.Profile()
	idx, err := prof.Index(m.cpu.Freq())
	if err != nil {
		return
	}
	ratio := m.cpu.Ratio()
	cf := cfAt(m.cf, idx)
	for id, init := range m.init {
		if init <= 0 {
			continue
		}
		newCredit, err := CompensatedCredit(init, ratio, cf)
		if err != nil {
			continue
		}
		_ = m.caps.SetCap(id, newCredit) // unknown VMs are skipped silently
	}
}

// DVFSCreditManager is the "user level - credit and DVFS management"
// variant: the daemon computes the frequency that can absorb the absolute
// load, sets it, and sets the compensated credits — the full PAS loop, but
// at user-level polling granularity.
type DVFSCreditManager struct {
	inner *CreditManager
	loads LoadSource
}

// NewDVFSCreditManager builds the user-level credit-and-DVFS manager.
func NewDVFSCreditManager(cpu *cpufreq.CPU, caps sched.CapSetter, loads LoadSource,
	cf []float64, interval sim.Time, initCredits map[vm.ID]float64) (*DVFSCreditManager, error) {
	if loads == nil {
		return nil, fmt.Errorf("core: DVFS credit manager requires a load source")
	}
	inner, err := NewCreditManager(cpu, caps, cf, interval, initCredits)
	if err != nil {
		return nil, err
	}
	return &DVFSCreditManager{inner: inner, loads: loads}, nil
}

// Interval implements host.Agent.
func (m *DVFSCreditManager) Interval() sim.Time { return m.inner.interval }

// Run implements host.Agent: one daemon iteration.
func (m *DVFSCreditManager) Run(now sim.Time) {
	cpu := m.inner.cpu
	prof := cpu.Profile()
	idx, err := prof.Index(cpu.Freq())
	if err != nil {
		return
	}
	global := m.loads.GlobalLoad() * 100
	abs := AbsoluteLoad(global, cpu.Ratio(), cfAt(m.inner.cf, idx))
	newFreq := ComputeNewFreq(prof, m.inner.cf, abs)
	if newFreq != cpu.Freq() {
		_ = cpu.SetFreq(newFreq, now) // ladder frequency by construction
	}
	// Credits are recomputed for the frequency just requested, matching
	// Listing 1.2's order (credits first would use the stale ratio).
	newIdx, err := prof.Index(newFreq)
	if err != nil {
		return
	}
	ratio := prof.Ratio(newFreq)
	cf := cfAt(m.inner.cf, newIdx)
	for id, init := range m.inner.init {
		if init <= 0 {
			continue
		}
		newCredit, err := CompensatedCredit(init, ratio, cf)
		if err != nil {
			continue
		}
		_ = m.inner.caps.SetCap(id, newCredit)
	}
}
