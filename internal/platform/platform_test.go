package platform

import (
	"strings"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sched"
)

func TestPlatformsMatchTable2Columns(t *testing.T) {
	want := []string{"Hyper-V", "VMware", "Xen/credit", "Xen/PAS", "Xen/SEDF", "KVM", "Vbox"}
	got := Platforms()
	if len(got) != len(want) {
		t.Fatalf("got %d platforms, want %d", len(got), len(want))
	}
	for i, p := range got {
		if p.Name != want[i] {
			t.Errorf("platform[%d] = %q, want %q", i, p.Name, want[i])
		}
		if p.Overhead <= 0 {
			t.Errorf("%s: non-positive overhead %v", p.Name, p.Overhead)
		}
	}
}

func TestFamilyClassification(t *testing.T) {
	fix := map[string]bool{"Hyper-V": true, "VMware": true, "Xen/credit": true, "Xen/PAS": true}
	for _, p := range Platforms() {
		if fix[p.Name] != (p.Family == FixCredit) {
			t.Errorf("%s: family = %v", p.Name, p.Family)
		}
	}
	if FixCredit.String() != "fix credit" || VariableCredit.String() != "variable credit" {
		t.Error("family strings wrong")
	}
	if Family(0).String() != "unknown" {
		t.Error("unknown family string wrong")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("Xen/PAS")
	if err != nil || !p.PAS {
		t.Errorf("ByName(Xen/PAS) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestGovernorModeString(t *testing.T) {
	if Performance.String() != "Performance" || OnDemand.String() != "OnDemand" {
		t.Error("mode strings wrong")
	}
	if GovernorMode(0).String() != "unknown" {
		t.Error("unknown mode string wrong")
	}
}

func TestNewPartsSchedulers(t *testing.T) {
	prof := cpufreq.Elite8300()
	tests := []struct {
		name      string
		wantSched string
		wantPAS   bool
	}{
		{"Hyper-V", "credit", false},
		{"Xen/PAS", "pas", true},
		{"Xen/SEDF", "sedf", false},
		{"KVM", "credit2", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := ByName(tt.name)
			if err != nil {
				t.Fatal(err)
			}
			parts, err := p.NewParts(prof, OnDemand)
			if err != nil {
				t.Fatal(err)
			}
			if got := parts.Scheduler.Name(); got != tt.wantSched {
				t.Errorf("scheduler = %q, want %q", got, tt.wantSched)
			}
			if (parts.PAS != nil) != tt.wantPAS {
				t.Errorf("PAS present = %v, want %v", parts.PAS != nil, tt.wantPAS)
			}
		})
	}
}

func TestNewPartsGovernors(t *testing.T) {
	prof := cpufreq.Elite8300()

	// Performance mode: a plain performance governor (except Xen/PAS).
	hv, err := ByName("Hyper-V")
	if err != nil {
		t.Fatal(err)
	}
	parts, err := hv.NewParts(prof, Performance)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Governor == nil || parts.Governor.Name() != "performance" {
		t.Errorf("Hyper-V/Performance governor = %v", parts.Governor)
	}

	// OnDemand with a floor: a clamped governor.
	vw, err := ByName("VMware")
	if err != nil {
		t.Fatal(err)
	}
	parts, err = vw.NewParts(prof, OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Governor == nil || !strings.Contains(parts.Governor.Name(), "clamped") {
		t.Errorf("VMware/OnDemand governor = %v, want clamped", parts.Governor)
	}

	// PAS under OnDemand: no external governor.
	pas, err := ByName("Xen/PAS")
	if err != nil {
		t.Fatal(err)
	}
	parts, err = pas.NewParts(prof, OnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Governor != nil {
		t.Errorf("Xen/PAS/OnDemand has external governor %v", parts.Governor)
	}

	// Unknown mode errors.
	if _, err := pas.NewParts(prof, GovernorMode(0)); err == nil {
		t.Error("NewParts(unknown mode) succeeded")
	}
}

func TestNewPartsSchedulerIsCapSetterForFixCredit(t *testing.T) {
	prof := cpufreq.Elite8300()
	for _, name := range []string{"Hyper-V", "VMware", "Xen/credit", "Xen/PAS"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := p.NewParts(prof, Performance)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := parts.Scheduler.(sched.CapSetter); !ok {
			t.Errorf("%s: scheduler is not a CapSetter", name)
		}
	}
}
