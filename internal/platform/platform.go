// Package platform models the seven virtualization platforms of the
// paper's Table 2 (Section 5.8): Hyper-V Server 2012, VMware ESXi 5, Xen
// with the Credit scheduler, Xen with the PAS scheduler, Xen with the SEDF
// scheduler, KVM and VirtualBox, all on the HP Compaq Elite 8300
// (Core i7-3770).
//
// Each platform is reduced to the three properties Table 2 actually
// exercises:
//
//   - the scheduler family (fix credit vs variable credit), which decides
//     whether a busy VM can consume slices an idle VM leaves unused;
//   - the depth of its DVFS policy, modelled as the deepest P-state its
//     ondemand-style governor uses (commercial "balanced" power policies
//     do not use the deepest states; this is what differentiates the
//     degradation magnitudes of the fix-credit columns);
//   - a CPU overhead factor relative to Xen, calibrated from the paper's
//     Performance-governor row (e.g. Hyper-V 1601s vs Xen 1559s).
//
// These are approximations of closed-source systems; EXPERIMENTS.md
// documents the calibration.
package platform

import (
	"fmt"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/sched"
)

// Family classifies a platform's scheduler in the paper's taxonomy
// (Section 3.1).
type Family int

// Scheduler families.
const (
	// FixCredit guarantees and hard-caps each VM's credit.
	FixCredit Family = iota + 1
	// VariableCredit redistributes unused slices to busy VMs.
	VariableCredit
)

// String renders the family as used in Table 2's column grouping.
func (f Family) String() string {
	switch f {
	case FixCredit:
		return "fix credit"
	case VariableCredit:
		return "variable credit"
	default:
		return "unknown"
	}
}

// GovernorMode selects the row of Table 2.
type GovernorMode int

// Governor modes of Table 2's rows.
const (
	// Performance pins the maximum frequency.
	Performance GovernorMode = iota + 1
	// OnDemand is the platform's dynamic frequency policy.
	OnDemand
)

// String renders the mode as in Table 2's row labels.
func (m GovernorMode) String() string {
	switch m {
	case Performance:
		return "Performance"
	case OnDemand:
		return "OnDemand"
	default:
		return "unknown"
	}
}

// Platform describes one Table 2 column.
type Platform struct {
	// Name is the column label, e.g. "Hyper-V".
	Name string
	// Family is the scheduler classification.
	Family Family
	// PAS marks the Xen/PAS column, which replaces the governor with the
	// in-scheduler PAS loop.
	PAS bool
	// SEDF selects the SEDF scheduler for variable-credit platforms that
	// use reservation-style scheduling; false selects the
	// weight-proportional work-conserving model (KVM, VirtualBox).
	SEDF bool
	// FloorIndex is the deepest P-state index the platform's ondemand
	// policy uses (0 = full ladder depth).
	FloorIndex int
	// Overhead is the CPU overhead factor relative to Xen (work is
	// multiplied by it), calibrated from Table 2's Performance row.
	Overhead float64
}

// Parts is the platform-specific machinery for one host: the CPU, the
// scheduler, the optional governor and, for the Xen/PAS column, the PAS
// scheduler that needs a load source bound after host construction.
type Parts struct {
	CPU       *cpufreq.CPU
	Scheduler sched.Scheduler
	Governor  governor.Governor
	PAS       *core.PAS
}

// Platforms returns the seven Table 2 columns in the paper's order.
func Platforms() []Platform {
	return []Platform{
		{Name: "Hyper-V", Family: FixCredit, FloorIndex: 0, Overhead: 1601.0 / 1559.0},
		{Name: "VMware", Family: FixCredit, FloorIndex: 2, Overhead: 1550.0 / 1559.0},
		{Name: "Xen/credit", Family: FixCredit, FloorIndex: 1, Overhead: 1},
		{Name: "Xen/PAS", Family: FixCredit, PAS: true, FloorIndex: 0, Overhead: 1},
		{Name: "Xen/SEDF", Family: VariableCredit, SEDF: true, FloorIndex: 0, Overhead: 616.0 / 616.0},
		{Name: "KVM", Family: VariableCredit, FloorIndex: 0, Overhead: 599.0 / 616.0},
		{Name: "Vbox", Family: VariableCredit, FloorIndex: 0, Overhead: 625.0 / 616.0},
	}
}

// ByName returns the platform with the given Table 2 column name.
func ByName(name string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown platform %q", name)
}

// NewParts builds the platform's scheduler/governor stack for the given
// processor profile and governor mode.
func (p Platform) NewParts(prof *cpufreq.Profile, mode GovernorMode) (*Parts, error) {
	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	parts := &Parts{CPU: cpu}

	// Scheduler.
	switch {
	case p.PAS:
		pas, err := core.NewPAS(core.PASConfig{CPU: cpu, CF: prof.EfficiencyTable()})
		if err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		parts.Scheduler = pas
		parts.PAS = pas
	case p.Family == VariableCredit && p.SEDF:
		parts.Scheduler = sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true})
	case p.Family == VariableCredit:
		parts.Scheduler = sched.NewCredit2()
	default:
		parts.Scheduler = sched.NewCredit(sched.CreditConfig{})
	}

	// Governor.
	switch mode {
	case Performance:
		if !p.PAS {
			parts.Governor = &governor.Performance{}
		}
		// Xen/PAS under "Performance" runs PAS without a load source,
		// which keeps the boot (maximum) frequency — equivalent
		// behaviour, frequency-wise, to the performance governor.
	case OnDemand:
		if p.PAS {
			break // PAS manages DVFS itself
		}
		inner, err := governor.NewPaperOndemand(governor.PaperOndemandConfig{
			CF: prof.EfficiencyTable(),
		})
		if err != nil {
			return nil, fmt.Errorf("platform: %w", err)
		}
		if p.FloorIndex > 0 {
			parts.Governor = &governor.Clamped{Inner: inner, FloorIndex: p.FloorIndex}
		} else {
			parts.Governor = inner
		}
	default:
		return nil, fmt.Errorf("platform: unknown governor mode %d", mode)
	}
	return parts, nil
}
