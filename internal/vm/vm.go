// Package vm models virtual machines as the hypervisor scheduler sees them
// (Section 2.1 of the paper): an execution priority, a CPU credit (the
// percentage of the processor's capacity at maximum frequency bought by the
// customer, i.e. the SLA), and a runnable/blocked state driven by the
// workload inside the guest.
package vm

import (
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// ID identifies a VM within a host. IDs are assigned by the caller and must
// be unique per host; 0 is conventionally Dom0.
type ID int

// Config is the creation-time configuration of a VM.
type Config struct {
	// Name is a human-readable label, e.g. "V20".
	Name string
	// Credit is the VM's allocated CPU credit as a percentage of the
	// processor capacity at maximum frequency, in (0, 100]. Zero selects
	// the Xen "null credit" behaviour: the VM has no guaranteed credit
	// and no cap, consuming only otherwise-idle slices.
	Credit float64
	// Weight is the proportional-share weight used by work-conserving
	// schedulers. Zero derives the weight from Credit (or 1 if Credit is
	// also zero).
	Weight int
	// Priority is the strict priority tier; higher tiers are always
	// served first. The paper's Dom0 is "configured with the highest
	// priority in the VM scheduler" (Section 5.3).
	Priority int
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.Credit < 0 || c.Credit > 100 {
		return fmt.Errorf("vm: credit %v outside [0,100]", c.Credit)
	}
	if c.Weight < 0 {
		return fmt.Errorf("vm: negative weight %d", c.Weight)
	}
	return nil
}

// EffectiveWeight returns the proportional-share weight: the configured
// weight, or one derived from the credit.
func (c Config) EffectiveWeight() int {
	if c.Weight > 0 {
		return c.Weight
	}
	if c.Credit > 0 {
		return int(c.Credit)
	}
	return 1
}

// VM is a virtual machine instance. It binds a configuration to a workload
// and keeps the hypervisor-side accounting: total scheduled CPU time and
// total work executed.
//
// VM is not safe for concurrent use; the simulation is single-threaded.
type VM struct {
	id  ID
	cfg Config
	wl  workload.Workload
	fc  workload.Forecaster // wl's Forecaster side, nil if absent

	paused  bool
	cpuTime sim.Time // total busy CPU time granted to the VM
	work    sim.Work // total work executed
}

// New creates a VM with the given identity and configuration, initially
// idle. It returns an error if the configuration is invalid.
func New(id ID, cfg Config) (*VM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("vm%d", id)
	}
	v := &VM{id: id, cfg: cfg}
	v.SetWorkload(nil)
	return v, nil
}

// ID returns the VM identifier.
func (v *VM) ID() ID { return v.id }

// Name returns the VM's label.
func (v *VM) Name() string { return v.cfg.Name }

// Config returns the VM's creation-time configuration.
func (v *VM) Config() Config { return v.cfg }

// Credit returns the VM's initially allocated credit percentage.
func (v *VM) Credit() float64 { return v.cfg.Credit }

// Priority returns the VM's strict priority tier.
func (v *VM) Priority() int { return v.cfg.Priority }

// SetWorkload binds a workload to the VM. A nil workload resets the VM to
// idle.
func (v *VM) SetWorkload(wl workload.Workload) {
	if wl == nil {
		wl = workload.Idle{}
	}
	v.wl = wl
	v.fc, _ = wl.(workload.Forecaster)
}

// NextChange forwards to the workload's Forecaster (see
// workload.Forecaster); the second return value is false when the
// workload cannot forecast at all.
func (v *VM) NextChange(now sim.Time) (sim.Time, bool) {
	if v.fc == nil {
		return 0, false
	}
	return v.fc.NextChange(now), true
}

// Workload returns the currently bound workload.
func (v *VM) Workload() workload.Workload { return v.wl }

// Tick advances the VM's workload to now.
func (v *VM) Tick(now sim.Time) { v.wl.Tick(now) }

// Runnable reports whether the VM has pending work and is not paused.
func (v *VM) Runnable() bool { return !v.paused && v.wl.Pending() > 0 }

// Pause suspends the VM: it stops being runnable until Resume. Workload
// arrivals keep queueing (the guest's clients do not know it is paused),
// matching the behaviour of `xl pause`.
func (v *VM) Pause() { v.paused = true }

// Resume makes a paused VM runnable again.
func (v *VM) Resume() { v.paused = false }

// Paused reports whether the VM is paused.
func (v *VM) Paused() bool { return v.paused }

// Consume lets the VM execute up to max work ending at time now,
// returning the amount executed. The CPU time the execution occupied is
// computed by the caller from the processor work rate and accounted via
// AddCPUTime.
func (v *VM) Consume(max sim.Work, now sim.Time) sim.Work {
	done := v.wl.Consume(max, now)
	v.work += done
	return done
}

// AddCPUTime accounts busy CPU time granted to the VM.
func (v *VM) AddCPUTime(d sim.Time) {
	if d > 0 {
		v.cpuTime += d
	}
}

// CPUTime returns the total busy CPU time granted so far.
func (v *VM) CPUTime() sim.Time { return v.cpuTime }

// WorkDone returns the total work executed so far.
func (v *VM) WorkDone() sim.Work { return v.work }

// String renders the VM as "V20(id=1, credit=20%)".
func (v *VM) String() string {
	return fmt.Sprintf("%s(id=%d, credit=%g%%)", v.cfg.Name, v.id, v.cfg.Credit)
}
