package vm

import (
	"strings"
	"testing"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{Name: "V20", Credit: 20}, false},
		{"zero credit is null-credit", Config{Credit: 0}, false},
		{"full credit", Config{Credit: 100}, false},
		{"negative credit", Config{Credit: -1}, true},
		{"credit above 100", Config{Credit: 101}, true},
		{"negative weight", Config{Credit: 20, Weight: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEffectiveWeight(t *testing.T) {
	tests := []struct {
		cfg  Config
		want int
	}{
		{Config{Weight: 5, Credit: 20}, 5},
		{Config{Credit: 20}, 20},
		{Config{}, 1},
	}
	for _, tt := range tests {
		if got := tt.cfg.EffectiveWeight(); got != tt.want {
			t.Errorf("EffectiveWeight(%+v) = %d, want %d", tt.cfg, got, tt.want)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	v, err := New(3, Config{Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "vm3" {
		t.Errorf("default name = %q, want vm3", v.Name())
	}
	if v.Runnable() {
		t.Error("new VM with no workload is runnable")
	}
	if _, err := New(1, Config{Credit: -5}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestWorkloadBindingAndAccounting(t *testing.T) {
	v, err := New(1, Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := workload.NewPiApp(1000)
	if err != nil {
		t.Fatal(err)
	}
	v.SetWorkload(pi)
	if !v.Runnable() {
		t.Fatal("VM with pending pi work not runnable")
	}
	got := v.Consume(400, sim.Second)
	if got != 400 {
		t.Errorf("Consume = %v, want 400", got)
	}
	v.AddCPUTime(10 * sim.Millisecond)
	v.AddCPUTime(-5) // ignored
	if v.CPUTime() != 10*sim.Millisecond {
		t.Errorf("CPUTime = %v, want 10ms", v.CPUTime())
	}
	if v.WorkDone() != 400 {
		t.Errorf("WorkDone = %v, want 400", v.WorkDone())
	}
	v.SetWorkload(nil)
	if v.Runnable() {
		t.Error("VM with nil workload is runnable")
	}
}

func TestTickForwardsToWorkload(t *testing.T) {
	v, err := New(1, Config{Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewWebApp(workload.WebAppConfig{
		Deterministic: true,
		Phases:        workload.ThreePhase(0, sim.Second, 100),
		MaxBacklog:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v.SetWorkload(w)
	v.Tick(sim.Second)
	if !v.Runnable() {
		t.Error("VM not runnable after arrivals")
	}
}

func TestStringFormat(t *testing.T) {
	v, err := New(1, Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	s := v.String()
	if !strings.Contains(s, "V20") || !strings.Contains(s, "20%") {
		t.Errorf("String() = %q, want name and credit", s)
	}
}
