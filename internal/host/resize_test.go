package host_test

import (
	"fmt"
	"testing"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// resizeHorizon crosses many refill periods and batched stretches while
// staying inside the tier-1 time budget.
const resizeHorizon = 6 * sim.Second

// weightSetter is the resize surface of weight-based schedulers.
type weightSetter interface {
	SetWeight(id vm.ID, w int64) error
}

// buildResizeHost builds one PatternBatcher scheduler under four
// always-runnable capped hogs — so every simulated instant sits inside
// a contended stretch the batched path folds into certified patterns —
// and schedules cap/weight resizes at quantum-unaligned instants inside
// those stretches. This is exactly the path a fleet autoscaler
// exercises; batched and reference sides must stay bit-exact through
// every resize.
func buildResizeHost(t *testing.T, schedName string, reference bool) *host.Host {
	t.Helper()
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	var s sched.Scheduler
	var pas *core.PAS
	switch schedName {
	case "credit":
		s = sched.NewCredit(sched.CreditConfig{})
	case "credit-wc":
		s = sched.NewCredit(sched.CreditConfig{WorkConserving: true})
	case "credit2":
		s = sched.NewCredit2()
	case "sedf":
		s = sched.NewSEDF(sched.SEDFConfig{})
	case "pas":
		pas, err = core.NewPAS(core.PASConfig{CPU: cpu})
		if err != nil {
			t.Fatal(err)
		}
		s = pas
	case "pas-credit2":
		p2, err := core.NewPASCredit2(core.PASCredit2Config{CPU: cpu})
		if err != nil {
			t.Fatal(err)
		}
		s = p2
	default:
		t.Fatalf("unknown scheduler %q", schedName)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: s, Reference: reference})
	if err != nil {
		t.Fatal(err)
	}
	if pas != nil {
		pas.BindLoadSource(h)
	}
	for i := 1; i <= 4; i++ {
		v, err := vm.New(vm.ID(i), vm.Config{
			Name:   fmt.Sprintf("V%d", i),
			Credit: float64(10 + 5*i),
			Weight: 1 + 7*i,
		})
		if err != nil {
			t.Fatal(err)
		}
		v.SetWorkload(&workload.Hog{})
		if err := h.AddVM(v); err != nil {
			t.Fatal(err)
		}
	}

	cs, _ := s.(sched.CapSetter)
	ws, _ := s.(weightSetter)
	type resize struct {
		at  sim.Time
		id  vm.ID
		pct float64 // new cap (CapSetter schedulers)
		w   int64   // new weight (weight schedulers)
	}
	// Quantum-unaligned instants, swings in both directions, including a
	// cap collapse and a later restore so tier membership flips mid-run.
	resizes := []resize{
		{at: 411*sim.Millisecond + 137, id: 1, pct: 80, w: 64},
		{at: 1229*sim.Millisecond + 411, id: 2, pct: 5, w: 1},
		{at: 2047*sim.Millisecond + 913, id: 3, pct: 42, w: 512},
		{at: 3511*sim.Millisecond + 57, id: 2, pct: 55, w: 4096},
		{at: 4801*sim.Millisecond + 733, id: 1, pct: 12, w: 9},
	}
	if schedName == "credit" || schedName == "credit-wc" {
		// Uncap V4 entirely mid-run, then re-cap it: membership moves
		// between the budgeted and uncapped round-robin tiers.
		resizes = append(resizes,
			resize{at: 1777*sim.Millisecond + 333, id: 4, pct: 0},
			resize{at: 3900*sim.Millisecond + 271, id: 4, pct: 25, w: 1},
		)
	}
	for _, r := range resizes {
		r := r
		h.Schedule(r.at, func(sim.Time) {
			var err error
			switch {
			case cs != nil:
				err = cs.SetCap(r.id, r.pct)
			case ws != nil:
				err = ws.SetWeight(r.id, r.w)
			default:
				t.Errorf("%s: no resize surface", schedName)
				return
			}
			if err != nil {
				t.Errorf("%s: resize VM %d at %v: %v", schedName, r.id, r.at, err)
			}
		})
	}
	return h
}

// TestResizeDuringBatchedPattern resizes VMs inside contended batched
// stretches for every PatternBatcher scheduler and asserts the batched
// host stays bit-exact with the reference host — the regression guard
// for the autoscaler's cap/weight actions landing mid-pattern.
func TestResizeDuringBatchedPattern(t *testing.T) {
	for _, name := range []string{"credit", "credit-wc", "credit2", "sedf", "pas", "pas-credit2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			batched := buildResizeHost(t, name, false)
			reference := buildResizeHost(t, name, true)
			if err := batched.RunUntil(resizeHorizon); err != nil {
				t.Fatal(err)
			}
			if err := reference.RunUntil(resizeHorizon); err != nil {
				t.Fatal(err)
			}
			// Four always-runnable hogs leave no idle or single-VM
			// stretches: every batched quantum went through a certified
			// contended pattern, so a zero count would make the test
			// vacuous.
			if batched.Engine().BatchedQuanta() == 0 {
				t.Fatalf("%s: pattern batching never engaged", name)
			}
			assertHostTraceEquivalence(t, batched, reference)
		})
	}
}
