package host_test

import (
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// TestHostStepNoAllocsWithoutObs proves the flight-recorder hooks cost
// the disabled hot path nothing: with Config.Obs nil, steady-state host
// stepping — both the contended multi-VM pattern path and the
// single-runnable batched path — performs zero allocations per advance.
// The sampling intervals are pushed beyond the measured window so the
// recorder's (amortized, pre-existing) series appends stay out of the
// measurement.
func TestHostStepNoAllocsWithoutObs(t *testing.T) {
	build := func(credits []float64) *host.Host {
		h, err := host.New(host.Config{
			Profile:        cpufreq.Optiplex755(),
			Scheduler:      sched.NewCredit(sched.CreditConfig{}),
			SampleInterval: 3600 * sim.Second,
			MeterInterval:  3600 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, credit := range credits {
			v, err := vm.New(vm.ID(i+1), vm.Config{Credit: credit})
			if err != nil {
				t.Fatal(err)
			}
			v.SetWorkload(&workload.Hog{})
			if err := h.AddVM(v); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	for _, tc := range []struct {
		name    string
		credits []float64
	}{
		{"single-runnable", []float64{20}},
		{"contended-pattern", []float64{20, 30, 40}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := build(tc.credits)
			// Warm up past transients (first refills, slice growth).
			if err := h.Run(5 * sim.Second); err != nil {
				t.Fatal(err)
			}
			var runErr error
			allocs := testing.AllocsPerRun(50, func() {
				if err := h.Run(100 * sim.Millisecond); err != nil {
					runErr = err
				}
			})
			if runErr != nil {
				t.Fatal(runErr)
			}
			if allocs != 0 {
				t.Errorf("disabled-obs host step allocates %.2f allocs per 100 ms advance, want 0", allocs)
			}
		})
	}
}
