package host_test

import (
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// newIntroHost builds a governor-less host on the default profile for the
// engine-introspection tests.
func newIntroHost(t *testing.T, s sched.Scheduler, vms ...*vm.VM) *host.Host {
	t.Helper()
	h, err := host.New(host.Config{Profile: cpufreq.Optiplex755(), Scheduler: s})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vms {
		if err := h.AddVM(v); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// hogVM builds a VM with an endless CPU hog.
func hogVM(t *testing.T, id vm.ID, credit float64) *vm.VM {
	t.Helper()
	v, err := vm.New(id, vm.Config{Credit: credit})
	if err != nil {
		t.Fatal(err)
	}
	v.SetWorkload(&workload.Hog{})
	return v
}

// TestEngineIntrospection verifies BatchedQuanta/SteppedQuanta and the
// BoundarySources breakdown across the three host occupancy regimes: an
// idle host batches whole action horizons, a single-runnable host batches
// with the scheduler refill shortening stretches, and a contended host
// batches through the pattern path under Credit and Credit2 alike — since
// Credit2 certifies its closed-form smallest-vruntime merge, no stock
// scheduler leaves a machine-declined-dominated path behind.
func TestEngineIntrospection(t *testing.T) {
	const horizon = 5 * sim.Second

	sum := func(m map[string]int64) int64 {
		var s int64
		for _, v := range m {
			s += v
		}
		return s
	}

	t.Run("idle", func(t *testing.T) {
		idle, err := vm.New(1, vm.Config{Credit: 20})
		if err != nil {
			t.Fatal(err)
		}
		h := newIntroHost(t, sched.NewCredit(sched.CreditConfig{}), idle)
		if err := h.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		eng := h.Engine()
		// Only the quantum containing each 30 ms credit refill runs the
		// reference path; everything else batches.
		if eng.BatchedQuanta() == 0 || eng.SteppedQuanta() >= eng.BatchedQuanta()/10 {
			t.Fatalf("idle host: batched %d stepped %d", eng.BatchedQuanta(), eng.SteppedQuanta())
		}
		src := eng.BoundarySources()
		// The scheduler refill inside the 100 ms meter horizon makes the
		// machine shorten (and, one quantum before each refill, decline)
		// — but the engine-side action boundaries must show up too.
		if src["machine-shortened"] == 0 || src["action"] == 0 {
			t.Fatalf("idle host sources: %v", src)
		}
	})

	t.Run("single-runnable", func(t *testing.T) {
		h := newIntroHost(t, sched.NewCredit(sched.CreditConfig{}), hogVM(t, 1, 20))
		if err := h.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		eng := h.Engine()
		if eng.BatchedQuanta() == 0 {
			t.Fatal("single-runnable host never batched")
		}
		src := eng.BoundarySources()
		// The 30 ms credit refill lies inside the 100 ms meter horizon,
		// so the machine shortens batches rather than declining them.
		if src["machine-shortened"] == 0 {
			t.Fatalf("want refill-shortened batches: %v", src)
		}
		if got := sum(src); got == 0 {
			t.Fatalf("no horizons attributed: %v", src)
		}
	})

	t.Run("contended-credit", func(t *testing.T) {
		h := newIntroHost(t, sched.NewCredit(sched.CreditConfig{}),
			hogVM(t, 1, 20), hogVM(t, 2, 30), hogVM(t, 3, 40))
		if err := h.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		eng := h.Engine()
		if eng.BatchedQuanta() == 0 {
			t.Fatal("contended Credit host never batched")
		}
		if eng.BatchedQuanta() <= eng.SteppedQuanta() {
			t.Fatalf("contended Credit host mostly stepped: batched %d stepped %d",
				eng.BatchedQuanta(), eng.SteppedQuanta())
		}
	})

	t.Run("contended-credit2", func(t *testing.T) {
		h := newIntroHost(t, sched.NewCredit2(),
			hogVM(t, 1, 20), hogVM(t, 2, 30))
		if err := h.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		eng := h.Engine()
		// Credit2 certifies its pick pattern in closed form, so a
		// contended host batches whole meter horizons: batching dominates
		// and the breakdown names engine-side boundaries, not the
		// machine, as the limiter.
		if eng.BatchedQuanta() == 0 {
			t.Fatal("contended Credit2 host never batched")
		}
		if eng.BatchedQuanta() <= eng.SteppedQuanta() {
			t.Fatalf("contended Credit2 host mostly stepped: batched %d stepped %d",
				eng.BatchedQuanta(), eng.SteppedQuanta())
		}
		src := eng.BoundarySources()
		if src["machine-declined"] != 0 {
			t.Fatalf("hog-only Credit2 host declined %d horizons: %v", src["machine-declined"], src)
		}
		if src["action"] == 0 {
			t.Fatalf("want action-bounded (meter) horizons under Credit2: %v", src)
		}
	})

	t.Run("contended-sedf", func(t *testing.T) {
		// Three extratime hogs under the integer-microsecond SEDF: the
		// frozen EDF order folds between deadline boundaries (slice
		// phases, then extratime rotations), so batching dominates and
		// machine-declined stays at zero — the introspection face of the
		// exact-accounting certification.
		s := sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true})
		h := newIntroHost(t, s, hogVM(t, 1, 20), hogVM(t, 2, 30), hogVM(t, 3, 40))
		if err := h.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		eng := h.Engine()
		if eng.BatchedQuanta() == 0 {
			t.Fatal("contended SEDF host never batched")
		}
		if eng.BatchedQuanta() <= eng.SteppedQuanta() {
			t.Fatalf("contended SEDF host mostly stepped: batched %d stepped %d",
				eng.BatchedQuanta(), eng.SteppedQuanta())
		}
		src := eng.BoundarySources()
		if src["machine-declined"] != 0 {
			t.Fatalf("hog-only SEDF host declined %d horizons: %v", src["machine-declined"], src)
		}
	})

	t.Run("contended-credit2-draining", func(t *testing.T) {
		// A finite pi job among the hogs: while it drains, the host's
		// pending-work quota cuts patterns short of the offer, so the
		// certified-pattern expiry surfaces as machine-shortened horizons
		// — never as a machine-declined-dominated breakdown.
		pi, err := workload.NewPiApp(2e9)
		if err != nil {
			t.Fatal(err)
		}
		vpi, err := vm.New(3, vm.Config{Credit: 40})
		if err != nil {
			t.Fatal(err)
		}
		vpi.SetWorkload(pi)
		h := newIntroHost(t, sched.NewCredit2(),
			hogVM(t, 1, 20), hogVM(t, 2, 30), vpi)
		if err := h.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		src := h.Engine().BoundarySources()
		if src["machine-shortened"] == 0 {
			t.Fatalf("want quota-shortened pattern horizons under Credit2: %v", src)
		}
		if total := sum(src); src["machine-declined"]*5 > total {
			t.Fatalf("machine-declined dominates a contended Credit2 host: %v", src)
		}
		if h.Engine().BatchedQuanta() <= h.Engine().SteppedQuanta() {
			t.Fatalf("draining Credit2 host mostly stepped: batched %d stepped %d",
				h.Engine().BatchedQuanta(), h.Engine().SteppedQuanta())
		}
	})
}
