package host_test

import (
	"math"
	"testing"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

func TestPauseResumeViaScheduledEvents(t *testing.T) {
	// Failure injection: pause a VM mid-run through the event queue (the
	// way an operator or a failure model would) and verify it loses the
	// CPU only while paused.
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	v := newVM(t, 1, vm.Config{Name: "V", Credit: 50}, &workload.Hog{})
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	h.Schedule(2*sim.Second, func(sim.Time) { v.Pause() })
	h.Schedule(4*sim.Second, func(sim.Time) { v.Resume() })
	if err := h.Run(6 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Samples are labeled by the END of their 1s window: the sample at
	// t=3 covers [2,3).
	s := h.Recorder().Series("V_global_pct")
	running, _ := s.MeanBetween(1, 3)
	paused, _ := s.MeanBetween(3, 5)
	resumed, _ := s.MeanBetween(5, 7)
	if math.Abs(running-50) > 2 {
		t.Errorf("share before pause = %.1f%%, want ~50%%", running)
	}
	if paused > 1 {
		t.Errorf("share while paused = %.1f%%, want ~0%%", paused)
	}
	if math.Abs(resumed-50) > 2 {
		t.Errorf("share after resume = %.1f%%, want ~50%%", resumed)
	}
}

func TestRemoveVMMidRun(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	v1 := newVM(t, 1, vm.Config{Name: "A", Credit: 40}, &workload.Hog{})
	v2 := newVM(t, 2, vm.Config{Name: "B", Credit: 0}, &workload.Hog{}) // uncapped slack eater
	if err := h.AddVM(v1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddVM(v2); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveVM(1); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveVM(1); err == nil {
		t.Error("double RemoveVM succeeded")
	}
	if err := h.RemoveVM(9); err == nil {
		t.Error("RemoveVM(unknown) succeeded")
	}
	before := v1.CPUTime()
	if err := h.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if v1.CPUTime() != before {
		t.Error("removed VM kept accumulating CPU time")
	}
	// The slack eater now owns the machine.
	got, _ := h.Recorder().Series("B_global_pct").MeanBetween(2.5, 4)
	if got < 98 {
		t.Errorf("survivor share = %.1f%%, want ~100%%", got)
	}
	if len(h.VMs()) != 1 {
		t.Errorf("VMs() = %d entries, want 1", len(h.VMs()))
	}
}

func TestPASAdaptsAfterVMRemoval(t *testing.T) {
	// When a thrashing VM disappears, PAS sees the absolute load drop and
	// scales the frequency down; the remaining VM keeps its compensated
	// absolute capacity.
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		t.Fatal(err)
	}
	pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: pas})
	if err != nil {
		t.Fatal(err)
	}
	pas.BindLoadSource(h)
	v20 := newVM(t, 1, vm.Config{Name: "V20", Credit: 20}, &workload.Hog{})
	v70 := newVM(t, 2, vm.Config{Name: "V70", Credit: 70}, &workload.Hog{})
	if err := h.AddVM(v20); err != nil {
		t.Fatal(err)
	}
	if err := h.AddVM(v70); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 2667 {
		t.Fatalf("frequency with both thrashing = %v, want 2667", got)
	}
	if err := h.RemoveVM(2); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 1600 {
		t.Errorf("frequency after removal = %v, want 1600", got)
	}
	abs, _ := h.Recorder().Series("V20_absolute_pct").MeanBetween(30, 40)
	if math.Abs(abs-20) > 1 {
		t.Errorf("V20 absolute after removal = %.1f%%, want 20%%", abs)
	}
}
