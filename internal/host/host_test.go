package host_test

import (
	"math"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

func newVM(t *testing.T, id vm.ID, cfg vm.Config, wl workload.Workload) *vm.VM {
	t.Helper()
	v, err := vm.New(id, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	v.SetWorkload(wl)
	return v
}

func newHost(t *testing.T, cfg host.Config) *host.Host {
	t.Helper()
	h, err := host.New(cfg)
	if err != nil {
		t.Fatalf("host.New: %v", err)
	}
	return h
}

func TestConfigValidation(t *testing.T) {
	prof := cpufreq.Optiplex755()
	s := sched.NewCredit(sched.CreditConfig{})
	tests := []struct {
		name string
		cfg  host.Config
	}{
		{"no scheduler", host.Config{Profile: prof}},
		{"no cpu or profile", host.Config{Scheduler: s}},
		{"negative quantum", host.Config{Profile: prof, Scheduler: s, Quantum: -1}},
		{"sample below quantum", host.Config{Profile: prof, Scheduler: s,
			Quantum: sim.Millisecond, SampleInterval: sim.Microsecond}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := host.New(tt.cfg); err == nil {
				t.Error("host.New accepted invalid config")
			}
		})
	}
}

func TestIdleHost(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	if err := h.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if h.Now() != 5*sim.Second {
		t.Errorf("Now = %v, want 5s", h.Now())
	}
	if h.GlobalLoad() != 0 {
		t.Errorf("GlobalLoad = %v, want 0", h.GlobalLoad())
	}
	if h.CumulativeBusy() != 0 {
		t.Errorf("CumulativeBusy = %v, want 0", h.CumulativeBusy())
	}
	// The idle host still consumes energy (static power).
	if h.Energy().Joules() <= 0 {
		t.Error("idle host consumed no energy")
	}
	if got := h.Recorder().Series("global_load_pct").Len(); got != 5 {
		t.Errorf("recorded %d samples, want 5", got)
	}
}

func TestBusyVMRespectsCapAndRecords(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	v20 := newVM(t, 1, vm.Config{Name: "V20", Credit: 20}, &workload.Hog{})
	if err := h.AddVM(v20); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// Fix-credit: a thrashing 20%-credit VM gets 20% of the CPU.
	got, _ := h.Recorder().Series("V20_global_pct").MeanBetween(2, 10)
	if math.Abs(got-20) > 1 {
		t.Errorf("V20 global load = %.2f%%, want ~20%%", got)
	}
	// At maximum frequency, absolute load equals global load.
	abs, _ := h.Recorder().Series("V20_absolute_pct").MeanBetween(2, 10)
	if math.Abs(abs-got) > 0.5 {
		t.Errorf("absolute %.2f%% != global %.2f%% at fmax", abs, got)
	}
	// VM load: the VM uses 100% of its credit.
	vl, _ := h.Recorder().Series("V20_vmload_pct").MeanBetween(2, 10)
	if math.Abs(vl-100) > 5 {
		t.Errorf("V20 vmload = %.2f%%, want ~100%%", vl)
	}
	if h.VMBusy(1) == 0 {
		t.Error("VMBusy(1) = 0")
	}
}

func TestHostGlobalLoadSignal(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	v50 := newVM(t, 1, vm.Config{Name: "V50", Credit: 50}, &workload.Hog{})
	if err := h.AddVM(v50); err != nil {
		t.Fatal(err)
	}
	if err := h.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.GlobalLoad(); math.Abs(got-0.5) > 0.02 {
		t.Errorf("GlobalLoad = %v, want ~0.5", got)
	}
}

func TestAddVMErrors(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	if err := h.AddVM(nil); err == nil {
		t.Error("AddVM(nil) succeeded")
	}
	v := newVM(t, 1, vm.Config{Credit: 20}, workload.Idle{})
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	if err := h.AddVM(v); err == nil {
		t.Error("duplicate AddVM succeeded")
	}
	if h.VM(1) != v {
		t.Error("VM(1) lookup failed")
	}
	if h.VM(9) != nil {
		t.Error("VM(9) returned a VM")
	}
	if len(h.VMs()) != 1 {
		t.Errorf("VMs() returned %d, want 1", len(h.VMs()))
	}
}

func TestScheduledEventsFire(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	v := newVM(t, 1, vm.Config{Name: "V", Credit: 50}, workload.Idle{})
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	// Swap in a hog mid-run, the host-level phase-change mechanism.
	h.Schedule(2*sim.Second, func(sim.Time) { v.SetWorkload(&workload.Hog{}) })
	if err := h.Run(4 * sim.Second); err != nil {
		t.Fatal(err)
	}
	before, _ := h.Recorder().Series("V_global_pct").MeanBetween(0, 2)
	after, _ := h.Recorder().Series("V_global_pct").MeanBetween(2.5, 4)
	if before > 1 {
		t.Errorf("load before event = %.2f%%, want ~0", before)
	}
	if math.Abs(after-50) > 2 {
		t.Errorf("load after event = %.2f%%, want ~50%%", after)
	}
}

type countingAgent struct {
	interval sim.Time
	runs     int
}

func (a *countingAgent) Interval() sim.Time { return a.interval }
func (a *countingAgent) Run(sim.Time)       { a.runs++ }

func TestAgentsRunAtInterval(t *testing.T) {
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
	})
	a := &countingAgent{interval: 500 * sim.Millisecond}
	if err := h.AddAgent(a); err != nil {
		t.Fatal(err)
	}
	if err := h.AddAgent(nil); err == nil {
		t.Error("AddAgent(nil) succeeded")
	}
	if err := h.AddAgent(&countingAgent{interval: 0}); err == nil {
		t.Error("AddAgent(zero interval) succeeded")
	}
	if err := h.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if a.runs != 6 {
		t.Errorf("agent ran %d times, want 6", a.runs)
	}
}

func TestGovernorDrivesFrequency(t *testing.T) {
	var g governor.Powersave
	h := newHost(t, host.Config{
		Profile:   cpufreq.Optiplex755(),
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
		Governor:  &g,
	})
	if err := h.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := h.CPU().Freq(); got != 1600 {
		t.Errorf("frequency under powersave = %v, want 1600", got)
	}
}

func TestFrequencyAffectsExecutionTime(t *testing.T) {
	// Equation (2) end to end: the same pi job takes 1/ratio longer at the
	// minimum frequency (Optiplex: cf = 1).
	runAt := func(f cpufreq.Freq) sim.Time {
		prof := cpufreq.Optiplex755()
		cpu, err := cpufreq.NewCPU(prof)
		if err != nil {
			t.Fatal(err)
		}
		if err := cpu.SetFreq(f, 0); err != nil {
			t.Fatal(err)
		}
		h := newHost(t, host.Config{
			CPU:       cpu,
			Scheduler: sched.NewCredit(sched.CreditConfig{}),
		})
		pi, err := workload.NewPiApp(workload.PiWorkFor(2667e6, 100, 5))
		if err != nil {
			t.Fatal(err)
		}
		v := newVM(t, 1, vm.Config{Name: "V", Credit: 100}, pi)
		if err := h.AddVM(v); err != nil {
			t.Fatal(err)
		}
		if err := h.Run(30 * sim.Second); err != nil {
			t.Fatal(err)
		}
		at, ok := pi.CompletionTime()
		if !ok {
			t.Fatal("pi app did not finish")
		}
		return at
	}
	tMax := runAt(2667)
	tMin := runAt(1600)
	wantRatio := 2667.0 / 1600.0
	gotRatio := float64(tMin) / float64(tMax)
	if math.Abs(gotRatio-wantRatio) > 0.02 {
		t.Errorf("exec time ratio = %.4f, want %.4f", gotRatio, wantRatio)
	}
}

func TestEnergyScalesWithFrequency(t *testing.T) {
	run := func(g governor.Governor) float64 {
		h := newHost(t, host.Config{
			Profile:   cpufreq.Optiplex755(),
			Scheduler: sched.NewCredit(sched.CreditConfig{}),
			Governor:  g,
		})
		v := newVM(t, 1, vm.Config{Name: "V", Credit: 20}, &workload.Hog{})
		if err := h.AddVM(v); err != nil {
			t.Fatal(err)
		}
		if err := h.Run(10 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return h.Energy().Joules()
	}
	jMax := run(&governor.Performance{})
	jMin := run(&governor.Powersave{})
	if jMin >= jMax {
		t.Errorf("powersave energy %.1fJ not below performance %.1fJ", jMin, jMax)
	}
}
