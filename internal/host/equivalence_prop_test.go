package host_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// propCases is the number of randomized scenarios the property harness
// draws. Each case builds the same seeded scenario twice (batched and
// reference) and requires identical traces, so the suite is a
// scenario-diverse extension of the hand-written equivalence table.
const propCases = 100

// propHorizon keeps each randomized case inside the tier-1 time budget
// while still crossing many refill, meter, sample and event boundaries.
const propHorizon = 8 * sim.Second

// buildPropHost deterministically derives one scenario from the seed: a
// scheduler (credit/credit2/sedf/pas, capped and uncapped mixes, priority
// tiers, work-conserving variants), 1-6 VMs with drawn credits, weights
// and workload shapes, and up to four mid-run lifecycle events (pause,
// resume, workload swap, VM add, VM remove). Both equivalence sides call
// it with the same seed, so the two hosts differ only in
// Config.Reference.
func buildPropHost(t *testing.T, seed int64, reference bool) *host.Host {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	prof := cpufreq.Optiplex755()
	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		t.Fatal(err)
	}

	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		t.Fatal(err)
	}
	var s sched.Scheduler
	var pas *core.PAS
	var gov governor.Governor
	switch r.Intn(5) {
	case 0:
		s = sched.NewCredit(sched.CreditConfig{})
	case 1:
		s = sched.NewCredit(sched.CreditConfig{WorkConserving: true})
	case 2:
		s = sched.NewCredit2()
	case 3:
		s = sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: r.Intn(2) == 0})
	case 4:
		pas, err = core.NewPAS(core.PASConfig{CPU: cpu})
		if err != nil {
			t.Fatal(err)
		}
		s = pas
	}
	// A governor only composes with non-PAS schedulers (PAS drives DVFS
	// itself); draw one for a third of those scenarios.
	if pas == nil && r.Intn(3) == 0 {
		gov, err = governor.NewPaperOndemand(governor.PaperOndemandConfig{})
		if err != nil {
			t.Fatal(err)
		}
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: s, Governor: gov, Reference: reference})
	if err != nil {
		t.Fatal(err)
	}
	if pas != nil {
		pas.BindLoadSource(h)
	}

	drawWorkload := func() workload.Workload {
		switch r.Intn(4) {
		case 0:
			return &workload.Hog{}
		case 1:
			pi, err := workload.NewPiApp(1e8 + float64(r.Intn(40))*1e8)
			if err != nil {
				t.Fatal(err)
			}
			return pi
		case 2:
			start := sim.Time(r.Intn(4)) * sim.Second
			end := start + sim.Time(1+r.Intn(6))*sim.Second
			w, err := workload.NewWebApp(workload.WebAppConfig{
				Phases: workload.ThreePhase(start, end,
					workload.ExactRate(maxTp, 3+float64(r.Intn(25)), workload.DefaultRequestCost)),
				Seed: r.Uint64(),
			})
			if err != nil {
				t.Fatal(err)
			}
			return w
		default:
			return workload.Idle{}
		}
	}
	addVM := func(id vm.ID, cfg vm.Config) *vm.VM {
		v, err := vm.New(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v.SetWorkload(drawWorkload())
		if err := h.AddVM(v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	n := 1 + r.Intn(6)
	for i := 0; i < n; i++ {
		cfg := vm.Config{Name: fmt.Sprintf("V%d", i+1)}
		if r.Intn(5) > 0 {
			cfg.Credit = 5 + float64(r.Intn(90))/float64(n)
		} // else uncapped/null-credit
		if r.Intn(4) == 0 {
			cfg.Weight = 1 + r.Intn(64)
		}
		if i == 0 && r.Intn(3) == 0 {
			cfg.Priority = 1
		}
		addVM(vm.ID(i+1), cfg)
	}

	// Mid-run lifecycle events. Targets are drawn by id up front; the
	// handlers re-resolve through the host at fire time so both sides see
	// the same (possibly already-removed) state.
	events := r.Intn(5)
	nextID := vm.ID(n + 1)
	for e := 0; e < events; e++ {
		at := sim.Time(1+r.Intn(int(propHorizon/sim.Millisecond)-2000)) * sim.Millisecond
		target := vm.ID(1 + r.Intn(n))
		switch r.Intn(4) {
		case 0: // pause, with a resume one drawn interval later
			resumeAt := at + sim.Time(100+r.Intn(3000))*sim.Millisecond
			h.Schedule(at, func(sim.Time) {
				if v := h.VM(target); v != nil {
					v.Pause()
				}
			})
			h.Schedule(resumeAt, func(sim.Time) {
				if v := h.VM(target); v != nil {
					v.Resume()
				}
			})
		case 1: // workload swap (wake-up or drain)
			wl := drawWorkload()
			h.Schedule(at, func(sim.Time) {
				if v := h.VM(target); v != nil {
					v.SetWorkload(wl)
				}
			})
		case 2: // remove a VM mid-run
			h.Schedule(at, func(sim.Time) {
				if h.VM(target) != nil {
					if err := h.RemoveVM(target); err != nil {
						t.Errorf("RemoveVM(%d): %v", target, err)
					}
				}
			})
		case 3: // add a fresh VM mid-run
			id := nextID
			nextID++
			cfg := vm.Config{Name: fmt.Sprintf("V%d", id), Credit: 5 + float64(r.Intn(30))}
			wl := drawWorkload()
			h.Schedule(at, func(sim.Time) {
				v, err := vm.New(id, cfg)
				if err != nil {
					t.Errorf("vm.New(%d): %v", id, err)
					return
				}
				v.SetWorkload(wl)
				if err := h.AddVM(v); err != nil {
					t.Errorf("AddVM(%d): %v", id, err)
				}
			})
		}
	}
	return h
}

// TestRandomizedBatchedEquivalence is the randomized property-based
// equivalence harness: a seeded generator draws scenario mixes across
// every scheduler, capped/uncapped credit vectors, 1-6 VMs, workload
// shapes and mid-run lifecycle events, and asserts batched==reference
// traces for each. Cases are deterministic per seed (rerun a failure with
// -run 'TestRandomizedBatchedEquivalence/seed-N').
func TestRandomizedBatchedEquivalence(t *testing.T) {
	var totalBatched atomic.Int64
	t.Cleanup(func() {
		// Individual draws may legitimately never batch (e.g. an all-idle
		// host under a non-forecasting mix), but across 100 scenarios
		// batching must have engaged or the whole suite is vacuous.
		if !t.Failed() && totalBatched.Load() == 0 {
			t.Error("batching never engaged in any randomized scenario")
		}
	})
	for i := 0; i < propCases; i++ {
		seed := int64(0xDA7A + i)
		t.Run(fmt.Sprintf("seed-%d", i), func(t *testing.T) {
			t.Parallel()
			batched := buildPropHost(t, seed, false)
			reference := buildPropHost(t, seed, true)
			if err := batched.RunUntil(propHorizon); err != nil {
				t.Fatal(err)
			}
			if err := reference.RunUntil(propHorizon); err != nil {
				t.Fatal(err)
			}
			if n := reference.Engine().BatchedQuanta(); n != 0 {
				t.Fatalf("reference host batched %d quanta", n)
			}
			totalBatched.Add(batched.Engine().BatchedQuanta())
			assertHostTraceEquivalence(t, batched, reference)
		})
	}
}
