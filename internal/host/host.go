// Package host composes the simulated virtualized machine: one processor
// with DVFS (internal/cpufreq), a VM scheduler (internal/sched or the PAS
// scheduler in internal/core), an optional DVFS governor
// (internal/governor), the VMs and their workloads, plus measurement
// (internal/metrics) and energy accounting (internal/energy).
//
// The host advances simulated time in fixed scheduling quanta (1 ms by
// default, finer than Xen's 30 ms timeslice so that load traces are
// smooth). Every quantum it fires due events, generates workload arrivals,
// lets the scheduler pick a VM, executes the VM at the processor's current
// throughput, charges the scheduler, integrates energy, and drives the
// governor and any user-level agents.
package host

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/governor"
	"pasched/internal/metrics"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// Config configures a Host.
type Config struct {
	// CPU is the processor to drive. When nil, a CPU is built from
	// Profile.
	CPU *cpufreq.CPU
	// Profile is the processor architecture; required when CPU is nil.
	Profile *cpufreq.Profile
	// Scheduler is the VM scheduler. Required.
	Scheduler sched.Scheduler
	// Governor is the DVFS governor; nil means no governor (the
	// frequency stays wherever the scheduler or callers put it, which is
	// how the in-scheduler PAS variant runs).
	Governor governor.Governor
	// Quantum is the scheduling quantum; default 1 ms.
	Quantum sim.Time
	// SampleInterval is the recorder sampling interval; default 1 s.
	SampleInterval sim.Time
	// MeterInterval is the load-meter sub-sampling interval used by the
	// GlobalLoad signal consumed by PAS; default 100 ms.
	MeterInterval sim.Time
	// MeterDepth is the number of successive meter samples averaged;
	// default 3, the paper's footnote-5 convention.
	MeterDepth int
}

// Agent is a periodic user-level component running on the host, such as
// the paper's user-level credit managers (Section 4.1). Run is invoked at
// every Interval boundary.
type Agent interface {
	// Interval is the agent's polling period.
	Interval() sim.Time
	// Run executes one iteration at simulated time now.
	Run(now sim.Time)
}

type agentEntry struct {
	agent Agent
	next  sim.Time
}

// Host is the simulated virtualized machine.
type Host struct {
	cfg       Config
	clock     sim.Clock
	events    sim.Queue
	cpu       *cpufreq.CPU
	scheduler sched.Scheduler
	gov       governor.Governor
	vms       []*vm.VM
	byID      map[vm.ID]*vm.VM

	cumBusy sim.Time
	cumWork float64
	vmBusy  map[vm.ID]sim.Time
	vmWork  map[vm.ID]float64

	meter     *metrics.DeltaMeter
	nextMeter sim.Time

	rec         *metrics.Recorder
	nextSample  sim.Time
	lastSampleT sim.Time
	prevBusy    sim.Time
	prevWork    float64
	prevVMBusy  map[vm.ID]sim.Time
	prevVMWork  map[vm.ID]float64

	energy *energy.Meter
	agents []agentEntry
	maxTp  float64 // throughput at maximum frequency, cached
}

// New builds a host from the configuration. It validates the configuration
// and initializes meters, recorder and energy accounting.
func New(cfg Config) (*Host, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("host: scheduler is required")
	}
	cpu := cfg.CPU
	if cpu == nil {
		if cfg.Profile == nil {
			return nil, fmt.Errorf("host: either CPU or Profile is required")
		}
		var err error
		cpu, err = cpufreq.NewCPU(cfg.Profile)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = sim.Millisecond
	}
	if cfg.Quantum <= 0 {
		return nil, fmt.Errorf("host: quantum must be positive, got %v", cfg.Quantum)
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = sim.Second
	}
	if cfg.MeterInterval == 0 {
		cfg.MeterInterval = 100 * sim.Millisecond
	}
	if cfg.MeterDepth == 0 {
		cfg.MeterDepth = 3
	}
	if cfg.SampleInterval < cfg.Quantum || cfg.MeterInterval < cfg.Quantum {
		return nil, fmt.Errorf("host: sampling intervals must be >= quantum")
	}
	meter, err := metrics.NewDeltaMeter(cfg.MeterInterval, cfg.MeterDepth)
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	em, err := energy.NewMeter(cpu.Profile())
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	maxTp, err := cpu.Profile().Throughput(cpu.Profile().Max())
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	return &Host{
		cfg:        cfg,
		cpu:        cpu,
		scheduler:  cfg.Scheduler,
		gov:        cfg.Governor,
		byID:       make(map[vm.ID]*vm.VM),
		vmBusy:     make(map[vm.ID]sim.Time),
		vmWork:     make(map[vm.ID]float64),
		meter:      meter,
		nextMeter:  cfg.MeterInterval,
		rec:        metrics.NewRecorder(),
		nextSample: cfg.SampleInterval,
		prevVMBusy: make(map[vm.ID]sim.Time),
		prevVMWork: make(map[vm.ID]float64),
		energy:     em,
		maxTp:      maxTp,
	}, nil
}

// AddVM registers a VM with the host and its scheduler.
func (h *Host) AddVM(v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("host: add nil VM")
	}
	if _, dup := h.byID[v.ID()]; dup {
		return fmt.Errorf("host: duplicate VM id %d", v.ID())
	}
	if err := h.scheduler.Add(v); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	h.byID[v.ID()] = v
	h.vms = append(h.vms, v)
	return nil
}

// RemoveVM unregisters a VM (shutdown or migration away) from the host and
// its scheduler. Its accounting series stop advancing but remain recorded.
func (h *Host) RemoveVM(id vm.ID) error {
	if _, ok := h.byID[id]; !ok {
		return fmt.Errorf("host: unknown VM id %d", id)
	}
	if err := h.scheduler.Remove(id); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	delete(h.byID, id)
	for i, v := range h.vms {
		if v.ID() == id {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			break
		}
	}
	return nil
}

// VM returns the VM with the given id, or nil.
func (h *Host) VM(id vm.ID) *vm.VM { return h.byID[id] }

// VMs returns the host's VMs in registration order.
func (h *Host) VMs() []*vm.VM {
	out := make([]*vm.VM, len(h.vms))
	copy(out, h.vms)
	return out
}

// CPU returns the host's processor.
func (h *Host) CPU() *cpufreq.CPU { return h.cpu }

// Scheduler returns the host's VM scheduler.
func (h *Host) Scheduler() sched.Scheduler { return h.scheduler }

// Recorder returns the host's time-series recorder.
func (h *Host) Recorder() *metrics.Recorder { return h.rec }

// Energy returns the host's energy meter.
func (h *Host) Energy() *energy.Meter { return h.energy }

// Now returns the current simulated time.
func (h *Host) Now() sim.Time { return h.clock.Now() }

// GlobalLoad returns the averaged recent processor utilization in [0,1],
// the paper's Global load signal (average of three successive utilization
// measurements). The PAS scheduler consumes this through the
// core.LoadSource interface.
func (h *Host) GlobalLoad() float64 { return h.meter.Average() }

// CumulativeBusy returns the total busy CPU time so far.
func (h *Host) CumulativeBusy() sim.Time { return h.cumBusy }

// CumulativeWork returns the total executed work so far, in work units.
func (h *Host) CumulativeWork() float64 { return h.cumWork }

// VMBusy returns the total busy CPU time granted to the VM so far.
func (h *Host) VMBusy(id vm.ID) sim.Time { return h.vmBusy[id] }

// Schedule enqueues fn to run at simulated time at (e.g. a workload swap
// or a VM pause).
func (h *Host) Schedule(at sim.Time, fn func(now sim.Time)) {
	h.events.Schedule(at, fn)
}

// AddAgent registers a periodic agent. The agent first runs one interval
// from now.
func (h *Host) AddAgent(a Agent) error {
	if a == nil {
		return fmt.Errorf("host: add nil agent")
	}
	if a.Interval() <= 0 {
		return fmt.Errorf("host: agent interval must be positive, got %v", a.Interval())
	}
	h.agents = append(h.agents, agentEntry{agent: a, next: h.clock.Now() + a.Interval()})
	return nil
}

// Run advances the simulation by d.
func (h *Host) Run(d sim.Time) error {
	return h.RunUntil(h.clock.Now() + d)
}

// RunUntil advances the simulation until simulated time t.
func (h *Host) RunUntil(t sim.Time) error {
	for h.clock.Now() < t {
		if err := h.step(); err != nil {
			return err
		}
	}
	return nil
}

// step executes one scheduling quantum.
func (h *Host) step() error {
	now := h.clock.Now()
	if _, err := h.events.RunDue(now); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	for _, v := range h.vms {
		v.Tick(now)
	}
	h.cpu.Advance(now)

	end := now + h.cfg.Quantum
	util := 0.0
	if picked := h.scheduler.Pick(now); picked != nil {
		capWork := h.cpu.Throughput() * h.cfg.Quantum.Seconds()
		done := picked.Consume(capWork, end)
		if done > 0 {
			frac := done / capWork
			if frac > 1 {
				frac = 1
			}
			busy := sim.Time(float64(h.cfg.Quantum)*frac + 0.5)
			if busy > h.cfg.Quantum {
				busy = h.cfg.Quantum
			}
			picked.AddCPUTime(busy)
			h.scheduler.Charge(picked, busy, end)
			h.cumBusy += busy
			h.vmBusy[picked.ID()] += busy
			h.cumWork += done
			h.vmWork[picked.ID()] += done
			util = frac
		}
	}
	if err := h.energy.Add(h.cfg.Quantum, h.cpu.Freq(), util); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	h.scheduler.Tick(end)

	for end >= h.nextMeter {
		h.meter.Sample(h.nextMeter, h.cumBusy)
		h.nextMeter += h.cfg.MeterInterval
	}
	if h.gov != nil {
		st := governor.Stats{
			Now:     end,
			CumBusy: h.cumBusy,
			CumWork: h.cumWork,
			Cur:     h.cpu.Freq(),
			Prof:    h.cpu.Profile(),
		}
		if f, ok := h.gov.Tick(st); ok {
			if err := h.cpu.SetFreq(f, end); err != nil {
				return fmt.Errorf("host: governor: %w", err)
			}
		}
	}
	for i := range h.agents {
		for end >= h.agents[i].next {
			h.agents[i].agent.Run(h.agents[i].next)
			h.agents[i].next += h.agents[i].agent.Interval()
		}
	}
	for end >= h.nextSample {
		h.sample(h.nextSample)
		h.nextSample += h.cfg.SampleInterval
	}
	return h.clock.Advance(h.cfg.Quantum)
}

// capReader returns the function used to read per-VM caps for the traces:
// the enforced (frequency-compensated) cap when the scheduler reports one,
// otherwise the plain cap, otherwise nil.
func (h *Host) capReader() func(vm.ID) (float64, error) {
	if ec, ok := h.scheduler.(sched.EffectiveCapper); ok {
		return ec.EffectiveCap
	}
	if cs, ok := h.scheduler.(sched.CapSetter); ok {
		return cs.Cap
	}
	return nil
}

// sample records one point of every recorded series at time now. Loads are
// recorded in percent, as in the paper's figures.
func (h *Host) sample(now sim.Time) {
	dt := float64(now - h.lastSampleT)
	if dt <= 0 {
		return
	}
	dtSec := sim.Time(dt).Seconds()
	t := now.Seconds()

	h.rec.Series("freq_mhz").Add(t, float64(h.cpu.Freq()))
	globalPct := float64(h.cumBusy-h.prevBusy) / dt * 100
	h.rec.Series("global_load_pct").Add(t, globalPct)
	absPct := (h.cumWork - h.prevWork) / (h.maxTp * dtSec) * 100
	h.rec.Series("absolute_load_pct").Add(t, absPct)

	capOf := h.capReader()
	for _, v := range h.vms {
		id := v.ID()
		name := v.Name()
		gl := float64(h.vmBusy[id]-h.prevVMBusy[id]) / dt * 100
		h.rec.Series(name+"_global_pct").Add(t, gl)
		ab := (h.vmWork[id] - h.prevVMWork[id]) / (h.maxTp * dtSec) * 100
		h.rec.Series(name+"_absolute_pct").Add(t, ab)
		if v.Credit() > 0 {
			h.rec.Series(name+"_vmload_pct").Add(t, gl/v.Credit()*100)
		}
		if capOf != nil {
			if cap, err := capOf(id); err == nil {
				h.rec.Series(name+"_cap_pct").Add(t, cap)
			}
		}
		h.prevVMBusy[id] = h.vmBusy[id]
		h.prevVMWork[id] = h.vmWork[id]
	}
	h.prevBusy = h.cumBusy
	h.prevWork = h.cumWork
	h.lastSampleT = now
}
