// Package host composes the simulated virtualized machine: one processor
// with DVFS (internal/cpufreq), a VM scheduler (internal/sched or the PAS
// scheduler in internal/core), an optional DVFS governor
// (internal/governor), the VMs and their workloads, plus measurement
// (internal/metrics) and energy accounting (internal/energy).
//
// The host advances simulated time in fixed scheduling quanta (1 ms by
// default, finer than Xen's 30 ms timeslice so that load traces are
// smooth). Every quantum it fires due events, generates workload arrivals,
// lets the scheduler pick a VM, executes the VM at the processor's current
// throughput, charges the scheduler, integrates energy, and drives the
// governor and any user-level agents.
//
// Time itself is owned by the shared simulation engine (internal/engine):
// the host registers its load meter, user-level agents and recorder
// sampler as engine actions and implements the engine's Machine interface.
// When scheduler, governor and workloads can all certify that nothing
// scheduler-relevant happens inside the offered stretch (see
// sched.BoundaryReporter, governor.DecisionHorizon, workload.Forecaster),
// the host executes the whole stretch as one batched step — idle hosts,
// single-runnable-VM runs (sched.Batcher) and contended multi-runnable
// stretches whose pick pattern the scheduler can fold into per-VM tallies
// (sched.PatternBatcher) cost O(1) per event horizon instead of
// O(quanta) — and otherwise falls back to the reference quantum-by-quantum
// semantics. Config.Reference forces the fallback everywhere, which is
// the baseline the equivalence tests compare batched runs against.
package host

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/engine"
	"pasched/internal/governor"
	"pasched/internal/metrics"
	"pasched/internal/obs"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// Config configures a Host.
type Config struct {
	// CPU is the processor to drive. When nil, a CPU is built from
	// Profile.
	CPU *cpufreq.CPU
	// Profile is the processor architecture; required when CPU is nil.
	Profile *cpufreq.Profile
	// Scheduler is the VM scheduler. Required.
	Scheduler sched.Scheduler
	// Governor is the DVFS governor; nil means no governor (the
	// frequency stays wherever the scheduler or callers put it, which is
	// how the in-scheduler PAS variant runs).
	Governor governor.Governor
	// Quantum is the scheduling quantum; default 1 ms.
	Quantum sim.Time
	// SampleInterval is the recorder sampling interval; default 1 s.
	// Negative disables recorder sampling entirely: no series are
	// collected, so a host's memory no longer grows with simulated time
	// or with the VMs that ever lived on it (fleet estates run this way
	// — the fleet reports its own interval curves and never reads the
	// per-host recorder).
	SampleInterval sim.Time
	// MeterInterval is the load-meter sub-sampling interval used by the
	// GlobalLoad signal consumed by PAS; default 100 ms.
	MeterInterval sim.Time
	// MeterDepth is the number of successive meter samples averaged;
	// default 3, the paper's footnote-5 convention.
	MeterDepth int
	// Reference disables event-horizon batching: every quantum runs
	// through the reference step path. Batched and reference runs produce
	// the same traces; the switch exists for equivalence tests and
	// debugging.
	Reference bool
	// Obs is the host's flight-recorder lane. When nil (the default)
	// nothing is recorded and the hot path pays a single nil check; when
	// set, the host emits state/decision events, maintains the per-VM
	// attribution ledgers registered through ObserveVM, and installs
	// itself as the scheduler's Tracer.
	Obs *obs.MachineObs
}

// Agent is a periodic user-level component running on the host, such as
// the paper's user-level credit managers (Section 4.1). Run is invoked at
// every Interval boundary.
type Agent interface {
	// Interval is the agent's polling period.
	Interval() sim.Time
	// Run executes one iteration at simulated time now.
	Run(now sim.Time)
}

// vmAccount is the per-VM busy/work bookkeeping, slice-backed so the hot
// quantum path avoids map operations and RemoveVM leaves no stale
// entries behind. Work is exact integer sim.Work: bulk batched charges
// and per-quantum charges land on bit-identical tallies.
type vmAccount struct {
	busy     sim.Time
	work     sim.Work
	prevBusy sim.Time
	prevWork sim.Work
}

// Host is the simulated virtualized machine.
type Host struct {
	cfg       Config
	eng       *engine.Engine
	cpu       *cpufreq.CPU
	scheduler sched.Scheduler
	gov       governor.Governor
	vms       []*vm.VM
	acct      []vmAccount // parallel to vms
	byID      map[vm.ID]int

	cumBusy sim.Time
	cumWork sim.Work

	meter *metrics.DeltaMeter

	rec         *metrics.Recorder
	lastSampleT sim.Time
	prevBusy    sim.Time
	prevWork    sim.Work

	energy *energy.Meter
	agents int
	maxTp  float64 // throughput at maximum frequency, cached

	// Batching capabilities, resolved once at construction.
	schedBR      sched.BoundaryReporter
	schedBatcher sched.Batcher
	schedPattern sched.PatternBatcher
	govDH        governor.DecisionHorizon

	quotaBuf []sched.PatternQuota // reused per batched pattern step

	// Flight recorder state; obs == nil disables every observation at a
	// single pointer check per step.
	obs      *obs.MachineObs
	leds     []*obs.VMLedger // parallel to vms, maintained only when obs != nil
	schedThr sched.Throttler
	obsFreq  cpufreq.Freq // last emitted P-state
	maxFreq  cpufreq.Freq // the profile's maximum, cached
}

// machine adapts the host to the engine's Machine interface without
// exporting the step methods on Host itself.
type machine struct{ h *Host }

func (m machine) Step(now sim.Time) error                      { return m.h.step(now) }
func (m machine) BatchStep(now sim.Time, max int) (int, error) { return m.h.batchStep(now, max) }

// New builds a host from the configuration. It validates the configuration
// and initializes the engine, meters, recorder and energy accounting.
func New(cfg Config) (*Host, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("host: scheduler is required")
	}
	cpu := cfg.CPU
	if cpu == nil {
		if cfg.Profile == nil {
			return nil, fmt.Errorf("host: either CPU or Profile is required")
		}
		var err error
		cpu, err = cpufreq.NewCPU(cfg.Profile)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = sim.Millisecond
	}
	if cfg.Quantum <= 0 {
		return nil, fmt.Errorf("host: quantum must be positive, got %v", cfg.Quantum)
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = sim.Second
	}
	if cfg.MeterInterval == 0 {
		cfg.MeterInterval = 100 * sim.Millisecond
	}
	if cfg.MeterDepth == 0 {
		cfg.MeterDepth = 3
	}
	if (cfg.SampleInterval > 0 && cfg.SampleInterval < cfg.Quantum) || cfg.MeterInterval < cfg.Quantum {
		return nil, fmt.Errorf("host: sampling intervals must be >= quantum")
	}
	meter, err := metrics.NewDeltaMeter(cfg.MeterInterval, cfg.MeterDepth)
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	em, err := energy.NewMeter(cpu.Profile())
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	maxTp, err := cpu.Profile().Throughput(cpu.Profile().Max())
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	h := &Host{
		cfg:       cfg,
		cpu:       cpu,
		scheduler: cfg.Scheduler,
		gov:       cfg.Governor,
		byID:      make(map[vm.ID]int),
		meter:     meter,
		rec:       metrics.NewRecorder(),
		energy:    em,
		maxTp:     maxTp,
	}
	h.schedBR, _ = cfg.Scheduler.(sched.BoundaryReporter)
	h.schedBatcher, _ = cfg.Scheduler.(sched.Batcher)
	h.schedPattern, _ = cfg.Scheduler.(sched.PatternBatcher)
	if cfg.Governor != nil {
		h.govDH, _ = cfg.Governor.(governor.DecisionHorizon)
	}
	h.maxFreq = cpu.Profile().Max()
	if cfg.Obs != nil {
		h.obs = cfg.Obs
		h.obsFreq = cpu.Freq()
		h.schedThr, _ = cfg.Scheduler.(sched.Throttler)
		if ts, ok := cfg.Scheduler.(sched.TraceSetter); ok {
			ts.SetTracer(h)
		}
	}
	eng, err := engine.New(cfg.Quantum, machine{h})
	if err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	h.eng = eng
	if err := eng.AddAction("meter", cfg.MeterInterval, engine.OrderMeter, func(now sim.Time) error {
		h.meter.Sample(now, h.cumBusy)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("host: %w", err)
	}
	if cfg.SampleInterval > 0 {
		if err := eng.AddAction("sample", cfg.SampleInterval, engine.OrderSampler, func(now sim.Time) error {
			h.sample(now)
			return nil
		}); err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
	}
	return h, nil
}

// AddVM registers a VM with the host and its scheduler.
func (h *Host) AddVM(v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("host: add nil VM")
	}
	if _, dup := h.byID[v.ID()]; dup {
		return fmt.Errorf("host: duplicate VM id %d", v.ID())
	}
	if err := h.scheduler.Add(v); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	h.byID[v.ID()] = len(h.vms)
	h.vms = append(h.vms, v)
	h.acct = append(h.acct, vmAccount{})
	if h.obs != nil {
		h.leds = append(h.leds, nil)
	}
	return nil
}

// RemoveVM unregisters a VM (shutdown or migration away) from the host and
// its scheduler. Its accounting entries are dropped with it — already
// recorded series stay in the recorder, but no per-VM state lingers.
func (h *Host) RemoveVM(id vm.ID) error {
	idx, ok := h.byID[id]
	if !ok {
		return fmt.Errorf("host: unknown VM id %d", id)
	}
	if err := h.scheduler.Remove(id); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	delete(h.byID, id)
	copy(h.vms[idx:], h.vms[idx+1:])
	h.vms[len(h.vms)-1] = nil // drop the trailing pointer so the VM can be collected
	h.vms = h.vms[:len(h.vms)-1]
	h.acct = append(h.acct[:idx], h.acct[idx+1:]...)
	if h.obs != nil && idx < len(h.leds) {
		copy(h.leds[idx:], h.leds[idx+1:])
		h.leds[len(h.leds)-1] = nil
		h.leds = h.leds[:len(h.leds)-1]
	}
	for vid, i := range h.byID {
		if i > idx {
			h.byID[vid] = i - 1
		}
	}
	return nil
}

// ObserveVM attaches a throttle-attribution ledger to a registered VM:
// from now until the VM is removed, every covered quantum lands in
// exactly one of the ledger's buckets. Only valid on a host built with
// Config.Obs.
func (h *Host) ObserveVM(id vm.ID, led *obs.VMLedger) error {
	if h.obs == nil {
		return fmt.Errorf("host: ObserveVM on a host without an observer")
	}
	idx, ok := h.byID[id]
	if !ok {
		return fmt.Errorf("host: unknown VM id %d", id)
	}
	h.leds[idx] = led
	return nil
}

// VM returns the VM with the given id, or nil.
func (h *Host) VM(id vm.ID) *vm.VM {
	idx, ok := h.byID[id]
	if !ok {
		return nil
	}
	return h.vms[idx]
}

// VMs returns the host's VMs in registration order.
func (h *Host) VMs() []*vm.VM {
	out := make([]*vm.VM, len(h.vms))
	copy(out, h.vms)
	return out
}

// CPU returns the host's processor.
func (h *Host) CPU() *cpufreq.CPU { return h.cpu }

// Scheduler returns the host's VM scheduler.
func (h *Host) Scheduler() sched.Scheduler { return h.scheduler }

// Recorder returns the host's time-series recorder.
func (h *Host) Recorder() *metrics.Recorder { return h.rec }

// Energy returns the host's energy meter.
func (h *Host) Energy() *energy.Meter { return h.energy }

// Engine returns the host's simulation engine (for introspection: batched
// versus stepped quanta counts).
func (h *Host) Engine() *engine.Engine { return h.eng }

// Now returns the current simulated time.
func (h *Host) Now() sim.Time { return h.eng.Now() }

// GlobalLoad returns the averaged recent processor utilization in [0,1],
// the paper's Global load signal (average of three successive utilization
// measurements). The PAS scheduler consumes this through the
// core.LoadSource interface.
func (h *Host) GlobalLoad() float64 { return h.meter.Average() }

// CumulativeBusy returns the total busy CPU time so far.
func (h *Host) CumulativeBusy() sim.Time { return h.cumBusy }

// CumulativeWork returns the total executed work so far, as exact
// integer sim.Work. Use sim.Work.Units for the float report-edge view.
func (h *Host) CumulativeWork() sim.Work { return h.cumWork }

// VMBusy returns the total busy CPU time granted to the VM so far, or 0
// after the VM was removed.
func (h *Host) VMBusy(id vm.ID) sim.Time {
	idx, ok := h.byID[id]
	if !ok {
		return 0
	}
	return h.acct[idx].busy
}

// Schedule enqueues fn to run at simulated time at (e.g. a workload swap
// or a VM pause).
func (h *Host) Schedule(at sim.Time, fn func(now sim.Time)) {
	h.eng.Schedule(at, fn)
}

// AddAgent registers a periodic agent. The agent first runs one interval
// from now.
func (h *Host) AddAgent(a Agent) error {
	if a == nil {
		return fmt.Errorf("host: add nil agent")
	}
	if a.Interval() <= 0 {
		return fmt.Errorf("host: agent interval must be positive, got %v", a.Interval())
	}
	h.agents++
	name := fmt.Sprintf("agent-%d", h.agents)
	if err := h.eng.AddAction(name, a.Interval(), engine.OrderAgents, func(now sim.Time) error {
		a.Run(now)
		return nil
	}); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	return nil
}

// Run advances the simulation by d.
func (h *Host) Run(d sim.Time) error {
	return h.eng.Run(d)
}

// RunUntil advances the simulation until simulated time t.
func (h *Host) RunUntil(t sim.Time) error {
	return h.eng.RunUntil(t)
}

// step executes one scheduling quantum with reference semantics. The
// engine has already fired due events; it advances the clock and fires
// meter/agent/sampler boundaries afterwards.
func (h *Host) step(now sim.Time) error {
	for _, v := range h.vms {
		v.Tick(now)
	}
	h.cpu.Advance(now)
	if h.obs != nil {
		h.obsFreqCheck(now)
	}

	end := now + h.cfg.Quantum
	util := 0.0
	picked := h.scheduler.Pick(now)
	var pickedBusy sim.Time
	if picked != nil {
		capWork := h.cpu.WorkRate() * sim.Work(h.cfg.Quantum)
		done := picked.Consume(capWork, end)
		if done > 0 {
			frac := float64(done) / float64(capWork)
			if frac > 1 {
				frac = 1
			}
			busy := sim.Time(float64(h.cfg.Quantum)*frac + 0.5)
			if busy > h.cfg.Quantum {
				busy = h.cfg.Quantum
			}
			picked.AddCPUTime(busy)
			h.scheduler.Charge(picked, busy, end)
			h.cumBusy += busy
			h.cumWork += done
			if idx := sched.IndexOf(h.vms, picked); idx >= 0 {
				h.acct[idx].busy += busy
				h.acct[idx].work += done
			}
			util = frac
			pickedBusy = busy
		}
	}
	if err := h.energy.Add(h.cfg.Quantum, h.cpu.Freq(), util); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	if h.obs != nil {
		h.obsStep(now, picked, pickedBusy)
	}
	h.scheduler.Tick(end)

	if h.gov != nil {
		st := governor.Stats{
			Now:     end,
			CumBusy: h.cumBusy,
			CumWork: h.cumWork,
			Cur:     h.cpu.Freq(),
			Prof:    h.cpu.Profile(),
		}
		if f, ok := h.gov.Tick(st); ok {
			if err := h.cpu.SetFreq(f, end); err != nil {
				return fmt.Errorf("host: governor: %w", err)
			}
		}
	}
	return nil
}

// quantaWithin returns floor(pending/capWork) — how many full quanta of
// work a backlog covers — clamped to 1<<30 so the conversion stays
// defined on 32-bit platforms (a Hog's sim.MaxWork backlog would
// otherwise overflow int and silently disable batching there), and so a
// later quanta-times-capacity product stays far from int64 overflow.
func quantaWithin(pending, capWork sim.Work) int {
	r := pending / capWork
	if r >= 1<<30 {
		return 1 << 30
	}
	return int(r)
}

// quantaCovering returns ceil(d/quantum), the number of quanta after
// which a boundary at distance d is handled.
func (h *Host) quantaCovering(d sim.Time) int {
	return engine.QuantaCovering(d, h.cfg.Quantum)
}

// quantaBefore returns the number of whole quanta that fit strictly
// before a boundary at distance d, so that no covered quantum end reaches
// it: the quantum containing the boundary always runs through the
// reference path.
func (h *Host) quantaBefore(d sim.Time) int {
	return h.quantaCovering(d) - 1
}

// batchStep executes up to max quanta starting at now as one batched
// step when the stretch ahead is provably uniform: no scheduler
// accounting boundary, no possible governor decision, no frequency
// transition completion, no workload arrival or phase change, and a
// processor occupancy the scheduler certifies for every covered quantum —
// idle, a single runnable VM consuming full quanta (sched.Batcher), or a
// contended multi-runnable pattern with per-VM consumed-quanta tallies
// (sched.PatternBatcher). It returns 0 whenever any of those
// certifications is unavailable, and the engine falls back to the
// reference step.
func (h *Host) batchStep(now sim.Time, max int) (int, error) {
	if h.cfg.Reference || h.schedBR == nil || (h.gov != nil && h.govDH == nil) {
		return 0, nil
	}
	// Cheapest disqualifier first: more than one runnable VM interleaves
	// picks, which needs the scheduler's pattern certification — without
	// it only the reference path models the contention.
	var single *vm.VM
	runnable := 0
	for _, v := range h.vms {
		if v.Runnable() {
			if runnable++; runnable > 1 && h.schedPattern == nil {
				return 0, nil
			}
			single = v
		}
	}
	n := max
	if b := h.schedBR.NextBoundary(now); b != sim.Never {
		if b <= now {
			return 0, nil
		}
		if k := h.quantaBefore(b - now); k < n {
			n = k
		}
	}
	if n < 2 {
		return 0, nil
	}
	// Completing a due frequency transition first (as the reference step
	// would at this quantum start) both matches reference semantics and
	// clears the way for batching the stretch behind it.
	h.cpu.Advance(now)
	if h.obs != nil {
		h.obsFreqCheck(now)
	}
	if _, at, pending := h.cpu.PendingSwitch(); pending {
		if k := h.quantaCovering(at - now); k < n {
			n = k
		}
	}
	if h.govDH != nil {
		st := governor.Stats{
			Now:     now,
			CumBusy: h.cumBusy,
			CumWork: h.cumWork,
			Cur:     h.cpu.Freq(),
			Prof:    h.cpu.Profile(),
		}
		if d := h.govDH.NextDecision(st); d != sim.Never {
			if d <= now {
				return 0, nil
			}
			if k := h.quantaBefore(d - now); k < n {
				n = k
			}
		}
	}
	if n < 2 {
		return 0, nil
	}
	for _, v := range h.vms {
		nc, ok := v.NextChange(now)
		if !ok {
			return 0, nil
		}
		if nc != sim.Never {
			if nc <= now {
				return 0, nil
			}
			if k := h.quantaCovering(nc - now); k < n {
				n = k
			}
		}
	}
	if n < 2 {
		return 0, nil
	}
	q := h.cfg.Quantum
	freq := h.cpu.Freq()
	if runnable == 0 {
		d := sim.Time(n) * q
		if h.obs != nil {
			h.obsIdleStretch(now, d)
		}
		if err := h.energy.Add(d, freq, 0); err != nil {
			return 0, fmt.Errorf("host: %w", err)
		}
		return n, nil
	}
	if runnable > 1 || h.schedBatcher == nil {
		return h.batchPattern(q, freq, n, now)
	}
	picks, idle := h.schedBatcher.BatchPick(single, q, n, now)
	// A 0/1 answer falls back to the reference step; any pick state the
	// scheduler committed is idempotent with re-picking the same sole
	// runnable VM.
	if idle {
		if picks < 2 {
			return 0, nil
		}
		d := sim.Time(picks) * q
		if h.obs != nil {
			h.obsIdleStretch(now, d)
		}
		if err := h.energy.Add(d, freq, 0); err != nil {
			return 0, fmt.Errorf("host: %w", err)
		}
		return picks, nil
	}
	if picks < n {
		n = picks
	}
	capWork := h.cpu.WorkRate() * sim.Work(q)
	if capWork <= 0 {
		return 0, nil
	}
	// Keep strictly below the pending work so every batched quantum
	// consumes a full capWork and the VM stays runnable at every covered
	// pick; the draining tail runs through the reference path.
	if avail := quantaWithin(single.Workload().Pending(), capWork) - 1; avail < n {
		n = avail
	}
	if n < 2 {
		return 0, nil
	}
	d := sim.Time(n) * q
	end := now + d
	done := single.Consume(capWork*sim.Work(n), end)
	single.AddCPUTime(d)
	h.scheduler.Charge(single, d, end)
	h.cumBusy += d
	h.cumWork += done
	if idx := sched.IndexOf(h.vms, single); idx >= 0 {
		h.acct[idx].busy += d
		h.acct[idx].work += done
	}
	if h.obs != nil {
		h.obsBatchRun(now, d, single)
	}
	if err := h.energy.Add(d, freq, 1); err != nil {
		return 0, fmt.Errorf("host: %w", err)
	}
	return n, nil
}

// batchPattern collapses a contended (or scheduler-restricted) stretch of
// up to max quanta into one composite pattern step: the scheduler
// certifies its pick interleaving — Credit's weighted round-robin
// rotation, SEDF's frozen EDF order — as per-VM consumed-quanta tallies,
// and the host applies each VM's share (workload consumption, CPU time,
// scheduler charge, per-VM accounting) in one pass, with every covered
// quantum fully busy. The per-VM quotas keep each pattern VM strictly
// inside its pending work so the runnable set cannot change from within
// the pattern; the draining tail always runs through the reference path.
func (h *Host) batchPattern(q sim.Time, freq cpufreq.Freq, max int, now sim.Time) (int, error) {
	if h.schedPattern == nil || max < 2 {
		return 0, nil
	}
	capWork := h.cpu.WorkRate() * sim.Work(q)
	if capWork <= 0 {
		return 0, nil
	}
	quotas := h.quotaBuf[:0]
	for _, v := range h.vms {
		if !v.Runnable() {
			continue
		}
		// Strictly below the pending work, so every granted pick consumes
		// a full quantum and the VM stays runnable past the pattern.
		m := quantaWithin(v.Workload().Pending(), capWork) - 1
		if m < 0 {
			m = 0
		}
		quotas = append(quotas, sched.PatternQuota{VM: v, MaxPicks: m})
	}
	picks, idle := h.schedPattern.BatchPattern(quotas, q, max, now)
	for i := range quotas {
		quotas[i] = sched.PatternQuota{} // drop VM pointers from the reused buffer
	}
	h.quotaBuf = quotas[:0]
	if idle {
		d := sim.Time(max) * q
		if h.obs != nil {
			h.obsIdleStretch(now, d)
		}
		if err := h.energy.Add(d, freq, 0); err != nil {
			return 0, fmt.Errorf("host: %w", err)
		}
		return max, nil
	}
	total := 0
	for _, p := range picks {
		total += p.Quanta
	}
	if total == 0 {
		return 0, nil
	}
	if total < 2 || total > max {
		return 0, fmt.Errorf("host: scheduler %s certified a %d-quanta pattern of %d offered",
			h.scheduler.Name(), total, max)
	}
	end := now + sim.Time(total)*q
	for _, p := range picks {
		if p.VM == nil || p.Quanta <= 0 {
			return 0, fmt.Errorf("host: scheduler %s certified an invalid pattern pick",
				h.scheduler.Name())
		}
		busy := sim.Time(p.Quanta) * q
		done := p.VM.Consume(capWork*sim.Work(p.Quanta), end)
		p.VM.AddCPUTime(busy)
		h.scheduler.Charge(p.VM, busy, end)
		h.cumBusy += busy
		h.cumWork += done
		if idx := sched.IndexOf(h.vms, p.VM); idx >= 0 {
			h.acct[idx].busy += busy
			h.acct[idx].work += done
		}
	}
	if h.obs != nil {
		h.obsPatternStretch(now, q, total, picks)
	}
	if err := h.energy.Add(sim.Time(total)*q, freq, 1); err != nil {
		return 0, fmt.Errorf("host: %w", err)
	}
	return total, nil
}

// obsFreqCheck emits a P-state event when the processor frequency
// changed since the last check (transitions materialize at Advance).
func (h *Host) obsFreqCheck(at sim.Time) {
	if f := h.cpu.Freq(); f != h.obsFreq {
		h.obsFreq = f
		h.obs.Emit(at, obs.KindPState, "", int64(f), 0)
	}
}

// obsState records a VM's attribution state, emitting a KindVMState
// event only when it changed.
func (h *Host) obsState(led *obs.VMLedger, v *vm.VM, at sim.Time, st obs.State) {
	if led.LastState != st {
		led.LastState = st
		h.obs.Emit(at, obs.KindVMState, v.Name(), int64(st), 0)
	}
}

// obsWaitClass classifies a non-picked VM's quantum: not runnable is
// idle; runnable but barred by its own exhausted allocation is capped
// (throttled); otherwise the VM lost the quantum to contention. A
// migration in flight overrides all three.
func (h *Host) obsWaitClass(led *obs.VMLedger, v *vm.VM) obs.State {
	var st obs.State
	switch {
	case !v.Runnable():
		st = obs.StateIdle
	case h.schedThr != nil && h.schedThr.Throttled(v):
		st = obs.StateCapped
	default:
		st = obs.StateContended
	}
	return led.WaitState(st)
}

// obsStep attributes one reference quantum starting at now: the picked
// VM's busy time splits into run/downclocked by the momentary
// frequency (plus an idle tail when its workload drained mid-quantum),
// and every other observed VM's whole quantum is classified by
// obsWaitClass.
func (h *Host) obsStep(now sim.Time, picked *vm.VM, busy sim.Time) {
	q := h.cfg.Quantum
	down := h.cpu.Freq() < h.maxFreq
	for i, v := range h.vms {
		led := h.leds[i]
		if led == nil {
			continue
		}
		if v == picked && busy > 0 {
			led.AddBusy(busy, down)
			st := obs.StateRun
			if down {
				st = obs.StateDownclocked
			}
			h.obsState(led, v, now, st)
			if busy < q {
				st = led.WaitState(obs.StateIdle)
				led.AddWait(q-busy, st)
				h.obsState(led, v, now+busy, st)
			}
			continue
		}
		st := h.obsWaitClass(led, v)
		led.AddWait(q, st)
		h.obsState(led, v, now, st)
	}
}

// obsIdleStretch attributes a batched stretch of d during which the
// processor provably idles: runnable VMs are all barred by their own
// exhausted allocations (capped), the rest have no work (idle).
func (h *Host) obsIdleStretch(at, d sim.Time) {
	for i, v := range h.vms {
		led := h.leds[i]
		if led == nil {
			continue
		}
		st := obs.StateIdle
		if v.Runnable() {
			st = obs.StateCapped
		}
		st = led.WaitState(st)
		led.AddWait(d, st)
		h.obsState(led, v, at, st)
	}
}

// obsBatchRun attributes a batched single-runnable-VM stretch: ran
// executes for all of d, every other observed VM is idle.
func (h *Host) obsBatchRun(at, d sim.Time, ran *vm.VM) {
	down := h.cpu.Freq() < h.maxFreq
	for i, v := range h.vms {
		led := h.leds[i]
		if led == nil {
			continue
		}
		if v == ran {
			led.AddBusy(d, down)
			st := obs.StateRun
			if down {
				st = obs.StateDownclocked
			}
			h.obsState(led, v, at, st)
			continue
		}
		st := led.WaitState(obs.StateIdle)
		led.AddWait(d, st)
		h.obsState(led, v, at, st)
	}
}

// obsPatternStretch attributes a committed pattern step of total
// quanta: each picked VM splits into its busy tally and contended
// remainder (the certification pins the runnable set and tier
// membership across the stretch, so the split is exact); non-picked
// VMs are classified once for the whole stretch. The emitted visual
// state is the VM's dominant state across the stretch — the ledger
// stays exact underneath.
func (h *Host) obsPatternStretch(at, q sim.Time, total int, picks []sched.PatternPick) {
	down := h.cpu.Freq() < h.maxFreq
	d := sim.Time(total) * q
	for i, v := range h.vms {
		led := h.leds[i]
		if led == nil {
			continue
		}
		tally := 0
		for _, p := range picks {
			if p.VM == v {
				tally = p.Quanta
				break
			}
		}
		if tally > 0 {
			busy := sim.Time(tally) * q
			led.AddBusy(busy, down)
			wait := led.WaitState(obs.StateContended)
			if busy < d {
				led.AddWait(d-busy, wait)
			}
			st := obs.StateRun
			if down {
				st = obs.StateDownclocked
			}
			if 2*busy < d {
				st = wait
			}
			h.obsState(led, v, at, st)
			continue
		}
		st := h.obsWaitClass(led, v)
		led.AddWait(d, st)
		h.obsState(led, v, at, st)
	}
	h.obs.Emit(at, obs.KindPattern, "", int64(total), int64(len(picks)))
}

// TraceRefill implements sched.Tracer: the host forwards scheduler
// accounting boundaries into its recorder lane.
func (h *Host) TraceRefill(now sim.Time) {
	if h.obs != nil {
		h.obs.Emit(now, obs.KindRefill, "", 0, 0)
	}
}

// TraceExhausted implements sched.Tracer: a VM's budget crossed zero
// under a hard cap.
func (h *Host) TraceExhausted(now sim.Time, v *vm.VM) {
	if h.obs != nil {
		h.obs.Emit(now, obs.KindExhausted, v.Name(), 0, 0)
	}
}

// TraceRecompensate implements sched.RecompensateTracer: a frequency
// change rewrote the enforced caps of vms VMs (Listing 1.2).
func (h *Host) TraceRecompensate(now sim.Time, freqMHz, vms int64) {
	if h.obs != nil {
		h.obs.Emit(now, obs.KindRecompensate, "", freqMHz, vms)
	}
}

// capReader returns the function used to read per-VM caps for the traces:
// the enforced (frequency-compensated) cap when the scheduler reports one,
// otherwise the plain cap, otherwise nil.
func (h *Host) capReader() func(vm.ID) (float64, error) {
	if ec, ok := h.scheduler.(sched.EffectiveCapper); ok {
		return ec.EffectiveCap
	}
	if cs, ok := h.scheduler.(sched.CapSetter); ok {
		return cs.Cap
	}
	return nil
}

// sample records one point of every recorded series at time now. Loads are
// recorded in percent, as in the paper's figures.
func (h *Host) sample(now sim.Time) {
	dt := float64(now - h.lastSampleT)
	if dt <= 0 {
		return
	}
	dtSec := sim.Time(dt).Seconds()
	t := now.Seconds()

	h.rec.Series("freq_mhz").Add(t, float64(h.cpu.Freq()))
	globalPct := float64(h.cumBusy-h.prevBusy) / dt * 100
	h.rec.Series("global_load_pct").Add(t, globalPct)
	absPct := (h.cumWork - h.prevWork).Units() / (h.maxTp * dtSec) * 100
	h.rec.Series("absolute_load_pct").Add(t, absPct)

	capOf := h.capReader()
	for i, v := range h.vms {
		acct := &h.acct[i]
		name := v.Name()
		gl := float64(acct.busy-acct.prevBusy) / dt * 100
		h.rec.Series(name+"_global_pct").Add(t, gl)
		ab := (acct.work - acct.prevWork).Units() / (h.maxTp * dtSec) * 100
		h.rec.Series(name+"_absolute_pct").Add(t, ab)
		if v.Credit() > 0 {
			h.rec.Series(name+"_vmload_pct").Add(t, gl/v.Credit()*100)
		}
		if capOf != nil {
			if capPct, err := capOf(v.ID()); err == nil {
				h.rec.Series(name+"_cap_pct").Add(t, capPct)
			}
		}
		acct.prevBusy = acct.busy
		acct.prevWork = acct.work
	}
	h.prevBusy = h.cumBusy
	h.prevWork = h.cumWork
	h.lastSampleT = now
}
