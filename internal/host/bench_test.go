package host_test

import (
	"strings"
	"testing"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// benchHost builds a 3-VM host for throughput benchmarks.
func benchHost(b *testing.B, s sched.Scheduler, bind func(h *host.Host)) *host.Host {
	b.Helper()
	h, err := host.New(host.Config{Profile: cpufreq.Optiplex755(), Scheduler: s})
	if err != nil {
		b.Fatal(err)
	}
	if bind != nil {
		bind(h)
	}
	for i, credit := range []float64{10, 20, 70} {
		v, err := vm.New(vm.ID(i), vm.Config{Credit: credit})
		if err != nil {
			b.Fatal(err)
		}
		v.SetWorkload(&workload.Hog{})
		if err := h.AddVM(v); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

// BenchmarkHostStep measures the engine's event-horizon batching against
// the reference quantum-by-quantum loop: one op advances one simulated
// second (1000 quanta). The batched/reference ratio per scenario is the
// engine's speedup — "batched"/"reference" on a hard-capped
// single-runnable fix-credit host, the "credit2-contended" pair on a
// three-hog Credit2 host whose smallest-vruntime merge must fold through
// the pattern-certification path, and the "sedf-contended" pair on a
// three-hog extratime SEDF host whose frozen EDF order (slice phases,
// then extratime rotations) must fold between deadline boundaries.
func BenchmarkHostStep(b *testing.B) {
	scenarios := []struct {
		name  string
		build func(b *testing.B, reference bool) *host.Host
	}{
		{"batched", func(b *testing.B, reference bool) *host.Host {
			h, err := host.New(host.Config{
				Profile:   cpufreq.Optiplex755(),
				Scheduler: sched.NewCredit(sched.CreditConfig{}),
				Reference: reference,
			})
			if err != nil {
				b.Fatal(err)
			}
			v, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
			if err != nil {
				b.Fatal(err)
			}
			v.SetWorkload(&workload.Hog{})
			if err := h.AddVM(v); err != nil {
				b.Fatal(err)
			}
			return h
		}},
		{"credit2-contended-batched", func(b *testing.B, reference bool) *host.Host {
			h, err := host.New(host.Config{
				Profile:   cpufreq.Optiplex755(),
				Scheduler: sched.NewCredit2(),
				Reference: reference,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i, credit := range []float64{20, 30, 40} {
				v, err := vm.New(vm.ID(i+1), vm.Config{Credit: credit})
				if err != nil {
					b.Fatal(err)
				}
				v.SetWorkload(&workload.Hog{})
				if err := h.AddVM(v); err != nil {
					b.Fatal(err)
				}
			}
			return h
		}},
		{"sedf-contended-batched", func(b *testing.B, reference bool) *host.Host {
			h, err := host.New(host.Config{
				Profile:   cpufreq.Optiplex755(),
				Scheduler: sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true}),
				Reference: reference,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i, credit := range []float64{20, 30, 40} {
				v, err := vm.New(vm.ID(i+1), vm.Config{Credit: credit})
				if err != nil {
					b.Fatal(err)
				}
				v.SetWorkload(&workload.Hog{})
				if err := h.AddVM(v); err != nil {
					b.Fatal(err)
				}
			}
			return h
		}},
	}
	for _, sc := range scenarios {
		for _, mode := range []struct {
			name      string
			reference bool
		}{{"", false}, {"reference", true}} {
			name := sc.name
			if mode.reference {
				// Keep the historical "batched"/"reference" pair names for
				// the single-runnable scenario; the contended scenarios use
				// a -batched/-reference suffix pair.
				if name == "batched" {
					name = "reference"
				} else {
					name = strings.TrimSuffix(name, "-batched") + "-reference"
				}
			}
			b.Run(name, func(b *testing.B) {
				h := sc.build(b, mode.reference)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := h.Run(sim.Second); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(h.Engine().BatchedQuanta())/float64(b.N), "batched_quanta/op")
			})
		}
	}
}

// BenchmarkHostStepCredit measures simulation throughput (quanta/op) with
// the Credit scheduler: one op advances one simulated second (1000 quanta).
func BenchmarkHostStepCredit(b *testing.B) {
	h := benchHost(b, sched.NewCredit(sched.CreditConfig{}), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Run(sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostStepPAS measures simulation throughput with the full PAS
// loop (per-tick frequency and credit recomputation) enabled.
func BenchmarkHostStepPAS(b *testing.B) {
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		b.Fatal(err)
	}
	pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
	if err != nil {
		b.Fatal(err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: pas})
	if err != nil {
		b.Fatal(err)
	}
	pas.BindLoadSource(h)
	for i, credit := range []float64{10, 20, 70} {
		v, err := vm.New(vm.ID(i), vm.Config{Credit: credit})
		if err != nil {
			b.Fatal(err)
		}
		v.SetWorkload(&workload.Hog{})
		if err := h.AddVM(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Run(sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}
