package host_test

import (
	"testing"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// benchHost builds a 3-VM host for throughput benchmarks.
func benchHost(b *testing.B, s sched.Scheduler, bind func(h *host.Host)) *host.Host {
	b.Helper()
	h, err := host.New(host.Config{Profile: cpufreq.Optiplex755(), Scheduler: s})
	if err != nil {
		b.Fatal(err)
	}
	if bind != nil {
		bind(h)
	}
	for i, credit := range []float64{10, 20, 70} {
		v, err := vm.New(vm.ID(i), vm.Config{Credit: credit})
		if err != nil {
			b.Fatal(err)
		}
		v.SetWorkload(&workload.Hog{})
		if err := h.AddVM(v); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

// BenchmarkHostStep measures the engine's event-horizon batching against
// the reference quantum-by-quantum loop on the same fix-credit host: one
// op advances one simulated second (1000 quanta). The batched/reference
// ratio is the engine's speedup on hard-capped single-runnable stretches.
func BenchmarkHostStep(b *testing.B) {
	for _, mode := range []struct {
		name      string
		reference bool
	}{{"batched", false}, {"reference", true}} {
		b.Run(mode.name, func(b *testing.B) {
			h, err := host.New(host.Config{
				Profile:   cpufreq.Optiplex755(),
				Scheduler: sched.NewCredit(sched.CreditConfig{}),
				Reference: mode.reference,
			})
			if err != nil {
				b.Fatal(err)
			}
			v, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
			if err != nil {
				b.Fatal(err)
			}
			v.SetWorkload(&workload.Hog{})
			if err := h.AddVM(v); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Run(sim.Second); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.Engine().BatchedQuanta())/float64(b.N), "batched_quanta/op")
		})
	}
}

// BenchmarkHostStepCredit measures simulation throughput (quanta/op) with
// the Credit scheduler: one op advances one simulated second (1000 quanta).
func BenchmarkHostStepCredit(b *testing.B) {
	h := benchHost(b, sched.NewCredit(sched.CreditConfig{}), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Run(sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostStepPAS measures simulation throughput with the full PAS
// loop (per-tick frequency and credit recomputation) enabled.
func BenchmarkHostStepPAS(b *testing.B) {
	cpu, err := cpufreq.NewCPU(cpufreq.Optiplex755())
	if err != nil {
		b.Fatal(err)
	}
	pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
	if err != nil {
		b.Fatal(err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: pas})
	if err != nil {
		b.Fatal(err)
	}
	pas.BindLoadSource(h)
	for i, credit := range []float64{10, 20, 70} {
		v, err := vm.New(vm.ID(i), vm.Config{Credit: credit})
		if err != nil {
			b.Fatal(err)
		}
		v.SetWorkload(&workload.Hog{})
		if err := h.AddVM(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Run(sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}
