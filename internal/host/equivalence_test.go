package host_test

import (
	"testing"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// scenario builds one host twice — batched and reference — so the
// equivalence tests can compare their traces.
type scenario struct {
	name string
	// build constructs the host; reference toggles Config.Reference.
	build func(t *testing.T, reference bool) *host.Host
}

// webApp builds a deterministic web workload offering pct% of capacity
// during [start, end).
func webApp(t *testing.T, prof *cpufreq.Profile, pct float64, start, end sim.Time) *workload.WebApp {
	t.Helper()
	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewWebApp(workload.WebAppConfig{
		Deterministic: true,
		Phases:        workload.ThreePhase(start, end, workload.ExactRate(maxTp, pct, workload.DefaultRequestCost)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func addVM(t *testing.T, h *host.Host, id vm.ID, name string, credit float64, wl workload.Workload) *vm.VM {
	t.Helper()
	v, err := vm.New(id, vm.Config{Name: name, Credit: credit})
	if err != nil {
		t.Fatal(err)
	}
	v.SetWorkload(wl)
	if err := h.AddVM(v); err != nil {
		t.Fatal(err)
	}
	return v
}

func equivalenceScenarios() []scenario {
	prof := cpufreq.Optiplex755()
	return []scenario{
		{
			// Fix-credit host: a hard-capped pi job (busy batches), a
			// three-phase web VM (idle and arrival-bounded stretches)
			// and long fully idle gaps.
			name: "credit",
			build: func(t *testing.T, reference bool) *host.Host {
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewCredit(sched.CreditConfig{}),
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				pi, err := workload.NewPiApp(1e9)
				if err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "V20", 20, pi)
				addVM(t, h, 2, "V40", 40, webApp(t, prof, 30, 10*sim.Second, 25*sim.Second))
				return h
			},
		},
		{
			// In-scheduler PAS: frequency and credits recompute every
			// 10 ms; batched stretches must stop at each recomputation.
			name: "pas",
			build: func(t *testing.T, reference bool) *host.Host {
				cpu, err := cpufreq.NewCPU(prof)
				if err != nil {
					t.Fatal(err)
				}
				pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
				if err != nil {
					t.Fatal(err)
				}
				h, err := host.New(host.Config{CPU: cpu, Scheduler: pas, Reference: reference})
				if err != nil {
					t.Fatal(err)
				}
				pas.BindLoadSource(h)
				addVM(t, h, 1, "V20", 20, webApp(t, prof, 20, 5*sim.Second, 20*sim.Second))
				addVM(t, h, 2, "V40", 40, &workload.Hog{})
				return h
			},
		},
		{
			// Variable-credit SEDF with extratime plus the paper's
			// governor: slice, extratime and governor-decision
			// boundaries all bound the batches.
			name: "sedf+paper-governor",
			build: func(t *testing.T, reference bool) *host.Host {
				gov, err := governor.NewPaperOndemand(governor.PaperOndemandConfig{})
				if err != nil {
					t.Fatal(err)
				}
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true}),
					Governor:  gov,
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				pi, err := workload.NewPiApp(5e9)
				if err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "V20", 20, pi)
				addVM(t, h, 2, "V40", 40, webApp(t, prof, 25, 8*sim.Second, 18*sim.Second))
				return h
			},
		},
		{
			// Contended fix-credit host: three hard-capped hogs plus a
			// web VM keep 2-4 VMs runnable at once, so batching must
			// fold Credit's weighted round-robin rotations between
			// refills (the PatternBatcher path) instead of bailing out.
			name: "credit-contended",
			build: func(t *testing.T, reference bool) *host.Host {
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewCredit(sched.CreditConfig{}),
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "V20", 20, &workload.Hog{})
				addVM(t, h, 2, "V30", 30, &workload.Hog{})
				addVM(t, h, 3, "V40", 40, &workload.Hog{})
				addVM(t, h, 4, "Vweb", 5, webApp(t, prof, 4, 10*sim.Second, 25*sim.Second))
				return h
			},
		},
		{
			// Contended host with strict priorities and a null-credit
			// VM: Dom0 monopolizes its tier, the capped tier rotates,
			// and the uncapped VM absorbs the leftover slack — three
			// different pattern modes inside one run.
			name: "credit-contended-tiers",
			build: func(t *testing.T, reference bool) *host.Host {
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewCredit(sched.CreditConfig{}),
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
				if err != nil {
					t.Fatal(err)
				}
				dom0.SetWorkload(&workload.Hog{})
				if err := h.AddVM(dom0); err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "V20", 20, &workload.Hog{})
				addVM(t, h, 2, "V30", 30, &workload.Hog{})
				addVM(t, h, 3, "V0", 0, &workload.Hog{})
				return h
			},
		},
		{
			// Contended SEDF host: both VMs stay runnable, so batching
			// must fold the frozen EDF order (sequential slice phases,
			// then extratime rotations) between deadline boundaries.
			name: "sedf-contended",
			build: func(t *testing.T, reference bool) *host.Host {
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true}),
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "V20", 20, &workload.Hog{})
				addVM(t, h, 2, "V40", 40, &workload.Hog{})
				addVM(t, h, 3, "Vweb", 30, webApp(t, prof, 20, 8*sim.Second, 20*sim.Second))
				return h
			},
		},
		{
			// Contended in-scheduler PAS: two hogs rotate under the
			// compensated caps while the 10 ms recomputation keeps every
			// pattern short — batching, frequency changes and credit
			// recomputation all interleave.
			name: "pas-contended",
			build: func(t *testing.T, reference bool) *host.Host {
				cpu, err := cpufreq.NewCPU(prof)
				if err != nil {
					t.Fatal(err)
				}
				pas, err := core.NewPAS(core.PASConfig{CPU: cpu})
				if err != nil {
					t.Fatal(err)
				}
				h, err := host.New(host.Config{CPU: cpu, Scheduler: pas, Reference: reference})
				if err != nil {
					t.Fatal(err)
				}
				pas.BindLoadSource(h)
				addVM(t, h, 1, "V20", 20, &workload.Hog{})
				addVM(t, h, 2, "V40", 40, &workload.Hog{})
				addVM(t, h, 3, "Vweb", 30, webApp(t, prof, 25, 5*sim.Second, 22*sim.Second))
				return h
			},
		},
		{
			// Contended Credit2 host: three hogs plus a web VM race on
			// the smallest-vruntime merge, so batching must fold the
			// closed-form weighted interleaving (the PatternBatcher path)
			// instead of stepping quantum by quantum.
			name: "credit2-contended",
			build: func(t *testing.T, reference bool) *host.Host {
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewCredit2(),
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "V20", 20, &workload.Hog{})
				addVM(t, h, 2, "V30", 30, &workload.Hog{})
				addVM(t, h, 3, "V40", 40, &workload.Hog{})
				addVM(t, h, 4, "Vweb", 5, webApp(t, prof, 4, 10*sim.Second, 25*sim.Second))
				return h
			},
		},
		{
			// Credit2 with churning occupancy: a finite pi job drains to
			// idle, a web VM wakes and sleeps (exercising the maxLag
			// clamp on re-entry to the merge), and a paused/resumed hog
			// flips the runnable set mid-run.
			name: "credit2-wakeups",
			build: func(t *testing.T, reference bool) *host.Host {
				h, err := host.New(host.Config{
					Profile:   prof,
					Scheduler: sched.NewCredit2(),
					Reference: reference,
				})
				if err != nil {
					t.Fatal(err)
				}
				pi, err := workload.NewPiApp(3e9)
				if err != nil {
					t.Fatal(err)
				}
				addVM(t, h, 1, "Vpi", 20, pi)
				addVM(t, h, 2, "Vweb", 40, webApp(t, prof, 30, 8*sim.Second, 22*sim.Second))
				v3 := addVM(t, h, 3, "Vhog", 30, &workload.Hog{})
				h.Schedule(5*sim.Second+700, func(sim.Time) { v3.Pause() })
				h.Schedule(16*sim.Second+100, func(sim.Time) { v3.Resume() })
				return h
			},
		},
		{
			// User-level credit manager: an agent boundary every second
			// adjusts caps, plus scheduled workload swaps mid-run.
			name: "credit+agent+events",
			build: func(t *testing.T, reference bool) *host.Host {
				cpu, err := cpufreq.NewCPU(prof)
				if err != nil {
					t.Fatal(err)
				}
				credit := sched.NewCredit(sched.CreditConfig{})
				h, err := host.New(host.Config{CPU: cpu, Scheduler: credit, Reference: reference})
				if err != nil {
					t.Fatal(err)
				}
				v1 := addVM(t, h, 1, "V20", 20, &workload.Hog{})
				addVM(t, h, 2, "V40", 40, workload.Idle{})
				mgr, err := core.NewCreditManager(cpu, credit, nil, sim.Second,
					map[vm.ID]float64{1: 20, 2: 40})
				if err != nil {
					t.Fatal(err)
				}
				if err := h.AddAgent(mgr); err != nil {
					t.Fatal(err)
				}
				h.Schedule(7*sim.Second+300, func(sim.Time) { v1.SetWorkload(workload.Idle{}) })
				h.Schedule(13*sim.Second, func(sim.Time) { v1.SetWorkload(&workload.Hog{}) })
				return h
			},
		},
	}
}

// TestBatchedEquivalence runs every scenario through the batching engine
// and the reference quantum-by-quantum loop and requires bit-identical
// traces on every series: busy time, work and energy are all exact
// integer accounting (sim.Time, sim.Work, energy.Energy), so a batched
// stretch summed in one addition lands on exactly the state thousands of
// per-quantum additions would.
func TestBatchedEquivalence(t *testing.T) {
	const horizon = 30 * sim.Second
	for _, sc := range equivalenceScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			batched := sc.build(t, false)
			reference := sc.build(t, true)
			if err := batched.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
			if err := reference.RunUntil(horizon); err != nil {
				t.Fatal(err)
			}
			if batched.Engine().BatchedQuanta() == 0 {
				t.Fatal("batching never engaged; the comparison is vacuous")
			}
			if ref := reference.Engine().BatchedQuanta(); ref != 0 {
				t.Fatalf("reference host batched %d quanta", ref)
			}
			t.Logf("batched %d / stepped %d quanta",
				batched.Engine().BatchedQuanta(), batched.Engine().SteppedQuanta())
			assertHostTraceEquivalence(t, batched, reference)
		})
	}
}

// assertHostTraceEquivalence requires the two hosts to have produced
// bit-identical traces. There are no tolerances: busy time, work and
// energy are exact integer accounting end to end, and the recorded float
// series derive from those integers through identical conversions, so
// every point must compare == exactly.
func assertHostTraceEquivalence(t *testing.T, batched, reference *host.Host) {
	t.Helper()
	if got, want := batched.CumulativeBusy(), reference.CumulativeBusy(); got != want {
		t.Errorf("CumulativeBusy: batched %v reference %v", got, want)
	}
	if got, want := batched.CumulativeWork(), reference.CumulativeWork(); got != want {
		t.Errorf("CumulativeWork: batched %v reference %v", got, want)
	}
	for _, v := range reference.VMs() {
		if got, want := batched.VMBusy(v.ID()), reference.VMBusy(v.ID()); got != want {
			t.Errorf("VMBusy(%s): batched %v reference %v", v.Name(), got, want)
		}
	}
	if got, want := batched.Energy().Total(), reference.Energy().Total(); got != want {
		t.Errorf("energy: batched %+v reference %+v", got, want)
	}
	if got, want := batched.GlobalLoad(), reference.GlobalLoad(); got != want {
		t.Errorf("GlobalLoad: batched %v reference %v", got, want)
	}
	if got, want := batched.CPU().Freq(), reference.CPU().Freq(); got != want {
		t.Errorf("frequency: batched %v reference %v", got, want)
	}

	refSeries := reference.Recorder().Names()
	gotSeries := batched.Recorder().Names()
	if len(refSeries) != len(gotSeries) {
		t.Fatalf("series sets differ: batched %v reference %v", gotSeries, refSeries)
	}
	for _, name := range refSeries {
		want := reference.Recorder().Series(name)
		got := batched.Recorder().Series(name)
		if want.Len() != got.Len() {
			t.Errorf("series %s: %d vs %d points", name, got.Len(), want.Len())
			continue
		}
		for i := range want.T {
			if got.T[i] != want.T[i] {
				t.Errorf("series %s[%d]: time %v vs %v", name, i, got.T[i], want.T[i])
				break
			}
			if got.V[i] != want.V[i] {
				t.Errorf("series %s[%d]@%v: batched %v reference %v",
					name, i, got.T[i], got.V[i], want.V[i])
				break
			}
		}
	}
}
