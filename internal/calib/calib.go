// Package calib implements the measurement procedures of Section 5.2 of
// the paper: the verification of the two proportionality assumptions the
// PAS scheduler rests on, and the measurement of the per-frequency
// calibration factors cf_i reported in Table 1.
//
// The procedures deliberately go through the full simulated host — they
// run workloads, read busy-time counters, and compute ratios exactly the
// way the paper's experiments do on real hardware — rather than reading
// the architecture profile's ground-truth efficiency directly. The
// unit tests then check that measurement recovers ground truth.
package calib

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// measureDuration is the steady-state window measured for load-based
// calibration runs.
const measureDuration = 20 * sim.Second

// CFResult is the outcome of a cf measurement on one architecture: the
// ladder of frequencies and the measured calibration factor per frequency
// (cf at the maximum frequency is 1 by definition).
type CFResult struct {
	Profile *cpufreq.Profile
	Freqs   []cpufreq.Freq
	CF      []float64
}

// CFMin returns the calibration factor at the minimum frequency — the
// value the paper reports in Table 1.
func (r *CFResult) CFMin() float64 {
	if len(r.CF) == 0 {
		return 1
	}
	return r.CF[0]
}

// MeasureCF measures cf_i for every frequency of the profile using the
// paper's procedure: run the same workload at every frequency, measure the
// load L(freq), and compute cf from equation (1):
//
//	cf_i = (L_max / L_i) * (F_max / F_i)
//
// The workload is a fixed-rate web load sized to absLoadPct percent of the
// maximum-frequency capacity (default 25 when <= 0), low enough not to
// saturate the lowest frequency on any architecture.
func MeasureCF(prof *cpufreq.Profile, absLoadPct float64) (*CFResult, error) {
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	if absLoadPct <= 0 {
		absLoadPct = 25
	}
	freqs := prof.Frequencies()
	loads := make([]float64, len(freqs))
	for i, f := range freqs {
		l, err := measureLoadAt(prof, f, absLoadPct)
		if err != nil {
			return nil, err
		}
		if l <= 0 {
			return nil, fmt.Errorf("calib: zero load measured at %v on %q", f, prof.Name)
		}
		loads[i] = l
	}
	lmax := loads[len(loads)-1]
	cf := make([]float64, len(freqs))
	for i, f := range freqs {
		cf[i] = (lmax / loads[i]) / prof.Ratio(f)
	}
	return &CFResult{Profile: prof, Freqs: freqs, CF: cf}, nil
}

// measureLoadAt runs the calibration web load with the processor pinned at
// frequency f and returns the measured global load in [0,1].
func measureLoadAt(prof *cpufreq.Profile, f cpufreq.Freq, absLoadPct float64) (float64, error) {
	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	if err := cpu.SetFreq(f, 0); err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: sched.NewCredit(sched.CreditConfig{})})
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	// A short request cost keeps the queue smooth; deterministic arrivals
	// remove sampling noise.
	const cost = 0.002 * 2667e6
	wl, err := workload.NewWebApp(workload.WebAppConfig{
		RequestCost:   cost,
		Deterministic: true,
		Phases:        workload.ThreePhase(0, 1<<62, workload.ExactRate(maxTp, absLoadPct, cost)),
		MaxBacklog:    -1,
	})
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	v, err := vm.New(1, vm.Config{Name: "calib", Credit: 0}) // uncapped
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	v.SetWorkload(wl)
	if err := h.AddVM(v); err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	// Warm up for a second, then measure a steady window.
	if err := h.Run(sim.Second); err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	busy0 := h.CumulativeBusy()
	if err := h.Run(measureDuration); err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	return float64(h.CumulativeBusy()-busy0) / float64(measureDuration), nil
}

// ExecTimeResult is one row of an execution-time calibration: the
// configuration and the measured completion time of the pi workload.
type ExecTimeResult struct {
	Freq    cpufreq.Freq
	Credit  float64
	Seconds float64
}

// MeasurePiTime runs a pi computation of the given work inside a VM capped
// at creditPct, with the processor pinned at frequency f, and returns the
// measured execution time in simulated seconds. maxDuration bounds the
// run; an unfinished computation is an error.
func MeasurePiTime(prof *cpufreq.Profile, f cpufreq.Freq, creditPct, work float64,
	maxDuration sim.Time) (float64, error) {
	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	if err := cpu.SetFreq(f, 0); err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: sched.NewCredit(sched.CreditConfig{})})
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	pi, err := workload.NewPiApp(work)
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	v, err := vm.New(1, vm.Config{Name: "pi", Credit: creditPct})
	if err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	v.SetWorkload(pi)
	if err := h.AddVM(v); err != nil {
		return 0, fmt.Errorf("calib: %w", err)
	}
	for !pi.Done() && h.Now() < maxDuration {
		if err := h.Run(sim.Second); err != nil {
			return 0, fmt.Errorf("calib: %w", err)
		}
	}
	at, ok := pi.CompletionTime()
	if !ok {
		return 0, fmt.Errorf("calib: pi workload did not finish within %v at %v/%v%%",
			maxDuration, f, creditPct)
	}
	return at.Seconds(), nil
}

// VerifyFreqProportionality validates equation (2): it measures pi
// execution times at every frequency (full credit) and returns, per
// frequency, the measured ratio T_max/T_i next to the predicted
// ratio_i*cf_i. work sizes the job; it should take a few simulated seconds
// at full speed.
func VerifyFreqProportionality(prof *cpufreq.Profile, work float64) ([]ProportionalityRow, error) {
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	tMax, err := MeasurePiTime(prof, prof.Max(), 100, work, sim.Hour)
	if err != nil {
		return nil, err
	}
	rows := make([]ProportionalityRow, 0, prof.Levels())
	for _, f := range prof.Frequencies() {
		ti, err := MeasurePiTime(prof, f, 100, work, sim.Hour)
		if err != nil {
			return nil, err
		}
		eff, err := prof.Efficiency(f)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ProportionalityRow{
			Label:     f.String(),
			Measured:  tMax / ti,
			Predicted: prof.Ratio(f) * eff,
		})
	}
	return rows, nil
}

// VerifyCreditProportionality validates equation (3): it measures pi
// execution times at the maximum frequency for each credit in credits and
// returns the measured time ratio T_init/T_j next to the predicted credit
// ratio C_j/C_init, with the first credit as the reference.
func VerifyCreditProportionality(prof *cpufreq.Profile, work float64,
	credits []float64) ([]ProportionalityRow, error) {
	if len(credits) < 2 {
		return nil, fmt.Errorf("calib: need at least two credits, got %d", len(credits))
	}
	tInit, err := MeasurePiTime(prof, prof.Max(), credits[0], work, sim.Hour)
	if err != nil {
		return nil, err
	}
	rows := make([]ProportionalityRow, 0, len(credits))
	for _, c := range credits {
		tj, err := MeasurePiTime(prof, prof.Max(), c, work, sim.Hour)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ProportionalityRow{
			Label:     fmt.Sprintf("%g%%", c),
			Measured:  tInit / tj,
			Predicted: c / credits[0],
		})
	}
	return rows, nil
}

// ProportionalityRow is one measured-vs-predicted ratio of a
// proportionality verification.
type ProportionalityRow struct {
	Label     string
	Measured  float64
	Predicted float64
}

// CompensationPoint is one x-position of Figure 1: the initial credit, the
// compensated credit at the reduced frequency (equation 4), and the two
// measured execution times that the compensation is supposed to equalize.
type CompensationPoint struct {
	InitCredit      float64
	NewCredit       float64
	TimeAtMax       float64 // seconds, initial credit at maximum frequency
	TimeCompensated float64 // seconds, compensated credit at reduced frequency
}

// CompensationCurve reproduces Figure 1: for every credit in credits it
// measures the pi execution time at the maximum frequency, computes the
// compensated credit for frequency f (equation 4 with the profile's
// ground-truth cf), and measures the execution time at f with that credit.
func CompensationCurve(prof *cpufreq.Profile, f cpufreq.Freq, work float64,
	credits []float64) ([]CompensationPoint, error) {
	eff, err := prof.Efficiency(f)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	ratio := prof.Ratio(f)
	points := make([]CompensationPoint, 0, len(credits))
	for _, c := range credits {
		tMax, err := MeasurePiTime(prof, prof.Max(), c, work, sim.Hour)
		if err != nil {
			return nil, err
		}
		nc := c / (ratio * eff)
		capped := nc
		if capped > 100 {
			capped = 100 // the scheduler cannot grant more than the machine
		}
		tComp, err := MeasurePiTime(prof, f, capped, work, sim.Hour)
		if err != nil {
			return nil, err
		}
		points = append(points, CompensationPoint{
			InitCredit:      c,
			NewCredit:       nc,
			TimeAtMax:       tMax,
			TimeCompensated: tComp,
		})
	}
	return points, nil
}
