package calib

import (
	"math"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
	"pasched/internal/workload"
)

func TestMeasureCFRecoversIdealArchitecture(t *testing.T) {
	// The Optiplex has cf = 1 everywhere; the measurement procedure must
	// recover that from pure load observations.
	res, err := MeasureCF(cpufreq.Optiplex755(), 25)
	if err != nil {
		t.Fatal(err)
	}
	for i, cf := range res.CF {
		if math.Abs(cf-1) > 0.01 {
			t.Errorf("cf[%v] = %v, want ~1", res.Freqs[i], cf)
		}
	}
	if math.Abs(res.CFMin()-1) > 0.01 {
		t.Errorf("CFMin = %v, want ~1", res.CFMin())
	}
}

func TestMeasureCFRecoversTable1GroundTruth(t *testing.T) {
	// Table 1's most deviant part: the measured cf_min on the E5-2620
	// must recover the profile's ground truth of 0.80338.
	res, err := MeasureCF(cpufreq.XeonE5_2620(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CFMin()-0.80338) > 0.01 {
		t.Errorf("measured cf_min = %v, want ~0.80338", res.CFMin())
	}
}

func TestMeasureCFValidation(t *testing.T) {
	p := cpufreq.Optiplex755()
	p.States = p.States[:1]
	if _, err := MeasureCF(p, 25); err == nil {
		t.Error("MeasureCF accepted invalid profile")
	}
}

func TestMeasureCFEmptyResultCFMin(t *testing.T) {
	r := &CFResult{}
	if r.CFMin() != 1 {
		t.Errorf("empty CFMin = %v, want 1", r.CFMin())
	}
}

func TestMeasurePiTimeMatchesAnalyticModel(t *testing.T) {
	prof := cpufreq.Optiplex755()
	// 4 "full-CPU seconds" of work at 50% credit at max frequency: 8 s.
	work := workload.PiWorkFor(2667e6, 100, 4)
	got, err := MeasurePiTime(prof, 2667, 50, work, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8) > 0.1 {
		t.Errorf("exec time = %v s, want ~8 s", got)
	}
}

func TestMeasurePiTimeTimeout(t *testing.T) {
	prof := cpufreq.Optiplex755()
	work := workload.PiWorkFor(2667e6, 100, 100)
	if _, err := MeasurePiTime(prof, 2667, 10, work, 5*sim.Second); err == nil {
		t.Error("MeasurePiTime returned despite unfinished work")
	}
}

func TestVerifyFreqProportionality(t *testing.T) {
	// Equation (2) holds on the simulated host: measured time ratios match
	// ratio*cf at every frequency, for an ideal and a non-ideal profile.
	for _, prof := range []*cpufreq.Profile{cpufreq.Optiplex755(), cpufreq.XeonE5_2620()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			work := 4 * float64(prof.Max()) * 1e6
			rows, err := VerifyFreqProportionality(prof, work)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != prof.Levels() {
				t.Fatalf("got %d rows, want %d", len(rows), prof.Levels())
			}
			for _, r := range rows {
				if math.Abs(r.Measured-r.Predicted) > 0.02 {
					t.Errorf("%s: measured %v vs predicted %v", r.Label, r.Measured, r.Predicted)
				}
			}
		})
	}
}

func TestVerifyCreditProportionality(t *testing.T) {
	prof := cpufreq.Optiplex755()
	work := workload.PiWorkFor(2667e6, 100, 2)
	rows, err := VerifyCreditProportionality(prof, work, []float64{10, 20, 40, 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.Measured-r.Predicted)/r.Predicted > 0.02 {
			t.Errorf("%s: measured %v vs predicted %v", r.Label, r.Measured, r.Predicted)
		}
	}
	if _, err := VerifyCreditProportionality(prof, work, []float64{10}); err == nil {
		t.Error("single-credit verification accepted")
	}
}

func TestCompensationCurveEqualizesTimes(t *testing.T) {
	// Figure 1's claim: with the compensated credit, execution at the
	// reduced frequency takes the same time as at the maximum frequency
	// (as long as the compensated credit fits under 100%).
	prof := cpufreq.Optiplex755()
	work := workload.PiWorkFor(2667e6, 100, 2)
	points, err := CompensationCurve(prof, 2133, work, []float64{10, 20, 40, 60, 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		wantNew := p.InitCredit / (2133.0 / 2667.0)
		if math.Abs(p.NewCredit-wantNew) > 0.01 {
			t.Errorf("credit %v: compensated = %v, want %v", p.InitCredit, p.NewCredit, wantNew)
		}
		diff := math.Abs(p.TimeCompensated-p.TimeAtMax) / p.TimeAtMax
		if diff > 0.03 {
			t.Errorf("credit %v: times %v vs %v differ by %.1f%%",
				p.InitCredit, p.TimeAtMax, p.TimeCompensated, diff*100)
		}
	}
}

func TestCompensationCurveSaturatesAbove100(t *testing.T) {
	// Beyond ~80% initial credit the compensated credit exceeds 100% and
	// the reduced frequency physically cannot keep up; the curve diverges
	// (the regime right of Figure 1's overlap).
	prof := cpufreq.Optiplex755()
	work := workload.PiWorkFor(2667e6, 100, 2)
	points, err := CompensationCurve(prof, 2133, work, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.NewCredit <= 100 {
		t.Fatalf("NewCredit = %v, want > 100", p.NewCredit)
	}
	if p.TimeCompensated <= p.TimeAtMax*1.1 {
		t.Errorf("expected divergence at saturated credit: %v vs %v",
			p.TimeCompensated, p.TimeAtMax)
	}
}

func TestCompensationCurveBadFrequency(t *testing.T) {
	prof := cpufreq.Optiplex755()
	if _, err := CompensationCurve(prof, 1234, 1e9, []float64{20}); err == nil {
		t.Error("CompensationCurve accepted unsupported frequency")
	}
}
