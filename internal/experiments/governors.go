package experiments

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/metrics"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// AblationGovernors compares the governor families of Section 2.2 on the
// Section 5.3 exact-load scenario under the Credit scheduler: performance
// and powersave as the two extremes, conservative's one-step walks, the
// stock ondemand's aggressive jumps, and the paper's smoothed governor.
// It quantifies the stability/energy/QoS triangle the paper describes in
// prose.
func AblationGovernors() (*Result, error) {
	type row struct {
		name  string
		build func() (governor.Governor, error)
	}
	rows := []row{
		{"performance", func() (governor.Governor, error) { return &governor.Performance{}, nil }},
		{"powersave", func() (governor.Governor, error) { return &governor.Powersave{}, nil }},
		{"conservative", func() (governor.Governor, error) {
			return governor.NewConservative(governor.ConservativeConfig{})
		}},
		{"ondemand (stock)", func() (governor.Governor, error) {
			return governor.NewLinuxOndemand(governor.LinuxOndemandConfig{})
		}},
		{"our governor", func() (governor.Governor, error) {
			return governor.NewPaperOndemand(governor.PaperOndemandConfig{})
		}},
	}

	res := &Result{
		ID:    "ablation-governors",
		Title: "Section 2.2 governors on the exact-load scenario (Credit scheduler)",
	}
	tb := metrics.NewTable("Governor comparison over the 700 s profile",
		"governor", "mean freq (MHz)", "freq transitions", "V20 absolute, phase 1 (%)", "energy (J)")

	outcomes := make(map[string]struct {
		trans  int
		joules float64
		absP1  float64
	}, len(rows))
	for _, r := range rows {
		g, err := r.build()
		if err != nil {
			return nil, err
		}
		sc, err := governorScenario(g)
		if err != nil {
			return nil, err
		}
		if err := sc.run(); err != nil {
			return nil, err
		}
		rec := sc.host.Recorder()
		freqMean := rec.Series("freq_mhz").Mean()
		trans := rec.Series("freq_mhz").Transitions(1)
		absP1, _ := rec.Series("V20_absolute_pct").MeanBetween(p1Lo, p1Hi)
		joules := sc.host.Energy().Joules()
		outcomes[r.name] = struct {
			trans  int
			joules float64
			absP1  float64
		}{trans, joules, absP1}
		tb.AddRow(r.name, metrics.Fmt(freqMean, 0), fmt.Sprintf("%d", trans),
			metrics.Fmt(absP1, 1), metrics.Fmt(joules, 0))
	}
	res.Tables = append(res.Tables, tb)

	perf := outcomes["performance"]
	save := outcomes["powersave"]
	stock := outcomes["ondemand (stock)"]
	ours := outcomes["our governor"]
	cons := outcomes["conservative"]
	res.Checks = append(res.Checks,
		checkNear("performance keeps the SLA (V20 absolute %)", "20", perf.absP1, 20, 1.5),
		checkTrue("powersave is the cheapest and the worst for V20",
			"lowest frequency regardless of load",
			fmt.Sprintf("%.0fJ, V20 %.1f%%", save.joules, save.absP1),
			save.joules < perf.joules && save.absP1 < 15),
		checkTrue("stock ondemand oscillates far more than ours",
			"aggressive and unstable (Section 5.4)",
			fmt.Sprintf("%d vs %d transitions", stock.trans, ours.trans),
			stock.trans > 5*ours.trans),
		checkTrue("every dynamic governor undercuts performance's energy",
			"DVFS saves energy",
			fmt.Sprintf("cons %.0f, stock %.0f, ours %.0f < perf %.0f",
				cons.joules, stock.joules, ours.joules, perf.joules),
			cons.joules < perf.joules && stock.joules < perf.joules && ours.joules < perf.joules),
		checkTrue("no util-driven governor preserves V20's SLA",
			"the incompatibility PAS fixes (Section 3.2)",
			fmt.Sprintf("cons %.1f%%, stock %.1f%%, ours %.1f%%",
				cons.absP1, stock.absP1, ours.absP1),
			cons.absP1 < 15 && stock.absP1 < 15 && ours.absP1 < 15),
	)
	return res, nil
}

// governorScenario builds the exact-load Section 5.3 scenario around an
// explicit governor instance.
func governorScenario(g governor.Governor) (*scenario, error) {
	prof := cpufreq.Optiplex755()
	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		return nil, err
	}
	h, err := host.New(host.Config{
		CPU:       cpu,
		Scheduler: sched.NewCredit(sched.CreditConfig{}),
		Governor:  g,
	})
	if err != nil {
		return nil, err
	}
	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		return nil, err
	}
	mkWeb := func(credit float64, start, end sim.Time, wseed uint64) (*workload.WebApp, error) {
		return workload.NewWebApp(workload.WebAppConfig{
			Phases: workload.ThreePhase(start, end,
				workload.ExactRate(maxTp, credit, workload.DefaultRequestCost)),
			Seed: wseed,
		})
	}
	dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
	if err != nil {
		return nil, err
	}
	dom0Web, err := workload.NewWebApp(workload.WebAppConfig{
		RequestCost:   0.002 * 2667e6,
		Deterministic: true,
		Phases:        workload.ThreePhase(0, scenarioDur, workload.ExactRate(maxTp, dom0LoadPct, 0.002*2667e6)),
	})
	if err != nil {
		return nil, err
	}
	dom0.SetWorkload(dom0Web)
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		return nil, err
	}
	w20, err := mkWeb(20, v20Start, v20End, 43)
	if err != nil {
		return nil, err
	}
	v20.SetWorkload(w20)
	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		return nil, err
	}
	w70, err := mkWeb(70, v70Start, v70End, 44)
	if err != nil {
		return nil, err
	}
	v70.SetWorkload(w70)
	for _, v := range []*vm.VM{dom0, v20, v70} {
		if err := h.AddVM(v); err != nil {
			return nil, err
		}
	}
	return &scenario{host: h, v20: v20, v70: v70, dom0: dom0}, nil
}
