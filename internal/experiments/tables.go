package experiments

import (
	"fmt"

	"pasched/internal/calib"
	"pasched/internal/cpufreq"
	"pasched/internal/host"
	"pasched/internal/metrics"
	"pasched/internal/platform"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// Table1 reproduces Table 1: the measured cf at the minimal frequency on
// the five Grid'5000-era processors. The measurement runs the paper's
// Section 5.2 procedure against each architecture profile; the check is
// that measurement recovers the paper's values (which are this simulator's
// ground truth efficiencies).
func Table1() (*Result, error) {
	paper := map[string]float64{
		"Intel Xeon X3440":    0.94867,
		"Intel Xeon L5420":    0.99903,
		"Intel Xeon E5-2620":  0.80338,
		"AMD Opteron 6164 HE": 0.99508,
		"Intel Core i7-3770":  0.86206,
	}
	tb := metrics.NewTable("Table 1: cf_min on different processors",
		"processor", "paper cf_min", "measured cf_min")
	res := &Result{ID: "table1", Title: "cf_min on different processors"}
	for _, prof := range cpufreq.Table1Profiles() {
		r, err := calib.MeasureCF(prof, 20)
		if err != nil {
			return nil, err
		}
		want := paper[prof.Name]
		got := r.CFMin()
		tb.AddRow(prof.Name, metrics.Fmt(want, 5), metrics.Fmt(got, 5))
		res.Checks = append(res.Checks, checkNear(
			"cf_min "+prof.Name, metrics.Fmt(want, 5), got, want, 0.01))
	}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"the profiles' efficiency curves are synthetic substitutes for real microarchitectural behaviour; the experiment demonstrates that the paper's measurement procedure recovers them from load observations alone")
	return res, nil
}

// table2Scenario measures the execution time of V20's job on one platform
// under one governor mode: V20 runs a pi job sized to 1559 s at 20% of the
// Elite 8300's full capacity; V70 is lazy, then fully active during
// [270 s, 770 s), then lazy again; Dom0 keeps a 1% background load.
func table2Scenario(p platform.Platform, mode platform.GovernorMode) (float64, error) {
	prof := cpufreq.Elite8300()
	parts, err := p.NewParts(prof, mode)
	if err != nil {
		return 0, err
	}
	h, err := host.New(host.Config{CPU: parts.CPU, Scheduler: parts.Scheduler, Governor: parts.Governor})
	if err != nil {
		return 0, err
	}
	if parts.PAS != nil && mode == platform.OnDemand {
		parts.PAS.BindLoadSource(h)
	}
	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		return 0, err
	}

	dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
	if err != nil {
		return 0, err
	}
	const dom0Cost = 0.002 * 2667e6
	dom0Web, err := workload.NewWebApp(workload.WebAppConfig{
		RequestCost:   dom0Cost,
		Deterministic: true,
		Phases:        workload.ThreePhase(0, 1<<55, workload.ExactRate(maxTp, dom0LoadPct, dom0Cost)),
	})
	if err != nil {
		return 0, err
	}
	dom0.SetWorkload(dom0Web)

	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		return 0, err
	}
	pi, err := workload.NewPiApp(workload.PiWorkFor(maxTp, 20, 1559) * p.Overhead)
	if err != nil {
		return 0, err
	}
	v20.SetWorkload(pi)

	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		return 0, err
	}
	for _, v := range []*vm.VM{dom0, v20, v70} {
		if err := h.AddVM(v); err != nil {
			return 0, err
		}
	}
	h.Schedule(270*sim.Second, func(sim.Time) { v70.SetWorkload(&workload.Hog{}) })
	h.Schedule(770*sim.Second, func(sim.Time) { v70.SetWorkload(workload.Idle{}) })

	const limit = 6000 * sim.Second
	for !pi.Done() && h.Now() < limit {
		if err := h.Run(sim.Second); err != nil {
			return 0, err
		}
	}
	at, ok := pi.CompletionTime()
	if !ok {
		return 0, fmt.Errorf("table2: %s/%s: job unfinished after %v", p.Name, mode, limit)
	}
	return at.Seconds(), nil
}

// Table2 reproduces Table 2: V20's execution time on seven virtualization
// platforms under the Performance and OnDemand governors, with the
// degradation row computed as the paper does: (T_od - T_perf) / T_od.
func Table2() (*Result, error) {
	plats := platform.Platforms()
	paperPerf := map[string]float64{
		"Hyper-V": 1601, "VMware": 1550, "Xen/credit": 1559, "Xen/PAS": 1559,
		"Xen/SEDF": 616, "KVM": 599, "Vbox": 625,
	}
	paperDeg := map[string]float64{
		"Hyper-V": 50, "VMware": 27, "Xen/credit": 40, "Xen/PAS": 0,
		"Xen/SEDF": 0, "KVM": 0, "Vbox": 0,
	}
	degBand := map[string][2]float64{
		"Hyper-V": {42, 58}, "VMware": {14, 32}, "Xen/credit": {28, 46},
		"Xen/PAS": {-1, 2}, "Xen/SEDF": {-1, 2}, "KVM": {-1, 2}, "Vbox": {-1, 2},
	}

	headers := append([]string{""}, func() []string {
		names := make([]string, len(plats))
		for i, p := range plats {
			names[i] = p.Name
		}
		return names
	}()...)
	tb := metrics.NewTable("Table 2: execution times on different virtualization platforms (s)", headers...)

	perfRow := []string{"Performance"}
	odRow := []string{"OnDemand"}
	degRow := []string{"Degradation(%)"}
	res := &Result{ID: "table2", Title: "Execution Times on Different Virtualization Platforms"}
	var xenPerf float64
	var varPerfMax float64
	for _, p := range plats {
		tPerf, err := table2Scenario(p, platform.Performance)
		if err != nil {
			return nil, err
		}
		tOd, err := table2Scenario(p, platform.OnDemand)
		if err != nil {
			return nil, err
		}
		deg := (tOd - tPerf) / tOd * 100
		if deg < 0.05 && deg > -0.05 {
			deg = 0
		}
		perfRow = append(perfRow, metrics.Fmt(tPerf, 0))
		odRow = append(odRow, metrics.Fmt(tOd, 0))
		degRow = append(degRow, metrics.Fmt(deg, 0))
		if p.Name == "Xen/credit" {
			xenPerf = tPerf
		}
		if p.Family == platform.VariableCredit && tPerf > varPerfMax {
			varPerfMax = tPerf
		}
		band := degBand[p.Name]
		res.Checks = append(res.Checks, checkBetween(
			fmt.Sprintf("%s degradation (%%)", p.Name),
			metrics.Fmt(paperDeg[p.Name], 0), deg, band[0], band[1]))
		if p.Family == platform.FixCredit {
			res.Checks = append(res.Checks, checkNear(
				fmt.Sprintf("%s Performance time (s)", p.Name),
				metrics.Fmt(paperPerf[p.Name], 0), tPerf, paperPerf[p.Name], 25))
		}
	}
	tb.AddRow(perfRow...)
	tb.AddRow(odRow...)
	tb.AddRow(degRow...)
	res.Tables = append(res.Tables, tb)
	res.Checks = append(res.Checks, checkTrue(
		"variable-credit platforms are much faster under laziness",
		"616-625 vs 1550-1601 (~2.5x)",
		fmt.Sprintf("%.0f vs %.0f", varPerfMax, xenPerf),
		varPerfMax < 0.45*xenPerf))
	res.Notes = append(res.Notes,
		"per-platform overhead factors and DVFS floor depths are calibrated from the paper's Performance row and documented in EXPERIMENTS.md; the reproduced quantity is the degradation structure, not the exact seconds",
		"variable-credit platforms run faster here (~450s vs the paper's ~616s) because our Dom0 background load is lighter than the paper's full Joomla stack")
	return res, nil
}
