package experiments

import (
	"fmt"

	"pasched/internal/calib"
	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/metrics"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// Verify reproduces the Section 5.2 validation of the proportionality
// assumptions: equation (2) (frequency vs execution time, including the cf
// correction on a non-ideal architecture) and equation (3) (credit vs
// execution time).
func Verify() (*Result, error) {
	res := &Result{ID: "verify", Title: "Verification of the proportionality assumptions (Section 5.2)"}

	for _, prof := range []*cpufreq.Profile{cpufreq.Optiplex755(), cpufreq.XeonE5_2620()} {
		work := 4 * float64(prof.Max()) * 1e6
		rows, err := calib.VerifyFreqProportionality(prof, work)
		if err != nil {
			return nil, err
		}
		tb := metrics.NewTable(
			fmt.Sprintf("Equation 2 on %s: T_max/T_i vs ratio*cf", prof.Name),
			"frequency", "measured T_max/T_i", "predicted ratio*cf")
		for _, r := range rows {
			tb.AddRow(r.Label, metrics.Fmt(r.Measured, 4), metrics.Fmt(r.Predicted, 4))
			res.Checks = append(res.Checks, checkNear(
				fmt.Sprintf("eq2 %s @ %s", prof.Name, r.Label),
				"proportional", r.Measured, r.Predicted, 0.02))
		}
		res.Tables = append(res.Tables, tb)
	}

	prof := cpufreq.Optiplex755()
	credits := []float64{10, 20, 30, 50, 70, 100}
	rows, err := calib.VerifyCreditProportionality(prof,
		workload.PiWorkFor(2667e6, 100, 2), credits)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Equation 3: T_init/T_j vs C_j/C_init (at 2667 MHz)",
		"credit", "measured T_init/T_j", "predicted C_j/C_init")
	for _, r := range rows {
		tb.AddRow(r.Label, metrics.Fmt(r.Measured, 4), metrics.Fmt(r.Predicted, 4))
		res.Checks = append(res.Checks, checkNear(
			"eq3 credit "+r.Label, "proportional", r.Measured, r.Predicted, 0.02*r.Predicted+0.02))
	}
	res.Tables = append(res.Tables, tb)
	return res, nil
}

// implVariant identifies one of the three implementation choices of
// Section 4.1.
type implVariant int

const (
	implInScheduler implVariant = iota + 1
	implUserCredit
	implUserDVFSCredit
)

func (v implVariant) String() string {
	switch v {
	case implInScheduler:
		return "in-scheduler (PAS)"
	case implUserCredit:
		return "user level - credit management"
	case implUserDVFSCredit:
		return "user level - credit and DVFS management"
	default:
		return "unknown"
	}
}

// ablationRun runs one implementation variant against a square-wave V70
// (15 s busy / 15 s lazy) with a constantly thrashing V20, and returns the
// accumulated SLA deficit: the integral over time of how far each active
// VM's absolute load falls below its contracted credit.
func ablationRun(variant implVariant) (deficit float64, transitions int, err error) {
	const (
		dur    = 150 * sim.Second
		period = 30 * sim.Second
		halfOn = 15 * sim.Second
	)
	prof := cpufreq.Optiplex755()
	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		return 0, 0, err
	}
	credit := sched.NewCredit(sched.CreditConfig{})

	var s sched.Scheduler = credit
	var pas *core.PAS
	var gov governor.Governor
	if variant == implInScheduler {
		pas, err = core.NewPAS(core.PASConfig{CPU: cpu, Credit: credit, CF: prof.EfficiencyTable()})
		if err != nil {
			return 0, 0, err
		}
		s = pas
	}
	if variant == implUserCredit {
		gov, err = governor.NewPaperOndemand(governor.PaperOndemandConfig{CF: prof.EfficiencyTable()})
		if err != nil {
			return 0, 0, err
		}
	}
	h, err := host.New(host.Config{CPU: cpu, Scheduler: s, Governor: gov})
	if err != nil {
		return 0, 0, err
	}
	if pas != nil {
		pas.BindLoadSource(h)
	}

	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		return 0, 0, err
	}
	v20.SetWorkload(&workload.Hog{})
	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		return 0, 0, err
	}
	for _, v := range []*vm.VM{v20, v70} {
		if err := h.AddVM(v); err != nil {
			return 0, 0, err
		}
	}
	initCredits := map[vm.ID]float64{1: 20, 2: 70}
	switch variant {
	case implUserCredit:
		mgr, err := core.NewCreditManager(cpu, credit, prof.EfficiencyTable(), sim.Second, initCredits)
		if err != nil {
			return 0, 0, err
		}
		if err := h.AddAgent(mgr); err != nil {
			return 0, 0, err
		}
	case implUserDVFSCredit:
		mgr, err := core.NewDVFSCreditManager(cpu, credit, h, prof.EfficiencyTable(), sim.Second, initCredits)
		if err != nil {
			return 0, 0, err
		}
		if err := h.AddAgent(mgr); err != nil {
			return 0, 0, err
		}
	}
	// V70's square wave: busy during the first half of every period.
	for t := sim.Time(0); t < dur; t += period {
		t := t
		h.Schedule(t, func(sim.Time) { v70.SetWorkload(&workload.Hog{}) })
		h.Schedule(t+halfOn, func(sim.Time) { v70.SetWorkload(workload.Idle{}) })
	}
	if err := h.RunUntil(dur); err != nil {
		return 0, 0, err
	}

	rec := h.Recorder()
	a20 := rec.Series("V20_absolute_pct")
	a70 := rec.Series("V70_absolute_pct")
	for i := range a20.T {
		t := a20.T[i]
		if t < 5 { // skip startup
			continue
		}
		if d := 20 - a20.V[i]; d > 0 {
			deficit += d
		}
		// V70 is entitled to 70% only while its square wave is busy; skip
		// the sample bins overlapping an on/off edge.
		inPeriod := t - float64(int(t/30))*30
		if inPeriod >= 1 && inPeriod < 14 {
			if d := 70 - a70.V[i]; d > 0 {
				deficit += d
			}
		}
	}
	return deficit, rec.Series("freq_mhz").Transitions(1), nil
}

// AblationImpl compares the three implementation choices of Section 4.1.
// The paper argues a user-level implementation "may lack reactivity"; the
// SLA deficit under a square-wave load quantifies exactly that.
func AblationImpl() (*Result, error) {
	res := &Result{ID: "ablation-impl", Title: "Implementation choices (Section 4.1): reactivity"}
	tb := metrics.NewTable("SLA deficit under a 15s/15s square-wave V70, thrashing V20 (150 s run)",
		"implementation", "SLA deficit (%*s)", "frequency transitions")
	deficits := make(map[implVariant]float64, 3)
	for _, v := range []implVariant{implInScheduler, implUserCredit, implUserDVFSCredit} {
		d, trans, err := ablationRun(v)
		if err != nil {
			return nil, err
		}
		deficits[v] = d
		tb.AddRow(v.String(), metrics.Fmt(d, 1), fmt.Sprintf("%d", trans))
	}
	res.Tables = append(res.Tables, tb)
	res.Checks = append(res.Checks,
		checkTrue("in-scheduler variant is the most reactive",
			"user level ... may lack reactivity (Section 4.1)",
			fmt.Sprintf("deficits: in-sched %.1f, user-credit %.1f, user-dvfs %.1f",
				deficits[implInScheduler], deficits[implUserCredit], deficits[implUserDVFSCredit]),
			deficits[implInScheduler] <= deficits[implUserCredit] &&
				deficits[implInScheduler] <= deficits[implUserDVFSCredit]),
	)
	res.Notes = append(res.Notes,
		"the deficit integrates, over all samples, how far each active VM's absolute load falls below its contracted credit; larger = more SLA violation time")
	return res, nil
}

// Energy quantifies the paper's energy claims on the thrashing scenario:
// the fix-credit scheduler saves energy but violates the SLA; SEDF keeps
// the SLA but pins the maximum frequency (no savings); PAS does both.
func Energy() (*Result, error) {
	type cfgRow struct {
		name string
		sk   schedKind
		gk   govKind
	}
	rows := []cfgRow{
		{"Credit + Performance", schedCredit, govPerformance},
		{"Credit + our ondemand", schedCredit, govPaperOndemand},
		{"SEDF + our ondemand", schedSEDF, govPaperOndemand},
		{"PAS", schedPAS, govNone},
	}
	res := &Result{ID: "energy", Title: "Energy and QoS per scheduler/governor pair (thrashing load)"}
	tb := metrics.NewTable("Energy over the Section 5.3 thrashing profile (700 s)",
		"configuration", "energy (J)", "avg power (W)", "savings vs Performance (%)",
		"V20 absolute load, phase 1 (%)")

	var baseline *energy.Meter
	type outcome struct {
		joules, savings, absP1 float64
	}
	outcomes := make(map[string]outcome, len(rows))
	for _, r := range rows {
		sc, err := newScenario(r.sk, r.gk, loadThrashing, 42)
		if err != nil {
			return nil, err
		}
		if err := sc.run(); err != nil {
			return nil, err
		}
		m := sc.host.Energy()
		if baseline == nil {
			baseline = m
		}
		sav := energy.Savings(baseline, m) * 100
		absP1, _ := sc.host.Recorder().Series("V20_absolute_pct").MeanBetween(p1Lo, p1Hi)
		outcomes[r.name] = outcome{joules: m.Joules(), savings: sav, absP1: absP1}
		tb.AddRow(r.name, metrics.Fmt(m.Joules(), 0), metrics.Fmt(m.AveragePower(), 1),
			metrics.Fmt(sav, 1), metrics.Fmt(absP1, 1))
	}
	res.Tables = append(res.Tables, tb)

	pas := outcomes["PAS"]
	credOd := outcomes["Credit + our ondemand"]
	sedf := outcomes["SEDF + our ondemand"]
	res.Checks = append(res.Checks,
		checkNear("PAS keeps V20 at its absolute credit (%)", "20", pas.absP1, 20, 1),
		checkBetween("PAS saves energy vs Performance (%)", "frequency lowered when possible",
			pas.savings, 3, 100),
		checkBetween("Credit+ondemand violates V20's SLA (absolute %)", "~12 (20% at 1600 MHz)",
			credOd.absP1, 10, 14),
		checkBetween("SEDF lets V20 exceed its credit (absolute %)", "~85+ under thrashing (Fig. 8)",
			sedf.absP1, 85, 100),
		checkTrue("SEDF saves less than PAS", "thrashing prevents frequency reduction (Section 3.2)",
			fmt.Sprintf("sedf %.1f%% vs pas %.1f%%", sedf.savings, pas.savings),
			sedf.savings < pas.savings),
	)
	return res, nil
}
