package experiments

import (
	"fmt"

	"pasched/internal/consolidation"
	"pasched/internal/cpufreq"
	"pasched/internal/metrics"
	"pasched/internal/multicore"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// buildAsymmetricCluster builds the two-core asymmetric-load cluster used
// by the multicore extension experiment: a thrashing 20%-credit VM pinned
// to core 0 and a thrashing 70%-credit VM pinned to core 1.
func buildAsymmetricCluster(domain multicore.DVFSDomain) (*multicore.Cluster, error) {
	c, err := multicore.New(multicore.Config{
		Profile: cpufreq.Optiplex755(),
		Cores:   2,
		Domain:  domain,
	})
	if err != nil {
		return nil, err
	}
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		return nil, err
	}
	v20.SetWorkload(&workload.Hog{})
	if err := c.AddVM(0, v20); err != nil {
		return nil, err
	}
	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		return nil, err
	}
	v70.SetWorkload(&workload.Hog{})
	if err := c.AddVM(1, v70); err != nil {
		return nil, err
	}
	return c, nil
}

// ExtMulticore is the Section 7 perspective, implemented: per-core vs
// per-socket DVFS under cluster-level PAS coordination, with asymmetric
// per-core loads. Per-core DVFS lets the lightly loaded core idle at the
// minimum frequency; per-socket DVFS must run the whole socket at the
// hungriest core's frequency. Both preserve every VM's absolute credit.
func ExtMulticore() (*Result, error) {
	const dur = 60 * sim.Second
	res := &Result{
		ID:    "ext-multicore",
		Title: "Extension (Section 7): per-core vs per-socket DVFS under PAS",
	}
	tb := metrics.NewTable("Two cores, thrashing V20 on core 0 and V70 on core 1, 60 s",
		"DVFS domain", "core0 freq", "core1 freq", "V20 absolute (%)", "V70 absolute (%)", "energy (J)")

	joules := make(map[multicore.DVFSDomain]float64, 2)
	for _, domain := range []multicore.DVFSDomain{multicore.PerCore, multicore.PerSocket} {
		c, err := buildAsymmetricCluster(domain)
		if err != nil {
			return nil, err
		}
		if err := c.Run(dur); err != nil {
			return nil, err
		}
		f0, err := c.CoreFreq(0)
		if err != nil {
			return nil, err
		}
		f1, err := c.CoreFreq(1)
		if err != nil {
			return nil, err
		}
		h0, err := c.CoreHost(0)
		if err != nil {
			return nil, err
		}
		h1, err := c.CoreHost(1)
		if err != nil {
			return nil, err
		}
		abs20, _ := h0.Recorder().Series("V20_absolute_pct").MeanBetween(10, dur.Seconds())
		abs70, _ := h1.Recorder().Series("V70_absolute_pct").MeanBetween(10, dur.Seconds())
		joules[domain] = c.TotalJoules()
		tb.AddRow(domain.String(), f0.String(), f1.String(),
			metrics.Fmt(abs20, 1), metrics.Fmt(abs70, 1), metrics.Fmt(c.TotalJoules(), 0))

		res.Checks = append(res.Checks,
			checkNear(fmt.Sprintf("%s: V20 absolute credit preserved (%%)", domain), "20", abs20, 20, 1),
			checkNear(fmt.Sprintf("%s: V70 absolute credit preserved (%%)", domain), "70", abs70, 70, 1.5),
		)
	}
	res.Checks = append(res.Checks, checkTrue(
		"per-core DVFS saves energy over per-socket",
		"finer DVFS domains dominate under asymmetric load",
		fmt.Sprintf("%.0fJ vs %.0fJ", joules[multicore.PerCore], joules[multicore.PerSocket]),
		joules[multicore.PerCore] < joules[multicore.PerSocket]))
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"this reproduces no paper figure; it implements the paper's stated future work (\"per-socket DVFS, and per-core DVFS\")")
	return res, nil
}

// ExtConsolidation is the Section 2.3 context, quantified: memory-bound
// first-fit-decreasing consolidation leaves the remaining machines
// CPU-underloaded, and PAS still saves energy on them while enforcing
// every VM's credit — consolidation and DVFS are complementary.
func ExtConsolidation() (*Result, error) {
	machine := consolidation.HostSpec{MemoryMB: 8192, Profile: cpufreq.Optiplex755()}
	vms := []consolidation.VMSpec{
		{Name: "web-frontend", CreditPct: 30, MemoryMB: 3072, Activity: 0.9},
		{Name: "web-backend", CreditPct: 30, MemoryMB: 4096, Activity: 0.6},
		{Name: "database", CreditPct: 40, MemoryMB: 6144, Activity: 0.5},
		{Name: "batch", CreditPct: 20, MemoryMB: 2048, Activity: 1.0},
		{Name: "monitoring", CreditPct: 10, MemoryMB: 1024, Activity: 0.3},
		{Name: "build-ci", CreditPct: 25, MemoryMB: 4096, Activity: 0.2},
		{Name: "mail", CreditPct: 10, MemoryMB: 2048, Activity: 0.2},
		{Name: "backup", CreditPct: 15, MemoryMB: 3072, Activity: 0.1},
	}
	placement, err := consolidation.PackFFD(vms, machine)
	if err != nil {
		return nil, err
	}
	const dur = 60 * sim.Second
	baseline, err := consolidation.Simulate(placement, vms, machine, dur, false)
	if err != nil {
		return nil, err
	}
	withPAS, err := consolidation.Simulate(placement, vms, machine, dur, true)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "ext-consolidation",
		Title: "Extension (Section 2.3): consolidation and DVFS are complementary",
	}
	tb := metrics.NewTable(
		fmt.Sprintf("%d VMs packed onto %d machines (memory-bound FFD), 60 s", len(vms), placement.Hosts),
		"machine", "mean load (%)", "mean freq with PAS (MHz)", "J @ max freq", "J with PAS")
	for i := range withPAS.PerHost {
		tb.AddRow(fmt.Sprintf("m%d", i),
			metrics.Fmt(withPAS.PerHost[i].MeanLoadPct, 1),
			metrics.Fmt(withPAS.PerHost[i].MeanFreqMHz, 0),
			metrics.Fmt(baseline.PerHost[i].Joules, 0),
			metrics.Fmt(withPAS.PerHost[i].Joules, 0))
	}
	res.Tables = append(res.Tables, tb)

	savings := (baseline.TotalJoules - withPAS.TotalJoules) / baseline.TotalJoules * 100
	res.Checks = append(res.Checks,
		checkBetween("machines used (of 8 VMs)", "memory-bound: fewer machines, but CPU headroom remains",
			float64(placement.Hosts), 2, 7),
		checkBetween("PAS energy savings on consolidated machines (%)",
			"DVFS is complementary to consolidation (Section 2.3)", savings, 10, 80),
	)
	res.Notes = append(res.Notes,
		"this reproduces no paper figure; it quantifies Section 2.3's argument that memory-bound consolidation cannot guarantee full CPU usage, so DVFS (and PAS) keep paying off")
	return res, nil
}
