package experiments

import (
	"fmt"

	"pasched/internal/energy"
	"pasched/internal/metrics"
)

// ExtPASCredit2 compares the paper's cap-based PAS against the
// Credit2-based PAS variant (ROADMAP follow-up to the Credit2
// certification): both drive DVFS from the absolute load at the 10 ms
// cadence, but enforcement differs — hard compensated caps versus
// weight-proportional work-conserving sharing. The thrashing Section 5.3
// profile separates the paper's two claims: both variants keep the
// frequency (and energy) tracking the absolute load, while only the
// cap-based PAS strictly enforces the contracted credit — the Credit2
// variant lets a thrashing VM absorb idle slack (variable-credit
// behaviour), serving more demand for more energy.
func ExtPASCredit2() (*Result, error) {
	type outcome struct {
		joules float64
		absP1  float64 // V20 absolute load while alone (phase 1)
		absP2  float64 // V20 absolute load under contention (phase 2)
		served float64 // total executed work, units
	}
	run := func(sk schedKind) (outcome, *energy.Meter, error) {
		sc, err := newScenario(sk, govNone, loadThrashing, 42)
		if err != nil {
			return outcome{}, nil, err
		}
		if err := sc.run(); err != nil {
			return outcome{}, nil, err
		}
		rec := sc.host.Recorder()
		p1, _ := rec.Series("V20_absolute_pct").MeanBetween(p1Lo, p1Hi)
		p2, _ := rec.Series("V20_absolute_pct").MeanBetween(p2Lo, p2Hi)
		return outcome{
			joules: sc.host.Energy().Joules(),
			absP1:  p1,
			absP2:  p2,
			served: sc.host.CumulativeWork().Units(),
		}, sc.host.Energy(), nil
	}

	res := &Result{
		ID:    "ext-pas-credit2",
		Title: "Extension: cap-based PAS vs Credit2-based PAS (weights at the 10 ms cadence)",
	}
	caps, capMeter, err := run(schedPAS)
	if err != nil {
		return nil, err
	}
	weights, weightMeter, err := run(schedPASCredit2)
	if err != nil {
		return nil, err
	}

	tb := metrics.NewTable("Section 5.3 thrashing profile (700 s), PAS DVFS policy under both enforcements",
		"enforcement", "energy (J)", "avg power (W)",
		"V20 absolute, alone (%)", "V20 absolute, contended (%)", "served work (units)")
	tb.AddRow("caps (PAS)", metrics.Fmt(caps.joules, 0), metrics.Fmt(capMeter.AveragePower(), 1),
		metrics.Fmt(caps.absP1, 1), metrics.Fmt(caps.absP2, 1), metrics.Fmt(caps.served, 0))
	tb.AddRow("credit2 weights (PAS-credit2)", metrics.Fmt(weights.joules, 0),
		metrics.Fmt(weightMeter.AveragePower(), 1),
		metrics.Fmt(weights.absP1, 1), metrics.Fmt(weights.absP2, 1), metrics.Fmt(weights.served, 0))
	res.Tables = append(res.Tables, tb)

	res.Checks = append(res.Checks,
		checkNear("cap-based PAS holds V20 at its credit (absolute %)", "20", caps.absP1, 20, 1.5),
		checkBetween("credit2-based PAS lets a lone thrashing V20 exceed its credit (absolute %)",
			"work-conserving: idle slack flows to the runnable VM", weights.absP1, 50, 100),
		checkTrue("weight enforcement serves at least as much demand",
			"variable-credit schedulers serve what caps would refuse (Section 3.2)",
			fmt.Sprintf("served: weights %.3g vs caps %.3g", weights.served, caps.served),
			weights.served >= caps.served),
		checkTrue("serving the extra demand costs energy",
			"thrashing load prevents frequency reduction (Section 3.2)",
			fmt.Sprintf("joules: weights %.0f vs caps %.0f", weights.joules, caps.joules),
			weights.joules >= caps.joules),
	)
	res.Notes = append(res.Notes,
		"both runs share the DVFS policy (Listing 1.1 at the 10 ms cadence); only the enforcement mechanism differs",
		"the same comparison runs at fleet scale via pasfleet -sched pas-credit2")
	return res, nil
}
