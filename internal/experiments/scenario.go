package experiments

import (
	"fmt"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/governor"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// The execution profile of Section 5.3, scaled in time: two VMs, V20 (20%
// credit) and V70 (70% credit), each with an inactive-active-inactive
// profile; Dom0 holds the remaining 10% at the highest priority with a
// light background load. V20 is active early while V70 is lazy, then the
// two overlap, then V70 runs alone.
const (
	scenarioDur = 700 * sim.Second
	v20Start    = 50 * sim.Second
	v20End      = 450 * sim.Second
	v70Start    = 250 * sim.Second
	v70End      = 650 * sim.Second

	// Check windows, clear of the phase boundaries.
	p1Lo, p1Hi = 70.0, 240.0  // V20 active, V70 lazy
	p2Lo, p2Hi = 280.0, 430.0 // both active
	p3Lo, p3Hi = 470.0, 630.0 // V70 active, V20 done
)

// thrashFactor is how far a thrashing load exceeds the VM capacity.
const thrashFactor = 5

// dom0LoadPct is Dom0's steady background load in percent of the host.
const dom0LoadPct = 1.0

// SchedKind selects the scenario's VM scheduler.
type schedKind int

const (
	schedCredit schedKind = iota + 1
	schedCredit2
	schedSEDF
	schedPAS
	schedPASCredit2
)

// govKind selects the scenario's governor.
type govKind int

const (
	govPerformance govKind = iota + 1
	govLinuxOndemand
	govPaperOndemand
	govNone
)

// loadKind selects exact vs thrashing intensity (Section 5.3).
type loadKind int

const (
	loadExact loadKind = iota + 1
	loadThrashing
)

// scenario is one instantiated Section 5.3 run.
type scenario struct {
	host *host.Host
	pas  *core.PAS
	pc2  *core.PASCredit2
	v20  *vm.VM
	v70  *vm.VM
	dom0 *vm.VM
}

// newScenario builds the Section 5.3 host on the Optiplex 755.
func newScenario(sk schedKind, gk govKind, lk loadKind, seed uint64) (*scenario, error) {
	prof := cpufreq.Optiplex755()
	cpu, err := cpufreq.NewCPU(prof)
	if err != nil {
		return nil, err
	}

	var s sched.Scheduler
	var pas *core.PAS
	var pc2 *core.PASCredit2
	switch sk {
	case schedCredit:
		s = sched.NewCredit(sched.CreditConfig{})
	case schedCredit2:
		s = sched.NewCredit2()
	case schedSEDF:
		s = sched.NewSEDF(sched.SEDFConfig{DefaultExtratime: true})
	case schedPAS:
		pas, err = core.NewPAS(core.PASConfig{CPU: cpu, CF: prof.EfficiencyTable()})
		if err != nil {
			return nil, err
		}
		s = pas
	case schedPASCredit2:
		pc2, err = core.NewPASCredit2(core.PASCredit2Config{CPU: cpu, CF: prof.EfficiencyTable()})
		if err != nil {
			return nil, err
		}
		s = pc2
	default:
		return nil, fmt.Errorf("unknown scheduler kind %d", sk)
	}

	var g governor.Governor
	switch gk {
	case govPerformance:
		g = &governor.Performance{}
	case govLinuxOndemand:
		g, err = governor.NewLinuxOndemand(governor.LinuxOndemandConfig{})
		if err != nil {
			return nil, err
		}
	case govPaperOndemand:
		g, err = governor.NewPaperOndemand(governor.PaperOndemandConfig{
			CF: prof.EfficiencyTable(),
		})
		if err != nil {
			return nil, err
		}
	case govNone:
		g = nil
	default:
		return nil, fmt.Errorf("unknown governor kind %d", gk)
	}

	h, err := host.New(host.Config{CPU: cpu, Scheduler: s, Governor: g})
	if err != nil {
		return nil, err
	}
	if pas != nil {
		pas.BindLoadSource(h)
	}
	if pc2 != nil {
		pc2.BindLoadSource(h)
	}

	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		return nil, err
	}
	factor := 1.0
	if lk == loadThrashing {
		factor = thrashFactor
	}
	mkWeb := func(credit float64, start, end sim.Time, wseed uint64) (*workload.WebApp, error) {
		rate := workload.ExactRate(maxTp, credit, workload.DefaultRequestCost) * factor
		return workload.NewWebApp(workload.WebAppConfig{
			Phases: workload.ThreePhase(start, end, rate),
			Seed:   wseed,
		})
	}

	dom0, err := vm.New(0, vm.Config{Name: "Dom0", Credit: 10, Priority: 1})
	if err != nil {
		return nil, err
	}
	dom0Web, err := workload.NewWebApp(workload.WebAppConfig{
		RequestCost:   0.002 * 2667e6,
		Deterministic: true,
		Phases:        workload.ThreePhase(0, scenarioDur, workload.ExactRate(maxTp, dom0LoadPct, 0.002*2667e6)),
	})
	if err != nil {
		return nil, err
	}
	dom0.SetWorkload(dom0Web)

	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		return nil, err
	}
	w20, err := mkWeb(20, v20Start, v20End, seed+1)
	if err != nil {
		return nil, err
	}
	v20.SetWorkload(w20)

	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		return nil, err
	}
	w70, err := mkWeb(70, v70Start, v70End, seed+2)
	if err != nil {
		return nil, err
	}
	v70.SetWorkload(w70)

	for _, v := range []*vm.VM{dom0, v20, v70} {
		if err := h.AddVM(v); err != nil {
			return nil, err
		}
	}
	return &scenario{host: h, pas: pas, pc2: pc2, v20: v20, v70: v70, dom0: dom0}, nil
}

// run executes the full profile.
func (s *scenario) run() error {
	return s.host.RunUntil(scenarioDur)
}
