package experiments

import (
	"fmt"

	"pasched/internal/calib"
	"pasched/internal/cpufreq"
	"pasched/internal/metrics"
	"pasched/internal/workload"
)

// Fig1 reproduces Figure 1: pi execution times with initial credits
// 10..100 at the maximum frequency (2667 MHz), against execution times at
// 2133 MHz with the equation-4 compensated credits. The two curves overlap
// while the compensated credit fits under 100%.
func Fig1() (*Result, error) {
	prof := cpufreq.Optiplex755()
	work := workload.PiWorkFor(2667e6, 100, 10) // 10 full-CPU seconds
	credits := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	points, err := calib.CompensationCurve(prof, 2133, work, credits)
	if err != nil {
		return nil, err
	}

	tb := metrics.NewTable("Figure 1: compensation of frequency reduction with credit allocation",
		"initial credit (%)", "new credit (%)", "T @ 2667MHz (s)", "T @ 2133MHz, compensated (s)")
	sMax := metrics.NewSeries("T(init credit) @ 2667MHz")
	sComp := metrics.NewSeries("T(new credit) @ 2133MHz")
	res := &Result{ID: "fig1", Title: "Compensation of Frequency Reduction with Credit Allocation"}
	for _, p := range points {
		tb.AddRow(metrics.Fmt(p.InitCredit, 0), metrics.Fmt(p.NewCredit, 0),
			metrics.Fmt(p.TimeAtMax, 1), metrics.Fmt(p.TimeCompensated, 1))
		sMax.Add(p.InitCredit, p.TimeAtMax)
		sComp.Add(p.InitCredit, p.TimeCompensated)
		if p.NewCredit <= 100 {
			rel := (p.TimeCompensated - p.TimeAtMax) / p.TimeAtMax * 100
			res.Checks = append(res.Checks, checkNear(
				fmt.Sprintf("overlap at credit %.0f (time delta %%)", p.InitCredit),
				"curves overlap", rel, 0, 3))
		}
	}
	res.Tables = append(res.Tables, tb)
	res.Series = append(res.Series, sMax, sComp)
	res.Notes = append(res.Notes,
		"job sized to 10 full-CPU seconds (the paper's absolute durations depend on its pi implementation)",
		"above ~80% initial credit the compensated credit exceeds 100% and cannot be granted; the curves diverge there by construction")
	return res, nil
}

// figureScenario runs one Section 5.3 scenario and packages the usual
// series (loads and frequency) into a Result.
func figureScenario(id, title string, sk schedKind, gk govKind, lk loadKind,
	absolute bool) (*Result, *scenario, error) {
	sc, err := newScenario(sk, gk, lk, 42)
	if err != nil {
		return nil, nil, err
	}
	if err := sc.run(); err != nil {
		return nil, nil, err
	}
	rec := sc.host.Recorder()
	suffix := "_global_pct"
	kind := "global"
	if absolute {
		suffix = "_absolute_pct"
		kind = "absolute"
	}
	res := &Result{ID: id, Title: title}
	v20 := rec.Series("V20" + suffix)
	v70 := rec.Series("V70" + suffix)
	freq := rec.Series("freq_mhz")
	// Figure series: loads in percent plus the frequency scaled to fit the
	// same chart (right axis in the paper).
	freqScaled := metrics.NewSeries("frequency (MHz/26.67, right axis)")
	for i := range freq.T {
		freqScaled.Add(freq.T[i], freq.V[i]/26.67)
	}
	v20c := metrics.NewSeries("V20 " + kind + " load (%)")
	v20c.T, v20c.V = v20.T, v20.V
	v70c := metrics.NewSeries("V70 " + kind + " load (%)")
	v70c.T, v70c.V = v70.T, v70.V
	res.Series = append(res.Series, v20c, v70c, freqScaled)
	return res, sc, nil
}

// phaseMeans summarizes a series over the three phase windows.
func phaseMeans(s *metrics.Series) (p1, p2, p3 float64) {
	p1, _ = s.MeanBetween(p1Lo, p1Hi)
	p2, _ = s.MeanBetween(p2Lo, p2Hi)
	p3, _ = s.MeanBetween(p3Lo, p3Hi)
	return p1, p2, p3
}

// Fig2 reproduces Figure 2: the execution profile with the Credit
// scheduler at the maximum frequency (Performance governor), exact load.
func Fig2() (*Result, error) {
	res, sc, err := figureScenario("fig2", "Load profile (at the maximum frequency)",
		schedCredit, govPerformance, loadExact, false)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	v20p1, v20p2, _ := phaseMeans(rec.Series("V20_global_pct"))
	_, v70p2, v70p3 := phaseMeans(rec.Series("V70_global_pct"))
	fMean := rec.Series("freq_mhz").Mean()
	res.Checks = append(res.Checks,
		checkNear("V20 global load, phase 1 (%)", "20", v20p1, 20, 1.5),
		checkNear("V20 global load, phase 2 (%)", "20", v20p2, 20, 1.5),
		checkNear("V70 global load, phase 2 (%)", "70", v70p2, 70, 2),
		checkNear("V70 global load, phase 3 (%)", "70", v70p3, 70, 2),
		checkNear("frequency pinned at max (MHz)", "2667", fMean, 2667, 1),
	)
	res.Notes = append(res.Notes,
		"exact and thrashing loads give the same figure here: the credit scheduler caps both at the allocated credit")
	return res, nil
}

// Fig3 reproduces Figure 3: the stock Ondemand governor with the Credit
// scheduler is aggressive and unstable — the frequency oscillates under
// the bursty web load.
func Fig3() (*Result, error) {
	res, sc, err := figureScenario("fig3", "Global loads with Ondemand governor / Credit scheduler / exact load",
		schedCredit, govLinuxOndemand, loadExact, false)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	trans := rec.Series("freq_mhz").Transitions(1)
	v20p1, _, _ := phaseMeans(rec.Series("V20_global_pct"))
	res.Checks = append(res.Checks,
		checkBetween("frequency transitions across 1s samples", "aggressive and unstable (oscillates)",
			float64(trans), 20, 1e9),
		checkNear("V20 global load, phase 1 (%)", "20", v20p1, 20, 1.5),
	)
	res.Notes = append(res.Notes,
		"oscillation count is per 1-second sample pairs; the underlying 100ms decisions flap even more")
	return res, nil
}

// Fig4 reproduces Figure 4: the paper's own governor shows the same
// overall behaviour without the oscillations.
func Fig4() (*Result, error) {
	res, sc, err := figureScenario("fig4", "Global loads with our governor / Credit scheduler / exact load",
		schedCredit, govPaperOndemand, loadExact, false)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	trans := rec.Series("freq_mhz").Transitions(1)
	v20p1, v20p2, _ := phaseMeans(rec.Series("V20_global_pct"))
	_, v70p2, _ := phaseMeans(rec.Series("V70_global_pct"))
	res.Checks = append(res.Checks,
		checkBetween("frequency transitions across 1s samples", "stable (no oscillations)",
			float64(trans), 0, 12),
		checkNear("V20 global load, phase 1 (%)", "20", v20p1, 20, 1.5),
		checkNear("V20 global load, phase 2 (%)", "20", v20p2, 20, 1.5),
		checkNear("V70 global load, phase 2 (%)", "70", v70p2, 70, 2),
	)
	return res, nil
}

// Fig5 reproduces Figure 5: the absolute loads of the Figure 4 run expose
// the problem — V20's absolute load collapses to roughly half its credit
// while V70 is lazy and the frequency is scaled down, and recovers only
// when V70's activity raises the frequency.
func Fig5() (*Result, error) {
	res, sc, err := figureScenario("fig5", "Absolute loads with our governor / Credit scheduler / exact load",
		schedCredit, govPaperOndemand, loadExact, true)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	a20p1, a20p2, _ := phaseMeans(rec.Series("V20_absolute_pct"))
	f1, _ := rec.Series("freq_mhz").MeanBetween(p1Lo, p1Hi)
	res.Checks = append(res.Checks,
		// 20% of the CPU at 1600/2667 MHz is 12% absolute; the paper reads
		// "close to 10%" off its figure.
		checkBetween("V20 absolute load, phase 1 (%)", "close to 10", a20p1, 10, 14),
		checkNear("V20 absolute load, phase 2 (%)", "climbs to 20", a20p2, 20, 1.5),
		checkNear("frequency, phase 1 (MHz)", "scaled down (1600)", f1, 1600, 30),
	)
	res.Notes = append(res.Notes,
		"V20 is only granted its allocated absolute credit (20%) when the processor frequency is at the maximum level — the incompatibility PAS fixes")
	return res, nil
}

// Fig6 reproduces Figure 6: SEDF hands V70's unused slices to V20, whose
// global load rises to ~35% in phase 1 (33% of the CPU at 1600 MHz is the
// 20% absolute it needs, plus scheduling slack).
func Fig6() (*Result, error) {
	res, sc, err := figureScenario("fig6", "Global loads with our governor / SEDF scheduler / exact load",
		schedSEDF, govPaperOndemand, loadExact, false)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	v20p1, v20p2, _ := phaseMeans(rec.Series("V20_global_pct"))
	_, v70p2, _ := phaseMeans(rec.Series("V70_global_pct"))
	res.Checks = append(res.Checks,
		checkBetween("V20 global load, phase 1 (%)", "35", v20p1, 30, 38),
		checkNear("V20 global load, phase 2 (%)", "ends up with 20", v20p2, 20, 2),
		checkNear("V70 global load, phase 2 (%)", "70", v70p2, 70, 2),
	)
	return res, nil
}

// Fig7 reproduces Figure 7: in absolute terms the donated slices exactly
// compensate the lowered frequency — V20 holds 20% absolute throughout its
// active phase.
func Fig7() (*Result, error) {
	res, sc, err := figureScenario("fig7", "Absolute loads with our governor / SEDF scheduler / exact load",
		schedSEDF, govPaperOndemand, loadExact, true)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	a20p1, a20p2, _ := phaseMeans(rec.Series("V20_absolute_pct"))
	res.Checks = append(res.Checks,
		checkNear("V20 absolute load, phase 1 (%)", "20 during the entire experiment", a20p1, 20, 1.5),
		checkNear("V20 absolute load, phase 2 (%)", "20 during the entire experiment", a20p2, 20, 1.5),
	)
	res.Notes = append(res.Notes,
		"SEDF solves the exact-load case by accident: unused slices compensate the frequency penalty")
	return res, nil
}

// Fig8 reproduces Figure 8: under a thrashing load SEDF lets V20 consume
// ~85%+ of the processor and the frequency is pinned at the maximum — the
// provider neither enforces the 20% SLA nor saves energy.
func Fig8() (*Result, error) {
	res, sc, err := figureScenario("fig8", "Global or absolute loads with our governor / SEDF scheduler / thrashing load",
		schedSEDF, govPaperOndemand, loadThrashing, false)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	v20p1, v20p2, _ := phaseMeans(rec.Series("V20_global_pct"))
	f1, _ := rec.Series("freq_mhz").MeanBetween(p1Lo, p1Hi)
	res.Checks = append(res.Checks,
		checkBetween("V20 global load, phase 1 (%)", "85 (allowed to consume far beyond its credit)",
			v20p1, 85, 100),
		checkNear("frequency, phase 1 (MHz)", "kept at the highest level (2667)", f1, 2667, 30),
		checkNear("V20 global load, phase 2 (%)", "credits respected once V70 is active (~20-25)",
			v20p2, 24, 4),
	)
	res.Notes = append(res.Notes,
		"the paper reads ~85% for V20 because its Dom0 stack consumes more than our 1% background; the shape — V20 unbounded, frequency pinned — is the claim",
		"global and absolute loads coincide since the frequency never leaves the maximum")
	return res, nil
}

// Fig9 reproduces Figure 9: PAS under the same thrashing load grants V20 a
// compensated 33% cap at 1600 MHz in phase 1 and returns it to 20% at the
// maximum frequency in phase 2.
func Fig9() (*Result, error) {
	res, sc, err := figureScenario("fig9", "Global loads with the PAS scheduler / thrashing load",
		schedPAS, govNone, loadThrashing, false)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	v20p1, v20p2, _ := phaseMeans(rec.Series("V20_global_pct"))
	_, v70p2, _ := phaseMeans(rec.Series("V70_global_pct"))
	cap1, _ := rec.Series("V20_cap_pct").MeanBetween(p1Lo, p1Hi)
	cap2, _ := rec.Series("V20_cap_pct").MeanBetween(p2Lo, p2Hi)
	f1, _ := rec.Series("freq_mhz").MeanBetween(p1Lo, p1Hi)
	f2, _ := rec.Series("freq_mhz").MeanBetween(p2Lo, p2Hi)
	res.Series = append(res.Series, rec.Series("V20_cap_pct"))
	res.Checks = append(res.Checks,
		checkNear("frequency, phase 1 (MHz)", "1600", f1, 1600, 30),
		checkNear("V20 enforced cap, phase 1 (%)", "33 (compensates the low frequency)", cap1, 33.3, 1),
		checkNear("V20 global load, phase 1 (%)", "33", v20p1, 33.3, 1.5),
		checkNear("frequency, phase 2 (MHz)", "reaches the maximum", f2, 2667, 40),
		checkNear("V20 enforced cap, phase 2 (%)", "20", cap2, 20, 1),
		checkNear("V20 global load, phase 2 (%)", "20", v20p2, 20, 1.5),
		checkNear("V70 global load, phase 2 (%)", "70", v70p2, 70, 2),
	)
	return res, nil
}

// Fig10 reproduces Figure 10: in absolute terms PAS keeps every VM at
// exactly its contracted credit for the whole run, while the frequency
// stays low whenever the host is underloaded.
func Fig10() (*Result, error) {
	res, sc, err := figureScenario("fig10", "Absolute loads with the PAS scheduler / thrashing load",
		schedPAS, govNone, loadThrashing, true)
	if err != nil {
		return nil, err
	}
	rec := sc.host.Recorder()
	a20p1, a20p2, _ := phaseMeans(rec.Series("V20_absolute_pct"))
	_, a70p2, a70p3 := phaseMeans(rec.Series("V70_absolute_pct"))
	f1, _ := rec.Series("freq_mhz").MeanBetween(p1Lo, p1Hi)
	res.Checks = append(res.Checks,
		checkNear("V20 absolute load, phase 1 (%)", "20 (consistent with credit allocations)", a20p1, 20, 1),
		checkNear("V20 absolute load, phase 2 (%)", "20", a20p2, 20, 1),
		checkNear("V70 absolute load, phase 2 (%)", "70", a70p2, 70, 2),
		checkNear("V70 absolute load, phase 3 (%)", "70", a70p3, 70, 2),
		checkNear("frequency, phase 1 (MHz)", "low while the host is underloaded", f1, 1600, 30),
	)
	res.Notes = append(res.Notes,
		"PAS = SEDF's exact-load benefit + credit enforcement under thrashing + frequency reductions")
	return res, nil
}
