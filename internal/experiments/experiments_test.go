package experiments

import (
	"strings"
	"testing"
)

func TestRegistryIsConsistent(t *testing.T) {
	ids := IDs()
	if len(ids) != len(registry) {
		t.Fatalf("IDs() returned %d, registry has %d", len(ids), len(registry))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
		title, err := Title(id)
		if err != nil || title == "" {
			t.Errorf("Title(%q) = %q, %v", id, title, err)
		}
	}
	if _, err := Title("nope"); err == nil {
		t.Error("Title(nope) succeeded")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Error("Run(nope) succeeded")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		ID:    "x",
		Title: "t",
		Checks: []Check{
			{Name: "a", Pass: true},
			{Name: "b", Pass: false},
		},
	}
	if r.Passed() {
		t.Error("Passed() with a failing check")
	}
	failed := r.FailedChecks()
	if len(failed) != 1 || failed[0] != "b" {
		t.Errorf("FailedChecks = %v", failed)
	}
	out := r.Render()
	for _, want := range []string{"=== x: t ===", "PASS", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestCheckBuilders(t *testing.T) {
	if c := checkNear("n", "p", 10, 10, 0.5); !c.Pass {
		t.Error("checkNear exact failed")
	}
	if c := checkNear("n", "p", 11, 10, 0.5); c.Pass {
		t.Error("checkNear out of band passed")
	}
	if c := checkBetween("n", "p", 5, 0, 10); !c.Pass {
		t.Error("checkBetween in band failed")
	}
	if c := checkBetween("n", "p", 11, 0, 10); c.Pass {
		t.Error("checkBetween out of band passed")
	}
	if c := checkTrue("n", "p", "m", true); !c.Pass || c.Measured != "m" {
		t.Error("checkTrue failed")
	}
}

// TestAllExperimentsPass runs every registered experiment end to end and
// requires every shape check to pass: the full paper reproduction as a
// single test gate. Experiments run in parallel; the whole gate takes a
// few seconds.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed() {
				t.Errorf("%s failed checks: %v", id, res.FailedChecks())
			}
			if len(res.Checks) == 0 {
				t.Errorf("%s carries no shape checks", id)
			}
			if res.Render() == "" {
				t.Errorf("%s renders empty", id)
			}
		})
	}
}

func TestTable1ShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs in -short mode")
	}
	res, err := Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("table1 failed checks: %v", res.FailedChecks())
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 5 {
		t.Error("table1 did not produce 5 processor rows")
	}
}

func TestTraceConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("trace runs in -short mode")
	}
	rec, err := Trace("credit2", "ondemand", "exact", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Names()) == 0 {
		t.Error("trace recorded nothing")
	}
	for _, bad := range [][3]string{
		{"nope", "paper", "exact"},
		{"credit", "nope", "exact"},
		{"credit", "paper", "nope"},
		{"pas", "paper", "exact"}, // pas requires -gov none
	} {
		if _, err := Trace(bad[0], bad[1], bad[2], 1); err == nil {
			t.Errorf("Trace(%v) succeeded", bad)
		}
	}
}

func TestScenarioBuilderValidation(t *testing.T) {
	if _, err := newScenario(schedKind(99), govPerformance, loadExact, 1); err == nil {
		t.Error("unknown scheduler kind accepted")
	}
	if _, err := newScenario(schedCredit, govKind(99), loadExact, 1); err == nil {
		t.Error("unknown governor kind accepted")
	}
}
