package experiments

import (
	"fmt"

	"pasched/internal/consolidation"
	"pasched/internal/metrics"
)

// TraceSchedulers lists the scheduler names Trace accepts — the shared
// scheduler registry (consolidation.SchedulerNames) — for CLI usage
// strings and up-front flag validation.
var TraceSchedulers = consolidation.SchedulerNames()

// Trace runs one Section 5.3 scenario with the named configuration and
// returns the full recorder, for CSV export by cmd/pastrace. Valid
// schedulers: TraceSchedulers. Valid governors: "performance",
// "ondemand" (stock), "paper", "none". Valid loads: "exact",
// "thrashing".
func Trace(scheduler, gov, load string, seed uint64) (*metrics.Recorder, error) {
	// Names and aliases resolve against the shared registry, so
	// "fix-credit" means the same scheduler here as everywhere else.
	canonical, ok := consolidation.CanonicalScheduler(scheduler)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scheduler %q (%s)", scheduler, TraceSchedulers)
	}
	var sk schedKind
	switch canonical {
	case "credit":
		sk = schedCredit
	case "credit2":
		sk = schedCredit2
	case "sedf":
		sk = schedSEDF
	case "pas":
		sk = schedPAS
	case "pas-credit2":
		sk = schedPASCredit2
	default:
		return nil, fmt.Errorf("experiments: scheduler %q has no Section 5.3 scenario", canonical)
	}
	var gk govKind
	switch gov {
	case "performance":
		gk = govPerformance
	case "ondemand":
		gk = govLinuxOndemand
	case "paper":
		gk = govPaperOndemand
	case "none":
		gk = govNone
	default:
		return nil, fmt.Errorf("experiments: unknown governor %q (performance, ondemand, paper, none)", gov)
	}
	var lk loadKind
	switch load {
	case "exact":
		lk = loadExact
	case "thrashing":
		lk = loadThrashing
	default:
		return nil, fmt.Errorf("experiments: unknown load %q (exact, thrashing)", load)
	}
	if (sk == schedPAS || sk == schedPASCredit2) && gk != govNone {
		return nil, fmt.Errorf("experiments: the %s scheduler manages DVFS itself; use -gov none", scheduler)
	}
	sc, err := newScenario(sk, gk, lk, seed)
	if err != nil {
		return nil, err
	}
	if err := sc.run(); err != nil {
		return nil, err
	}
	return sc.host.Recorder(), nil
}
