// Package experiments reproduces every figure and table of the paper's
// evaluation (Section 5) on the simulated host, plus the ablations the
// paper discusses qualitatively (implementation level, energy). Each
// experiment returns a Result holding paper-style tables, figure series
// and shape checks (paper claim vs measured value), and can be rendered as
// text for the CLI or recorded by the benchmark harness.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"pasched/internal/metrics"
)

// Check is one shape assertion: the paper's claim, the measured value, and
// whether the measured value falls in the accepted band.
type Check struct {
	// Name describes what is being checked, e.g. "V20 global load, phase 1".
	Name string
	// Paper is the paper's reported value or claim.
	Paper string
	// Measured is this reproduction's value.
	Measured string
	// Pass reports whether the measured value reproduces the claim.
	Pass bool
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the registry key, e.g. "fig5".
	ID string
	// Title is the experiment's descriptive title.
	Title string
	// Tables holds paper-style tables (Table 1, Table 2, Figure 1's rows).
	Tables []*metrics.Table
	// Series holds figure time series (loads in percent, frequency in MHz).
	Series []*metrics.Series
	// Checks holds the shape assertions.
	Checks []Check
	// Notes holds free-form commentary (substitutions, scaling).
	Notes []string
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// FailedChecks returns the names of failing checks.
func (r *Result) FailedChecks() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c.Name)
		}
	}
	return out
}

// Render formats the result as text: tables, an ASCII rendering of the
// series, the checks, and the notes.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		b.WriteString(t.Render())
	}
	if len(r.Series) > 0 {
		b.WriteByte('\n')
		b.WriteString(metrics.ASCIIChart(96, 20, r.Series...))
	}
	if len(r.Checks) > 0 {
		ct := metrics.NewTable("Shape checks (paper vs measured)",
			"check", "paper", "measured", "ok")
		for _, c := range r.Checks {
			ok := "PASS"
			if !c.Pass {
				ok = "FAIL"
			}
			ct.AddRow(c.Name, c.Paper, c.Measured, ok)
		}
		b.WriteByte('\n')
		b.WriteString(ct.Render())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// entry is one registered experiment.
type entry struct {
	id    string
	title string
	run   func() (*Result, error)
}

// registry lists every experiment in the paper's order.
var registry = []entry{
	{"verify", "Section 5.2: proportionality assumptions (equations 1-3)", Verify},
	{"fig1", "Figure 1: compensation of frequency reduction with credit allocation", Fig1},
	{"fig2", "Figure 2: load profile at the maximum frequency", Fig2},
	{"fig3", "Figure 3: global loads, stock Ondemand / Credit / exact load", Fig3},
	{"fig4", "Figure 4: global loads, paper governor / Credit / exact load", Fig4},
	{"fig5", "Figure 5: absolute loads, paper governor / Credit / exact load", Fig5},
	{"fig6", "Figure 6: global loads, paper governor / SEDF / exact load", Fig6},
	{"fig7", "Figure 7: absolute loads, paper governor / SEDF / exact load", Fig7},
	{"fig8", "Figure 8: global=absolute loads, SEDF / thrashing load", Fig8},
	{"fig9", "Figure 9: global loads, PAS / thrashing load", Fig9},
	{"fig10", "Figure 10: absolute loads, PAS / thrashing load", Fig10},
	{"table1", "Table 1: cf_min on different processors", Table1},
	{"table2", "Table 2: execution times on different virtualization platforms", Table2},
	{"ablation-impl", "Section 4.1 ablation: in-scheduler vs user-level implementations", AblationImpl},
	{"ablation-governors", "Section 2.2 ablation: governor families compared", AblationGovernors},
	{"energy", "Energy ablation: joules and QoS per scheduler/governor pair", Energy},
	{"ext-multicore", "Extension (Section 7): per-core vs per-socket DVFS under PAS", ExtMulticore},
	{"ext-pas-credit2", "Extension: cap-based PAS vs Credit2-based PAS (weights at the 10 ms cadence)", ExtPASCredit2},
	{"ext-consolidation", "Extension (Section 2.3): consolidation and DVFS complementarity", ExtConsolidation},
}

// IDs returns the registered experiment identifiers in the paper's order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Title returns the title of the experiment with the given id.
func Title(id string) (string, error) {
	for _, e := range registry {
		if e.id == id {
			return e.title, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown experiment %q", id)
}

// Run executes the experiment with the given id.
func Run(id string) (*Result, error) {
	for _, e := range registry {
		if e.id == id {
			r, err := e.run()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
			return r, nil
		}
	}
	ids := IDs()
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		id, strings.Join(ids, ", "))
}

// checkNear builds a Check asserting measured is within tol of want.
func checkNear(name, paper string, measured, want, tol float64) Check {
	return Check{
		Name:     name,
		Paper:    paper,
		Measured: metrics.Fmt(measured, 2),
		Pass:     measured >= want-tol && measured <= want+tol,
	}
}

// checkBetween builds a Check asserting lo <= measured <= hi.
func checkBetween(name, paper string, measured, lo, hi float64) Check {
	return Check{
		Name:     name,
		Paper:    paper,
		Measured: metrics.Fmt(measured, 2),
		Pass:     measured >= lo && measured <= hi,
	}
}

// checkTrue builds a Check from a boolean with a free-form measured label.
func checkTrue(name, paper, measured string, ok bool) Check {
	return Check{Name: name, Paper: paper, Measured: measured, Pass: ok}
}
