package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pasched/internal/sim"
)

func TestDeltaMeterValidation(t *testing.T) {
	if _, err := NewDeltaMeter(0, 3); err == nil {
		t.Error("NewDeltaMeter(0 interval) succeeded")
	}
	if _, err := NewDeltaMeter(sim.Second, 0); err == nil {
		t.Error("NewDeltaMeter(0 depth) succeeded")
	}
}

func TestDeltaMeterUtilization(t *testing.T) {
	m, err := NewDeltaMeter(sim.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Average() != 0 || m.Last() != 0 {
		t.Error("fresh meter reports non-zero utilization")
	}
	// 1st second: 200ms busy; 2nd: 400ms; 3rd: 600ms.
	m.Sample(1*sim.Second, 200*sim.Millisecond)
	m.Sample(2*sim.Second, 600*sim.Millisecond)
	m.Sample(3*sim.Second, 1200*sim.Millisecond)
	if got := m.Last(); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Last = %v, want 0.6", got)
	}
	if got := m.Average(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("Average = %v, want 0.4 (paper's 3-sample mean)", got)
	}
	// 4th second: fully busy; the 200ms sample falls out of the ring.
	m.Sample(4*sim.Second, 2200*sim.Millisecond)
	want := (0.4 + 0.6 + 1.0) / 3
	if got := m.Average(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Average = %v, want %v", got, want)
	}
}

func TestDeltaMeterIgnoresNonAdvancingSamples(t *testing.T) {
	m, err := NewDeltaMeter(sim.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Sample(sim.Second, 500*sim.Millisecond)
	m.Sample(sim.Second, 900*sim.Millisecond) // same time: ignored
	if got := m.Last(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Last = %v, want 0.5", got)
	}
}

func TestSeriesStatistics(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{10, 20, 30, 40} {
		s.Add(float64(i), v)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if got := s.Mean(); got != 25 {
		t.Errorf("Mean = %v, want 25", got)
	}
	if got := s.Min(); got != 10 {
		t.Errorf("Min = %v, want 10", got)
	}
	if got := s.Max(); got != 40 {
		t.Errorf("Max = %v, want 40", got)
	}
	if got, n := s.MeanBetween(1, 3); got != 25 || n != 2 {
		t.Errorf("MeanBetween(1,3) = %v, %d; want 25, 2", got, n)
	}
	if _, n := s.MeanBetween(100, 200); n != 0 {
		t.Errorf("MeanBetween(empty) n = %d, want 0", n)
	}
	wantSD := math.Sqrt((225 + 25 + 25 + 225) / 4)
	if got := s.Stddev(); math.Abs(got-wantSD) > 1e-9 {
		t.Errorf("Stddev = %v, want %v", got, wantSD)
	}
}

func TestSeriesTransitions(t *testing.T) {
	s := NewSeries("freq")
	for _, v := range []float64{1600, 1600, 2667, 1600, 1600, 2667} {
		s.Add(0, v)
	}
	if got := s.Transitions(1); got != 3 {
		t.Errorf("Transitions = %d, want 3", got)
	}
}

func TestEmptySeriesEdgeCases(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Stddev() != 0 {
		t.Error("empty series Mean/Stddev not zero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty series Min/Max not infinities")
	}
}

func TestRecorderOrderAndIdentity(t *testing.T) {
	r := NewRecorder()
	a := r.Series("a")
	b := r.Series("b")
	if r.Series("a") != a {
		t.Error("Series(name) returned a different instance")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
	all := r.All()
	if len(all) != 2 || all[0] != a || all[1] != b {
		t.Error("All() mismatch")
	}
}

func TestWriteCSV(t *testing.T) {
	a := NewSeries("v20")
	a.Add(0, 20)
	a.Add(1, 21)
	b := NewSeries("v70,raw") // comma forces quoting
	b.Add(1, 70)

	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "time_s,v20,\"v70,raw\"\n0,20,\n1,21,70\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if err := WriteCSV(&sb); err != nil {
		t.Errorf("WriteCSV() with no series: %v", err)
	}
}

func TestASCIIChart(t *testing.T) {
	s := NewSeries("load")
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i%50))
	}
	out := ASCIIChart(60, 10, s)
	if out == "" {
		t.Fatal("empty chart")
	}
	if !strings.Contains(out, "load") {
		t.Error("chart missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Error("chart missing data glyphs")
	}
	// Degenerate inputs return empty rather than panicking.
	if ASCIIChart(5, 2, s) != "" {
		t.Error("tiny chart not rejected")
	}
	if ASCIIChart(60, 10) != "" {
		t.Error("chart with no series not rejected")
	}
	if ASCIIChart(60, 10, NewSeries("empty")) != "" {
		t.Error("chart with empty series not rejected")
	}
}

func TestASCIIChartFlatSeries(t *testing.T) {
	s := NewSeries("flat")
	s.Add(0, 5)
	s.Add(1, 5)
	if ASCIIChart(40, 6, s) == "" {
		t.Error("flat series produced no chart")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1. cf_min", "Processor", "cf_min")
	tb.AddRow("Intel Xeon X3440", Fmt(0.94867, 5))
	tb.AddRow("short")
	out := tb.Render()
	for _, want := range []string{"Table 1. cf_min", "Processor", "0.94867", "short"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestQuickMeterBounds(t *testing.T) {
	// Property: utilization stays in [0, 1] for any monotone counter whose
	// increments never exceed the elapsed time.
	f := func(steps []uint8) bool {
		m, err := NewDeltaMeter(100*sim.Millisecond, 3)
		if err != nil {
			return false
		}
		now, cum := sim.Time(0), sim.Time(0)
		for _, st := range steps {
			now += 100 * sim.Millisecond
			busy := sim.Time(st) * sim.Millisecond
			if busy > 100*sim.Millisecond {
				busy = 100 * sim.Millisecond
			}
			cum += busy
			m.Sample(now, cum)
			if a := m.Average(); a < 0 || a > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
