package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV writes the series as CSV with a shared time column. Series are
// merged on the union of their timestamps; a series without a value at some
// timestamp leaves its cell empty.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	// Union of timestamps.
	seen := make(map[float64]bool)
	var times []float64
	for _, s := range series {
		for _, t := range s.T {
			if !seen[t] {
				seen[t] = true
				times = append(times, t)
			}
		}
	}
	sortFloats(times)

	// Per-series lookup.
	lookups := make([]map[float64]float64, len(series))
	for i, s := range series {
		m := make(map[float64]float64, len(s.T))
		for j, t := range s.T {
			m[t] = s.V[j]
		}
		lookups[i] = m
	}

	header := make([]string, 0, len(series)+1)
	header = append(header, "time_s")
	for _, s := range series {
		header = append(header, csvEscape(s.Name))
	}
	if _, err := io.WriteString(w, strings.Join(header, ",")+"\n"); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	row := make([]string, len(series)+1)
	for _, t := range times {
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for i := range series {
			if v, ok := lookups[i][t]; ok {
				row[i+1] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[i+1] = ""
			}
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func sortFloats(xs []float64) {
	// Insertion sort is adequate: figure series are already nearly sorted.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// chartGlyphs are the plotting characters assigned to successive series.
var chartGlyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// ASCIIChart renders the series into a width x height character chart with
// a y-axis legend, in the spirit of the paper's gnuplot figures. All series
// share both axes. Empty input returns an empty string.
func ASCIIChart(width, height int, series ...*Series) string {
	if len(series) == 0 || width < 16 || height < 4 {
		return ""
	}
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		points += s.Len()
		for i := range s.T {
			tMin = math.Min(tMin, s.T[i])
			tMax = math.Max(tMax, s.T[i])
			vMin = math.Min(vMin, s.V[i])
			vMax = math.Max(vMax, s.V[i])
		}
	}
	if points == 0 {
		return ""
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	if tMax == tMin {
		tMax = tMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		for i := range s.T {
			x := int((s.T[i] - tMin) / (tMax - tMin) * float64(width-1))
			y := int((s.V[i] - vMin) / (vMax - vMin) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = glyph
			}
		}
	}

	var b strings.Builder
	for i, s := range series {
		if i > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", chartGlyphs[i%len(chartGlyphs)], s.Name)
	}
	b.WriteByte('\n')
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%8.1f", vMax)
		case height - 1:
			label = fmt.Sprintf("%8.1f", vMin)
		default:
			label = strings.Repeat(" ", 8)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("%9s %-10.1f%*s%.1f (s)\n", "", tMin, width-12, "", tMax))
	return b.String()
}

// Table is a simple aligned text table used to print the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Fmt formats a float for table cells with the given number of decimals.
func Fmt(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}
