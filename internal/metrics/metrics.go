// Package metrics provides the measurement infrastructure of the simulated
// host: utilization meters (the paper's "VM load", "VM global load",
// "Global load" and "Absolute load" quantities of Section 4), recorded time
// series for the figures, and rendering helpers (aligned tables, CSV,
// ASCII charts) used by the experiment harness.
package metrics

import (
	"fmt"
	"math"

	"pasched/internal/sim"
)

// DeltaMeter measures utilization by sampling a cumulative busy-time
// counter at a fixed interval and retaining the last k interval
// utilizations. The paper's Global load "represents an average of three
// successive processor utilization" (footnote 5); a DeltaMeter with k=3
// reproduces exactly that.
type DeltaMeter struct {
	interval sim.Time
	ring     []float64
	filled   int
	idx      int
	lastCum  sim.Time
	lastT    sim.Time
}

// NewDeltaMeter returns a meter sampling every interval and averaging the
// last k samples. It returns an error for non-positive interval or k.
func NewDeltaMeter(interval sim.Time, k int) (*DeltaMeter, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("metrics: meter interval must be positive, got %v", interval)
	}
	if k <= 0 {
		return nil, fmt.Errorf("metrics: meter depth must be positive, got %d", k)
	}
	return &DeltaMeter{interval: interval, ring: make([]float64, k)}, nil
}

// Interval returns the sampling interval.
func (m *DeltaMeter) Interval() sim.Time { return m.interval }

// Sample records the cumulative busy time cum observed at time now. The
// caller is responsible for sampling at (approximately) the meter interval;
// the meter computes the utilization of the elapsed span exactly.
func (m *DeltaMeter) Sample(now sim.Time, cum sim.Time) {
	if now <= m.lastT {
		return
	}
	util := float64(cum-m.lastCum) / float64(now-m.lastT)
	if util < 0 {
		util = 0
	}
	m.ring[m.idx] = util
	m.idx = (m.idx + 1) % len(m.ring)
	if m.filled < len(m.ring) {
		m.filled++
	}
	m.lastCum = cum
	m.lastT = now
}

// Last returns the utilization of the most recent sample, in [0,1].
func (m *DeltaMeter) Last() float64 {
	if m.filled == 0 {
		return 0
	}
	i := (m.idx - 1 + len(m.ring)) % len(m.ring)
	return m.ring[i]
}

// Average returns the mean utilization of the retained samples, in [0,1].
func (m *DeltaMeter) Average() float64 {
	if m.filled == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < m.filled; i++ {
		sum += m.ring[i]
	}
	return sum / float64(m.filled)
}

// Series is a named time series: pairs of (simulated seconds, value).
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a point.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// Mean returns the arithmetic mean of all values, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// MeanBetween returns the mean of the values with t0 <= t < t1, and the
// number of points considered.
func (s *Series) MeanBetween(t0, t1 float64) (float64, int) {
	sum, n := 0.0, 0
	for i, t := range s.T {
		if t >= t0 && t < t1 {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Min returns the smallest value, or +Inf for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.V {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest value, or -Inf for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.V {
		if v > max {
			max = v
		}
	}
	return max
}

// Stddev returns the population standard deviation of the values.
func (s *Series) Stddev() float64 {
	if len(s.V) == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.V {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.V)))
}

// Transitions counts how many consecutive point pairs differ by more than
// eps, a measure of instability used to compare governors (Fig. 3 vs 4).
func (s *Series) Transitions(eps float64) int {
	n := 0
	for i := 1; i < len(s.V); i++ {
		if math.Abs(s.V[i]-s.V[i-1]) > eps {
			n++
		}
	}
	return n
}

// Recorder is an ordered collection of named series.
type Recorder struct {
	order []string
	by    map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{by: make(map[string]*Series)}
}

// Series returns the series with the given name, creating it on first use.
func (r *Recorder) Series(name string) *Series {
	if s, ok := r.by[name]; ok {
		return s
	}
	s := NewSeries(name)
	r.by[name] = s
	r.order = append(r.order, name)
	return s
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// All returns the series in creation order.
func (r *Recorder) All() []*Series {
	out := make([]*Series, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.by[n])
	}
	return out
}
