// Package autoscale closes the elastic loop over the fleet's
// observability spine: a policy-pluggable controller that runs on the
// fleet coordinator at reporting barriers, reads per-VM signals already
// flowing through the spine — serving queue depths, interval latency
// percentiles from the histogram ladders, and the throttle-attribution
// ledger buckets — and emits deterministic resize actions: credit-cap
// or weight changes through the schedulers' resize surfaces, per-VM
// emulator/IO overhead changes, and replica scale-out/in against the
// placement policy.
//
// Determinism contract: a policy is a pure function of the signal slice
// it is handed (plus its own per-VM history, keyed and swept
// deterministically). Signals arrive in the coordinator's VM order —
// identical for every shard and worker count — and actions are applied
// in emission order at the barrier instant, so an autoscaled fleet
// report is DeepEqual-bit-exact across shardings, exactly like a static
// one.
package autoscale

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
)

// Params tunes the built-in policies. The zero value selects the
// defaults noted per field.
type Params struct {
	// StepPct is the cap increment/decrement of one resize decision in
	// credit percentage points. Default 10.
	StepPct float64
	// MinCapPct floors every cap shrink. Default 5.
	MinCapPct float64
	// MaxCapPct ceils every cap growth (the fleet additionally clamps
	// growth to the hosting machine's free credit). Default 95.
	MaxCapPct float64
	// QueueHigh is the queue depth at or above which a VM counts as
	// pressured. Default 8.
	QueueHigh int64
	// QueueLow is the queue depth at or below which a VM counts as
	// drained. Default 1.
	QueueLow int64
	// MaxReplicas bounds a VM's serving group size (the VM itself plus
	// its replicas). 1 disables replica scale-out. Default 1.
	MaxReplicas int
	// TargetP99Us is the latency policy's fleet-wide interval p99
	// target in microseconds. Default 50ms.
	TargetP99Us int64
	// CappedHighPermille is the ditto policy's growth trigger: the
	// fraction of the interval (in permille) a VM must have spent
	// throttled by its own cap. Default 250 (a quarter of the
	// interval).
	CappedHighPermille int64
}

// WithDefaults fills zero fields with the documented defaults and
// validates the result.
func (p Params) WithDefaults() (Params, error) {
	if p.StepPct == 0 {
		p.StepPct = 10
	}
	if p.MinCapPct == 0 {
		p.MinCapPct = 5
	}
	if p.MaxCapPct == 0 {
		p.MaxCapPct = 95
	}
	if p.QueueHigh == 0 {
		p.QueueHigh = 8
	}
	if p.QueueLow == 0 {
		p.QueueLow = 1
	}
	if p.MaxReplicas == 0 {
		p.MaxReplicas = 1
	}
	if p.TargetP99Us == 0 {
		p.TargetP99Us = 50_000
	}
	if p.CappedHighPermille == 0 {
		p.CappedHighPermille = 250
	}
	switch {
	case p.StepPct < 0:
		return p, fmt.Errorf("autoscale: negative step %v", p.StepPct)
	case p.MinCapPct < 0 || p.MaxCapPct < p.MinCapPct:
		return p, fmt.Errorf("autoscale: cap range [%v, %v] invalid", p.MinCapPct, p.MaxCapPct)
	case p.QueueHigh < p.QueueLow:
		return p, fmt.Errorf("autoscale: queue thresholds inverted (high %d < low %d)", p.QueueHigh, p.QueueLow)
	case p.MaxReplicas < 1 || p.MaxReplicas > 64:
		return p, fmt.Errorf("autoscale: replica bound %d outside [1, 64]", p.MaxReplicas)
	case p.TargetP99Us < 0:
		return p, fmt.Errorf("autoscale: negative latency target %d us", p.TargetP99Us)
	case p.CappedHighPermille < 0 || p.CappedHighPermille > 1000:
		return p, fmt.Errorf("autoscale: capped trigger %d‰ outside [0, 1000]", p.CappedHighPermille)
	}
	return p, nil
}

// Signals is one VM's observation at a reporting barrier. The fleet
// fills it from state the coordinator may legally read while every
// shard is parked: the serving server's counters, the hosting machine's
// bookkeeping, and (when the flight recorder is on) the VM's
// throttle-attribution ledger.
type Signals struct {
	// Name identifies the VM; actions echo it back.
	Name string
	// Machine is the fleet-global index of the hosting machine.
	Machine int
	// IsReplica marks an autoscaler-created group member; Replicas is
	// the group size (the VM plus its replicas) and is set only on the
	// group's parent (1 when unsplit, 0 on replica members).
	IsReplica bool
	Replicas  int
	// CapPct is the VM's current booked credit percentage; BaseCapPct
	// its contracted (trace class) credit — policies shrink toward the
	// contract, never below it. HeadroomPct is the hosting machine's
	// free credit.
	CapPct      float64
	BaseCapPct  float64
	HeadroomPct float64
	// Serving counters: the request queue depth at the barrier, its
	// delta against the previous barrier (0 at the VM's first
	// observation), and the cumulative outcome counters.
	Queue      int64
	QueueDelta int64
	Offered    int64
	Completed  int64
	Abandoned  int64
	Retried    int64
	// OverheadPermille is the server's current emulator/IO overhead
	// share.
	OverheadPermille int64
	// Throttle-attribution ledger buckets, cumulative microseconds
	// (zero unless the flight recorder is enabled). CappedDeltaUs is
	// the interval's capped-time delta, computed by the controller.
	CappedUs      int64
	CappedDeltaUs int64
	RunUs         int64
	IdleUs        int64
	// Fleet-wide interval reply-latency quantiles in microseconds (0
	// when the interval served nothing), and the interval length.
	FleetP50Us int64
	FleetP99Us int64
	IntervalUs int64
}

// ActionKind enumerates the resize actions a policy can emit.
type ActionKind uint8

const (
	// SetCap rebooks the VM's credit to Action.CapPct (the fleet clamps
	// growth to the machine's free credit and applies it through the
	// scheduler's cap or weight surface).
	SetCap ActionKind = iota + 1
	// SetOverhead changes the VM's emulator/IO overhead share to
	// Action.Permille.
	SetOverhead
	// ScaleOut adds one serving replica to the VM's group, placed by
	// the fleet's placement policy; the group's arrival stream is
	// repartitioned at the barrier instant.
	ScaleOut
	// ScaleIn removes the VM's newest replica and repartitions.
	ScaleIn
)

// String returns the kind's stable display name.
func (k ActionKind) String() string {
	switch k {
	case SetCap:
		return "set-cap"
	case SetOverhead:
		return "set-overhead"
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	}
	return "unknown"
}

// Action is one resize decision, targeting the VM by name.
type Action struct {
	VM       string
	Kind     ActionKind
	CapPct   float64 // SetCap only
	Permille int64   // SetOverhead only
}

// Policy decides resize actions from barrier signals. Decide must be
// deterministic: a function of the signal slice (ordered by the fleet)
// only, appending its actions to acts. RequiresObs reports whether the
// policy reads the attribution ledger (the fleet then requires the
// flight recorder).
type Policy interface {
	Name() string
	RequiresObs() bool
	Decide(now sim.Time, vms []Signals, acts []Action) []Action
}

// builders is the policy registry, keyed by name.
var builders = map[string]func(Params) Policy{
	"queue":   func(p Params) Policy { return &queuePolicy{p: p} },
	"ditto":   func(p Params) Policy { return &dittoPolicy{p: p} },
	"latency": func(p Params) Policy { return &latencyPolicy{p: p} },
}

// New builds a registered policy with defaulted, validated parameters.
func New(name string, prm Params) (Policy, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("autoscale: unknown policy %q (accepted: %s)", name, Names())
	}
	prm, err := prm.WithDefaults()
	if err != nil {
		return nil, err
	}
	return b(prm), nil
}

// Names renders the registered policy names, sorted, for usage strings.
func Names() string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Valid reports whether name is a registered policy.
func Valid(name string) bool { _, ok := builders[name]; return ok }

// grow emits the escalation ladder shared by every built-in policy: a
// pressured VM first grows its cap by StepPct toward MaxCapPct (the
// fleet further clamps to machine headroom), and only a group parent
// whose cap is saturated scales out — replicas are the expensive lever.
func grow(p Params, s *Signals, acts []Action) []Action {
	if s.CapPct+1e-9 < p.MaxCapPct && s.HeadroomPct > 1e-9 {
		want := s.CapPct + p.StepPct
		if want > p.MaxCapPct {
			want = p.MaxCapPct
		}
		return append(acts, Action{VM: s.Name, Kind: SetCap, CapPct: want})
	}
	if !s.IsReplica && s.Replicas < p.MaxReplicas {
		return append(acts, Action{VM: s.Name, Kind: ScaleOut})
	}
	return acts
}

// shrink emits the de-escalation ladder: a drained parent first retires
// its newest replica, then everyone steps their cap back down toward
// the contracted credit.
func shrink(p Params, s *Signals, acts []Action) []Action {
	if !s.IsReplica && s.Replicas > 1 {
		return append(acts, Action{VM: s.Name, Kind: ScaleIn})
	}
	floor := s.BaseCapPct
	if floor < p.MinCapPct {
		floor = p.MinCapPct
	}
	if s.CapPct > floor+1e-9 {
		want := s.CapPct - p.StepPct
		if want < floor {
			want = floor
		}
		return append(acts, Action{VM: s.Name, Kind: SetCap, CapPct: want})
	}
	return acts
}

// queuePolicy scales on serving queue depth alone: grow while the queue
// sits at or above QueueHigh and is not draining, shrink when it sits
// at or below QueueLow and is not growing.
type queuePolicy struct{ p Params }

func (*queuePolicy) Name() string      { return "queue" }
func (*queuePolicy) RequiresObs() bool { return false }

func (q *queuePolicy) Decide(_ sim.Time, vms []Signals, acts []Action) []Action {
	for i := range vms {
		s := &vms[i]
		switch {
		case s.Queue >= q.p.QueueHigh && s.QueueDelta >= 0:
			acts = grow(q.p, s, acts)
		case s.Queue <= q.p.QueueLow && s.QueueDelta <= 0:
			acts = shrink(q.p, s, acts)
		}
	}
	return acts
}

// dittoPolicy scales on the throttle-attribution ledger: a VM that
// spent more than CappedHighPermille of the interval barred by its own
// cap, with work still queued, is being throttled into queueing — grow
// it. A VM with no capped time and a drained queue gives capacity back.
// This is the autoscaler the flight recorder was built for: the trigger
// is the attributed cause (capped time), not the symptom (queue depth),
// so it does not fire on queues caused by contention or downclocking,
// which a cap raise cannot fix.
type dittoPolicy struct{ p Params }

func (*dittoPolicy) Name() string      { return "ditto" }
func (*dittoPolicy) RequiresObs() bool { return true }

func (d *dittoPolicy) Decide(_ sim.Time, vms []Signals, acts []Action) []Action {
	for i := range vms {
		s := &vms[i]
		capped := s.IntervalUs > 0 && s.CappedDeltaUs*1000 > d.p.CappedHighPermille*s.IntervalUs
		switch {
		case capped && s.Queue > 0:
			acts = grow(d.p, s, acts)
		case s.CappedDeltaUs == 0 && s.Queue <= d.p.QueueLow && s.QueueDelta <= 0:
			acts = shrink(d.p, s, acts)
		}
	}
	return acts
}

// latencyPolicy scales on the fleet-wide interval p99: above target,
// every queueing VM grows; below a quarter of the target, drained VMs
// shrink. Coarser than ditto (one global trigger), but needs neither
// the recorder nor per-VM tuning.
type latencyPolicy struct{ p Params }

func (*latencyPolicy) Name() string      { return "latency" }
func (*latencyPolicy) RequiresObs() bool { return false }

func (l *latencyPolicy) Decide(_ sim.Time, vms []Signals, acts []Action) []Action {
	for i := range vms {
		s := &vms[i]
		switch {
		case s.FleetP99Us > l.p.TargetP99Us && s.Queue >= l.p.QueueLow:
			acts = grow(l.p, s, acts)
		case s.FleetP99Us > 0 && s.FleetP99Us*4 < l.p.TargetP99Us && s.Queue <= l.p.QueueLow && s.QueueDelta <= 0:
			acts = shrink(l.p, s, acts)
		}
	}
	return acts
}

// prevSig is the controller's per-VM history between barriers.
type prevSig struct {
	gen      uint64
	queue    int64
	cappedUs int64
}

// Controller wraps a policy with the per-VM history that turns
// cumulative signals into interval deltas, and sweeps history for VMs
// that disappeared (departed or scaled in).
type Controller struct {
	pol  Policy
	prev map[string]prevSig
	gen  uint64
	acts []Action
}

// NewController builds a controller around pol.
func NewController(pol Policy) *Controller {
	return &Controller{pol: pol, prev: make(map[string]prevSig)}
}

// Policy returns the wrapped policy.
func (c *Controller) Policy() Policy { return c.pol }

// Step computes the interval deltas for every signal in place, asks the
// policy to decide, and returns the actions. The returned slice is
// valid until the next Step.
func (c *Controller) Step(now sim.Time, vms []Signals) []Action {
	c.gen++
	for i := range vms {
		s := &vms[i]
		if pv, ok := c.prev[s.Name]; ok {
			s.QueueDelta = s.Queue - pv.queue
			s.CappedDeltaUs = s.CappedUs - pv.cappedUs
		}
		c.prev[s.Name] = prevSig{gen: c.gen, queue: s.Queue, cappedUs: s.CappedUs}
	}
	// Sweep entries not refreshed this step: their VMs are gone, and an
	// unbounded map would leak across a long run. Deletion order does
	// not matter, so ranging the map here stays deterministic in effect.
	for name, pv := range c.prev {
		if pv.gen != c.gen {
			delete(c.prev, name)
		}
	}
	c.acts = c.pol.Decide(now, vms, c.acts[:0])
	return c.acts
}
