package autoscale

import (
	"strings"
	"testing"
)

func mustPolicy(t *testing.T, name string, p Params) Policy {
	t.Helper()
	pol, err := New(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestParamsValidation(t *testing.T) {
	def, err := Params{}.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if def.StepPct != 10 || def.MaxReplicas != 1 || def.QueueHigh != 8 {
		t.Fatalf("unexpected defaults: %+v", def)
	}
	for name, p := range map[string]Params{
		"negative step":     {StepPct: -1},
		"inverted caps":     {MinCapPct: 50, MaxCapPct: 10},
		"inverted queues":   {QueueHigh: 1, QueueLow: 5},
		"replica bound":     {MaxReplicas: 100},
		"negative target":   {TargetP99Us: -1},
		"capped permille":   {CappedHighPermille: 1001},
		"negative latency?": {TargetP99Us: -5},
	} {
		if _, err := p.WithDefaults(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRegistry(t *testing.T) {
	if _, err := New("nope", Params{}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy accepted: %v", err)
	}
	for _, name := range []string{"queue", "ditto", "latency"} {
		if !Valid(name) {
			t.Errorf("%s not registered", name)
		}
		pol := mustPolicy(t, name, Params{})
		if pol.Name() != name {
			t.Errorf("policy %s reports name %s", name, pol.Name())
		}
	}
	if Valid("nope") {
		t.Error("Valid accepted an unknown name")
	}
	if got := Names(); !strings.Contains(got, "ditto") || !strings.Contains(got, "queue") {
		t.Errorf("Names() = %q", got)
	}
	if !mustPolicy(t, "ditto", Params{}).RequiresObs() {
		t.Error("ditto does not require obs")
	}
	if mustPolicy(t, "queue", Params{}).RequiresObs() {
		t.Error("queue requires obs")
	}
}

// TestQueuePolicyLadder walks the escalation ladder: a pressured VM
// grows its cap step by step, scales out only once the cap saturates,
// and the drained group first retires the replica, then steps the cap
// back to the contracted credit.
func TestQueuePolicyLadder(t *testing.T) {
	prm := Params{StepPct: 20, MaxCapPct: 50, QueueHigh: 4, MaxReplicas: 2}
	c := NewController(mustPolicy(t, "queue", prm))
	sig := Signals{Name: "v", CapPct: 25, BaseCapPct: 25, HeadroomPct: 100, Queue: 10, Replicas: 1}

	acts := c.Step(1, []Signals{sig})
	if len(acts) != 1 || acts[0].Kind != SetCap || acts[0].CapPct != 45 {
		t.Fatalf("pressured VM: got %+v, want cap 45", acts)
	}
	sig.CapPct = 45
	acts = c.Step(2, []Signals{sig})
	if len(acts) != 1 || acts[0].Kind != SetCap || acts[0].CapPct != 50 {
		t.Fatalf("second step: got %+v, want cap clamp to 50", acts)
	}
	sig.CapPct = 50
	acts = c.Step(3, []Signals{sig})
	if len(acts) != 1 || acts[0].Kind != ScaleOut {
		t.Fatalf("saturated cap: got %+v, want scale-out", acts)
	}
	sig.Replicas = 2
	acts = c.Step(4, []Signals{sig})
	if len(acts) != 0 {
		t.Fatalf("at replica bound: got %+v, want nothing", acts)
	}

	sig.Queue = 0
	// First drained barrier records a negative delta; decision fires.
	acts = c.Step(5, []Signals{sig})
	if len(acts) != 1 || acts[0].Kind != ScaleIn {
		t.Fatalf("drained group: got %+v, want scale-in", acts)
	}
	sig.Replicas = 1
	acts = c.Step(6, []Signals{sig})
	if len(acts) != 1 || acts[0].Kind != SetCap || acts[0].CapPct != 30 {
		t.Fatalf("drained VM: got %+v, want cap 30", acts)
	}
	sig.CapPct = 25 // back at contract
	acts = c.Step(7, []Signals{sig})
	if len(acts) != 0 {
		t.Fatalf("at contract: got %+v, want nothing", acts)
	}
}

// TestDittoPolicyTriggersOnAttribution: ditto grows only when the
// ledger attributes the interval to the VM's own cap — a queue caused
// by contention (no capped time) must not trigger a cap raise.
func TestDittoPolicyTriggersOnAttribution(t *testing.T) {
	c := NewController(mustPolicy(t, "ditto", Params{CappedHighPermille: 250}))
	base := Signals{Name: "v", CapPct: 20, BaseCapPct: 20, HeadroomPct: 50,
		Queue: 10, Replicas: 1, IntervalUs: 1_000_000}

	throttled := base
	throttled.CappedUs = 400_000
	c2 := NewController(mustPolicy(t, "ditto", Params{CappedHighPermille: 250}))
	_ = c2.Step(1, []Signals{base}) // seed history: capped delta 0
	throttledStep := c2.Step(2, []Signals{throttled})
	if len(throttledStep) != 1 || throttledStep[0].Kind != SetCap {
		t.Fatalf("throttled VM: got %+v, want cap raise", throttledStep)
	}

	contended := base // queue without capped time: not ours to fix
	if acts := c.Step(1, []Signals{contended}); len(acts) != 0 {
		t.Fatalf("contended VM: got %+v, want nothing", acts)
	}
}

// TestControllerDeltasAndSweep: queue deltas come from the previous
// barrier, and history for vanished VMs is swept.
func TestControllerDeltasAndSweep(t *testing.T) {
	c := NewController(mustPolicy(t, "queue", Params{}))
	sigs := []Signals{{Name: "a", Queue: 5}, {Name: "b", Queue: 3}}
	c.Step(1, sigs)
	sigs = []Signals{{Name: "a", Queue: 9}}
	c.Step(2, sigs)
	if sigs[0].QueueDelta != 4 {
		t.Fatalf("queue delta = %d, want 4", sigs[0].QueueDelta)
	}
	if _, ok := c.prev["b"]; ok {
		t.Fatal("history for departed VM not swept")
	}
	// A VM re-appearing after a sweep starts with a zero delta.
	sigs = []Signals{{Name: "b", Queue: 7}}
	c.Step(3, sigs)
	if sigs[0].QueueDelta != 0 {
		t.Fatalf("resurrected VM delta = %d, want 0", sigs[0].QueueDelta)
	}
}
