package multicore

import (
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// buildContendedCluster is the cluster-scale contended scenario of the
// host equivalence suite: every core hosts 2-4 runnable VMs (hard-capped
// hogs plus a web VM), under per-socket DVFS so coordination and
// compensation interleave with the batching.
func buildContendedCluster(t *testing.T, scheduler string, reference bool) *Cluster {
	t.Helper()
	prof := cpufreq.Optiplex755()
	c, err := New(Config{
		Profile:   prof,
		Cores:     3,
		Domain:    PerSocket,
		Scheduler: scheduler,
		Reference: reference,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxTp, err := prof.Throughput(prof.Max())
	if err != nil {
		t.Fatal(err)
	}
	id := vm.ID(1)
	addHog := func(core int, credit float64) {
		t.Helper()
		v, err := vm.New(id, vm.Config{Name: "hog", Credit: credit})
		if err != nil {
			t.Fatal(err)
		}
		id++
		v.SetWorkload(&workload.Hog{})
		if err := c.AddVM(core, v); err != nil {
			t.Fatal(err)
		}
	}
	addWeb := func(core int, credit, pct float64, start, end sim.Time, seed uint64) {
		t.Helper()
		w, err := workload.NewWebApp(workload.WebAppConfig{
			Phases: workload.ThreePhase(start, end,
				workload.ExactRate(maxTp, pct, workload.DefaultRequestCost)),
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, err := vm.New(id, vm.Config{Name: "web", Credit: credit})
		if err != nil {
			t.Fatal(err)
		}
		id++
		v.SetWorkload(w)
		if err := c.AddVM(core, v); err != nil {
			t.Fatal(err)
		}
	}
	// Core 0: 3 hogs + a web VM (4 runnable at peak).
	addHog(0, 20)
	addHog(0, 25)
	addHog(0, 15)
	addWeb(0, 10, 8, 5*sim.Second, 20*sim.Second, 1)
	// Core 1: 2 hogs (steady contention).
	addHog(1, 30)
	addHog(1, 40)
	// Core 2: a hog + 2 web VMs (churning runnable set).
	addHog(2, 25)
	addWeb(2, 20, 15, 2*sim.Second, 18*sim.Second, 2)
	addWeb(2, 15, 10, 8*sim.Second, 25*sim.Second, 3)
	return c
}

// TestClusterBatchedEquivalence extends the host-level trace equivalence
// checks to a multicore.Cluster: the batched cluster and the reference
// cluster must produce bit-identical traces on every core — no
// tolerances, since busy time, work and energy are exact integer
// accounting. The credit cores batch through Credit's rotation patterns
// under compensated caps; the credit2 cores batch through the
// closed-form smallest-vruntime merge with the coordinator driving DVFS
// alone.
func TestClusterBatchedEquivalence(t *testing.T) {
	for _, scheduler := range []string{"credit", "credit2"} {
		scheduler := scheduler
		t.Run(scheduler, func(t *testing.T) {
			t.Parallel()
			const horizon = 30 * sim.Second
			batched := buildContendedCluster(t, scheduler, false)
			reference := buildContendedCluster(t, scheduler, true)
			if err := batched.Run(horizon); err != nil {
				t.Fatal(err)
			}
			if err := reference.Run(horizon); err != nil {
				t.Fatal(err)
			}
			assertClusterEquivalence(t, batched, reference)
		})
	}
}

// assertClusterEquivalence compares the batched and reference clusters
// core by core.
func assertClusterEquivalence(t *testing.T, batched, reference *Cluster) {
	t.Helper()
	var batchedQuanta int64
	for i := 0; i < batched.Cores(); i++ {
		h, err := batched.CoreHost(i)
		if err != nil {
			t.Fatal(err)
		}
		batchedQuanta += h.Engine().BatchedQuanta()
		rh, err := reference.CoreHost(i)
		if err != nil {
			t.Fatal(err)
		}
		if n := rh.Engine().BatchedQuanta(); n != 0 {
			t.Fatalf("reference core %d batched %d quanta", i, n)
		}
	}
	if batchedQuanta == 0 {
		t.Fatal("batching never engaged; the comparison is vacuous")
	}
	t.Logf("cluster batched %d quanta across %d cores", batchedQuanta, batched.Cores())

	if got, want := batched.TotalEnergy(), reference.TotalEnergy(); got != want {
		t.Errorf("TotalEnergy: batched %+v reference %+v", got, want)
	}
	for i := 0; i < batched.Cores(); i++ {
		bh, _ := batched.CoreHost(i)
		rh, _ := reference.CoreHost(i)
		if got, want := bh.CumulativeBusy(), rh.CumulativeBusy(); got != want {
			t.Errorf("core %d CumulativeBusy: batched %v reference %v", i, got, want)
		}
		if got, want := bh.CumulativeWork(), rh.CumulativeWork(); got != want {
			t.Errorf("core %d CumulativeWork: batched %v reference %v", i, got, want)
		}
		bf, _ := batched.CoreFreq(i)
		rf, _ := reference.CoreFreq(i)
		if bf != rf {
			t.Errorf("core %d frequency: batched %v reference %v", i, bf, rf)
		}
		for _, v := range rh.VMs() {
			if got, want := bh.VMBusy(v.ID()), rh.VMBusy(v.ID()); got != want {
				t.Errorf("core %d VMBusy(%d): batched %v reference %v", i, v.ID(), got, want)
			}
		}
		refSeries := rh.Recorder().Names()
		gotSeries := bh.Recorder().Names()
		if len(refSeries) != len(gotSeries) {
			t.Fatalf("core %d series sets differ: batched %v reference %v", i, gotSeries, refSeries)
		}
		for _, name := range refSeries {
			want := rh.Recorder().Series(name)
			got := bh.Recorder().Series(name)
			if want.Len() != got.Len() {
				t.Errorf("core %d series %s: %d vs %d points", i, name, got.Len(), want.Len())
				continue
			}
			for j := range want.T {
				if got.T[j] != want.T[j] {
					t.Errorf("core %d series %s[%d]: time %v vs %v", i, name, j, got.T[j], want.T[j])
					break
				}
				if got.V[j] != want.V[j] {
					t.Errorf("core %d series %s[%d]@%v: batched %v reference %v",
						i, name, j, got.T[j], got.V[j], want.V[j])
					break
				}
			}
		}
	}
}
