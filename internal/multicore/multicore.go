// Package multicore extends the single-core reproduction toward the
// paper's stated perspective: "we plan to extend our scheduler and take
// into account other technology factors such as hyper-threading,
// multi-core, per-socket DVFS, and per-core DVFS" (Section 7).
//
// The model is a cluster of cores, each a full simulated host (scheduler,
// VMs, meters) with VMs pinned to cores. A cluster-level PAS coordinator
// replaces the per-host governor:
//
//   - with per-core DVFS, every core independently runs the PAS loop:
//     lowest frequency absorbing the core's absolute load, credits
//     compensated per core;
//   - with per-socket DVFS, all cores share one frequency domain. The
//     coordinator computes each core's desired frequency and applies the
//     maximum across cores (the domain must satisfy its hungriest core);
//     credits on every core are compensated for the shared frequency.
//
// The energy comparison between the two policies under asymmetric load is
// the extension's headline result: per-core DVFS strictly dominates
// per-socket DVFS, and both preserve every VM's absolute credit.
package multicore

import (
	"fmt"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/engine"
	"pasched/internal/host"
	"pasched/internal/sched"
	"pasched/internal/sim"
	"pasched/internal/vm"
)

// DVFSDomain selects the frequency-domain granularity.
type DVFSDomain int

// Frequency domain granularities.
const (
	// PerCore gives every core an independent frequency.
	PerCore DVFSDomain = iota + 1
	// PerSocket shares one frequency across all cores.
	PerSocket
)

// String renders the domain granularity.
func (d DVFSDomain) String() string {
	switch d {
	case PerCore:
		return "per-core"
	case PerSocket:
		return "per-socket"
	default:
		return "unknown"
	}
}

// Config configures a Cluster.
type Config struct {
	// Profile is the per-core architecture. Required.
	Profile *cpufreq.Profile
	// Cores is the number of cores; at least 1.
	Cores int
	// Domain selects per-core or per-socket DVFS. Default PerCore.
	Domain DVFSDomain
	// Step is the lockstep coordination interval; default 100 ms.
	Step sim.Time
	// SettleSteps is how many coordination steps a core's frequency is
	// left alone after a change (the same measurement-misattribution
	// guard as core.PASConfig.SettleTime). Default 4.
	SettleSteps int
	// CapacityMargin is the PAS capacity margin; default 0.02.
	CapacityMargin float64
	// Scheduler selects the per-core VM scheduler: "credit" (default) is
	// the fix-credit scheduler whose caps the coordinator compensates at
	// reduced frequencies; "credit2" is the weight-proportional
	// work-conserving scheduler — a variable-credit scheduler in the
	// paper's taxonomy, which needs no compensation, so the coordinator
	// only drives the DVFS policy.
	Scheduler string
	// Workers bounds how many cores step concurrently between
	// coordination barriers. Cores are fully independent hosts (own
	// engine, scheduler, meters), so the result is identical for any
	// worker count. Zero selects GOMAXPROCS; 1 forces sequential
	// stepping.
	Workers int
	// Reference forces every core onto the reference quantum-by-quantum
	// stepping path (host.Config.Reference), the baseline the cluster's
	// batched==reference equivalence tests compare against.
	Reference bool
}

// coreState is one core: a single-core host plus coordination state.
type coreState struct {
	host        *host.Host
	cpu         *cpufreq.CPU
	capper      sched.CapSetter // nil when the scheduler has no caps to compensate
	initCredit  map[vm.ID]float64
	settleUntil int // coordination step index
}

// Cluster is a multi-core host under cluster-level PAS coordination.
type Cluster struct {
	cfg   Config
	cf    []float64
	cores []*coreState
	now   sim.Time
	step  int
}

// New builds a cluster of identical cores, each with its own Credit
// scheduler, coordinated by the configured DVFS policy.
func New(cfg Config) (*Cluster, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("multicore: profile is required")
	}
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("multicore: need at least 1 core, got %d", cfg.Cores)
	}
	if cfg.Domain == 0 {
		cfg.Domain = PerCore
	}
	if cfg.Domain != PerCore && cfg.Domain != PerSocket {
		return nil, fmt.Errorf("multicore: unknown DVFS domain %d", cfg.Domain)
	}
	if cfg.Step == 0 {
		cfg.Step = 100 * sim.Millisecond
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("multicore: step must be positive, got %v", cfg.Step)
	}
	if cfg.SettleSteps == 0 {
		cfg.SettleSteps = 4
	}
	if cfg.SettleSteps < 0 {
		return nil, fmt.Errorf("multicore: negative settle steps %d", cfg.SettleSteps)
	}
	if cfg.CapacityMargin == 0 {
		cfg.CapacityMargin = 0.02
	}
	if cfg.CapacityMargin < 0 {
		return nil, fmt.Errorf("multicore: negative capacity margin %v", cfg.CapacityMargin)
	}
	if cfg.Workers == 0 {
		cfg.Workers = engine.DefaultWorkers()
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("multicore: negative worker count %d", cfg.Workers)
	}
	if cfg.Scheduler == "" {
		cfg.Scheduler = "credit"
	}
	if cfg.Scheduler != "credit" && cfg.Scheduler != "credit2" {
		return nil, fmt.Errorf("multicore: unknown scheduler %q (credit, credit2)", cfg.Scheduler)
	}
	c := &Cluster{cfg: cfg, cf: cfg.Profile.EfficiencyTable()}
	for i := 0; i < cfg.Cores; i++ {
		cpu, err := cpufreq.NewCPU(cfg.Profile)
		if err != nil {
			return nil, fmt.Errorf("multicore: core %d: %w", i, err)
		}
		var s sched.Scheduler
		var capper sched.CapSetter
		if cfg.Scheduler == "credit2" {
			s = sched.NewCredit2()
		} else {
			credit := sched.NewCredit(sched.CreditConfig{})
			s, capper = credit, credit
		}
		h, err := host.New(host.Config{CPU: cpu, Scheduler: s, Reference: cfg.Reference})
		if err != nil {
			return nil, fmt.Errorf("multicore: core %d: %w", i, err)
		}
		c.cores = append(c.cores, &coreState{
			host:       h,
			cpu:        cpu,
			capper:     capper,
			initCredit: make(map[vm.ID]float64),
		})
	}
	return c, nil
}

// Cores returns the number of cores.
func (c *Cluster) Cores() int { return len(c.cores) }

// Now returns the cluster's simulated time.
func (c *Cluster) Now() sim.Time { return c.now }

// AddVM pins a VM to the given core. VM IDs must be unique per core.
func (c *Cluster) AddVM(coreIdx int, v *vm.VM) error {
	if coreIdx < 0 || coreIdx >= len(c.cores) {
		return fmt.Errorf("multicore: core index %d out of range [0,%d)", coreIdx, len(c.cores))
	}
	cs := c.cores[coreIdx]
	if err := cs.host.AddVM(v); err != nil {
		return fmt.Errorf("multicore: %w", err)
	}
	if cs.capper != nil {
		// Initial credits are recorded only to be compensated (equation
		// 4); a cap-less scheduler (credit2) never consults them.
		cs.initCredit[v.ID()] = v.Credit()
	}
	return nil
}

// CoreHost exposes the host of one core (its recorder, energy meter, VMs).
func (c *Cluster) CoreHost(coreIdx int) (*host.Host, error) {
	if coreIdx < 0 || coreIdx >= len(c.cores) {
		return nil, fmt.Errorf("multicore: core index %d out of range [0,%d)", coreIdx, len(c.cores))
	}
	return c.cores[coreIdx].host, nil
}

// CoreFreq returns the current frequency of one core.
func (c *Cluster) CoreFreq(coreIdx int) (cpufreq.Freq, error) {
	if coreIdx < 0 || coreIdx >= len(c.cores) {
		return 0, fmt.Errorf("multicore: core index %d out of range [0,%d)", coreIdx, len(c.cores))
	}
	return c.cores[coreIdx].cpu.Freq(), nil
}

// TotalEnergy returns the exact integer energy consumed across all
// cores: an integer sum of the per-core meters, so the reduction order is
// irrelevant by construction.
func (c *Cluster) TotalEnergy() energy.Energy {
	var sum energy.Energy
	for _, cs := range c.cores {
		sum = sum.Add(cs.host.Energy().Total())
	}
	return sum
}

// TotalJoules returns the energy consumed across all cores, as the float
// report edge of TotalEnergy.
func (c *Cluster) TotalJoules() float64 { return c.TotalEnergy().Joules() }

// Run advances the whole cluster by d, coordinating DVFS at every step.
// Between coordination barriers the cores are independent machines, so
// they step concurrently on the engine's worker pool; the PAS
// coordination itself runs sequentially at the barrier.
func (c *Cluster) Run(d sim.Time) error {
	target := c.now + d
	tasks := make([]func() error, len(c.cores))
	for c.now < target {
		next := c.now + c.cfg.Step
		if next > target {
			next = target
		}
		for i, cs := range c.cores {
			i, cs := i, cs
			tasks[i] = func() error {
				if err := cs.host.RunUntil(next); err != nil {
					return fmt.Errorf("multicore: core %d: %w", i, err)
				}
				return nil
			}
		}
		if err := engine.RunParallel(c.cfg.Workers, tasks); err != nil {
			return err
		}
		c.now = next
		c.step++
		c.coordinate()
	}
	return nil
}

// desiredFreq computes the PAS target frequency for one core.
func (c *Cluster) desiredFreq(cs *coreState) cpufreq.Freq {
	prof := cs.cpu.Profile()
	idx, err := prof.Index(cs.cpu.Freq())
	if err != nil {
		return prof.Max()
	}
	cf := c.cf[idx]
	abs := core.AbsoluteLoad(cs.host.GlobalLoad()*100, cs.cpu.Ratio(), cf)
	return core.ComputeNewFreq(prof, c.cf, abs*(1+c.cfg.CapacityMargin))
}

// coordinate runs one cluster-level PAS iteration.
func (c *Cluster) coordinate() {
	switch c.cfg.Domain {
	case PerCore:
		for _, cs := range c.cores {
			if c.step < cs.settleUntil {
				continue
			}
			c.apply(cs, c.desiredFreq(cs))
		}
	case PerSocket:
		// The socket serves its hungriest core. Settling is per-socket:
		// if any core recently transitioned, hold.
		for _, cs := range c.cores {
			if c.step < cs.settleUntil {
				return
			}
		}
		want := c.cores[0].cpu.Profile().Min()
		for _, cs := range c.cores {
			if f := c.desiredFreq(cs); f > want {
				want = f
			}
		}
		for _, cs := range c.cores {
			c.apply(cs, want)
		}
	}
}

// apply sets one core's frequency and compensates its VMs' credits
// (equation 4), exactly as the single-core PAS does. Cores running a
// scheduler without caps (Credit2) skip the compensation: a
// work-conserving weight-proportional scheduler preserves relative shares
// at any frequency on its own.
func (c *Cluster) apply(cs *coreState, f cpufreq.Freq) {
	prof := cs.cpu.Profile()
	idx, err := prof.Index(f)
	if err != nil {
		return
	}
	ratio := prof.Ratio(f)
	cf := c.cf[idx]
	if cs.capper != nil {
		for id, init := range cs.initCredit {
			if init <= 0 {
				continue
			}
			// A failed compensation or a rejected cap would silently leave
			// the VM capped for the old frequency. init > 0 was checked,
			// ratio and cf come from the validated ladder, and every id was
			// registered via AddVM, so both are impossible; enforce it.
			newCredit, err := core.CompensatedCredit(init, ratio, cf)
			if err != nil {
				panic(fmt.Sprintf("multicore: recompensation for VM %d (init %v, ratio %v, cf %v): %v",
					id, init, ratio, cf, err))
			}
			if err := cs.capper.SetCap(id, newCredit); err != nil {
				panic(fmt.Sprintf("multicore: recompensated cap for VM %d rejected: %v", id, err))
			}
		}
	}
	if f != cs.cpu.Freq() {
		_ = cs.cpu.SetFreq(f, c.now) // ladder-validated above
		cs.settleUntil = c.step + c.cfg.SettleSteps
	}
}
