package multicore

import (
	"math"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	prof := cpufreq.Optiplex755()
	tests := []struct {
		name string
		cfg  Config
	}{
		{"no profile", Config{Cores: 2}},
		{"zero cores", Config{Profile: prof}},
		{"bad domain", Config{Profile: prof, Cores: 1, Domain: DVFSDomain(9)}},
		{"negative step", Config{Profile: prof, Cores: 1, Step: -1}},
		{"negative settle", Config{Profile: prof, Cores: 1, SettleSteps: -1}},
		{"negative margin", Config{Profile: prof, Cores: 1, CapacityMargin: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
}

func TestDomainString(t *testing.T) {
	if PerCore.String() != "per-core" || PerSocket.String() != "per-socket" {
		t.Error("domain strings wrong")
	}
	if DVFSDomain(0).String() != "unknown" {
		t.Error("unknown domain string wrong")
	}
}

// buildAsymmetric builds a 2-core cluster: core 0 hosts a thrashing
// 20%-credit VM, core 1 hosts a thrashing 70%-credit VM.
func buildAsymmetric(t *testing.T, domain DVFSDomain) *Cluster {
	t.Helper()
	c, err := New(Config{Profile: cpufreq.Optiplex755(), Cores: 2, Domain: domain})
	if err != nil {
		t.Fatal(err)
	}
	v20, err := vm.New(1, vm.Config{Name: "V20", Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	v20.SetWorkload(&workload.Hog{})
	if err := c.AddVM(0, v20); err != nil {
		t.Fatal(err)
	}
	v70, err := vm.New(2, vm.Config{Name: "V70", Credit: 70})
	if err != nil {
		t.Fatal(err)
	}
	v70.SetWorkload(&workload.Hog{})
	if err := c.AddVM(1, v70); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPerCoreDVFSSelectsIndependentFrequencies(t *testing.T) {
	c := buildAsymmetric(t, PerCore)
	if err := c.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	f0, err := c.CoreFreq(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := c.CoreFreq(1)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 (20% absolute demand) runs at the minimum; core 1 (70%
	// absolute) needs 2133 MHz (capacity 80%).
	if f0 != 1600 {
		t.Errorf("core 0 frequency = %v, want 1600", f0)
	}
	if f1 != 2133 {
		t.Errorf("core 1 frequency = %v, want 2133", f1)
	}
}

func TestPerSocketDVFSSharesTheHungriestFrequency(t *testing.T) {
	c := buildAsymmetric(t, PerSocket)
	if err := c.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	f0, err := c.CoreFreq(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := c.CoreFreq(1)
	if err != nil {
		t.Fatal(err)
	}
	if f0 != f1 {
		t.Fatalf("per-socket cores diverged: %v vs %v", f0, f1)
	}
	if f0 != 2133 {
		t.Errorf("socket frequency = %v, want 2133 (the hungriest core's need)", f0)
	}
}

func TestCreditsCompensatedOnEveryCore(t *testing.T) {
	// Under both policies each VM must receive exactly its absolute
	// credit — the PAS invariant carried to multi-core.
	for _, domain := range []DVFSDomain{PerCore, PerSocket} {
		domain := domain
		t.Run(domain.String(), func(t *testing.T) {
			c := buildAsymmetric(t, domain)
			if err := c.Run(30 * sim.Second); err != nil {
				t.Fatal(err)
			}
			h0, err := c.CoreHost(0)
			if err != nil {
				t.Fatal(err)
			}
			abs20, _ := h0.Recorder().Series("V20_absolute_pct").MeanBetween(10, 30)
			if math.Abs(abs20-20) > 1 {
				t.Errorf("V20 absolute load = %.2f%%, want ~20%%", abs20)
			}
			h1, err := c.CoreHost(1)
			if err != nil {
				t.Fatal(err)
			}
			abs70, _ := h1.Recorder().Series("V70_absolute_pct").MeanBetween(10, 30)
			if math.Abs(abs70-70) > 1.5 {
				t.Errorf("V70 absolute load = %.2f%%, want ~70%%", abs70)
			}
		})
	}
}

func TestPerCoreDVFSBeatsPerSocketOnEnergy(t *testing.T) {
	// The extension's headline: with asymmetric per-core loads, per-core
	// DVFS strictly dominates per-socket DVFS on energy.
	perCore := buildAsymmetric(t, PerCore)
	if err := perCore.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	perSocket := buildAsymmetric(t, PerSocket)
	if err := perSocket.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	jc, js := perCore.TotalJoules(), perSocket.TotalJoules()
	if jc >= js {
		t.Errorf("per-core energy %.1fJ not below per-socket %.1fJ", jc, js)
	}
}

func TestAddVMAndAccessorErrors(t *testing.T) {
	c, err := New(Config{Profile: cpufreq.Optiplex755(), Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(1, vm.Config{Credit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVM(5, v); err == nil {
		t.Error("AddVM(out of range) succeeded")
	}
	if err := c.AddVM(-1, v); err == nil {
		t.Error("AddVM(-1) succeeded")
	}
	if _, err := c.CoreHost(9); err == nil {
		t.Error("CoreHost(9) succeeded")
	}
	if _, err := c.CoreFreq(9); err == nil {
		t.Error("CoreFreq(9) succeeded")
	}
	if c.Cores() != 1 {
		t.Errorf("Cores() = %d", c.Cores())
	}
}

func TestClusterClockAdvances(t *testing.T) {
	c, err := New(Config{Profile: cpufreq.Optiplex755(), Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1500 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 1500*sim.Millisecond {
		t.Errorf("Now = %v, want 1.5s", c.Now())
	}
	// Both cores advanced in lockstep.
	for i := 0; i < 2; i++ {
		h, err := c.CoreHost(i)
		if err != nil {
			t.Fatal(err)
		}
		if h.Now() != 1500*sim.Millisecond {
			t.Errorf("core %d clock = %v, want 1.5s", i, h.Now())
		}
	}
}
