// Package fleet simulates a heterogeneous hosting center at datacenter
// scale: hundreds to thousands of physical machines of several hardware
// classes (different core ladders, power curves and memory sizes), fed by
// a VM lifecycle trace — VMs arrive, run a demand profile for a
// heavy-tailed lifetime, and depart. A pluggable placement policy decides
// which machine hosts each arrival (and where consolidation migrates
// running VMs), machines power on and off with the population, and the
// fleet reports cluster-level energy, active-machine and SLA curves.
//
// It is the Section 2.3 scenario of the paper — dynamic consolidation
// packing VMs onto a minimal set of machines and switching the rest off —
// grown to the scale the shared simulation engine (internal/engine) was
// built for: every machine is a full simulated host (internal/host)
// running PAS or fix-credit, machines advance independently between
// fleet-level events so event-horizon batching folds the long
// uninterrupted stretches, and all machines synchronize only at
// reporting barriers.
//
// Execution is sharded: machine i belongs to shard i % Shards, each
// shard owning its hosts, departure heap and RNG stream, stepped by a
// persistent worker. The event loop itself is a sequential control
// plane — placement, consolidation planning and migration bookkeeping
// run on the coordinator against bookkeeping-only MachineState — that
// dispatches host work to shards as timestamped commands; cross-shard
// migrations hand the VM off in (time, dispatch-sequence) order. All
// reduced quantities are exact integers (sim.Work, energy.Energy), so
// the machine → shard → fleet reduction is order-independent and the
// report is bit-identical for every shard and worker count. Results
// can be streamed through Sink instead of (or alongside) the buffered
// Report, keeping memory proportional to machines + live VMs.
package fleet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// ReferenceThroughput is the work-unit throughput against which trace
// demand percentages are expressed: the paper's DELL Optiplex 755 at its
// maximum frequency (2667 MHz at full efficiency). Demand is absolute
// work, so a VM's trace means the same load on every machine class; what
// changes across classes is how much absolute capacity the VM's credit
// buys.
const ReferenceThroughput = 2667e6

// maxTraceSeconds bounds every time field a trace may carry, keeping
// parsed values far from sim.Time overflow (the parser is an external
// input surface; see the fuzz tests).
const maxTraceSeconds = 1e9

// VMClass is one class of VMs in a trace: the credit (SLA) and memory
// footprint every VM of the class is created with.
type VMClass struct {
	// Name identifies the class within the trace.
	Name string
	// CreditPct is the CPU credit (SLA) in (0, 100].
	CreditPct float64
	// MemoryMB is the VM memory footprint (the packing constraint).
	MemoryMB int
}

// Validate checks the class invariants.
func (c VMClass) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("fleet: VM class without a name")
	}
	if !isFinite(c.CreditPct) || c.CreditPct <= 0 || c.CreditPct > 100 {
		return fmt.Errorf("fleet: class %s: credit %v outside (0,100]", c.Name, c.CreditPct)
	}
	if c.MemoryMB <= 0 {
		return fmt.Errorf("fleet: class %s: memory %d not positive", c.Name, c.MemoryMB)
	}
	return nil
}

// VMEvent is one VM lifecycle in the trace: the VM arrives at Arrive,
// offers its demand profile, and departs Lifetime later (or at the run
// horizon, whichever comes first).
type VMEvent struct {
	// Name labels the VM; unique within the trace.
	Name string
	// Class names the VMClass the VM is created from.
	Class string
	// Arrive is the arrival time.
	Arrive sim.Time
	// Lifetime is how long the VM stays before departing.
	Lifetime sim.Time
	// Activity is the mean fraction of the credit the VM's workload
	// demands, in [0, 1]. When Demand is nil the VM offers a constant
	// CreditPct x Activity percent of ReferenceThroughput for its whole
	// lifetime.
	Activity float64
	// Demand optionally carries a piecewise request-rate profile in
	// absolute simulated time (requests per second at
	// workload.DefaultRequestCost each), overriding the constant profile
	// derived from Activity. The synthetic generator fills it with
	// diurnal segments.
	Demand []workload.Phase
}

// Trace is a VM lifecycle trace: the class catalogue and the arrival
// events in time order.
type Trace struct {
	// Classes catalogues the VM classes by name.
	Classes map[string]VMClass
	// Events holds the VM lifecycles sorted by (Arrive, Name).
	Events []VMEvent
	// Horizon is the nominal end of the trace. Events arrive strictly
	// before it; lifetimes may extend past it (the fleet truncates them
	// at its run horizon).
	Horizon sim.Time
}

// Validate checks the whole trace: classes valid, events sorted and
// unique, every event referencing a known class with sane times.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("fleet: nil trace")
	}
	if t.Horizon <= 0 {
		return fmt.Errorf("fleet: trace horizon %v not positive", t.Horizon)
	}
	if len(t.Events) == 0 {
		return fmt.Errorf("fleet: trace without VM events")
	}
	for _, c := range t.Classes {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	seen := make(map[string]bool, len(t.Events))
	for i, ev := range t.Events {
		if ev.Name == "" {
			return fmt.Errorf("fleet: event %d without a VM name", i)
		}
		if seen[ev.Name] {
			return fmt.Errorf("fleet: duplicate VM name %q", ev.Name)
		}
		seen[ev.Name] = true
		if _, ok := t.Classes[ev.Class]; !ok {
			return fmt.Errorf("fleet: VM %s references unknown class %q", ev.Name, ev.Class)
		}
		if ev.Arrive < 0 || ev.Arrive >= t.Horizon {
			return fmt.Errorf("fleet: VM %s arrives at %v, outside [0, %v)", ev.Name, ev.Arrive, t.Horizon)
		}
		if ev.Lifetime <= 0 {
			return fmt.Errorf("fleet: VM %s lifetime %v not positive", ev.Name, ev.Lifetime)
		}
		if !isFinite(ev.Activity) || ev.Activity < 0 || ev.Activity > 1 {
			return fmt.Errorf("fleet: VM %s activity %v outside [0,1]", ev.Name, ev.Activity)
		}
		if i > 0 {
			prev := t.Events[i-1]
			if ev.Arrive < prev.Arrive || (ev.Arrive == prev.Arrive && ev.Name < prev.Name) {
				return fmt.Errorf("fleet: events not sorted by (arrive, name) at index %d", i)
			}
		}
	}
	return nil
}

// sortEvents puts the events into the canonical (Arrive, Name) order.
func (t *Trace) sortEvents() {
	sort.Slice(t.Events, func(i, j int) bool {
		if t.Events[i].Arrive != t.Events[j].Arrive {
			return t.Events[i].Arrive < t.Events[j].Arrive
		}
		return t.Events[i].Name < t.Events[j].Name
	})
}

// ParseTrace reads a fleet trace from r, mirroring workload.ParseTrace's
// conventions: one record per line, fields comma-separated, '#' comments
// and blank lines ignored, CRLF tolerated. Three record kinds exist:
//
//	horizon,<seconds>
//	class,<name>,<credit_pct>,<memory_mb>
//	vm,<name>,<arrive_s>,<lifetime_s>,<class>,<activity>
//
// Records may appear in any order; events are sorted by arrival time. The
// parsed trace is fully validated before it is returned.
func ParseTrace(r io.Reader) (*Trace, error) {
	t := &Trace{Classes: make(map[string]VMClass)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		switch parts[0] {
		case "horizon":
			if len(parts) != 2 {
				return nil, fmt.Errorf("fleet: trace line %d: want 'horizon,seconds', got %q", line, text)
			}
			secs, err := parseSeconds(parts[1])
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			if t.Horizon != 0 {
				return nil, fmt.Errorf("fleet: trace line %d: duplicate horizon", line)
			}
			t.Horizon = sim.FromSeconds(secs)
		case "class":
			if len(parts) != 4 {
				return nil, fmt.Errorf("fleet: trace line %d: want 'class,name,credit_pct,memory_mb', got %q", line, text)
			}
			credit, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			mem, err := strconv.Atoi(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			c := VMClass{Name: parts[1], CreditPct: credit, MemoryMB: mem}
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			if _, dup := t.Classes[c.Name]; dup {
				return nil, fmt.Errorf("fleet: trace line %d: duplicate class %q", line, c.Name)
			}
			t.Classes[c.Name] = c
		case "vm":
			if len(parts) != 6 {
				return nil, fmt.Errorf("fleet: trace line %d: want 'vm,name,arrive_s,lifetime_s,class,activity', got %q", line, text)
			}
			arrive, err := parseSeconds(parts[2])
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			lifetime, err := parseSeconds(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			activity, err := strconv.ParseFloat(parts[5], 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: trace line %d: %w", line, err)
			}
			t.Events = append(t.Events, VMEvent{
				Name:     parts[1],
				Class:    parts[4],
				Arrive:   sim.FromSeconds(arrive),
				Lifetime: sim.FromSeconds(lifetime),
				Activity: activity,
			})
		default:
			return nil, fmt.Errorf("fleet: trace line %d: unknown record %q", line, parts[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: read trace: %w", err)
	}
	t.sortEvents()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteCSV writes the trace in the format ParseTrace reads, so generated
// traces can be saved, inspected and replayed. Piecewise Demand profiles
// are not serialized (the CSV carries the scalar Activity; a replayed
// trace offers the equivalent constant profile). The output is
// byte-identical to streaming the trace through WriteCSVStream.
func (t *Trace) WriteCSV(w io.Writer) error {
	return WriteCSVStream(t.Source(), w)
}

// demandPhases returns the event's request-rate profile in absolute time:
// the explicit Demand when present, otherwise a single constant-rate
// phase covering the lifetime, derived from Activity.
func (ev VMEvent) demandPhases(class VMClass, until sim.Time) []workload.Phase {
	end := ev.Arrive + ev.Lifetime
	if end > until {
		end = until
	}
	if len(ev.Demand) > 0 {
		out := make([]workload.Phase, 0, len(ev.Demand))
		for _, ph := range ev.Demand {
			if ph.Start >= end {
				break
			}
			if ph.End > end {
				ph.End = end
			}
			out = append(out, ph)
		}
		return out
	}
	if ev.Activity <= 0 || end <= ev.Arrive {
		return nil
	}
	rate := workload.ExactRate(ReferenceThroughput, class.CreditPct*ev.Activity, workload.DefaultRequestCost)
	return []workload.Phase{{Start: ev.Arrive, End: end, Rate: rate}}
}

// parseSeconds parses a non-negative, bounded seconds value. The bound
// keeps sim.FromSeconds far away from integer overflow on hostile input.
func parseSeconds(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if !isFinite(v) || v < 0 || v > maxTraceSeconds {
		return 0, fmt.Errorf("seconds %v outside [0, %g]", v, maxTraceSeconds)
	}
	return v, nil
}

// formatSeconds renders a sim.Time as seconds with full precision.
func formatSeconds(t sim.Time) string {
	return strconv.FormatFloat(t.Seconds(), 'g', -1, 64)
}

// isFinite reports whether v is neither NaN nor infinite.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
