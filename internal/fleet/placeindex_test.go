package fleet

import (
	"fmt"
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// idxHarness drives a placement index and the linear-scan oracle
// through the same mutation discipline the fleet uses: reserve/release
// in pairs, power-on on placement, and the barrier power-off that snaps
// an emptied machine back to pristine capacity. Every query asserts the
// index and the oracle return the identical decision.
type idxHarness struct {
	pol      Policy
	states   []MachineState
	classOf  []int32
	specMem  []int
	caps     []float64
	pidx     placeIndex
	resident [][]Request
}

func newIdxHarness(pol Policy, counts []int) *idxHarness {
	specMem := []int{8192, 16384}
	caps := []float64{95, 92.5}
	profiles := []*cpufreq.Profile{cpufreq.Optiplex755(), cpufreq.XeonE5_2620()}
	names := []string{"optiplex", "xeon-e5"}
	h := &idxHarness{pol: pol, specMem: specMem, caps: caps}
	for ci, c := range counts {
		for k := 0; k < c; k++ {
			i := len(h.states)
			h.states = append(h.states, MachineState{
				Index:         i,
				Class:         names[ci],
				FreeMemMB:     specMem[ci],
				FreeCreditPct: caps[ci],
				Profile:       profiles[ci],
			})
			h.classOf = append(h.classOf, int32(ci))
		}
	}
	h.resident = make([][]Request, len(h.states))
	h.pidx = newPlaceIndex(pol, h.states, h.classOf, len(counts))
	return h
}

// place runs one differential query, applying the decision like the
// fleet's arrive does.
func (h *idxHarness) place(t *testing.T, r Request) {
	t.Helper()
	wantIdx, wantOK := h.pol.Place(h.states, r)
	gotIdx, gotOK := h.pidx.place(r)
	if gotIdx != wantIdx || gotOK != wantOK {
		t.Fatalf("%s: index decision (%d,%v) != linear scan (%d,%v) for %+v",
			h.pol.Name(), gotIdx, gotOK, wantIdx, wantOK, r)
	}
	if !wantOK {
		return
	}
	st := &h.states[wantIdx]
	if !st.On {
		st.On = true
		h.pidx.update(wantIdx)
	}
	st.FreeMemMB -= r.MemoryMB
	st.FreeCreditPct -= r.CreditPct
	st.OfferedLoadPct += r.CreditPct * r.MeanActivity
	h.pidx.update(wantIdx)
	h.resident[wantIdx] = append(h.resident[wantIdx], r)
}

// depart releases one resident request, leaving the machine on (the
// fleet's power-off grace until the next barrier).
func (h *idxHarness) depart(machine, slot int) {
	r := h.resident[machine][slot]
	rs := h.resident[machine]
	rs[slot] = rs[len(rs)-1]
	h.resident[machine] = rs[:len(rs)-1]
	st := &h.states[machine]
	st.FreeMemMB += r.MemoryMB
	st.FreeCreditPct += r.CreditPct
	st.OfferedLoadPct -= r.CreditPct * r.MeanActivity
	h.pidx.update(machine)
}

// barrier powers off empty machines, snapping them to pristine exactly
// like reportBarrier does.
func (h *idxHarness) barrier() {
	for i := range h.states {
		st := &h.states[i]
		if st.On && len(h.resident[i]) == 0 {
			ci := h.classOf[i]
			st.On = false
			st.FreeMemMB = h.specMem[ci]
			st.FreeCreditPct = h.caps[ci]
			st.OfferedLoadPct = 0
			h.pidx.update(i)
		}
	}
}

// churn runs a random mutate/query schedule against one policy.
func (h *idxHarness) churn(t *testing.T, rng *sim.RNG, ops int) {
	t.Helper()
	credits := []float64{5, 10, 12.5, 20, 33.4, 40}
	mems := []int{512, 1024, 2048, 4096}
	n := 0
	for _, rs := range h.resident {
		n += len(rs)
	}
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 6: // place
			r := Request{
				Name:         fmt.Sprintf("r%d", op),
				CreditPct:    credits[rng.Intn(len(credits))],
				MemoryMB:     mems[rng.Intn(len(mems))],
				MeanActivity: float64(rng.Intn(100)) / 100,
			}
			if rng.Intn(4) == 0 {
				// Fractional credits stress the best-fit headroom
				// rounding and its tie-walk.
				r.CreditPct = 1 + rng.Float64()*40
			}
			h.place(t, r)
		case k < 9: // depart a random resident VM
			m := rng.Intn(len(h.states))
			for probe := 0; probe < len(h.states); probe++ {
				if len(h.resident[m]) > 0 {
					h.depart(m, rng.Intn(len(h.resident[m])))
					break
				}
				m = (m + 1) % len(h.states)
			}
		default:
			h.barrier()
		}
	}
	h.barrier()
	// One final differential query per shape after the dust settles.
	for _, c := range credits {
		h.place(t, Request{Name: "fin", CreditPct: c, MemoryMB: 1024, MeanActivity: 0.5})
	}
}

func allPolicies() []Policy {
	return []Policy{NewFirstFit(), NewBestFit(), NewDVFSAware()}
}

// FuzzIndexedPlacement is the tentpole differential fuzz: random
// machine estates under random arrival/departure/power churn, with
// every placement decision of every built-in policy checked against the
// linear-scan oracle.
func FuzzIndexedPlacement(f *testing.F) {
	f.Add(uint64(1), uint8(6), uint8(4), uint8(80))
	f.Add(uint64(7), uint8(1), uint8(1), uint8(40))
	f.Add(uint64(42), uint8(30), uint8(0), uint8(200))
	f.Add(uint64(99), uint8(0), uint8(17), uint8(120))

	f.Fuzz(func(t *testing.T, seed uint64, nA, nB, ops uint8) {
		counts := []int{1 + int(nA)%32, int(nB) % 32}
		for _, pol := range allPolicies() {
			h := newIdxHarness(pol, counts)
			h.churn(t, sim.NewRNG(seed), 3+int(ops))
		}
	})
}

// TestPlacementIndexEquivalence is the randomized (non-fuzz) version at
// a scale the fuzz engine would not reach per input: hundreds of
// machines, thousands of operations, every policy.
func TestPlacementIndexEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 17, 1002} {
		for _, pol := range allPolicies() {
			h := newIdxHarness(pol, []int{160, 140})
			h.churn(t, sim.NewRNG(seed), 4000)
		}
	}
}

// benchEstate builds an n-machine estate with a consolidation-shaped
// power profile: a small on fraction carrying randomized partial loads,
// the rest off and pristine — the regime the placement indexes target.
func benchEstate(pol Policy, n int) (*idxHarness, []Request) {
	h := newIdxHarness(pol, []int{(n + 1) / 2, n / 2})
	rng := sim.NewRNG(12345)
	on := n / 64
	if on < 8 {
		on = 8
	}
	credits := []float64{5, 10, 12.5, 20, 40}
	mems := []int{512, 1024, 2048, 4096}
	for k := 0; k < on; k++ {
		i := k * (n / on)
		st := &h.states[i]
		st.On = true
		h.pidx.update(i)
		for v := rng.Intn(4); v >= 0; v-- {
			r := Request{CreditPct: credits[rng.Intn(len(credits))],
				MemoryMB: mems[rng.Intn(len(mems))], MeanActivity: rng.Float64()}
			if st.Fits(r) {
				st.FreeMemMB -= r.MemoryMB
				st.FreeCreditPct -= r.CreditPct
				st.OfferedLoadPct += r.CreditPct * r.MeanActivity
				h.pidx.update(i)
			}
		}
	}
	queries := make([]Request, 64)
	for qi := range queries {
		queries[qi] = Request{CreditPct: credits[rng.Intn(len(credits))],
			MemoryMB: mems[rng.Intn(len(mems))], MeanActivity: rng.Float64()}
	}
	return h, queries
}

// BenchmarkPlacement measures the production (indexed) placement path
// per query on a mostly-off estate; BenchmarkPlacementLinear is the
// same query load through the linear-scan oracle, so the two report the
// indexed speedup directly.
func BenchmarkPlacement(b *testing.B) {
	benchPlacement(b, func(h *idxHarness, r Request) (int, bool) { return h.pidx.place(r) })
}

func BenchmarkPlacementLinear(b *testing.B) {
	benchPlacement(b, func(h *idxHarness, r Request) (int, bool) { return h.pol.Place(h.states, r) })
}

func benchPlacement(b *testing.B, place func(*idxHarness, Request) (int, bool)) {
	for _, size := range []struct {
		name string
		n    int
	}{{"1k", 1000}, {"100k", 100000}} {
		for _, pol := range allPolicies() {
			b.Run(pol.Name()+"/"+size.name, func(b *testing.B) {
				h, queries := benchEstate(pol, size.n)
				placedOK := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := place(h, queries[i%len(queries)]); ok {
						placedOK++
					}
				}
				b.StopTimer()
				if placedOK == 0 {
					b.Fatal("no query placed anywhere: benchmark is vacuous")
				}
			})
		}
	}
}
