package fleet

import (
	"encoding/json"
	"fmt"
	"io"

	"pasched/internal/metrics"
)

// Interval is one reporting-barrier sample: what happened in the
// interval ending at TimeS.
type Interval struct {
	// TimeS is the end of the interval in simulated seconds.
	TimeS float64 `json:"time_s"`
	// Joules is the energy consumed by powered-on machines during the
	// interval.
	Joules float64 `json:"joules"`
	// AvgPowerW is Joules over the interval length.
	AvgPowerW float64 `json:"avg_power_w"`
	// ActiveMachines is the number of powered-on machines at the barrier
	// (before the barrier's power-offs).
	ActiveMachines int `json:"active_machines"`
	// LiveVMs is the number of VMs resident at the barrier.
	LiveVMs int `json:"live_vms"`
	// Arrivals, Departures, Rejected and Migrations count the interval's
	// lifecycle activity.
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Rejected   int `json:"rejected"`
	Migrations int `json:"migrations"`
	// DemandedWork and AttainedWork are the interval's SLA numerator and
	// denominator in work units, summed over every VM present.
	DemandedWork float64 `json:"demanded_work"`
	AttainedWork float64 `json:"attained_work"`
	// SLA is AttainedWork/DemandedWork (1 when nothing was demanded).
	SLA float64 `json:"sla"`
}

// VMOutcome is one VM's final SLA record.
type VMOutcome struct {
	Name    string  `json:"name"`
	Class   string  `json:"class"`
	Machine int     `json:"machine"` // final hosting machine
	ArriveS float64 `json:"arrive_s"`
	DepartS float64 `json:"depart_s"` // departure, or the horizon for still-live VMs
	// Departed is false for VMs still resident at the horizon.
	Departed     bool    `json:"departed"`
	DemandedWork float64 `json:"demanded_work"`
	AttainedWork float64 `json:"attained_work"`
	SLA          float64 `json:"sla"`
}

// Summary is the cluster-level outcome of one fleet run.
type Summary struct {
	Policy    string  `json:"policy"`
	Scheduler string  `json:"scheduler"` // "pas" or "fix-credit"
	Machines  int     `json:"machines"`
	HorizonS  float64 `json:"horizon_s"`

	Arrived  int `json:"arrived"`
	Departed int `json:"departed"`
	Rejected int `json:"rejected"`
	Migrated int `json:"migrated"`

	EverPoweredOn      int     `json:"ever_powered_on"`
	PowerOns           int     `json:"power_ons"`
	PowerOffs          int     `json:"power_offs"`
	PeakActiveMachines int     `json:"peak_active_machines"`
	MeanActiveMachines float64 `json:"mean_active_machines"`

	TotalJoules float64 `json:"total_joules"`
	MeanPowerW  float64 `json:"mean_power_w"`

	OverallSLA float64 `json:"overall_sla"`
	MeanVMSLA  float64 `json:"mean_vm_sla"`
	MinVMSLA   float64 `json:"min_vm_sla"`
	VMsBelow95 int     `json:"vms_below_95pct"`

	// BatchedQuanta and SteppedQuanta aggregate the engines'
	// introspection across machines: how much of the run the
	// event-horizon fast path covered.
	BatchedQuanta int64 `json:"batched_quanta"`
	SteppedQuanta int64 `json:"stepped_quanta"`
}

// Report is the full outcome: the summary, the per-interval curves and
// the per-VM SLA records.
type Report struct {
	Summary   Summary     `json:"summary"`
	Intervals []Interval  `json:"intervals"`
	PerVM     []VMOutcome `json:"per_vm"`
}

// IntervalSeries renders the interval curves as named metric series
// (energy, active machines, live VMs, SLA, migrations) sharing the
// interval end times, ready for metrics.WriteCSV or the ASCII charts.
func (r *Report) IntervalSeries() []*metrics.Series {
	joules := metrics.NewSeries("joules")
	power := metrics.NewSeries("avg_power_w")
	active := metrics.NewSeries("active_machines")
	live := metrics.NewSeries("live_vms")
	sla := metrics.NewSeries("sla")
	migr := metrics.NewSeries("migrations")
	rej := metrics.NewSeries("rejected")
	for _, iv := range r.Intervals {
		joules.Add(iv.TimeS, iv.Joules)
		power.Add(iv.TimeS, iv.AvgPowerW)
		active.Add(iv.TimeS, float64(iv.ActiveMachines))
		live.Add(iv.TimeS, float64(iv.LiveVMs))
		sla.Add(iv.TimeS, iv.SLA)
		migr.Add(iv.TimeS, float64(iv.Migrations))
		rej.Add(iv.TimeS, float64(iv.Rejected))
	}
	return []*metrics.Series{joules, power, active, live, sla, migr, rej}
}

// WriteCSV writes the interval curves as CSV with a shared time column.
func (r *Report) WriteCSV(w io.Writer) error {
	return metrics.WriteCSV(w, r.IntervalSeries()...)
}

// WriteJSON writes the whole report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("fleet: write report: %w", err)
	}
	return nil
}
