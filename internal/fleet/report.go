package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"pasched/internal/metrics"
)

// Interval is one reporting-barrier sample: what happened in the
// interval ending at TimeS.
type Interval struct {
	// TimeS is the end of the interval in simulated seconds.
	TimeS float64 `json:"time_s"`
	// Joules is the energy consumed by powered-on machines during the
	// interval.
	Joules float64 `json:"joules"`
	// AvgPowerW is Joules over the interval length.
	AvgPowerW float64 `json:"avg_power_w"`
	// ActiveMachines is the number of powered-on machines at the barrier
	// (before the barrier's power-offs).
	ActiveMachines int `json:"active_machines"`
	// LiveVMs is the number of VMs resident at the barrier.
	LiveVMs int `json:"live_vms"`
	// Arrivals, Departures, Rejected and Migrations count the interval's
	// lifecycle activity.
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Rejected   int `json:"rejected"`
	Migrations int `json:"migrations"`
	// DemandedWork and AttainedWork are the interval's SLA numerator and
	// denominator in work units, summed over every VM present.
	DemandedWork float64 `json:"demanded_work"`
	AttainedWork float64 `json:"attained_work"`
	// SLA is AttainedWork/DemandedWork (1 when nothing was demanded).
	SLA float64 `json:"sla"`
	// Requests counts the requests served during the interval, and
	// ReqP50Ms/ReqP95Ms/ReqP99Ms are the interval's reply-latency
	// percentiles in milliseconds from the fleet-wide merged histogram.
	// All zero unless Config.Serving is enabled.
	Requests int64   `json:"requests,omitempty"`
	ReqP50Ms float64 `json:"req_p50_ms,omitempty"`
	ReqP95Ms float64 `json:"req_p95_ms,omitempty"`
	ReqP99Ms float64 `json:"req_p99_ms,omitempty"`
}

// VMOutcome is one VM's final SLA record.
type VMOutcome struct {
	Name    string  `json:"name"`
	Class   string  `json:"class"`
	Machine int     `json:"machine"` // final hosting machine
	ArriveS float64 `json:"arrive_s"`
	DepartS float64 `json:"depart_s"` // departure, or the horizon for still-live VMs
	// Departed is false for VMs still resident at the horizon.
	Departed     bool    `json:"departed"`
	DemandedWork float64 `json:"demanded_work"`
	AttainedWork float64 `json:"attained_work"`
	SLA          float64 `json:"sla"`
	// ReqOffered/ReqCompleted count the VM's serving requests, and
	// ReqMeanMs/ReqMaxMs summarize its reply latencies in milliseconds
	// (exact, not histogram-quantized). All zero unless Config.Serving
	// is enabled.
	ReqOffered   int64   `json:"req_offered,omitempty"`
	ReqCompleted int64   `json:"req_completed,omitempty"`
	ReqMeanMs    float64 `json:"req_mean_ms,omitempty"`
	ReqMaxMs     float64 `json:"req_max_ms,omitempty"`
	// Throttle-attribution ledger (zero unless Config.Obs is enabled):
	// every microsecond of the VM's host residency in exactly one
	// bucket, so the six buckets sum to LifetimeUs — enforced at every
	// VM finalization. Exact integers, identical for every shard and
	// worker count.
	LifetimeUs    int64 `json:"lifetime_us,omitempty"`
	RunUs         int64 `json:"run_us,omitempty"`
	DownclockedUs int64 `json:"downclocked_us,omitempty"`
	CappedUs      int64 `json:"capped_us,omitempty"`
	ContendedUs   int64 `json:"contended_us,omitempty"`
	MigratingUs   int64 `json:"migrating_us,omitempty"`
	IdleUs        int64 `json:"idle_us,omitempty"`
}

// Summary is the cluster-level outcome of one fleet run.
type Summary struct {
	Policy    string  `json:"policy"`
	Scheduler string  `json:"scheduler"` // "pas" or "fix-credit"
	Machines  int     `json:"machines"`
	HorizonS  float64 `json:"horizon_s"`

	Arrived  int `json:"arrived"`
	Departed int `json:"departed"`
	Rejected int `json:"rejected"`
	Migrated int `json:"migrated"`

	EverPoweredOn      int     `json:"ever_powered_on"`
	PowerOns           int     `json:"power_ons"`
	PowerOffs          int     `json:"power_offs"`
	PeakActiveMachines int     `json:"peak_active_machines"`
	MeanActiveMachines float64 `json:"mean_active_machines"`

	TotalJoules float64 `json:"total_joules"`
	MeanPowerW  float64 `json:"mean_power_w"`

	OverallSLA float64 `json:"overall_sla"`
	MeanVMSLA  float64 `json:"mean_vm_sla"`
	MinVMSLA   float64 `json:"min_vm_sla"`
	VMsBelow95 int     `json:"vms_below_95pct"`

	// Serving totals (zero unless Config.Serving is enabled): every
	// offered request either completed, abandoned (its deadline expired
	// with retries exhausted, or its VM departed), expired and was
	// re-issued (each retry is a fresh offered request), or was still
	// queued or in service at the horizon — RequestsOffered ==
	// RequestsCompleted + RequestsAbandoned + RequestsRetried +
	// RequestsInFlight.
	RequestsOffered   int64 `json:"requests_offered,omitempty"`
	RequestsCompleted int64 `json:"requests_completed,omitempty"`
	RequestsAbandoned int64 `json:"requests_abandoned,omitempty"`
	RequestsRetried   int64 `json:"requests_retried,omitempty"`
	RequestsInFlight  int64 `json:"requests_in_flight,omitempty"`
	// Fleet-wide reply-latency summary in milliseconds: histogram
	// percentiles (relative quantization error <= 1/32 above 64 us) and
	// the exact mean and maximum.
	ReqP50Ms  float64 `json:"req_p50_ms,omitempty"`
	ReqP95Ms  float64 `json:"req_p95_ms,omitempty"`
	ReqP99Ms  float64 `json:"req_p99_ms,omitempty"`
	ReqMeanMs float64 `json:"req_mean_ms,omitempty"`
	ReqMaxMs  float64 `json:"req_max_ms,omitempty"`
	// ClassLatency breaks the latency summary down per VM class, sorted
	// by class name; classes that served nothing are omitted.
	ClassLatency []ClassLatency `json:"class_latency,omitempty"`

	// Flight-recorder totals (zero unless Config.Obs is enabled):
	// ObsEvents counts the drained events, and the Ledger* fields sum
	// the per-VM throttle-attribution buckets across every outcome —
	// the six buckets sum to LedgerSpanUs, enforced at finalize.
	ObsEvents           int64 `json:"obs_events,omitempty"`
	LedgerSpanUs        int64 `json:"ledger_span_us,omitempty"`
	LedgerRunUs         int64 `json:"ledger_run_us,omitempty"`
	LedgerDownclockedUs int64 `json:"ledger_downclocked_us,omitempty"`
	LedgerCappedUs      int64 `json:"ledger_capped_us,omitempty"`
	LedgerContendedUs   int64 `json:"ledger_contended_us,omitempty"`
	LedgerMigratingUs   int64 `json:"ledger_migrating_us,omitempty"`
	LedgerIdleUs        int64 `json:"ledger_idle_us,omitempty"`

	// Autoscaler decision totals (zero unless Config.Autoscale is
	// enabled): applied cap/overhead resizes, replica scale-outs and
	// scale-ins, and decisions dropped at application time (no headroom
	// to grant, placement rejection, or a stale target). ScaleOuts minus
	// ScaleIns is the number of replicas live at the horizon, enforced
	// at finalize.
	AutoscaleResizes   int64 `json:"autoscale_resizes,omitempty"`
	AutoscaleScaleOuts int64 `json:"autoscale_scale_outs,omitempty"`
	AutoscaleScaleIns  int64 `json:"autoscale_scale_ins,omitempty"`
	AutoscaleRejected  int64 `json:"autoscale_rejected,omitempty"`

	// BatchedQuanta and SteppedQuanta aggregate the engines'
	// introspection across machines: how much of the run the
	// event-horizon fast path covered.
	BatchedQuanta int64 `json:"batched_quanta"`
	SteppedQuanta int64 `json:"stepped_quanta"`
}

// ClassLatency is one VM class's reply-latency summary (milliseconds),
// from the exact per-class histogram reduction.
type ClassLatency struct {
	Class    string  `json:"class"`
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Report is the full outcome: the summary, the per-interval curves and
// the per-VM SLA records.
type Report struct {
	Summary   Summary     `json:"summary"`
	Intervals []Interval  `json:"intervals"`
	PerVM     []VMOutcome `json:"per_vm"`
}

// IntervalSeries renders the interval curves as named metric series
// (energy, active machines, live VMs, SLA, migrations) sharing the
// interval end times, ready for metrics.WriteCSV or the ASCII charts.
func (r *Report) IntervalSeries() []*metrics.Series {
	joules := metrics.NewSeries("joules")
	power := metrics.NewSeries("avg_power_w")
	active := metrics.NewSeries("active_machines")
	live := metrics.NewSeries("live_vms")
	sla := metrics.NewSeries("sla")
	migr := metrics.NewSeries("migrations")
	rej := metrics.NewSeries("rejected")
	reqs := metrics.NewSeries("requests")
	p50 := metrics.NewSeries("req_p50_ms")
	p95 := metrics.NewSeries("req_p95_ms")
	p99 := metrics.NewSeries("req_p99_ms")
	for _, iv := range r.Intervals {
		joules.Add(iv.TimeS, iv.Joules)
		power.Add(iv.TimeS, iv.AvgPowerW)
		active.Add(iv.TimeS, float64(iv.ActiveMachines))
		live.Add(iv.TimeS, float64(iv.LiveVMs))
		sla.Add(iv.TimeS, iv.SLA)
		migr.Add(iv.TimeS, float64(iv.Migrations))
		rej.Add(iv.TimeS, float64(iv.Rejected))
		reqs.Add(iv.TimeS, float64(iv.Requests))
		p50.Add(iv.TimeS, iv.ReqP50Ms)
		p95.Add(iv.TimeS, iv.ReqP95Ms)
		p99.Add(iv.TimeS, iv.ReqP99Ms)
	}
	return []*metrics.Series{joules, power, active, live, sla, migr, rej, reqs, p50, p95, p99}
}

// WriteCSV writes the interval curves as CSV with a shared time column.
func (r *Report) WriteCSV(w io.Writer) error {
	return metrics.WriteCSV(w, r.IntervalSeries()...)
}

// WriteJSON writes the whole report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("fleet: write report: %w", err)
	}
	return nil
}

// Sink receives a fleet run's results incrementally, in deterministic
// order: every per-VM outcome of an interval, then the interval sample
// (Outcome calls never interleave out of chronological order), and
// Finish exactly once with the summary after the last interval. Sinks
// let a run's memory stay O(machines + live VMs) instead of O(history):
// the in-memory Report is itself a Sink, and Config.DiscardReport drops
// it entirely for million-machine runs. Sink methods are called from the
// coordinator only — implementations need no locking.
//
// Ownership: the pointed-to records belong to the fleet and are reused
// after the call returns — outcome slots recycle through a pool, the
// interval accumulator is reset in place. Arguments are therefore only
// valid for the duration of the call; a sink that retains anything must
// copy it, as the buffering Report does.
type Sink interface {
	Interval(iv *Interval) error
	Outcome(o *VMOutcome) error
	Finish(s *Summary) error
}

// Interval implements Sink by buffering a copy of the sample (the
// argument is fleet-owned; see the Sink ownership contract).
func (r *Report) Interval(iv *Interval) error {
	r.Intervals = append(r.Intervals, *iv)
	return nil
}

// Outcome implements Sink by buffering a copy of the record.
func (r *Report) Outcome(o *VMOutcome) error {
	r.PerVM = append(r.PerVM, *o)
	return nil
}

// Finish implements Sink by storing the summary.
func (r *Report) Finish(s *Summary) error {
	r.Summary = *s
	return nil
}

// csvHeader matches the column order of Report.IntervalSeries.
const csvHeader = "time_s,joules,avg_power_w,active_machines,live_vms,sla,migrations,rejected,requests,req_p50_ms,req_p95_ms,req_p99_ms\n"

// CSVSink streams the interval curves as CSV rows, one per reporting
// barrier, byte-identical to Report.WriteCSV on the buffered report. It
// ignores per-VM outcomes. Finish flushes; the caller owns closing the
// underlying writer.
type CSVSink struct {
	w      *bufio.Writer
	row    []byte
	header bool
}

// NewCSVSink returns a streaming CSV sink writing to w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: bufio.NewWriter(w)}
}

func (s *CSVSink) writeHeader() error {
	if s.header {
		return nil
	}
	s.header = true
	_, err := s.w.WriteString(csvHeader)
	return err
}

// Interval implements Sink.
func (s *CSVSink) Interval(iv *Interval) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	// Cells format exactly like metrics.WriteCSV: %g at full precision,
	// counts passing through float64 conversion.
	row := s.row[:0]
	for i, v := range [...]float64{
		iv.TimeS, iv.Joules, iv.AvgPowerW,
		float64(iv.ActiveMachines), float64(iv.LiveVMs),
		iv.SLA, float64(iv.Migrations), float64(iv.Rejected),
		float64(iv.Requests), iv.ReqP50Ms, iv.ReqP95Ms, iv.ReqP99Ms,
	} {
		if i > 0 {
			row = append(row, ',')
		}
		row = strconv.AppendFloat(row, v, 'g', -1, 64)
	}
	row = append(row, '\n')
	s.row = row[:0]
	_, err := s.w.Write(row)
	return err
}

// Outcome implements Sink.
func (s *CSVSink) Outcome(*VMOutcome) error { return nil }

// Finish implements Sink: it writes the header even for a run with no
// intervals (as Report.WriteCSV does) and flushes.
func (s *CSVSink) Finish(*Summary) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.w.Flush()
}

// JSONLSink streams the run as JSON Lines: one object per record, each
// wrapping an interval sample, a per-VM outcome, or the final summary
// in its named field. Unlike CSVSink it carries the complete report —
// a jq one-liner reassembles Report.WriteJSON's content from it.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink returns a streaming JSON Lines sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// JSONLRecord is one JSONLSink line; exactly one field is set.
type JSONLRecord struct {
	Interval *Interval  `json:"interval,omitempty"`
	VM       *VMOutcome `json:"vm,omitempty"`
	Summary  *Summary   `json:"summary,omitempty"`
}

// Interval implements Sink. The argument is copied into a sink-owned
// record before encoding (the fleet reuses it after the call).
func (s *JSONLSink) Interval(iv *Interval) error {
	rec := *iv
	return s.enc.Encode(JSONLRecord{Interval: &rec})
}

// Outcome implements Sink.
func (s *JSONLSink) Outcome(o *VMOutcome) error {
	rec := *o
	return s.enc.Encode(JSONLRecord{VM: &rec})
}

// Finish implements Sink.
func (s *JSONLSink) Finish(sum *Summary) error {
	rec := *sum
	if err := s.enc.Encode(JSONLRecord{Summary: &rec}); err != nil {
		return err
	}
	return s.w.Flush()
}
