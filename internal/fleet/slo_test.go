package fleet

import (
	"testing"

	"pasched/internal/sim"
)

// TestServingLatencySLO is the latency regression gate: the
// examples/serving contended-estate scenario (six machines, ~90% base
// activity, equal offered load) runs under every scheduler, and the
// reply-latency percentiles must stay under the committed per-scheduler
// thresholds. The simulation is deterministic, so the measured
// percentiles are exact constants; the thresholds carry ~20% headroom
// over them so only a real enforcement or serving regression — not an
// intentional small reshuffle — trips the gate. Regenerate with the
// measured values (logged on every run) after an intentional change.
func TestServingLatencySLO(t *testing.T) {
	const (
		machines = 6
		arrivals = 120
		horizon  = 240 * sim.Second
		seed     = 31
	)
	trace, err := Generate(GenConfig{
		Seed:         seed,
		Arrivals:     arrivals,
		Horizon:      horizon,
		MeanLifetime: 120 * sim.Second,
		BaseActivity: 0.9,
		SegmentLen:   60 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Committed thresholds in milliseconds (measured x ~1.2).
	slos := []struct {
		sched        string
		p50Ms, p99Ms float64
	}{
		{"credit", 192, 1615},      // measured 159.74 / 1343.49
		{"pas", 192, 1615},         // measured 159.74 / 1343.49
		{"credit2", 177, 1730},     // measured 147.46 / 1441.79
		{"pas-credit2", 177, 1695}, // measured 147.46 / 1409.02
	}
	for _, slo := range slos {
		slo := slo
		t.Run(slo.sched, func(t *testing.T) {
			t.Parallel()
			f, err := New(Config{
				Machines:    DefaultEstate(machines),
				Scheduler:   slo.sched,
				Policy:      NewFirstFit(),
				ReportEvery: 2 * sim.Second,
				Seed:        seed,
				Serving:     ServingConfig{Enabled: true},
			}, trace)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := f.Run(horizon)
			if err != nil {
				t.Fatal(err)
			}
			s := rep.Summary
			t.Logf("%s: completed %d/%d, p50 %.2f ms, p99 %.2f ms",
				slo.sched, s.RequestsCompleted, s.RequestsOffered, s.ReqP50Ms, s.ReqP99Ms)
			// Vacuity guards: the scenario must actually serve load and
			// produce a nondegenerate distribution before the thresholds
			// mean anything.
			if s.RequestsCompleted < 10_000 {
				t.Fatalf("only %d requests completed, scenario is vacuous", s.RequestsCompleted)
			}
			if s.ReqP50Ms <= 0 || s.ReqP99Ms < s.ReqP50Ms {
				t.Fatalf("degenerate percentiles: p50 %.2f ms, p99 %.2f ms", s.ReqP50Ms, s.ReqP99Ms)
			}
			if s.ReqP50Ms > slo.p50Ms {
				t.Errorf("p50 %.2f ms exceeds the %.1f ms SLO threshold", s.ReqP50Ms, slo.p50Ms)
			}
			if s.ReqP99Ms > slo.p99Ms {
				t.Errorf("p99 %.2f ms exceeds the %.1f ms SLO threshold", s.ReqP99Ms, slo.p99Ms)
			}
		})
	}
}
