package fleet

import (
	"bytes"
	"strings"
	"testing"

	"pasched/internal/sim"
)

const sampleTrace = `# comment
horizon,120
class,small,10,1024
class,large,40,4096

vm,a,0,60,small,0.5
vm,b,10.5,30,large,1
vm,c,10.5,30,small,0
`

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 120*sim.Second {
		t.Errorf("horizon = %v", tr.Horizon)
	}
	if len(tr.Classes) != 2 || len(tr.Events) != 3 {
		t.Fatalf("parsed %d classes, %d events", len(tr.Classes), len(tr.Events))
	}
	if got := tr.Events[0].Name; got != "a" {
		t.Errorf("first event %q", got)
	}
	// Same arrival time: sorted by name.
	if tr.Events[1].Name != "b" || tr.Events[2].Name != "c" {
		t.Errorf("tie-broken order: %q, %q", tr.Events[1].Name, tr.Events[2].Name)
	}
	if tr.Events[1].Activity != 1 || tr.Events[1].Class != "large" {
		t.Errorf("event b parsed as %+v", tr.Events[1])
	}
}

func TestParseTraceCRLF(t *testing.T) {
	crlf := strings.ReplaceAll(sampleTrace, "\n", "\r\n")
	if _, err := ParseTrace(strings.NewReader(crlf)); err != nil {
		t.Fatalf("CRLF trace rejected: %v", err)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"no horizon":        "class,a,10,1024\nvm,x,0,10,a,0.5\n",
		"no events":         "horizon,10\nclass,a,10,1024\n",
		"unknown record":    "horizon,10\nclass,a,10,1024\nfoo,bar\nvm,x,0,10,a,0.5\n",
		"unknown class":     "horizon,10\nvm,x,0,10,ghost,0.5\n",
		"duplicate class":   "horizon,10\nclass,a,10,1024\nclass,a,20,2048\nvm,x,0,10,a,0.5\n",
		"duplicate vm":      "horizon,10\nclass,a,10,1024\nvm,x,0,10,a,0.5\nvm,x,1,10,a,0.5\n",
		"duplicate horizon": "horizon,10\nhorizon,20\nclass,a,10,1024\nvm,x,0,10,a,0.5\n",
		"bad field count":   "horizon,10\nclass,a,10,1024\nvm,x,0,10,a\n",
		"bad float":         "horizon,10\nclass,a,10,1024\nvm,x,zero,10,a,0.5\n",
		"nan seconds":       "horizon,10\nclass,a,10,1024\nvm,x,NaN,10,a,0.5\n",
		"inf horizon":       "horizon,+Inf\nclass,a,10,1024\nvm,x,0,10,a,0.5\n",
		"huge seconds":      "horizon,10\nclass,a,10,1024\nvm,x,1e300,10,a,0.5\n",
		"negative arrive":   "horizon,10\nclass,a,10,1024\nvm,x,-1,10,a,0.5\n",
		"arrive at horizon": "horizon,10\nclass,a,10,1024\nvm,x,10,10,a,0.5\n",
		"zero lifetime":     "horizon,10\nclass,a,10,1024\nvm,x,0,0,a,0.5\n",
		"activity over 1":   "horizon,10\nclass,a,10,1024\nvm,x,0,10,a,1.5\n",
		"nan activity":      "horizon,10\nclass,a,10,1024\nvm,x,0,10,a,NaN\n",
		"bad class credit":  "horizon,10\nclass,a,0,1024\nvm,x,0,10,a,0.5\n",
		"bad class memory":  "horizon,10\nclass,a,10,-5\nvm,x,0,10,a,0.5\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	orig, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if back.Horizon != orig.Horizon || len(back.Events) != len(orig.Events) {
		t.Fatalf("round trip changed shape: %+v vs %+v", back, orig)
	}
	for i := range orig.Events {
		if back.Events[i].Name != orig.Events[i].Name ||
			back.Events[i].Arrive != orig.Events[i].Arrive ||
			back.Events[i].Lifetime != orig.Events[i].Lifetime ||
			back.Events[i].Class != orig.Events[i].Class ||
			back.Events[i].Activity != orig.Events[i].Activity {
			t.Errorf("event %d changed: %+v vs %+v", i, back.Events[i], orig.Events[i])
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{Seed: 7, Arrivals: 200, Horizon: 600 * sim.Second}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 200 || len(b.Events) != 200 {
		t.Fatalf("generated %d / %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Name != eb.Name || ea.Arrive != eb.Arrive || ea.Lifetime != eb.Lifetime ||
			ea.Class != eb.Class || ea.Activity != eb.Activity {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, ea, eb)
		}
	}
	c, err := Generate(GenConfig{Seed: 8, Arrivals: 200, Horizon: 600 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Events {
		if a.Events[i].Arrive == c.Events[i].Arrive {
			same++
		}
	}
	if same == len(a.Events) {
		t.Error("different seeds produced identical arrival times")
	}
	// Heavy tail: some lifetime well above the mean.
	mean := cfg.Horizon / 10
	long := 0
	for _, ev := range a.Events {
		if ev.Lifetime > 3*mean {
			long++
		}
	}
	if long == 0 {
		t.Error("no lifetime beyond 3x the mean; the tail is missing")
	}
	// Every VM with activity carries a demand profile.
	for _, ev := range a.Events {
		if ev.Activity > 0 && len(ev.Demand) == 0 {
			t.Fatalf("VM %s has activity %v but no demand profile", ev.Name, ev.Activity)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Arrivals: 0, Horizon: sim.Second}); err == nil {
		t.Error("0 arrivals accepted")
	}
	if _, err := Generate(GenConfig{Arrivals: 1, Horizon: 0}); err == nil {
		t.Error("0 horizon accepted")
	}
	if _, err := Generate(GenConfig{Arrivals: 1, Horizon: sim.Second, DiurnalAmplitude: 1.5}); err == nil {
		t.Error("amplitude 1.5 accepted")
	}
	if _, err := Generate(GenConfig{Arrivals: 1, Horizon: sim.Second, BaseActivity: 2}); err == nil {
		t.Error("activity 2 accepted")
	}
}
