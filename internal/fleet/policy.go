package fleet

import (
	"fmt"

	"pasched/internal/core"
	"pasched/internal/cpufreq"
)

// Request is a VM the fleet asks a policy to place: the class-derived
// resources plus the mean activity of its demand profile (the policy's
// load estimate; the true demand is only known as it unfolds).
type Request struct {
	Name string
	// CreditPct and MemoryMB come from the VM's class.
	CreditPct float64
	MemoryMB  int
	// MeanActivity is the time-averaged fraction of the credit the VM is
	// expected to demand, in [0, 1].
	MeanActivity float64
}

// MachineState is the policy-visible view of one machine. Policies see
// the fleet's bookkeeping (reservations included), never the live hosts —
// placement needs no host synchronization.
type MachineState struct {
	// Index is the machine's fleet-wide index; policies return it.
	Index int
	// Class is the machine-class name.
	Class string
	// On reports the power state. Placing on an off machine powers it on.
	On bool
	// FreeMemMB and FreeCreditPct are the remaining capacities after all
	// resident VMs and in-flight migration reservations.
	FreeMemMB     int
	FreeCreditPct float64
	// OfferedLoadPct estimates the machine's offered load: the sum of
	// CreditPct x MeanActivity over resident and reserved VMs, in percent
	// of this machine's capacity at maximum frequency.
	OfferedLoadPct float64
	// Profile is the machine's processor architecture (its frequency
	// ladder and power curve), for DVFS-aware decisions.
	Profile *cpufreq.Profile
}

// Fits reports whether the machine has room for the request.
func (m MachineState) Fits(r Request) bool {
	return m.FreeMemMB >= r.MemoryMB && m.FreeCreditPct >= r.CreditPct
}

// Policy decides placement. Place receives every machine (on and off) and
// returns the index of the chosen one, or ok=false to reject the VM.
// Returning an off machine powers it on. For consolidation moves the
// fleet passes only the eligible machines (powered-on, excluding the
// migration source); the MachineState.Index field always carries the
// fleet-wide index to return.
//
// Place must treat the slice as read-only and must not retain it: the
// fleet keeps its machine state in place and passes the same backing
// array on every call.
type Policy interface {
	Name() string
	Place(machines []MachineState, r Request) (int, bool)
}

// FirstFit places on the lowest-indexed powered-on machine with room,
// powering on the lowest-indexed off machine only when no running one
// fits. It is the classic baseline: cheap, and it packs low indices.
type FirstFit struct{}

// NewFirstFit returns the first-fit policy.
func NewFirstFit() FirstFit { return FirstFit{} }

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(machines []MachineState, r Request) (int, bool) {
	for _, m := range machines {
		if m.On && m.Fits(r) {
			return m.Index, true
		}
	}
	for _, m := range machines {
		if !m.On && m.Fits(r) {
			return m.Index, true
		}
	}
	return 0, false
}

// BestFit places on the powered-on machine whose credit headroom after
// placement is smallest (the tightest fit), so big headroom — and with it
// whole machines — is preserved for later arrivals. Off machines are
// powered on only when nothing running fits.
type BestFit struct{}

// NewBestFit returns the best-fit-by-credit-headroom policy.
func NewBestFit() BestFit { return BestFit{} }

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Place implements Policy.
func (BestFit) Place(machines []MachineState, r Request) (int, bool) {
	best, bestLeft := -1, 0.0
	for _, m := range machines {
		if !m.On || !m.Fits(r) {
			continue
		}
		left := m.FreeCreditPct - r.CreditPct
		if best < 0 || left < bestLeft {
			best, bestLeft = m.Index, left
		}
	}
	if best >= 0 {
		return best, true
	}
	for _, m := range machines {
		if !m.On && m.Fits(r) {
			return m.Index, true
		}
	}
	return 0, false
}

// DVFSAware places where the fleet's estimated power draw grows least,
// using each machine class's own frequency ladder and power curve: for
// every candidate it computes the lowest frequency whose
// credit-compensated capacity absorbs the machine's offered load after
// placement (the PAS operating point, equation 5 of the paper) and
// compares the resulting power deltas. Machines that can stay at a
// reduced frequency with PAS compensating the credits therefore attract
// load before machines that would have to speed up — and powering on a
// new machine competes against those deltas at its full (static +
// dynamic) cost, so it happens only when it is genuinely cheaper than
// cramming.
type DVFSAware struct {
	// Margin is the capacity headroom kept above the estimated load when
	// choosing the operating frequency, as in core.PASConfig; the
	// constructor sets 0.05.
	Margin float64
	// eff memoizes each profile's efficiency table: the estimate runs
	// for every candidate machine of every arrival, and the table is a
	// fresh allocation per EfficiencyTable call. Policies run on the
	// single-threaded fleet loop, so a plain map is fine.
	eff map[*cpufreq.Profile][]float64
}

// NewDVFSAware returns the DVFS-aware packing policy.
func NewDVFSAware() DVFSAware {
	return DVFSAware{Margin: 0.05, eff: make(map[*cpufreq.Profile][]float64)}
}

// Name implements Policy.
func (DVFSAware) Name() string { return "dvfs-aware" }

// Place implements Policy.
func (p DVFSAware) Place(machines []MachineState, r Request) (int, bool) {
	add := r.CreditPct * r.MeanActivity
	best, bestCost := -1, 0.0
	for _, m := range machines {
		if !m.Fits(r) {
			continue
		}
		var cost float64
		if m.On {
			cost = p.estimate(m, m.OfferedLoadPct+add) - p.estimate(m, m.OfferedLoadPct)
		} else {
			// Powering on pays the machine's whole draw, idle floor
			// included.
			cost = p.estimate(m, add)
		}
		if best < 0 || cost < bestCost {
			best, bestCost = m.Index, cost
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// estimate returns the machine's estimated power draw (watts) when
// serving absLoadPct percent of its maximum capacity at the PAS operating
// point: the lowest ladder frequency whose compensated capacity covers
// the load plus margin.
func (p DVFSAware) estimate(m MachineState, absLoadPct float64) float64 {
	prof := m.Profile
	cf := p.eff[prof] // nil-map reads are fine for a zero-value policy
	if cf == nil {
		cf = prof.EfficiencyTable()
		if p.eff != nil {
			p.eff[prof] = cf
		}
	}
	f := core.ComputeNewFreq(prof, cf, absLoadPct*(1+p.Margin))
	util := 0.0
	if eff, err := prof.Efficiency(f); err == nil && eff > 0 {
		util = absLoadPct / 100 / (prof.Ratio(f) * eff)
	}
	if util > 1 {
		util = 1
	}
	w, err := prof.Power(f, util)
	if err != nil {
		return 0
	}
	return w
}

// PolicyByName returns the named built-in policy ("first-fit",
// "best-fit", "dvfs-aware").
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "first-fit", "firstfit":
		return NewFirstFit(), nil
	case "best-fit", "bestfit":
		return NewBestFit(), nil
	case "dvfs-aware", "dvfs":
		return NewDVFSAware(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (want first-fit, best-fit or dvfs-aware)", name)
	}
}
