package fleet

import (
	"math"
	"math/bits"
)

// placeIndex answers Policy.Place queries for one of the built-in
// policies from an incrementally-maintained index instead of a linear
// scan over every machine. The contract is exact: place returns the
// same (index, ok) the policy's Place method would return on the same
// states slice, bit for bit — the linear scan stays in policy.go as the
// reference oracle, and FuzzIndexedPlacement holds the two together.
//
// The fleet calls update(i) after every mutation of states[i] (reserve,
// release, power-on, power-off); queries and updates both run on the
// single-threaded coordinator loop.
type placeIndex interface {
	place(r Request) (int, bool)
	update(i int)
}

// newPlaceIndex returns the index matching the fleet's policy, or nil
// for custom policies (the fleet then falls back to the linear scan).
// states is the fleet's live machine array — the index reads it in
// place; classOf/specMem/caps describe the per-class pristine capacity
// an off machine snaps back to.
func newPlaceIndex(pol Policy, states []MachineState, classOf []int32, nClasses int) placeIndex {
	switch p := pol.(type) {
	case FirstFit:
		x := &ffIndex{states: states}
		x.off.init(states, classOf, nClasses)
		x.init()
		return x
	case BestFit:
		x := &bfIndex{states: states}
		x.off.init(states, classOf, nClasses)
		x.init()
		return x
	case DVFSAware:
		x := &dvfsIndex{states: states, pol: p}
		x.off.init(states, classOf, nClasses)
		x.init()
		return x
	default:
		return nil
	}
}

// offIndex tracks the powered-off machines per machine class as
// two-level bitmaps. Every off machine is pristine (the fleet snaps
// state back to full capacity on power-off), so all off machines of a
// class are interchangeable except for their index: the lowest-index
// off machine of a class answers any "which off machine" question for
// that class, and min runs in O(machines/4096) words.
type offIndex struct {
	states  []MachineState
	classOf []int32
	// words[ci] has bit i set iff machine i (of class ci) is off;
	// sum[ci] has bit w set iff words[ci][w] is nonzero.
	words [][]uint64
	sum   [][]uint64
}

func (o *offIndex) init(states []MachineState, classOf []int32, nClasses int) {
	o.states = states
	o.classOf = classOf
	n := len(states)
	o.words = make([][]uint64, nClasses)
	o.sum = make([][]uint64, nClasses)
	for ci := 0; ci < nClasses; ci++ {
		o.words[ci] = make([]uint64, (n+63)/64)
		o.sum[ci] = make([]uint64, (len(o.words[ci])+63)/64)
	}
	for i := range states {
		o.update(i)
	}
}

// update re-derives machine i's membership from its current power
// state; idempotent, so callers need not track the previous state.
func (o *offIndex) update(i int) {
	ci := o.classOf[i]
	w := uint(i) >> 6
	bit := uint64(1) << (uint(i) & 63)
	if o.states[i].On {
		o.words[ci][w] &^= bit
		if o.words[ci][w] == 0 {
			o.sum[ci][w>>6] &^= uint64(1) << (w & 63)
		}
	} else {
		o.words[ci][w] |= bit
		o.sum[ci][w>>6] |= uint64(1) << (w & 63)
	}
}

// min returns the lowest-index off machine of class ci, or -1.
func (o *offIndex) min(ci int32) int {
	for swi, sw := range o.sum[ci] {
		if sw == 0 {
			continue
		}
		w := swi<<6 + bits.TrailingZeros64(sw)
		return w<<6 + bits.TrailingZeros64(o.words[ci][w])
	}
	return -1
}

// lowestFit returns the lowest-index off machine that fits the request:
// per-class minima compared across classes, exploiting that every off
// machine of a class fits iff the class's pristine capacity does.
func (o *offIndex) lowestFit(r Request) (int, bool) {
	best := -1
	for ci := range o.words {
		rep := o.min(int32(ci))
		if rep < 0 || !o.states[rep].Fits(r) {
			continue
		}
		if best < 0 || rep < best {
			best = rep
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// ffIndex serves FirstFit: a segment tree over machine index whose
// nodes carry the subtree maxima of free memory and free credit for
// powered-on machines (off leaves are sentinel-empty). The query
// descends leftmost-first with both maxima as the pruning test, so the
// first leaf reached is the lowest-index on machine that fits; the off
// phase is the shared per-class bitmap.
type ffIndex struct {
	states []MachineState
	off    offIndex

	base int // leaves live at [base, base+n)
	mem  []int32
	cred []float64
}

func (x *ffIndex) init() {
	n := len(x.states)
	x.base = 1
	for x.base < n {
		x.base <<= 1
	}
	x.mem = make([]int32, 2*x.base)
	x.cred = make([]float64, 2*x.base)
	for i := range x.mem {
		x.mem[i] = -1
		x.cred[i] = math.Inf(-1)
	}
	for i := range x.states {
		x.update(i)
	}
}

func (x *ffIndex) update(i int) {
	x.off.update(i)
	pos := x.base + i
	if m := &x.states[i]; m.On {
		x.mem[pos] = int32(m.FreeMemMB)
		x.cred[pos] = m.FreeCreditPct
	} else {
		x.mem[pos] = -1
		x.cred[pos] = math.Inf(-1)
	}
	for pos >>= 1; pos >= 1; pos >>= 1 {
		l, r := 2*pos, 2*pos+1
		x.mem[pos] = x.mem[l]
		if x.mem[r] > x.mem[pos] {
			x.mem[pos] = x.mem[r]
		}
		x.cred[pos] = x.cred[l]
		if x.cred[r] > x.cred[pos] {
			x.cred[pos] = x.cred[r]
		}
	}
}

// query returns the lowest leaf under node whose memory and credit both
// cover the request, or -1. The per-axis maxima can pass on a subtree
// with no single leaf passing both, so the descent backtracks; a leaf
// hit is exact because a leaf's maxima are its own values.
func (x *ffIndex) query(node int, memNeed int32, credNeed float64) int {
	if x.mem[node] < memNeed || x.cred[node] < credNeed {
		return -1
	}
	for node < x.base {
		if l := 2 * node; x.mem[l] >= memNeed && x.cred[l] >= credNeed {
			if leaf := x.query(l, memNeed, credNeed); leaf >= 0 {
				return leaf
			}
		}
		node = 2*node + 1
		if x.mem[node] < memNeed || x.cred[node] < credNeed {
			return -1
		}
	}
	return node - x.base
}

func (x *ffIndex) place(r Request) (int, bool) {
	if i := x.query(1, int32(r.MemoryMB), r.CreditPct); i >= 0 {
		return i, true
	}
	return x.off.lowestFit(r)
}

// bfIndex serves BestFit: a treap over the powered-on machines keyed by
// (FreeCreditPct, index) with a subtree free-memory maximum, so the
// tightest-fitting machine is the first in-order node with credit >=
// the request and memory that fits — O(log machines) instead of a full
// scan. Node ids are machine indices, so the structure is allocation-
// free after init; update is erase + reinsert under the new key.
//
// One subtlety keeps it bit-exact with the linear scan: the scan ranks
// candidates by the rounded double FreeCreditPct - CreditPct, and
// machines with *distinct* credits can round to the same headroom, in
// which case the scan's tie-break (lowest index) can prefer a machine
// later in credit order. After the first hit, place walks the next
// distinct credit values while their rounded headroom stays equal,
// taking the lowest index — headroom is monotone in credit, so the walk
// stops at the first strictly larger value.
type bfIndex struct {
	states []MachineState
	off    offIndex

	root    int32
	left    []int32
	right   []int32
	keyCred []float64 // key as of insert time
	mem     []int32   // value as of insert time
	maxMem  []int32
	prio    []uint64
	inTree  []bool
}

func (x *bfIndex) init() {
	n := len(x.states)
	x.root = -1
	x.left = make([]int32, n)
	x.right = make([]int32, n)
	x.keyCred = make([]float64, n)
	x.mem = make([]int32, n)
	x.maxMem = make([]int32, n)
	x.prio = make([]uint64, n)
	x.inTree = make([]bool, n)
	for i := range x.prio {
		x.prio[i] = mix64(uint64(i) + 0x9e3779b97f4a7c15)
	}
	for i := range x.states {
		x.update(i)
	}
}

func (x *bfIndex) pull(n int32) {
	mm := x.mem[n]
	if l := x.left[n]; l >= 0 && x.maxMem[l] > mm {
		mm = x.maxMem[l]
	}
	if r := x.right[n]; r >= 0 && x.maxMem[r] > mm {
		mm = x.maxMem[r]
	}
	x.maxMem[n] = mm
}

// less orders nodes by (keyCred, id) against a probe key.
func (x *bfIndex) less(n int32, cred float64, id int32) bool {
	return x.keyCred[n] < cred || (x.keyCred[n] == cred && n < id)
}

// split partitions t into keys < (cred, id) and keys >= (cred, id).
func (x *bfIndex) split(t int32, cred float64, id int32) (int32, int32) {
	if t < 0 {
		return -1, -1
	}
	if x.less(t, cred, id) {
		l, r := x.split(x.right[t], cred, id)
		x.right[t] = l
		x.pull(t)
		return t, r
	}
	l, r := x.split(x.left[t], cred, id)
	x.left[t] = r
	x.pull(t)
	return l, t
}

func (x *bfIndex) merge(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if x.prio[a] > x.prio[b] {
		x.right[a] = x.merge(x.right[a], b)
		x.pull(a)
		return a
	}
	x.left[b] = x.merge(a, x.left[b])
	x.pull(b)
	return b
}

func (x *bfIndex) update(i int) {
	x.off.update(i)
	id := int32(i)
	if x.inTree[id] {
		l, r := x.split(x.root, x.keyCred[id], id)
		_, r2 := x.split(r, x.keyCred[id], id+1)
		x.root = x.merge(l, r2)
		x.inTree[id] = false
	}
	if m := &x.states[i]; m.On {
		x.keyCred[id] = m.FreeCreditPct
		x.mem[id] = int32(m.FreeMemMB)
		x.maxMem[id] = x.mem[id]
		x.left[id], x.right[id] = -1, -1
		l, r := x.split(x.root, x.keyCred[id], id)
		x.root = x.merge(x.merge(l, id), r)
		x.inTree[id] = true
	}
}

// firstGE returns the in-order-first node with key credit >= cred and
// memory >= memNeed, pruning on the subtree memory maximum.
func (x *bfIndex) firstGE(t int32, cred float64, memNeed int32) int32 {
	if t < 0 || x.maxMem[t] < memNeed {
		return -1
	}
	if x.keyCred[t] < cred {
		return x.firstGE(x.right[t], cred, memNeed)
	}
	if n := x.firstGE(x.left[t], cred, memNeed); n >= 0 {
		return n
	}
	if x.mem[t] >= memNeed {
		return t
	}
	return x.firstGE(x.right[t], cred, memNeed)
}

func (x *bfIndex) place(r Request) (int, bool) {
	memNeed := int32(r.MemoryMB)
	n := x.firstGE(x.root, r.CreditPct, memNeed)
	if n < 0 {
		return x.off.lowestFit(r)
	}
	best := int(n)
	bestLeft := x.keyCred[n] - r.CreditPct
	cur := x.keyCred[n]
	for {
		n2 := x.firstGE(x.root, math.Nextafter(cur, math.Inf(1)), memNeed)
		if n2 < 0 || x.keyCred[n2]-r.CreditPct != bestLeft {
			break
		}
		if int(n2) < best {
			best = int(n2)
		}
		cur = x.keyCred[n2]
	}
	return best, true
}

// dvfsIndex serves DVFSAware: a dense list of the powered-on machines
// (each has its own offered load, so each must be scored) plus one
// representative per machine class for the powered-off pool — every off
// machine of a class is pristine, so its power-on cost is identical and
// only the lowest index can win the (cost, index) tie-break the linear
// scan implements. At cloud scale the off pool dominates the estate, so
// the estimate runs O(on + classes) times per arrival instead of
// O(machines).
type dvfsIndex struct {
	states []MachineState
	pol    DVFSAware
	off    offIndex

	on  []int32 // dense, unordered
	pos []int32 // machine -> position in on, -1 if off
}

func (x *dvfsIndex) init() {
	n := len(x.states)
	x.on = make([]int32, 0, n)
	x.pos = make([]int32, n)
	for i := range x.pos {
		x.pos[i] = -1
	}
	for i := range x.states {
		x.update(i)
	}
}

func (x *dvfsIndex) update(i int) {
	x.off.update(i)
	on := x.states[i].On
	switch p := x.pos[i]; {
	case on && p < 0:
		x.pos[i] = int32(len(x.on))
		x.on = append(x.on, int32(i))
	case !on && p >= 0:
		last := x.on[len(x.on)-1]
		x.on[p] = last
		x.pos[last] = p
		x.on = x.on[:len(x.on)-1]
		x.pos[i] = -1
	}
}

func (x *dvfsIndex) place(r Request) (int, bool) {
	add := r.CreditPct * r.MeanActivity
	best, bestCost := -1, 0.0
	// The on list is unordered, so the linear scan's first-wins tie
	// handling becomes an explicit lexicographic (cost, index) minimum.
	for _, i := range x.on {
		m := &x.states[i]
		if !m.Fits(r) {
			continue
		}
		cost := x.pol.estimate(*m, m.OfferedLoadPct+add) - x.pol.estimate(*m, m.OfferedLoadPct)
		if best < 0 || cost < bestCost || (cost == bestCost && int(i) < best) {
			best, bestCost = int(i), cost
		}
	}
	for ci := range x.off.words {
		rep := x.off.min(int32(ci))
		if rep < 0 {
			continue
		}
		m := &x.states[rep]
		if !m.Fits(r) {
			continue
		}
		cost := x.pol.estimate(*m, add)
		if best < 0 || cost < bestCost || (cost == bestCost && rep < best) {
			best, bestCost = rep, cost
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
