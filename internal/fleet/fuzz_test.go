package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pasched/internal/autoscale"
	"pasched/internal/obs"
	"pasched/internal/sim"
	"pasched/internal/workload"
)

// FuzzParseTrace hammers the fleet trace parser with hostile input: the
// parser must never panic, every accepted trace must pass Validate, and
// writing it back out must reparse to the same trace (the CSV round
// trip the CLI relies on).
func FuzzParseTrace(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("horizon,10\nclass,a,10,1024\nvm,x,0,5,a,0.5\n")
	f.Add("horizon,10\r\nclass,a,10,1024\r\nvm,x,0,5,a,0.5\r\n") // CRLF
	f.Add("vm,x,0,5,a,0.5\nhorizon,10\nclass,a,10,1024\n")       // out of order records
	f.Add("horizon,10\nclass,a,10,1024\nvm,x,5,1,a,0.5\nvm,y,1,1,a,0.5\n")
	f.Add("horizon,10\nvm,x,0,5,ghost,0.5\n")                 // unknown class
	f.Add("horizon,10\nclass,a,10,1024\nvm,x,0,5,a,NaN\n")    // NaN activity
	f.Add("horizon,NaN\nclass,a,10,1024\nvm,x,0,5,a,0.5\n")   // NaN horizon
	f.Add("horizon,1e300\nclass,a,10,1024\nvm,x,0,5,a,0.5\n") // horizon overflow
	f.Add("horizon,10\nclass,a,1e308,1024\nvm,x,0,5,a,0.5\n") // huge credit
	f.Add("horizon,10\nclass,a,10,1024\nvm,x,0,5,a\n")        // missing field
	f.Add("wat,1,2\n")                                        // unknown record
	f.Add("# empty\n\n")
	f.Add("horizon,10\nhorizon,10\nclass,a,10,1024\nvm,x,0,5,a,0.5\n") // dup horizon

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace fails WriteCSV: %v", err)
		}
		back, err := ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, buf.String())
		}
		if back.Horizon != tr.Horizon || len(back.Events) != len(tr.Events) ||
			len(back.Classes) != len(tr.Classes) {
			t.Fatalf("round trip changed shape: %+v vs %+v", back, tr)
		}
		for i := range tr.Events {
			a, b := tr.Events[i], back.Events[i]
			if a.Name != b.Name || a.Class != b.Class || a.Arrive != b.Arrive ||
				a.Lifetime != b.Lifetime || a.Activity != b.Activity {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzShardMigration fuzzes the cross-shard migration ordering: for
// arbitrary shard/worker counts and churn parameters, the sharded run's
// report must be DeepEqual-bit-exact to the single-shard, single-worker
// run on the same generated trace. Consolidation fires every barrier,
// so VMs keep crossing shard boundaries mid-run.
func FuzzShardMigration(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(30), uint8(3), uint8(2))
	f.Add(uint64(7), uint8(60), uint8(15), uint8(7), uint8(4))
	f.Add(uint64(42), uint8(25), uint8(60), uint8(2), uint8(1))
	f.Add(uint64(99), uint8(50), uint8(20), uint8(5), uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, arrivals, life, shards, workers uint8) {
		horizon := 120 * sim.Second
		tr, err := Generate(GenConfig{
			Seed:         seed,
			Arrivals:     5 + int(arrivals%56),
			Horizon:      horizon,
			MeanLifetime: sim.Time(10+int(life)%80) * sim.Second,
			BaseActivity: 0.6,
			SegmentLen:   30 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := func(s, w int) Config {
			return Config{
				Machines:         testMachines(4, 2),
				UsePAS:           true,
				Policy:           NewBestFit(),
				ReportEvery:      15 * sim.Second,
				ConsolidateEvery: 15 * sim.Second,
				Shards:           s,
				Workers:          w,
				Seed:             seed,
			}
		}
		run := func(s, w int) *Report {
			fl, err := New(cfg(s, w), tr)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := fl.Run(horizon)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		want := run(1, 1)
		got := run(1+int(shards)%7, 1+int(workers)%4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d workers=%d: report differs from 1x1:\n%+v\nvs\n%+v",
				1+int(shards)%7, 1+int(workers)%4, got.Summary, want.Summary)
		}
	})
}

// FuzzServeShardEquivalence is FuzzShardMigration with the serving
// layer enabled: latency histograms fold on shard workers and merge on
// the coordinator, and the resulting percentiles must be bit-exact for
// arbitrary shard/worker splits — including requests whose service
// spans a live migration.
func FuzzServeShardEquivalence(f *testing.F) {
	f.Add(uint64(2), uint8(40), uint8(30), uint8(3), uint8(2))
	f.Add(uint64(11), uint8(60), uint8(15), uint8(7), uint8(4))
	f.Add(uint64(31), uint8(25), uint8(60), uint8(2), uint8(1))
	f.Add(uint64(77), uint8(50), uint8(20), uint8(5), uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, arrivals, life, shards, workers uint8) {
		horizon := 120 * sim.Second
		tr, err := Generate(GenConfig{
			Seed:         seed,
			Arrivals:     5 + int(arrivals%56),
			Horizon:      horizon,
			MeanLifetime: sim.Time(10+int(life)%80) * sim.Second,
			BaseActivity: 0.6,
			SegmentLen:   30 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := func(s, w int) Config {
			return Config{
				Machines:         testMachines(4, 2),
				UsePAS:           true,
				Policy:           NewBestFit(),
				ReportEvery:      15 * sim.Second,
				ConsolidateEvery: 15 * sim.Second,
				Shards:           s,
				Workers:          w,
				Seed:             seed,
				Serving:          ServingConfig{Enabled: true},
			}
		}
		run := func(s, w int) *Report {
			fl, err := New(cfg(s, w), tr)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := fl.Run(horizon)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		want := run(1, 1)
		got := run(1+int(shards)%7, 1+int(workers)%4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d workers=%d: serving report differs from 1x1:\n%+v\nvs\n%+v",
				1+int(shards)%7, 1+int(workers)%4, got.Summary, want.Summary)
		}
	})
}

// FuzzObsShardEquivalence is the flight-recorder differential fuzz: with
// the recorder buffering and serving enabled, both the report — now
// carrying the per-VM attribution ledgers — and the merged event stream
// must be DeepEqual-bit-exact between the single-shard, single-worker
// run and an arbitrary shard/worker split, on traces with migration
// churn crossing shard boundaries.
func FuzzObsShardEquivalence(f *testing.F) {
	f.Add(uint64(3), uint8(40), uint8(30), uint8(3), uint8(2))
	f.Add(uint64(13), uint8(60), uint8(15), uint8(7), uint8(4))
	f.Add(uint64(37), uint8(25), uint8(60), uint8(2), uint8(1))
	f.Add(uint64(71), uint8(50), uint8(20), uint8(5), uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, arrivals, life, shards, workers uint8) {
		horizon := 120 * sim.Second
		tr, err := Generate(GenConfig{
			Seed:         seed,
			Arrivals:     5 + int(arrivals%56),
			Horizon:      horizon,
			MeanLifetime: sim.Time(10+int(life)%80) * sim.Second,
			BaseActivity: 0.6,
			SegmentLen:   30 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := func(s, w int) Config {
			return Config{
				Machines:         testMachines(4, 2),
				UsePAS:           true,
				Policy:           NewBestFit(),
				ReportEvery:      15 * sim.Second,
				ConsolidateEvery: 15 * sim.Second,
				Shards:           s,
				Workers:          w,
				Seed:             seed,
				Serving:          ServingConfig{Enabled: true},
				Obs:              ObsConfig{Enabled: true, Buffer: true},
			}
		}
		run := func(s, w int) (*Report, []obs.Event) {
			fl, err := New(cfg(s, w), tr)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := fl.Run(horizon)
			if err != nil {
				t.Fatal(err)
			}
			return rep, fl.ObsEvents()
		}
		want, wantEv := run(1, 1)
		got, gotEv := run(1+int(shards)%7, 1+int(workers)%4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d workers=%d: obs report differs from 1x1:\n%+v\nvs\n%+v",
				1+int(shards)%7, 1+int(workers)%4, got.Summary, want.Summary)
		}
		if !reflect.DeepEqual(gotEv, wantEv) {
			t.Fatalf("shards=%d workers=%d: event stream differs from 1x1 (%d vs %d events)",
				1+int(shards)%7, 1+int(workers)%4, len(gotEv), len(wantEv))
		}
	})
}

// FuzzAutoscaleShardEquivalence closes the differential-fuzz family
// over the elastic loop: with the ditto autoscaler resizing caps,
// spawning and retiring replicas, and repartitioning arrival streams
// mid-run, an arbitrary shard/worker split must still produce a report
// and event stream DeepEqual-bit-exact to the single-shard,
// single-worker run.
func FuzzAutoscaleShardEquivalence(f *testing.F) {
	f.Add(uint64(5), uint8(40), uint8(30), uint8(3), uint8(2))
	f.Add(uint64(17), uint8(60), uint8(15), uint8(7), uint8(4))
	f.Add(uint64(41), uint8(25), uint8(60), uint8(2), uint8(1))
	f.Add(uint64(73), uint8(50), uint8(20), uint8(5), uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, arrivals, life, shards, workers uint8) {
		horizon := 120 * sim.Second
		tr, err := Generate(GenConfig{
			Seed:         seed,
			Arrivals:     5 + int(arrivals%56),
			Horizon:      horizon,
			MeanLifetime: sim.Time(10+int(life)%80) * sim.Second,
			BaseActivity: 0.9,
			SegmentLen:   30 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := func(s, w int) Config {
			return Config{
				Machines:         testMachines(4, 2),
				UsePAS:           true,
				Policy:           NewBestFit(),
				ReportEvery:      15 * sim.Second,
				ConsolidateEvery: 15 * sim.Second,
				Shards:           s,
				Workers:          w,
				Seed:             seed,
				// Full-cost requests so credit throttling turns into
				// queueing the policies can see (see autoscale_test.go).
				Serving: ServingConfig{Enabled: true, RequestCost: workload.DefaultRequestCost},
				Obs:     ObsConfig{Enabled: true, Buffer: true},
				Autoscale: AutoscaleConfig{
					Enabled: true,
					Policy:  "ditto",
					Params: autoscale.Params{
						MaxCapPct:          30,
						MaxReplicas:        3,
						CappedHighPermille: 10,
					},
				},
			}
		}
		run := func(s, w int) (*Report, []obs.Event) {
			fl, err := New(cfg(s, w), tr)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := fl.Run(horizon)
			if err != nil {
				t.Fatal(err)
			}
			return rep, fl.ObsEvents()
		}
		want, wantEv := run(1, 1)
		got, gotEv := run(1+int(shards)%7, 1+int(workers)%4)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d workers=%d: autoscaled report differs from 1x1:\n%+v\nvs\n%+v",
				1+int(shards)%7, 1+int(workers)%4, got.Summary, want.Summary)
		}
		if !reflect.DeepEqual(gotEv, wantEv) {
			t.Fatalf("shards=%d workers=%d: autoscaled event stream differs from 1x1 (%d vs %d events)",
				1+int(shards)%7, 1+int(workers)%4, len(gotEv), len(wantEv))
		}
	})
}
