package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"pasched/internal/obs"
	"pasched/internal/sim"
)

// churnTrace generates a trace with heavy lifecycle churn: short
// lifetimes against the horizon so departures keep emptying machines
// and consolidation keeps migrating.
func churnTrace(t *testing.T, seed uint64) *Trace {
	t.Helper()
	return genTrace(t, GenConfig{
		Seed:         seed,
		Arrivals:     140,
		Horizon:      300 * sim.Second,
		MeanLifetime: 45 * sim.Second,
		BaseActivity: 0.5,
		SegmentLen:   30 * sim.Second,
	})
}

func churnConfig(shards, workers int, seed uint64) Config {
	return Config{
		Machines:         testMachines(6, 4),
		UsePAS:           true,
		Policy:           NewBestFit(),
		ReportEvery:      20 * sim.Second,
		ConsolidateEvery: 20 * sim.Second, // every barrier: maximal migration churn
		Shards:           shards,
		Workers:          workers,
		Seed:             seed,
		// Serving on: the shard-equivalence checks below then also prove
		// the latency percentiles are bit-exact across shardings.
		Serving: ServingConfig{Enabled: true},
		// Flight recorder on and buffered: the same checks then also
		// prove the event stream and the attribution ledgers are
		// bit-exact across shardings.
		Obs: ObsConfig{Enabled: true, Buffer: true},
	}
}

// TestFleetShardEquivalence is the tentpole acceptance check: the report
// of a sharded run is DeepEqual-bit-exact to the single-shard,
// single-worker run for every shard count x worker count combination,
// on traces with heavy migration and consolidation churn.
func TestFleetShardEquivalence(t *testing.T) {
	for _, seed := range []uint64{7, 99} {
		tr := churnTrace(t, seed)
		want, wantEv := runFleetObs(t, churnConfig(1, 1, seed), tr, 300*sim.Second)
		if want.Summary.Migrated == 0 || want.Summary.Departed == 0 {
			t.Fatalf("seed %d: no churn, comparison is vacuous: %+v", seed, want.Summary)
		}
		if len(wantEv) == 0 || want.Summary.LedgerSpanUs == 0 || want.Summary.LedgerMigratingUs == 0 {
			t.Fatalf("seed %d: no observability signal, comparison is vacuous: %d events, %+v",
				seed, len(wantEv), want.Summary)
		}
		for _, shards := range []int{1, 2, 4, 7} {
			for _, workers := range []int{1, 4} {
				got, gotEv := runFleetObs(t, churnConfig(shards, workers, seed), tr, 300*sim.Second)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed=%d shards=%d workers=%d: report differs from 1x1:\n%+v\nvs\n%+v",
						seed, shards, workers, got.Summary, want.Summary)
				}
				if !reflect.DeepEqual(gotEv, wantEv) {
					t.Errorf("seed=%d shards=%d workers=%d: event stream differs from 1x1 (%d vs %d events)",
						seed, shards, workers, len(gotEv), len(wantEv))
					for i := range gotEv {
						if i < len(wantEv) && gotEv[i] != wantEv[i] {
							t.Errorf("first divergence at event %d:\n%+v\nvs\n%+v", i, gotEv[i], wantEv[i])
							break
						}
					}
				}
			}
		}
	}
}

// runFleetObs is runFleet plus the retained flight-recorder stream.
func runFleetObs(t *testing.T, cfg Config, tr *Trace, horizon sim.Time) (*Report, []obs.Event) {
	t.Helper()
	f, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return rep, f.ObsEvents()
}

// TestFleetShardDefaultsAndClamp covers the shard-count configuration
// surface: negative rejected, zero defaulting to the worker count, and
// clamping to the machine count.
func TestFleetShardDefaultsAndClamp(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 1, Arrivals: 3, Horizon: 10 * sim.Second})
	if _, err := New(Config{Machines: testMachines(2, 0), Shards: -1}, tr); err == nil ||
		!strings.Contains(err.Error(), "shard count") {
		t.Errorf("negative shard count accepted: %v", err)
	}
	f, err := New(Config{Machines: testMachines(2, 0), Shards: 64}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 2 {
		t.Errorf("64 shards on 2 machines: got %d, want clamp to 2", f.Shards())
	}
	f, err = New(Config{Machines: testMachines(3, 0), Workers: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 2 {
		t.Errorf("shards=0 workers=2: got %d shards, want 2", f.Shards())
	}
}

// TestFleetStreamedCSVMatchesBuffered checks the streaming contract:
// the CSV a CSVSink emits during the run is byte-identical to
// Report.WriteCSV on the buffered report of an identical run.
func TestFleetStreamedCSVMatchesBuffered(t *testing.T) {
	seed := uint64(13)
	tr := churnTrace(t, seed)
	want := runFleet(t, churnConfig(2, 2, seed), tr, 300*sim.Second)
	var buffered bytes.Buffer
	if err := want.WriteCSV(&buffered); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	cfg := churnConfig(2, 2, seed)
	cfg.Sinks = []Sink{NewCSVSink(&streamed)}
	cfg.DiscardReport = true
	rep := runFleet(t, cfg, tr, 300*sim.Second)

	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Errorf("streamed CSV differs from buffered:\n--- streamed ---\n%s\n--- buffered ---\n%s",
			streamed.String(), buffered.String())
	}
	// DiscardReport keeps only the summary, and it must equal the
	// buffered run's bit for bit.
	if len(rep.Intervals) != 0 || len(rep.PerVM) != 0 {
		t.Errorf("DiscardReport buffered %d intervals, %d outcomes", len(rep.Intervals), len(rep.PerVM))
	}
	if !reflect.DeepEqual(rep.Summary, want.Summary) {
		t.Errorf("DiscardReport summary differs:\n%+v\nvs\n%+v", rep.Summary, want.Summary)
	}
}

// TestFleetJSONLSink checks the JSON Lines stream carries the complete
// report: every interval, every per-VM outcome, and the summary.
func TestFleetJSONLSink(t *testing.T) {
	seed := uint64(29)
	tr := churnTrace(t, seed)
	var stream bytes.Buffer
	cfg := churnConfig(2, 2, seed)
	cfg.Sinks = []Sink{NewJSONLSink(&stream)}
	rep := runFleet(t, cfg, tr, 300*sim.Second)

	var intervals []Interval
	var outcomes []VMOutcome
	var summaries []Summary
	sc := bufio.NewScanner(&stream)
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var rec JSONLRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch {
		case rec.Interval != nil:
			intervals = append(intervals, *rec.Interval)
		case rec.VM != nil:
			outcomes = append(outcomes, *rec.VM)
		case rec.Summary != nil:
			summaries = append(summaries, *rec.Summary)
		default:
			t.Fatalf("empty JSONL record: %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(intervals, rep.Intervals) {
		t.Errorf("streamed intervals differ from buffered (%d vs %d)", len(intervals), len(rep.Intervals))
	}
	if !reflect.DeepEqual(outcomes, rep.PerVM) {
		t.Errorf("streamed outcomes differ from buffered (%d vs %d)", len(outcomes), len(rep.PerVM))
	}
	if len(summaries) != 1 || !reflect.DeepEqual(summaries[0], rep.Summary) {
		t.Errorf("streamed summary differs: %+v", summaries)
	}
}

// guardSink probes the fleet's accessors from inside the run (sinks are
// called on the coordinator while the shard workers own the hosts).
type guardSink struct {
	t       *testing.T
	f       *Fleet
	checked bool
}

func (g *guardSink) Interval(*Interval) error {
	if g.checked {
		return nil
	}
	g.checked = true
	if _, err := g.f.Host(0); err == nil || !strings.Contains(err.Error(), "while Run executes") {
		g.t.Errorf("Host(0) during Run: %v, want ownership error", err)
	}
	if n := g.f.BatchedQuanta(); n != 0 {
		g.t.Errorf("BatchedQuanta during Run = %d, want 0", n)
	}
	return nil
}

func (g *guardSink) Outcome(*VMOutcome) error { return nil }
func (g *guardSink) Finish(*Summary) error    { return nil }

// TestFleetAccessorGuards: Host and BatchedQuanta refuse to touch
// worker-owned hosts during Run and work normally after, including on
// machines that were never powered on (lazily constructed on demand).
func TestFleetAccessorGuards(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 3, Arrivals: 10, Horizon: 60 * sim.Second})
	cfg := Config{Machines: testMachines(4, 2), Workers: 2, Shards: 3, Seed: 3}
	g := &guardSink{t: t}
	cfg.Sinks = []Sink{g}
	f, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	g.f = f
	if _, err := f.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !g.checked {
		t.Fatal("guard sink never ran")
	}
	if f.BatchedQuanta() == 0 {
		t.Error("no batched quanta after the run")
	}
	for i := 0; i < f.Machines(); i++ {
		h, err := f.Host(i)
		if err != nil || h == nil {
			t.Fatalf("Host(%d) after Run: %v", i, err)
		}
	}
	if _, err := f.Host(f.Machines()); err == nil {
		t.Error("out-of-range Host accepted")
	}
	if _, err := f.Host(-1); err == nil {
		t.Error("negative Host index accepted")
	}
}

// failSink fails on the first interval, checking sink errors abort the
// run cleanly (workers torn down, error propagated).
type failSink struct{ err error }

func (s *failSink) Interval(*Interval) error { return s.err }
func (s *failSink) Outcome(*VMOutcome) error { return nil }
func (s *failSink) Finish(*Summary) error    { return nil }

func TestFleetSinkErrorAbortsRun(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 5, Arrivals: 20, Horizon: 60 * sim.Second})
	cfg := Config{Machines: testMachines(4, 0), Workers: 2, Shards: 2, Seed: 5}
	sinkErr := &failSink{err: errSentinel}
	cfg.Sinks = []Sink{sinkErr}
	f, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(60 * sim.Second); err != errSentinel {
		t.Fatalf("sink error not propagated: %v", err)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel sink failure" }
