package fleet

import (
	"reflect"
	"testing"

	"pasched/internal/sim"
)

// TestFleetServingReport checks the serving layer's conservation laws
// and report plumbing on a churny trace: every offered request is
// accounted for, the per-VM, per-interval and per-class views all sum
// to the fleet totals, and the percentile ladder is ordered.
func TestFleetServingReport(t *testing.T) {
	seed := uint64(17)
	tr := churnTrace(t, seed)
	rep := runFleet(t, churnConfig(2, 2, seed), tr, 300*sim.Second)
	s := rep.Summary

	if s.RequestsOffered == 0 || s.RequestsCompleted == 0 {
		t.Fatalf("serving produced no traffic: %+v", s)
	}
	if s.RequestsOffered != s.RequestsCompleted+s.RequestsAbandoned+s.RequestsInFlight {
		t.Errorf("request conservation: offered %d != completed %d + abandoned %d + in-flight %d",
			s.RequestsOffered, s.RequestsCompleted, s.RequestsAbandoned, s.RequestsInFlight)
	}
	if s.ReqP50Ms <= 0 || s.ReqP50Ms > s.ReqP95Ms || s.ReqP95Ms > s.ReqP99Ms {
		t.Errorf("percentiles out of order: p50=%v p95=%v p99=%v", s.ReqP50Ms, s.ReqP95Ms, s.ReqP99Ms)
	}
	if s.ReqMeanMs <= 0 || s.ReqMaxMs <= 0 {
		t.Errorf("latency summary empty: mean=%v max=%v", s.ReqMeanMs, s.ReqMaxMs)
	}

	var offered, completed int64
	for _, o := range rep.PerVM {
		if o.ReqCompleted > o.ReqOffered {
			t.Errorf("VM %s completed %d of %d offered", o.Name, o.ReqCompleted, o.ReqOffered)
		}
		offered += o.ReqOffered
		completed += o.ReqCompleted
	}
	if offered != s.RequestsOffered || completed != s.RequestsCompleted {
		t.Errorf("per-VM sums %d/%d differ from summary %d/%d",
			offered, completed, s.RequestsOffered, s.RequestsCompleted)
	}

	var ivSum int64
	for _, iv := range rep.Intervals {
		ivSum += iv.Requests
	}
	if ivSum != s.RequestsCompleted {
		t.Errorf("interval request sum %d != completed %d", ivSum, s.RequestsCompleted)
	}

	if len(s.ClassLatency) == 0 {
		t.Fatal("no per-class latency summaries")
	}
	var classSum int64
	for i, cl := range s.ClassLatency {
		if cl.Requests == 0 {
			t.Errorf("class %s listed with no requests", cl.Class)
		}
		if i > 0 && s.ClassLatency[i-1].Class >= cl.Class {
			t.Errorf("class latency not sorted by name: %q before %q", s.ClassLatency[i-1].Class, cl.Class)
		}
		classSum += cl.Requests
	}
	if classSum != s.RequestsCompleted {
		t.Errorf("class request sum %d != completed %d", classSum, s.RequestsCompleted)
	}
}

// TestFleetServingDisabledStaysSilent: without Config.Serving every
// serving field of the report stays zero, so existing consumers see
// unchanged output.
func TestFleetServingDisabledStaysSilent(t *testing.T) {
	seed := uint64(23)
	tr := churnTrace(t, seed)
	cfg := churnConfig(1, 1, seed)
	cfg.Serving = ServingConfig{}
	rep := runFleet(t, cfg, tr, 300*sim.Second)
	s := rep.Summary
	if s.RequestsOffered != 0 || s.RequestsCompleted != 0 || s.ReqP99Ms != 0 || s.ClassLatency != nil {
		t.Errorf("serving fields set while disabled: %+v", s)
	}
	for _, iv := range rep.Intervals {
		if iv.Requests != 0 || iv.ReqP99Ms != 0 {
			t.Fatalf("interval serving fields set while disabled: %+v", iv)
		}
	}
	for _, o := range rep.PerVM {
		if o.ReqOffered != 0 || o.ReqCompleted != 0 {
			t.Fatalf("per-VM serving fields set while disabled: %+v", o)
		}
	}
}

// TestFleetServingDistinguishesSchedulers: at equal offered load on a
// contended estate, cap-enforcing (credit) and work-conserving
// (credit2) scheduling must yield measurably different reply-latency
// distributions while completing nearly the same requests — the serving
// layer's point is making the enforcement policy user-visible. (Which
// side has the higher tail is configuration-dependent: caps trade
// median for tail, so the test asserts distinguishability, not a
// direction.)
func TestFleetServingDistinguishesSchedulers(t *testing.T) {
	tr := genTrace(t, GenConfig{
		Seed: 31, Arrivals: 60, Horizon: 240 * sim.Second,
		MeanLifetime: 120 * sim.Second, BaseActivity: 0.9, SegmentLen: 60 * sim.Second,
	})
	run := func(sched string) Summary {
		cfg := Config{
			Machines:    testMachines(3, 0),
			Scheduler:   sched,
			Policy:      NewFirstFit(),
			ReportEvery: 2 * sim.Second,
			Seed:        31,
			Serving:     ServingConfig{Enabled: true},
		}
		return runFleet(t, cfg, tr, 240*sim.Second).Summary
	}
	capped := run("credit")
	wc := run("credit2")
	if capped.RequestsCompleted == 0 || wc.RequestsCompleted == 0 {
		t.Fatalf("no completions: credit %d credit2 %d", capped.RequestsCompleted, wc.RequestsCompleted)
	}
	// Equal offered load: the client streams are scheduler-independent.
	if capped.RequestsOffered != wc.RequestsOffered {
		t.Fatalf("offered load differs: credit %d credit2 %d", capped.RequestsOffered, wc.RequestsOffered)
	}
	if rel := float64(capped.RequestsCompleted-wc.RequestsCompleted) / float64(wc.RequestsCompleted); rel > 0.02 || rel < -0.02 {
		t.Errorf("completions diverge beyond 2%%: credit %d credit2 %d", capped.RequestsCompleted, wc.RequestsCompleted)
	}
	if capped.ReqP50Ms == wc.ReqP50Ms && capped.ReqP99Ms == wc.ReqP99Ms {
		t.Errorf("latency distributions identical: p50 %.3f p99 %.3f — enforcement is invisible",
			capped.ReqP50Ms, capped.ReqP99Ms)
	}
}

// retainSink deliberately retains the pointers handed to it — the exact
// misuse the Sink ownership contract forbids — alongside boundary
// copies, proving both halves of the contract: the fleet really does
// recycle its records (the same pointers come back), and copying at the
// call boundary preserves every value (the copies match the buffered
// report bit for bit).
type retainSink struct {
	ivPtrs  map[*Interval]bool
	outPtrs map[*VMOutcome]bool
	ivs     []Interval
	outs    []VMOutcome
	nIv     int
	nOut    int
}

func (r *retainSink) Interval(iv *Interval) error {
	r.ivPtrs[iv] = true
	r.nIv++
	r.ivs = append(r.ivs, *iv)
	return nil
}

func (r *retainSink) Outcome(o *VMOutcome) error {
	r.outPtrs[o] = true
	r.nOut++
	r.outs = append(r.outs, *o)
	return nil
}

func (r *retainSink) Finish(*Summary) error { return nil }

// TestFleetSinkOwnership is the pool-recycling regression test for the
// Sink ownership contract: record pointers repeat across calls while
// the data seen during each call is intact.
func TestFleetSinkOwnership(t *testing.T) {
	seed := uint64(41)
	tr := churnTrace(t, seed)
	cfg := churnConfig(2, 2, seed)
	rs := &retainSink{ivPtrs: make(map[*Interval]bool), outPtrs: make(map[*VMOutcome]bool)}
	cfg.Sinks = []Sink{rs}
	rep := runFleet(t, cfg, tr, 300*sim.Second)

	if rs.nIv < 2 || rs.nOut < 10 {
		t.Fatalf("too little traffic to prove recycling: %d intervals, %d outcomes", rs.nIv, rs.nOut)
	}
	// The interval record is the fleet's single in-place accumulator and
	// outcome slots come from a pool drained every interval: far fewer
	// distinct pointers than calls.
	if len(rs.ivPtrs) != 1 {
		t.Errorf("%d distinct interval pointers over %d calls, want 1 (in-place reuse)", len(rs.ivPtrs), rs.nIv)
	}
	if len(rs.outPtrs) >= rs.nOut {
		t.Errorf("%d distinct outcome pointers over %d calls: pool never recycled", len(rs.outPtrs), rs.nOut)
	}
	// The copies taken during each call match the buffered report, so
	// copy-at-the-boundary is sufficient for correctness.
	if !reflect.DeepEqual(rs.ivs, rep.Intervals) {
		t.Error("interval copies differ from the buffered report")
	}
	if !reflect.DeepEqual(rs.outs, rep.PerVM) {
		t.Error("outcome copies differ from the buffered report")
	}
}
