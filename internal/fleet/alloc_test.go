package fleet

import (
	"testing"

	"pasched/internal/sim"
)

// TestFleetBarrierNoAllocsWithoutObs proves the recorder's fleet-side
// hooks are free when Obs is disabled: with live VMs on several
// machines, repeatedly advancing the single-shard fleet across barrier
// boundaries — the hot path of an s1 run, covering the host batched
// stepping, the shard fold, and the coordinator reduction — performs
// zero allocations once steady state is reached. ReportEvery doubles as
// the hosts' sampling interval, so it is pushed past the measured
// window to keep the (pre-existing, amortized) series appends out of
// the measurement; report emission itself is not driven here since
// buffering intervals allocates by design, independent of the recorder.
func TestFleetBarrierNoAllocsWithoutObs(t *testing.T) {
	horizon := 3600 * sim.Second
	tr := genTrace(t, GenConfig{
		Seed:         9,
		Arrivals:     6,
		Horizon:      horizon,
		MeanLifetime: horizon,
		BaseActivity: 0.6,
		SegmentLen:   600 * sim.Second,
	})
	f, err := New(Config{
		Machines:    testMachines(3, 2),
		UsePAS:      true,
		Policy:      NewBestFit(),
		ReportEvery: horizon,
		Shards:      1,
		Workers:     1,
		Seed:        9,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if f.rec != nil || f.cobs != nil {
		t.Fatal("recorder constructed with Obs disabled")
	}
	// Stand in for the Run prologue: attach every arrival at time zero
	// (demand phases keep their absolute schedule), then drive barriers
	// by hand.
	f.ran = true
	f.horizon = horizon
	for i := range tr.Events {
		if err := f.arrive(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if f.arrived < 3 {
		t.Fatalf("only %d arrivals placed, measurement would be vacuous", f.arrived)
	}

	now := sim.Time(0)
	step := func() error {
		now += 10 * sim.Second
		return f.barrier(now)
	}
	// Warm up past transients (first refills, pool and slice growth).
	for i := 0; i < 5; i++ {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	allocs := testing.AllocsPerRun(30, func() {
		if err := step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Errorf("disabled-obs fleet barrier allocates %.2f allocs per 10 s advance, want 0", allocs)
	}
}
