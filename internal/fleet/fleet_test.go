package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"pasched/internal/consolidation"
	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// testMachines is a small heterogeneous estate: fast desktops and
// slower, bigger Xeons.
func testMachines(opti, xeon int) []MachineClass {
	return []MachineClass{
		{Name: "optiplex", Count: opti, Spec: consolidation.HostSpec{
			MemoryMB: 8192, Profile: cpufreq.Optiplex755()}},
		{Name: "xeon-e5", Count: xeon, Spec: consolidation.HostSpec{
			MemoryMB: 16384, Profile: cpufreq.XeonE5_2620()}},
	}
}

func genTrace(t *testing.T, cfg GenConfig) *Trace {
	t.Helper()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runFleet(t *testing.T, cfg Config, tr *Trace, horizon sim.Time) *Report {
	t.Helper()
	f, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFleetDeterminism is the acceptance check: the same seed produces a
// bit-identical report for any worker count.
func TestFleetDeterminism(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 42, Arrivals: 120, Horizon: 240 * sim.Second,
		MeanLifetime: 60 * sim.Second})
	run := func(workers int) *Report {
		cfg := Config{
			Machines:         testMachines(10, 6),
			UsePAS:           true,
			Policy:           NewDVFSAware(),
			ReportEvery:      20 * sim.Second,
			ConsolidateEvery: 40 * sim.Second,
			Workers:          workers,
			Seed:             42,
		}
		return runFleet(t, cfg, tr, 240*sim.Second)
	}
	want := run(1)
	if want.Summary.Arrived == 0 || want.Summary.Departed == 0 {
		t.Fatalf("vacuous scenario: %+v", want.Summary)
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: report differs from workers=1:\n%+v\nvs\n%+v",
				workers, got.Summary, want.Summary)
		}
	}
}

// TestFleetBatchedEquivalence runs a contended fleet scenario (2-4
// runnable VMs per machine) through the batching engine and the
// reference quantum-by-quantum loop and requires bit-identical reports
// on every field: counts, energy, work and SLA alike. There are no
// tolerances — the whole accounting spine is exact integers, and every
// report float derives from the same integers through the same
// conversion on both sides.
func TestFleetBatchedEquivalence(t *testing.T) {
	for _, scheduler := range []string{"credit", "pas", "credit2", "pas-credit2"} {
		scheduler := scheduler
		name := scheduler
		if scheduler == "credit" {
			name = "fix-credit"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// Few machines + max activity: machines host several VMs whose
			// queues stay busy, keeping 2-4 VMs runnable at once.
			tr := genTrace(t, GenConfig{Seed: 3, Arrivals: 12, Horizon: 40 * sim.Second,
				MeanLifetime: 30 * sim.Second, BaseActivity: 0.9, SegmentLen: 10 * sim.Second})
			run := func(reference bool) (*Report, *Fleet) {
				cfg := Config{
					Machines:         testMachines(2, 1),
					Scheduler:        scheduler,
					Policy:           NewFirstFit(),
					ReportEvery:      10 * sim.Second,
					ConsolidateEvery: 20 * sim.Second,
					Seed:             3,
					Reference:        reference,
				}
				f, err := New(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := f.Run(40 * sim.Second)
				if err != nil {
					t.Fatal(err)
				}
				return rep, f
			}
			got, bf := run(false)
			want, rf := run(true)
			if bf.BatchedQuanta() == 0 {
				t.Fatal("batching never engaged; the comparison is vacuous")
			}
			if rf.BatchedQuanta() != 0 {
				t.Fatalf("reference fleet batched %d quanta", rf.BatchedQuanta())
			}
			// Contention must actually occur for the scenario to mean
			// anything: some machine hosted >= 2 VMs at once.
			peak := 0
			for _, iv := range want.Intervals {
				if iv.LiveVMs > peak {
					peak = iv.LiveVMs
				}
			}
			if peak < 4 {
				t.Fatalf("peak live VMs %d on 3 machines; scenario is not contended", peak)
			}

			// The two reports must be bit-identical in their entirety:
			// summary, every interval (time, work, energy, SLA) and every
			// per-VM outcome.
			// The engine-introspection counters are the one intentional
			// difference (the reference run never batches); everything the
			// run *simulated* must match bit-for-bit.
			gs, ws := got.Summary, want.Summary
			gs.BatchedQuanta, gs.SteppedQuanta = 0, 0
			ws.BatchedQuanta, ws.SteppedQuanta = 0, 0
			if !reflect.DeepEqual(gs, ws) {
				t.Errorf("summary differs: batched %+v reference %+v", gs, ws)
			}
			if !reflect.DeepEqual(got.Intervals, want.Intervals) {
				if len(got.Intervals) != len(want.Intervals) {
					t.Fatalf("interval count %d vs %d", len(got.Intervals), len(want.Intervals))
				}
				for i := range want.Intervals {
					if got.Intervals[i] != want.Intervals[i] {
						t.Errorf("interval %d: batched %+v reference %+v",
							i, got.Intervals[i], want.Intervals[i])
					}
				}
			}
			if !reflect.DeepEqual(got.PerVM, want.PerVM) {
				if len(got.PerVM) != len(want.PerVM) {
					t.Fatalf("per-VM count %d vs %d", len(got.PerVM), len(want.PerVM))
				}
				for i := range want.PerVM {
					if got.PerVM[i] != want.PerVM[i] {
						t.Errorf("per-VM %d: batched %+v reference %+v", i, got.PerVM[i], want.PerVM[i])
					}
				}
			}
		})
	}
}

// TestFleetConsolidationMigratesAndPowersOff drives a hand-written trace
// through consolidation: departures empty most of machine duty, the
// remaining VM migrates away, and the emptied machine powers off.
func TestFleetConsolidationMigratesAndPowersOff(t *testing.T) {
	trace := `
horizon,300
class,big,30,6144
class,medium,15,2048
class,small,10,1024
# a+b fill machine 0 (8192 MB); c and d spill to machine 1. When b
# departs at t=61, machine 0 has room again and consolidation can fold
# c and d back, emptying machine 1.
vm,a,0,300,big,0.4
vm,b,1,60,medium,0.4
vm,c,2,300,small,0.4
vm,d,3,300,small,0.4
`
	tr, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Machines: []MachineClass{{Name: "optiplex", Count: 3, Spec: consolidation.HostSpec{
			MemoryMB: 8192, Profile: cpufreq.Optiplex755()}}},
		UsePAS:           true,
		Policy:           NewFirstFit(),
		ReportEvery:      30 * sim.Second,
		ConsolidateEvery: 30 * sim.Second,
	}
	rep := runFleet(t, cfg, tr, 300*sim.Second)
	if rep.Summary.Migrated == 0 {
		t.Errorf("no migrations: %+v", rep.Summary)
	}
	if rep.Summary.EverPoweredOn < 2 {
		t.Errorf("expected at least 2 machines used, got %d", rep.Summary.EverPoweredOn)
	}
	last := rep.Intervals[len(rep.Intervals)-1]
	if last.ActiveMachines != 1 {
		t.Errorf("expected consolidation to end on 1 active machine, got %d", last.ActiveMachines)
	}
	if rep.Summary.OverallSLA < 0.95 {
		t.Errorf("lightly loaded fleet should meet its SLA, got %v", rep.Summary.OverallSLA)
	}
}

// TestFleetRejectsWhenFull: a fleet too small for the trace rejects
// arrivals instead of failing.
func TestFleetRejectsWhenFull(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 5, Arrivals: 60, Horizon: 60 * sim.Second,
		MeanLifetime: 300 * sim.Second})
	cfg := Config{
		Machines: []MachineClass{{Name: "tiny", Count: 1, Spec: consolidation.HostSpec{
			MemoryMB: 4096, Profile: cpufreq.Optiplex755()}}},
		Policy: NewBestFit(),
	}
	rep := runFleet(t, cfg, tr, 60*sim.Second)
	if rep.Summary.Rejected == 0 {
		t.Errorf("expected rejections on an undersized fleet: %+v", rep.Summary)
	}
	if rep.Summary.Arrived+rep.Summary.Rejected != 60 {
		t.Errorf("arrived %d + rejected %d != 60", rep.Summary.Arrived, rep.Summary.Rejected)
	}
}

// badPolicy returns an out-of-range machine, exercising the diagnosable
// failure path.
type badPolicy struct{}

func (badPolicy) Name() string                              { return "bad" }
func (badPolicy) Place([]MachineState, Request) (int, bool) { return 999, true }

func TestFleetDiagnosesBadPolicy(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 1, Arrivals: 5, Horizon: 30 * sim.Second})
	f, err := New(Config{Machines: testMachines(2, 0), Policy: badPolicy{}}, tr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Run(30 * sim.Second)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad policy not diagnosed: %v", err)
	}
}

// TestFleetPoliciesDiffer: the three built-in policies produce valid but
// distinct placements on a heterogeneous estate, and the DVFS-aware
// policy does not use more energy than first-fit on the same trace.
func TestFleetPoliciesDiffer(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 11, Arrivals: 80, Horizon: 180 * sim.Second,
		MeanLifetime: 90 * sim.Second})
	reports := map[string]*Report{}
	for _, pol := range []Policy{NewFirstFit(), NewBestFit(), NewDVFSAware()} {
		cfg := Config{
			Machines:    testMachines(6, 6),
			UsePAS:      true,
			Policy:      pol,
			ReportEvery: 30 * sim.Second,
			Seed:        11,
		}
		reports[pol.Name()] = runFleet(t, cfg, tr, 180*sim.Second)
	}
	for name, rep := range reports {
		if rep.Summary.Arrived != 80 || rep.Summary.Rejected != 0 {
			t.Errorf("%s: arrived %d rejected %d", name, rep.Summary.Arrived, rep.Summary.Rejected)
		}
		if rep.Summary.TotalJoules <= 0 {
			t.Errorf("%s: no energy accounted", name)
		}
		if rep.Summary.OverallSLA <= 0 || rep.Summary.OverallSLA > 1 {
			t.Errorf("%s: SLA %v out of range", name, rep.Summary.OverallSLA)
		}
	}
	ff := reports["first-fit"].Summary.TotalJoules
	da := reports["dvfs-aware"].Summary.TotalJoules
	if da > ff*1.05 {
		t.Errorf("dvfs-aware used %v J, first-fit %v J; expected no worse than +5%%", da, ff)
	}
}

// TestFleetPASBeatsFixCreditOnEnergy reproduces the paper's headline at
// fleet scale: under partial load, PAS machines run at reduced frequency
// and consume less than fix-credit machines pinned at maximum, while the
// SLA stays comparable.
func TestFleetPASBeatsFixCreditOnEnergy(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 21, Arrivals: 60, Horizon: 180 * sim.Second,
		MeanLifetime: 90 * sim.Second, BaseActivity: 0.4})
	run := func(usePAS bool) *Report {
		cfg := Config{
			Machines:    testMachines(8, 0),
			UsePAS:      usePAS,
			Policy:      NewFirstFit(),
			ReportEvery: 30 * sim.Second,
			Seed:        21,
		}
		return runFleet(t, cfg, tr, 180*sim.Second)
	}
	pas := run(true)
	fix := run(false)
	if pas.Summary.TotalJoules >= fix.Summary.TotalJoules {
		t.Errorf("PAS %v J >= fix-credit %v J; DVFS saved nothing",
			pas.Summary.TotalJoules, fix.Summary.TotalJoules)
	}
	if pas.Summary.OverallSLA < fix.Summary.OverallSLA-0.05 {
		t.Errorf("PAS SLA %v fell more than 5%% below fix-credit %v",
			pas.Summary.OverallSLA, fix.Summary.OverallSLA)
	}
}

func TestFleetReportOutputs(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 2, Arrivals: 20, Horizon: 60 * sim.Second})
	rep := runFleet(t, Config{Machines: testMachines(4, 0), ReportEvery: 20 * sim.Second}, tr,
		60*sim.Second)
	var csv, js bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "time_s,joules,avg_power_w,active_machines") {
		t.Errorf("csv header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if got := strings.Count(csv.String(), "\n"); got != len(rep.Intervals)+1 {
		t.Errorf("csv rows %d, intervals %d", got, len(rep.Intervals))
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"summary"`) || !strings.Contains(js.String(), `"per_vm"`) {
		t.Errorf("json missing sections: %s", js.String()[:120])
	}
}

// TestFleetRunValidation covers the one-shot and bad-horizon guards.
func TestFleetRunValidation(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 1, Arrivals: 3, Horizon: 10 * sim.Second})
	f, err := New(Config{Machines: testMachines(1, 0)}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := f.Run(10 * sim.Second); err != nil {
		t.Errorf("run after a rejected horizon: %v", err)
	}
	if _, err := f.Run(10 * sim.Second); err == nil {
		t.Error("second Run accepted")
	}
	if _, err := New(Config{}, tr); err == nil {
		t.Error("fleet without machines accepted")
	}
	if _, err := New(Config{Machines: testMachines(1, 0)}, &Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
}
