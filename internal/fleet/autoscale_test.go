package fleet

import (
	"reflect"
	"strings"
	"testing"

	"pasched/internal/autoscale"
	"pasched/internal/sim"
	"pasched/internal/workload"
)

// autoscaleConfig is churnConfig with the elastic loop on: the ditto
// policy on the attribution ledger, aggressive thresholds and a low cap
// ceiling so cap resizes, replica scale-outs and scale-ins all fire
// within the test horizon.
func autoscaleConfig(shards, workers int, seed uint64) Config {
	cfg := churnConfig(shards, workers, seed)
	// Full-cost requests: the default serving page costs a fifth of a
	// demand request, which gives every VM five-fold capacity headroom —
	// capped VMs would still drain their queues instantly and the
	// policies would never see pressure. At full cost, service capacity
	// equals attained CPU, so credit throttling shows up as queueing.
	cfg.Serving.RequestCost = workload.DefaultRequestCost
	cfg.Autoscale = AutoscaleConfig{
		Enabled: true,
		Policy:  "ditto",
		Params: autoscale.Params{
			StepPct:            10,
			MaxCapPct:          30, // large-class VMs saturate immediately: scale-out path
			QueueHigh:          2,
			QueueLow:           1,
			MaxReplicas:        3,
			CappedHighPermille: 10, // 1% of the interval capped triggers growth
		},
	}
	return cfg
}

// autoscaleTrace is churnTrace at near-saturation activity, so credit
// enforcement throttles VMs into queueing and the ledger accumulates
// capped time — the ditto policy's trigger.
func autoscaleTrace(t *testing.T, seed uint64) *Trace {
	t.Helper()
	return genTrace(t, GenConfig{
		Seed:             seed,
		Arrivals:         140,
		Horizon:          300 * sim.Second,
		MeanLifetime:     45 * sim.Second,
		BaseActivity:     0.95,
		DiurnalAmplitude: 0.2,
		SegmentLen:       30 * sim.Second,
	})
}

// TestFleetAutoscaleShardEquivalence is the tentpole acceptance check:
// an autoscaled fleet — caps resized, replicas spawned and retired,
// arrival streams repartitioned mid-run — reports DeepEqual-bit-exact
// for every shard count x worker count combination, event stream
// included.
func TestFleetAutoscaleShardEquivalence(t *testing.T) {
	for _, seed := range []uint64{7, 99} {
		tr := autoscaleTrace(t, seed)
		want, wantEv := runFleetObs(t, autoscaleConfig(1, 1, seed), tr, 300*sim.Second)
		s := want.Summary
		if s.AutoscaleResizes == 0 || s.AutoscaleScaleOuts == 0 || s.AutoscaleScaleIns == 0 {
			t.Fatalf("seed %d: autoscaler idle, comparison is vacuous: resizes=%d outs=%d ins=%d",
				seed, s.AutoscaleResizes, s.AutoscaleScaleOuts, s.AutoscaleScaleIns)
		}
		if s.RequestsOffered != s.RequestsCompleted+s.RequestsAbandoned+s.RequestsRetried+s.RequestsInFlight {
			t.Fatalf("seed %d: request conservation broken across scale-out/in: %+v", seed, s)
		}
		for _, shards := range []int{1, 2, 4, 7} {
			for _, workers := range []int{1, 4} {
				got, gotEv := runFleetObs(t, autoscaleConfig(shards, workers, seed), tr, 300*sim.Second)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed=%d shards=%d workers=%d: autoscaled report differs from 1x1:\n%+v\nvs\n%+v",
						seed, shards, workers, got.Summary, want.Summary)
				}
				if !reflect.DeepEqual(gotEv, wantEv) {
					t.Errorf("seed=%d shards=%d workers=%d: event stream differs from 1x1 (%d vs %d events)",
						seed, shards, workers, len(gotEv), len(wantEv))
					for i := range gotEv {
						if i < len(wantEv) && gotEv[i] != wantEv[i] {
							t.Errorf("first divergence at event %d:\n%+v\nvs\n%+v", i, gotEv[i], wantEv[i])
							break
						}
					}
				}
			}
		}
	}
}

// TestFleetAutoscaleClosedLoop runs the queue policy over closed-loop
// clients with abandonment and retries: the run must hold the four-way
// request conservation with every outcome class populated, and still be
// shard-equivalent.
func TestFleetAutoscaleClosedLoop(t *testing.T) {
	seed := uint64(21)
	tr := autoscaleTrace(t, seed)
	cfg := func(shards, workers int) Config {
		c := churnConfig(shards, workers, seed)
		c.Serving = ServingConfig{
			Enabled:      true,
			ClosedLoop:   true,
			Clients:      24,
			ThinkTime:    50 * sim.Millisecond,
			AbandonAfter: 400 * sim.Millisecond,
			RetryMax:     1,
		}
		c.Autoscale = AutoscaleConfig{
			Enabled: true,
			Policy:  "queue",
			Params:  autoscale.Params{QueueHigh: 2, StepPct: 10},
		}
		return c
	}
	want := runFleet(t, cfg(1, 1), tr, 300*sim.Second)
	s := want.Summary
	if s.RequestsOffered != s.RequestsCompleted+s.RequestsAbandoned+s.RequestsRetried+s.RequestsInFlight {
		t.Fatalf("closed-loop conservation broken: %+v", s)
	}
	if s.RequestsAbandoned == 0 || s.RequestsRetried == 0 || s.AutoscaleResizes == 0 {
		t.Fatalf("vacuous: abandoned=%d retried=%d resizes=%d",
			s.RequestsAbandoned, s.RequestsRetried, s.AutoscaleResizes)
	}
	got := runFleet(t, cfg(3, 2), tr, 300*sim.Second)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("closed-loop autoscaled report differs across shardings:\n%+v\nvs\n%+v",
			got.Summary, want.Summary)
	}
}

// TestFleetAutoscaleValidation covers the configuration rejections.
func TestFleetAutoscaleValidation(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 1, Arrivals: 3, Horizon: 10 * sim.Second})
	base := func() Config {
		return Config{
			Machines:  testMachines(2, 0),
			Serving:   ServingConfig{Enabled: true},
			Obs:       ObsConfig{Enabled: true},
			Autoscale: AutoscaleConfig{Enabled: true},
		}
	}
	for name, tc := range map[string]struct {
		mut  func(*Config)
		want string
	}{
		"no serving": {func(c *Config) { c.Serving = ServingConfig{}; c.Obs = ObsConfig{} },
			"requires the serving layer"},
		"unknown policy": {func(c *Config) { c.Autoscale.Policy = "nope" }, "unknown policy"},
		"ditto sans obs": {func(c *Config) { c.Obs = ObsConfig{} }, "requires Obs.Enabled"},
		"replicas closed loop": {func(c *Config) {
			c.Autoscale.Policy = "queue"
			c.Autoscale.Params.MaxReplicas = 2
			c.Serving.ClosedLoop = true
			c.Serving.Clients = 4
		}, "open-loop serving"},
		"policy sans enabled": {func(c *Config) {
			c.Autoscale = AutoscaleConfig{Policy: "queue"}
		}, "without Autoscale.Enabled"},
		"bad params": {func(c *Config) { c.Autoscale.Params.StepPct = -1 }, "negative step"},
		"serving options sans enabled": {func(c *Config) {
			c.Autoscale = AutoscaleConfig{}
			c.Serving = ServingConfig{Slots: 4}
		}, "without Serving.Enabled"},
	} {
		cfg := base()
		tc.mut(&cfg)
		if _, err := New(cfg, tr); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", name, err, tc.want)
		}
	}
	// The default policy is ditto, which needs the recorder: base as-is
	// must construct, and must resolve the empty policy name.
	f, err := New(base(), tr)
	if err != nil {
		t.Fatalf("defaulted autoscale config rejected: %v", err)
	}
	if f.cfg.Autoscale.Policy != "ditto" {
		t.Errorf("default policy = %q, want ditto", f.cfg.Autoscale.Policy)
	}
}

// TestClipPhases pins the replica demand-profile clipping: phases fully
// before the split are dropped, a straddling phase is truncated, later
// phases survive untouched, and the result never aliases the input.
func TestClipPhases(t *testing.T) {
	in := []workload.Phase{
		{Start: 0, End: 30 * sim.Second, Rate: 10},
		{Start: 30 * sim.Second, End: 60 * sim.Second, Rate: 20},
		{Start: 60 * sim.Second, End: 90 * sim.Second, Rate: 5},
	}
	mid := (in[0].End + in[1].Start) / 2
	out := clipPhases(in, mid)
	if len(out) == 0 {
		t.Fatal("clip dropped everything")
	}
	for i, ph := range out {
		if ph.Start < mid {
			t.Errorf("phase %d starts %v before clip point %v", i, ph.Start, mid)
		}
	}
	cut := clipPhases(in, in[0].Start+(in[0].End-in[0].Start)/2)
	if cut[0].Start != in[0].Start+(in[0].End-in[0].Start)/2 || cut[0].End != in[0].End {
		t.Errorf("straddling phase not truncated: %+v", cut[0])
	}
	if &cut[0] == &in[0] {
		t.Error("clip aliases the input slice")
	}
	if got := clipPhases(in, in[len(in)-1].End); len(got) != 0 {
		t.Errorf("clip past the profile returned %d phases", len(got))
	}
}
