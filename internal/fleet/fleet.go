package fleet

import (
	"container/heap"
	"fmt"
	"sort"

	"pasched/internal/consolidation"
	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/engine"
	"pasched/internal/host"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// MachineClass is one hardware class of the fleet: Count identical
// machines built from the spec (memory size, frequency ladder, power
// curve, Dom0 reserve).
type MachineClass struct {
	// Name identifies the class in reports.
	Name string
	// Count is how many machines of this class the fleet has.
	Count int
	// Spec is the machine hardware, as in the consolidation package.
	Spec consolidation.HostSpec
}

// DefaultEstate splits n machines into the built-in heterogeneous mix
// shared by cmd/pasfleet, examples/fleet and the gated benchmark: half
// desktop-class Optiplex 755s, a third Elite 8300s, the rest big-memory
// Xeon E5-2620 servers (the Table 1 part with the strongest deviation
// from frequency proportionality).
func DefaultEstate(n int) []MachineClass {
	opti := n / 2
	elite := n / 3
	xeon := n - opti - elite
	var out []MachineClass
	if opti > 0 {
		out = append(out, MachineClass{Name: "optiplex-755", Count: opti,
			Spec: consolidation.HostSpec{MemoryMB: 8192, Profile: cpufreq.Optiplex755()}})
	}
	if elite > 0 {
		out = append(out, MachineClass{Name: "elite-8300", Count: elite,
			Spec: consolidation.HostSpec{MemoryMB: 16384, Profile: cpufreq.Elite8300()}})
	}
	if xeon > 0 {
		out = append(out, MachineClass{Name: "xeon-e5-2620", Count: xeon,
			Spec: consolidation.HostSpec{MemoryMB: 24576, Profile: cpufreq.XeonE5_2620()}})
	}
	return out
}

// Config configures a Fleet.
type Config struct {
	// Machines lists the machine classes. Required, at least one machine
	// in total.
	Machines []MachineClass
	// UsePAS selects the scheduler on every machine: the PAS scheduler
	// (DVFS with credit compensation) or the fix-credit baseline pinned
	// at the maximum frequency.
	UsePAS bool
	// Scheduler selects the per-machine scheduler by name — "pas"
	// (cap-based credit compensation), "credit" (fix-credit), "credit2"
	// (weight-proportional work-conserving) or "pas-credit2" (the PAS
	// DVFS policy enforcing shares through Credit2 weights instead of
	// caps) — overriding UsePAS. Empty defers to UsePAS.
	Scheduler string
	// Policy decides placement (and consolidation targets). Default
	// first-fit.
	Policy Policy
	// ReportEvery is the reporting barrier interval: all powered-on
	// machines synchronize, energy and SLA roll up into one interval
	// sample, and empty machines power off. Default 30 s.
	ReportEvery sim.Time
	// ConsolidateEvery enables periodic consolidation: every interval the
	// fleet tries to empty its least-loaded machine through live
	// migrations chosen by the policy. Zero disables consolidation (empty
	// machines still power off at reporting barriers).
	ConsolidateEvery sim.Time
	// MigrationBandwidthMBps is the live-migration pre-copy bandwidth;
	// default consolidation.DefaultMigrationBandwidthMBps.
	MigrationBandwidthMBps float64
	// Workers bounds how many machines catch up concurrently at a
	// reporting barrier. Machines are fully independent hosts between
	// barriers, so the simulation result is identical for any worker
	// count. Zero selects GOMAXPROCS; 1 forces sequential stepping.
	Workers int
	// Seed seeds the per-VM workload arrival processes.
	Seed uint64
	// DeterministicArrivals selects fixed inter-arrival times inside each
	// VM's demand profile instead of Poisson arrivals.
	DeterministicArrivals bool
	// Reference forces every machine onto the reference
	// quantum-by-quantum stepping path (host.Config.Reference), the
	// baseline the batched==reference equivalence tests compare against.
	Reference bool
}

// SchedulerNames lists the scheduler names Config.Scheduler accepts,
// for CLI usage strings and up-front flag validation.
const SchedulerNames = "pas, credit (fix-credit), credit2, pas-credit2"

// ValidScheduler reports whether name is an accepted Config.Scheduler
// value (the empty string defers to UsePAS).
func ValidScheduler(name string) bool {
	switch name {
	case "", "pas", "credit", "fix-credit", "credit2", "pas-credit2":
		return true
	}
	return false
}

// withDefaults validates the configuration and fills defaults.
func (cfg Config) withDefaults() (Config, error) {
	total := 0
	for i, mc := range cfg.Machines {
		if mc.Count < 0 {
			return cfg, fmt.Errorf("fleet: machine class %d (%s) has negative count", i, mc.Name)
		}
		if mc.Name == "" {
			return cfg, fmt.Errorf("fleet: machine class %d without a name", i)
		}
		total += mc.Count
	}
	if total < 1 {
		return cfg, fmt.Errorf("fleet: need at least 1 machine, got %d", total)
	}
	if cfg.Policy == nil {
		cfg.Policy = NewFirstFit()
	}
	if cfg.ReportEvery == 0 {
		cfg.ReportEvery = 30 * sim.Second
	}
	if cfg.ReportEvery <= 0 {
		return cfg, fmt.Errorf("fleet: report interval %v not positive", cfg.ReportEvery)
	}
	if cfg.ConsolidateEvery < 0 {
		return cfg, fmt.Errorf("fleet: consolidation interval %v negative", cfg.ConsolidateEvery)
	}
	if cfg.MigrationBandwidthMBps == 0 {
		cfg.MigrationBandwidthMBps = consolidation.DefaultMigrationBandwidthMBps
	}
	if cfg.MigrationBandwidthMBps <= 0 {
		return cfg, fmt.Errorf("fleet: migration bandwidth %v not positive", cfg.MigrationBandwidthMBps)
	}
	if cfg.Workers < 1 {
		cfg.Workers = engine.DefaultWorkers()
	}
	// Membership is ValidScheduler's single source of truth; only the
	// UsePAS-conflict logic lives here.
	if !ValidScheduler(cfg.Scheduler) {
		return cfg, fmt.Errorf("fleet: unknown scheduler %q (accepted: %s)", cfg.Scheduler, SchedulerNames)
	}
	if cfg.Scheduler == "" {
		if cfg.UsePAS {
			cfg.Scheduler = "pas"
		} else {
			cfg.Scheduler = "credit"
		}
	} else if cfg.UsePAS && cfg.Scheduler != "pas" {
		return cfg, fmt.Errorf("fleet: UsePAS conflicts with scheduler %q", cfg.Scheduler)
	}
	return cfg, nil
}

// machine is one physical machine: a simulated host plus the fleet's
// bookkeeping (reservations included, so placement decisions never need
// to synchronize the host).
type machine struct {
	h          *host.Host
	class      int // index into Config.Machines
	spec       consolidation.HostSpec
	on         bool
	everOn     bool
	prevEnergy energy.Energy
	memUsed    int
	creditUsed float64
	offeredPct float64
	vmCount    int
	inbound    int // in-flight inbound migration reservations
	nextID     vm.ID
}

// capacityPct is the machine's placeable credit capacity.
func (m *machine) capacityPct() float64 { return 100 - m.spec.Dom0ReservePct }

// placedVM is one live (or migrating) VM.
type placedVM struct {
	req     Request
	class   string
	machine int
	guest   *vm.VM
	wl      *workload.WebApp
	arrive  sim.Time
	// prevDemanded/prevAttained are the portions already folded into
	// interval counters.
	prevDemanded sim.Work
	prevAttained sim.Work
	mig          *migration // non-nil while migrating away
	gone         bool
}

// demanded returns the VM's cumulative demanded work: everything its
// workload has offered so far, served or still queued.
func (p *placedVM) demanded() sim.Work { return p.wl.CompletedWork() + p.wl.Pending() }

// migration is one in-flight live migration (pre-copy: the VM keeps
// running on the source; the target holds a reservation).
type migration struct {
	name     string
	from, to int
	done     sim.Time
	canceled bool
}

// timedName orders heap entries by (time, name) so every queue pops
// deterministically.
type timedName struct {
	at   sim.Time
	name string
}

type timedHeap []timedName

func (h timedHeap) Len() int { return len(h) }
func (h timedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].name < h[j].name
}
func (h timedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timedHeap) Push(x any)   { *h = append(*h, x.(timedName)) }
func (h *timedHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h timedHeap) top() (sim.Time, bool) {
	if len(h) == 0 {
		return sim.Never, false
	}
	return h[0].at, true
}

// Fleet is the trace-driven heterogeneous datacenter simulator.
type Fleet struct {
	cfg      Config
	trace    *Trace
	machines []*machine
	vms      map[string]*placedVM
	order    []*placedVM // insertion order; compacted at barriers
	migs     map[string]*migration
	departQ  timedHeap
	migQ     timedHeap
	now      sim.Time
	horizon  sim.Time
	nextEv   int
	ran      bool

	statesBuf []MachineState
	tasksBuf  []func() error

	// cumulative counters. Energy and work are exact integer sums, so
	// the rollup order across machines and VMs cannot influence the
	// result: worker-pool determinism holds by construction, and float
	// conversion happens only when an Interval or the Summary is emitted.
	arrived, departed, rejected, migrated int
	poweredOn, poweredOff                 int
	energyTotal                           energy.Energy
	demanded, attained                    sim.Work

	// current-interval counters; the exact work/energy accumulators
	// back the float fields of the emitted Interval.
	iv         Interval
	ivEnergy   energy.Energy
	ivDemanded sim.Work
	ivAttained sim.Work
	lastSample sim.Time

	rep *Report
}

// New builds a fleet from the configuration and the trace. Machines
// start powered off; the policy powers them on as VMs arrive.
func New(cfg Config, trace *Trace) (*Fleet, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:   cfg,
		trace: trace,
		vms:   make(map[string]*placedVM),
		migs:  make(map[string]*migration),
	}
	for ci := range cfg.Machines {
		mc := &cfg.Machines[ci]
		spec, err := mc.Spec.WithDefaults()
		if err != nil {
			return nil, fmt.Errorf("fleet: machine class %s: %w", mc.Name, err)
		}
		if _, err := spec.Profile.Throughput(spec.Profile.Max()); err != nil {
			return nil, fmt.Errorf("fleet: machine class %s: %w", mc.Name, err)
		}
		for i := 0; i < mc.Count; i++ {
			h, err := newMachineHost(spec, cfg)
			if err != nil {
				return nil, fmt.Errorf("fleet: machine class %s #%d: %w", mc.Name, i, err)
			}
			f.machines = append(f.machines, &machine{
				h:      h,
				class:  ci,
				spec:   spec,
				nextID: 1,
			})
		}
	}
	return f, nil
}

// newMachineHost builds one machine host. Fleet machines sample their
// recorders at the fleet's reporting cadence — at thousands of machines
// the default 1 s sampling would dominate memory for data the fleet
// never reads (it reports its own interval curves).
func newMachineHost(spec consolidation.HostSpec, cfg Config) (*host.Host, error) {
	return consolidation.NewHostWithOptions(spec, cfg.UsePAS, consolidation.HostOptions{
		Reference:   cfg.Reference,
		SampleEvery: cfg.ReportEvery,
		Scheduler:   cfg.Scheduler,
	})
}

// Machines returns the number of machines.
func (f *Fleet) Machines() int { return len(f.machines) }

// Now returns the fleet's simulated time.
func (f *Fleet) Now() sim.Time { return f.now }

// BatchedQuanta returns the total quanta executed through batched steps
// across every machine, for the equivalence tests' vacuity checks.
func (f *Fleet) BatchedQuanta() int64 {
	var n int64
	for _, m := range f.machines {
		n += m.h.Engine().BatchedQuanta()
	}
	return n
}

// Host exposes one machine's simulated host (for tests and metrics).
func (f *Fleet) Host(i int) (*host.Host, error) {
	if i < 0 || i >= len(f.machines) {
		return nil, fmt.Errorf("fleet: machine %d out of range", i)
	}
	return f.machines[i].h, nil
}

// Run advances the fleet from time zero to the horizon, consuming the
// trace, and returns the cluster-level report. The fleet is single-shot:
// a second Run returns an error.
//
// The loop is event-driven: the fleet computes the earliest upcoming
// fleet-level event — a VM arrival or departure, a migration completion,
// a consolidation round, a reporting barrier — and lets each involved
// machine advance to exactly that moment, so per-host event-horizon
// batching folds the whole uninterrupted stretch. All machines are only
// synchronized together at reporting barriers, where they catch up
// concurrently on the worker pool; every piece of cross-machine
// bookkeeping runs sequentially in machine order, which makes the run
// deterministic for any worker count.
func (f *Fleet) Run(horizon sim.Time) (*Report, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: already ran; build a new fleet for another run")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("fleet: run horizon %v not positive", horizon)
	}
	f.ran = true
	f.horizon = horizon
	f.rep = &Report{}

	nextReport := f.cfg.ReportEvery
	if nextReport > horizon {
		nextReport = horizon
	}
	nextConsolidate := sim.Never
	if f.cfg.ConsolidateEvery > 0 {
		nextConsolidate = f.cfg.ConsolidateEvery
	}

	for {
		t := horizon
		if f.nextEv < len(f.trace.Events) {
			if at := f.trace.Events[f.nextEv].Arrive; at < t {
				t = at
			}
		}
		if at, ok := f.departQ.top(); ok && at < t {
			t = at
		}
		if at, ok := f.migQ.top(); ok && at < t {
			t = at
		}
		if nextConsolidate < t {
			t = nextConsolidate
		}
		if nextReport < t {
			t = nextReport
		}
		f.now = t

		// Fixed processing order at one instant: migrations land first,
		// departures free capacity, arrivals consume it, consolidation
		// sees the settled state, and the reporting barrier samples last.
		for len(f.migQ) > 0 && f.migQ[0].at <= t {
			if err := f.completeMigration(heap.Pop(&f.migQ).(timedName).name); err != nil {
				return nil, err
			}
		}
		for len(f.departQ) > 0 && f.departQ[0].at <= t {
			if err := f.depart(heap.Pop(&f.departQ).(timedName).name); err != nil {
				return nil, err
			}
		}
		for f.nextEv < len(f.trace.Events) && f.trace.Events[f.nextEv].Arrive <= t {
			ev := &f.trace.Events[f.nextEv]
			f.nextEv++
			if ev.Arrive >= horizon {
				continue
			}
			if err := f.arrive(ev); err != nil {
				return nil, err
			}
		}
		if t == nextConsolidate {
			if err := f.consolidate(); err != nil {
				return nil, err
			}
			nextConsolidate += f.cfg.ConsolidateEvery
		}
		if t == nextReport || t == horizon {
			if err := f.reportBarrier(t); err != nil {
				return nil, err
			}
			if t == nextReport {
				nextReport += f.cfg.ReportEvery
				if nextReport > horizon {
					nextReport = horizon
				}
			}
		}
		if t >= horizon {
			break
		}
	}
	f.finalize()
	return f.rep, nil
}

// sync advances one machine's host to the fleet's present. Machines lag
// behind between the events that involve them; syncing lets the host
// batch the whole gap.
func (f *Fleet) sync(m *machine) error {
	if m.h.Now() >= f.now {
		return nil
	}
	return m.h.RunUntil(f.now)
}

// powerOn switches a machine on: its host catches up to the present and
// the energy spent during the catch-up is excluded from the fleet total
// (the machine was off).
func (f *Fleet) powerOn(m *machine) error {
	if m.on {
		return nil
	}
	if err := f.sync(m); err != nil {
		return err
	}
	m.prevEnergy = m.h.Energy().Total()
	m.on = true
	m.everOn = true
	f.poweredOn++
	return nil
}

// rollup folds a powered-on machine's energy since the last rollup into
// the current interval — an exact integer delta, so the machine order of
// the rollup loop cannot change the sum.
func (f *Fleet) rollup(m *machine) {
	e := m.h.Energy().Total()
	f.ivEnergy = f.ivEnergy.Add(e.Sub(m.prevEnergy))
	m.prevEnergy = e
}

// machineStates builds the policy view. onlyOn restricts to powered-on
// machines; exclude (when >= 0) drops one machine (the consolidation
// victim).
func (f *Fleet) machineStates(onlyOn bool, exclude int) []MachineState {
	states := f.statesBuf[:0]
	for i, m := range f.machines {
		if i == exclude || (onlyOn && !m.on) {
			continue
		}
		states = append(states, MachineState{
			Index:          i,
			Class:          f.cfg.Machines[m.class].Name,
			On:             m.on,
			FreeMemMB:      m.spec.MemoryMB - m.memUsed,
			FreeCreditPct:  m.capacityPct() - m.creditUsed,
			OfferedLoadPct: m.offeredPct,
			Profile:        m.spec.Profile,
		})
	}
	f.statesBuf = states
	return states
}

// arrive handles one trace arrival: the policy picks a machine, the
// machine (powered on if needed) synchronizes to the present, and the VM
// attaches with its demand profile.
func (f *Fleet) arrive(ev *VMEvent) error {
	class := f.trace.Classes[ev.Class]
	req := Request{
		Name:         ev.Name,
		CreditPct:    class.CreditPct,
		MemoryMB:     class.MemoryMB,
		MeanActivity: ev.Activity,
	}
	idx, ok := f.cfg.Policy.Place(f.machineStates(false, -1), req)
	if !ok {
		f.rejected++
		f.iv.Rejected++
		return nil
	}
	m, err := f.checkPlacement(idx, req, false)
	if err != nil {
		return err
	}
	if err := f.powerOn(m); err != nil {
		return err
	}
	if err := f.sync(m); err != nil {
		return err
	}

	wl, err := workload.NewWebApp(workload.WebAppConfig{
		Phases:        ev.demandPhases(class, f.horizon),
		Deterministic: f.cfg.DeterministicArrivals,
		MaxBacklog:    -1, // unbounded: unserved demand stays visible to the SLA
		Seed:          f.cfg.Seed + uint64(f.arrived)*0x9e3779b97f4a7c15 + 1,
	})
	if err != nil {
		return fmt.Errorf("fleet: VM %s workload: %w", ev.Name, err)
	}
	guest, err := vm.New(m.nextID, vm.Config{Name: ev.Name, Credit: class.CreditPct})
	if err != nil {
		return fmt.Errorf("fleet: VM %s: %w", ev.Name, err)
	}
	m.nextID++
	guest.SetWorkload(wl)
	if err := m.h.AddVM(guest); err != nil {
		return fmt.Errorf("fleet: VM %s on machine %d: %w", ev.Name, idx, err)
	}
	m.memUsed += req.MemoryMB
	m.creditUsed += req.CreditPct
	m.offeredPct += req.CreditPct * req.MeanActivity
	m.vmCount++

	p := &placedVM{req: req, class: ev.Class, machine: idx, guest: guest, wl: wl, arrive: f.now}
	f.vms[ev.Name] = p
	f.order = append(f.order, p)
	if depart := ev.Arrive + ev.Lifetime; depart < f.horizon {
		heap.Push(&f.departQ, timedName{at: depart, name: ev.Name})
	}
	f.arrived++
	f.iv.Arrivals++
	return nil
}

// checkPlacement validates a policy decision, turning a bad pick into a
// diagnosable error instead of silent misaccounting.
func (f *Fleet) checkPlacement(idx int, req Request, migrating bool) (*machine, error) {
	kind := "place"
	if migrating {
		kind = "migrate"
	}
	if idx < 0 || idx >= len(f.machines) {
		return nil, fmt.Errorf("fleet: policy %s: %s %s on machine %d: out of range [0,%d)",
			f.cfg.Policy.Name(), kind, req.Name, idx, len(f.machines))
	}
	m := f.machines[idx]
	if migrating && !m.on {
		return nil, fmt.Errorf("fleet: policy %s: %s %s on machine %d: machine is powered off",
			f.cfg.Policy.Name(), kind, req.Name, idx)
	}
	if m.spec.MemoryMB-m.memUsed < req.MemoryMB {
		return nil, fmt.Errorf("fleet: policy %s: %s %s on machine %d: memory %d+%d > %d MB",
			f.cfg.Policy.Name(), kind, req.Name, idx, m.memUsed, req.MemoryMB, m.spec.MemoryMB)
	}
	if m.capacityPct()-m.creditUsed < req.CreditPct {
		return nil, fmt.Errorf("fleet: policy %s: %s %s on machine %d: credit %v+%v > %v%%",
			f.cfg.Policy.Name(), kind, req.Name, idx, m.creditUsed, req.CreditPct, m.capacityPct())
	}
	return m, nil
}

// depart removes a VM at the end of its lifetime, folding its final SLA
// deltas into the current interval. A VM departing mid-migration aborts
// the pre-copy and releases the target reservation.
func (f *Fleet) depart(name string) error {
	p, ok := f.vms[name]
	if !ok || p.gone {
		return fmt.Errorf("fleet: departure of unknown VM %q", name)
	}
	if p.mig != nil {
		f.abortMigration(p)
	}
	m := f.machines[p.machine]
	if err := f.sync(m); err != nil {
		return err
	}
	if err := m.h.RemoveVM(p.guest.ID()); err != nil {
		return fmt.Errorf("fleet: depart %s: %w", name, err)
	}
	m.memUsed -= p.req.MemoryMB
	m.creditUsed -= p.req.CreditPct
	m.offeredPct -= p.req.CreditPct * p.req.MeanActivity
	m.vmCount--
	f.foldVM(p)
	f.recordOutcome(p, true)
	p.gone = true
	delete(f.vms, name)
	f.departed++
	f.iv.Departures++
	return nil
}

// tickVM integrates the VM's workload bookkeeping up to its host's
// clock before the fleet reads it. Batched host stretches skip workload
// Ticks (the batching certification proves nothing arrives inside
// them), so the pending-work reading would otherwise lag behind the
// host clock; ticking here is idempotent and keeps batched and
// reference runs reporting identical demand.
func (f *Fleet) tickVM(p *placedVM) {
	p.wl.Tick(f.machines[p.machine].h.Now())
}

// foldVM folds a VM's demanded/attained work since the last fold into
// the current interval. The VM's machine must be synchronized.
func (f *Fleet) foldVM(p *placedVM) {
	f.tickVM(p)
	d, a := p.demanded(), p.wl.CompletedWork()
	f.ivDemanded += d - p.prevDemanded
	f.ivAttained += a - p.prevAttained
	p.prevDemanded, p.prevAttained = d, a
}

// recordOutcome appends the VM's final per-VM SLA record.
func (f *Fleet) recordOutcome(p *placedVM, departed bool) {
	f.tickVM(p)
	d, a := p.demanded(), p.wl.CompletedWork()
	f.rep.PerVM = append(f.rep.PerVM, VMOutcome{
		Name:         p.req.Name,
		Class:        p.class,
		Machine:      p.machine,
		ArriveS:      p.arrive.Seconds(),
		DepartS:      f.now.Seconds(),
		Departed:     departed,
		DemandedWork: d.Units(),
		AttainedWork: a.Units(),
		SLA:          slaOf(a, d),
	})
}

// slaOf is attained/demanded, defined as 1 when nothing was demanded.
// The inputs are exact integer work tallies; the division is the float
// report edge.
func slaOf(attained, demanded sim.Work) float64 {
	if demanded <= 0 {
		return 1
	}
	sla := float64(attained) / float64(demanded)
	if sla > 1 {
		sla = 1
	}
	return sla
}

// consolidate tries to empty the least-offered-load machine through live
// migrations chosen by the policy. Only machines already carrying load
// are eligible targets — moving a victim's VMs onto an empty machine
// cannot reduce the active count, it just ping-pongs the load. Rounds
// are skipped while migrations are in flight, and abandoned (without
// partial moves) when the victim cannot be fully emptied — a partial
// move cannot free a machine.
func (f *Fleet) consolidate() error {
	// f.migs is the exact in-flight census: completions and aborts both
	// delete from it, while canceled entries linger in the migQ heap
	// until their original completion time pops.
	if len(f.migs) > 0 {
		return nil
	}
	victim, loaded := -1, 0
	for i, m := range f.machines {
		if !m.on || m.vmCount == 0 || m.inbound > 0 {
			continue
		}
		loaded++
		if victim < 0 || m.offeredPct < f.machines[victim].offeredPct {
			victim = i
		}
	}
	if victim < 0 || loaded < 2 {
		return nil
	}
	var moving []*placedVM
	for _, p := range f.order {
		if !p.gone && p.machine == victim && p.mig == nil {
			moving = append(moving, p)
		}
	}
	if len(moving) == 0 {
		return nil
	}
	// Tentative placement against a scratch copy of the state, restricted
	// to loaded machines, largest memory first (the classic FFD order).
	var states []MachineState
	for _, st := range f.machineStates(true, victim) {
		if m := f.machines[st.Index]; m.vmCount > 0 || m.inbound > 0 {
			states = append(states, st)
		}
	}
	sort.Slice(moving, func(i, j int) bool {
		if moving[i].req.MemoryMB != moving[j].req.MemoryMB {
			return moving[i].req.MemoryMB > moving[j].req.MemoryMB
		}
		return moving[i].req.Name < moving[j].req.Name
	})
	type move struct {
		p  *placedVM
		to int
	}
	var plan []move
	for _, p := range moving {
		idx, ok := f.cfg.Policy.Place(states, p.req)
		if !ok {
			return nil // victim cannot be emptied this round
		}
		found := false
		for si := range states {
			if states[si].Index == idx {
				if !states[si].On || !states[si].Fits(p.req) {
					return f.placementError(idx, p.req)
				}
				states[si].FreeMemMB -= p.req.MemoryMB
				states[si].FreeCreditPct -= p.req.CreditPct
				states[si].OfferedLoadPct += p.req.CreditPct * p.req.MeanActivity
				found = true
				break
			}
		}
		if !found {
			return f.placementError(idx, p.req)
		}
		plan = append(plan, move{p: p, to: idx})
	}
	for _, mv := range plan {
		if _, err := f.checkPlacement(mv.to, mv.p.req, true); err != nil {
			return err
		}
		dst := f.machines[mv.to]
		dst.memUsed += mv.p.req.MemoryMB
		dst.creditUsed += mv.p.req.CreditPct
		dst.offeredPct += mv.p.req.CreditPct * mv.p.req.MeanActivity
		dst.inbound++
		dur := sim.FromSeconds(float64(mv.p.req.MemoryMB) / f.cfg.MigrationBandwidthMBps)
		mg := &migration{name: mv.p.req.Name, from: victim, to: mv.to, done: f.now + dur}
		mv.p.mig = mg
		f.migs[mg.name] = mg
		heap.Push(&f.migQ, timedName{at: mg.done, name: mg.name})
	}
	return nil
}

// placementError reports a consolidation pick the fleet state disagrees
// with.
func (f *Fleet) placementError(idx int, req Request) error {
	return fmt.Errorf("fleet: policy %s: migrate %s to machine %d: not an eligible target",
		f.cfg.Policy.Name(), req.Name, idx)
}

// abortMigration cancels an in-flight migration (the VM is departing),
// releasing the target-side reservation. The queued completion entry
// stays in the heap and is skipped when it pops.
func (f *Fleet) abortMigration(p *placedVM) {
	mg := p.mig
	mg.canceled = true
	dst := f.machines[mg.to]
	dst.memUsed -= p.req.MemoryMB
	dst.creditUsed -= p.req.CreditPct
	dst.offeredPct -= p.req.CreditPct * p.req.MeanActivity
	dst.inbound--
	p.mig = nil
	delete(f.migs, mg.name)
}

// completeMigration finishes one due migration: the guest detaches from
// the source and a fresh guest with the same (still-running) workload
// attaches to the target, whose reservation becomes real usage.
func (f *Fleet) completeMigration(name string) error {
	mg, ok := f.migs[name]
	if !ok || mg.canceled {
		return nil // aborted by a departure
	}
	delete(f.migs, name)
	p := f.vms[name]
	src, dst := f.machines[mg.from], f.machines[mg.to]
	if err := f.sync(src); err != nil {
		return err
	}
	if err := f.sync(dst); err != nil {
		return err
	}
	if err := src.h.RemoveVM(p.guest.ID()); err != nil {
		return fmt.Errorf("fleet: migrate %s: %w", name, err)
	}
	src.memUsed -= p.req.MemoryMB
	src.creditUsed -= p.req.CreditPct
	src.offeredPct -= p.req.CreditPct * p.req.MeanActivity
	src.vmCount--
	guest, err := vm.New(dst.nextID, vm.Config{Name: name, Credit: p.req.CreditPct})
	if err != nil {
		return fmt.Errorf("fleet: migrate %s: %w", name, err)
	}
	dst.nextID++
	guest.SetWorkload(p.wl)
	if err := dst.h.AddVM(guest); err != nil {
		return fmt.Errorf("fleet: migrate %s to machine %d: %w", name, mg.to, err)
	}
	dst.inbound--
	dst.vmCount++
	p.guest = guest
	p.machine = mg.to
	p.mig = nil
	f.migrated++
	f.iv.Migrations++
	return nil
}

// reportBarrier synchronizes every powered-on machine to t (concurrently
// on the worker pool), rolls energy and SLA into one interval sample,
// and powers off machines that ended up empty.
func (f *Fleet) reportBarrier(t sim.Time) error {
	tasks := f.tasksBuf[:0]
	for _, m := range f.machines {
		if !m.on || m.h.Now() >= t {
			continue
		}
		m := m
		tasks = append(tasks, func() error { return m.h.RunUntil(t) })
	}
	if err := engine.RunParallel(f.cfg.Workers, tasks); err != nil {
		return err
	}
	f.tasksBuf = tasks[:0]

	active := 0
	for _, m := range f.machines {
		if m.on {
			active++
			f.rollup(m)
		}
	}
	live := f.order[:0]
	for _, p := range f.order {
		if p.gone {
			continue
		}
		f.foldVM(p)
		live = append(live, p)
	}
	for i := len(live); i < len(f.order); i++ {
		f.order[i] = nil
	}
	f.order = live

	f.iv.TimeS = t.Seconds()
	f.iv.ActiveMachines = active
	f.iv.LiveVMs = len(live)
	// Emit the interval: the exact integer accumulators convert to the
	// report's float fields here and nowhere earlier.
	f.iv.Joules = f.ivEnergy.Joules()
	f.iv.DemandedWork = f.ivDemanded.Units()
	f.iv.AttainedWork = f.ivAttained.Units()
	f.iv.SLA = slaOf(f.ivAttained, f.ivDemanded)
	if dt := (t - f.lastSample).Seconds(); dt > 0 {
		f.iv.AvgPowerW = f.iv.Joules / dt
	}
	f.rep.Intervals = append(f.rep.Intervals, f.iv)
	f.energyTotal = f.energyTotal.Add(f.ivEnergy)
	f.demanded += f.ivDemanded
	f.attained += f.ivAttained
	f.lastSample = t
	f.iv = Interval{}
	f.ivEnergy = energy.Energy{}
	f.ivDemanded, f.ivAttained = 0, 0

	// Power off machines the departures emptied (their energy up to the
	// barrier was already rolled up above). Keeping them on until the
	// barrier is the fleet's power-off grace period.
	for _, m := range f.machines {
		if m.on && m.vmCount == 0 && m.inbound == 0 {
			m.on = false
			f.poweredOff++
		}
	}
	return nil
}

// finalize records the still-live VMs and assembles the summary.
func (f *Fleet) finalize() {
	for _, p := range f.order {
		if !p.gone {
			f.recordOutcome(p, false)
		}
	}
	sched := f.cfg.Scheduler
	if sched == "credit" {
		sched = "fix-credit" // keep the historical report name
	}
	s := Summary{
		Policy:    f.cfg.Policy.Name(),
		Scheduler: sched,
		Machines:  len(f.machines),
		HorizonS:  f.horizon.Seconds(),
		Arrived:   f.arrived,
		Departed:  f.departed,
		Rejected:  f.rejected,
		Migrated:  f.migrated,
		PowerOns:  f.poweredOn,
		PowerOffs: f.poweredOff,

		TotalJoules: f.energyTotal.Joules(),
		OverallSLA:  slaOf(f.attained, f.demanded),
	}
	for _, m := range f.machines {
		if m.everOn {
			s.EverPoweredOn++
		}
		s.BatchedQuanta += m.h.Engine().BatchedQuanta()
		s.SteppedQuanta += m.h.Engine().SteppedQuanta()
	}
	sumDt, sumActive := 0.0, 0.0
	prev := 0.0
	for _, iv := range f.rep.Intervals {
		dt := iv.TimeS - prev
		prev = iv.TimeS
		sumDt += dt
		sumActive += float64(iv.ActiveMachines) * dt
		if iv.ActiveMachines > s.PeakActiveMachines {
			s.PeakActiveMachines = iv.ActiveMachines
		}
	}
	if sumDt > 0 {
		s.MeanActiveMachines = sumActive / sumDt
		s.MeanPowerW = s.TotalJoules / sumDt
	}
	n := 0
	s.MinVMSLA = 1
	for _, o := range f.rep.PerVM {
		s.MeanVMSLA += o.SLA
		if o.SLA < s.MinVMSLA {
			s.MinVMSLA = o.SLA
		}
		if o.SLA < 0.95 {
			s.VMsBelow95++
		}
		n++
	}
	if n > 0 {
		s.MeanVMSLA /= float64(n)
	} else {
		s.MeanVMSLA = 1
	}
	f.rep.Summary = s
}
