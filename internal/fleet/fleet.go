package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pasched/internal/autoscale"
	"pasched/internal/consolidation"
	"pasched/internal/cpufreq"
	"pasched/internal/energy"
	"pasched/internal/engine"
	"pasched/internal/host"
	"pasched/internal/obs"
	"pasched/internal/serve"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// MachineClass is one hardware class of the fleet: Count identical
// machines built from the spec (memory size, frequency ladder, power
// curve, Dom0 reserve).
type MachineClass struct {
	// Name identifies the class in reports.
	Name string
	// Count is how many machines of this class the fleet has.
	Count int
	// Spec is the machine hardware, as in the consolidation package.
	Spec consolidation.HostSpec
}

// DefaultEstate splits n machines into the built-in heterogeneous mix
// shared by cmd/pasfleet, examples/fleet and the gated benchmark: half
// desktop-class Optiplex 755s, a third Elite 8300s, the rest big-memory
// Xeon E5-2620 servers (the Table 1 part with the strongest deviation
// from frequency proportionality).
func DefaultEstate(n int) []MachineClass {
	opti := n / 2
	elite := n / 3
	xeon := n - opti - elite
	var out []MachineClass
	if opti > 0 {
		out = append(out, MachineClass{Name: "optiplex-755", Count: opti,
			Spec: consolidation.HostSpec{MemoryMB: 8192, Profile: cpufreq.Optiplex755()}})
	}
	if elite > 0 {
		out = append(out, MachineClass{Name: "elite-8300", Count: elite,
			Spec: consolidation.HostSpec{MemoryMB: 16384, Profile: cpufreq.Elite8300()}})
	}
	if xeon > 0 {
		out = append(out, MachineClass{Name: "xeon-e5-2620", Count: xeon,
			Spec: consolidation.HostSpec{MemoryMB: 24576, Profile: cpufreq.XeonE5_2620()}})
	}
	return out
}

// Config configures a Fleet.
type Config struct {
	// Machines lists the machine classes. Required, at least one machine
	// in total.
	Machines []MachineClass
	// UsePAS selects the scheduler on every machine: the PAS scheduler
	// (DVFS with credit compensation) or the fix-credit baseline pinned
	// at the maximum frequency.
	//
	// Deprecated: UsePAS survives as a thin alias for Scheduler "pas"
	// (true) / "credit" (false); new code should set Scheduler.
	UsePAS bool
	// Scheduler selects the per-machine scheduler by name, resolved
	// against the scheduler registry shared with the consolidation
	// package and the CLIs — see SchedulerNames for the accepted names
	// and aliases, consolidation.Schedulers for descriptions. It
	// overrides UsePAS; empty defers to UsePAS.
	Scheduler string
	// Policy decides placement (and consolidation targets). Default
	// first-fit.
	Policy Policy
	// ReportEvery is the reporting barrier interval: all shards
	// synchronize, energy and SLA reduce into one interval sample, and
	// empty machines power off. Default 30 s.
	ReportEvery sim.Time
	// ConsolidateEvery enables periodic consolidation: every interval the
	// fleet tries to empty its least-loaded machine through live
	// migrations chosen by the policy. Zero disables consolidation (empty
	// machines still power off at reporting barriers).
	ConsolidateEvery sim.Time
	// MigrationBandwidthMBps is the live-migration pre-copy bandwidth;
	// default consolidation.DefaultMigrationBandwidthMBps.
	MigrationBandwidthMBps float64
	// Shards partitions the machines round-robin into independently
	// stepped shards, each with its own event queue and persistent
	// worker. Every cross-shard operation is resolved by the sequential
	// coordinator in (time, seq) order, and all reductions are exact
	// integers, so the report is bit-identical for every shard count.
	// Zero selects one shard per worker; values above the machine count
	// are clamped to it.
	Shards int
	// Workers bounds how many shard workers execute simultaneously.
	// The simulation result is identical for any worker count. Zero
	// selects GOMAXPROCS; 1 executes every command inline on the
	// coordinator with no goroutines at all.
	Workers int
	// Seed seeds the per-VM workload arrival processes.
	Seed uint64
	// DeterministicArrivals selects fixed inter-arrival times inside each
	// VM's demand profile instead of Poisson arrivals.
	DeterministicArrivals bool
	// Reference forces every machine onto the reference
	// quantum-by-quantum stepping path (host.Config.Reference), the
	// baseline the batched==reference equivalence tests compare against.
	Reference bool
	// Sinks receive the report stream incrementally: every interval
	// sample, every per-VM outcome, and the final summary, in
	// deterministic order. See Sink.
	Sinks []Sink
	// DiscardReport drops the in-memory interval and per-VM buffers:
	// Run's Report carries only the Summary, and memory stays
	// O(machines + live VMs) instead of O(history) — the mode for
	// million-machine runs combined with streaming Sinks.
	DiscardReport bool
	// Serving enables the request-level serving layer: per-VM client
	// populations, service slots and reply-latency histograms layered
	// on the CPU simulation. See ServingConfig.
	Serving ServingConfig
	// Obs enables the opt-in flight recorder: a deterministic event
	// stream across every layer plus the per-VM throttle-attribution
	// ledger. See ObsConfig.
	Obs ObsConfig
	// Autoscale enables the elastic control loop: a policy-pluggable
	// controller deciding cap/weight resizes, overhead changes and
	// replica scale-out/in at every reporting barrier. Requires
	// Serving.Enabled. See AutoscaleConfig.
	Autoscale AutoscaleConfig
}

// AutoscaleConfig configures the optional autoscaler
// (internal/autoscale). When enabled, the coordinator observes every
// live VM at each reporting barrier — serving queue depth and outcome
// counters, machine credit headroom, interval latency percentiles, and
// (with Obs enabled) the throttle-attribution ledger — hands the
// signals to the policy, and applies its resize actions at the barrier
// instant as ordinary data-plane commands. Decisions are a pure
// function of coordinator-ordered state, so an autoscaled report stays
// DeepEqual-bit-exact for every shard and worker count.
type AutoscaleConfig struct {
	// Enabled switches the autoscaler on. Requires Serving.Enabled.
	Enabled bool
	// Policy names the decision policy (internal/autoscale registry:
	// "ditto", "queue", "latency"). Empty selects "ditto" — which
	// requires Obs.Enabled, since it triggers on attributed capped time
	// rather than raw queue depth.
	Policy string
	// Params tunes the policy; zero fields take the documented
	// defaults. Params.MaxReplicas > 1 additionally requires the
	// open-loop serving model (replicas split one seeded arrival
	// stream; closed-loop client populations cannot be split).
	Params autoscale.Params
}

// ObsConfig configures the optional flight recorder (internal/obs).
// When enabled, every machine host and the coordinator emit decision
// events into per-shard rings, drained and merged into
// (At, Lane, Seq)-sorted windows at reporting barriers; the merged
// stream — and the per-VM integer-microsecond attribution ledgers folded
// into VMOutcome and Summary — are bit-identical for every shard and
// worker count. When disabled, every hook collapses to one nil check:
// the hot path pays zero allocations (benchmark-gated).
type ObsConfig struct {
	// Enabled switches the recorder on.
	Enabled bool
	// Sink, when non-nil, receives every merged event window (e.g. a
	// Perfetto trace writer). Requires Enabled.
	Sink obs.EventSink
	// Buffer retains the merged stream in memory (Fleet.ObsEvents), for
	// tests and small runs. Requires Enabled.
	Buffer bool
}

// ServingConfig configures the optional request-level serving layer
// (internal/serve): every placed VM gets a seeded client population
// generating an open-loop request stream from the VM's demand profile,
// served by per-VM slots whose rate is the VM's *attained* CPU work —
// so credit enforcement and frequency scaling show up as user-visible
// queueing and tail latency. Servers advance at reporting barriers on
// the exact integer attained-work ledger, and latencies reduce
// machine → shard → fleet as fixed-ladder histogram sums, so every
// percentile in the report is bit-identical for any shard and worker
// count.
type ServingConfig struct {
	// Enabled switches the serving layer on.
	Enabled bool
	// Slots is the per-VM concurrent service slot count; zero selects
	// serve.DefaultSlots.
	Slots int
	// RequestCost is the service demand of one request in work units;
	// zero selects workload.DefaultRequestCost /
	// serve.DefaultRequestCostDivisor — a fifth of a demand request, so
	// a healthy VM serves its stream with five-fold headroom and
	// queueing appears exactly when enforcement throttles it.
	RequestCost float64
	// OverheadPermille routes that fraction of every VM's attained work
	// to its emulator/IO threads before request service — the
	// per-VM overhead consumers the autoscaler rebalances against vCPU
	// shares. [0, 999].
	OverheadPermille int64
	// ClosedLoop replaces the open-loop arrival stream with a seeded
	// closed-loop client population per VM: each client issues one
	// request, waits for the reply, thinks, and re-issues, so offered
	// load backs off under throttling the way real clients do.
	// Incompatible with replica scale-out (the stream cannot be split).
	ClosedLoop bool
	// Clients is the closed-loop population size per VM; zero selects
	// 4x Slots.
	Clients int
	// ThinkTime is the closed-loop mean think time (exponential, or
	// fixed with Config.DeterministicArrivals).
	ThinkTime sim.Time
	// AbandonAfter, when positive, abandons requests still queued that
	// long after issue; RetryMax re-queues each abandoned request at
	// most that many times first. Both loops honor them.
	AbandonAfter sim.Time
	RetryMax     int
}

// SchedulerNames renders the scheduler names Config.Scheduler accepts —
// the consolidation scheduler registry, the single source of truth
// shared with every CLI — for usage strings and up-front validation.
func SchedulerNames() string { return consolidation.SchedulerNames() }

// ValidScheduler reports whether name is an accepted Config.Scheduler
// value (the empty string defers to UsePAS).
func ValidScheduler(name string) bool {
	return name == "" || consolidation.ValidScheduler(name)
}

// withDefaults validates the configuration and fills defaults.
func (cfg Config) withDefaults() (Config, error) {
	total := 0
	for i, mc := range cfg.Machines {
		if mc.Count < 0 {
			return cfg, fmt.Errorf("fleet: machine class %d (%s) has negative count", i, mc.Name)
		}
		if mc.Name == "" {
			return cfg, fmt.Errorf("fleet: machine class %d without a name", i)
		}
		total += mc.Count
	}
	if total < 1 {
		return cfg, fmt.Errorf("fleet: need at least 1 machine, got %d", total)
	}
	if cfg.Policy == nil {
		cfg.Policy = NewFirstFit()
	}
	if cfg.ReportEvery == 0 {
		cfg.ReportEvery = 30 * sim.Second
	}
	if cfg.ReportEvery <= 0 {
		return cfg, fmt.Errorf("fleet: report interval %v not positive", cfg.ReportEvery)
	}
	if cfg.ConsolidateEvery < 0 {
		return cfg, fmt.Errorf("fleet: consolidation interval %v negative", cfg.ConsolidateEvery)
	}
	if cfg.MigrationBandwidthMBps == 0 {
		cfg.MigrationBandwidthMBps = consolidation.DefaultMigrationBandwidthMBps
	}
	if cfg.MigrationBandwidthMBps <= 0 {
		return cfg, fmt.Errorf("fleet: migration bandwidth %v not positive", cfg.MigrationBandwidthMBps)
	}
	if cfg.Workers < 1 {
		cfg.Workers = engine.DefaultWorkers()
	}
	if cfg.Shards < 0 {
		return cfg, fmt.Errorf("fleet: shard count %d negative (0 selects one shard per worker)", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = cfg.Workers
	}
	if cfg.Shards > total {
		cfg.Shards = total
	}
	// The registry is membership's single source of truth; only the
	// UsePAS-conflict logic lives here.
	if !ValidScheduler(cfg.Scheduler) {
		return cfg, fmt.Errorf("fleet: unknown scheduler %q (accepted: %s)", cfg.Scheduler, SchedulerNames())
	}
	if cfg.Scheduler == "" {
		if cfg.UsePAS {
			cfg.Scheduler = "pas"
		} else {
			cfg.Scheduler = "credit"
		}
	} else {
		cfg.Scheduler, _ = consolidation.CanonicalScheduler(cfg.Scheduler)
		if cfg.UsePAS && cfg.Scheduler != "pas" {
			return cfg, fmt.Errorf("fleet: UsePAS conflicts with scheduler %q", cfg.Scheduler)
		}
	}
	if !cfg.Obs.Enabled {
		if cfg.Obs.Sink != nil {
			return cfg, fmt.Errorf("fleet: Obs.Sink set without Obs.Enabled")
		}
		if cfg.Obs.Buffer {
			return cfg, fmt.Errorf("fleet: Obs.Buffer set without Obs.Enabled")
		}
	}
	if cfg.Serving.Enabled {
		if cfg.Serving.Slots == 0 {
			cfg.Serving.Slots = serve.DefaultSlots
		}
		if cfg.Serving.RequestCost == 0 {
			cfg.Serving.RequestCost = workload.DefaultRequestCost / serve.DefaultRequestCostDivisor
		}
		if cfg.Serving.ClosedLoop && cfg.Serving.Clients == 0 {
			cfg.Serving.Clients = 4 * cfg.Serving.Slots
		}
		// Probe-validate the resolved serving parameters here, so a bad
		// slot count, cost, overhead share or client population fails at
		// New instead of mid-run on a shard.
		if _, err := serve.New(serve.Config{
			Slots:            cfg.Serving.Slots,
			RequestCost:      cfg.Serving.RequestCost,
			OverheadPermille: cfg.Serving.OverheadPermille,
			ClosedLoop:       cfg.Serving.ClosedLoop,
			Clients:          cfg.Serving.Clients,
			ThinkTime:        cfg.Serving.ThinkTime,
			AbandonAfter:     cfg.Serving.AbandonAfter,
			RetryMax:         cfg.Serving.RetryMax,
		}); err != nil {
			return cfg, fmt.Errorf("fleet: %w", err)
		}
	} else {
		zero := ServingConfig{}
		if cfg.Serving != zero {
			return cfg, fmt.Errorf("fleet: serving options set without Serving.Enabled")
		}
	}
	if cfg.Autoscale.Enabled {
		if !cfg.Serving.Enabled {
			return cfg, fmt.Errorf("fleet: autoscaler requires the serving layer (Serving.Enabled)")
		}
		if cfg.Autoscale.Policy == "" {
			cfg.Autoscale.Policy = "ditto"
		}
		prm, err := cfg.Autoscale.Params.WithDefaults()
		if err != nil {
			return cfg, fmt.Errorf("fleet: %w", err)
		}
		cfg.Autoscale.Params = prm
		pol, err := autoscale.New(cfg.Autoscale.Policy, prm)
		if err != nil {
			return cfg, fmt.Errorf("fleet: %w", err)
		}
		if pol.RequiresObs() && !cfg.Obs.Enabled {
			return cfg, fmt.Errorf("fleet: autoscale policy %q reads the attribution ledger and requires Obs.Enabled",
				cfg.Autoscale.Policy)
		}
		if prm.MaxReplicas > 1 && cfg.Serving.ClosedLoop {
			return cfg, fmt.Errorf("fleet: replica scale-out (MaxReplicas %d) requires the open-loop serving model",
				prm.MaxReplicas)
		}
	} else if cfg.Autoscale.Policy != "" {
		return cfg, fmt.Errorf("fleet: Autoscale.Policy set without Autoscale.Enabled")
	}
	return cfg, nil
}

// ctlVM is the control-plane half of a placed VM: what the coordinator
// needs for placement, consolidation and lifecycle bookkeeping. The
// data-plane half (guest, workload, fold cursors) lives in dataVM and
// is owned by the hosting machine's shard.
type ctlVM struct {
	req     Request
	class   string
	machine int
	arrive  sim.Time
	mig     *migration // non-nil while migrating away
	gone    bool
	d       *dataVM

	// autoscaler state: baseCap is the contracted (trace class) credit
	// the cap shrinks toward while req.CreditPct tracks the current
	// booking; parent links a replica to its group parent; reps lists a
	// parent's live replicas in share order; spawned counts replicas
	// ever created (the replica seed/name lane, never reused).
	baseCap float64
	parent  *ctlVM
	reps    []*ctlVM
	spawned int
}

// migration is one in-flight live migration (pre-copy: the VM keeps
// running on the source; the target holds a reservation).
type migration struct {
	name     string
	from, to int
	done     sim.Time
	canceled bool
}

// timedName orders heap entries by (time, name) so every queue pops
// deterministically. The heap is hand-rolled (no container/heap): the
// interface boxing there costs one allocation per push, and departure
// pushes happen for every arrival.
type timedName struct {
	at   sim.Time
	name string
}

type timedHeap []timedName

func (h timedHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].name < h[j].name
}

func (h *timedHeap) push(tn timedName) {
	a := append(*h, tn)
	for i := len(a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
	*h = a
}

func (h *timedHeap) pop() timedName {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = timedName{}
	a = a[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && a.less(r, c) {
			c = r
		}
		if !a.less(c, i) {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	*h = a
	return top
}

func (h timedHeap) top() (sim.Time, bool) {
	if len(h) == 0 {
		return sim.Never, false
	}
	return h[0].at, true
}

// Fleet is the trace-driven heterogeneous datacenter simulator.
//
// It is split into a control plane and a data plane. The control plane
// — placement, consolidation planning, migration and power bookkeeping,
// every decision — runs sequentially on the coordinator (Run's
// goroutine) against pure bookkeeping state that never reads the
// simulated hosts. The data plane — host stepping, guest attach/detach,
// energy and work accounting — executes on per-shard workers driven by
// timestamped command queues filled in the coordinator's deterministic
// order. Work and energy reduce machine -> shard -> fleet as exact
// integers, so the report is bit-identical for every shard and worker
// count.
type Fleet struct {
	cfg     Config
	nmach   int
	specs   []consolidation.HostSpec // per class, defaults applied
	caps    []float64                // per class: placeable credit capacity (%)
	classOf []int32                  // machine -> class index

	// trace source and its one-event lookahead: the fleet pulls arrivals
	// lazily, validating each event as it surfaces, so a 10M-arrival
	// trace costs one VMEvent of residency, not a materialized slice.
	src      TraceSource
	classes  map[string]VMClass
	ev       VMEvent // next arrival, valid while evValid
	evValid  bool
	evIndex  int      // events pulled so far (error reporting)
	prevArr  sim.Time // order validation across Next calls
	prevName string

	// pidx is the placement index answering Policy.Place queries
	// incrementally for the built-in policies; nil for custom policies
	// (linear-scan fallback). stateChanged keeps it in sync with every
	// states[i] mutation.
	pidx placeIndex

	// serving reduction state (Serving.Enabled only): the VM-class index
	// the shard histograms are keyed by, the cumulative per-class
	// latency histograms, and the current-interval fleet-wide histogram,
	// both merged from the shard partials at barriers.
	classNames []string
	classIdx   map[string]int32
	latClass   []serve.Histogram
	ivLat      serve.Histogram

	shards []*shard
	// stage pre-partitions data-plane commands per destination shard:
	// dispatch appends, and a staged run is flushed to the shard's queue
	// in one batch — when it grows past stageFlushLen, when a command
	// needs promptness (migration hand-off channels), or at the latest
	// before the coordinator blocks on a barrier or join. Unused in
	// inline mode.
	stage   [][]command
	gate    *engine.Gate
	inline  bool // Shards == 1 or Workers == 1: exec commands on the coordinator
	abort   chan struct{}
	workers sync.WaitGroup
	running atomic.Bool

	// flight recorder (Obs.Enabled only): the recorder owning the
	// per-shard rings, and the coordinator's own emitting lane.
	rec  *obs.Recorder
	cobs *obs.MachineObs
	// ledger totals accumulated from outcome slots in emission order;
	// exact integers, checked against each other at finalize.
	ledTot [7]int64 // run, downclocked, capped, contended, migrating, idle, span

	// live progress counters, updated at reporting barriers and read by
	// Progress from other goroutines (the pasfleet status heartbeat).
	progSimUs  atomic.Int64
	progEvents atomic.Int64
	progLive   atomic.Int64

	// control-plane per-machine scan state, struct-of-arrays: states is
	// the persistent policy view updated in place (never rebuilt), the
	// int32/bool arrays are what the coordinator scans every barrier.
	states  []MachineState
	vmCount []int32
	inbound []int32
	everOn  []bool

	vms   map[string]*ctlVM
	order []*ctlVM // insertion order; compacted at barriers and on churn
	goneN int      // departed entries still occupying order
	migs  map[string]*migration
	migQ  timedHeap

	// autoscaler (Autoscale.Enabled only): the controller wrapping the
	// policy, the reused signal buffer, and the decision counters.
	auto       *autoscale.Controller
	autoSigs   []autoscale.Signals
	asResizes  int64
	asOuts     int64
	asIns      int64
	asRejected int64

	// pools and scratch: the steady-state loop allocates only what must
	// outlive it (workloads, guests, phase slices).
	ctlFree    []*ctlVM
	outFree    []*VMOutcome
	dataPool   sync.Pool
	outPending []*VMOutcome // outcome slots of the current interval
	departDue  []timedName
	consStates []MachineState
	movingBuf  []*ctlVM
	planBuf    []consMove

	now     sim.Time
	horizon sim.Time
	ran     bool

	// cumulative counters. Energy and work are exact integer sums, so
	// the reduction order across machines, shards and VMs cannot
	// influence the result; float conversion happens only when an
	// Interval or the Summary is emitted.
	arrived, departed, rejected, migrated int
	poweredOn, poweredOff                 int
	energyTotal                           energy.Energy
	demanded, attained                    sim.Work

	// current-interval counters; the exact work/energy accumulators
	// back the float fields of the emitted Interval.
	iv         Interval
	ivEnergy   energy.Energy
	ivDemanded sim.Work
	ivAttained sim.Work
	lastSample sim.Time

	// streaming: every sink sees intervals, outcomes and the summary in
	// deterministic order; the in-memory Report is just the first sink
	// unless DiscardReport drops it.
	sinks []Sink
	rep   *Report

	// running summary aggregates, computed in emission order so they
	// match a post-run pass over the buffered report bit for bit.
	sumDt, sumActive float64
	prevTimeS        float64
	peakActive       int
	nOut             int
	sumVMSLA         float64
	minVMSLA         float64
	below95          int
}

type consMove struct {
	p  *ctlVM
	to int
}

// New builds a fleet from the configuration and a materialized trace,
// validated in full. Machines start powered off; hosts are constructed
// lazily at first power-on, so an estate of a million mostly-idle
// machines costs bookkeeping arrays, not a million simulated hosts.
func New(cfg Config, trace *Trace) (*Fleet, error) {
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	return NewStream(cfg, trace.Source())
}

// NewStream builds a fleet consuming its trace from a streaming source:
// the fleet never holds more than the one-event lookahead, so peak
// memory is O(machines + live VMs) regardless of the arrival count.
// Each event is validated as it is pulled (class, times, activity,
// (Arrive, Name) order); unlike New, global name uniqueness is only
// enforced for concurrently live VMs — see the TraceSource contract.
func NewStream(cfg Config, src TraceSource) (*Fleet, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("fleet: nil trace source")
	}
	if src.Horizon() <= 0 {
		return nil, fmt.Errorf("fleet: trace horizon %v not positive", src.Horizon())
	}
	classes := src.Classes()
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	total := 0
	for _, mc := range cfg.Machines {
		total += mc.Count
	}
	f := &Fleet{
		cfg:     cfg,
		src:     src,
		classes: classes,
		nmach:   total,
		vms:     make(map[string]*ctlVM),
		migs:    make(map[string]*migration),
	}
	f.dataPool.New = func() any { return new(dataVM) }
	f.specs = make([]consolidation.HostSpec, len(cfg.Machines))
	f.caps = make([]float64, len(cfg.Machines))
	for ci := range cfg.Machines {
		mc := &cfg.Machines[ci]
		spec, err := mc.Spec.WithDefaults()
		if err != nil {
			return nil, fmt.Errorf("fleet: machine class %s: %w", mc.Name, err)
		}
		if _, err := spec.Profile.Throughput(spec.Profile.Max()); err != nil {
			return nil, fmt.Errorf("fleet: machine class %s: %w", mc.Name, err)
		}
		// Probe one host per class so construction errors still surface
		// at New time, as they did when every host was built eagerly.
		if _, err := newMachineHost(spec, cfg, nil); err != nil {
			return nil, fmt.Errorf("fleet: machine class %s: %w", mc.Name, err)
		}
		f.specs[ci] = spec
		f.caps[ci] = 100 - spec.Dom0ReservePct
	}
	f.classOf = make([]int32, total)
	i := 0
	for ci, mc := range cfg.Machines {
		for k := 0; k < mc.Count; k++ {
			f.classOf[i] = int32(ci)
			i++
		}
	}
	f.states = make([]MachineState, total)
	for i := range f.states {
		ci := f.classOf[i]
		f.states[i] = MachineState{
			Index:         i,
			Class:         cfg.Machines[ci].Name,
			FreeMemMB:     f.specs[ci].MemoryMB,
			FreeCreditPct: f.caps[ci],
			Profile:       f.specs[ci].Profile,
		}
	}
	f.vmCount = make([]int32, total)
	f.inbound = make([]int32, total)
	f.everOn = make([]bool, total)

	if cfg.Serving.Enabled {
		// Sorted class names give every run the same class indexing, so
		// per-class reductions and reports are trace-order-independent.
		f.classNames = make([]string, 0, len(classes))
		for name := range classes {
			f.classNames = append(f.classNames, name)
		}
		sort.Strings(f.classNames)
		f.classIdx = make(map[string]int32, len(f.classNames))
		for ci, name := range f.classNames {
			f.classIdx[name] = int32(ci)
		}
		f.latClass = make([]serve.Histogram, len(f.classNames))
	}

	if cfg.Autoscale.Enabled {
		pol, err := autoscale.New(cfg.Autoscale.Policy, cfg.Autoscale.Params)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err) // unreachable: withDefaults probed
		}
		f.auto = autoscale.NewController(pol)
	}

	ns := cfg.Shards
	f.gate = engine.NewGate(cfg.Workers)
	f.inline = ns == 1 || cfg.Workers == 1
	if cfg.Obs.Enabled {
		f.rec = obs.NewRecorder(ns, cfg.Obs.Sink, cfg.Obs.Buffer)
		f.cobs = obs.NewMachineObs(f.rec.CoordinatorRing(), obs.LaneCoordinator)
	}
	f.shards = make([]*shard, ns)
	for si := 0; si < ns; si++ {
		n := (total - si + ns - 1) / ns // machines with index ≡ si (mod ns)
		s := &shard{
			f:          f,
			id:         si,
			hosts:      make([]*host.Host, n),
			on:         make([]bool, n),
			prevEnergy: make([]energy.Energy, n),
			nextID:     make([]vm.ID, n),
			resident:   make([][]*dataVM, n),
			rng:        sim.NewRNG(cfg.Seed ^ (uint64(si+1) * 0x9e3779b97f4a7c15)),
		}
		if cfg.Serving.Enabled {
			s.lat = make([]serve.Histogram, len(f.classNames))
		}
		if cfg.Obs.Enabled {
			s.mobs = make([]*obs.MachineObs, n)
			s.prevBounds = make([][boundarySources]int64, n)
		}
		for slot := range s.nextID {
			s.nextID[slot] = 1
		}
		s.queue.init()
		f.shards[si] = s
	}
	if !f.inline {
		f.stage = make([][]command, ns)
	}
	f.pidx = newPlaceIndex(cfg.Policy, f.states, f.classOf, len(cfg.Machines))
	return f, nil
}

// newMachineHost builds one machine host. Fleet machines disable the
// per-host recorder entirely: the fleet reports its own interval curves
// from exact integer accumulators and never reads host series, whose
// per-VM entries would otherwise grow with every VM that ever lived on
// the host — an O(arrivals) term at trace scale. mo is the machine's
// flight-recorder lane; nil disables observation for this host.
func newMachineHost(spec consolidation.HostSpec, cfg Config, mo *obs.MachineObs) (*host.Host, error) {
	return consolidation.NewHostWithOptions(spec, cfg.UsePAS, consolidation.HostOptions{
		Reference:   cfg.Reference,
		SampleEvery: -1,
		Scheduler:   cfg.Scheduler,
		Obs:         mo,
	})
}

// Machines returns the number of machines.
func (f *Fleet) Machines() int { return f.nmach }

// Shards returns the shard count the fleet partitioned its machines
// into.
func (f *Fleet) Shards() int { return len(f.shards) }

// Now returns the fleet's simulated time. It is owned by the
// coordinator: do not call it from other goroutines while Run executes.
func (f *Fleet) Now() sim.Time { return f.now }

// BatchedQuanta returns the total quanta executed through batched steps
// across every machine, for the equivalence tests' vacuity checks. It
// returns 0 while Run is executing: the engines belong to the shard
// workers until the run completes.
func (f *Fleet) BatchedQuanta() int64 {
	if f.running.Load() {
		return 0
	}
	var n int64
	for _, s := range f.shards {
		for _, h := range s.hosts {
			if h != nil {
				n += h.Engine().BatchedQuanta()
			}
		}
	}
	return n
}

// Host exposes one machine's simulated host (for tests and metrics).
// It fails while Run is executing — the hosts are owned by the shard
// workers — and lazily constructs the host of a machine that was never
// powered on, so callers can always inspect a completed run.
func (f *Fleet) Host(i int) (*host.Host, error) {
	if i < 0 || i >= f.nmach {
		return nil, fmt.Errorf("fleet: machine %d out of range", i)
	}
	if f.running.Load() {
		return nil, fmt.Errorf("fleet: machine %d unavailable while Run executes (hosts are owned by the shard workers)", i)
	}
	s := f.shards[i%len(f.shards)]
	slot := i / len(f.shards)
	if s.hosts[slot] == nil {
		h, err := newMachineHost(f.specs[f.classOf[i]], f.cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("fleet: machine %d: %w", i, err)
		}
		s.hosts[slot] = h
	}
	return s.hosts[slot], nil
}

// ObsEvents returns the retained merged event stream, nil unless the
// fleet was built with Obs.Enabled and Obs.Buffer. Call it only after
// Run returns.
func (f *Fleet) ObsEvents() []obs.Event {
	if f.rec == nil {
		return nil
	}
	return f.rec.Events()
}

// Progress reports the run's live progress — simulated time reached,
// flight-recorder events drained, and resident VMs — as of the most
// recent reporting barrier. Unlike every other accessor it is safe to
// call from other goroutines while Run executes: it backs the pasfleet
// status heartbeat.
func (f *Fleet) Progress() (simTime sim.Time, events int64, liveVMs int64) {
	return sim.Time(f.progSimUs.Load()), f.progEvents.Load(), f.progLive.Load()
}

// pools ---------------------------------------------------------------

func (f *Fleet) getCtlVM() *ctlVM {
	if n := len(f.ctlFree); n > 0 {
		p := f.ctlFree[n-1]
		f.ctlFree[n-1] = nil
		f.ctlFree = f.ctlFree[:n-1]
		return p
	}
	return &ctlVM{}
}

// poolCap bounds the coordinator free lists: a departure burst can park
// tens of thousands of recycled slots at once, and an uncapped list
// would pin that high-water mark for the rest of the run. Beyond the
// cap, slots fall to the garbage collector.
const poolCap = 8192

func (f *Fleet) putCtlVM(p *ctlVM) {
	if len(f.ctlFree) >= poolCap {
		return
	}
	*p = ctlVM{}
	f.ctlFree = append(f.ctlFree, p)
}

func (f *Fleet) getOutcome() *VMOutcome {
	if n := len(f.outFree); n > 0 {
		o := f.outFree[n-1]
		f.outFree[n-1] = nil
		f.outFree = f.outFree[:n-1]
		*o = VMOutcome{}
		return o
	}
	return &VMOutcome{}
}

// getDataVM and putDataVM go through a sync.Pool: dataVMs are created
// by the coordinator and freed by whichever shard executes the depart.
func (f *Fleet) getDataVM() *dataVM { return f.dataPool.Get().(*dataVM) }

func (f *Fleet) putDataVM(d *dataVM) {
	*d = dataVM{}
	f.dataPool.Put(d)
}

// bookkeeping helpers -------------------------------------------------

// reserve books a request's resources on a machine in the persistent
// policy view; release is its exact inverse.
func (f *Fleet) reserve(i int, r Request) {
	st := &f.states[i]
	st.FreeMemMB -= r.MemoryMB
	st.FreeCreditPct -= r.CreditPct
	st.OfferedLoadPct += r.CreditPct * r.MeanActivity
	f.stateChanged(i)
}

func (f *Fleet) release(i int, r Request) {
	st := &f.states[i]
	st.FreeMemMB += r.MemoryMB
	st.FreeCreditPct += r.CreditPct
	st.OfferedLoadPct -= r.CreditPct * r.MeanActivity
	f.stateChanged(i)
}

// stateChanged keeps the placement index in sync with states[i]; every
// mutation site (reserve, release, power cycling) calls it.
func (f *Fleet) stateChanged(i int) {
	if f.pidx != nil {
		f.pidx.update(i)
	}
}

// place picks a machine for the request: the incremental index for the
// built-in policies, the policy's own linear scan otherwise. The two
// paths return identical decisions (FuzzIndexedPlacement).
func (f *Fleet) place(r Request) (int, bool) {
	if f.pidx != nil {
		return f.pidx.place(r)
	}
	return f.cfg.Policy.Place(f.states, r)
}

// dispatch routes one data-plane command to the owning shard: executed
// inline on the coordinator in single-shard or single-worker mode,
// queued to the shard's persistent worker otherwise. Commands reach
// each shard in the coordinator's deterministic (time, seq) order
// either way.
func (f *Fleet) dispatch(machine int, c command) error {
	si := machine % len(f.shards)
	c.slot = int32(machine / len(f.shards))
	if f.inline {
		s := f.shards[si]
		s.exec(&c)
		return f.shardErr()
	}
	// Stage per destination shard and flush in batches: arrival-heavy
	// windows then cost one queue lock per run of commands instead of
	// one per event. Commands carrying a migration hand-off channel
	// flush immediately — their peer shard may already be blocked on
	// the channel — and the coordinator flushes everything before it
	// blocks on a barrier or join.
	f.stage[si] = append(f.stage[si], c)
	if c.ch != nil || len(f.stage[si]) >= stageFlushLen {
		f.flushShard(si)
	}
	return nil
}

// stageFlushLen bounds a shard's staged run before it is force-flushed;
// past this length batching gains flatten and latency to the worker
// starts to dominate.
const stageFlushLen = 256

func (f *Fleet) flushShard(si int) {
	if len(f.stage[si]) == 0 {
		return
	}
	f.shards[si].queue.pushBatch(f.stage[si])
	f.stage[si] = f.stage[si][:0]
}

// flushStaged delivers every staged command; the coordinator calls it
// before blocking on the shards.
func (f *Fleet) flushStaged() {
	for si := range f.stage {
		f.flushShard(si)
	}
}

// shardErr returns the first shard error in shard order, preferring
// root causes over poison propagated from a peer's failure.
func (f *Fleet) shardErr() error {
	for _, s := range f.shards {
		if s.err != nil && !s.poisoned {
			return s.err
		}
	}
	for _, s := range f.shards {
		if s.err != nil {
			return s.err
		}
	}
	return nil
}

// barrier synchronizes every shard to t and reduces the shard interval
// partials into the fleet accumulators (the shard -> fleet stage of the
// hierarchical exact reduction).
func (f *Fleet) barrier(t sim.Time) error {
	if f.inline {
		for _, s := range f.shards {
			if s.err == nil {
				s.execBarrier(t)
			}
		}
	} else {
		f.flushStaged()
		var wg sync.WaitGroup
		wg.Add(len(f.shards))
		for _, s := range f.shards {
			s.queue.push(command{kind: cmdBarrier, slot: -1, at: t, wg: &wg})
		}
		wg.Wait()
	}
	if err := f.shardErr(); err != nil {
		return err
	}
	for _, s := range f.shards {
		f.ivEnergy = f.ivEnergy.Add(s.ivEnergy)
		f.ivDemanded += s.ivDemanded
		f.ivAttained += s.ivAttained
		s.ivEnergy = energy.Energy{}
		s.ivDemanded, s.ivAttained = 0, 0
		// Latency partials merge by elementwise sum — commutative and
		// associative — so the shard iteration order cannot influence
		// the merged histograms.
		for ci := range s.lat {
			if s.lat[ci].Count() == 0 {
				continue
			}
			f.ivLat.Merge(&s.lat[ci])
			f.latClass[ci].Merge(&s.lat[ci])
			s.lat[ci].Reset()
		}
	}
	return nil
}

// join waits for every shard to drain its queue without folding.
func (f *Fleet) join() error {
	if !f.inline {
		f.flushStaged()
		var wg sync.WaitGroup
		wg.Add(len(f.shards))
		for _, s := range f.shards {
			s.queue.push(command{kind: cmdJoin, slot: -1, wg: &wg})
		}
		wg.Wait()
	}
	return f.shardErr()
}

// Run advances the fleet from time zero to the horizon, consuming the
// trace, and returns the cluster-level report. The fleet is single-shot:
// a second Run returns an error.
//
// The loop is event-driven: the coordinator computes the earliest
// upcoming fleet-level event — a VM arrival or departure, a migration
// completion, a consolidation round, a reporting barrier — resolves all
// control-plane consequences sequentially, and dispatches the resulting
// data-plane commands to the shard workers, which let each involved
// machine advance to exactly that moment so per-host event-horizon
// batching folds the whole uninterrupted stretch. All shards only
// synchronize together at reporting barriers.
func (f *Fleet) Run(horizon sim.Time) (*Report, error) {
	if f.ran {
		return nil, fmt.Errorf("fleet: already ran; build a new fleet for another run")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("fleet: run horizon %v not positive", horizon)
	}
	f.ran = true
	f.horizon = horizon
	f.rep = &Report{}
	f.minVMSLA = 1
	if !f.cfg.DiscardReport {
		f.sinks = append(f.sinks, f.rep)
	}
	f.sinks = append(f.sinks, f.cfg.Sinks...)

	f.running.Store(true)
	if !f.inline {
		f.abort = make(chan struct{})
		f.workers.Add(len(f.shards))
		for _, s := range f.shards {
			go func(s *shard) {
				defer f.workers.Done()
				s.loop()
			}(s)
		}
	}
	defer func() {
		if !f.inline {
			close(f.abort)
			for _, s := range f.shards {
				s.queue.close()
			}
			f.workers.Wait()
		}
		f.running.Store(false)
	}()

	nextReport := f.cfg.ReportEvery
	if nextReport > horizon {
		nextReport = horizon
	}
	nextConsolidate := sim.Never
	if f.cfg.ConsolidateEvery > 0 {
		nextConsolidate = f.cfg.ConsolidateEvery
	}

	// Prime the one-event lookahead. A materialized trace was validated
	// as non-empty by New; a streamed source surfaces emptiness here.
	if err := f.nextSourceEvent(); err != nil {
		return nil, err
	}
	if !f.evValid {
		return nil, fmt.Errorf("fleet: trace without VM events")
	}

	for {
		t := horizon
		if f.evValid && f.ev.Arrive < t {
			t = f.ev.Arrive
		}
		for _, s := range f.shards {
			if at, ok := s.departQ.top(); ok && at < t {
				t = at
			}
		}
		if at, ok := f.migQ.top(); ok && at < t {
			t = at
		}
		if nextConsolidate < t {
			t = nextConsolidate
		}
		if nextReport < t {
			t = nextReport
		}
		f.now = t

		// Fixed processing order at one instant: migrations land first,
		// departures free capacity, arrivals consume it, consolidation
		// sees the settled state, and the reporting barrier samples last.
		for len(f.migQ) > 0 && f.migQ[0].at <= t {
			if err := f.completeMigration(f.migQ.pop().name); err != nil {
				return nil, err
			}
		}
		// Same-instant departures merge across the shard queues in the
		// global (time, name) order a single queue would pop.
		f.departDue = f.departDue[:0]
		for _, s := range f.shards {
			for len(s.departQ) > 0 && s.departQ[0].at <= t {
				f.departDue = append(f.departDue, s.departQ.pop())
			}
		}
		if len(f.departDue) > 1 {
			sort.Slice(f.departDue, func(i, j int) bool {
				if f.departDue[i].at != f.departDue[j].at {
					return f.departDue[i].at < f.departDue[j].at
				}
				return f.departDue[i].name < f.departDue[j].name
			})
		}
		for _, tn := range f.departDue {
			if err := f.depart(tn.name); err != nil {
				return nil, err
			}
		}
		// Amortized churn compaction: once gone entries dominate the
		// list, sweep them instead of waiting for the barrier. The
		// trigger depends only on the (shard-invariant) arrival and
		// departure sequence, so reports stay bit-exact.
		if f.goneN >= 4096 && f.goneN*2 >= len(f.order) {
			f.compactOrder()
		}
		for f.evValid && f.ev.Arrive <= t {
			ev := f.ev
			if err := f.nextSourceEvent(); err != nil {
				return nil, err
			}
			if ev.Arrive >= horizon {
				continue
			}
			if err := f.arrive(&ev); err != nil {
				return nil, err
			}
		}
		if t == nextConsolidate {
			if err := f.consolidate(); err != nil {
				return nil, err
			}
			nextConsolidate += f.cfg.ConsolidateEvery
		}
		if t == nextReport || t == horizon {
			if err := f.reportBarrier(t); err != nil {
				return nil, err
			}
			if t == nextReport {
				nextReport += f.cfg.ReportEvery
				if nextReport > horizon {
					nextReport = horizon
				}
			}
		}
		if t >= horizon {
			break
		}
	}
	if err := f.finalize(); err != nil {
		return nil, err
	}
	return f.rep, nil
}

// nextSourceEvent advances the trace lookahead by one event, applying
// per-event what Trace.Validate checks in bulk: known class, sane
// times and activity, and the (Arrive, Name) stream order. Global name
// uniqueness cannot be checked in O(1) memory; arrive rejects a name
// that is still live.
func (f *Fleet) nextSourceEvent() error {
	ev, ok := f.src.Next()
	if !ok {
		f.evValid = false
		return f.src.Err()
	}
	i := f.evIndex
	f.evIndex++
	if ev.Name == "" {
		return fmt.Errorf("fleet: event %d without a VM name", i)
	}
	if _, known := f.classes[ev.Class]; !known {
		return fmt.Errorf("fleet: VM %s references unknown class %q", ev.Name, ev.Class)
	}
	if ev.Arrive < 0 || ev.Arrive >= f.src.Horizon() {
		return fmt.Errorf("fleet: VM %s arrives at %v, outside [0, %v)", ev.Name, ev.Arrive, f.src.Horizon())
	}
	if ev.Lifetime <= 0 {
		return fmt.Errorf("fleet: VM %s lifetime %v not positive", ev.Name, ev.Lifetime)
	}
	if !isFinite(ev.Activity) || ev.Activity < 0 || ev.Activity > 1 {
		return fmt.Errorf("fleet: VM %s activity %v outside [0,1]", ev.Name, ev.Activity)
	}
	if i > 0 {
		if ev.Arrive == f.prevArr && ev.Name == f.prevName {
			return fmt.Errorf("fleet: duplicate VM name %q", ev.Name)
		}
		if ev.Arrive < f.prevArr || (ev.Arrive == f.prevArr && ev.Name < f.prevName) {
			return fmt.Errorf("fleet: events not sorted by (arrive, name) at index %d", i)
		}
	}
	f.prevArr, f.prevName = ev.Arrive, ev.Name
	f.ev, f.evValid = ev, true
	return nil
}

// powerOn switches a machine on in the control plane and dispatches the
// host-side power-on (lazy construction, catch-up, energy snapshot).
func (f *Fleet) powerOn(idx int) error {
	st := &f.states[idx]
	if st.On {
		return nil
	}
	st.On = true
	f.stateChanged(idx)
	f.everOn[idx] = true
	f.poweredOn++
	if f.cobs != nil {
		f.cobs.Emit(f.now, obs.KindPowerOn, "", int64(idx), 0)
	}
	return f.dispatch(idx, command{kind: cmdPowerOn, at: f.now})
}

// arrive handles one trace arrival: the policy picks a machine from the
// persistent bookkeeping view, the coordinator books the resources, and
// the owning shard attaches the VM.
func (f *Fleet) arrive(ev *VMEvent) error {
	if _, live := f.vms[ev.Name]; live {
		// The streamed-source analogue of Trace.Validate's global name
		// uniqueness: no two concurrently live VMs may share a name.
		return fmt.Errorf("fleet: duplicate VM name %q", ev.Name)
	}
	class := f.classes[ev.Class]
	req := Request{
		Name:         ev.Name,
		CreditPct:    class.CreditPct,
		MemoryMB:     class.MemoryMB,
		MeanActivity: ev.Activity,
	}
	idx, ok := f.place(req)
	if !ok {
		f.rejected++
		f.iv.Rejected++
		if f.cobs != nil {
			f.cobs.Emit(f.now, obs.KindReject, ev.Name, 0, 0)
		}
		return nil
	}
	if err := f.checkPlacement(idx, req, false); err != nil {
		return err
	}
	if err := f.powerOn(idx); err != nil {
		return err
	}
	if f.cobs != nil {
		f.cobs.Emit(f.now, obs.KindPlace, ev.Name, int64(idx), 0)
	}

	d := f.getDataVM()
	d.name = ev.Name
	d.credit = class.CreditPct
	// The seed is a function of the global arrival index, assigned here
	// in coordinator order — workloads draw identical randomness for
	// every shard and worker count.
	d.seed = f.cfg.Seed + uint64(f.arrived)*0x9e3779b97f4a7c15 + 1
	d.deterministic = f.cfg.DeterministicArrivals
	d.phases = ev.demandPhases(class, f.horizon)
	if f.cfg.Serving.Enabled {
		d.class = f.classIdx[ev.Class]
		// The serving clients draw from their own seed lane (offset 2
		// against the workload's 1) of the same coordinator-ordered
		// arrival index, so the two streams stay decorrelated and both
		// are sharding-invariant.
		d.serveSeed = f.cfg.Seed + uint64(f.arrived)*0x9e3779b97f4a7c15 + 2
	}
	if err := f.dispatch(idx, command{kind: cmdAddVM, at: f.now, d: d}); err != nil {
		return err
	}
	f.reserve(idx, req)
	f.vmCount[idx]++

	p := f.getCtlVM()
	p.req, p.class, p.machine, p.arrive, p.d = req, ev.Class, idx, f.now, d
	p.baseCap = req.CreditPct
	f.vms[ev.Name] = p
	f.order = append(f.order, p)
	if depart := ev.Arrive + ev.Lifetime; depart < f.horizon {
		f.shards[idx%len(f.shards)].departQ.push(timedName{at: depart, name: ev.Name})
	}
	f.arrived++
	f.iv.Arrivals++
	return nil
}

// checkPlacement validates a policy decision against the bookkeeping
// state, turning a bad pick into a diagnosable error instead of silent
// misaccounting.
func (f *Fleet) checkPlacement(idx int, req Request, migrating bool) error {
	kind := "place"
	if migrating {
		kind = "migrate"
	}
	if idx < 0 || idx >= f.nmach {
		return fmt.Errorf("fleet: policy %s: %s %s on machine %d: out of range [0,%d)",
			f.cfg.Policy.Name(), kind, req.Name, idx, f.nmach)
	}
	st := &f.states[idx]
	if migrating && !st.On {
		return fmt.Errorf("fleet: policy %s: %s %s on machine %d: machine is powered off",
			f.cfg.Policy.Name(), kind, req.Name, idx)
	}
	ci := f.classOf[idx]
	if st.FreeMemMB < req.MemoryMB {
		return fmt.Errorf("fleet: policy %s: %s %s on machine %d: memory %d+%d > %d MB",
			f.cfg.Policy.Name(), kind, req.Name, idx,
			f.specs[ci].MemoryMB-st.FreeMemMB, req.MemoryMB, f.specs[ci].MemoryMB)
	}
	if st.FreeCreditPct < req.CreditPct {
		return fmt.Errorf("fleet: policy %s: %s %s on machine %d: credit %v+%v > %v%%",
			f.cfg.Policy.Name(), kind, req.Name, idx,
			f.caps[ci]-st.FreeCreditPct, req.CreditPct, f.caps[ci])
	}
	return nil
}

// depart removes a VM at the end of its lifetime: the coordinator frees
// the booking and assigns the outcome slot, the owning shard detaches
// the guest and fills the slot's work tallies. A VM departing
// mid-migration aborts the pre-copy and releases the target
// reservation.
func (f *Fleet) depart(name string) error {
	p, ok := f.vms[name]
	if !ok || p.gone {
		return fmt.Errorf("fleet: departure of unknown VM %q", name)
	}
	// A departing parent takes its autoscaled replicas with it: their
	// share of the arrival stream leaves with the clients.
	for _, q := range p.reps {
		if err := f.removeVM(q); err != nil {
			return err
		}
		f.asIns++
	}
	p.reps = p.reps[:0]
	if err := f.removeVM(p); err != nil {
		return err
	}
	f.departed++
	f.iv.Departures++
	return nil
}

// removeVM is the shared removal mechanics of trace departures and
// replica scale-in: abort any in-flight migration, assign the outcome
// slot, dispatch the data-plane detach, and free the booking. Lifecycle
// counters stay with the callers (trace departures count in
// Summary.Departed, replica removals in AutoscaleScaleIns).
func (f *Fleet) removeVM(p *ctlVM) error {
	if p.mig != nil {
		f.abortMigration(p)
	}
	o := f.getOutcome()
	o.Name, o.Class, o.Machine = p.req.Name, p.class, p.machine
	o.ArriveS, o.DepartS, o.Departed = p.arrive.Seconds(), f.now.Seconds(), true
	f.outPending = append(f.outPending, o)
	if err := f.dispatch(p.machine, command{kind: cmdRemoveVM, at: f.now, d: p.d, out: o}); err != nil {
		return err
	}
	f.release(p.machine, p.req)
	f.vmCount[p.machine]--
	p.gone = true
	p.d = nil
	delete(f.vms, p.req.Name)
	f.goneN++
	return nil
}

// compactOrder drops departed VMs from the insertion-order list,
// recycling their control slots. Run amortizes it on churn (gone
// entries dominating the list) so a departure-heavy reporting window
// holds O(live VMs) control state, not O(departures per window); the
// reporting barrier runs it unconditionally so autoscale signal builds
// never see gone entries pile up.
func (f *Fleet) compactOrder() {
	live := f.order[:0]
	for _, p := range f.order {
		if p.gone {
			f.putCtlVM(p)
			continue
		}
		live = append(live, p)
	}
	for i := len(live); i < len(f.order); i++ {
		f.order[i] = nil
	}
	f.order = live
	f.goneN = 0
}

// slaOf is attained/demanded, defined as 1 when nothing was demanded.
// The inputs are exact integer work tallies; the division is the float
// report edge.
func slaOf(attained, demanded sim.Work) float64 {
	if demanded <= 0 {
		return 1
	}
	sla := float64(attained) / float64(demanded)
	if sla > 1 {
		sla = 1
	}
	return sla
}

// consolidate tries to empty the least-offered-load machine through live
// migrations chosen by the policy. Only machines already carrying load
// are eligible targets — moving a victim's VMs onto an empty machine
// cannot reduce the active count, it just ping-pongs the load. Rounds
// are skipped while migrations are in flight, and abandoned (without
// partial moves) when the victim cannot be fully emptied — a partial
// move cannot free a machine. Planning is pure control plane: no host
// is touched until a migration completes.
func (f *Fleet) consolidate() error {
	// f.migs is the exact in-flight census: completions and aborts both
	// delete from it, while canceled entries linger in the migQ heap
	// until their original completion time pops.
	if len(f.migs) > 0 {
		return nil
	}
	victim, loaded := -1, 0
	for i := 0; i < f.nmach; i++ {
		if !f.states[i].On || f.vmCount[i] == 0 || f.inbound[i] > 0 {
			continue
		}
		loaded++
		if victim < 0 || f.states[i].OfferedLoadPct < f.states[victim].OfferedLoadPct {
			victim = i
		}
	}
	if victim < 0 || loaded < 2 {
		return nil
	}
	moving := f.movingBuf[:0]
	for _, p := range f.order {
		if !p.gone && p.machine == victim && p.mig == nil {
			moving = append(moving, p)
		}
	}
	f.movingBuf = moving[:0]
	if len(moving) == 0 {
		return nil
	}
	// Tentative placement against a scratch copy of the state, restricted
	// to loaded machines, largest memory first (the classic FFD order).
	states := f.consStates[:0]
	for i := 0; i < f.nmach; i++ {
		if i == victim || !f.states[i].On {
			continue
		}
		if f.vmCount[i] > 0 || f.inbound[i] > 0 {
			states = append(states, f.states[i])
		}
	}
	f.consStates = states[:0]
	sort.Slice(moving, func(i, j int) bool {
		if moving[i].req.MemoryMB != moving[j].req.MemoryMB {
			return moving[i].req.MemoryMB > moving[j].req.MemoryMB
		}
		return moving[i].req.Name < moving[j].req.Name
	})
	plan := f.planBuf[:0]
	defer func() { f.planBuf = plan[:0] }()
	for _, p := range moving {
		idx, ok := f.cfg.Policy.Place(states, p.req)
		if !ok {
			return nil // victim cannot be emptied this round
		}
		found := false
		for si := range states {
			if states[si].Index == idx {
				if !states[si].On || !states[si].Fits(p.req) {
					return f.placementError(idx, p.req)
				}
				states[si].FreeMemMB -= p.req.MemoryMB
				states[si].FreeCreditPct -= p.req.CreditPct
				states[si].OfferedLoadPct += p.req.CreditPct * p.req.MeanActivity
				found = true
				break
			}
		}
		if !found {
			return f.placementError(idx, p.req)
		}
		plan = append(plan, consMove{p: p, to: idx})
	}
	for _, mv := range plan {
		if err := f.checkPlacement(mv.to, mv.p.req, true); err != nil {
			return err
		}
		f.reserve(mv.to, mv.p.req)
		f.inbound[mv.to]++
		dur := sim.FromSeconds(float64(mv.p.req.MemoryMB) / f.cfg.MigrationBandwidthMBps)
		mg := &migration{name: mv.p.req.Name, from: victim, to: mv.to, done: f.now + dur}
		mv.p.mig = mg
		f.migs[mg.name] = mg
		f.migQ.push(timedName{at: mg.done, name: mg.name})
		if f.cobs != nil {
			f.cobs.Emit(f.now, obs.KindMigStart, mg.name, int64(victim), int64(mv.to))
			// Mark the pre-copy on the source's ledger at the plan
			// instant: non-executing time from here until the VM lands on
			// the destination attributes to MigratingUs.
			if err := f.dispatch(victim, command{kind: cmdObsMigMark, at: f.now, d: mv.p.d}); err != nil {
				return err
			}
		}
	}
	return nil
}

// placementError reports a consolidation pick the fleet state disagrees
// with.
func (f *Fleet) placementError(idx int, req Request) error {
	return fmt.Errorf("fleet: policy %s: migrate %s to machine %d: not an eligible target",
		f.cfg.Policy.Name(), req.Name, idx)
}

// abortMigration cancels an in-flight migration (the VM is departing),
// releasing the target-side reservation. The queued completion entry
// stays in the heap and is skipped when it pops.
func (f *Fleet) abortMigration(p *ctlVM) {
	mg := p.mig
	mg.canceled = true
	f.release(mg.to, p.req)
	f.inbound[mg.to]--
	p.mig = nil
	delete(f.migs, mg.name)
}

// completeMigration finishes one due migration: the source shard
// detaches the guest and hands the dataVM to the destination shard over
// a one-shot channel; the destination attaches a fresh guest with the
// same still-running workload. The coordinator dispatches the out
// command strictly before the in command, so the exchange can never
// deadlock under any worker count.
func (f *Fleet) completeMigration(name string) error {
	mg, ok := f.migs[name]
	if !ok || mg.canceled {
		return nil // aborted by a departure
	}
	delete(f.migs, name)
	p := f.vms[name]
	ch := make(chan *dataVM, 1)
	if err := f.dispatch(mg.from, command{kind: cmdMigrateOut, at: f.now, d: p.d, ch: ch}); err != nil {
		return err
	}
	if err := f.dispatch(mg.to, command{kind: cmdMigrateIn, at: f.now, ch: ch}); err != nil {
		return err
	}
	f.release(mg.from, p.req)
	f.vmCount[mg.from]--
	f.inbound[mg.to]--
	f.vmCount[mg.to]++
	p.machine = mg.to
	p.mig = nil
	f.migrated++
	f.iv.Migrations++
	if f.cobs != nil {
		f.cobs.Emit(f.now, obs.KindMigDone, mg.name, int64(mg.to), 0)
	}
	return nil
}

// flushOutcomes streams the interval's per-VM outcome slots — filled by
// the shards, sealed by the preceding barrier — to the sinks, folding
// them into the running summary aggregates in emission order.
func (f *Fleet) flushOutcomes() error {
	for _, o := range f.outPending {
		f.nOut++
		f.sumVMSLA += o.SLA
		if o.SLA < f.minVMSLA {
			f.minVMSLA = o.SLA
		}
		if o.SLA < 0.95 {
			f.below95++
		}
		if f.rec != nil {
			f.ledTot[0] += o.RunUs
			f.ledTot[1] += o.DownclockedUs
			f.ledTot[2] += o.CappedUs
			f.ledTot[3] += o.ContendedUs
			f.ledTot[4] += o.MigratingUs
			f.ledTot[5] += o.IdleUs
			f.ledTot[6] += o.LifetimeUs
		}
		for _, sink := range f.sinks {
			if err := sink.Outcome(o); err != nil {
				return err
			}
		}
		if len(f.outFree) < poolCap {
			f.outFree = append(f.outFree, o)
		}
	}
	f.outPending = f.outPending[:0]
	return nil
}

// reportBarrier synchronizes every shard to t, reduces the interval
// exactly, streams the interval's outcomes and sample to the sinks, and
// powers off machines that ended up empty.
func (f *Fleet) reportBarrier(t sim.Time) error {
	if err := f.barrier(t); err != nil {
		return err
	}
	active := 0
	for i := range f.states {
		if f.states[i].On {
			active++
		}
	}
	f.compactOrder()
	liveN := len(f.order) // the population the barrier samples, pre-autoscale

	if err := f.flushOutcomes(); err != nil {
		return err
	}

	f.iv.TimeS = t.Seconds()
	f.iv.ActiveMachines = active
	f.iv.LiveVMs = liveN
	// Emit the interval: the exact integer accumulators convert to the
	// report's float fields here and nowhere earlier.
	f.iv.Joules = f.ivEnergy.Joules()
	f.iv.DemandedWork = f.ivDemanded.Units()
	f.iv.AttainedWork = f.ivAttained.Units()
	f.iv.SLA = slaOf(f.ivAttained, f.ivDemanded)
	ivLen := t - f.lastSample
	if dt := ivLen.Seconds(); dt > 0 {
		f.iv.AvgPowerW = f.iv.Joules / dt
	}
	var ivP50Us, ivP99Us int64
	if f.cfg.Serving.Enabled {
		f.iv.Requests = f.ivLat.Count()
		if f.iv.Requests > 0 {
			// Stash the interval quantiles in microseconds before the
			// reset below: the autoscaler's signals read them too.
			ivP50Us, ivP99Us = f.ivLat.Quantile(0.50), f.ivLat.Quantile(0.99)
			f.iv.ReqP50Ms = float64(ivP50Us) / 1e3
			f.iv.ReqP95Ms = float64(f.ivLat.Quantile(0.95)) / 1e3
			f.iv.ReqP99Ms = float64(ivP99Us) / 1e3
			if f.cobs != nil {
				f.cobs.Emit(t, obs.KindLatency, "", ivP50Us, ivP99Us)
			}
		}
		f.ivLat.Reset()
	}
	dt := f.iv.TimeS - f.prevTimeS
	f.prevTimeS = f.iv.TimeS
	f.sumDt += dt
	f.sumActive += float64(active) * dt
	if active > f.peakActive {
		f.peakActive = active
	}
	for _, sink := range f.sinks {
		if err := sink.Interval(&f.iv); err != nil {
			return err
		}
	}
	f.energyTotal = f.energyTotal.Add(f.ivEnergy)
	f.demanded += f.ivDemanded
	f.attained += f.ivAttained
	f.lastSample = t
	f.iv = Interval{}
	f.ivEnergy = energy.Energy{}
	f.ivDemanded, f.ivAttained = 0, 0

	// The elastic loop runs with every shard still parked at the barrier
	// (the coordinator may legally read data-plane state until the first
	// dispatch) and the interval's latency quantiles in hand. The final
	// barrier skips it: there is nothing left to resize.
	if f.auto != nil && t < f.horizon {
		if err := f.autoscaleStep(t, ivP50Us, ivP99Us, ivLen); err != nil {
			return err
		}
		if f.rec != nil {
			// The resize and scale-out commands just dispatched emit host
			// events at the barrier instant; rejoin the shards before the
			// drain below so those events land in this window's merge
			// deterministically, not racing it.
			if err := f.join(); err != nil {
				return err
			}
		}
	}

	// Power off machines the departures emptied (their energy up to the
	// barrier was already reduced above). Keeping them on until the
	// barrier is the fleet's power-off grace period.
	for i := range f.states {
		if f.states[i].On && f.vmCount[i] == 0 && f.inbound[i] == 0 {
			st := &f.states[i]
			st.On = false
			// Snap the emptied machine back to pristine capacity: paired
			// float reserve/release leaves sub-ulp dust on the free
			// credit and offered load, and the placement index relies on
			// every off machine of a class being bit-identical (a
			// machine with nothing resident has its full capacity free
			// by definition).
			ci := f.classOf[i]
			st.FreeMemMB = f.specs[ci].MemoryMB
			st.FreeCreditPct = f.caps[ci]
			st.OfferedLoadPct = 0
			f.stateChanged(i)
			f.poweredOff++
			if f.cobs != nil {
				f.cobs.Emit(t, obs.KindPowerOff, "", int64(i), 0)
			}
			if err := f.dispatch(i, command{kind: cmdPowerOff, at: t}); err != nil {
				return err
			}
		}
	}
	if f.rec != nil {
		// Every shard is parked at the barrier and every machine event up
		// to t is in its ring; fold the coordinator's own barrier marker
		// in, then merge the window.
		f.cobs.Emit(t, obs.KindBarrier, "", int64(liveN), 0)
		if err := f.rec.Drain(); err != nil {
			return err
		}
		f.progEvents.Store(f.rec.Total())
	}
	f.progSimUs.Store(int64(t))
	f.progLive.Store(int64(liveN))
	return nil
}

// finalize records the still-live VMs, assembles the summary, and
// finishes the sinks.
func (f *Fleet) finalize() error {
	for _, p := range f.order {
		if p.gone {
			continue
		}
		o := f.getOutcome()
		o.Name, o.Class, o.Machine = p.req.Name, p.class, p.machine
		o.ArriveS, o.DepartS, o.Departed = p.arrive.Seconds(), f.now.Seconds(), false
		f.outPending = append(f.outPending, o)
		if err := f.dispatch(p.machine, command{kind: cmdRecordLive, at: f.now, d: p.d, out: o}); err != nil {
			return err
		}
	}
	if err := f.join(); err != nil {
		return err
	}
	if err := f.flushOutcomes(); err != nil {
		return err
	}
	if f.rec != nil {
		if err := f.rec.Finish(f.horizon); err != nil {
			return err
		}
		f.progEvents.Store(f.rec.Total())
	}

	sched := f.cfg.Scheduler
	if sched == "credit" {
		sched = "fix-credit" // keep the historical report name
	}
	s := Summary{
		Policy:    f.cfg.Policy.Name(),
		Scheduler: sched,
		Machines:  f.nmach,
		HorizonS:  f.horizon.Seconds(),
		Arrived:   f.arrived,
		Departed:  f.departed,
		Rejected:  f.rejected,
		Migrated:  f.migrated,
		PowerOns:  f.poweredOn,
		PowerOffs: f.poweredOff,

		TotalJoules: f.energyTotal.Joules(),
		OverallSLA:  slaOf(f.attained, f.demanded),
	}
	for i := 0; i < f.nmach; i++ {
		if f.everOn[i] {
			s.EverPoweredOn++
		}
	}
	for _, sh := range f.shards {
		for _, h := range sh.hosts {
			if h != nil {
				s.BatchedQuanta += h.Engine().BatchedQuanta()
				s.SteppedQuanta += h.Engine().SteppedQuanta()
			}
		}
	}
	s.PeakActiveMachines = f.peakActive
	if f.sumDt > 0 {
		s.MeanActiveMachines = f.sumActive / f.sumDt
		s.MeanPowerW = s.TotalJoules / f.sumDt
	}
	s.MinVMSLA = f.minVMSLA
	s.VMsBelow95 = f.below95
	if f.nOut > 0 {
		s.MeanVMSLA = f.sumVMSLA / float64(f.nOut)
	} else {
		s.MeanVMSLA = 1
	}
	if f.rec != nil {
		s.ObsEvents = f.rec.Total()
		s.LedgerRunUs = f.ledTot[0]
		s.LedgerDownclockedUs = f.ledTot[1]
		s.LedgerCappedUs = f.ledTot[2]
		s.LedgerContendedUs = f.ledTot[3]
		s.LedgerMigratingUs = f.ledTot[4]
		s.LedgerIdleUs = f.ledTot[5]
		s.LedgerSpanUs = f.ledTot[6]
		// Each VM's ledger was conservation-checked at its detach; the
		// totals are sums of those, so a mismatch here means the emission
		// path itself leaked — the same class of guard as the serving
		// request conservation below.
		sum := f.ledTot[0] + f.ledTot[1] + f.ledTot[2] + f.ledTot[3] + f.ledTot[4] + f.ledTot[5]
		if sum != f.ledTot[6] {
			return fmt.Errorf("fleet: attribution ledger mismatch: %d us attributed, %d us of VM residency", sum, f.ledTot[6])
		}
	}
	if f.auto != nil {
		s.AutoscaleResizes = f.asResizes
		s.AutoscaleScaleOuts = f.asOuts
		s.AutoscaleScaleIns = f.asIns
		s.AutoscaleRejected = f.asRejected
		var reps int64
		for _, p := range f.order {
			if !p.gone && p.parent != nil {
				reps++
			}
		}
		if s.AutoscaleScaleOuts-s.AutoscaleScaleIns != reps {
			return fmt.Errorf("fleet: autoscale replica ledger mismatch: %d out - %d in != %d live",
				s.AutoscaleScaleOuts, s.AutoscaleScaleIns, reps)
		}
	}
	if f.cfg.Serving.Enabled {
		for _, sh := range f.shards {
			s.RequestsOffered += sh.servOffered
			s.RequestsCompleted += sh.servCompleted
			s.RequestsAbandoned += sh.servAbandoned
			s.RequestsRetried += sh.servRetried
			s.RequestsInFlight += sh.servInFlight
		}
		var all serve.Histogram
		for ci := range f.latClass {
			all.Merge(&f.latClass[ci])
		}
		// Every VM's completions were both recorded into a histogram at
		// fold time and tallied at its depart/horizon record; a mismatch
		// means the serving ledger leaked.
		if all.Count() != s.RequestsCompleted {
			return fmt.Errorf("fleet: serving ledger mismatch: %d completions recorded, %d tallied",
				all.Count(), s.RequestsCompleted)
		}
		if n := all.Count(); n > 0 {
			s.ReqP50Ms = float64(all.Quantile(0.50)) / 1e3
			s.ReqP95Ms = float64(all.Quantile(0.95)) / 1e3
			s.ReqP99Ms = float64(all.Quantile(0.99)) / 1e3
			s.ReqMeanMs = float64(all.Sum()) / float64(n) / 1e3
			s.ReqMaxMs = float64(all.Max()) / 1e3
		}
		for ci, name := range f.classNames {
			h := &f.latClass[ci]
			if h.Count() == 0 {
				continue
			}
			s.ClassLatency = append(s.ClassLatency, ClassLatency{
				Class:    name,
				Requests: h.Count(),
				P50Ms:    float64(h.Quantile(0.50)) / 1e3,
				P95Ms:    float64(h.Quantile(0.95)) / 1e3,
				P99Ms:    float64(h.Quantile(0.99)) / 1e3,
				MeanMs:   float64(h.Sum()) / float64(h.Count()) / 1e3,
				MaxMs:    float64(h.Max()) / 1e3,
			})
		}
	}
	f.rep.Summary = s
	for _, sink := range f.sinks {
		if err := sink.Finish(&s); err != nil {
			return err
		}
	}
	return nil
}
