package fleet

import (
	"fmt"
	"math"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// ClassMix is one VM class with its share of the generated population.
type ClassMix struct {
	Class VMClass
	// Weight is the relative frequency of the class; weights need not sum
	// to anything in particular.
	Weight float64
}

// DefaultClassMix is a typical hosting estate: many small mostly-idle
// services, fewer medium ones, a handful of large busy VMs.
func DefaultClassMix() []ClassMix {
	return []ClassMix{
		{Class: VMClass{Name: "small", CreditPct: 10, MemoryMB: 1024}, Weight: 6},
		{Class: VMClass{Name: "medium", CreditPct: 20, MemoryMB: 2048}, Weight: 3},
		{Class: VMClass{Name: "large", CreditPct: 40, MemoryMB: 4096}, Weight: 1},
	}
}

// GenConfig configures the synthetic trace generator.
type GenConfig struct {
	// Seed seeds the generator; the same seed yields the same trace.
	Seed uint64
	// Arrivals is the number of VM lifecycles to generate. Required.
	Arrivals int
	// Horizon bounds arrival times: VMs arrive in [0, Horizon). Required.
	Horizon sim.Time
	// Classes is the class mix; default DefaultClassMix.
	Classes []ClassMix
	// MeanLifetime is the mean VM lifetime. Lifetimes are heavy-tailed
	// (bounded Pareto, alpha 1.5): most VMs are short-lived, a few run
	// for a large multiple of the mean. Default Horizon/10.
	MeanLifetime sim.Time
	// MaxLifetime caps lifetimes; default 4 x Horizon.
	MaxLifetime sim.Time
	// DiurnalPeriod is the day length of the arrival-intensity and
	// demand-activity waves; default Horizon/2.
	DiurnalPeriod sim.Time
	// DiurnalAmplitude in [0, 1) scales the waves: intensity and activity
	// swing by this fraction around their means. Default 0.6.
	DiurnalAmplitude float64
	// BaseActivity is the mean fraction of its credit a VM demands;
	// default 0.5.
	BaseActivity float64
	// SegmentLen is the length of one demand-profile segment; each VM's
	// profile is piecewise-constant over segments of this length,
	// modulated by the diurnal wave plus per-segment jitter. Default 60 s
	// (0 keeps the default; negative disables segmentation, producing a
	// single constant-rate phase per VM).
	SegmentLen sim.Time
}

// withDefaults validates and fills the generator defaults.
func (cfg GenConfig) withDefaults() (GenConfig, error) {
	if cfg.Arrivals < 1 {
		return cfg, fmt.Errorf("fleet: generator needs at least 1 arrival, got %d", cfg.Arrivals)
	}
	if cfg.Horizon <= 0 {
		return cfg, fmt.Errorf("fleet: generator horizon %v not positive", cfg.Horizon)
	}
	if cfg.Horizon > sim.FromSeconds(maxTraceSeconds) {
		return cfg, fmt.Errorf("fleet: generator horizon %v beyond %g s", cfg.Horizon, maxTraceSeconds)
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = DefaultClassMix()
	}
	total := 0.0
	for _, m := range cfg.Classes {
		if err := m.Class.Validate(); err != nil {
			return cfg, err
		}
		if m.Weight < 0 {
			return cfg, fmt.Errorf("fleet: class %s has negative weight %v", m.Class.Name, m.Weight)
		}
		total += m.Weight
	}
	if total <= 0 {
		return cfg, fmt.Errorf("fleet: class mix has no positive weight")
	}
	if cfg.MeanLifetime == 0 {
		cfg.MeanLifetime = cfg.Horizon / 10
	}
	if cfg.MeanLifetime <= 0 {
		return cfg, fmt.Errorf("fleet: mean lifetime %v not positive", cfg.MeanLifetime)
	}
	if cfg.MaxLifetime == 0 {
		cfg.MaxLifetime = 4 * cfg.Horizon
		if m := 4 * cfg.MeanLifetime; m > cfg.MaxLifetime {
			cfg.MaxLifetime = m
		}
	}
	if cfg.MaxLifetime < cfg.MeanLifetime {
		return cfg, fmt.Errorf("fleet: max lifetime %v below mean %v", cfg.MaxLifetime, cfg.MeanLifetime)
	}
	if cfg.DiurnalPeriod == 0 {
		cfg.DiurnalPeriod = cfg.Horizon / 2
	}
	if cfg.DiurnalPeriod <= 0 {
		return cfg, fmt.Errorf("fleet: diurnal period %v not positive", cfg.DiurnalPeriod)
	}
	if cfg.DiurnalAmplitude == 0 {
		cfg.DiurnalAmplitude = 0.6
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return cfg, fmt.Errorf("fleet: diurnal amplitude %v outside [0,1)", cfg.DiurnalAmplitude)
	}
	if cfg.BaseActivity == 0 {
		cfg.BaseActivity = 0.5
	}
	if cfg.BaseActivity < 0 || cfg.BaseActivity > 1 {
		return cfg, fmt.Errorf("fleet: base activity %v outside [0,1]", cfg.BaseActivity)
	}
	if cfg.SegmentLen == 0 {
		cfg.SegmentLen = 60 * sim.Second
	}
	return cfg, nil
}

// paretoAlpha is the heavy-tail exponent of the lifetime distribution.
// Alpha in (1, 2) has a finite mean but infinite variance — the shape
// cloud VM lifetime studies report (most VMs short-lived, a fat tail of
// long-runners).
const paretoAlpha = 1.5

// Generate builds a synthetic VM lifecycle trace: arrivals follow a
// diurnal intensity wave over the horizon, lifetimes are heavy-tailed
// around the configured mean, classes are drawn from the weighted mix,
// and every VM carries a piecewise demand profile modulated by the same
// diurnal wave plus per-segment jitter. The trace is deterministic in the
// seed.
func Generate(cfg GenConfig) (*Trace, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	t := &Trace{Classes: make(map[string]VMClass, len(cfg.Classes)), Horizon: cfg.Horizon}
	totalWeight := 0.0
	for _, m := range cfg.Classes {
		t.Classes[m.Class.Name] = m.Class
		totalWeight += m.Weight
	}

	diurnal := func(at sim.Time) float64 {
		return 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*at.Seconds()/cfg.DiurnalPeriod.Seconds())
	}
	width := len(fmt.Sprintf("%d", cfg.Arrivals))
	for i := 0; i < cfg.Arrivals; i++ {
		// Arrival time by rejection sampling against the diurnal
		// intensity: uniform proposals accepted with probability
		// proportional to the intensity at the proposed time.
		var arrive sim.Time
		for {
			arrive = sim.Time(rng.Float64() * float64(cfg.Horizon))
			if rng.Float64()*(1+cfg.DiurnalAmplitude) <= diurnal(arrive) {
				break
			}
		}

		// Bounded Pareto lifetime with mean MeanLifetime (for the
		// unbounded distribution): x_m = mean * (alpha-1)/alpha.
		xm := float64(cfg.MeanLifetime) * (paretoAlpha - 1) / paretoAlpha
		u := rng.Float64()
		life := sim.Time(xm * math.Pow(1-u, -1/paretoAlpha))
		if life > cfg.MaxLifetime {
			life = cfg.MaxLifetime
		}
		if life < sim.Millisecond {
			life = sim.Millisecond
		}

		// Weighted class pick.
		pick := rng.Float64() * totalWeight
		class := cfg.Classes[len(cfg.Classes)-1].Class
		for _, m := range cfg.Classes {
			if pick < m.Weight {
				class = m.Class
				break
			}
			pick -= m.Weight
		}

		ev := VMEvent{
			Name:     fmt.Sprintf("vm%0*d", width, i),
			Class:    class.Name,
			Arrive:   arrive,
			Lifetime: life,
		}
		ev.Activity, ev.Demand = demandProfile(cfg, rng, class, arrive, arrive+life, diurnal)
		t.Events = append(t.Events, ev)
	}
	t.sortEvents()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: generated trace invalid: %w", err)
	}
	return t, nil
}

// demandProfile builds one VM's piecewise demand: segments of SegmentLen
// whose activity follows the diurnal wave with per-segment jitter. It
// returns the mean activity (the scalar the CSV format carries) and the
// phases.
func demandProfile(cfg GenConfig, rng *sim.RNG, class VMClass, start, end sim.Time,
	diurnal func(sim.Time) float64) (float64, []workload.Phase) {
	if end <= start {
		return 0, nil
	}
	var phases []workload.Phase
	sumAct, sumDur := 0.0, 0.0
	seg := cfg.SegmentLen
	if seg < 0 {
		seg = end - start
	}
	for at := start; at < end; at += seg {
		segEnd := at + seg
		if segEnd > end {
			segEnd = end
		}
		jitter := 0.75 + 0.5*rng.Float64()
		act := cfg.BaseActivity * diurnal(at) * jitter / (1 + cfg.DiurnalAmplitude)
		if act > 1 {
			act = 1
		}
		if act < 0 {
			act = 0
		}
		rate := workload.ExactRate(ReferenceThroughput, class.CreditPct*act, workload.DefaultRequestCost)
		if rate > 0 {
			phases = append(phases, workload.Phase{Start: at, End: segEnd, Rate: rate})
		}
		dur := (segEnd - at).Seconds()
		sumAct += act * dur
		sumDur += dur
	}
	mean := 0.0
	if sumDur > 0 {
		mean = sumAct / sumDur
	}
	return mean, phases
}
