package fleet

import (
	"fmt"
	"math"

	"pasched/internal/sim"
	"pasched/internal/workload"
)

// ClassMix is one VM class with its share of the generated population.
type ClassMix struct {
	Class VMClass
	// Weight is the relative frequency of the class; weights need not sum
	// to anything in particular.
	Weight float64
}

// DefaultClassMix is a typical hosting estate: many small mostly-idle
// services, fewer medium ones, a handful of large busy VMs.
func DefaultClassMix() []ClassMix {
	return []ClassMix{
		{Class: VMClass{Name: "small", CreditPct: 10, MemoryMB: 1024}, Weight: 6},
		{Class: VMClass{Name: "medium", CreditPct: 20, MemoryMB: 2048}, Weight: 3},
		{Class: VMClass{Name: "large", CreditPct: 40, MemoryMB: 4096}, Weight: 1},
	}
}

// GenConfig configures the synthetic trace generator.
type GenConfig struct {
	// Seed seeds the generator; the same seed yields the same trace.
	Seed uint64
	// Arrivals is the number of VM lifecycles to generate. Required.
	Arrivals int
	// Horizon bounds arrival times: VMs arrive in [0, Horizon). Required.
	Horizon sim.Time
	// Classes is the class mix; default DefaultClassMix.
	Classes []ClassMix
	// MeanLifetime is the mean VM lifetime. Lifetimes are heavy-tailed
	// (bounded Pareto, alpha 1.5): most VMs are short-lived, a few run
	// for a large multiple of the mean. Default Horizon/10.
	MeanLifetime sim.Time
	// MaxLifetime caps lifetimes; default 4 x Horizon.
	MaxLifetime sim.Time
	// DiurnalPeriod is the day length of the arrival-intensity and
	// demand-activity waves; default Horizon/2.
	DiurnalPeriod sim.Time
	// DiurnalAmplitude in [0, 1) scales the waves: intensity and activity
	// swing by this fraction around their means. Default 0.6.
	DiurnalAmplitude float64
	// BaseActivity is the mean fraction of its credit a VM demands;
	// default 0.5.
	BaseActivity float64
	// SegmentLen is the length of one demand-profile segment; each VM's
	// profile is piecewise-constant over segments of this length,
	// modulated by the diurnal wave plus per-segment jitter. Default 60 s
	// (0 keeps the default; negative disables segmentation, producing a
	// single constant-rate phase per VM).
	SegmentLen sim.Time
}

// withDefaults validates and fills the generator defaults.
func (cfg GenConfig) withDefaults() (GenConfig, error) {
	if cfg.Arrivals < 1 {
		return cfg, fmt.Errorf("fleet: generator needs at least 1 arrival, got %d", cfg.Arrivals)
	}
	if cfg.Horizon <= 0 {
		return cfg, fmt.Errorf("fleet: generator horizon %v not positive", cfg.Horizon)
	}
	if cfg.Horizon > sim.FromSeconds(maxTraceSeconds) {
		return cfg, fmt.Errorf("fleet: generator horizon %v beyond %g s", cfg.Horizon, maxTraceSeconds)
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = DefaultClassMix()
	}
	total := 0.0
	for _, m := range cfg.Classes {
		if err := m.Class.Validate(); err != nil {
			return cfg, err
		}
		if m.Weight < 0 {
			return cfg, fmt.Errorf("fleet: class %s has negative weight %v", m.Class.Name, m.Weight)
		}
		total += m.Weight
	}
	if total <= 0 {
		return cfg, fmt.Errorf("fleet: class mix has no positive weight")
	}
	if cfg.MeanLifetime == 0 {
		cfg.MeanLifetime = cfg.Horizon / 10
	}
	if cfg.MeanLifetime <= 0 {
		return cfg, fmt.Errorf("fleet: mean lifetime %v not positive", cfg.MeanLifetime)
	}
	if cfg.MaxLifetime == 0 {
		cfg.MaxLifetime = 4 * cfg.Horizon
		if m := 4 * cfg.MeanLifetime; m > cfg.MaxLifetime {
			cfg.MaxLifetime = m
		}
	}
	if cfg.MaxLifetime < cfg.MeanLifetime {
		return cfg, fmt.Errorf("fleet: max lifetime %v below mean %v", cfg.MaxLifetime, cfg.MeanLifetime)
	}
	if cfg.DiurnalPeriod == 0 {
		cfg.DiurnalPeriod = cfg.Horizon / 2
	}
	if cfg.DiurnalPeriod <= 0 {
		return cfg, fmt.Errorf("fleet: diurnal period %v not positive", cfg.DiurnalPeriod)
	}
	if cfg.DiurnalAmplitude == 0 {
		cfg.DiurnalAmplitude = 0.6
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return cfg, fmt.Errorf("fleet: diurnal amplitude %v outside [0,1)", cfg.DiurnalAmplitude)
	}
	if cfg.BaseActivity == 0 {
		cfg.BaseActivity = 0.5
	}
	if cfg.BaseActivity < 0 || cfg.BaseActivity > 1 {
		return cfg, fmt.Errorf("fleet: base activity %v outside [0,1]", cfg.BaseActivity)
	}
	if cfg.SegmentLen == 0 {
		cfg.SegmentLen = 60 * sim.Second
	}
	return cfg, nil
}

// paretoAlpha is the heavy-tail exponent of the lifetime distribution.
// Alpha in (1, 2) has a finite mean but infinite variance — the shape
// cloud VM lifetime studies report (most VMs short-lived, a fat tail of
// long-runners).
const paretoAlpha = 1.5

// mix64 is the splitmix64 finalizer: a bijective avalanche that turns
// the structured per-event seeds (seed xor scaled index) into
// well-separated RNG states.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// genSource streams the synthetic trace in arrival order without ever
// materializing it. Sorted arrivals come from the order-statistics
// identity u_(k) = (E_1+...+E_k)/(E_1+...+E_(N+1)) for iid Exp(1)
// spacings: one pass sums the N+1 spacings, a second pass replays the
// same draws (same seed) and emits each normalized prefix through the
// inverse of the diurnal cumulative intensity, so arrival k costs O(1)
// memory and the stream is already in (Arrive, Name) order. Per-event
// attributes (lifetime, class, demand jitter) come from an independent
// RNG lane keyed on the event index, so they are identical whether the
// trace is streamed or materialized.
type genSource struct {
	cfg         GenConfig
	classes     map[string]VMClass
	totalWeight float64
	width       int

	rng    *sim.RNG // pass-2 replay of the exponential spacings
	sum    float64  // total of the N+1 spacings from pass 1
	prefix float64  // running spacing prefix
	lamH   float64  // cumulative intensity at the horizon

	i          int
	prevArrive sim.Time
}

// GenerateStream returns the synthetic trace as a TraceSource emitting
// lazily: peak memory is O(1) in the arrival count, so a 10M-arrival
// trace can feed NewStream or WriteCSVStream directly. Generate is this
// stream materialized — the two are bit-identical event for event.
func GenerateStream(cfg GenConfig) (TraceSource, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	classes := make(map[string]VMClass, len(cfg.Classes))
	totalWeight := 0.0
	for _, m := range cfg.Classes {
		classes[m.Class.Name] = m.Class
		totalWeight += m.Weight
	}
	// Pass 1: total of the N+1 exponential spacings. Pass 2 (Next)
	// replays the identical draws from a fresh RNG on the same seed.
	rng := sim.NewRNG(cfg.Seed)
	sum := 0.0
	for i := 0; i <= cfg.Arrivals; i++ {
		sum += rng.ExpFloat64()
	}
	s := &genSource{
		cfg:         cfg,
		classes:     classes,
		totalWeight: totalWeight,
		width:       len(fmt.Sprintf("%d", cfg.Arrivals)),
		rng:         sim.NewRNG(cfg.Seed),
		sum:         sum,
		lamH:        cumIntensity(float64(cfg.Horizon), cfg),
	}
	return s, nil
}

func (s *genSource) Classes() map[string]VMClass { return s.classes }
func (s *genSource) Horizon() sim.Time           { return s.cfg.Horizon }
func (s *genSource) Err() error                  { return nil }

func (s *genSource) Next() (VMEvent, bool) {
	if s.i >= s.cfg.Arrivals {
		return VMEvent{}, false
	}
	cfg := s.cfg
	s.prefix += s.rng.ExpFloat64()
	u := s.prefix / s.sum

	// Arrival by inverse transform of the cumulative diurnal intensity:
	// the k-th uniform order statistic mapped through Lambda^-1, so the
	// arrival density is proportional to 1 + A*sin(2*pi*t/P) — the same
	// wave the materialized generator targeted by rejection.
	arrive := sim.Time(invCumIntensity(u*s.lamH, cfg))
	if arrive < 0 {
		arrive = 0
	}
	if arrive >= cfg.Horizon {
		arrive = cfg.Horizon - 1
	}
	if arrive < s.prevArrive {
		// Float inversion can misorder adjacent arrivals by an ulp;
		// clamping keeps the stream sorted (names break the tie).
		arrive = s.prevArrive
	}
	s.prevArrive = arrive

	// Independent attribute lane per event: identical draws regardless
	// of how many events came before, so streaming == materializing.
	lane := sim.NewRNG(mix64(cfg.Seed ^ uint64(s.i)*0x9e3779b97f4a7c15))

	// Bounded Pareto lifetime with mean MeanLifetime (for the
	// unbounded distribution): x_m = mean * (alpha-1)/alpha.
	xm := float64(cfg.MeanLifetime) * (paretoAlpha - 1) / paretoAlpha
	uLife := lane.Float64()
	life := sim.Time(xm * math.Pow(1-uLife, -1/paretoAlpha))
	if life > cfg.MaxLifetime {
		life = cfg.MaxLifetime
	}
	if life < sim.Millisecond {
		life = sim.Millisecond
	}

	// Weighted class pick.
	pick := lane.Float64() * s.totalWeight
	class := cfg.Classes[len(cfg.Classes)-1].Class
	for _, m := range cfg.Classes {
		if pick < m.Weight {
			class = m.Class
			break
		}
		pick -= m.Weight
	}

	ev := VMEvent{
		Name:     fmt.Sprintf("vm%0*d", s.width, s.i),
		Class:    class.Name,
		Arrive:   arrive,
		Lifetime: life,
	}
	ev.Activity, ev.Demand = demandProfile(cfg, lane, class, arrive, arrive+life)
	s.i++
	return ev, true
}

// diurnalWave is the shared intensity/activity modulation: 1 plus a
// sine of the configured period, scaled by the amplitude.
func diurnalWave(cfg GenConfig, at sim.Time) float64 {
	return 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*at.Seconds()/cfg.DiurnalPeriod.Seconds())
}

// cumIntensity is the integral of the diurnal wave from 0 to tau (tau
// in sim.Time units): tau + A*(P/2pi)*(1 - cos(2pi*tau/P)).
func cumIntensity(tau float64, cfg GenConfig) float64 {
	w := 2 * math.Pi / float64(cfg.DiurnalPeriod)
	return tau + cfg.DiurnalAmplitude/w*(1-math.Cos(w*tau))
}

// invCumIntensity inverts cumIntensity on [0, Horizon] by Newton with a
// bisection safeguard. The derivative 1 + A*sin(w*tau) is at least
// 1-A > 0, so the function is strictly increasing and the iteration is
// safe; the bracket guarantees termination on any rounding pattern.
func invCumIntensity(target float64, cfg GenConfig) float64 {
	if target <= 0 {
		return 0
	}
	w := 2 * math.Pi / float64(cfg.DiurnalPeriod)
	lo, hi := 0.0, float64(cfg.Horizon)
	tau := target // the identity part of Lambda makes this a good start
	if tau > hi {
		tau = hi
	}
	for iter := 0; iter < 64; iter++ {
		f := tau + cfg.DiurnalAmplitude/w*(1-math.Cos(w*tau)) - target
		if f > 0 {
			hi = tau
		} else if f < 0 {
			lo = tau
		} else {
			return tau
		}
		d := 1 + cfg.DiurnalAmplitude*math.Sin(w*tau)
		next := tau - f/d
		if next <= lo || next >= hi {
			next = 0.5 * (lo + hi)
		}
		if next == tau {
			break
		}
		tau = next
	}
	return tau
}

// Generate builds a synthetic VM lifecycle trace: arrivals follow a
// diurnal intensity wave over the horizon, lifetimes are heavy-tailed
// around the configured mean, classes are drawn from the weighted mix,
// and every VM carries a piecewise demand profile modulated by the same
// diurnal wave plus per-segment jitter. The trace is deterministic in the
// seed, and bit-identical to draining GenerateStream — Generate is that
// stream materialized and validated.
func Generate(cfg GenConfig) (*Trace, error) {
	src, err := GenerateStream(cfg)
	if err != nil {
		return nil, err
	}
	t, err := Drain(src)
	if err != nil {
		return nil, fmt.Errorf("fleet: generated trace invalid: %w", err)
	}
	return t, nil
}

// demandProfile builds one VM's piecewise demand: segments of SegmentLen
// whose activity follows the diurnal wave with per-segment jitter. It
// returns the mean activity (the scalar the CSV format carries) and the
// phases.
func demandProfile(cfg GenConfig, rng *sim.RNG, class VMClass, start, end sim.Time) (float64, []workload.Phase) {
	if end <= start {
		return 0, nil
	}
	var phases []workload.Phase
	sumAct, sumDur := 0.0, 0.0
	seg := cfg.SegmentLen
	if seg < 0 {
		seg = end - start
	}
	for at := start; at < end; at += seg {
		segEnd := at + seg
		if segEnd > end {
			segEnd = end
		}
		jitter := 0.75 + 0.5*rng.Float64()
		act := cfg.BaseActivity * diurnalWave(cfg, at) * jitter / (1 + cfg.DiurnalAmplitude)
		if act > 1 {
			act = 1
		}
		if act < 0 {
			act = 0
		}
		rate := workload.ExactRate(ReferenceThroughput, class.CreditPct*act, workload.DefaultRequestCost)
		if rate > 0 {
			phases = append(phases, workload.Phase{Start: at, End: segEnd, Rate: rate})
		}
		dur := (segEnd - at).Seconds()
		sumAct += act * dur
		sumDur += dur
	}
	mean := 0.0
	if sumDur > 0 {
		mean = sumAct / sumDur
	}
	return mean, phases
}
