package fleet

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"pasched/internal/sim"
)

// TestGenerateStreamMatchesGenerate proves the streaming generator and
// the materialized one are the same trace bit for bit: Generate is
// GenerateStream drained, and a second independent stream replays
// identically (the source is deterministic in the seed, not stateful
// across constructions).
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := GenConfig{Seed: 1234, Arrivals: 500, Horizon: 600 * sim.Second,
		MeanLifetime: 90 * sim.Second, SegmentLen: 30 * sim.Second}
	tr := genTrace(t, cfg)
	src, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Horizon() != tr.Horizon {
		t.Fatalf("horizon: stream %v, trace %v", src.Horizon(), tr.Horizon)
	}
	if !reflect.DeepEqual(src.Classes(), tr.Classes) {
		t.Fatalf("classes differ: %+v vs %+v", src.Classes(), tr.Classes)
	}
	for i := range tr.Events {
		ev, ok := src.Next()
		if !ok {
			t.Fatalf("stream ended at event %d of %d: %v", i, len(tr.Events), src.Err())
		}
		if !reflect.DeepEqual(ev, tr.Events[i]) {
			t.Fatalf("event %d differs:\nstream %+v\ntrace  %+v", i, ev, tr.Events[i])
		}
	}
	if ev, ok := src.Next(); ok {
		t.Fatalf("stream has extra event after %d: %+v", len(tr.Events), ev)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("clean stream reports error: %v", err)
	}
}

// TestGenerateStreamSortedAndValid drains a larger stream through the
// full Trace.Validate gauntlet: sorted (Arrive, Name) order, unique
// names, in-horizon arrivals — the TraceSource contract.
func TestGenerateStreamSortedAndValid(t *testing.T) {
	src, err := GenerateStream(GenConfig{Seed: 9, Arrivals: 3000, Horizon: 3600 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3000 {
		t.Fatalf("drained %d events, want 3000", len(tr.Events))
	}
}

// TestTraceSourceRoundTrip: the materialized adapter drained back is
// the trace it wrapped.
func TestTraceSourceRoundTrip(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 3, Arrivals: 50, Horizon: 100 * sim.Second})
	back, err := Drain(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr) {
		t.Fatalf("Source->Drain changed the trace:\n%+v\nvs\n%+v", back, tr)
	}
}

// TestWriteCSVStreamByteIdentity is the satellite acceptance check:
// Generate -> materialize -> WriteCSV and GenerateStream ->
// WriteCSVStream produce byte-identical files.
func TestWriteCSVStreamByteIdentity(t *testing.T) {
	cfg := GenConfig{Seed: 77, Arrivals: 400, Horizon: 300 * sim.Second}
	tr := genTrace(t, cfg)
	var buffered bytes.Buffer
	if err := tr.WriteCSV(&buffered); err != nil {
		t.Fatal(err)
	}
	src, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := WriteCSVStream(src, &streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buffered.Bytes(), streamed.Bytes()) {
		t.Fatalf("materialized and streamed CSV differ (%d vs %d bytes)",
			buffered.Len(), streamed.Len())
	}
}

// TestParseTraceStream: the streaming CSV reader yields the same trace
// ParseTrace materializes from the same bytes.
func TestParseTraceStream(t *testing.T) {
	tr := genTrace(t, GenConfig{Seed: 5, Arrivals: 200, Horizon: 240 * sim.Second})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src, err := ParseTraceStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed parse differs from ParseTrace:\n%+v\nvs\n%+v", got, want)
	}
}

// TestParseTraceStreamErrors covers what the streaming reader must
// reject that ParseTrace can repair by buffering: prologue records
// after the first vm record, unsorted vm records, plus the shared
// validation (duplicates, malformed fields, empty traces).
func TestParseTraceStreamErrors(t *testing.T) {
	cases := []struct {
		name, input, want string
		late              bool // error surfaces from Next/Err, not construction
	}{
		{name: "empty", input: "# nothing\n", want: "without VM events"},
		{name: "vm before horizon", input: "class,a,10,1024\nvm,x,0,5,a,0.5\n",
			want: "before the horizon record"},
		{name: "class after vm",
			input: "horizon,10\nclass,a,10,1024\nvm,x,0,5,a,0.5\nclass,b,20,2048\n",
			want:  "after the first vm record", late: true},
		{name: "unsorted",
			input: "horizon,10\nclass,a,10,1024\nvm,x,5,1,a,0.5\nvm,y,1,1,a,0.5\n",
			want:  "not sorted", late: true},
		{name: "duplicate name",
			input: "horizon,10\nclass,a,10,1024\nvm,x,1,1,a,0.5\nvm,x,1,2,a,0.5\n",
			want:  "duplicate VM name", late: true},
		{name: "duplicate class",
			input: "horizon,10\nclass,a,10,1024\nclass,a,10,1024\nvm,x,0,5,a,0.5\n",
			want:  "duplicate class"},
		{name: "bad activity",
			input: "horizon,10\nclass,a,10,1024\nvm,x,0,5,a,wat\n",
			want:  "invalid syntax", late: true},
		{name: "unknown record", input: "wat,1\nhorizon,10\n", want: "unknown record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := ParseTraceStream(strings.NewReader(tc.input))
			if !tc.late {
				if err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("construction error = %v, want %q", err, tc.want)
				}
				return
			}
			if err != nil {
				t.Fatalf("construction failed early: %v", err)
			}
			for {
				if _, ok := src.Next(); !ok {
					break
				}
			}
			if err := src.Err(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("stream error = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestFleetStreamedSourceEquivalence extends the tentpole equivalence
// check to the streaming path: a fleet consuming GenerateStream
// directly must produce a report and flight-recorder event stream
// DeepEqual-bit-exact to the materialized-trace baseline, for every
// shard x worker combination.
func TestFleetStreamedSourceEquivalence(t *testing.T) {
	seed := uint64(7)
	gen := GenConfig{
		Seed:         seed,
		Arrivals:     140,
		Horizon:      300 * sim.Second,
		MeanLifetime: 45 * sim.Second,
		BaseActivity: 0.5,
		SegmentLen:   30 * sim.Second,
	}
	tr := genTrace(t, gen)
	want, wantEv := runFleetObs(t, churnConfig(1, 1, seed), tr, 300*sim.Second)
	if want.Summary.Migrated == 0 || want.Summary.Departed == 0 {
		t.Fatalf("no churn, comparison is vacuous: %+v", want.Summary)
	}
	for _, shards := range []int{1, 2, 4, 7} {
		for _, workers := range []int{1, 4} {
			src, err := GenerateStream(gen)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := NewStream(churnConfig(shards, workers, seed), src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fl.Run(300 * sim.Second)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d workers=%d: streamed report differs from materialized 1x1:\n%+v\nvs\n%+v",
					shards, workers, got.Summary, want.Summary)
			}
			gotEv := fl.ObsEvents()
			if !reflect.DeepEqual(gotEv, wantEv) {
				t.Errorf("shards=%d workers=%d: streamed event stream differs (%d vs %d events)",
					shards, workers, len(gotEv), len(wantEv))
			}
		}
	}
}

// TestNewStreamValidation: the streaming constructor and run surface
// the errors Trace.Validate would have raised up front.
func TestNewStreamValidation(t *testing.T) {
	cfg := Config{Machines: testMachines(2, 0)}
	if _, err := NewStream(cfg, nil); err == nil ||
		!strings.Contains(err.Error(), "nil trace source") {
		t.Errorf("nil source: %v", err)
	}
	empty := &Trace{Classes: map[string]VMClass{"a": {Name: "a", CreditPct: 10, MemoryMB: 512}},
		Horizon: 10 * sim.Second}
	fl, err := NewStream(cfg, empty.Source())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run(10 * sim.Second); err == nil ||
		!strings.Contains(err.Error(), "without VM events") {
		t.Errorf("empty stream: %v", err)
	}
	bad := &Trace{
		Classes: map[string]VMClass{"a": {Name: "a", CreditPct: 10, MemoryMB: 512}},
		Events: []VMEvent{
			{Name: "x", Class: "a", Arrive: 5 * sim.Second, Lifetime: sim.Second, Activity: 0.5},
			{Name: "y", Class: "a", Arrive: 1 * sim.Second, Lifetime: sim.Second, Activity: 0.5},
		},
		Horizon: 10 * sim.Second,
	}
	fl, err = NewStream(cfg, bad.Source())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run(10 * sim.Second); err == nil ||
		!strings.Contains(err.Error(), "not sorted") {
		t.Errorf("unsorted stream: %v", err)
	}
	ghost := &Trace{
		Classes: map[string]VMClass{"a": {Name: "a", CreditPct: 10, MemoryMB: 512}},
		Events: []VMEvent{
			{Name: "x", Class: "ghost", Arrive: sim.Second, Lifetime: sim.Second, Activity: 0.5},
		},
		Horizon: 10 * sim.Second,
	}
	fl, err = NewStream(cfg, ghost.Source())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Run(10 * sim.Second); err == nil ||
		!strings.Contains(err.Error(), "unknown class") {
		t.Errorf("unknown class: %v", err)
	}
}

// peakSink tracks the live heap across a run: the Interval hook runs on
// the coordinator between barriers, so GC + ReadMemStats there samples
// the fleet's true working set.
type peakSink struct {
	peak uint64
}

func (p *peakSink) Interval(*Interval) error {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > p.peak {
		p.peak = ms.HeapAlloc
	}
	return nil
}
func (p *peakSink) Outcome(*VMOutcome) error { return nil }
func (p *peakSink) Finish(*Summary) error    { return nil }

// TestStreamedRunMemoryBounded is the satellite memory regression: a
// DiscardReport streaming run's peak heap must be machine-proportional,
// not arrival-proportional — growing arrivals 10x may not grow the peak
// past a fixed slack over the smaller run (the slack absorbs pool and
// GC noise; an O(arrivals) trace buffer would blow through it, as 10x
// events of this trace are tens of MB).
func TestStreamedRunMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory regression needs full GC cycles")
	}
	horizon := 1200 * sim.Second
	run := func(arrivals int) uint64 {
		src, err := GenerateStream(GenConfig{
			Seed:         11,
			Arrivals:     arrivals,
			Horizon:      horizon,
			MeanLifetime: 30 * sim.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		sink := &peakSink{}
		fl, err := NewStream(Config{
			Machines:      testMachines(40, 20),
			Policy:        NewFirstFit(),
			ReportEvery:   30 * sim.Second,
			DiscardReport: true,
			Sinks:         []Sink{sink},
		}, src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fl.Run(horizon); err != nil {
			t.Fatal(err)
		}
		return sink.peak
	}
	small := run(3000)
	large := run(30000)
	t.Logf("peak heap: 3k arrivals %.1f MB, 30k arrivals %.1f MB",
		float64(small)/(1<<20), float64(large)/(1<<20))
	const slack = 8 << 20
	if large > small+slack {
		t.Errorf("10x arrivals grew peak heap %.1f MB -> %.1f MB (> %.0f MB slack): trace residency is not streamed",
			float64(small)/(1<<20), float64(large)/(1<<20), float64(slack)/(1<<20))
	}
}

// FuzzShardMigrationStreamed is FuzzShardMigration fed by the streaming
// generator: arbitrary shard/worker counts against the materialized 1x1
// baseline, with the trace never materialized on the streamed side.
func FuzzShardMigrationStreamed(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(30), uint8(3), uint8(2))
	f.Add(uint64(7), uint8(60), uint8(15), uint8(7), uint8(4))
	f.Add(uint64(42), uint8(25), uint8(60), uint8(2), uint8(1))

	f.Fuzz(func(t *testing.T, seed uint64, arrivals, life, shards, workers uint8) {
		horizon := 120 * sim.Second
		gen := GenConfig{
			Seed:         seed,
			Arrivals:     5 + int(arrivals%56),
			Horizon:      horizon,
			MeanLifetime: sim.Time(10+int(life)%80) * sim.Second,
			BaseActivity: 0.6,
			SegmentLen:   30 * sim.Second,
		}
		tr, err := Generate(gen)
		if err != nil {
			t.Fatal(err)
		}
		cfg := func(s, w int) Config {
			return Config{
				Machines:         testMachines(4, 2),
				UsePAS:           true,
				Policy:           NewBestFit(),
				ReportEvery:      15 * sim.Second,
				ConsolidateEvery: 15 * sim.Second,
				Shards:           s,
				Workers:          w,
				Seed:             seed,
			}
		}
		fl, err := New(cfg(1, 1), tr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fl.Run(horizon)
		if err != nil {
			t.Fatal(err)
		}
		s, w := 1+int(shards)%7, 1+int(workers)%4
		src, err := GenerateStream(gen)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := NewStream(cfg(s, w), src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fs.Run(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("streamed shards=%d workers=%d: report differs from materialized 1x1:\n%+v\nvs\n%+v",
				s, w, got.Summary, want.Summary)
		}
	})
}
