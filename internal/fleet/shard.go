package fleet

import (
	"fmt"
	"math"
	"sync"

	"pasched/internal/energy"
	"pasched/internal/host"
	"pasched/internal/obs"
	"pasched/internal/sched"
	"pasched/internal/serve"
	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// dataVM is the data-plane half of a placed VM: everything only the
// owning shard touches (the simulated guest, its workload, the
// interval-fold cursors). The coordinator builds it at arrival planning
// and hands it to shards inside commands; after the VM departs it
// returns to a pool.
type dataVM struct {
	name          string
	credit        float64
	seed          uint64
	deterministic bool
	phases        []workload.Phase
	guest         *vm.VM
	wl            *workload.WebApp
	// serving state (Config.Serving only): the VM's class index into the
	// shard latency histograms, the client-stream seed (assigned in
	// coordinator order like seed above), and the server itself, which
	// migrates with the dataVM.
	class     int32
	serveSeed uint64
	srv       *serve.Server
	// replica stream-splitting (autoscaler-created VMs only): the full
	// parent phase profile the server replays, the share of the arrival
	// indices this member admits, and whether construction fast-forwards
	// past the group's already-served history.
	servePhases []workload.Phase
	share       int32
	shares      int32
	ff          bool
	// prevDemanded/prevAttained are the portions already folded into the
	// owning shard's interval partials.
	prevDemanded sim.Work
	prevAttained sim.Work
	// led is the VM's throttle-attribution ledger (Config.Obs only). It
	// lives in the dataVM so it migrates with the VM; the hosting host
	// accumulates into it via ObserveVM, and the pool reset zeroes it.
	led obs.VMLedger
}

// demanded returns the VM's cumulative demanded work: everything its
// workload has offered so far, served or still queued.
func (d *dataVM) demanded() sim.Work { return d.wl.CompletedWork() + d.wl.Pending() }

// cmdKind enumerates the data-plane commands the coordinator dispatches
// to shard workers.
type cmdKind uint8

const (
	// cmdPowerOn constructs the machine's host on first use, advances it
	// to the command time, and snapshots its energy meter so the powered
	// off stretch is excluded from the fleet total.
	cmdPowerOn cmdKind = iota
	// cmdAddVM builds the workload and guest and attaches them to the
	// (synchronized, powered-on) machine.
	cmdAddVM
	// cmdRemoveVM detaches a departing guest, folds its final SLA deltas
	// into the shard partials, and fills its outcome slot.
	cmdRemoveVM
	// cmdMigrateOut detaches a migrating guest from the source machine
	// and hands its dataVM to the destination shard over the command's
	// channel.
	cmdMigrateOut
	// cmdMigrateIn receives the dataVM from the source shard and attaches
	// a fresh guest (same still-running workload) to the destination.
	cmdMigrateIn
	// cmdRecordLive fills the outcome slot of a VM still resident at the
	// horizon, without detaching it.
	cmdRecordLive
	// cmdPowerOff marks the machine off after a barrier emptied it.
	cmdPowerOff
	// cmdBarrier synchronizes every powered-on machine of the shard to
	// the barrier time, folds energy and VM work into the shard partials,
	// and signals the coordinator's WaitGroup.
	cmdBarrier
	// cmdJoin only signals the WaitGroup: a synchronization point without
	// a fold (the finalize drain).
	cmdJoin
	// cmdObsMigMark marks a VM's attribution ledger as migrating at the
	// pre-copy plan instant (Config.Obs only): the host is synced to the
	// command time first, so earlier wait time keeps its original
	// classification.
	cmdObsMigMark
	// cmdResize applies one autoscaler action to a resident VM: a credit
	// cap (or weight) change through the scheduler's resize surface, an
	// overhead-share change, or an arrival-stream share renumbering.
	cmdResize
)

// resize ops carried by cmdResize.
const (
	rzCap uint8 = iota + 1
	rzOverhead
	rzShare
)

// resizeArgs are cmdResize's operands.
type resizeArgs struct {
	op       uint8
	capPct   float64 // rzCap
	permille int64   // rzOverhead
	share    int32   // rzShare
	shares   int32
}

// command is one timestamped data-plane operation. The coordinator
// enqueues commands in its deterministic control order; each shard
// worker executes its queue strictly in that order, which is what makes
// the simulation independent of shard and worker counts.
type command struct {
	kind cmdKind
	slot int32 // shard-local machine slot; -1 for barrier/join
	at   sim.Time
	d    *dataVM
	out  *VMOutcome
	ch   chan *dataVM    // migration hand-off (buffered, capacity 1)
	wg   *sync.WaitGroup // barrier/join acknowledgement
	rz   resizeArgs      // cmdResize operands
}

// cmdQueue is a shard worker's mailbox: the coordinator appends, the
// worker drains whole batches. Batch slices are recycled through spare.
type cmdQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []command
	spare  []command
	closed bool
}

func (q *cmdQueue) init() { q.cond = sync.NewCond(&q.mu) }

func (q *cmdQueue) push(c command) {
	q.mu.Lock()
	q.buf = append(q.buf, c)
	q.mu.Unlock()
	q.cond.Signal()
}

// pushBatch appends a pre-partitioned run of commands under one lock
// acquisition — the coordinator stages arrival-heavy windows per shard
// and hands each shard its whole run at once.
func (q *cmdQueue) pushBatch(cmds []command) {
	if len(cmds) == 0 {
		return
	}
	q.mu.Lock()
	q.buf = append(q.buf, cmds...)
	q.mu.Unlock()
	q.cond.Signal()
}

// wait blocks until commands are queued or the queue is closed, and
// returns the pending batch. ok is false when the queue is closed and
// fully drained.
func (q *cmdQueue) wait() (batch []command, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return nil, false
	}
	batch = q.buf
	if q.spare != nil {
		q.buf = q.spare[:0]
		q.spare = nil
	} else {
		q.buf = nil
	}
	return batch, true
}

func (q *cmdQueue) recycle(batch []command) {
	for i := range batch {
		batch[i] = command{}
	}
	q.mu.Lock()
	q.spare = batch[:0]
	q.mu.Unlock()
}

func (q *cmdQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// shard owns a round-robin slice of the fleet's machines: global
// machine i lives in shard i % Shards at local slot i / Shards (first
// fit packs low indices, so round robin spreads the active machines
// evenly across shards). All fields below are touched only by the
// owning shard worker while Run executes — except departQ, which is
// coordinator-owned planning state (the shard-local departure event
// queue the coordinator pops in (time, name) order), and the interval
// partials, which the coordinator reads and resets only between a
// barrier acknowledgement and the next dispatch.
type shard struct {
	f  *Fleet
	id int

	hosts      []*host.Host // constructed lazily at first power-on
	on         []bool
	prevEnergy []energy.Energy
	nextID     []vm.ID
	resident   [][]*dataVM

	departQ timedHeap

	// rng is the shard's private deterministic stream, decorrelated from
	// the workload seeds. It drives the sampled consistency audits below
	// and is the hook for future shard-local stochastic behaviour; it
	// never influences reported values, so results stay bit-identical
	// across shard counts.
	rng *sim.RNG

	// interval partials: the machine -> shard stage of the hierarchical
	// exact reduction. Integer accumulators, so the shard-count-dependent
	// fold order cannot change the fleet sums.
	ivEnergy   energy.Energy
	ivDemanded sim.Work
	ivAttained sim.Work

	// serving partials and counters (Config.Serving only): lat holds the
	// per-class interval latency histograms, merged and reset by the
	// coordinator at barriers exactly like the work partials above; the
	// counters accumulate at VM departure and horizon record and are
	// read by the coordinator only after the final join.
	lat           []serve.Histogram
	servOffered   int64
	servCompleted int64
	servAbandoned int64
	servRetried   int64
	servInFlight  int64

	// flight-recorder lanes (Config.Obs only): one emitting handle per
	// local slot, created at first power-on and kept across power cycles
	// so a lane's sequence numbers never restart; prevBounds snapshots
	// the engines' boundary-source counters so barriers emit deltas.
	mobs       []*obs.MachineObs
	prevBounds [][boundarySources]int64

	err      error
	poisoned bool // err came from a peer's failure, not this shard

	queue cmdQueue
}

// globalIndex maps a local slot back to the fleet-wide machine index.
func (s *shard) globalIndex(slot int32) int { return int(slot)*len(s.f.shards) + s.id }

// boundarySources is the number of engine boundary-source counters the
// barrier telemetry tracks (obs.BoundarySourceNames).
const boundarySources = len(obs.BoundarySourceNames)

// machineObs returns the slot's flight-recorder lane, creating it on
// first use; nil when observation is disabled.
func (s *shard) machineObs(slot int32) *obs.MachineObs {
	if s.f.rec == nil {
		return nil
	}
	if s.mobs[slot] == nil {
		s.mobs[slot] = obs.NewMachineObs(s.f.rec.Ring(s.id), int32(s.globalIndex(slot)))
	}
	return s.mobs[slot]
}

// fail records the shard's first error; later commands run in poison
// mode (no host work, but hand-offs and barriers still serviced so
// peers never block).
func (s *shard) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *shard) poison(err error) {
	if s.err == nil {
		s.err = err
		s.poisoned = true
	}
}

// loop is the persistent worker: it drains command batches in order,
// holding one of the fleet's gate slots while executing. A worker
// blocked on a migration hand-off releases its slot first (see
// execMigrateIn), so a bounded worker count cannot deadlock.
func (s *shard) loop() {
	for {
		batch, ok := s.queue.wait()
		if !ok {
			return
		}
		s.f.gate.Acquire()
		for i := range batch {
			s.exec(&batch[i])
		}
		s.f.gate.Release()
		s.queue.recycle(batch)
	}
}

// exec runs one command. After an error the shard is poisoned: host
// work is skipped, but barriers are still acknowledged and migration
// hand-offs still serviced, so sibling shards and the coordinator can
// always make progress; the coordinator collects the error at the next
// barrier.
func (s *shard) exec(c *command) {
	switch c.kind {
	case cmdBarrier:
		if s.err == nil {
			s.execBarrier(c.at)
		}
		if c.wg != nil {
			c.wg.Done()
		}
	case cmdJoin:
		if c.wg != nil {
			c.wg.Done()
		}
	case cmdPowerOn:
		if s.err == nil {
			s.execPowerOn(c)
		}
	case cmdPowerOff:
		if s.err == nil {
			s.on[c.slot] = false
		}
	case cmdAddVM:
		if s.err == nil {
			s.execAddVM(c)
		}
	case cmdRemoveVM:
		if s.err == nil {
			s.execRemoveVM(c)
		}
	case cmdMigrateOut:
		s.execMigrateOut(c)
	case cmdMigrateIn:
		s.execMigrateIn(c)
	case cmdRecordLive:
		if s.err == nil {
			s.execRecordLive(c)
		}
	case cmdObsMigMark:
		if s.err == nil {
			if err := s.sync(c.slot, c.at); err != nil {
				s.fail(err)
				return
			}
			c.d.led.Migrating = true
		}
	case cmdResize:
		if s.err == nil {
			s.execResize(c)
		}
	}
}

// execResize applies one autoscaler action to a resident VM.
func (s *shard) execResize(c *command) {
	if err := s.sync(c.slot, c.at); err != nil {
		s.fail(err)
		return
	}
	d := c.d
	switch c.rz.op {
	case rzCap:
		// Keep the booked credit on the dataVM so a later migration
		// re-attaches the guest at its resized cap, not the contract.
		d.credit = c.rz.capPct
		var err error
		switch sc := s.hosts[c.slot].Scheduler().(type) {
		case sched.CapSetter:
			err = sc.SetCap(d.guest.ID(), c.rz.capPct)
		case weightSetter:
			err = sc.SetWeight(d.guest.ID(), weightForCap(c.rz.capPct))
		}
		if err != nil {
			s.fail(fmt.Errorf("fleet: resize %s: %w", d.name, err))
		}
	case rzOverhead:
		if d.srv != nil {
			if err := d.srv.SetOverheadPermille(c.rz.permille); err != nil {
				s.fail(fmt.Errorf("fleet: resize %s: %w", d.name, err))
			}
		}
	case rzShare:
		if d.srv != nil {
			if err := d.srv.SetShare(int(c.rz.share), int(c.rz.shares)); err != nil {
				s.fail(fmt.Errorf("fleet: resize %s: %w", d.name, err))
			}
		}
	default:
		s.fail(fmt.Errorf("fleet: resize %s: unknown op %d", d.name, c.rz.op))
	}
}

// weightSetter is the resize surface of weight-based schedulers
// (credit2 has no caps; a cap change maps onto its weight, mirroring
// how pas-credit2 books credits as weights).
type weightSetter interface {
	SetWeight(id vm.ID, w int64) error
}

// weightForCap maps a credit percentage onto a credit2 weight exactly
// as core.PASCredit2 does, clamped to credit2's accepted range.
func weightForCap(pct float64) int64 {
	w := int64(math.Round(pct))
	if w < 1 {
		w = 1
	}
	if w > 4096 {
		w = 4096
	}
	return w
}

// sync advances one machine's host to the command time. Machines lag
// behind between the events that involve them; syncing lets the host
// batch the whole gap.
func (s *shard) sync(slot int32, at sim.Time) error {
	h := s.hosts[slot]
	if h.Now() >= at {
		return nil
	}
	return h.RunUntil(at)
}

func (s *shard) execPowerOn(c *command) {
	if s.hosts[c.slot] == nil {
		// Lazy construction: a machine that is never placed on never
		// builds a host at all, which is what keeps million-machine
		// estates affordable. The host starts at time zero either way, so
		// the catch-up below is identical to an eagerly built host's.
		spec := s.f.specs[s.f.classOf[s.globalIndex(c.slot)]]
		h, err := newMachineHost(spec, s.f.cfg, s.machineObs(c.slot))
		if err != nil {
			s.fail(fmt.Errorf("fleet: machine %d: %w", s.globalIndex(c.slot), err))
			return
		}
		s.hosts[c.slot] = h
	}
	if err := s.sync(c.slot, c.at); err != nil {
		s.fail(err)
		return
	}
	s.prevEnergy[c.slot] = s.hosts[c.slot].Energy().Total()
	s.on[c.slot] = true
}

func (s *shard) execAddVM(c *command) {
	if err := s.sync(c.slot, c.at); err != nil {
		s.fail(err)
		return
	}
	d := c.d
	wl, err := workload.NewWebApp(workload.WebAppConfig{
		Phases:        d.phases,
		Deterministic: d.deterministic,
		MaxBacklog:    -1, // unbounded: unserved demand stays visible to the SLA
		Seed:          d.seed,
	})
	if err != nil {
		s.fail(fmt.Errorf("fleet: VM %s workload: %w", d.name, err))
		return
	}
	if s.f.cfg.Serving.Enabled {
		sc := &s.f.cfg.Serving
		phases := d.phases
		if d.servePhases != nil {
			// Autoscaled replica: replay the parent's full stream (same
			// seed) and admit only this member's share of it.
			phases = d.servePhases
		}
		srv, err := serve.New(serve.Config{
			Slots:            sc.Slots,
			RequestCost:      sc.RequestCost,
			Phases:           phases,
			Deterministic:    d.deterministic,
			Seed:             d.serveSeed,
			Start:            c.at,
			OverheadPermille: sc.OverheadPermille,
			ClosedLoop:       sc.ClosedLoop,
			Clients:          sc.Clients,
			ThinkTime:        sc.ThinkTime,
			AbandonAfter:     sc.AbandonAfter,
			RetryMax:         sc.RetryMax,
			Share:            int(d.share),
			Shares:           int(d.shares),
			FastForward:      d.ff,
		})
		if err != nil {
			s.fail(fmt.Errorf("fleet: VM %s serving: %w", d.name, err))
			return
		}
		d.srv = srv
	}
	guest, err := vm.New(s.nextID[c.slot], vm.Config{Name: d.name, Credit: d.credit})
	if err != nil {
		s.fail(fmt.Errorf("fleet: VM %s: %w", d.name, err))
		return
	}
	s.nextID[c.slot]++
	guest.SetWorkload(wl)
	if err := s.hosts[c.slot].AddVM(guest); err != nil {
		s.fail(fmt.Errorf("fleet: VM %s on machine %d: %w", d.name, s.globalIndex(c.slot), err))
		return
	}
	d.guest, d.wl = guest, wl
	s.resident[c.slot] = append(s.resident[c.slot], d)
	if s.f.rec != nil {
		s.observe(c.slot, d)
	}
}

// observe opens a ledger residency segment at the host clock and
// registers the ledger with the host, which accumulates attribution into
// it quantum-exactly until the VM detaches.
func (s *shard) observe(slot int32, d *dataVM) {
	h := s.hosts[slot]
	d.led.Attach(h.Now())
	if err := h.ObserveVM(d.guest.ID(), &d.led); err != nil {
		s.fail(fmt.Errorf("fleet: observe %s: %w", d.name, err))
	}
}

// detach removes the dataVM from the machine's resident list and its
// guest from the host.
func (s *shard) detach(slot int32, d *dataVM, op string) error {
	if err := s.hosts[slot].RemoveVM(d.guest.ID()); err != nil {
		return fmt.Errorf("fleet: %s %s: %w", op, d.name, err)
	}
	res := s.resident[slot]
	for i, r := range res {
		if r == d {
			res[i] = res[len(res)-1]
			res[len(res)-1] = nil
			s.resident[slot] = res[:len(res)-1]
			break
		}
	}
	return nil
}

// fold ticks the VM's workload up to its host's clock and folds the
// demanded/attained deltas into the shard partials, returning the
// cumulative tallies. Batched host stretches skip workload ticks (the
// batching certification proves nothing arrives inside them), so
// ticking here is idempotent and keeps batched and reference runs
// reporting identical demand.
func (s *shard) fold(slot int32, d *dataVM) (demanded, attained sim.Work) {
	d.wl.Tick(s.hosts[slot].Now())
	dem, att := d.demanded(), d.wl.CompletedWork()
	if d.srv != nil {
		// The server advances on the interval's exact attained-work
		// ledger. Folds happen at the same (VM, time) points for every
		// shard and worker count — barriers and departures, dispatched at
		// coordinator times — so the served latencies are
		// sharding-invariant too.
		d.srv.Advance(s.hosts[slot].Now(), att-d.prevAttained, &s.lat[d.class])
	}
	s.ivDemanded += dem - d.prevDemanded
	s.ivAttained += att - d.prevAttained
	d.prevDemanded, d.prevAttained = dem, att
	return dem, att
}

func (s *shard) execRemoveVM(c *command) {
	if err := s.sync(c.slot, c.at); err != nil {
		s.fail(err)
		return
	}
	d := c.d
	if err := s.detach(c.slot, d, "depart"); err != nil {
		s.fail(err)
		return
	}
	dem, att := s.fold(c.slot, d)
	c.out.DemandedWork = dem.Units()
	c.out.AttainedWork = att.Units()
	c.out.SLA = slaOf(att, dem)
	s.takeServing(d, c.out, false)
	s.takeLedger(c.slot, d, c.out)
	s.f.putDataVM(d)
}

// takeLedger closes the VM's ledger residency at the host clock, checks
// the conservation invariant (every residency microsecond in exactly one
// bucket), and moves the buckets into the outcome slot.
func (s *shard) takeLedger(slot int32, d *dataVM, out *VMOutcome) {
	if s.f.rec == nil {
		return
	}
	d.led.Detach(s.hosts[slot].Now())
	if got := d.led.Sum(); got != d.led.SpanUs {
		s.fail(fmt.Errorf("fleet: VM %s attribution ledger mismatch: %d us attributed, %d us resident",
			d.name, got, d.led.SpanUs))
		return
	}
	out.LifetimeUs = d.led.SpanUs
	out.RunUs = d.led.RunUs
	out.DownclockedUs = d.led.DownclockedUs
	out.CappedUs = d.led.CappedUs
	out.ContendedUs = d.led.ContendedUs
	out.MigratingUs = d.led.MigratingUs
	out.IdleUs = d.led.IdleUs
}

// takeServing moves a VM's serving tallies into its outcome slot and
// the shard counters. A departing VM's unserved requests are abandoned
// (its clients leave with it); a VM recorded live at the horizon keeps
// them in flight.
func (s *shard) takeServing(d *dataVM, out *VMOutcome, live bool) {
	if d.srv == nil {
		return
	}
	off, comp := d.srv.Offered(), d.srv.Completed()
	ab, ret := d.srv.Abandoned(), d.srv.Retried()
	out.ReqOffered = off
	out.ReqCompleted = comp
	if comp > 0 {
		out.ReqMeanMs = float64(d.srv.SumLatencyUs()) / float64(comp) / 1e3
		out.ReqMaxMs = float64(d.srv.MaxLatencyUs()) / 1e3
	}
	s.servOffered += off
	s.servCompleted += comp
	s.servAbandoned += ab
	s.servRetried += ret
	if live {
		s.servInFlight += off - comp - ab - ret
	} else {
		s.servAbandoned += off - comp - ab - ret
	}
}

func (s *shard) execMigrateOut(c *command) {
	if s.err != nil {
		c.ch <- nil // keep the destination shard from blocking forever
		return
	}
	if err := s.sync(c.slot, c.at); err != nil {
		s.fail(err)
		c.ch <- nil
		return
	}
	d := c.d
	if err := s.detach(c.slot, d, "migrate"); err != nil {
		s.fail(err)
		c.ch <- nil
		return
	}
	if s.f.rec != nil {
		// Close the source residency segment at the source clock; the
		// destination reopens it at its own (identically quantum-aligned)
		// clock, so segments concatenate without gap or overlap.
		d.led.Detach(s.hosts[c.slot].Now())
	}
	d.guest = nil
	c.ch <- d
}

func (s *shard) execMigrateIn(c *command) {
	if s.err != nil {
		return // the source's send is buffered; no drain needed
	}
	var d *dataVM
	select {
	case d = <-c.ch:
	default:
		// The source shard has not executed its MigrateOut yet. Release
		// the gate slot while blocked so the source can run: this is the
		// one place a worker waits on another worker.
		s.f.gate.Release()
		select {
		case d = <-c.ch:
		case <-s.f.abort:
		}
		s.f.gate.Acquire()
	}
	if d == nil {
		s.poison(fmt.Errorf("fleet: migration into shard %d poisoned by peer failure", s.id))
		return
	}
	if err := s.sync(c.slot, c.at); err != nil {
		s.fail(err)
		return
	}
	guest, err := vm.New(s.nextID[c.slot], vm.Config{Name: d.name, Credit: d.credit})
	if err != nil {
		s.fail(fmt.Errorf("fleet: migrate %s: %w", d.name, err))
		return
	}
	s.nextID[c.slot]++
	guest.SetWorkload(d.wl)
	if err := s.hosts[c.slot].AddVM(guest); err != nil {
		s.fail(fmt.Errorf("fleet: migrate %s to machine %d: %w", d.name, s.globalIndex(c.slot), err))
		return
	}
	d.guest = guest
	s.resident[c.slot] = append(s.resident[c.slot], d)
	if s.f.rec != nil {
		d.led.Migrating = false
		s.observe(c.slot, d)
	}
}

func (s *shard) execRecordLive(c *command) {
	d := c.d
	d.wl.Tick(s.hosts[c.slot].Now())
	dem, att := d.demanded(), d.wl.CompletedWork()
	c.out.DemandedWork = dem.Units()
	c.out.AttainedWork = att.Units()
	c.out.SLA = slaOf(att, dem)
	// The final barrier (reportBarrier at the horizon, which precedes
	// every cmdRecordLive) already advanced the server to the horizon,
	// so the counters below are final.
	s.takeServing(d, c.out, true)
	s.takeLedger(c.slot, d, c.out)
}

// execBarrier catches every powered-on machine of the shard up to t,
// rolls its energy delta and its residents' work deltas into the shard
// partials (exact integers: the machine -> shard reduction), and
// occasionally audits the shard's internal consistency on its private
// random stream.
func (s *shard) execBarrier(t sim.Time) {
	for slot := range s.hosts {
		if !s.on[slot] {
			continue
		}
		h := s.hosts[slot]
		if h.Now() < t {
			if err := h.RunUntil(t); err != nil {
				s.fail(err)
				return
			}
		}
		e := h.Energy().Total()
		s.ivEnergy = s.ivEnergy.Add(e.Sub(s.prevEnergy[slot]))
		s.prevEnergy[slot] = e
		for _, d := range s.resident[slot] {
			s.fold(int32(slot), d)
		}
		if s.f.rec != nil {
			s.obsBarrier(int32(slot), t)
		}
	}
	if s.rng.Intn(64) == 0 {
		s.audit()
	}
}

// obsBarrier emits one powered-on machine's barrier telemetry: the
// engine's boundary-source counter deltas (in the fixed
// obs.BoundarySourceNames order, so the lane's sequence is
// sharding-invariant) and each resident serving VM's queue depth.
// Residents were attached in coordinator dispatch order and detach by
// swap-removal — both independent of sharding — so the iteration order
// is too.
func (s *shard) obsBarrier(slot int32, t sim.Time) {
	mo := s.machineObs(slot)
	bs := s.hosts[slot].Engine().BoundarySources()
	for bi, name := range obs.BoundarySourceNames {
		if d := bs[name] - s.prevBounds[slot][bi]; d != 0 {
			mo.Emit(t, obs.KindBoundary, name, d, 0)
			s.prevBounds[slot][bi] += d
		}
	}
	for _, d := range s.resident[slot] {
		if d.srv != nil {
			mo.Emit(t, obs.KindQueueDepth, d.name, int64(d.srv.Queued()), d.srv.Completed())
		}
	}
}

// audit spot-checks shard invariants: powered-off machines host
// nothing, powered-on machines have a constructed host. Sampled (1/64
// of barriers) so million-machine shards pay nothing measurable.
func (s *shard) audit() {
	for slot := range s.hosts {
		if !s.on[slot] && len(s.resident[slot]) > 0 {
			s.fail(fmt.Errorf("fleet: shard %d: machine %d is off with %d resident VMs",
				s.id, s.globalIndex(int32(slot)), len(s.resident[slot])))
			return
		}
		if s.on[slot] && s.hosts[slot] == nil {
			s.fail(fmt.Errorf("fleet: shard %d: machine %d is on without a host",
				s.id, s.globalIndex(int32(slot))))
			return
		}
	}
}
