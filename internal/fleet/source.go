package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pasched/internal/sim"
)

// TraceSource is a pull-based VM lifecycle trace: the class catalogue
// and horizon are known up front, the events stream one at a time in
// the canonical (Arrive, Name) order. It is how the fleet consumes
// traces too large to materialize — a 10M-arrival run holds one event,
// not ten million.
//
// Three implementations exist: Trace.Source (the materialized trace as
// the trivial adapter), GenerateStream (the synthetic generator
// emitting lazily), and ParseTraceStream (streaming CSV ingestion).
//
// Contract: Next returns events strictly increasing in (Arrive, Name)
// and ok=false at end of stream; after ok=false the caller must check
// Err for a truncated or malformed stream. The fleet validates each
// event as it is pulled (known class, arrival inside the horizon,
// positive lifetime, activity in [0,1], order) — what it cannot check
// in O(1) memory is global name uniqueness, so streamed sources only
// guarantee that no two *concurrently live* VMs share a name (the
// fleet rejects the collision); materialize and Validate when the full
// guarantee matters.
type TraceSource interface {
	// Classes returns the class catalogue. Callers must treat the map
	// as read-only.
	Classes() map[string]VMClass
	// Horizon returns the nominal end of the trace: events arrive
	// strictly before it.
	Horizon() sim.Time
	// Next returns the next event in (Arrive, Name) order; ok=false
	// at end of stream.
	Next() (ev VMEvent, ok bool)
	// Err returns the error that ended the stream early, nil after a
	// clean end. Valid once Next has returned ok=false.
	Err() error
}

// traceSource adapts a materialized Trace to the streaming interface.
type traceSource struct {
	t *Trace
	i int
}

// Source returns the trace as a TraceSource, the trivial adapter: the
// events are already materialized and sorted, so the source just walks
// them.
func (t *Trace) Source() TraceSource { return &traceSource{t: t} }

func (s *traceSource) Classes() map[string]VMClass { return s.t.Classes }
func (s *traceSource) Horizon() sim.Time           { return s.t.Horizon }
func (s *traceSource) Err() error                  { return nil }

func (s *traceSource) Next() (VMEvent, bool) {
	if s.i >= len(s.t.Events) {
		return VMEvent{}, false
	}
	ev := s.t.Events[s.i]
	s.i++
	return ev, true
}

// Drain materializes a source into a Trace, the inverse of
// Trace.Source. The result is validated in full — this is the
// convenience path for small traces and tests; at streaming scale,
// feed the source to NewStream instead.
func Drain(src TraceSource) (*Trace, error) {
	t := &Trace{Classes: make(map[string]VMClass, len(src.Classes())), Horizon: src.Horizon()}
	for name, c := range src.Classes() {
		t.Classes[name] = c
	}
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		t.Events = append(t.Events, ev)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// csvSource streams the ParseTrace CSV format. The prologue — the
// horizon record and every class record — must precede the first vm
// record (WriteCSV and WriteCSVStream emit that layout), because the
// stream cannot be buffered to resolve forward references; vm records
// must already be sorted by (arrive, name), since a streaming reader
// cannot sort. ParseTrace's per-field validation is shared.
type csvSource struct {
	sc      *bufio.Scanner
	classes map[string]VMClass
	horizon sim.Time
	line    int
	err     error
	done    bool
	// pending holds the first vm record's fields, already scanned by
	// the prologue loop in ParseTraceStream.
	pending []string

	prevArrive sim.Time
	prevName   string
	first      bool
}

// ParseTraceStream opens a streaming reader over the CSV trace format
// ParseTrace reads. It consumes the prologue (horizon and class
// records) immediately and returns a TraceSource streaming the vm
// records one at a time, so a multi-gigabyte trace never materializes.
//
// Unlike ParseTrace, the streaming reader requires the horizon and
// every class record before the first vm record, and requires the vm
// records sorted by (arrive, name); global name uniqueness is only
// checked for adjacent records (the fleet additionally rejects any two
// concurrently live VMs sharing a name).
func ParseTraceStream(r io.Reader) (TraceSource, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	s := &csvSource{sc: sc, classes: make(map[string]VMClass), first: true}
	// Consume the prologue: everything up to (not including) the first
	// vm record.
	for {
		parts, ok := s.scanRecord()
		if !ok {
			if s.err != nil {
				return nil, s.err
			}
			return nil, fmt.Errorf("fleet: trace without VM events")
		}
		if parts[0] == "vm" {
			if s.horizon <= 0 {
				return nil, fmt.Errorf("fleet: trace line %d: vm record before the horizon record (streaming traces need the prologue first)", s.line)
			}
			s.pending = parts
			break
		}
		if err := s.prologueRecord(parts); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *csvSource) prologueRecord(parts []string) error {
	switch parts[0] {
	case "horizon":
		if len(parts) != 2 {
			return fmt.Errorf("fleet: trace line %d: want 'horizon,seconds', got %q", s.line, strings.Join(parts, ","))
		}
		secs, err := parseSeconds(parts[1])
		if err != nil {
			return fmt.Errorf("fleet: trace line %d: %w", s.line, err)
		}
		if s.horizon != 0 {
			return fmt.Errorf("fleet: trace line %d: duplicate horizon", s.line)
		}
		s.horizon = sim.FromSeconds(secs)
		if s.horizon <= 0 {
			return fmt.Errorf("fleet: trace line %d: horizon %v not positive", s.line, s.horizon)
		}
	case "class":
		if len(parts) != 4 {
			return fmt.Errorf("fleet: trace line %d: want 'class,name,credit_pct,memory_mb', got %q", s.line, strings.Join(parts, ","))
		}
		credit, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("fleet: trace line %d: %w", s.line, err)
		}
		mem, err := strconv.Atoi(parts[3])
		if err != nil {
			return fmt.Errorf("fleet: trace line %d: %w", s.line, err)
		}
		c := VMClass{Name: parts[1], CreditPct: credit, MemoryMB: mem}
		if err := c.Validate(); err != nil {
			return fmt.Errorf("fleet: trace line %d: %w", s.line, err)
		}
		if _, dup := s.classes[c.Name]; dup {
			return fmt.Errorf("fleet: trace line %d: duplicate class %q", s.line, c.Name)
		}
		s.classes[c.Name] = c
	default:
		return fmt.Errorf("fleet: trace line %d: unknown record %q", s.line, parts[0])
	}
	return nil
}

// scanRecord returns the next non-comment record's trimmed fields.
func (s *csvSource) scanRecord() ([]string, bool) {
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts, true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("fleet: read trace: %w", err)
	}
	return nil, false
}

func (s *csvSource) Classes() map[string]VMClass { return s.classes }
func (s *csvSource) Horizon() sim.Time           { return s.horizon }
func (s *csvSource) Err() error                  { return s.err }

func (s *csvSource) Next() (VMEvent, bool) {
	if s.done || s.err != nil {
		return VMEvent{}, false
	}
	parts := s.pending
	s.pending = nil
	if parts == nil {
		var ok bool
		parts, ok = s.scanRecord()
		if !ok {
			s.done = true
			return VMEvent{}, false
		}
	}
	ev, err := s.vmRecord(parts)
	if err != nil {
		s.err = err
		s.done = true
		return VMEvent{}, false
	}
	return ev, true
}

func (s *csvSource) vmRecord(parts []string) (VMEvent, error) {
	if parts[0] != "vm" {
		return VMEvent{}, fmt.Errorf("fleet: trace line %d: %s record after the first vm record (streaming traces need the prologue first)", s.line, parts[0])
	}
	if len(parts) != 6 {
		return VMEvent{}, fmt.Errorf("fleet: trace line %d: want 'vm,name,arrive_s,lifetime_s,class,activity', got %q", s.line, strings.Join(parts, ","))
	}
	arrive, err := parseSeconds(parts[2])
	if err != nil {
		return VMEvent{}, fmt.Errorf("fleet: trace line %d: %w", s.line, err)
	}
	lifetime, err := parseSeconds(parts[3])
	if err != nil {
		return VMEvent{}, fmt.Errorf("fleet: trace line %d: %w", s.line, err)
	}
	activity, err := strconv.ParseFloat(parts[5], 64)
	if err != nil {
		return VMEvent{}, fmt.Errorf("fleet: trace line %d: %w", s.line, err)
	}
	ev := VMEvent{
		Name:     parts[1],
		Class:    parts[4],
		Arrive:   sim.FromSeconds(arrive),
		Lifetime: sim.FromSeconds(lifetime),
		Activity: activity,
	}
	if !s.first {
		if ev.Arrive < s.prevArrive || (ev.Arrive == s.prevArrive && ev.Name < s.prevName) {
			return VMEvent{}, fmt.Errorf("fleet: trace line %d: vm records not sorted by (arrive, name)", s.line)
		}
		if ev.Arrive == s.prevArrive && ev.Name == s.prevName {
			return VMEvent{}, fmt.Errorf("fleet: trace line %d: duplicate VM name %q", s.line, ev.Name)
		}
	}
	s.first = false
	s.prevArrive, s.prevName = ev.Arrive, ev.Name
	return ev, nil
}

// WriteCSVStream writes a source's trace in the format ParseTrace and
// ParseTraceStream read, pulling events one at a time — the streaming
// counterpart of Trace.WriteCSV, which delegates here. The output is
// byte-identical whether the trace was materialized first or streamed
// straight through.
func WriteCSVStream(src TraceSource, w io.Writer) error {
	bw := bufio.NewWriter(w)
	classes := src.Classes()
	fmt.Fprintf(bw, "# fleet VM lifecycle trace: %d classes\n", len(classes))
	fmt.Fprintf(bw, "horizon,%s\n", formatSeconds(src.Horizon()))
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := classes[name]
		fmt.Fprintf(bw, "class,%s,%s,%d\n", c.Name,
			strconv.FormatFloat(c.CreditPct, 'g', -1, 64), c.MemoryMB)
	}
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		fmt.Fprintf(bw, "vm,%s,%s,%s,%s,%s\n", ev.Name,
			formatSeconds(ev.Arrive), formatSeconds(ev.Lifetime), ev.Class,
			strconv.FormatFloat(ev.Activity, 'g', -1, 64))
	}
	if err := src.Err(); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fleet: write trace: %w", err)
	}
	return nil
}
