package fleet

import (
	"bytes"
	"strings"
	"testing"

	"pasched/internal/obs"
	"pasched/internal/sim"
)

// TestFleetPerfettoTrace runs the churn scenario with a streaming
// Perfetto sink and checks the produced document is a well-formed
// trace: valid JSON, legal phases, non-overlapping slices per track,
// monotone counters — and that the run actually produced per-VM state
// slices, counters, and instants (the trace is not vacuously valid).
func TestFleetPerfettoTrace(t *testing.T) {
	seed := uint64(7)
	tr := churnTrace(t, seed)
	var buf bytes.Buffer
	cfg := churnConfig(2, 2, seed)
	cfg.Obs = ObsConfig{Enabled: true, Sink: obs.NewPerfettoWriter(&buf)}
	rep := runFleet(t, cfg, tr, 300*sim.Second)

	st, err := obs.ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("fleet-produced trace rejected: %v", err)
	}
	if st.Slices == 0 || st.Counters == 0 || st.Instants == 0 || st.Tracks == 0 {
		t.Fatalf("vacuous trace: %+v", st)
	}
	if st.EndUs != int64(300*sim.Second) {
		t.Errorf("trace ends at %d us, want %d", st.EndUs, int64(300*sim.Second))
	}
	if rep.Summary.ObsEvents == 0 {
		t.Error("summary reports no recorder events despite an enabled sink")
	}
	// The migration churn must show up as named migration instants.
	if !strings.Contains(buf.String(), `"mig-start`) {
		t.Error("no migration instants in the trace despite consolidation churn")
	}
}
