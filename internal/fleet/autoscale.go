package fleet

import (
	"fmt"
	"math"
	"strconv"

	"pasched/internal/autoscale"
	"pasched/internal/obs"
	"pasched/internal/sim"
	"pasched/internal/workload"
)

// This file is the fleet side of the elastic loop: at every reporting
// barrier the coordinator observes each live VM (signal build), hands
// the slice to the autoscale controller, and applies the returned
// actions as ordinary data-plane commands at the barrier instant.
//
// Determinism: signals are built from f.order — coordinator insertion
// order, compacted at barriers, identical for every shard and worker
// count — and every read happens while all shards are parked at the
// barrier, strictly before the first action dispatch wakes them. The
// applied actions are themselves (time, seq)-ordered commands, so an
// autoscaled report stays bit-exact across shardings.

// autoscaleStep runs one control-loop iteration at barrier time t.
// ivP50Us/ivP99Us are the interval latency quantiles stashed before the
// interval histogram reset; ivLen is the interval length.
func (f *Fleet) autoscaleStep(t sim.Time, ivP50Us, ivP99Us int64, ivLen sim.Time) error {
	sigs := f.autoSigs[:0]
	for _, p := range f.order {
		if p.gone || p.mig != nil || p.d == nil || p.d.srv == nil {
			// Migrating VMs are skipped for the interval: their booking is
			// split across two machines and their ledger is mid-hand-off.
			continue
		}
		d := p.d
		s := autoscale.Signals{
			Name:             p.req.Name,
			Machine:          p.machine,
			IsReplica:        p.parent != nil,
			CapPct:           p.req.CreditPct,
			BaseCapPct:       p.baseCap,
			HeadroomPct:      f.states[p.machine].FreeCreditPct,
			Queue:            int64(d.srv.Queued()),
			Offered:          d.srv.Offered(),
			Completed:        d.srv.Completed(),
			Abandoned:        d.srv.Abandoned(),
			Retried:          d.srv.Retried(),
			OverheadPermille: d.srv.OverheadPermille(),
			FleetP50Us:       ivP50Us,
			FleetP99Us:       ivP99Us,
			IntervalUs:       int64(ivLen),
		}
		if p.parent == nil {
			s.Replicas = 1 + len(p.reps)
		}
		if f.rec != nil {
			s.CappedUs = d.led.CappedUs
			s.RunUs = d.led.RunUs
			s.IdleUs = d.led.IdleUs
		}
		sigs = append(sigs, s)
	}
	f.autoSigs = sigs[:0]

	// All signal reads are complete; from here on dispatches may wake
	// shard workers.
	for _, a := range f.auto.Step(t, sigs) {
		p, ok := f.vms[a.VM]
		if !ok || p.gone || p.mig != nil {
			f.asRejected++
			continue
		}
		var err error
		switch a.Kind {
		case autoscale.SetCap:
			err = f.applySetCap(t, p, a.CapPct)
		case autoscale.SetOverhead:
			err = f.applySetOverhead(t, p, a.Permille)
		case autoscale.ScaleOut:
			err = f.scaleOut(t, p)
		case autoscale.ScaleIn:
			err = f.scaleIn(t, p)
		default:
			err = fmt.Errorf("fleet: autoscale policy %s emitted unknown action %d",
				f.auto.Policy().Name(), a.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// applySetCap rebooks the VM's credit to want, clamped to the hosting
// machine's free credit, and dispatches the scheduler-side resize.
func (f *Fleet) applySetCap(t sim.Time, p *ctlVM, want float64) error {
	grant := want
	if lim := p.req.CreditPct + f.states[p.machine].FreeCreditPct; grant > lim {
		grant = lim
	}
	if grant < 0 {
		grant = 0
	}
	if grant == p.req.CreditPct {
		f.asRejected++ // headroom clamp left nothing to grant
		return nil
	}
	f.release(p.machine, p.req)
	p.req.CreditPct = grant
	f.reserve(p.machine, p.req)
	f.asResizes++
	if f.cobs != nil {
		f.cobs.Emit(t, obs.KindAutoscale, p.req.Name,
			int64(autoscale.SetCap), int64(math.Round(grant)))
	}
	return f.dispatch(p.machine, command{kind: cmdResize, at: t, d: p.d,
		rz: resizeArgs{op: rzCap, capPct: grant}})
}

// applySetOverhead changes the VM's emulator/IO overhead share.
func (f *Fleet) applySetOverhead(t sim.Time, p *ctlVM, permille int64) error {
	if permille < 0 || permille > 999 {
		return fmt.Errorf("fleet: autoscale policy %s set overhead %d‰ on %s outside [0, 999]",
			f.auto.Policy().Name(), permille, p.req.Name)
	}
	f.asResizes++
	if f.cobs != nil {
		f.cobs.Emit(t, obs.KindAutoscale, p.req.Name,
			int64(autoscale.SetOverhead), permille)
	}
	return f.dispatch(p.machine, command{kind: cmdResize, at: t, d: p.d,
		rz: resizeArgs{op: rzOverhead, permille: permille}})
}

// scaleOut adds one serving replica to p's group: a new VM at the
// parent's contracted credit, placed by the fleet's placement policy,
// serving the parent's arrival stream fast-forwarded to t — and the
// whole group's stream repartitioned modulo the new member count at the
// same barrier instant, so every future arrival lands on exactly one
// member.
func (f *Fleet) scaleOut(t sim.Time, p *ctlVM) error {
	if p.parent != nil {
		f.asRejected++ // replicas do not nest
		return nil
	}
	name := p.req.Name + "+" + strconv.Itoa(p.spawned+1)
	if _, exists := f.vms[name]; exists {
		f.asRejected++ // trace VM squats on the replica name
		return nil
	}
	phases := clipPhases(p.d.phases, t)
	if len(phases) == 0 {
		f.asRejected++ // the parent's demand profile is over
		return nil
	}
	req := Request{
		Name:         name,
		CreditPct:    p.baseCap,
		MemoryMB:     p.req.MemoryMB,
		MeanActivity: p.req.MeanActivity,
	}
	idx, ok := f.place(req)
	if !ok {
		f.asRejected++
		if f.cobs != nil {
			f.cobs.Emit(t, obs.KindReject, name, 0, 0)
		}
		return nil
	}
	if err := f.checkPlacement(idx, req, false); err != nil {
		return err
	}
	if err := f.powerOn(idx); err != nil {
		return err
	}
	newShares := 1 + len(p.reps) + 1

	d := f.getDataVM()
	d.name = name
	d.credit = req.CreditPct
	// The replica's CPU workload draws from its own seed lane — the
	// parent's workload seed XOR-folded with the replica ordinal, which
	// cannot collide with the arrival-index lanes — over the parent's
	// remaining demand profile.
	d.seed = p.d.seed ^ (uint64(p.spawned+1) * 0xda942042e4dd58b5)
	d.deterministic = f.cfg.DeterministicArrivals
	d.phases = phases
	d.class = p.d.class
	// The server replays the parent's full arrival stream — same seed,
	// same phases — fast-forwarded past the history the group already
	// served, admitting only its share of the future indices.
	d.serveSeed = p.d.serveSeed
	d.servePhases = p.d.phases
	d.share = int32(newShares - 1)
	d.shares = int32(newShares)
	d.ff = true
	if err := f.dispatch(idx, command{kind: cmdAddVM, at: t, d: d}); err != nil {
		return err
	}
	f.reserve(idx, req)
	f.vmCount[idx]++

	q := f.getCtlVM()
	q.req, q.class, q.machine, q.arrive, q.d = req, p.class, idx, t, d
	q.baseCap = req.CreditPct
	q.parent = p
	f.vms[name] = q
	f.order = append(f.order, q)
	p.reps = append(p.reps, q)
	p.spawned++
	f.asOuts++
	if f.cobs != nil {
		f.cobs.Emit(t, obs.KindAutoscale, p.req.Name,
			int64(autoscale.ScaleOut), int64(p.spawned))
		f.cobs.Emit(t, obs.KindPlace, name, int64(idx), 0)
	}
	// Renumber the pre-existing members against the new modulus; the new
	// replica was constructed with its final share.
	return f.renumberShares(t, p, newShares, 1)
}

// scaleIn retires p's newest replica and repartitions the group's
// stream over the survivors.
func (f *Fleet) scaleIn(t sim.Time, p *ctlVM) error {
	n := len(p.reps)
	if p.parent != nil || n == 0 {
		f.asRejected++
		return nil
	}
	q := p.reps[n-1]
	p.reps[n-1] = nil
	p.reps = p.reps[:n-1]
	if err := f.removeVM(q); err != nil {
		return err
	}
	f.asIns++
	if f.cobs != nil {
		f.cobs.Emit(t, obs.KindAutoscale, p.req.Name,
			int64(autoscale.ScaleIn), int64(n))
	}
	return f.renumberShares(t, p, n, 0)
}

// renumberShares re-keys the group's arrival-stream partition: the
// parent is share 0, replicas 1..shares-1 in p.reps order, skipping the
// trailing skip members (freshly added ones already built with their
// final share).
func (f *Fleet) renumberShares(t sim.Time, p *ctlVM, shares, skip int) error {
	if err := f.dispatch(p.machine, command{kind: cmdResize, at: t, d: p.d,
		rz: resizeArgs{op: rzShare, share: 0, shares: int32(shares)}}); err != nil {
		return err
	}
	for i := 0; i < len(p.reps)-skip; i++ {
		q := p.reps[i]
		if err := f.dispatch(q.machine, command{kind: cmdResize, at: t, d: q.d,
			rz: resizeArgs{op: rzShare, share: int32(i + 1), shares: int32(shares)}}); err != nil {
			return err
		}
	}
	return nil
}

// clipPhases returns the part of a demand profile from t on: earlier
// phases dropped, a straddling phase truncated to start at t. The
// result aliases nothing (phases may be shared across VMs).
func clipPhases(phases []workload.Phase, t sim.Time) []workload.Phase {
	var out []workload.Phase
	for _, ph := range phases {
		if ph.End <= t {
			continue
		}
		if ph.Start < t {
			ph.Start = t
		}
		out = append(out, ph)
	}
	return out
}
