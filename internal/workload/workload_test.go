package workload

import (
	"math"
	"testing"
	"testing/quick"

	"pasched/internal/sim"
)

func TestIdle(t *testing.T) {
	var w Idle
	w.Tick(sim.Second)
	if w.Pending() != 0 {
		t.Error("Idle has pending work")
	}
	if w.Consume(100, sim.Second) != 0 {
		t.Error("Idle consumed work")
	}
}

func TestHogAlwaysRunnable(t *testing.T) {
	var h Hog
	h.Tick(0)
	if h.Pending() <= 0 {
		t.Error("Hog not runnable")
	}
	if got := h.Consume(1000, 0); got != 1000 {
		t.Errorf("Consume = %v, want 1000", got)
	}
	if h.Consumed() != 1000 {
		t.Errorf("Consumed = %v, want 1000", h.Consumed())
	}
	if h.Consume(-5, 0) != 0 {
		t.Error("Hog consumed negative work")
	}
}

func TestPiAppLifecycle(t *testing.T) {
	p, err := NewPiApp(1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Done() {
		t.Fatal("new PiApp already done")
	}
	if _, ok := p.CompletionTime(); ok {
		t.Fatal("CompletionTime set before completion")
	}
	if got := p.Consume(600*sim.WorkUnit, sim.Second); got != 600*sim.WorkUnit {
		t.Errorf("Consume = %v, want 600 units", got)
	}
	if p.Progress() != 0.6 {
		t.Errorf("Progress = %v, want 0.6", p.Progress())
	}
	// Consuming more than remains returns only the remainder.
	if got := p.Consume(600*sim.WorkUnit, 2*sim.Second); got != 400*sim.WorkUnit {
		t.Errorf("Consume = %v, want 400 units", got)
	}
	if !p.Done() {
		t.Error("PiApp not done after consuming all work")
	}
	at, ok := p.CompletionTime()
	if !ok || at != 2*sim.Second {
		t.Errorf("CompletionTime = %v, %v; want 2s, true", at, ok)
	}
	// Finished apps consume nothing.
	if p.Consume(10*sim.WorkUnit, 3*sim.Second) != 0 {
		t.Error("finished PiApp consumed work")
	}
}

func TestNewPiAppRejectsNonPositive(t *testing.T) {
	for _, w := range []float64{0, -1} {
		if _, err := NewPiApp(w); err == nil {
			t.Errorf("NewPiApp(%v) succeeded", w)
		}
	}
}

func TestPiWorkFor(t *testing.T) {
	// 1559 s at 20% of 2667e6 units/s.
	got := PiWorkFor(2667e6, 20, 1559)
	want := 2667e6 * 0.2 * 1559
	if math.Abs(got-want) > 1 {
		t.Errorf("PiWorkFor = %v, want %v", got, want)
	}
}

func TestWebAppValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  WebAppConfig
	}{
		{"negative cost", WebAppConfig{RequestCost: -1}},
		{"unsorted phases", WebAppConfig{Phases: []Phase{
			{Start: 10 * sim.Second, End: 20 * sim.Second, Rate: 1},
			{Start: 0, End: 5 * sim.Second, Rate: 1},
		}}},
		{"inverted phase", WebAppConfig{Phases: []Phase{
			{Start: 10 * sim.Second, End: 5 * sim.Second, Rate: 1},
		}}},
		{"negative rate", WebAppConfig{Phases: []Phase{
			{Start: 0, End: 5 * sim.Second, Rate: -1},
		}}},
		{"overlapping", WebAppConfig{Phases: []Phase{
			{Start: 0, End: 10 * sim.Second, Rate: 1},
			{Start: 5 * sim.Second, End: 15 * sim.Second, Rate: 1},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewWebApp(tt.cfg); err == nil {
				t.Error("NewWebApp accepted invalid config")
			}
		})
	}
}

func TestWebAppDeterministicArrivals(t *testing.T) {
	w, err := NewWebApp(WebAppConfig{
		RequestCost:   100,
		Deterministic: true,
		Phases:        ThreePhase(0, 10*sim.Second, 5), // 5 req/s for 10 s
		MaxBacklog:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(10 * sim.Second)
	// 5 req/s for 10 s = 50 arrivals (first at t=0.2s, last at t=10 excluded).
	if got := w.Offered(); got < 49 || got > 50 {
		t.Errorf("Offered = %d, want ~50", got)
	}
	if w.Pending() != sim.Work(w.Offered())*100*sim.WorkUnit {
		t.Errorf("Pending = %v, want %v", w.Pending(), sim.Work(w.Offered())*100*sim.WorkUnit)
	}
}

func TestWebAppInactiveOutsidePhases(t *testing.T) {
	w, err := NewWebApp(WebAppConfig{
		RequestCost:   100,
		Deterministic: true,
		Phases:        ThreePhase(10*sim.Second, 20*sim.Second, 10),
		MaxBacklog:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(10 * sim.Second)
	if w.Offered() != 0 {
		t.Errorf("arrivals before phase start: %d", w.Offered())
	}
	w.Tick(30 * sim.Second)
	afterPhase := w.Offered()
	if afterPhase == 0 {
		t.Fatal("no arrivals during active phase")
	}
	w.Tick(60 * sim.Second)
	if w.Offered() != afterPhase {
		t.Errorf("arrivals after phase end: %d -> %d", afterPhase, w.Offered())
	}
}

func TestWebAppPoissonMeanRate(t *testing.T) {
	const rate = 50.0
	w, err := NewWebApp(WebAppConfig{
		RequestCost: 100,
		Phases:      ThreePhase(0, 200*sim.Second, rate),
		MaxBacklog:  -1,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Advance in small steps, as the host loop does.
	for now := sim.Time(0); now <= 200*sim.Second; now += 10 * sim.Millisecond {
		w.Tick(now)
	}
	got := float64(w.Offered()) / 200
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("mean arrival rate = %v, want ~%v", got, rate)
	}
}

func TestWebAppBacklogBound(t *testing.T) {
	w, err := NewWebApp(WebAppConfig{
		RequestCost:   100,
		Deterministic: true,
		Phases:        ThreePhase(0, 10*sim.Second, 100),
		MaxBacklog:    500, // 5 requests
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(10 * sim.Second)
	if w.Pending() > 500*sim.WorkUnit {
		t.Errorf("Pending = %v exceeds backlog bound of 500 units", w.Pending())
	}
	if w.Dropped() == 0 {
		t.Error("no drops despite overload and small backlog")
	}
}

func TestWebAppConsume(t *testing.T) {
	w, err := NewWebApp(WebAppConfig{
		RequestCost:   100,
		Deterministic: true,
		Phases:        ThreePhase(0, sim.Second, 10),
		MaxBacklog:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(sim.Second)
	pend := w.Pending()
	if pend == 0 {
		t.Fatal("no pending work")
	}
	got := w.Consume(pend/2, sim.Second)
	if got != pend/2 {
		t.Errorf("Consume = %v, want %v", got, pend/2)
	}
	if w.CompletedWork() != pend/2 {
		t.Errorf("CompletedWork = %v, want %v", w.CompletedWork(), pend/2)
	}
	// Draining more than pending returns only what is queued.
	got = w.Consume(pend, 2*sim.Second)
	if got != pend/2 {
		t.Errorf("Consume = %v, want %v", got, pend/2)
	}
	if w.Pending() != 0 {
		t.Errorf("Pending = %v after drain, want 0", w.Pending())
	}
}

func TestWebAppTickIdempotentBackwards(t *testing.T) {
	w, err := NewWebApp(WebAppConfig{
		Deterministic: true,
		Phases:        ThreePhase(0, 10*sim.Second, 10),
		MaxBacklog:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(5 * sim.Second)
	n := w.Offered()
	w.Tick(5 * sim.Second) // same time: no new arrivals
	w.Tick(3 * sim.Second) // going backwards: ignored
	if w.Offered() != n {
		t.Errorf("re-ticking changed arrivals: %d -> %d", n, w.Offered())
	}
}

func TestExactAndThrashingRates(t *testing.T) {
	// Exact load for 20% of the Optiplex: rate*cost = 0.2*2667e6.
	rate := ExactRate(2667e6, 20, DefaultRequestCost)
	wantWork := 2667e6 * 0.2
	if math.Abs(rate*DefaultRequestCost-wantWork) > 1 {
		t.Errorf("ExactRate offered work = %v, want %v", rate*DefaultRequestCost, wantWork)
	}
	th := ThrashingRate(2667e6, 20, DefaultRequestCost, 3)
	if math.Abs(th/rate-3) > 1e-9 {
		t.Errorf("ThrashingRate/ExactRate = %v, want 3", th/rate)
	}
	// A factor below 1 is clamped to 1 (thrashing is at least exact).
	if got := ThrashingRate(2667e6, 20, DefaultRequestCost, 0.5); got != rate {
		t.Errorf("ThrashingRate(factor<1) = %v, want %v", got, rate)
	}
}

func TestExactRateDefaultCost(t *testing.T) {
	a := ExactRate(2667e6, 20, 0)
	b := ExactRate(2667e6, 20, DefaultRequestCost)
	if a != b {
		t.Errorf("default cost mismatch: %v vs %v", a, b)
	}
}

func TestQuickWebAppOfferedWorkMatchesRate(t *testing.T) {
	// Property: for deterministic arrivals with any rate and duration, the
	// offered work equals rate*cost*duration within one request.
	f := func(rateRaw, durRaw uint8) bool {
		rate := float64(rateRaw%50) + 1
		dur := sim.Time(durRaw%20+1) * sim.Second
		w, err := NewWebApp(WebAppConfig{
			RequestCost:   1000,
			Deterministic: true,
			Phases:        ThreePhase(0, dur, rate),
			MaxBacklog:    -1,
		})
		if err != nil {
			return false
		}
		w.Tick(dur + sim.Second)
		want := rate * dur.Seconds()
		got := float64(w.Offered())
		return math.Abs(got-want) <= 1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickPiAppConservation(t *testing.T) {
	// Property: total consumed work never exceeds the configured work, and
	// the app is done exactly when the sum reaches the total.
	f := func(chunks []uint16) bool {
		const total = 50000.0
		totalWork := sim.WorkFromUnits(total)
		p, err := NewPiApp(total)
		if err != nil {
			return false
		}
		sum := sim.Work(0)
		for i, c := range chunks {
			sum += p.Consume(sim.Work(c)*sim.WorkUnit, sim.Time(i)*sim.Millisecond)
			if sum > totalWork {
				return false
			}
		}
		return p.Done() == (sum >= totalWork)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
