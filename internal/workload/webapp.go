package workload

import (
	"fmt"

	"pasched/internal/sim"
)

// Phase is one segment of a load profile: between Start and End the
// generator produces requests at Rate requests per second. Outside all
// phases the generator is inactive.
type Phase struct {
	Start sim.Time
	End   sim.Time
	Rate  float64 // requests per simulated second
}

// WebAppConfig configures an open-loop web-load generator.
type WebAppConfig struct {
	// RequestCost is the CPU cost of one request in work units. The
	// default models a dynamic-page request costing 20 ms of CPU at the
	// Optiplex's maximum frequency.
	RequestCost float64
	// Phases is the activity profile. Phases must be non-overlapping and
	// sorted by start time.
	Phases []Phase
	// Deterministic selects fixed inter-arrival times instead of a
	// Poisson process. The paper's stock-ondemand oscillation (Fig. 3)
	// needs the bursty (Poisson) arrivals; the smoothed comparisons work
	// with either.
	Deterministic bool
	// MaxBacklog bounds the pending-work queue, in work units. Arrivals
	// beyond the bound are dropped, modelling connection-queue overflow
	// in the real web stack (httperf keeps offering load regardless).
	// Zero selects the default of 5 seconds of work at rated cost;
	// negative means unbounded.
	MaxBacklog float64
	// Seed seeds the arrival process.
	Seed uint64
}

// DefaultRequestCost is the default per-request CPU cost in work units:
// 20 ms of CPU time on a 2667 MHz processor at full efficiency.
const DefaultRequestCost = 0.020 * 2667e6

// WebApp is an open-loop queued request generator (the httperf + Joomla
// substitute). Arrivals enqueue work; the VM drains the queue when
// scheduled. The offered rate follows the configured phases.
//
// Arrivals come from an ArrivalProcess — a per-phase renewal chain that
// depends only on the configuration and the seed, never on when Tick
// happens to be called — which is what lets the simulation engine batch
// straight through it: NextChange's promise is the exact next arrival.
type WebApp struct {
	cfg        WebAppConfig
	arr        *ArrivalProcess
	lastTick   sim.Time
	queue      sim.Work
	cost       sim.Work // per-request CPU cost, converted once at construction
	offered    int64    // requests offered
	dropped    int64    // requests dropped due to backlog bound
	completed  sim.Work // work served
	maxBacklog sim.Work
}

var _ Workload = (*WebApp)(nil)

// NewWebApp builds a web-load generator. It validates the phase list and
// request cost.
func NewWebApp(cfg WebAppConfig) (*WebApp, error) {
	if cfg.RequestCost == 0 {
		cfg.RequestCost = DefaultRequestCost
	}
	if cfg.RequestCost < 0 {
		return nil, fmt.Errorf("workload: negative request cost %v", cfg.RequestCost)
	}
	arr, err := NewArrivalProcess(cfg.Phases, cfg.Deterministic, cfg.Seed)
	if err != nil {
		return nil, err
	}
	maxBacklog := cfg.MaxBacklog
	switch {
	case maxBacklog == 0:
		maxBacklog = 5 * cfg.RequestCost * 50 // ~5s of work at 50 req/s
	case maxBacklog < 0:
		maxBacklog = 0 // unbounded
	}
	return &WebApp{
		cfg:        cfg,
		arr:        arr,
		cost:       sim.WorkFromUnits(cfg.RequestCost),
		maxBacklog: sim.WorkFromUnits(maxBacklog),
	}, nil
}

// Tick implements Workload: it delivers all arrivals in (lastTick, now].
func (w *WebApp) Tick(now sim.Time) {
	if now <= w.lastTick {
		return
	}
	for {
		at, ok := w.arr.Peek()
		if !ok || at > now {
			break
		}
		w.arrive()
		w.arr.Pop()
	}
	w.lastTick = now
}

func (w *WebApp) arrive() {
	w.offered++
	if w.maxBacklog > 0 && w.queue+w.cost > w.maxBacklog {
		w.dropped++
		return
	}
	w.queue += w.cost
}

// Pending implements Workload.
func (w *WebApp) Pending() sim.Work { return w.queue }

// NextChange implements Forecaster. The renewal chain always holds the
// exact next arrival (or is exhausted), independent of tick granularity,
// so the promise is precise: the queue next changes at that arrival, or
// never. An arrival at or before now is already due but not yet
// delivered, which the engine treats as "cannot batch" and steps through
// the reference path that Ticks it in.
func (w *WebApp) NextChange(sim.Time) sim.Time {
	if at, ok := w.arr.Peek(); ok {
		return at
	}
	return sim.Never
}

// Consume implements Workload.
func (w *WebApp) Consume(max sim.Work, _ sim.Time) sim.Work {
	if max <= 0 || w.queue <= 0 {
		return 0
	}
	used := max
	if used > w.queue {
		used = w.queue
	}
	w.queue -= used
	w.completed += used
	return used
}

// Offered returns the number of requests generated so far.
func (w *WebApp) Offered() int64 { return w.offered }

// Dropped returns the number of requests rejected by the backlog bound.
func (w *WebApp) Dropped() int64 { return w.dropped }

// CompletedWork returns the work served so far.
func (w *WebApp) CompletedWork() sim.Work { return w.completed }

// ExactRate returns the request rate that makes the offered load equal to
// exactly pct percent of a processor with maximum-frequency throughput
// maxThroughput (the paper's "exact load": 100% of the VM capacity, not
// more).
func ExactRate(maxThroughput, pct, requestCost float64) float64 {
	if requestCost <= 0 {
		requestCost = DefaultRequestCost
	}
	return maxThroughput * pct / 100 / requestCost
}

// ThrashingRate returns a request rate that exceeds the VM's capacity by
// factor (>1), the paper's "thrashing load".
func ThrashingRate(maxThroughput, pct, requestCost, factor float64) float64 {
	if factor < 1 {
		factor = 1
	}
	return ExactRate(maxThroughput, pct, requestCost) * factor
}

// ThreePhase builds the paper's inactive-active-inactive profile: the VM is
// active in [start, end) at the given rate, inactive elsewhere.
func ThreePhase(start, end sim.Time, rate float64) []Phase {
	return []Phase{{Start: start, End: end, Rate: rate}}
}
