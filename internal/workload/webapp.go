package workload

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
)

// Phase is one segment of a load profile: between Start and End the
// generator produces requests at Rate requests per second. Outside all
// phases the generator is inactive.
type Phase struct {
	Start sim.Time
	End   sim.Time
	Rate  float64 // requests per simulated second
}

// WebAppConfig configures an open-loop web-load generator.
type WebAppConfig struct {
	// RequestCost is the CPU cost of one request in work units. The
	// default models a dynamic-page request costing 20 ms of CPU at the
	// Optiplex's maximum frequency.
	RequestCost float64
	// Phases is the activity profile. Phases must be non-overlapping and
	// sorted by start time.
	Phases []Phase
	// Deterministic selects fixed inter-arrival times instead of a
	// Poisson process. The paper's stock-ondemand oscillation (Fig. 3)
	// needs the bursty (Poisson) arrivals; the smoothed comparisons work
	// with either.
	Deterministic bool
	// MaxBacklog bounds the pending-work queue, in work units. Arrivals
	// beyond the bound are dropped, modelling connection-queue overflow
	// in the real web stack (httperf keeps offering load regardless).
	// Zero selects the default of 5 seconds of work at rated cost;
	// negative means unbounded.
	MaxBacklog float64
	// Seed seeds the arrival process.
	Seed uint64
}

// DefaultRequestCost is the default per-request CPU cost in work units:
// 20 ms of CPU time on a 2667 MHz processor at full efficiency.
const DefaultRequestCost = 0.020 * 2667e6

// WebApp is an open-loop queued request generator (the httperf + Joomla
// substitute). Arrivals enqueue work; the VM drains the queue when
// scheduled. The offered rate follows the configured phases.
//
// The arrival process is a per-phase renewal chain driven by an explicit
// process cursor: the next arrival is always drawn from the previous
// arrival (or the phase boundary the process last crossed), and a draw
// that lands beyond its own phase's end is dropped at draw time, with
// the process restarting at the boundary under the next phase's rate.
// The chain therefore depends only on the configuration and the seed —
// never on when Tick happens to be called — which is what lets the
// simulation engine batch straight through it: NextChange's promise is
// the exact next arrival.
type WebApp struct {
	cfg        WebAppConfig
	rng        *sim.RNG
	procT      sim.Time // renewal cursor: last arrival or crossed boundary
	nextArr    sim.Time
	haveNext   bool
	exhausted  bool // no positive-rate phase remains past procT
	lastTick   sim.Time
	queue      sim.Work
	cost       sim.Work // per-request CPU cost, converted once at construction
	offered    int64    // requests offered
	dropped    int64    // requests dropped due to backlog bound
	completed  sim.Work // work served
	maxBacklog sim.Work
}

var _ Workload = (*WebApp)(nil)

// NewWebApp builds a web-load generator. It validates the phase list and
// request cost.
func NewWebApp(cfg WebAppConfig) (*WebApp, error) {
	if cfg.RequestCost == 0 {
		cfg.RequestCost = DefaultRequestCost
	}
	if cfg.RequestCost < 0 {
		return nil, fmt.Errorf("workload: negative request cost %v", cfg.RequestCost)
	}
	if !sort.SliceIsSorted(cfg.Phases, func(i, j int) bool {
		return cfg.Phases[i].Start < cfg.Phases[j].Start
	}) {
		return nil, fmt.Errorf("workload: phases not sorted by start time")
	}
	for i, ph := range cfg.Phases {
		if ph.End <= ph.Start {
			return nil, fmt.Errorf("workload: phase %d has End <= Start", i)
		}
		if ph.Rate < 0 {
			return nil, fmt.Errorf("workload: phase %d has negative rate", i)
		}
		if i > 0 && ph.Start < cfg.Phases[i-1].End {
			return nil, fmt.Errorf("workload: phase %d overlaps phase %d", i, i-1)
		}
	}
	maxBacklog := cfg.MaxBacklog
	switch {
	case maxBacklog == 0:
		maxBacklog = 5 * cfg.RequestCost * 50 // ~5s of work at 50 req/s
	case maxBacklog < 0:
		maxBacklog = 0 // unbounded
	}
	w := &WebApp{
		cfg:        cfg,
		rng:        sim.NewRNG(cfg.Seed),
		cost:       sim.WorkFromUnits(cfg.RequestCost),
		maxBacklog: sim.WorkFromUnits(maxBacklog),
	}
	w.advance()
	return w, nil
}

// rateAt returns the offered request rate at time t.
func (w *WebApp) rateAt(t sim.Time) float64 {
	for _, ph := range w.cfg.Phases {
		if t >= ph.Start && t < ph.End {
			return ph.Rate
		}
	}
	return 0
}

// Tick implements Workload: it delivers all arrivals in (lastTick, now].
func (w *WebApp) Tick(now sim.Time) {
	if now <= w.lastTick {
		return
	}
	for w.haveNext && w.nextArr <= now {
		w.arrive()
		w.procT = w.nextArr
		w.haveNext = false
		w.advance()
	}
	w.lastTick = now
}

// advance draws from the renewal chain until an arrival lands inside its
// own phase (or no positive-rate phase remains). Each unsuccessful draw
// crosses a phase end and restarts the chain at that boundary, so the
// loop makes progress through the (finite) phase list.
func (w *WebApp) advance() {
	for !w.haveNext && !w.exhausted {
		rate := w.rateAt(w.procT)
		if rate <= 0 {
			start, ok := w.nextPositiveStart(w.procT)
			if !ok {
				w.exhausted = true
				return
			}
			w.procT = start
			continue
		}
		var gap float64 // seconds
		if w.cfg.Deterministic {
			gap = 1 / rate
		} else {
			gap = w.rng.ExpFloat64() / rate
		}
		cand := w.procT + sim.FromSeconds(gap)
		if cand <= w.procT {
			cand = w.procT + 1 // at least one microsecond apart
		}
		if end := w.phaseEnd(w.procT); cand >= end {
			// The draw crossed its phase end: dropped, chain restarts at
			// the boundary.
			w.procT = end
			continue
		}
		w.nextArr = cand
		w.haveNext = true
	}
}

func (w *WebApp) phaseEnd(t sim.Time) sim.Time {
	for _, ph := range w.cfg.Phases {
		if t >= ph.Start && t < ph.End {
			return ph.End
		}
	}
	return t
}

// nextPositiveStart returns the earliest positive-rate phase start
// strictly after t.
func (w *WebApp) nextPositiveStart(t sim.Time) (sim.Time, bool) {
	best, ok := sim.Never, false
	for _, ph := range w.cfg.Phases {
		if ph.Rate > 0 && ph.Start > t && ph.Start < best {
			best, ok = ph.Start, true
		}
	}
	return best, ok
}

func (w *WebApp) arrive() {
	w.offered++
	if w.maxBacklog > 0 && w.queue+w.cost > w.maxBacklog {
		w.dropped++
		return
	}
	w.queue += w.cost
}

// Pending implements Workload.
func (w *WebApp) Pending() sim.Work { return w.queue }

// NextChange implements Forecaster. The renewal chain always holds the
// exact next arrival (or is exhausted), independent of tick granularity,
// so the promise is precise: the queue next changes at that arrival, or
// never. An arrival at or before now is already due but not yet
// delivered, which the engine treats as "cannot batch" and steps through
// the reference path that Ticks it in.
func (w *WebApp) NextChange(sim.Time) sim.Time {
	if w.haveNext {
		return w.nextArr
	}
	return sim.Never
}

// Consume implements Workload.
func (w *WebApp) Consume(max sim.Work, _ sim.Time) sim.Work {
	if max <= 0 || w.queue <= 0 {
		return 0
	}
	used := max
	if used > w.queue {
		used = w.queue
	}
	w.queue -= used
	w.completed += used
	return used
}

// Offered returns the number of requests generated so far.
func (w *WebApp) Offered() int64 { return w.offered }

// Dropped returns the number of requests rejected by the backlog bound.
func (w *WebApp) Dropped() int64 { return w.dropped }

// CompletedWork returns the work served so far.
func (w *WebApp) CompletedWork() sim.Work { return w.completed }

// ExactRate returns the request rate that makes the offered load equal to
// exactly pct percent of a processor with maximum-frequency throughput
// maxThroughput (the paper's "exact load": 100% of the VM capacity, not
// more).
func ExactRate(maxThroughput, pct, requestCost float64) float64 {
	if requestCost <= 0 {
		requestCost = DefaultRequestCost
	}
	return maxThroughput * pct / 100 / requestCost
}

// ThrashingRate returns a request rate that exceeds the VM's capacity by
// factor (>1), the paper's "thrashing load".
func ThrashingRate(maxThroughput, pct, requestCost, factor float64) float64 {
	if factor < 1 {
		factor = 1
	}
	return ExactRate(maxThroughput, pct, requestCost) * factor
}

// ThreePhase builds the paper's inactive-active-inactive profile: the VM is
// active in [start, end) at the given rate, inactive elsewhere.
func ThreePhase(start, end sim.Time, rate float64) []Phase {
	return []Phase{{Start: start, End: end, Rate: rate}}
}
