package workload

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
)

// Phase is one segment of a load profile: between Start and End the
// generator produces requests at Rate requests per second. Outside all
// phases the generator is inactive.
type Phase struct {
	Start sim.Time
	End   sim.Time
	Rate  float64 // requests per simulated second
}

// WebAppConfig configures an open-loop web-load generator.
type WebAppConfig struct {
	// RequestCost is the CPU cost of one request in work units. The
	// default models a dynamic-page request costing 20 ms of CPU at the
	// Optiplex's maximum frequency.
	RequestCost float64
	// Phases is the activity profile. Phases must be non-overlapping and
	// sorted by start time.
	Phases []Phase
	// Deterministic selects fixed inter-arrival times instead of a
	// Poisson process. The paper's stock-ondemand oscillation (Fig. 3)
	// needs the bursty (Poisson) arrivals; the smoothed comparisons work
	// with either.
	Deterministic bool
	// MaxBacklog bounds the pending-work queue, in work units. Arrivals
	// beyond the bound are dropped, modelling connection-queue overflow
	// in the real web stack (httperf keeps offering load regardless).
	// Zero selects the default of 5 seconds of work at rated cost;
	// negative means unbounded.
	MaxBacklog float64
	// Seed seeds the arrival process.
	Seed uint64
}

// DefaultRequestCost is the default per-request CPU cost in work units:
// 20 ms of CPU time on a 2667 MHz processor at full efficiency.
const DefaultRequestCost = 0.020 * 2667e6

// WebApp is an open-loop queued request generator (the httperf + Joomla
// substitute). Arrivals enqueue work; the VM drains the queue when
// scheduled. The offered rate follows the configured phases.
type WebApp struct {
	cfg        WebAppConfig
	rng        *sim.RNG
	nextArr    sim.Time
	haveNext   bool
	lastTick   sim.Time
	queue      float64
	offered    int64   // requests offered
	dropped    int64   // requests dropped due to backlog bound
	completed  float64 // work units served
	maxBacklog float64
}

var _ Workload = (*WebApp)(nil)

// NewWebApp builds a web-load generator. It validates the phase list and
// request cost.
func NewWebApp(cfg WebAppConfig) (*WebApp, error) {
	if cfg.RequestCost == 0 {
		cfg.RequestCost = DefaultRequestCost
	}
	if cfg.RequestCost < 0 {
		return nil, fmt.Errorf("workload: negative request cost %v", cfg.RequestCost)
	}
	if !sort.SliceIsSorted(cfg.Phases, func(i, j int) bool {
		return cfg.Phases[i].Start < cfg.Phases[j].Start
	}) {
		return nil, fmt.Errorf("workload: phases not sorted by start time")
	}
	for i, ph := range cfg.Phases {
		if ph.End <= ph.Start {
			return nil, fmt.Errorf("workload: phase %d has End <= Start", i)
		}
		if ph.Rate < 0 {
			return nil, fmt.Errorf("workload: phase %d has negative rate", i)
		}
		if i > 0 && ph.Start < cfg.Phases[i-1].End {
			return nil, fmt.Errorf("workload: phase %d overlaps phase %d", i, i-1)
		}
	}
	maxBacklog := cfg.MaxBacklog
	switch {
	case maxBacklog == 0:
		maxBacklog = 5 * cfg.RequestCost * 50 // ~5s of work at 50 req/s
	case maxBacklog < 0:
		maxBacklog = 0 // unbounded
	}
	return &WebApp{
		cfg:        cfg,
		rng:        sim.NewRNG(cfg.Seed),
		maxBacklog: maxBacklog,
	}, nil
}

// rateAt returns the offered request rate at time t.
func (w *WebApp) rateAt(t sim.Time) float64 {
	for _, ph := range w.cfg.Phases {
		if t >= ph.Start && t < ph.End {
			return ph.Rate
		}
	}
	return 0
}

// Tick implements Workload: it generates all arrivals in (lastTick, now].
func (w *WebApp) Tick(now sim.Time) {
	if now <= w.lastTick {
		return
	}
	t := w.lastTick
	for t < now {
		rate := w.rateAt(t)
		if rate <= 0 {
			// Skip forward to the next phase boundary (or now).
			t = w.nextBoundary(t, now)
			w.haveNext = false
			continue
		}
		if !w.haveArrival() {
			w.scheduleArrival(t, rate)
		}
		if w.nextArr > now {
			break
		}
		// The arrival may fall past the current phase's end; if so, drop
		// the tentative arrival and re-evaluate from the boundary.
		if end := w.phaseEnd(t); w.nextArr >= end {
			t = end
			w.haveNext = false
			continue
		}
		w.arrive()
		t = w.nextArr
		w.haveNext = false
	}
	w.lastTick = now
}

func (w *WebApp) haveArrival() bool { return w.haveNext }

func (w *WebApp) scheduleArrival(t sim.Time, rate float64) {
	var gap float64 // seconds
	if w.cfg.Deterministic {
		gap = 1 / rate
	} else {
		gap = w.rng.ExpFloat64() / rate
	}
	w.nextArr = t + sim.FromSeconds(gap)
	if w.nextArr <= t {
		w.nextArr = t + 1 // at least one microsecond apart
	}
	w.haveNext = true
}

func (w *WebApp) phaseEnd(t sim.Time) sim.Time {
	for _, ph := range w.cfg.Phases {
		if t >= ph.Start && t < ph.End {
			return ph.End
		}
	}
	return t
}

func (w *WebApp) nextBoundary(t, limit sim.Time) sim.Time {
	best := limit
	for _, ph := range w.cfg.Phases {
		if ph.Start > t && ph.Start < best {
			best = ph.Start
		}
	}
	return best
}

func (w *WebApp) arrive() {
	w.offered++
	if w.maxBacklog > 0 && w.queue+w.cfg.RequestCost > w.maxBacklog {
		w.dropped++
		return
	}
	w.queue += w.cfg.RequestCost
}

// Pending implements Workload.
func (w *WebApp) Pending() float64 { return w.queue }

// NextChange implements Forecaster. With an arrival already drawn, the
// queue next changes at that arrival (possibly earlier if it falls past
// its phase end and is dropped — stopping early is safe). Without one,
// the next positive-rate phase start bounds the change; a positive-rate
// phase overlapping the un-ticked span (lastTick, now] means arrivals may
// already be due, so no promise is made.
func (w *WebApp) NextChange(now sim.Time) sim.Time {
	if w.haveNext {
		return w.nextArr
	}
	best := sim.Never
	for _, ph := range w.cfg.Phases {
		if ph.Rate <= 0 || ph.End <= w.lastTick {
			continue
		}
		if ph.Start <= now {
			return now
		}
		if ph.Start < best {
			best = ph.Start
		}
	}
	return best
}

// Consume implements Workload.
func (w *WebApp) Consume(max float64, _ sim.Time) float64 {
	if max <= 0 || w.queue <= 0 {
		return 0
	}
	used := max
	if used > w.queue {
		used = w.queue
	}
	w.queue -= used
	w.completed += used
	return used
}

// Offered returns the number of requests generated so far.
func (w *WebApp) Offered() int64 { return w.offered }

// Dropped returns the number of requests rejected by the backlog bound.
func (w *WebApp) Dropped() int64 { return w.dropped }

// CompletedWork returns the work units served so far.
func (w *WebApp) CompletedWork() float64 { return w.completed }

// ExactRate returns the request rate that makes the offered load equal to
// exactly pct percent of a processor with maximum-frequency throughput
// maxThroughput (the paper's "exact load": 100% of the VM capacity, not
// more).
func ExactRate(maxThroughput, pct, requestCost float64) float64 {
	if requestCost <= 0 {
		requestCost = DefaultRequestCost
	}
	return maxThroughput * pct / 100 / requestCost
}

// ThrashingRate returns a request rate that exceeds the VM's capacity by
// factor (>1), the paper's "thrashing load".
func ThrashingRate(maxThroughput, pct, requestCost, factor float64) float64 {
	if factor < 1 {
		factor = 1
	}
	return ExactRate(maxThroughput, pct, requestCost) * factor
}

// ThreePhase builds the paper's inactive-active-inactive profile: the VM is
// active in [start, end) at the given rate, inactive elsewhere.
func ThreePhase(start, end sim.Time, rate float64) []Phase {
	return []Phase{{Start: start, End: end, Rate: rate}}
}
