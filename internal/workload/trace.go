package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"pasched/internal/sim"
)

// TracePoint is one segment of a replayed load trace: from Start onwards
// (until the next point) the workload demands Rate work units per second.
type TracePoint struct {
	Start sim.Time
	Rate  float64
}

// TraceWorkload replays a piecewise-constant demand trace, accumulating
// work continuously at the rate in force. It models production load
// recordings (the consolidation literature's input) without per-request
// granularity.
type TraceWorkload struct {
	points   []TracePoint
	lastTick sim.Time
	queue    sim.Work
	carry    float64 // sub-milli-unit integration residue, in [0, 1)
	maxQueue sim.Work
	served   sim.Work
}

// NewTraceWorkload builds a replayed workload from points sorted by start
// time. maxBacklog bounds the queue in work units (<= 0 means unbounded).
func NewTraceWorkload(points []TracePoint, maxBacklog float64) (*TraceWorkload, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if !sort.SliceIsSorted(points, func(i, j int) bool { return points[i].Start < points[j].Start }) {
		return nil, fmt.Errorf("workload: trace points not sorted by start time")
	}
	for i, p := range points {
		if p.Rate < 0 {
			return nil, fmt.Errorf("workload: trace point %d has negative rate", i)
		}
		if i > 0 && p.Start == points[i-1].Start {
			return nil, fmt.Errorf("workload: duplicate trace start %v", p.Start)
		}
	}
	cp := make([]TracePoint, len(points))
	copy(cp, points)
	return &TraceWorkload{points: cp, maxQueue: sim.WorkFromUnits(maxBacklog)}, nil
}

// maxTraceSeconds bounds the seconds field of a parsed trace line,
// keeping sim.FromSeconds far away from integer overflow on hostile
// input (the parser is an external input surface; see the fuzz tests).
const maxTraceSeconds = 1e9

// ParseTrace reads a trace from r in "seconds,rate" CSV lines (comments
// with '#', blank lines ignored). Rates are in work units per second.
// Seconds must be finite, non-negative and at most 1e9; rates must be
// finite and non-negative.
func ParseTrace(r io.Reader, maxBacklog float64) (*TraceWorkload, error) {
	var points []TracePoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want 'seconds,rate', got %q", line, text)
		}
		secs, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if math.IsNaN(secs) || secs < 0 || secs > maxTraceSeconds {
			return nil, fmt.Errorf("workload: trace line %d: seconds %v outside [0, %g]",
				line, secs, float64(maxTraceSeconds))
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			return nil, fmt.Errorf("workload: trace line %d: rate %v not finite and non-negative",
				line, rate)
		}
		points = append(points, TracePoint{Start: sim.FromSeconds(secs), Rate: rate})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	return NewTraceWorkload(points, maxBacklog)
}

// rateAt returns the demand rate in force at time t.
func (w *TraceWorkload) rateAt(t sim.Time) float64 {
	// Find the last point with Start <= t.
	i := sort.Search(len(w.points), func(i int) bool { return w.points[i].Start > t })
	if i == 0 {
		return 0
	}
	return w.points[i-1].Rate
}

// Tick implements Workload: accumulate demand over (lastTick, now].
func (w *TraceWorkload) Tick(now sim.Time) {
	if now <= w.lastTick {
		return
	}
	t := w.lastTick
	for t < now {
		// Advance segment by segment so rate changes mid-interval are
		// integrated exactly.
		end := now
		i := sort.Search(len(w.points), func(i int) bool { return w.points[i].Start > t })
		if i < len(w.points) && w.points[i].Start < end {
			end = w.points[i].Start
		}
		// Materialize the integer milli-units and carry the sub-unit
		// residue, so accrual never drifts from the integrated demand by
		// more than one milli-unit regardless of tick granularity.
		w.carry += w.rateAt(t) * (end - t).Seconds() * float64(sim.WorkUnit)
		whole := sim.Work(w.carry)
		w.carry -= float64(whole)
		w.queue += whole
		t = end
	}
	if w.maxQueue > 0 && w.queue > w.maxQueue {
		w.queue = w.maxQueue
	}
	w.lastTick = now
}

// Pending implements Workload.
func (w *TraceWorkload) Pending() sim.Work { return w.queue }

// Consume implements Workload.
func (w *TraceWorkload) Consume(max sim.Work, _ sim.Time) sim.Work {
	if max <= 0 || w.queue <= 0 {
		return 0
	}
	used := max
	if used > w.queue {
		used = w.queue
	}
	w.queue -= used
	w.served += used
	return used
}

// Served returns the total work executed.
func (w *TraceWorkload) Served() sim.Work { return w.served }

// NextChange implements Forecaster. The trace accrues work continuously
// while a segment's rate is positive, so only zero-rate stretches are
// forecastable: the next positive-rate segment start. Un-integrated
// positive-rate demand in (lastTick, now] makes the state stale and
// forecloses any promise.
func (w *TraceWorkload) NextChange(now sim.Time) sim.Time {
	t := w.lastTick
	for t < now {
		if w.rateAt(t) > 0 {
			return now
		}
		end := now
		i := sort.Search(len(w.points), func(i int) bool { return w.points[i].Start > t })
		if i < len(w.points) && w.points[i].Start < end {
			end = w.points[i].Start
		}
		t = end
	}
	if w.rateAt(now) > 0 {
		return now
	}
	best := sim.Never
	for _, p := range w.points {
		if p.Start > now && p.Rate > 0 && p.Start < best {
			best = p.Start
		}
	}
	return best
}

// Burst wraps a workload and multiplies its consumption opportunities with
// on/off bursts: during a burst the inner workload is exposed as-is;
// outside bursts the workload appears idle (arrivals still accumulate in
// the inner workload). It injects the kind of on/off load flapping that
// stresses governors.
type Burst struct {
	Inner  Workload
	Period sim.Time
	On     sim.Time
	now    sim.Time
}

// NewBurst wraps inner with an on/off gate: on for `on` out of every
// `period`.
func NewBurst(inner Workload, period, on sim.Time) (*Burst, error) {
	if inner == nil {
		return nil, fmt.Errorf("workload: burst around nil workload")
	}
	if period <= 0 || on <= 0 || on > period {
		return nil, fmt.Errorf("workload: burst needs 0 < on <= period, got on=%v period=%v", on, period)
	}
	return &Burst{Inner: inner, Period: period, On: on}, nil
}

// active reports whether the gate is open at the workload's current time.
func (b *Burst) active() bool {
	return b.now%b.Period < b.On
}

// Tick implements Workload.
func (b *Burst) Tick(now sim.Time) {
	b.now = now
	b.Inner.Tick(now)
}

// Pending implements Workload.
func (b *Burst) Pending() sim.Work {
	if !b.active() {
		return 0
	}
	return b.Inner.Pending()
}

// Consume implements Workload.
func (b *Burst) Consume(max sim.Work, now sim.Time) sim.Work {
	if !b.active() {
		return 0
	}
	return b.Inner.Consume(max, now)
}

// nextFlip returns the first gate transition strictly after t.
func (b *Burst) nextFlip(t sim.Time) sim.Time {
	phase := t % b.Period
	if phase < b.On {
		return t - phase + b.On
	}
	return t - phase + b.Period
}

// NextChange implements Forecaster: the earlier of the inner workload's
// change and the next gate flip. A flip inside the un-ticked span
// (b.now, now] makes the gate state stale and forecloses any promise.
func (b *Burst) NextChange(now sim.Time) sim.Time {
	fc, ok := b.Inner.(Forecaster)
	if !ok {
		return now
	}
	if b.now < now && b.nextFlip(b.now) <= now {
		return now
	}
	next := fc.NextChange(now)
	if flip := b.nextFlip(now); flip < next {
		next = flip
	}
	return next
}
