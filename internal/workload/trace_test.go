package workload

import (
	"math"
	"strings"
	"testing"

	"pasched/internal/sim"
)

func TestNewTraceWorkloadValidation(t *testing.T) {
	tests := []struct {
		name   string
		points []TracePoint
	}{
		{"empty", nil},
		{"unsorted", []TracePoint{{Start: sim.Second, Rate: 1}, {Start: 0, Rate: 1}}},
		{"negative rate", []TracePoint{{Start: 0, Rate: -1}}},
		{"duplicate start", []TracePoint{{Start: 0, Rate: 1}, {Start: 0, Rate: 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewTraceWorkload(tt.points, 0); err == nil {
				t.Error("invalid trace accepted")
			}
		})
	}
}

func TestTraceWorkloadIntegratesExactly(t *testing.T) {
	// 100 units/s for 2 s, then 50 units/s for 2 s: 300 units total.
	w, err := NewTraceWorkload([]TracePoint{
		{Start: 0, Rate: 100},
		{Start: 2 * sim.Second, Rate: 50},
		{Start: 4 * sim.Second, Rate: 0},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Tick across a rate boundary: integration must split the segments.
	w.Tick(3 * sim.Second)
	if got := w.Pending(); got != 250*sim.WorkUnit {
		t.Errorf("Pending after 3s = %v, want 250 units", got)
	}
	w.Tick(10 * sim.Second)
	if got := w.Pending(); got != 300*sim.WorkUnit {
		t.Errorf("Pending after 10s = %v, want 300 units", got)
	}
	if got := w.Consume(1000*sim.WorkUnit, 10*sim.Second); got != 300*sim.WorkUnit {
		t.Errorf("Consume = %v, want 300 units", got)
	}
	if w.Served() != 300*sim.WorkUnit {
		t.Errorf("Served = %v, want 300 units", w.Served())
	}
}

func TestTraceWorkloadBacklogBound(t *testing.T) {
	w, err := NewTraceWorkload([]TracePoint{{Start: 0, Rate: 1000}}, 500)
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(10 * sim.Second)
	if w.Pending() != 500*sim.WorkUnit {
		t.Errorf("Pending = %v, want 500 units (bounded)", w.Pending())
	}
}

func TestTraceWorkloadBeforeFirstPoint(t *testing.T) {
	w, err := NewTraceWorkload([]TracePoint{{Start: 5 * sim.Second, Rate: 100}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(5 * sim.Second)
	if w.Pending() != 0 {
		t.Errorf("Pending before trace start = %v, want 0", w.Pending())
	}
}

func TestParseTrace(t *testing.T) {
	in := `# time_s, rate
0, 100
2.5, 50

5, 0
`
	w, err := ParseTrace(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Tick(10 * sim.Second)
	want := sim.WorkFromUnits(100*2.5 + 50*2.5)
	if got := w.Pending(); got != want {
		t.Errorf("Pending = %v, want %v", got, want)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, in := range []string{
		"nonsense",
		"1",
		"x, 5",
		"1, y",
	} {
		if _, err := ParseTrace(strings.NewReader(in), 0); err == nil {
			t.Errorf("ParseTrace(%q) succeeded", in)
		}
	}
}

func TestBurstGate(t *testing.T) {
	if _, err := NewBurst(nil, sim.Second, sim.Second); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewBurst(&Hog{}, sim.Second, 2*sim.Second); err == nil {
		t.Error("on > period accepted")
	}
	if _, err := NewBurst(&Hog{}, 0, 0); err == nil {
		t.Error("zero period accepted")
	}

	b, err := NewBurst(&Hog{}, 10*sim.Second, 4*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	b.Tick(1 * sim.Second) // within the on-window
	if b.Pending() == 0 {
		t.Error("burst closed during on-window")
	}
	if b.Consume(10, 1*sim.Second) != 10 {
		t.Error("burst refused work during on-window")
	}
	b.Tick(5 * sim.Second) // off-window
	if b.Pending() != 0 {
		t.Error("burst open during off-window")
	}
	if b.Consume(10, 5*sim.Second) != 0 {
		t.Error("burst consumed during off-window")
	}
	b.Tick(11 * sim.Second) // next period's on-window
	if b.Pending() == 0 {
		t.Error("burst closed at next period start")
	}
}

func TestBurstDrivesDutyCycle(t *testing.T) {
	// A bursted hog run against a simple consume loop yields the duty
	// cycle of the gate.
	b, err := NewBurst(&Hog{}, 10*sim.Millisecond, 3*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for i := 0; i < 10000; i++ {
		now := sim.Time(i) * sim.Millisecond
		b.Tick(now)
		if b.Pending() > 0 {
			b.Consume(1, now)
			busy++
		}
	}
	duty := float64(busy) / 10000
	if math.Abs(duty-0.3) > 0.01 {
		t.Errorf("duty cycle = %v, want 0.3", duty)
	}
}
