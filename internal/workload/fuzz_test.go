package workload

import (
	"strings"
	"testing"
)

// FuzzParseTrace hammers the load-trace parser with hostile input: the
// parser must never panic, and every accepted trace must satisfy the
// TraceWorkload invariants (sorted unique starts, finite non-negative
// rates) and survive a replay.
func FuzzParseTrace(f *testing.F) {
	f.Add("0,100\n10,50\n")
	f.Add("# comment\n\n0,1\n")
	f.Add("0,100\r\n10,50\r\n")      // CRLF
	f.Add("10,50\n0,100\n")          // unsorted
	f.Add("0,1\n0,2\n")              // duplicate start
	f.Add("0\n")                     // missing field
	f.Add("a,b\n")                   // not numbers
	f.Add("0,-5\n")                  // negative rate
	f.Add("-1,5\n")                  // negative time
	f.Add("NaN,1\n")                 // NaN seconds
	f.Add("0,NaN\n")                 // NaN rate
	f.Add("0,+Inf\n")                // infinite rate
	f.Add("1e300,1\n")               // seconds overflow
	f.Add("0,1,2\n")                 // too many fields
	f.Add("0 , 100 \n 10 ,50\n")     // stray spaces
	f.Add(strings.Repeat("#x\n", 5)) // comments only

	f.Fuzz(func(t *testing.T, input string) {
		w, err := ParseTrace(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		if len(w.points) == 0 {
			t.Fatal("accepted trace has no points")
		}
		for i, p := range w.points {
			if p.Start < 0 || p.Rate < 0 {
				t.Fatalf("accepted point %d has negative field: %+v", i, p)
			}
			if p.Rate != p.Rate {
				t.Fatalf("accepted point %d has NaN rate", i)
			}
			if i > 0 && p.Start <= w.points[i-1].Start {
				t.Fatalf("accepted points not strictly sorted at %d", i)
			}
		}
		// A parsed trace must be replayable without misbehaving.
		w.Tick(w.points[len(w.points)-1].Start + 1)
		if pending := w.Pending(); pending < 0 || pending != pending {
			t.Fatalf("replay produced invalid pending %v", pending)
		}
	})
}
