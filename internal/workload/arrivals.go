package workload

import (
	"fmt"
	"sort"

	"pasched/internal/sim"
)

// ArrivalProcess is a seeded open-loop request arrival stream over a
// phase profile: within each phase arrivals form a Poisson process at
// the phase's rate (or a fixed-gap stream in deterministic mode), and
// the process is silent outside all phases.
//
// The process is a per-phase renewal chain driven by an explicit
// cursor: the next arrival is always drawn from the previous arrival
// (or the phase boundary the chain last crossed), and a draw that lands
// beyond its own phase's end is dropped at draw time, with the chain
// restarting at the boundary under the next phase's rate. The stream
// therefore depends only on the phases and the seed — never on when or
// how often it is observed — which is what lets the simulation engine
// batch straight through it and keeps every consumer (WebApp's demand
// queue, the fleet's serving-layer client populations) bit-identical
// across execution schedules.
type ArrivalProcess struct {
	phases        []Phase
	deterministic bool
	rng           *sim.RNG
	procT         sim.Time // renewal cursor: last arrival or crossed boundary
	nextArr       sim.Time
	haveNext      bool
	exhausted     bool // no positive-rate phase remains past procT
}

// ValidatePhases checks a phase profile: phases must be sorted by start
// time, non-overlapping, each with End > Start and a non-negative rate.
func ValidatePhases(phases []Phase) error {
	if !sort.SliceIsSorted(phases, func(i, j int) bool {
		return phases[i].Start < phases[j].Start
	}) {
		return fmt.Errorf("workload: phases not sorted by start time")
	}
	for i, ph := range phases {
		if ph.End <= ph.Start {
			return fmt.Errorf("workload: phase %d has End <= Start", i)
		}
		if ph.Rate < 0 {
			return fmt.Errorf("workload: phase %d has negative rate", i)
		}
		if i > 0 && ph.Start < phases[i-1].End {
			return fmt.Errorf("workload: phase %d overlaps phase %d", i, i-1)
		}
	}
	return nil
}

// NewArrivalProcess builds an arrival stream over the phase profile.
// The chain starts at time zero; phases use absolute simulated time.
func NewArrivalProcess(phases []Phase, deterministic bool, seed uint64) (*ArrivalProcess, error) {
	if err := ValidatePhases(phases); err != nil {
		return nil, err
	}
	p := &ArrivalProcess{
		phases:        phases,
		deterministic: deterministic,
		rng:           sim.NewRNG(seed),
	}
	p.advance()
	return p, nil
}

// Peek returns the next arrival time without consuming it. ok is false
// when the stream is exhausted (no positive-rate phase remains).
func (p *ArrivalProcess) Peek() (sim.Time, bool) {
	return p.nextArr, p.haveNext
}

// Pop consumes the pending arrival and advances the chain to the one
// after it. It panics if no arrival is pending.
func (p *ArrivalProcess) Pop() {
	if !p.haveNext {
		panic("workload: ArrivalProcess.Pop without a pending arrival")
	}
	p.procT = p.nextArr
	p.haveNext = false
	p.advance()
}

// rateAt returns the offered request rate at time t.
func (p *ArrivalProcess) rateAt(t sim.Time) float64 {
	for _, ph := range p.phases {
		if t >= ph.Start && t < ph.End {
			return ph.Rate
		}
	}
	return 0
}

// advance draws from the renewal chain until an arrival lands inside its
// own phase (or no positive-rate phase remains). Each unsuccessful draw
// crosses a phase end and restarts the chain at that boundary, so the
// loop makes progress through the (finite) phase list.
func (p *ArrivalProcess) advance() {
	for !p.haveNext && !p.exhausted {
		rate := p.rateAt(p.procT)
		if rate <= 0 {
			start, ok := p.nextPositiveStart(p.procT)
			if !ok {
				p.exhausted = true
				return
			}
			p.procT = start
			continue
		}
		var gap float64 // seconds
		if p.deterministic {
			gap = 1 / rate
		} else {
			gap = p.rng.ExpFloat64() / rate
		}
		cand := p.procT + sim.FromSeconds(gap)
		if cand <= p.procT {
			cand = p.procT + 1 // at least one microsecond apart
		}
		if end := p.phaseEnd(p.procT); cand >= end {
			// The draw crossed its phase end: dropped, chain restarts at
			// the boundary.
			p.procT = end
			continue
		}
		p.nextArr = cand
		p.haveNext = true
	}
}

func (p *ArrivalProcess) phaseEnd(t sim.Time) sim.Time {
	for _, ph := range p.phases {
		if t >= ph.Start && t < ph.End {
			return ph.End
		}
	}
	return t
}

// nextPositiveStart returns the earliest positive-rate phase start
// strictly after t.
func (p *ArrivalProcess) nextPositiveStart(t sim.Time) (sim.Time, bool) {
	best, ok := sim.Never, false
	for _, ph := range p.phases {
		if ph.Rate > 0 && ph.Start > t && ph.Start < best {
			best, ok = ph.Start, true
		}
	}
	return best, ok
}
