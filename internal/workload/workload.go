// Package workload models the applications the paper uses to drive its
// evaluation (Section 5.1):
//
//   - PiApp: a CPU-bound computation of fixed total work whose execution
//     time is the measured quantity ("an application which computes an
//     approximation of pi").
//   - WebApp: an open-loop request generator in the style of httperf
//     driving a Joomla web application; the measured quantity is CPU load.
//     Requests arrive on a configurable profile (the paper's three-phase
//     inactive/active/inactive shape) with either an "exact" intensity
//     (100% of the VM's capacity, not more) or a "thrashing" intensity
//     (exceeding the VM's capacity).
//
// Work is measured in abstract work units: one unit is one processor cycle
// at nominal efficiency, so a processor at frequency f MHz with efficiency
// e delivers f*1e6*e units per simulated second. All queue state is exact
// integer sim.Work (milli-work-units); float-specified sizes (request
// costs, job lengths, backlog bounds) are converted once at construction,
// so consumption arithmetic is associative and a batched stretch drains a
// queue bit-identically to quantum-by-quantum consumption.
package workload

import (
	"fmt"

	"pasched/internal/sim"
)

// Workload is the demand source attached to a VM. The host advances the
// workload with Tick (generating request arrivals and phase transitions)
// and lets the VM consume pending work when the scheduler runs it.
//
// Implementations are not safe for concurrent use; the simulation is
// single-threaded.
type Workload interface {
	// Tick advances internal bookkeeping (arrivals, phases) to now.
	Tick(now sim.Time)
	// Pending returns the amount of runnable work. A VM is runnable
	// whenever its workload has pending work.
	Pending() sim.Work
	// Consume removes up to max work, returning the amount actually
	// consumed. now is the simulated time at the end of the consumption
	// interval, used for completion bookkeeping.
	Consume(max sim.Work, now sim.Time) sim.Work
}

// Forecaster is implemented by workloads that can promise when their
// pending work can next change for any reason other than a Consume call:
// a request arrival, a phase or trace-segment transition, a burst-gate
// flip, or internal bookkeeping that a Tick between now and the returned
// time would have performed. The simulation engine uses the promise to
// batch stretches of quanta; a workload that cannot see that far simply
// returns now (or is not a Forecaster at all), which forces
// quantum-by-quantum stepping. Returning a time at or before now means
// "cannot forecast / state is stale": the engine then ticks the workload
// quantum by quantum, so a conservative answer is always safe.
type Forecaster interface {
	// NextChange returns the earliest time > now at which Pending may
	// change without a Consume call, sim.Never if it cannot, or a time
	// <= now when no promise can be made.
	NextChange(now sim.Time) sim.Time
}

// Idle is a workload that never has work. It models a powered-on but lazy
// VM outside its active phases.
type Idle struct{}

// Tick implements Workload.
func (Idle) Tick(sim.Time) {}

// Pending implements Workload.
func (Idle) Pending() sim.Work { return 0 }

// Consume implements Workload.
func (Idle) Consume(sim.Work, sim.Time) sim.Work { return 0 }

// NextChange implements Forecaster: an idle workload never gains work.
func (Idle) NextChange(sim.Time) sim.Time { return sim.Never }

// Hog is an always-runnable CPU hog with unbounded work, used by the
// calibration procedures where the paper saturates a VM.
type Hog struct {
	consumed sim.Work
}

// Tick implements Workload.
func (h *Hog) Tick(sim.Time) {}

// Pending implements Workload. A hog always has work.
func (h *Hog) Pending() sim.Work { return sim.MaxWork }

// Consume implements Workload.
func (h *Hog) Consume(max sim.Work, _ sim.Time) sim.Work {
	if max < 0 {
		return 0
	}
	h.consumed += max
	return max
}

// Consumed returns the total work executed by the hog.
func (h *Hog) Consumed() sim.Work { return h.consumed }

// NextChange implements Forecaster: a hog's backlog only moves through
// Consume.
func (h *Hog) NextChange(sim.Time) sim.Time { return sim.Never }

// PiApp is a fixed amount of CPU-bound work. Its completion time is the
// execution-time metric used by Figure 1 and Table 2.
type PiApp struct {
	total     sim.Work
	remaining sim.Work
	started   bool
	startAt   sim.Time
	done      bool
	doneAt    sim.Time
}

// NewPiApp returns a pi computation of total work units (converted once to
// exact integer sim.Work). It returns an error if work is not positive.
func NewPiApp(work float64) (*PiApp, error) {
	if work <= 0 {
		return nil, fmt.Errorf("workload: pi-app work must be positive, got %v", work)
	}
	w := sim.WorkFromUnits(work)
	return &PiApp{total: w, remaining: w}, nil
}

// PiWorkFor returns the amount of work that takes seconds of execution time
// when granted pct percent of a processor whose maximum-frequency
// throughput is maxThroughput work units per second. It is the helper used
// to size experiments: e.g. "a job that takes 1559 s at 20% of the
// Optiplex's capacity".
func PiWorkFor(maxThroughput, pct, seconds float64) float64 {
	return maxThroughput * pct / 100 * seconds
}

// Tick implements Workload.
func (p *PiApp) Tick(sim.Time) {}

// Pending implements Workload.
func (p *PiApp) Pending() sim.Work { return p.remaining }

// Consume implements Workload.
func (p *PiApp) Consume(max sim.Work, now sim.Time) sim.Work {
	if p.done || max <= 0 {
		return 0
	}
	if !p.started {
		p.started = true
		p.startAt = now
	}
	used := max
	if used > p.remaining {
		used = p.remaining
	}
	p.remaining -= used
	if p.remaining <= 0 {
		p.remaining = 0
		p.done = true
		p.doneAt = now
	}
	return used
}

// Done reports whether the computation has finished.
func (p *PiApp) Done() bool { return p.done }

// CompletionTime returns the simulated time at which the work completed.
// The second return value is false while the computation is still running.
func (p *PiApp) CompletionTime() (sim.Time, bool) {
	return p.doneAt, p.done
}

// Progress returns the fraction of the total work already executed.
func (p *PiApp) Progress() float64 {
	return float64(p.total-p.remaining) / float64(p.total)
}

// NextChange implements Forecaster: the fixed work pool only drains
// through Consume.
func (p *PiApp) NextChange(sim.Time) sim.Time { return sim.Never }
