package governor

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// PaperOndemand is the paper's own ondemand governor ("we implemented our
// own (ondemand) governor, which is less aggressive and more stable, and
// consequently saves less energy", Section 5.4). Its differences from the
// stock governor:
//
//   - it samples over longer windows and averages the last three samples,
//     the paper's definition of the Global load (footnote 5);
//   - it reasons in absolute load (the load the current consumption would
//     represent at the maximum frequency, Section 4) so that decisions are
//     comparable across frequencies;
//   - it selects the lowest frequency whose capacity absorbs the absolute
//     load with a headroom margin, and only lowers the frequency after the
//     decision has been stable for several consecutive samples.
type PaperOndemand struct {
	cfg       PaperOndemandConfig
	lastT     sim.Time
	lastBusy  sim.Time
	ring      []float64 // absolute-load samples, percent
	idx       int
	filled    int
	downRuns  int
	downWants cpufreq.Freq
	cf        []float64
}

// PaperOndemandConfig configures the paper's governor.
type PaperOndemandConfig struct {
	// SamplingInterval defaults to 1 s.
	SamplingInterval sim.Time
	// Samples is the number of successive utilizations averaged;
	// default 3, matching the paper's footnote.
	Samples int
	// Headroom is the required spare capacity fraction above the
	// absolute load before a frequency is considered sufficient.
	// Zero selects the default of 0.10; to run without headroom use a
	// very small positive value.
	Headroom float64
	// UpThreshold is the raw utilization percentage that is treated as
	// saturation: at or above it the governor jumps straight to the
	// maximum frequency, like the stock ondemand governor. This matters
	// because a host full of hard-capped VMs saturates below 100% and
	// its *measured* absolute load (work delivered, not demanded) always
	// fits the current capacity. Zero selects the default of 80 (the
	// kernel default).
	UpThreshold float64
	// DownStability is the number of consecutive samples a lower target
	// must persist before the governor lowers the frequency; raising is
	// immediate. Default 2.
	DownStability int
	// CF is the per-P-state calibration factor table (the paper's CF[]);
	// nil assumes cf=1 everywhere. When set, its length must equal the
	// profile's number of P-states.
	CF []float64
}

// NewPaperOndemand returns the paper's smoothed governor.
func NewPaperOndemand(cfg PaperOndemandConfig) (*PaperOndemand, error) {
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = sim.Second
	}
	if cfg.SamplingInterval < 0 {
		return nil, fmt.Errorf("governor: negative sampling interval %v", cfg.SamplingInterval)
	}
	if cfg.Samples == 0 {
		cfg.Samples = 3
	}
	if cfg.Samples < 1 {
		return nil, fmt.Errorf("governor: samples must be >= 1, got %d", cfg.Samples)
	}
	if cfg.Headroom < 0 {
		return nil, fmt.Errorf("governor: negative headroom %v", cfg.Headroom)
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = 0.10
	}
	if cfg.UpThreshold == 0 {
		cfg.UpThreshold = 80
	}
	if cfg.UpThreshold <= 0 || cfg.UpThreshold > 100 {
		return nil, fmt.Errorf("governor: up-threshold %v outside (0,100]", cfg.UpThreshold)
	}
	if cfg.DownStability < 1 {
		cfg.DownStability = 2
	}
	return &PaperOndemand{
		cfg:  cfg,
		ring: make([]float64, cfg.Samples),
		cf:   cfg.CF,
	}, nil
}

// Name implements Governor.
func (g *PaperOndemand) Name() string { return "paper-ondemand" }

// NextDecision implements DecisionHorizon: the end of the current
// sampling window.
func (g *PaperOndemand) NextDecision(Stats) sim.Time {
	return g.lastT + g.cfg.SamplingInterval
}

// cfAt returns the calibration factor for ladder index i.
func (g *PaperOndemand) cfAt(i int) float64 {
	if g.cf == nil || i >= len(g.cf) {
		return 1
	}
	return g.cf[i]
}

// Tick implements Governor.
func (g *PaperOndemand) Tick(st Stats) (cpufreq.Freq, bool) {
	if st.Now-g.lastT < g.cfg.SamplingInterval {
		return 0, false
	}
	util := float64(st.CumBusy-g.lastBusy) / float64(st.Now-g.lastT)
	g.lastT = st.Now
	g.lastBusy = st.CumBusy
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	// Convert the interval utilization to absolute load using the paper's
	// formula: Absolute = Global * Freq/Freq[max] * cf.
	idx, err := st.Prof.Index(st.Cur)
	if err != nil {
		return 0, false
	}
	abs := util * 100 * st.Prof.Ratio(st.Cur) * g.cfAt(idx)
	g.ring[g.idx] = abs
	g.idx = (g.idx + 1) % len(g.ring)
	if g.filled < len(g.ring) {
		g.filled++
	}
	avg := 0.0
	for i := 0; i < g.filled; i++ {
		avg += g.ring[i]
	}
	avg /= float64(g.filled)

	// Saturation escape: a capped host saturates below 100% utilization
	// and its measured absolute load (delivered work, not demanded)
	// always fits the current capacity, so the capacity rule alone would
	// never raise the frequency. Jump to the maximum like the stock
	// governor's up-threshold rule.
	if util*100 >= g.cfg.UpThreshold {
		g.downRuns = 0
		if st.Cur == st.Prof.Max() {
			return 0, false
		}
		return st.Prof.Max(), true
	}

	target := g.selectFreq(st.Prof, avg)
	switch {
	case target > st.Cur:
		g.downRuns = 0
		return target, true
	case target < st.Cur:
		if target != g.downWants {
			g.downWants = target
			g.downRuns = 1
			return 0, false
		}
		g.downRuns++
		if g.downRuns >= g.cfg.DownStability {
			g.downRuns = 0
			return target, true
		}
		return 0, false
	default:
		g.downRuns = 0
		return 0, false
	}
}

// selectFreq returns the lowest frequency whose capacity exceeds the
// absolute load plus headroom — the same scan as the paper's
// computeNewFreq (Listing 1.1) with a stability margin.
func (g *PaperOndemand) selectFreq(prof *cpufreq.Profile, absLoad float64) cpufreq.Freq {
	need := absLoad * (1 + g.cfg.Headroom)
	for i, s := range prof.States {
		capacity := prof.Ratio(s.Freq) * 100 * g.cfAt(i)
		if capacity > need {
			return s.Freq
		}
	}
	return prof.Max()
}
