package governor

import (
	"testing"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// stat builds a Stats snapshot for the Optiplex profile.
func stat(now sim.Time, busy sim.Time, cur cpufreq.Freq) Stats {
	return Stats{
		Now:     now,
		CumBusy: busy,
		Cur:     cur,
		Prof:    optiplex,
	}
}

var optiplex = cpufreq.Optiplex755()

func TestPerformanceGovernor(t *testing.T) {
	var g Performance
	f, ok := g.Tick(stat(0, 0, 1600))
	if !ok || f != 2667 {
		t.Errorf("Tick = %v, %v; want 2667, true", f, ok)
	}
	// Once at max, no further decisions.
	if _, ok := g.Tick(stat(sim.Second, 0, 2667)); ok {
		t.Error("performance governor kept issuing decisions")
	}
	if g.Name() != "performance" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestPowersaveGovernor(t *testing.T) {
	var g Powersave
	f, ok := g.Tick(stat(0, 0, 2667))
	if !ok || f != 1600 {
		t.Errorf("Tick = %v, %v; want 1600, true", f, ok)
	}
	if _, ok := g.Tick(stat(sim.Second, 0, 1600)); ok {
		t.Error("powersave governor kept issuing decisions")
	}
}

func TestUserspaceGovernor(t *testing.T) {
	var g Userspace
	if _, ok := g.Tick(stat(0, 0, 2667)); ok {
		t.Error("userspace issued a decision without Set")
	}
	g.Set(2133)
	f, ok := g.Tick(stat(0, 0, 2667))
	if !ok || f != 2133 {
		t.Errorf("Tick after Set = %v, %v; want 2133, true", f, ok)
	}
	if _, ok := g.Tick(stat(sim.Second, 0, 2133)); ok {
		t.Error("userspace re-issued a consumed decision")
	}
}

func TestLinuxOndemandValidation(t *testing.T) {
	if _, err := NewLinuxOndemand(LinuxOndemandConfig{SamplingInterval: -1}); err == nil {
		t.Error("negative sampling interval accepted")
	}
	if _, err := NewLinuxOndemand(LinuxOndemandConfig{UpThreshold: 150}); err == nil {
		t.Error("up-threshold above 100 accepted")
	}
	if _, err := NewLinuxOndemand(LinuxOndemandConfig{UpThreshold: -3}); err == nil {
		t.Error("negative up-threshold accepted")
	}
}

func TestLinuxOndemandJumpsToMaxOnHighLoad(t *testing.T) {
	cfg := LinuxOndemandConfig{SamplingInterval: 100 * sim.Millisecond}
	g, err := NewLinuxOndemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Below the sampling interval: no decision.
	if _, ok := g.Tick(stat(50*sim.Millisecond, 40*sim.Millisecond, 1600)); ok {
		t.Error("decision before sampling interval elapsed")
	}
	// 90% utilization over 100 ms -> jump to max.
	f, ok := g.Tick(stat(100*sim.Millisecond, 90*sim.Millisecond, 1600))
	if !ok || f != 2667 {
		t.Errorf("Tick(high load) = %v, %v; want 2667, true", f, ok)
	}
}

func TestLinuxOndemandScalesDownToFit(t *testing.T) {
	cfg := LinuxOndemandConfig{SamplingInterval: 100 * sim.Millisecond}
	g, err := NewLinuxOndemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20% at 2667: the lowest frequency keeping load under 80% is 1600
	// (load there would be 33%).
	f, ok := g.Tick(stat(100*sim.Millisecond, 20*sim.Millisecond, 2667))
	if !ok || f != 1600 {
		t.Errorf("Tick(20%% at max) = %v, %v; want 1600, true", f, ok)
	}
	// 60% at 2667 needs 60*2667/80 = 2000 -> floor 2133.
	g2, err := NewLinuxOndemand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, ok = g2.Tick(stat(100*sim.Millisecond, 60*sim.Millisecond, 2667))
	if !ok || f != 2133 {
		t.Errorf("Tick(60%% at max) = %v, %v; want 2133, true", f, ok)
	}
}

func TestLinuxOndemandDefaultSamplingIsAggressive(t *testing.T) {
	g, err := NewLinuxOndemand(LinuxOndemandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// With the 10 ms kernel default, a decision fires every 10 ms.
	if _, ok := g.Tick(stat(10*sim.Millisecond, 9*sim.Millisecond, 1600)); !ok {
		t.Error("no decision at the default 10ms sampling interval")
	}
}

func TestConservativeStepsOneLevel(t *testing.T) {
	g, err := NewConservative(ConservativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// High load at 1600: one step up, not a jump to max.
	f, ok := g.Tick(stat(100*sim.Millisecond, 95*sim.Millisecond, 1600))
	if !ok || f != 1867 {
		t.Errorf("step up = %v, %v; want 1867, true", f, ok)
	}
	// Low load at 2667: one step down.
	g2, err := NewConservative(ConservativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f, ok = g2.Tick(stat(100*sim.Millisecond, 5*sim.Millisecond, 2667))
	if !ok || f != 2400 {
		t.Errorf("step down = %v, %v; want 2400, true", f, ok)
	}
	// Mid load: no move.
	g3, err := NewConservative(ConservativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g3.Tick(stat(100*sim.Millisecond, 50*sim.Millisecond, 2133)); ok {
		t.Error("conservative moved on mid load")
	}
}

func TestConservativeValidation(t *testing.T) {
	if _, err := NewConservative(ConservativeConfig{UpThreshold: 20, DownThreshold: 30}); err == nil {
		t.Error("down >= up accepted")
	}
}

func TestConservativeAtLadderEdges(t *testing.T) {
	g, err := NewConservative(ConservativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Already at max with high load: no decision.
	if _, ok := g.Tick(stat(100*sim.Millisecond, 95*sim.Millisecond, 2667)); ok {
		t.Error("stepped above the ladder")
	}
	g2, err := NewConservative(ConservativeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g2.Tick(stat(100*sim.Millisecond, 5*sim.Millisecond, 1600)); ok {
		t.Error("stepped below the ladder")
	}
}

func TestPaperOndemandValidation(t *testing.T) {
	if _, err := NewPaperOndemand(PaperOndemandConfig{SamplingInterval: -1}); err == nil {
		t.Error("negative sampling interval accepted")
	}
	if _, err := NewPaperOndemand(PaperOndemandConfig{Samples: -1}); err == nil {
		t.Error("negative sample count accepted")
	}
	if _, err := NewPaperOndemand(PaperOndemandConfig{Headroom: -0.5}); err == nil {
		t.Error("negative headroom accepted")
	}
}

func TestPaperOndemandScalesDownOnSustainedLowLoad(t *testing.T) {
	g, err := NewPaperOndemand(PaperOndemandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// 20% utilization at max frequency, sustained. Sample 1 fills the
	// ring and proposes a reduction; DownStability=2 requires a second
	// consistent sample before acting.
	busy := sim.Time(0)
	var f cpufreq.Freq
	var ok bool
	for i := 1; i <= 3; i++ {
		busy += 200 * sim.Millisecond
		f, ok = g.Tick(stat(sim.Time(i)*sim.Second, busy, 2667))
		if ok {
			break
		}
	}
	if !ok || f != 1600 {
		t.Errorf("sustained 20%% load: got %v, %v; want 1600", f, ok)
	}
}

func TestPaperOndemandRaisesImmediately(t *testing.T) {
	g, err := NewPaperOndemand(PaperOndemandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// One saturated second at the minimum frequency raises the frequency
	// without any stability delay.
	f, ok := g.Tick(stat(sim.Second, sim.Second, 1600))
	if !ok || f <= 1600 {
		t.Errorf("saturated sample: got %v, %v; want a raise", f, ok)
	}
}

func TestPaperOndemandIsStableAroundBoundary(t *testing.T) {
	// A load hovering just under a capacity boundary must not flap, thanks
	// to the averaging, headroom and down-stability.
	g, err := NewPaperOndemand(PaperOndemandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	busy := sim.Time(0)
	changes := 0
	cur := cpufreq.Freq(2667)
	for i := 1; i <= 60; i++ {
		// ~52-54% utilization at max: absolute 52-54, fluctuating.
		d := 520 + 20*(i%2)
		busy += sim.Time(d) * sim.Millisecond
		if f, ok := g.Tick(stat(sim.Time(i)*sim.Second, busy, cur)); ok {
			if f != cur {
				changes++
				cur = f
			}
			busy = busy / 1 // keep counter monotone; utilization recomputed per interval
		}
	}
	if changes > 2 {
		t.Errorf("frequency changed %d times under steady load, want <= 2", changes)
	}
}

func TestPaperOndemandUsesCFTable(t *testing.T) {
	// With cf = 0.5 at the minimum frequency, its capacity is 30%, so a
	// 25% absolute load (just under 30/1.1) still fits, but a 29% one
	// must not select 1600.
	cf := []float64{0.5, 1, 1, 1, 1}
	g, err := NewPaperOndemand(PaperOndemandConfig{CF: cf, DownStability: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 29% utilization at max = 29% absolute; 1600's derated capacity is
	// 30 which fails the 10% headroom test, so the governor stays high.
	f, ok := g.Tick(stat(sim.Second, 290*sim.Millisecond, 2667))
	if ok && f == 1600 {
		t.Errorf("governor picked 1600 despite derated capacity (got %v)", f)
	}
}

func TestClampedGovernorEnforcesFloor(t *testing.T) {
	inner, err := NewLinuxOndemand(LinuxOndemandConfig{SamplingInterval: 100 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g := &Clamped{Inner: inner, FloorIndex: 2} // floor = 2133 on the Optiplex
	// 20% load would send stock ondemand to 1600; the clamp raises it.
	f, ok := g.Tick(stat(100*sim.Millisecond, 20*sim.Millisecond, 2667))
	if !ok || f != 2133 {
		t.Errorf("clamped decision = %v, %v; want 2133, true", f, ok)
	}
	if g.Name() != "ondemand-clamped" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestClampedGovernorPassesHighDecisions(t *testing.T) {
	inner, err := NewLinuxOndemand(LinuxOndemandConfig{SamplingInterval: 100 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g := &Clamped{Inner: inner, FloorIndex: 1}
	// Saturated: stock ondemand says max; the clamp must not lower it.
	f, ok := g.Tick(stat(100*sim.Millisecond, 95*sim.Millisecond, 1600))
	if !ok || f != 2667 {
		t.Errorf("clamped high decision = %v, %v; want 2667, true", f, ok)
	}
}

func TestClampedGovernorBoundsFloorIndex(t *testing.T) {
	inner, err := NewLinuxOndemand(LinuxOndemandConfig{SamplingInterval: 100 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range floor indices are clamped to the ladder.
	for _, idx := range []int{-3, 99} {
		g := &Clamped{Inner: inner, FloorIndex: idx}
		if _, ok := g.Tick(stat(100*sim.Millisecond, 20*sim.Millisecond, 2667)); ok {
			continue // a decision is fine; absence of panic is the point
		}
	}
}

func TestClampedGovernorForwardsNoDecision(t *testing.T) {
	inner, err := NewPaperOndemand(PaperOndemandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := &Clamped{Inner: inner, FloorIndex: 1}
	// Below the inner governor's sampling interval: no decision at all.
	if _, ok := g.Tick(stat(sim.Millisecond, 0, 2667)); ok {
		t.Error("clamped governor invented a decision")
	}
}
