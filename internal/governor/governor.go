// Package governor implements the DVFS governors discussed in Sections 2.2
// and 5.4 of the paper:
//
//   - Performance, Powersave, Userspace, Conservative: the standard Linux
//     cpufreq governors.
//   - LinuxOndemand: the stock Ondemand governor, which the paper found
//     "quite aggressive and unstable" (Figure 3).
//   - PaperOndemand: the paper's own governor, "less aggressive and more
//     stable, and consequently saves less energy" (Figure 4). It averages
//     three successive utilization samples (the paper's footnote 5) and
//     selects frequencies on the absolute load with hysteresis.
//
// Governors are passive policies: the host calls Tick every scheduling
// quantum with cumulative counters, and the governor answers with a target
// frequency when its internal sampling period has elapsed.
package governor

import (
	"fmt"

	"pasched/internal/cpufreq"
	"pasched/internal/sim"
)

// Stats is the signal a governor observes. All counters are cumulative
// since the start of the simulation so that governors can compute
// utilizations over their own sampling windows by differencing.
type Stats struct {
	// Now is the current simulated time.
	Now sim.Time
	// CumBusy is the total busy CPU time so far.
	CumBusy sim.Time
	// CumWork is the total executed work so far, in exact integer
	// sim.Work.
	CumWork sim.Work
	// Cur is the current processor frequency.
	Cur cpufreq.Freq
	// Prof is the processor's architecture profile.
	Prof *cpufreq.Profile
}

// Governor decides the processor frequency from observed utilization.
// Implementations are not safe for concurrent use.
type Governor interface {
	// Name identifies the policy, e.g. "ondemand".
	Name() string
	// Tick observes the current statistics. It returns the desired
	// frequency and true when the governor wants the frequency (re)set;
	// (0, false) means no decision this quantum.
	Tick(stats Stats) (cpufreq.Freq, bool)
}

// DecisionHorizon is implemented by governors that can promise when their
// next decision could possibly happen: until the returned time, Tick is a
// pure no-op (no decision, no internal state change), so the simulation
// engine may skip the per-quantum Tick calls inside a batched step.
// Governors without this interface force quantum-by-quantum stepping.
type DecisionHorizon interface {
	// NextDecision returns the earliest time at or after which Tick may
	// return a decision or mutate governor state, given the current
	// statistics; sim.Never means no pending decision.
	NextDecision(st Stats) sim.Time
}

// Performance pins the processor at the maximum frequency.
type Performance struct {
	applied bool
}

// Name implements Governor.
func (g *Performance) Name() string { return "performance" }

// Tick implements Governor.
func (g *Performance) Tick(st Stats) (cpufreq.Freq, bool) {
	if g.applied && st.Cur == st.Prof.Max() {
		return 0, false
	}
	g.applied = true
	return st.Prof.Max(), true
}

// NextDecision implements DecisionHorizon.
func (g *Performance) NextDecision(st Stats) sim.Time {
	if g.applied && st.Cur == st.Prof.Max() {
		return sim.Never
	}
	return st.Now
}

// Powersave pins the processor at the minimum frequency.
type Powersave struct {
	applied bool
}

// Name implements Governor.
func (g *Powersave) Name() string { return "powersave" }

// Tick implements Governor.
func (g *Powersave) Tick(st Stats) (cpufreq.Freq, bool) {
	if g.applied && st.Cur == st.Prof.Min() {
		return 0, false
	}
	g.applied = true
	return st.Prof.Min(), true
}

// NextDecision implements DecisionHorizon.
func (g *Powersave) NextDecision(st Stats) sim.Time {
	if g.applied && st.Cur == st.Prof.Min() {
		return sim.Never
	}
	return st.Now
}

// Userspace lets an application set the frequency manually, as the Linux
// userspace governor does for tools like cpufreq-set.
type Userspace struct {
	target  cpufreq.Freq
	pending bool
}

// Name implements Governor.
func (g *Userspace) Name() string { return "userspace" }

// Set requests frequency f at the next tick.
func (g *Userspace) Set(f cpufreq.Freq) {
	g.target = f
	g.pending = true
}

// Tick implements Governor.
func (g *Userspace) Tick(Stats) (cpufreq.Freq, bool) {
	if !g.pending {
		return 0, false
	}
	g.pending = false
	return g.target, true
}

// NextDecision implements DecisionHorizon.
func (g *Userspace) NextDecision(st Stats) sim.Time {
	if g.pending {
		return st.Now
	}
	return sim.Never
}

// Clamped wraps a governor and bounds its decisions to a floor P-state.
// It models hypervisor power policies that do not use the deepest
// P-states (e.g. "balanced" policies on commercial hypervisors): the
// wrapped governor's decisions below the floor are raised to the floor.
type Clamped struct {
	// Inner is the wrapped governor. Required.
	Inner Governor
	// FloorIndex is the lowest P-state index the policy may select.
	FloorIndex int
}

// Name implements Governor.
func (c *Clamped) Name() string { return c.Inner.Name() + "-clamped" }

// Tick implements Governor.
func (c *Clamped) Tick(st Stats) (cpufreq.Freq, bool) {
	f, ok := c.Inner.Tick(st)
	if !ok {
		return 0, false
	}
	idx := c.FloorIndex
	if idx < 0 {
		idx = 0
	}
	if idx >= st.Prof.Levels() {
		idx = st.Prof.Levels() - 1
	}
	if floor := st.Prof.States[idx].Freq; f < floor {
		f = floor
	}
	return f, true
}

// NextDecision implements DecisionHorizon by delegating to the wrapped
// governor when it reports a horizon.
func (c *Clamped) NextDecision(st Stats) sim.Time {
	if dh, ok := c.Inner.(DecisionHorizon); ok {
		return dh.NextDecision(st)
	}
	return st.Now
}

// utilSampler computes utilization over fixed sampling intervals from the
// cumulative busy counter.
type utilSampler struct {
	interval sim.Time
	lastT    sim.Time
	lastBusy sim.Time
}

// sample returns (utilization, true) when a full interval has elapsed.
func (s *utilSampler) sample(st Stats) (float64, bool) {
	if st.Now-s.lastT < s.interval {
		return 0, false
	}
	util := float64(st.CumBusy-s.lastBusy) / float64(st.Now-s.lastT)
	s.lastT = st.Now
	s.lastBusy = st.CumBusy
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return util, true
}

// next returns the earliest time the sampler can produce a sample.
func (s *utilSampler) next() sim.Time { return s.lastT + s.interval }

// LinuxOndemand models the stock Ondemand governor: it samples utilization
// over short windows and, on every sample, either jumps straight to the
// maximum frequency (load at or above the up-threshold) or drops to the
// lowest frequency that would keep the observed load below the threshold.
// The short memoryless window is what makes it oscillate under bursty web
// load (Figure 3).
type LinuxOndemand struct {
	sampler     utilSampler
	upThreshold float64 // percent, default 80
}

// LinuxOndemandConfig configures the stock ondemand model.
type LinuxOndemandConfig struct {
	// SamplingInterval defaults to 10 ms, the kernel's default
	// sampling_rate in the Xen 4.1 era. The short memoryless window is
	// what makes the stock governor "quite aggressive and unstable"
	// (Section 5.4) under bursty load.
	SamplingInterval sim.Time
	// UpThreshold is the percent load that triggers a jump to the
	// maximum frequency; default 80 (the kernel default).
	UpThreshold float64
}

// NewLinuxOndemand returns a stock-ondemand governor.
func NewLinuxOndemand(cfg LinuxOndemandConfig) (*LinuxOndemand, error) {
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 10 * sim.Millisecond
	}
	if cfg.SamplingInterval < 0 {
		return nil, fmt.Errorf("governor: negative sampling interval %v", cfg.SamplingInterval)
	}
	if cfg.UpThreshold == 0 {
		cfg.UpThreshold = 80
	}
	if cfg.UpThreshold <= 0 || cfg.UpThreshold > 100 {
		return nil, fmt.Errorf("governor: up-threshold %v outside (0,100]", cfg.UpThreshold)
	}
	return &LinuxOndemand{
		sampler:     utilSampler{interval: cfg.SamplingInterval},
		upThreshold: cfg.UpThreshold,
	}, nil
}

// Name implements Governor.
func (g *LinuxOndemand) Name() string { return "ondemand" }

// Tick implements Governor.
func (g *LinuxOndemand) Tick(st Stats) (cpufreq.Freq, bool) {
	util, ok := g.sampler.sample(st)
	if !ok {
		return 0, false
	}
	load := util * 100
	if load >= g.upThreshold {
		return st.Prof.Max(), true
	}
	// Scale down to the lowest frequency that keeps the load under the
	// threshold: load scales by cur/f when moving to frequency f.
	needed := float64(st.Cur) * load / g.upThreshold
	return st.Prof.FloorFor(cpufreq.Freq(needed + 1)), true
}

// NextDecision implements DecisionHorizon: the sampler's next window end.
func (g *LinuxOndemand) NextDecision(Stats) sim.Time { return g.sampler.next() }

// Conservative models the Linux conservative governor: it moves one ladder
// step at a time, up when load exceeds the up-threshold and down when load
// falls below the down-threshold.
type Conservative struct {
	sampler       utilSampler
	upThreshold   float64
	downThreshold float64
}

// ConservativeConfig configures the conservative governor.
type ConservativeConfig struct {
	// SamplingInterval defaults to 100 ms.
	SamplingInterval sim.Time
	// UpThreshold defaults to 80 (percent).
	UpThreshold float64
	// DownThreshold defaults to 20 (percent), the kernel default.
	DownThreshold float64
}

// NewConservative returns a conservative governor.
func NewConservative(cfg ConservativeConfig) (*Conservative, error) {
	if cfg.SamplingInterval == 0 {
		cfg.SamplingInterval = 100 * sim.Millisecond
	}
	if cfg.UpThreshold == 0 {
		cfg.UpThreshold = 80
	}
	if cfg.DownThreshold == 0 {
		cfg.DownThreshold = 20
	}
	if cfg.DownThreshold >= cfg.UpThreshold {
		return nil, fmt.Errorf("governor: down-threshold %v not below up-threshold %v",
			cfg.DownThreshold, cfg.UpThreshold)
	}
	return &Conservative{
		sampler:       utilSampler{interval: cfg.SamplingInterval},
		upThreshold:   cfg.UpThreshold,
		downThreshold: cfg.DownThreshold,
	}, nil
}

// Name implements Governor.
func (g *Conservative) Name() string { return "conservative" }

// Tick implements Governor.
func (g *Conservative) Tick(st Stats) (cpufreq.Freq, bool) {
	util, ok := g.sampler.sample(st)
	if !ok {
		return 0, false
	}
	load := util * 100
	idx, err := st.Prof.Index(st.Cur)
	if err != nil {
		return 0, false
	}
	switch {
	case load > g.upThreshold && idx < st.Prof.Levels()-1:
		return st.Prof.States[idx+1].Freq, true
	case load < g.downThreshold && idx > 0:
		return st.Prof.States[idx-1].Freq, true
	}
	return 0, false
}

// NextDecision implements DecisionHorizon: the sampler's next window end.
func (g *Conservative) NextDecision(Stats) sim.Time { return g.sampler.next() }
