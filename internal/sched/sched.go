// Package sched implements the hypervisor VM schedulers analysed by the
// paper (Section 3.1):
//
//   - Credit: the default Xen scheduler, used as the paper's fix-credit
//     scheduler. Each VM has a weight and a cap; a capped VM never receives
//     more than its cap, even when the processor would otherwise idle
//     (non-work-conserving with respect to the cap).
//   - SEDF: Xen's Simple Earliest Deadline First scheduler, used as the
//     paper's variable-credit scheduler. Each VM has a (slice, period,
//     extratime) triplet; VMs with the extratime flag share slices that
//     other VMs leave unused (work-conserving).
//   - Credit2: a weight-proportional work-conserving scheduler in the
//     spirit of the Xen Credit2 beta mentioned by the paper.
//
// The PAS scheduler of the paper (the contribution) lives in
// internal/core and is built on Credit via the CapSetter interface.
package sched

import (
	"errors"
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// ErrUnknownVM is returned when an operation references a VM that was never
// added to the scheduler.
var ErrUnknownVM = errors.New("sched: unknown VM")

// ErrDuplicateVM is returned when a VM with the same ID is added twice.
var ErrDuplicateVM = errors.New("sched: duplicate VM")

// Scheduler decides which VM occupies the processor each scheduling
// quantum. The host drives it with a Pick/Charge/Tick cycle:
//
//	v := s.Pick(now)        // who runs this quantum?
//	... execute v ...
//	s.Charge(v, busy, now)  // how long it actually ran
//	s.Tick(now)             // end-of-quantum accounting
//
// Implementations are not safe for concurrent use.
type Scheduler interface {
	// Name identifies the scheduling policy, e.g. "credit".
	Name() string
	// Add registers a VM with the scheduler.
	Add(v *vm.VM) error
	// Remove unregisters a VM (shutdown or migration away). Removing an
	// unknown VM is an error.
	Remove(id vm.ID) error
	// VMs returns the registered VMs in registration order.
	VMs() []*vm.VM
	// Pick returns the VM to run for the quantum starting at now, or nil
	// if no runnable VM may run (the processor idles).
	Pick(now sim.Time) *vm.VM
	// Charge informs the scheduler that v ran busy CPU time ending at now.
	Charge(v *vm.VM, busy sim.Time, now sim.Time)
	// Tick performs end-of-quantum accounting (credit refills, deadline
	// rollovers).
	Tick(now sim.Time)
}

// BoundaryReporter is implemented by schedulers that can report their next
// accounting boundary (credit refill, deadline rollover, PAS
// recomputation) — the next instant at which Tick does real work or Pick
// decisions can change for scheduler-internal reasons. The simulation
// engine stops batched steps strictly before the boundary, so the quantum
// containing it always runs with reference semantics. Schedulers without
// this interface are never batched.
type BoundaryReporter interface {
	// NextBoundary returns the scheduler's next accounting boundary after
	// now, or sim.Never when there is none.
	NextBoundary(now sim.Time) sim.Time
}

// Batcher is implemented by schedulers that can collapse a uniform run of
// scheduling quanta into one batched step. The engine calls it only when
// v is the only runnable VM and no scheduler boundary (NextBoundary) lies
// inside the stretch.
type Batcher interface {
	// BatchPick certifies a uniform stretch of up to max quanta starting
	// at now, assuming v stays the only runnable VM. It returns either
	//
	//   - (n, false): Pick would select v for each of the next n quanta
	//     and v would consume one full quantum each time. The return
	//     commits the scheduler's internal pick state (round-robin
	//     cursors) exactly as the Pick calls would have; the caller still
	//     reports the consumed time through one Charge call, and may use
	//     fewer than n quanta (the commitment does not depend on n).
	//   - (n, true): Pick would return nil for each of the next n quanta
	//     — v is runnable but not serviceable (budget exhausted under a
	//     hard cap, slice exhausted without extratime) — so the
	//     processor idles.
	//   - (0, false): the run cannot be batched; the caller must fall
	//     back to the reference Pick/Charge/Tick cycle, which remains
	//     correct after any committed state because re-picking the same
	//     sole runnable VM is idempotent.
	BatchPick(v *vm.VM, quantum sim.Time, max int, now sim.Time) (int, bool)
}

// PatternQuota bounds one VM's participation in a pattern step. The host
// derives MaxPicks from the VM's pending work: the number of consecutive
// full quanta the VM can absorb while staying runnable afterwards, so that
// every covered pick consumes exactly one full quantum and the runnable
// set cannot change from inside the pattern.
type PatternQuota struct {
	// VM is a currently runnable VM.
	VM *vm.VM
	// MaxPicks is the largest number of full quanta the VM may be granted
	// within the pattern step. Zero excludes the VM from batching (it can
	// still be skipped by the scheduler's own policy).
	MaxPicks int
}

// PatternPick is one VM's tally within a certified pattern step: the VM
// and how many full quanta it consumes across the step.
type PatternPick struct {
	VM     *vm.VM
	Quanta int
}

// PatternBatcher is implemented by schedulers that can collapse a
// *multi-runnable* stretch of scheduling quanta into one composite
// pattern step. It generalizes Batcher: where BatchPick certifies a run
// of identical picks of a sole runnable VM, BatchPattern certifies the
// scheduler's full interleaving — Credit's weighted round-robin rotation
// between credit refills, SEDF's EDF order between deadline boundaries,
// Credit2's closed-form smallest-vruntime merge — as per-VM
// consumed-quanta tallies.
//
// The engine calls it only when no scheduler boundary (NextBoundary), no
// governor decision, no frequency transition and no workload change lies
// inside the offered stretch, so the certified pattern holds exactly when
// the runnable set is static and every pick consumes a full quantum,
// which quota guarantees.
type PatternBatcher interface {
	// BatchPattern certifies a pattern step of up to max quanta starting
	// at now. quota lists exactly the currently runnable VMs with their
	// per-VM pick bounds. It returns either
	//
	//   - (picks, false): the reference Pick sequence for the next
	//     total = Σ picks[i].Quanta quanta (total <= max) grants each
	//     listed VM exactly its tally, each pick consuming one full
	//     quantum, and after those quanta the scheduler's pick state
	//     (round-robin cursors) is as committed by this call. The caller
	//     applies the consumed time through one Charge call per VM; the
	//     tallies are chosen so that those bulk charges land in the same
	//     accounting branch every per-quantum Charge would have
	//     (scheduler-internal counters end bit-identical).
	//   - (nil, true): Pick would return nil for each of the next max
	//     quanta — every runnable VM is unserviceable (budget exhausted
	//     under a hard cap, slice exhausted without extratime) — so the
	//     processor idles for the whole offered stretch.
	//   - (nil, false): the stretch cannot be certified (pattern shorter
	//     than two quanta, or a policy the scheduler cannot fold); the
	//     caller falls back to the reference Pick/Charge/Tick cycle. No
	//     scheduler state is committed in this case.
	//
	// The returned slice is only valid until this scheduler's next
	// BatchPattern call: implementations reuse the backing buffer.
	BatchPattern(quota []PatternQuota, quantum sim.Time, max int, now sim.Time) ([]PatternPick, bool)
}

// CapSetter is implemented by schedulers whose per-VM CPU allocation can be
// adjusted at run time. The PAS scheduler uses it to enforce the
// recomputed, frequency-compensated credits (Listing 1.2 of the paper).
type CapSetter interface {
	// SetCap sets the VM's allocation to pct percent of the processor
	// time. Values above 100 are meaningful at low frequencies: the paper
	// notes "the sum of the VM credits may be more than 100%".
	SetCap(id vm.ID, pct float64) error
	// Cap returns the VM's current allocation percentage.
	Cap(id vm.ID) (float64, error)
}

// EffectiveCapper is an optional extension of CapSetter for schedulers
// whose enforced cap differs from the contracted credit (the PAS scheduler
// enforces a frequency-compensated cap). Metric recorders prefer it over
// Cap when present, so traces show the enforcement actually in effect.
type EffectiveCapper interface {
	// EffectiveCap returns the momentary enforced cap percentage.
	EffectiveCap(id vm.ID) (float64, error)
}

// Tracer receives scheduler decision events for the flight recorder.
// It is optional: schedulers expose it through TraceSetter, and a nil
// tracer (the default) must cost nothing on the hot path — every
// emission sits behind a single nil check.
type Tracer interface {
	// TraceRefill marks an accounting boundary (credit refill) at now.
	TraceRefill(now sim.Time)
	// TraceExhausted marks v's budget crossing zero under a hard cap at
	// now.
	TraceExhausted(now sim.Time, v *vm.VM)
}

// TraceSetter is implemented by schedulers that can report decision
// events to a Tracer. Setting a nil tracer disables tracing.
type TraceSetter interface {
	SetTracer(t Tracer)
}

// RecompensateTracer is an optional Tracer extension for schedulers that
// rewrite their enforcement when the processor frequency changes (the
// PAS credit recompensation of Listing 1.2). TraceRecompensate fires
// once per recomputation that changed the enforced caps — exactly the
// frequency transitions, since recompensating at an unchanged frequency
// rewrites identical caps — with the new frequency and how many VMs were
// recompensated. One event per recomputation (not per VM) keeps the
// emission independent of the scheduler's map iteration order.
type RecompensateTracer interface {
	TraceRecompensate(now sim.Time, freqMHz, vms int64)
}

// Throttler is implemented by schedulers that can distinguish a
// runnable VM barred by its *own* exhausted allocation (credit cap,
// expired SEDF slice) from one merely waiting for the processor. The
// attribution ledger uses it to split waiting time into capped versus
// contended; schedulers without the interface (the work-conserving
// ones) never throttle, so their waiters are all contention.
type Throttler interface {
	// Throttled reports whether runnable VM v is currently barred from
	// the processor by its own exhausted allocation.
	Throttled(v *vm.VM) bool
}

// checkAdd performs the common Add registration checks.
func checkAdd(byID map[vm.ID]int, v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("sched: add nil VM")
	}
	if _, dup := byID[v.ID()]; dup {
		return fmt.Errorf("%w: id %d", ErrDuplicateVM, v.ID())
	}
	return nil
}

// spliceVM removes index idx from vms, preserving order and nil-ing the
// trailing duplicate pointer so the removed VM can be collected.
func spliceVM(vms []*vm.VM, idx int) []*vm.VM {
	copy(vms[idx:], vms[idx+1:])
	vms[len(vms)-1] = nil
	return vms[:len(vms)-1]
}

// spliceState removes index idx from a per-VM state slice.
func spliceState[T any](st []T, idx int) []T {
	return append(st[:idx], st[idx+1:]...)
}

// reindexAfterRemove shifts the id→index registry down past a removed
// slice index.
func reindexAfterRemove(byID map[vm.ID]int, idx int) {
	for id, i := range byID {
		if i > idx {
			byID[id] = i - 1
		}
	}
}

// patternQuotaFor returns the MaxPicks bound the caller supplied for v,
// or 0 when v has no quota entry (which excludes it from batching).
func patternQuotaFor(quota []PatternQuota, v *vm.VM) int {
	for _, q := range quota {
		if q.VM == v {
			return q.MaxPicks
		}
	}
	return 0
}

// rotationPattern builds a whole-rotations pattern step over the VMs
// accepted by eligible: every member gets one full quantum per rotation,
// in the exact cyclic order the cursor would serve them. The rotation
// count is the tightest member bound — the caller's quota, the
// scheduler-policy pick life returned by life (nil means unbounded, e.g.
// uncapped or extratime members), and the offered max. On success it
// commits the cursor past the rotation and returns the per-member
// tallies; it returns nil (cursor untouched) when fewer than two quanta
// certify.
func rotationPattern(vms []*vm.VM, cursor *rrQueue, quota []PatternQuota,
	max int, eligible func(i int) bool, life func(i int) int) []PatternPick {
	rotations := max
	members := 0
	for i, v := range vms {
		if !eligible(i) {
			continue
		}
		members++
		r := patternQuotaFor(quota, v)
		if life != nil {
			if k := life(i); k < r {
				r = k
			}
		}
		if r < rotations {
			rotations = r
		}
	}
	if members == 0 {
		return nil
	}
	if r := max / members; r < rotations {
		rotations = r
	}
	if rotations*members < 2 {
		return nil
	}
	order := cursor.rotation(len(vms), eligible)
	for i := range cursor.pickBuf {
		cursor.pickBuf[i] = PatternPick{} // drop stale VM pointers
	}
	picks := cursor.pickBuf[:0]
	for _, i := range order {
		picks = append(picks, PatternPick{VM: vms[i], Quanta: rotations})
	}
	cursor.pickBuf = picks
	return picks
}

// IndexOf returns the slice index of v by identity, -1 if absent. The
// linear scan beats a map lookup for the handful of VMs a host carries,
// which is why the per-quantum paths (schedulers and the host alike)
// use it.
func IndexOf(vms []*vm.VM, v *vm.VM) int {
	for i, u := range vms {
		if u == v {
			return i
		}
	}
	return -1
}

// rrQueue is a tiny round-robin helper: it remembers the last VM served and
// starts the next scan after it, giving equal service to equal claimants.
// The order and pick buffers are reused across rotations — batch pattern
// construction runs on every contended host step, and a fresh slice per
// step was the schedulers' dominant allocation.
type rrQueue struct {
	last     int
	orderBuf []int
	pickBuf  []PatternPick
}

// next scans candidates round-robin starting after the previously served
// index and returns the index of the first candidate accepted by ok, or -1.
func (q *rrQueue) next(n int, ok func(i int) bool) int {
	if n == 0 {
		return -1
	}
	start := q.last + 1
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if ok(i) {
			q.last = i
			return i
		}
	}
	return -1
}

// rotation returns the indices of one full round-robin rotation over the
// candidates accepted by ok, in the exact order successive next calls
// would serve them, and commits the cursor past the rotation: after any
// whole number of such rotations the next pick is again the first
// returned index, and the cursor rests on the last one — precisely the
// state quantum-by-quantum picking would leave behind. It returns nil
// (cursor untouched) when no candidate is accepted.
func (q *rrQueue) rotation(n int, ok func(i int) bool) []int {
	if n == 0 {
		return nil
	}
	start := q.last + 1
	order := q.orderBuf[:0]
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if ok(i) {
			order = append(order, i)
		}
	}
	q.orderBuf = order
	if len(order) == 0 {
		return nil
	}
	q.last = order[len(order)-1]
	return order
}
