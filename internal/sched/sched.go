// Package sched implements the hypervisor VM schedulers analysed by the
// paper (Section 3.1):
//
//   - Credit: the default Xen scheduler, used as the paper's fix-credit
//     scheduler. Each VM has a weight and a cap; a capped VM never receives
//     more than its cap, even when the processor would otherwise idle
//     (non-work-conserving with respect to the cap).
//   - SEDF: Xen's Simple Earliest Deadline First scheduler, used as the
//     paper's variable-credit scheduler. Each VM has a (slice, period,
//     extratime) triplet; VMs with the extratime flag share slices that
//     other VMs leave unused (work-conserving).
//   - Credit2: a weight-proportional work-conserving scheduler in the
//     spirit of the Xen Credit2 beta mentioned by the paper.
//
// The PAS scheduler of the paper (the contribution) lives in
// internal/core and is built on Credit via the CapSetter interface.
package sched

import (
	"errors"
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// ErrUnknownVM is returned when an operation references a VM that was never
// added to the scheduler.
var ErrUnknownVM = errors.New("sched: unknown VM")

// ErrDuplicateVM is returned when a VM with the same ID is added twice.
var ErrDuplicateVM = errors.New("sched: duplicate VM")

// Scheduler decides which VM occupies the processor each scheduling
// quantum. The host drives it with a Pick/Charge/Tick cycle:
//
//	v := s.Pick(now)        // who runs this quantum?
//	... execute v ...
//	s.Charge(v, busy, now)  // how long it actually ran
//	s.Tick(now)             // end-of-quantum accounting
//
// Implementations are not safe for concurrent use.
type Scheduler interface {
	// Name identifies the scheduling policy, e.g. "credit".
	Name() string
	// Add registers a VM with the scheduler.
	Add(v *vm.VM) error
	// Remove unregisters a VM (shutdown or migration away). Removing an
	// unknown VM is an error.
	Remove(id vm.ID) error
	// VMs returns the registered VMs in registration order.
	VMs() []*vm.VM
	// Pick returns the VM to run for the quantum starting at now, or nil
	// if no runnable VM may run (the processor idles).
	Pick(now sim.Time) *vm.VM
	// Charge informs the scheduler that v ran busy CPU time ending at now.
	Charge(v *vm.VM, busy sim.Time, now sim.Time)
	// Tick performs end-of-quantum accounting (credit refills, deadline
	// rollovers).
	Tick(now sim.Time)
}

// CapSetter is implemented by schedulers whose per-VM CPU allocation can be
// adjusted at run time. The PAS scheduler uses it to enforce the
// recomputed, frequency-compensated credits (Listing 1.2 of the paper).
type CapSetter interface {
	// SetCap sets the VM's allocation to pct percent of the processor
	// time. Values above 100 are meaningful at low frequencies: the paper
	// notes "the sum of the VM credits may be more than 100%".
	SetCap(id vm.ID, pct float64) error
	// Cap returns the VM's current allocation percentage.
	Cap(id vm.ID) (float64, error)
}

// EffectiveCapper is an optional extension of CapSetter for schedulers
// whose enforced cap differs from the contracted credit (the PAS scheduler
// enforces a frequency-compensated cap). Metric recorders prefer it over
// Cap when present, so traces show the enforcement actually in effect.
type EffectiveCapper interface {
	// EffectiveCap returns the momentary enforced cap percentage.
	EffectiveCap(id vm.ID) (float64, error)
}

// rrQueue is a tiny round-robin helper: it remembers the last VM served and
// starts the next scan after it, giving equal service to equal claimants.
type rrQueue struct {
	last int
}

// next scans candidates round-robin starting after the previously served
// index and returns the index of the first candidate accepted by ok, or -1.
func (q *rrQueue) next(n int, ok func(i int) bool) int {
	if n == 0 {
		return -1
	}
	start := q.last + 1
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if ok(i) {
			q.last = i
			return i
		}
	}
	return -1
}

// validateAdd performs the common Add checks and returns the VM's index key.
func validateAdd(existing map[vm.ID]bool, v *vm.VM) error {
	if v == nil {
		return fmt.Errorf("sched: add nil VM")
	}
	if existing[v.ID()] {
		return fmt.Errorf("%w: id %d", ErrDuplicateVM, v.ID())
	}
	return nil
}

// removeVM returns vms without the VM carrying id, preserving order.
func removeVM(vms []*vm.VM, id vm.ID) []*vm.VM {
	out := vms[:0]
	for _, v := range vms {
		if v.ID() != id {
			out = append(out, v)
		}
	}
	// Drop the trailing duplicate pointer so it can be collected.
	if len(out) < len(vms) {
		vms[len(vms)-1] = nil
	}
	return out
}
