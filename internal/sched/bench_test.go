package sched

import (
	"testing"

	"pasched/internal/sim"
	"pasched/internal/vm"
	"pasched/internal/workload"
)

// benchVMs builds n busy VMs with equal credit shares.
func benchVMs(b *testing.B, n int) []*vm.VM {
	b.Helper()
	out := make([]*vm.VM, n)
	for i := range out {
		v, err := vm.New(vm.ID(i), vm.Config{Credit: 100 / float64(n)})
		if err != nil {
			b.Fatal(err)
		}
		v.SetWorkload(&workload.Hog{})
		out[i] = v
	}
	return out
}

func benchScheduler(b *testing.B, s Scheduler, n int) {
	b.Helper()
	for _, v := range benchVMs(b, n) {
		if err := s.Add(v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		v := s.Pick(now)
		now += sim.Millisecond
		if v != nil {
			s.Charge(v, sim.Millisecond, now)
		}
		s.Tick(now)
	}
}

func BenchmarkCreditPickCharge8VMs(b *testing.B) {
	benchScheduler(b, NewCredit(CreditConfig{}), 8)
}

func BenchmarkCreditPickCharge64VMs(b *testing.B) {
	benchScheduler(b, NewCredit(CreditConfig{}), 64)
}

func BenchmarkSEDFPickCharge8VMs(b *testing.B) {
	benchScheduler(b, NewSEDF(SEDFConfig{DefaultExtratime: true}), 8)
}

func BenchmarkCredit2PickCharge8VMs(b *testing.B) {
	benchScheduler(b, NewCredit2(), 8)
}
