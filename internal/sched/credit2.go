package sched

import (
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// Credit2 is a weight-proportional, work-conserving scheduler in the spirit
// of the Xen Credit2 scheduler the paper mentions as a beta (Section 3.1).
// It has no caps: a runnable VM can always consume idle capacity, which
// makes it a variable-credit scheduler in the paper's taxonomy.
//
// The implementation is a virtual-runtime scheduler: each VM accumulates
// runtime scaled by the inverse of its weight and the VM with the smallest
// scaled runtime runs next, which converges to weight-proportional sharing
// under contention.
type Credit2 struct {
	vms      []*vm.VM
	known    map[vm.ID]bool
	vruntime map[vm.ID]float64 // microseconds scaled by 1/weight
	weights  map[vm.ID]float64
	maxLag   float64 // wake-up clamp, in scaled microseconds
	vclock   float64 // vruntime of the most recently picked VM
}

var _ Scheduler = (*Credit2)(nil)

// NewCredit2 returns a Credit2 scheduler.
func NewCredit2() *Credit2 {
	return &Credit2{
		known:    make(map[vm.ID]bool),
		vruntime: make(map[vm.ID]float64),
		weights:  make(map[vm.ID]float64),
		maxLag:   float64(DefaultCreditPeriod),
	}
}

// Name implements Scheduler.
func (c *Credit2) Name() string { return "credit2" }

// Add implements Scheduler. The VM's weight derives from its configuration
// (its credit when no explicit weight is set).
func (c *Credit2) Add(v *vm.VM) error {
	if err := validateAdd(c.known, v); err != nil {
		return err
	}
	c.known[v.ID()] = true
	c.vms = append(c.vms, v)
	c.weights[v.ID()] = float64(v.Config().EffectiveWeight())
	c.vruntime[v.ID()] = c.vclock
	return nil
}

// Remove implements Scheduler.
func (c *Credit2) Remove(id vm.ID) error {
	if !c.known[id] {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	delete(c.known, id)
	delete(c.vruntime, id)
	delete(c.weights, id)
	c.vms = removeVM(c.vms, id)
	return nil
}

// VMs implements Scheduler.
func (c *Credit2) VMs() []*vm.VM {
	out := make([]*vm.VM, len(c.vms))
	copy(out, c.vms)
	return out
}

// Pick implements Scheduler: the runnable VM with the smallest scaled
// runtime runs, with a wake-up clamp so a long-idle VM cannot monopolize
// the processor while it catches up.
func (c *Credit2) Pick(_ sim.Time) *vm.VM {
	var best *vm.VM
	bestVR := 0.0
	for _, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		vr := c.vruntime[v.ID()]
		if vr < c.vclock-c.maxLag {
			vr = c.vclock - c.maxLag
			c.vruntime[v.ID()] = vr
		}
		if best == nil || vr < bestVR {
			best = v
			bestVR = vr
		}
	}
	if best != nil {
		c.vclock = bestVR
	}
	return best
}

// Charge implements Scheduler.
func (c *Credit2) Charge(v *vm.VM, busy sim.Time, _ sim.Time) {
	if v == nil || busy <= 0 || !c.known[v.ID()] {
		return
	}
	w := c.weights[v.ID()]
	if w <= 0 {
		w = 1
	}
	c.vruntime[v.ID()] += float64(busy) / w
}

// Tick implements Scheduler. Credit2 needs no periodic accounting.
func (c *Credit2) Tick(sim.Time) {}

// Weight returns the VM's proportional-share weight.
func (c *Credit2) Weight(id vm.ID) (float64, error) {
	if !c.known[id] {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return c.weights[id], nil
}
