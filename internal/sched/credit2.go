package sched

import (
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// Credit2 weight bounds. Weights derive from vm.Config.EffectiveWeight; a
// derived weight below 1 (a fractional credit) is rounded up to 1, while a
// weight above credit2MaxWeight is rejected at Add — silently clamping it
// would distort the configured share ratios. The bound keeps every
// cross-multiplied comparison below far from int64 overflow (runtime in
// microseconds times weight must fit; 4096 leaves room for simulations of
// years).
const (
	credit2MinWeight = 1
	credit2MaxWeight = 1 << 12
)

// Credit2 is a weight-proportional, work-conserving scheduler in the spirit
// of the Xen Credit2 scheduler the paper mentions as a beta (Section 3.1).
// It has no caps: a runnable VM can always consume idle capacity, which
// makes it a variable-credit scheduler in the paper's taxonomy.
//
// The implementation is a virtual-runtime scheduler: each VM accumulates
// runtime scaled by the inverse of its weight and the VM with the smallest
// scaled runtime runs next, which converges to weight-proportional sharing
// under contention.
//
// All accounting is exact: a VM's virtual runtime is the rational
// runtime/weight with integer numerator (microseconds of charged CPU time)
// and denominator (the weight), and every comparison cross-multiplies
// instead of dividing. Exactness is what makes the scheduler certifiable
// for pattern batching — one bulk Charge of n quanta is integer addition,
// so it lands on bit-identical state as n per-quantum charges, and
// BatchPattern can commit the closed-form pick interleaving knowing the
// reference run would reach exactly the same state.
type Credit2 struct {
	vms  []*vm.VM
	st   []credit2State // parallel to vms
	byID map[vm.ID]int

	maxLag sim.Time // wake-up clamp, in scaled (virtual-runtime) microseconds

	// vclock is the virtual runtime of the most recently picked VM, kept
	// as the exact rational vcNum/vcDen (the picked VM's clamped runtime
	// over its weight).
	vcNum int64
	vcDen int64

	patBuf []c2cand // reused per BatchPattern call
}

// credit2State is the per-VM state, slice-backed so the per-quantum
// Pick/Charge path involves no map operations.
type credit2State struct {
	runtime int64 // charged CPU time in microseconds; vruntime = runtime/weight
	weight  int64
}

// lastSelected returns the index of the merge-order-largest selected
// element across the candidates — the v_j(n_j - 1) with the greatest
// virtual time, ties resolved to the larger index (equal virtual times
// merge in ascending index order, so the later index is the later pick).
// It requires at least one candidate with a positive tally.
func lastSelected(cands []c2cand, q int64) int {
	last := -1
	for j := range cands {
		if cands[j].n <= 0 {
			continue
		}
		if last < 0 {
			last = j
			continue
		}
		lj := cands[j].norm + (cands[j].n-1)*q
		ll := cands[last].norm + (cands[last].n-1)*q
		if lj*cands[last].w >= ll*cands[j].w {
			last = j
		}
	}
	return last
}

// c2cand is BatchPattern's per-runnable-VM scratch entry: the clamped
// runtime is staged here and only committed when a pattern certifies.
type c2cand struct {
	idx   int   // index into c.vms
	run   int64 // runtime after the first-pick wake-up clamp
	norm  int64 // run shifted by the common vruntime base (see normalize)
	w     int64
	quota int64 // caller's MaxPicks bound, clamped to the offer
	cut   int64 // norm + quota*q: numerator of the first non-certifiable pick
	n     int64 // certified tally
}

var (
	_ Scheduler        = (*Credit2)(nil)
	_ BoundaryReporter = (*Credit2)(nil)
	_ PatternBatcher   = (*Credit2)(nil)
)

// NewCredit2 returns a Credit2 scheduler.
func NewCredit2() *Credit2 {
	return &Credit2{
		byID:   make(map[vm.ID]int),
		maxLag: DefaultCreditPeriod,
		vcDen:  1,
	}
}

// Name implements Scheduler.
func (c *Credit2) Name() string { return "credit2" }

// credit2Weight derives the integer weight for a VM, rejecting weights the
// exact-arithmetic comparisons cannot carry.
func credit2Weight(v *vm.VM) (int64, error) {
	w := int64(v.Config().EffectiveWeight())
	if w > credit2MaxWeight {
		return 0, fmt.Errorf("sched: credit2 weight %d for VM %d exceeds %d",
			w, v.ID(), credit2MaxWeight)
	}
	if w < credit2MinWeight {
		w = credit2MinWeight
	}
	return w, nil
}

// ceilDiv returns ceil(a/b) for a >= 0, b > 0.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Add implements Scheduler. The VM's weight derives from its configuration
// (its credit when no explicit weight is set) and its virtual runtime
// starts at the current vclock, so it joins the rotation without a catch-up
// advantage. Weights above credit2MaxWeight are rejected rather than
// silently clamped.
func (c *Credit2) Add(v *vm.VM) error {
	if err := checkAdd(c.byID, v); err != nil {
		return err
	}
	w, err := credit2Weight(v)
	if err != nil {
		return err
	}
	c.byID[v.ID()] = len(c.vms)
	c.vms = append(c.vms, v)
	c.st = append(c.st, credit2State{
		runtime: ceilDiv(c.vcNum*w, c.vcDen),
		weight:  w,
	})
	return nil
}

// Remove implements Scheduler.
func (c *Credit2) Remove(id vm.ID) error {
	idx, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	delete(c.byID, id)
	c.vms = spliceVM(c.vms, idx)
	c.st = spliceState(c.st, idx)
	reindexAfterRemove(c.byID, idx)
	return nil
}

// VMs implements Scheduler.
func (c *Credit2) VMs() []*vm.VM {
	out := make([]*vm.VM, len(c.vms))
	copy(out, c.vms)
	return out
}

// Pick implements Scheduler: the runnable VM with the smallest virtual
// runtime runs, with a wake-up clamp so a long-idle VM cannot monopolize
// the processor while it catches up. Comparisons cross-multiply the
// runtime/weight rationals; ties go to the lowest registration index.
func (c *Credit2) Pick(_ sim.Time) *vm.VM {
	best := -1
	var bestNum, bestDen int64
	// The clamp floor is vclock - maxLag = floorNum/vcDen in virtual time.
	// Runtimes are non-negative, so a non-positive floor clamps nothing.
	floorNum := c.vcNum - int64(c.maxLag)*c.vcDen
	for i, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		st := &c.st[i]
		if floorNum > 0 && st.runtime*c.vcDen < floorNum*st.weight {
			st.runtime = ceilDiv(floorNum*st.weight, c.vcDen)
		}
		if best < 0 || st.runtime*bestDen < bestNum*st.weight {
			best, bestNum, bestDen = i, st.runtime, st.weight
		}
	}
	if best < 0 {
		return nil
	}
	c.vcNum, c.vcDen = bestNum, bestDen
	return c.vms[best]
}

// Charge implements Scheduler. The charge is exact integer accounting:
// runtime accumulates microseconds, so bulk charges and per-quantum
// charges commute bit-for-bit.
func (c *Credit2) Charge(v *vm.VM, busy sim.Time, _ sim.Time) {
	if v == nil || busy <= 0 {
		return
	}
	i := IndexOf(c.vms, v)
	if i < 0 {
		return
	}
	c.st[i].runtime += int64(busy)
}

// Tick implements Scheduler. Credit2 needs no periodic accounting.
func (c *Credit2) Tick(sim.Time) {}

// NextBoundary implements BoundaryReporter: virtual-runtime scheduling has
// no periodic accounting, so no scheduler-internal boundary ever bounds a
// stretch. Pattern expiry — the vruntime crossover at which a quota-bound
// VM would overdraw its pending work — is reported exactly through
// BatchPattern's tallies instead: the certified pattern ends one pick
// before the crossover and the engine records the cut as a
// machine-shortened horizon.
func (c *Credit2) NextBoundary(sim.Time) sim.Time { return sim.Never }

// Weight returns the VM's proportional-share weight.
func (c *Credit2) Weight(id vm.ID) (float64, error) {
	idx, ok := c.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return float64(c.st[idx].weight), nil
}

// SetWeight updates the VM's proportional-share weight at run time. The
// Credit2-based PAS variant uses it to refresh weights at the PAS
// cadence. The VM's runtime is rebased so its virtual runtime
// (runtime/weight) is preserved across the change: the VM neither gains a
// catch-up advantage nor loses already-earned service. Weights above
// credit2MaxWeight are rejected; weights below credit2MinWeight are
// raised to the minimum, mirroring Add.
func (c *Credit2) SetWeight(id vm.ID, w int64) error {
	idx, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	if w > credit2MaxWeight {
		return fmt.Errorf("sched: credit2 weight %d for VM %d exceeds %d", w, id, credit2MaxWeight)
	}
	if w < credit2MinWeight {
		w = credit2MinWeight
	}
	st := &c.st[idx]
	if w == st.weight {
		return nil
	}
	st.runtime = ceilDiv(st.runtime*w, st.weight)
	st.weight = w
	return nil
}

// BatchPattern implements PatternBatcher. Between wake-ups and lifecycle
// events the runnable set is static and every certified pick consumes one
// full quantum, so the smallest-vruntime interleaving is computable in
// closed form: VM i's k-th pick happens at virtual time
//
//	v_i(k) = (runtime_i + k*q) / weight_i
//
// and the reference pick sequence is exactly the ascending merge of those
// arithmetic progressions (ties by registration index — the same strict
// less-than Pick uses). The per-VM tallies of the first T merged elements
// are therefore computable by counting progression terms under a virtual
// time threshold, without stepping quantum by quantum.
//
// Two boundaries can cut the pattern short of the offer:
//
//   - a quota crossover: the caller bounds VM i to quota_i picks (its
//     pending work), so the pattern must end strictly before v_i(quota_i),
//     the first pick that would overdraw it;
//   - the offer itself (max), in which case the exact T = max prefix is
//     selected around the average-virtual-time estimate.
//
// The wake-up clamp is applied once up front, exactly as the first
// reference Pick would: after that pick the vclock equals the runnable
// minimum and (virtual runtimes never decreasing) the clamp is provably a
// no-op for the rest of the static stretch. On success the clamps, the
// final vclock (the last merged element) and the tallies are committed;
// the caller's one bulk Charge per VM then lands on bit-identical state as
// the per-quantum charges. On decline no state is touched.
func (c *Credit2) BatchPattern(quota []PatternQuota, quantum sim.Time, max int, _ sim.Time) ([]PatternPick, bool) {
	if quantum <= 0 || max <= 0 {
		return nil, false
	}
	q := int64(quantum)
	// Stage the runnable set with the first-pick wake-up clamp applied to
	// scratch copies; nothing is committed unless a pattern certifies.
	cands := c.patBuf[:0]
	floorNum := c.vcNum - int64(c.maxLag)*c.vcDen
	for i, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		st := &c.st[i]
		run := st.runtime
		if floorNum > 0 && run*c.vcDen < floorNum*st.weight {
			run = ceilDiv(floorNum*st.weight, c.vcDen)
		}
		qk := int64(patternQuotaFor(quota, v))
		if qk > int64(max) {
			qk = int64(max) // tallies can never exceed the offer
		}
		cands = append(cands, c2cand{idx: i, run: run, w: st.weight, quota: qk})
	}
	c.patBuf = cands[:0] // keep the grown buffer for reuse
	if len(cands) == 0 {
		// Credit2 is work-conserving: no runnable VM means the host idles,
		// which it certifies itself; an idle certification here would be
		// wrong for any non-empty runnable set.
		return nil, false
	}
	// Normalize: virtual-time comparisons are shift-invariant, so shift
	// all runtimes by the common base C = min_i floor(runtime_i/weight_i).
	// The runnable set's vruntime spread is bounded (the wake-up clamp
	// below, one quantum's advance above), so normalized numerators stay
	// tiny and every cross product below is overflow-safe.
	base := cands[0].run / cands[0].w
	for _, cd := range cands[1:] {
		if b := cd.run / cd.w; b < base {
			base = b
		}
	}
	for j := range cands {
		cands[j].norm = cands[j].run - base*cands[j].w
	}

	// Quota crossover: find the earliest first-non-certifiable pick
	// (cut_i = v_i(quota_i)) in merge order. The pattern may cover exactly
	// the merged elements strictly before it.
	cut := 0
	for j := range cands {
		cands[j].cut = cands[j].norm + cands[j].quota*q
		// cut_j < cut_cut by cross-multiplication; ties keep the earlier
		// index, matching merge order.
		if j > 0 && cands[j].cut*cands[cut].w < cands[cut].cut*cands[j].w {
			cut = j
		}
	}
	// Count each VM's picks before the crossover: terms k >= 0 with
	// v_j(k) < cut*, plus the boundary term when VM j precedes the
	// crossover VM in merge order (equal virtual time, smaller index).
	cNum, cDen := cands[cut].cut, cands[cut].w
	totalQ := int64(0)
	for j := range cands {
		a := cNum*cands[j].w - cands[j].norm*cDen
		b := q * cDen
		n := int64(0)
		if a > 0 {
			n = ceilDiv(a, b)
		}
		if cands[j].idx < cands[cut].idx && a >= 0 && a%b == 0 {
			n++
		}
		cands[j].n = n
		totalQ += n
	}

	total := totalQ
	if total > int64(max) {
		// The offer is the binding cut: select the exact T = max smallest
		// merged elements. Count terms up to the average-virtual-time
		// estimate theta = (sum runtimes + T*q) / sum weights — within
		// len(cands) of T by construction — then walk the merge boundary
		// element by element to land exactly on T.
		total = int64(max)
		hNum, hDen := total*q, int64(0)
		for _, cd := range cands {
			hNum += cd.norm
			hDen += cd.w
		}
		sum := int64(0)
		for j := range cands {
			a := hNum*cands[j].w - cands[j].norm*hDen
			n := int64(0)
			if a >= 0 {
				n = a/(q*hDen) + 1 // terms with v_j(k) <= theta
			}
			cands[j].n = n
			sum += n
		}
		for sum > total {
			cands[lastSelected(cands, q)].n--
			sum--
		}
		for sum < total {
			// Add the merge-order-smallest unselected element: least
			// virtual time, ties resolved to the smaller index.
			add := -1
			for j := range cands {
				if cands[j].n >= cands[j].quota {
					continue // the T <= totalQ prefix never crosses a quota
				}
				if add < 0 {
					add = j
					continue
				}
				nj := cands[j].norm + cands[j].n*q
				na := cands[add].norm + cands[add].n*q
				if nj*cands[add].w < na*cands[j].w {
					add = j
				}
			}
			if add < 0 {
				return nil, false // defensive: cannot reach T within quotas
			}
			cands[add].n++
			sum++
		}
	}
	if total < 2 {
		return nil, false
	}

	// The last merged element of the pattern is the final reference pick:
	// it defines the committed vclock (its un-normalized virtual time).
	last := lastSelected(cands, q)

	// Commit: wake-up clamps, vclock, and the per-VM tallies. Runtimes are
	// not advanced here — the caller's bulk Charge per VM performs exactly
	// the additions the per-quantum charges would have.
	picks := make([]PatternPick, 0, len(cands))
	for _, cd := range cands {
		c.st[cd.idx].runtime = cd.run
		if cd.n > 0 {
			picks = append(picks, PatternPick{VM: c.vms[cd.idx], Quanta: int(cd.n)})
		}
	}
	c.vcNum = cands[last].run + (cands[last].n-1)*q
	c.vcDen = cands[last].w
	return picks, false
}
