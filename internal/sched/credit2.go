package sched

import (
	"fmt"

	"pasched/internal/sim"
	"pasched/internal/vm"
)

// Credit2 is a weight-proportional, work-conserving scheduler in the spirit
// of the Xen Credit2 scheduler the paper mentions as a beta (Section 3.1).
// It has no caps: a runnable VM can always consume idle capacity, which
// makes it a variable-credit scheduler in the paper's taxonomy.
//
// The implementation is a virtual-runtime scheduler: each VM accumulates
// runtime scaled by the inverse of its weight and the VM with the smallest
// scaled runtime runs next, which converges to weight-proportional sharing
// under contention.
type Credit2 struct {
	vms    []*vm.VM
	st     []credit2State // parallel to vms
	byID   map[vm.ID]int
	maxLag float64 // wake-up clamp, in scaled microseconds
	vclock float64 // vruntime of the most recently picked VM
}

// credit2State is the per-VM state, slice-backed so the per-quantum
// Pick/Charge path involves no map operations.
type credit2State struct {
	vruntime float64 // microseconds scaled by 1/weight
	weight   float64
}

var (
	_ Scheduler        = (*Credit2)(nil)
	_ BoundaryReporter = (*Credit2)(nil)
)

// NewCredit2 returns a Credit2 scheduler.
func NewCredit2() *Credit2 {
	return &Credit2{
		byID:   make(map[vm.ID]int),
		maxLag: float64(DefaultCreditPeriod),
	}
}

// Name implements Scheduler.
func (c *Credit2) Name() string { return "credit2" }

// Add implements Scheduler. The VM's weight derives from its configuration
// (its credit when no explicit weight is set).
func (c *Credit2) Add(v *vm.VM) error {
	if err := checkAdd(c.byID, v); err != nil {
		return err
	}
	c.byID[v.ID()] = len(c.vms)
	c.vms = append(c.vms, v)
	c.st = append(c.st, credit2State{
		vruntime: c.vclock,
		weight:   float64(v.Config().EffectiveWeight()),
	})
	return nil
}

// Remove implements Scheduler.
func (c *Credit2) Remove(id vm.ID) error {
	idx, ok := c.byID[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	delete(c.byID, id)
	c.vms = spliceVM(c.vms, idx)
	c.st = spliceState(c.st, idx)
	reindexAfterRemove(c.byID, idx)
	return nil
}

// VMs implements Scheduler.
func (c *Credit2) VMs() []*vm.VM {
	out := make([]*vm.VM, len(c.vms))
	copy(out, c.vms)
	return out
}

// Pick implements Scheduler: the runnable VM with the smallest scaled
// runtime runs, with a wake-up clamp so a long-idle VM cannot monopolize
// the processor while it catches up.
func (c *Credit2) Pick(_ sim.Time) *vm.VM {
	var best *vm.VM
	bestVR := 0.0
	for i, v := range c.vms {
		if !v.Runnable() {
			continue
		}
		vr := c.st[i].vruntime
		if vr < c.vclock-c.maxLag {
			vr = c.vclock - c.maxLag
			c.st[i].vruntime = vr
		}
		if best == nil || vr < bestVR {
			best = v
			bestVR = vr
		}
	}
	if best != nil {
		c.vclock = bestVR
	}
	return best
}

// Charge implements Scheduler.
func (c *Credit2) Charge(v *vm.VM, busy sim.Time, _ sim.Time) {
	if v == nil || busy <= 0 {
		return
	}
	i := IndexOf(c.vms, v)
	if i < 0 {
		return
	}
	w := c.st[i].weight
	if w <= 0 {
		w = 1
	}
	c.st[i].vruntime += float64(busy) / w
}

// Tick implements Scheduler. Credit2 needs no periodic accounting.
func (c *Credit2) Tick(sim.Time) {}

// NextBoundary implements BoundaryReporter: virtual-runtime scheduling
// has no periodic accounting, so idle stretches batch freely. Busy
// stretches still run quantum by quantum — Credit2 implements neither
// Batcher nor PatternBatcher because the vclock advances with every
// pick, so no stretch of picks can be certified ahead of time. On a
// contended Credit2 host this shows up as a dominant "machine-declined"
// count in the engine's BoundarySources breakdown.
func (c *Credit2) NextBoundary(sim.Time) sim.Time { return sim.Never }

// Weight returns the VM's proportional-share weight.
func (c *Credit2) Weight(id vm.ID) (float64, error) {
	idx, ok := c.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrUnknownVM, id)
	}
	return c.st[idx].weight, nil
}
